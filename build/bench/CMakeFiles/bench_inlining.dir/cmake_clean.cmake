file(REMOVE_RECURSE
  "CMakeFiles/bench_inlining.dir/bench_inlining.cpp.o"
  "CMakeFiles/bench_inlining.dir/bench_inlining.cpp.o.d"
  "bench_inlining"
  "bench_inlining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
