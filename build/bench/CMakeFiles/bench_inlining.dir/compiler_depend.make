# Empty compiler generated dependencies file for bench_inlining.
# This may be replaced when dependencies are built.
