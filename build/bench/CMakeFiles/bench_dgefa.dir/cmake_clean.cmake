file(REMOVE_RECURSE
  "CMakeFiles/bench_dgefa.dir/bench_dgefa.cpp.o"
  "CMakeFiles/bench_dgefa.dir/bench_dgefa.cpp.o.d"
  "bench_dgefa"
  "bench_dgefa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dgefa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
