# Empty compiler generated dependencies file for bench_dgefa.
# This may be replaced when dependencies are built.
