file(REMOVE_RECURSE
  "CMakeFiles/bench_delayed_instantiation.dir/bench_delayed_instantiation.cpp.o"
  "CMakeFiles/bench_delayed_instantiation.dir/bench_delayed_instantiation.cpp.o.d"
  "bench_delayed_instantiation"
  "bench_delayed_instantiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delayed_instantiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
