# Empty dependencies file for bench_delayed_instantiation.
# This may be replaced when dependencies are built.
