# Empty dependencies file for bench_runtime_resolution.
# This may be replaced when dependencies are built.
