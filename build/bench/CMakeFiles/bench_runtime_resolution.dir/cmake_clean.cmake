file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_resolution.dir/bench_runtime_resolution.cpp.o"
  "CMakeFiles/bench_runtime_resolution.dir/bench_runtime_resolution.cpp.o.d"
  "bench_runtime_resolution"
  "bench_runtime_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
