file(REMOVE_RECURSE
  "CMakeFiles/bench_machine_balance.dir/bench_machine_balance.cpp.o"
  "CMakeFiles/bench_machine_balance.dir/bench_machine_balance.cpp.o.d"
  "bench_machine_balance"
  "bench_machine_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
