# Empty dependencies file for bench_machine_balance.
# This may be replaced when dependencies are built.
