# Empty dependencies file for bench_cloning.
# This may be replaced when dependencies are built.
