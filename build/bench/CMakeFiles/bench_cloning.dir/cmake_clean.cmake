file(REMOVE_RECURSE
  "CMakeFiles/bench_cloning.dir/bench_cloning.cpp.o"
  "CMakeFiles/bench_cloning.dir/bench_cloning.cpp.o.d"
  "bench_cloning"
  "bench_cloning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cloning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
