# Empty compiler generated dependencies file for bench_recompilation.
# This may be replaced when dependencies are built.
