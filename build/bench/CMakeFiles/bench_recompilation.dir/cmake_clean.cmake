file(REMOVE_RECURSE
  "CMakeFiles/bench_recompilation.dir/bench_recompilation.cpp.o"
  "CMakeFiles/bench_recompilation.dir/bench_recompilation.cpp.o.d"
  "bench_recompilation"
  "bench_recompilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recompilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
