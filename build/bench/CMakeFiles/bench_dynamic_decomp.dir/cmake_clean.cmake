file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_decomp.dir/bench_dynamic_decomp.cpp.o"
  "CMakeFiles/bench_dynamic_decomp.dir/bench_dynamic_decomp.cpp.o.d"
  "bench_dynamic_decomp"
  "bench_dynamic_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
