# Empty compiler generated dependencies file for bench_dynamic_decomp.
# This may be replaced when dependencies are built.
