# Empty compiler generated dependencies file for fortdc.
# This may be replaced when dependencies are built.
