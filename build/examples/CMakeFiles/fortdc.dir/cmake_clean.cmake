file(REMOVE_RECURSE
  "CMakeFiles/fortdc.dir/fortdc.cpp.o"
  "CMakeFiles/fortdc.dir/fortdc.cpp.o.d"
  "fortdc"
  "fortdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
