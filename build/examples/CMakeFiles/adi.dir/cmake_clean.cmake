file(REMOVE_RECURSE
  "CMakeFiles/adi.dir/adi.cpp.o"
  "CMakeFiles/adi.dir/adi.cpp.o.d"
  "adi"
  "adi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
