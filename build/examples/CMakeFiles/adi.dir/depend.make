# Empty dependencies file for adi.
# This may be replaced when dependencies are built.
