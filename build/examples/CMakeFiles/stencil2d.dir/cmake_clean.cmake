file(REMOVE_RECURSE
  "CMakeFiles/stencil2d.dir/stencil2d.cpp.o"
  "CMakeFiles/stencil2d.dir/stencil2d.cpp.o.d"
  "stencil2d"
  "stencil2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
