# Empty compiler generated dependencies file for stencil2d.
# This may be replaced when dependencies are built.
