file(REMOVE_RECURSE
  "CMakeFiles/dgefa.dir/dgefa.cpp.o"
  "CMakeFiles/dgefa.dir/dgefa.cpp.o.d"
  "dgefa"
  "dgefa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgefa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
