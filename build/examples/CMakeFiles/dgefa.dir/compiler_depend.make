# Empty compiler generated dependencies file for dgefa.
# This may be replaced when dependencies are built.
