file(REMOVE_RECURSE
  "CMakeFiles/redistribution.dir/redistribution.cpp.o"
  "CMakeFiles/redistribution.dir/redistribution.cpp.o.d"
  "redistribution"
  "redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
