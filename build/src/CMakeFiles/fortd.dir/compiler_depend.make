# Empty compiler generated dependencies file for fortd.
# This may be replaced when dependencies are built.
