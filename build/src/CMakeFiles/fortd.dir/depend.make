# Empty dependencies file for fortd.
# This may be replaced when dependencies are built.
