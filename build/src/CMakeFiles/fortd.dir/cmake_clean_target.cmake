file(REMOVE_RECURSE
  "libfortd.a"
)
