
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cpp" "src/CMakeFiles/fortd.dir/analysis/cfg.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/analysis/cfg.cpp.o.d"
  "/root/repo/src/analysis/dataflow.cpp" "src/CMakeFiles/fortd.dir/analysis/dataflow.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/analysis/dataflow.cpp.o.d"
  "/root/repo/src/analysis/dependence.cpp" "src/CMakeFiles/fortd.dir/analysis/dependence.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/analysis/dependence.cpp.o.d"
  "/root/repo/src/analysis/symbolic.cpp" "src/CMakeFiles/fortd.dir/analysis/symbolic.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/analysis/symbolic.cpp.o.d"
  "/root/repo/src/codegen/codegen.cpp" "src/CMakeFiles/fortd.dir/codegen/codegen.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/codegen.cpp.o.d"
  "/root/repo/src/codegen/comm.cpp" "src/CMakeFiles/fortd.dir/codegen/comm.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/comm.cpp.o.d"
  "/root/repo/src/codegen/distribution.cpp" "src/CMakeFiles/fortd.dir/codegen/distribution.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/distribution.cpp.o.d"
  "/root/repo/src/codegen/dyndecomp.cpp" "src/CMakeFiles/fortd.dir/codegen/dyndecomp.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/dyndecomp.cpp.o.d"
  "/root/repo/src/codegen/partition.cpp" "src/CMakeFiles/fortd.dir/codegen/partition.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/partition.cpp.o.d"
  "/root/repo/src/codegen/runtime_resolution.cpp" "src/CMakeFiles/fortd.dir/codegen/runtime_resolution.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/runtime_resolution.cpp.o.d"
  "/root/repo/src/codegen/spmd_printer.cpp" "src/CMakeFiles/fortd.dir/codegen/spmd_printer.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/spmd_printer.cpp.o.d"
  "/root/repo/src/codegen/storage.cpp" "src/CMakeFiles/fortd.dir/codegen/storage.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/codegen/storage.cpp.o.d"
  "/root/repo/src/driver/compiler.cpp" "src/CMakeFiles/fortd.dir/driver/compiler.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/driver/compiler.cpp.o.d"
  "/root/repo/src/frontend/ast.cpp" "src/CMakeFiles/fortd.dir/frontend/ast.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/frontend/ast.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/fortd.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/fortd.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/ipa/call_graph.cpp" "src/CMakeFiles/fortd.dir/ipa/call_graph.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/call_graph.cpp.o.d"
  "/root/repo/src/ipa/cloning.cpp" "src/CMakeFiles/fortd.dir/ipa/cloning.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/cloning.cpp.o.d"
  "/root/repo/src/ipa/inlining.cpp" "src/CMakeFiles/fortd.dir/ipa/inlining.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/inlining.cpp.o.d"
  "/root/repo/src/ipa/overlap_prop.cpp" "src/CMakeFiles/fortd.dir/ipa/overlap_prop.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/overlap_prop.cpp.o.d"
  "/root/repo/src/ipa/reaching_decomps.cpp" "src/CMakeFiles/fortd.dir/ipa/reaching_decomps.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/reaching_decomps.cpp.o.d"
  "/root/repo/src/ipa/recompilation.cpp" "src/CMakeFiles/fortd.dir/ipa/recompilation.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/recompilation.cpp.o.d"
  "/root/repo/src/ipa/side_effects.cpp" "src/CMakeFiles/fortd.dir/ipa/side_effects.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/side_effects.cpp.o.d"
  "/root/repo/src/ipa/summaries.cpp" "src/CMakeFiles/fortd.dir/ipa/summaries.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ipa/summaries.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/CMakeFiles/fortd.dir/ir/program.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ir/program.cpp.o.d"
  "/root/repo/src/ir/rsd.cpp" "src/CMakeFiles/fortd.dir/ir/rsd.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ir/rsd.cpp.o.d"
  "/root/repo/src/ir/symbol_table.cpp" "src/CMakeFiles/fortd.dir/ir/symbol_table.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/ir/symbol_table.cpp.o.d"
  "/root/repo/src/machine/interpreter.cpp" "src/CMakeFiles/fortd.dir/machine/interpreter.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/machine/interpreter.cpp.o.d"
  "/root/repo/src/machine/network.cpp" "src/CMakeFiles/fortd.dir/machine/network.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/machine/network.cpp.o.d"
  "/root/repo/src/machine/simulator.cpp" "src/CMakeFiles/fortd.dir/machine/simulator.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/machine/simulator.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/fortd.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/fortd.dir/support/diagnostics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
