# Empty dependencies file for fortd_tests.
# This may be replaced when dependencies are built.
