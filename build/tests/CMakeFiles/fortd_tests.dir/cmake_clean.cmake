file(REMOVE_RECURSE
  "CMakeFiles/fortd_tests.dir/test_analysis.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_analysis.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_codegen.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_codegen.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_dyndecomp_comm.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_dyndecomp_comm.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_frontend.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_frontend.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_integration.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_ipa.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_ipa.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_machine.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_machine.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_properties.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/fortd_tests.dir/test_rsd.cpp.o"
  "CMakeFiles/fortd_tests.dir/test_rsd.cpp.o.d"
  "fortd_tests"
  "fortd_tests.pdb"
  "fortd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
