
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/fortd_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/fortd_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_dyndecomp_comm.cpp" "tests/CMakeFiles/fortd_tests.dir/test_dyndecomp_comm.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_dyndecomp_comm.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/fortd_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/fortd_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/fortd_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ipa.cpp" "tests/CMakeFiles/fortd_tests.dir/test_ipa.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_ipa.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/fortd_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/fortd_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rsd.cpp" "tests/CMakeFiles/fortd_tests.dir/test_rsd.cpp.o" "gcc" "tests/CMakeFiles/fortd_tests.dir/test_rsd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fortd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
