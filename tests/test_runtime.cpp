// The threaded execution backend and the differential harness:
//   * differential correctness — every example program, under every
//     compilation strategy, at P in {1,2,4,8}, executes on the threaded
//     backend with numerics identical to the serial reference AND
//     identical to the simulator backend (the three-way equivalence the
//     NASA debugging-support paper's harness shape calls for),
//   * observed-vs-predicted traffic — the threaded backend's real
//     per-processor message counts and payload bytes equal the Machine
//     simulator's static predictions (the paper's Fig. 11/16/17
//     quantities, measured instead of modeled),
//   * the rendezvous channel layer — deadline detection, poison
//     unwinding, and a many-senders torture test with injected delays
//     (run under FORTD_SANITIZE=thread via the tsan ctest label).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "driver/compiler.hpp"
#include "example_programs.hpp"
#include "frontend/parser.hpp"
#include "runtime/channel.hpp"
#include "runtime/harness.hpp"
#include "support/thread_pool.hpp"

namespace fortd {
namespace {

using examples::Example;
using examples::kExamples;

// ---------------------------------------------------------------------------
// Differential execution: threaded == simulator == serial
// ---------------------------------------------------------------------------

HarnessReport run_example(const char* source, Strategy strategy, int n_procs,
                          const HarnessOptions& hopts) {
  CodegenOptions options;
  options.n_procs = n_procs;
  options.strategy = strategy;
  Compiler compiler(options);
  CompileResult compiled = compiler.compile_source(source);
  SourceProgram original = parse_program(source);
  return run_and_check(original, compiled.spmd, hopts);
}

const Strategy kStrategies[] = {Strategy::Interprocedural,
                                Strategy::Intraprocedural,
                                Strategy::RuntimeResolution};

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Interprocedural: return "inter";
    case Strategy::Intraprocedural: return "intra";
    case Strategy::RuntimeResolution: return "runtime";
  }
  return "?";
}

TEST(RuntimeDifferential, EveryExampleEveryStrategyEveryP) {
  // 5 examples x 3 strategies x P in {1,2,4,8}: the threaded backend's
  // numerics match the serial reference, its traffic matches the
  // simulator's prediction (run_and_check asserts both), and its final
  // arrays are *bitwise* equal to the simulator backend's — the two
  // parallel backends share EvalCore, so not even round-off may differ.
  for (const Example& ex : kExamples) {
    for (Strategy strategy : kStrategies) {
      for (int P : {1, 2, 4, 8}) {
        SCOPED_TRACE(std::string(ex.name) + " -s " + strategy_name(strategy) +
                     " -P " + std::to_string(P));
        HarnessOptions hopts;
        hopts.backend = BackendKind::Threaded;
        HarnessReport hr = run_example(ex.source, strategy, P, hopts);
        EXPECT_TRUE(hr.numerics_ok) << hr.text();
        EXPECT_TRUE(hr.counts_ok) << hr.text();
        EXPECT_GT(hr.arrays_checked, 0);
        ASSERT_FALSE(hr.predicted.backend.empty());
        for (const std::string& array : hr.run.main_arrays())
          EXPECT_EQ(hr.run.gather(array), hr.predicted.gather(array))
              << "threaded and simulator backends disagree on '" << array
              << "'";
      }
    }
  }
}

TEST(RuntimeDifferential, SimulatorBackendAlsoMatchesSerial) {
  // The refactored simulator-as-backend path: same numerics checks, no
  // traffic cross-check (it would compare the run against itself).
  for (const Example& ex : kExamples) {
    SCOPED_TRACE(ex.name);
    HarnessOptions hopts;
    hopts.backend = BackendKind::Simulator;
    HarnessReport hr = run_example(ex.source, Strategy::Interprocedural, 4,
                                   hopts);
    EXPECT_TRUE(hr.ok()) << hr.text();
    EXPECT_GT(hr.run.sim_time_us, 0.0);
  }
}

TEST(RuntimeDifferential, ObservedTrafficMatchesKnownPredictions) {
  // Jacobi at P=4: one +1 and one -1 shift per time step, each 3 guarded
  // boundary messages, x 20 steps = 120 messages of one 8-byte element.
  HarnessOptions hopts;
  hopts.backend = BackendKind::Threaded;
  HarnessReport hr = run_example(examples::kJacobi,
                                 Strategy::Interprocedural, 4, hopts);
  EXPECT_TRUE(hr.ok()) << hr.text();
  EXPECT_EQ(hr.run.messages, 120);
  EXPECT_EQ(hr.run.bytes, 120 * 8);
  EXPECT_EQ(hr.run.messages, hr.predicted.messages);
  EXPECT_EQ(hr.run.bytes, hr.predicted.bytes);
  for (int p = 0; p < 4; ++p) {
    const auto& obs = hr.run.per_proc[static_cast<size_t>(p)];
    const auto& pred = hr.predicted.per_proc[static_cast<size_t>(p)];
    EXPECT_EQ(obs.sends, pred.sends) << "P" << p;
    EXPECT_EQ(obs.recvs, pred.recvs) << "P" << p;
    EXPECT_EQ(obs.sent_bytes, pred.sent_bytes) << "P" << p;
    EXPECT_EQ(obs.recvd_bytes, pred.recvd_bytes) << "P" << p;
  }

  // Redistribution: 21 block<->cyclic remaps move data in both backends,
  // and both account the same moved-byte total.
  HarnessReport rd = run_example(examples::kRedistribution,
                                 Strategy::Interprocedural, 4, hopts);
  EXPECT_TRUE(rd.ok()) << rd.text();
  EXPECT_GT(rd.run.remaps_executed, 0);
  EXPECT_EQ(rd.run.remaps_executed, rd.predicted.remaps_executed);
  EXPECT_EQ(rd.run.remap_bytes, rd.predicted.remap_bytes);
}

// ---------------------------------------------------------------------------
// Threaded backend mechanics
// ---------------------------------------------------------------------------

TEST(RuntimeBackend, RunsOnASharedThreadPool) {
  CodegenOptions options;
  options.n_procs = 4;
  Compiler compiler(options);
  CompileResult compiled = compiler.compile_source(examples::kJacobi);
  SourceProgram original = parse_program(examples::kJacobi);

  ThreadPool pool(2);  // smaller than P: the backend must grow it
  HarnessOptions hopts;
  hopts.backend = BackendKind::Threaded;
  hopts.runtime.pool = &pool;
  HarnessReport hr = run_and_check(original, compiled.spmd, hopts);
  EXPECT_TRUE(hr.ok()) << hr.text();
  EXPECT_GE(pool.size(), 3) << "workers + caller must cover all 4 processes";
}

TEST(RuntimeBackend, SurvivesInjectedSendDelays) {
  // Fault injection: stagger every send by a src/dst-dependent delay so
  // rendezvous pairings form in adversarial orders. Results must not
  // change — correctness may not depend on scheduling luck.
  CodegenOptions options;
  options.n_procs = 4;
  Compiler compiler(options);
  CompileResult compiled = compiler.compile_source(examples::kRedistribution);
  SourceProgram original = parse_program(examples::kRedistribution);

  HarnessOptions hopts;
  hopts.backend = BackendKind::Threaded;
  hopts.runtime.channel.send_delay = [](int src, int dst) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(100 * ((src * 7 + dst * 13) % 5)));
  };
  HarnessReport hr = run_and_check(original, compiled.spmd, hopts);
  EXPECT_TRUE(hr.ok()) << hr.text();
}

TEST(RuntimeBackend, ParseBackendKind) {
  EXPECT_EQ(parse_backend_kind("sim"), BackendKind::Simulator);
  EXPECT_EQ(parse_backend_kind("simulator"), BackendKind::Simulator);
  EXPECT_EQ(parse_backend_kind("threads"), BackendKind::Threaded);
  EXPECT_EQ(parse_backend_kind("threaded"), BackendKind::Threaded);
  EXPECT_FALSE(parse_backend_kind("mpi").has_value());
  EXPECT_STREQ(backend_kind_name(BackendKind::Simulator), "sim");
  EXPECT_STREQ(backend_kind_name(BackendKind::Threaded), "threads");
}

// ---------------------------------------------------------------------------
// Rendezvous channel layer
// ---------------------------------------------------------------------------

TEST(ChannelFabric, RendezvousBlocksUntilTaken) {
  runtime::ChannelFabric fabric(2);
  std::atomic<bool> send_returned{false};
  std::thread sender([&] {
    runtime::RtMessage msg;
    msg.src = 0;
    msg.tag = "x";
    msg.payload = {1.0, 2.0};
    fabric.send(0, 1, std::move(msg));
    send_returned = true;
  });
  // Rendezvous: the send cannot complete before the recv.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(send_returned);
  runtime::RtMessage got = fabric.recv(1, 0);
  sender.join();
  EXPECT_TRUE(send_returned);
  EXPECT_EQ(got.payload, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(fabric.total_messages(), 1);
}

TEST(ChannelFabric, DeadlineTurnsAHangIntoChannelDeadlock) {
  runtime::ChannelOptions opts;
  opts.deadline_ms = 100;
  runtime::ChannelFabric fabric(2, opts);
  EXPECT_THROW(fabric.recv(1, 0), runtime::ChannelDeadlock);
  runtime::RtMessage msg;
  msg.payload = {1.0};
  EXPECT_THROW(fabric.send(0, 1, std::move(msg)), runtime::ChannelDeadlock);
}

TEST(ChannelFabric, PoisonUnwindsBlockedPeers) {
  runtime::ChannelFabric fabric(2);
  std::atomic<bool> aborted{false};
  std::thread stuck([&] {
    try {
      fabric.recv(1, 0);  // no sender will ever come
    } catch (const runtime::ChannelAborted&) {
      aborted = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fabric.poison("P0 failed: test");
  stuck.join();
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(fabric.poisoned());
  // Later operations fail immediately.
  EXPECT_THROW(fabric.recv(1, 0), runtime::ChannelAborted);
}

TEST(ChannelFabric, TortureManySendersManyReceiversWithDelays) {
  // 4 sender threads share ONE (src, dst) channel against 1 receiver,
  // for each of 3 destination processes, with injected delays scheduling
  // adversarial interleavings. Every message must arrive exactly once
  // (payload-sum accounting) and the fabric must stay consistent. This
  // is the racy surface — run it under FORTD_SANITIZE=thread (ctest -L
  // tsan) to vet the locking.
  constexpr int kDsts = 3;
  constexpr int kSendersPerDst = 4;
  constexpr int kMsgsPerSender = 50;

  runtime::ChannelOptions opts;
  opts.deadline_ms = 30000;
  std::atomic<int> delay_calls{0};
  opts.send_delay = [&](int src, int dst) {
    if (++delay_calls % 7 == 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(50 * ((src + dst) % 3)));
  };
  runtime::ChannelFabric fabric(1 + kDsts, opts);

  std::vector<std::thread> threads;
  std::vector<double> received_sum(kDsts, 0.0);
  for (int d = 0; d < kDsts; ++d) {
    threads.emplace_back([&, d] {
      for (int i = 0; i < kSendersPerDst * kMsgsPerSender; ++i)
        received_sum[d] += fabric.recv(1 + d, 0).payload.at(0);
    });
    for (int s = 0; s < kSendersPerDst; ++s) {
      threads.emplace_back([&, d, s] {
        for (int i = 0; i < kMsgsPerSender; ++i) {
          runtime::RtMessage msg;
          msg.src = 0;
          msg.tag = "torture";
          msg.payload = {static_cast<double>(s * kMsgsPerSender + i + 1)};
          fabric.send(0, 1 + d, std::move(msg));
        }
      });
    }
  }
  for (auto& t : threads) t.join();

  const int n = kSendersPerDst * kMsgsPerSender;
  const double expect = n * (n + 1) / 2.0;
  for (int d = 0; d < kDsts; ++d)
    EXPECT_EQ(received_sum[d], expect) << "dst " << 1 + d;
  EXPECT_EQ(fabric.total_messages(), kDsts * n);
  EXPECT_GT(delay_calls.load(), 0);
  EXPECT_FALSE(fabric.poisoned());
}

}  // namespace
}  // namespace fortd
