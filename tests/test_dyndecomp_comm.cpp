// Unit tests for the dynamic-decomposition optimizer passes and the
// communication classifier, driven at the module level (constructed
// inputs rather than whole programs).
#include <gtest/gtest.h>

#include "codegen/comm.hpp"
#include "codegen/dyndecomp.hpp"
#include "driver/compiler.hpp"

namespace fortd {
namespace {

// ---------------------------------------------------------------------------
// Communication classification
// ---------------------------------------------------------------------------

struct ClassifierFixture {
  SymbolicEnv env;
  DecompSpec block1d() {
    DecompSpec s;
    s.dists = {DistSpec{DistKind::Block, 0}};
    return s;
  }
  DecompSpec coldist() {
    DecompSpec s;
    s.dists = {DistSpec{DistKind::None, 0}, DistSpec{DistKind::Cyclic, 0}};
    return s;
  }
  ExprPtr ref1(const std::string& array, ExprPtr sub) {
    std::vector<ExprPtr> subs;
    subs.push_back(std::move(sub));
    return Expr::make_array_ref(array, std::move(subs));
  }
  IterationSet constrain(const std::string& var, const std::string& array,
                         int dim, int64_t off) {
    OwnershipConstraint c;
    c.var = var;
    c.array = array;
    c.dim = dim;
    c.offset = off;
    return IterationSet::constrained(std::move(c));
  }
};

TEST(Classifier, SameVarZeroShiftIsLocal) {
  ClassifierFixture fx;
  ArrayDistribution ad("x", fx.block1d(), {{1, 100}}, 4);
  auto ref = fx.ref1("x", Expr::make_var("i"));
  bool rt = false;
  auto ev = classify_reference(*ref, ad, fx.constrain("i", "x", 0, 0), ad,
                               fx.env, &rt);
  EXPECT_FALSE(rt);
  EXPECT_FALSE(ev.has_value());
}

TEST(Classifier, PositiveShiftProducesShiftEvent) {
  ClassifierFixture fx;
  ArrayDistribution ad("x", fx.block1d(), {{1, 100}}, 4);
  auto ref = fx.ref1(
      "x", Expr::make_binary(BinOp::Add, Expr::make_var("i"), Expr::make_int(5)));
  bool rt = false;
  auto ev = classify_reference(*ref, ad, fx.constrain("i", "x", 0, 0), ad,
                               fx.env, &rt);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, CommEvent::Kind::Shift);
  EXPECT_EQ(ev->shift, 5);
}

TEST(Classifier, ShiftWiderThanBlockFallsBackToRuntime) {
  ClassifierFixture fx;
  ArrayDistribution ad("x", fx.block1d(), {{1, 100}}, 4);  // block = 25
  auto ref = fx.ref1("x", Expr::make_binary(BinOp::Add, Expr::make_var("i"),
                                            Expr::make_int(30)));
  bool rt = false;
  auto ev = classify_reference(*ref, ad, fx.constrain("i", "x", 0, 0), ad,
                               fx.env, &rt);
  EXPECT_TRUE(rt);
  EXPECT_FALSE(ev.has_value());
}

TEST(Classifier, LoopInvariantSubscriptBroadcasts) {
  ClassifierFixture fx;
  ArrayDistribution ad("a", fx.coldist(), {{1, 64}, {1, 64}}, 4);
  // Reference a(i, k) while ownership is constrained on j: broadcast from
  // the owner of column k.
  std::vector<ExprPtr> subs;
  subs.push_back(Expr::make_var("i"));
  subs.push_back(Expr::make_var("k"));
  auto ref = Expr::make_array_ref("a", std::move(subs));
  bool rt = false;
  auto ev = classify_reference(*ref, ad, fx.constrain("j", "a", 1, 0), ad,
                               fx.env, &rt);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, CommEvent::Kind::Bcast);
  EXPECT_EQ(ev->root_index.str(), "0+k");
}

TEST(Classifier, CyclicShiftFallsBackToRuntime) {
  ClassifierFixture fx;
  DecompSpec cyc;
  cyc.dists = {DistSpec{DistKind::Cyclic, 0}};
  ArrayDistribution ad("x", cyc, {{1, 100}}, 4);
  auto ref = fx.ref1(
      "x", Expr::make_binary(BinOp::Add, Expr::make_var("i"), Expr::make_int(1)));
  bool rt = false;
  auto ev = classify_reference(*ref, ad, fx.constrain("i", "x", 0, 0), ad,
                               fx.env, &rt);
  EXPECT_TRUE(rt);
  EXPECT_FALSE(ev.has_value());
}

TEST(Classifier, ReplicatedReferenceNeedsNothing) {
  ClassifierFixture fx;
  ArrayDistribution ad =
      ArrayDistribution::replicated("w", {{1, 100}}, 4);
  auto ref = fx.ref1("w", Expr::make_var("i"));
  bool rt = false;
  auto ev =
      classify_reference(*ref, ad, IterationSet::universal(), std::nullopt,
                         fx.env, &rt);
  EXPECT_FALSE(rt);
  EXPECT_FALSE(ev.has_value());
}

TEST(CommEventTest, SameMessageDedup) {
  CommEvent a, b;
  a.kind = b.kind = CommEvent::Kind::Shift;
  a.array = b.array = "x";
  a.dist_dim = b.dist_dim = 0;
  a.shift = b.shift = 5;
  a.section = b.section = {SymTriplet::constant(1, 10)};
  EXPECT_TRUE(a.same_message(b));
  b.shift = 4;
  EXPECT_FALSE(a.same_message(b));
}

// ---------------------------------------------------------------------------
// Dynamic-decomposition optimizer on constructed programs
// ---------------------------------------------------------------------------

StmtPtr make_remap(const std::string& array, DistKind from, DistKind to) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Remap;
  s->dist_target = array;
  s->from_specs = {DistSpec{from, 0}};
  s->dist_specs = {DistSpec{to, 0}};
  return s;
}

StmtPtr make_use(const std::string& array) {
  return Stmt::make_assign(
      Expr::make_array_ref(array, [] {
        std::vector<ExprPtr> subs;
        subs.push_back(Expr::make_int(1));
        return subs;
      }()),
      Expr::make_real(0.0));
}

SpmdProgram wrap(std::vector<StmtPtr> body) {
  SpmdProgram spmd;
  spmd.options.n_procs = 4;
  auto proc = std::make_unique<Procedure>();
  proc->name = "p";
  proc->is_program = true;
  VarDecl x;
  x.name = "x";
  x.dims.push_back({nullptr, Expr::make_int(16)});
  proc->decls.push_back(std::move(x));
  proc->body = std::move(body);
  int id = 0;
  walk_stmts(proc->body, [&](Stmt& s) { s.id = id++; });
  proc->next_stmt_id = id;
  spmd.ast.procedures.push_back(std::move(proc));
  return spmd;
}

int remap_count(const SpmdProgram& spmd) {
  int n = 0;
  walk_stmts(spmd.ast.procedures[0]->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Remap) ++n;
  });
  return n;
}

TEST(DynDecompPasses, DeadRemapEliminated) {
  // remap -> remap with no use in between: the first is dead.
  std::vector<StmtPtr> body;
  body.push_back(make_remap("x", DistKind::Block, DistKind::Cyclic));
  body.push_back(make_remap("x", DistKind::Cyclic, DistKind::Block));
  body.push_back(make_use("x"));
  SpmdProgram spmd = wrap(std::move(body));
  optimize_dynamic_decomps(spmd, DynDecompOpt::Live);
  EXPECT_EQ(remap_count(spmd), 1);
  EXPECT_EQ(spmd.stats.remaps_eliminated_dead, 1);
}

TEST(DynDecompPasses, RedundantRemapCoalesced) {
  // remap-to-cyclic; use; remap-to-cyclic again: the second is redundant.
  std::vector<StmtPtr> body;
  body.push_back(make_remap("x", DistKind::Block, DistKind::Cyclic));
  body.push_back(make_use("x"));
  body.push_back(make_remap("x", DistKind::Cyclic, DistKind::Cyclic));
  body.push_back(make_use("x"));
  SpmdProgram spmd = wrap(std::move(body));
  optimize_dynamic_decomps(spmd, DynDecompOpt::Live);
  EXPECT_EQ(remap_count(spmd), 1);
  EXPECT_EQ(spmd.stats.remaps_coalesced, 1);
}

TEST(DynDecompPasses, LiveRemapKept) {
  std::vector<StmtPtr> body;
  body.push_back(make_remap("x", DistKind::Block, DistKind::Cyclic));
  body.push_back(make_use("x"));
  body.push_back(make_remap("x", DistKind::Cyclic, DistKind::Block));
  body.push_back(make_use("x"));
  SpmdProgram spmd = wrap(std::move(body));
  optimize_dynamic_decomps(spmd, DynDecompOpt::Full);
  EXPECT_EQ(remap_count(spmd), 2);
}

TEST(DynDecompPasses, InvariantRemapHoistedOutOfLoop) {
  // do t: { remap(x -> cyclic); use(x) }  — the remap is the only one and
  // nothing uses x before it: hoist before the loop.
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(make_remap("x", DistKind::Block, DistKind::Cyclic));
  loop_body.push_back(make_use("x"));
  std::vector<StmtPtr> body;
  body.push_back(Stmt::make_do("t", Expr::make_int(1), Expr::make_int(10),
                               nullptr, std::move(loop_body)));
  SpmdProgram spmd = wrap(std::move(body));
  optimize_dynamic_decomps(spmd, DynDecompOpt::LiveInvariant);
  // After hoisting the loop no longer contains a remap.
  const Stmt* loop = nullptr;
  walk_stmts(spmd.ast.procedures[0]->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Do) loop = &s;
  });
  ASSERT_NE(loop, nullptr);
  int in_loop = 0;
  walk_stmts(loop->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Remap) ++in_loop;
  });
  EXPECT_EQ(in_loop, 0);
  EXPECT_GE(spmd.stats.remaps_hoisted, 1);
}

TEST(DynDecompPasses, NoneLevelLeavesEverything) {
  std::vector<StmtPtr> body;
  body.push_back(make_remap("x", DistKind::Block, DistKind::Cyclic));
  body.push_back(make_remap("x", DistKind::Cyclic, DistKind::Block));
  SpmdProgram spmd = wrap(std::move(body));
  optimize_dynamic_decomps(spmd, DynDecompOpt::None);
  EXPECT_EQ(remap_count(spmd), 2);
}

TEST(DynDecompPasses, ArrayKillConvertsToMark) {
  // remap followed by a call that fully overwrites the array.
  std::vector<StmtPtr> body;
  body.push_back(make_remap("x", DistKind::Cyclic, DistKind::Block));
  body.push_back(Stmt::make_call("killer", [] {
    std::vector<ExprPtr> args;
    args.push_back(Expr::make_var("x"));
    return args;
  }()));
  SpmdProgram spmd = wrap(std::move(body));
  std::map<std::string, ArrayKillSummary> kills;
  kills["killer"].killed_formals.insert(0);
  optimize_dynamic_decomps(spmd, DynDecompOpt::Full, kills);
  int marks = 0;
  walk_stmts(spmd.ast.procedures[0]->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::MarkDist) ++marks;
  });
  EXPECT_EQ(marks, 1);
  EXPECT_EQ(remap_count(spmd), 0);
}

}  // namespace
}  // namespace fortd
