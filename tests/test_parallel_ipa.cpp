// Incremental, wavefront-parallel interprocedural analysis:
//   * serial (no pool) and parallel (pooled) run_ipa produce identical
//     summaries, side effects, reaching decompositions, and clone sets
//     over every workload generator,
//   * the incremental cloning fixed point equals a full recompute while
//     carrying unchanged procedures over between rounds,
//   * the Compiler's IpaSummaryCache skips local analysis for unchanged
//     procedures across compile() calls (1-of-N edit re-analyzes 1),
//   * top_down_levels respects caller-before-callee,
//   * the machine simulator runs correctly on a shared ThreadPool.
#include <gtest/gtest.h>

#include <sstream>

#include "../bench/programs.hpp"
#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "support/thread_pool.hpp"

namespace fortd {
namespace {

// ---------------------------------------------------------------------------
// Canonical dump of everything run_ipa produces. Statement-keyed maps are
// re-keyed by pre-order statement index so the dump is address-free and
// comparable across independent compiles.
// ---------------------------------------------------------------------------

void dump_specs(std::ostringstream& os,
                const std::map<std::string, std::set<DecompSpec>>& vars) {
  for (const auto& [var, specs] : vars) {
    os << " " << var << "={";
    for (const auto& spec : specs) os << spec.str() << "|";
    os << "}";
  }
}

std::string dump_ipa(const BoundProgram& bp, const IpaContext& ctx) {
  std::ostringstream os;
  os << "clones:" << ctx.clones_created << "\n";
  for (const auto& [clone, origin] : ctx.clone_origin)
    os << "origin " << clone << "<-" << origin << "\n";
  for (const auto& name : ctx.runtime_fallback) os << "fallback " << name << "\n";

  for (const auto& [name, sum] : ctx.summaries) {
    os << "summary " << name << " hash=" << sum.hash
       << " dyn=" << sum.has_dynamic_decomp
       << " dist=" << sum.distribute_stmts.size() << "\n";
    os << " mod:";
    for (const auto& v : sum.mod) os << " " << v;
    os << "\n ref:";
    for (const auto& v : sum.ref) os << " " << v;
    os << "\n";
    for (const auto& [a, list] : sum.defs) os << " def " << a << "=" << list.str() << "\n";
    for (const auto& [a, list] : sum.uses) os << " use " << a << "=" << list.str() << "\n";
    for (const auto& [a, ov] : sum.overlaps) os << " ov " << a << "=" << ov.str() << "\n";
    for (const auto& e : sum.local_reaching) {
      os << " lr " << e.callee << ":";
      dump_specs(os, e.reaching);
      os << "\n";
    }
  }

  auto dump_names = [&](const char* tag,
                        const std::map<std::string, std::set<std::string>>& m) {
    for (const auto& [name, vars] : m) {
      os << tag << " " << name << ":";
      for (const auto& v : vars) os << " " << v;
      os << "\n";
    }
  };
  dump_names("gmod", ctx.effects.gmod);
  dump_names("gref", ctx.effects.gref);
  auto dump_sections =
      [&](const char* tag,
          const std::map<std::string, std::map<std::string, RsdList>>& m) {
        for (const auto& [name, arrays] : m) {
          os << tag << " " << name << ":";
          for (const auto& [a, list] : arrays) os << " " << a << "=" << list.str();
          os << "\n";
        }
      };
  dump_sections("gdefs", ctx.effects.gdefs);
  dump_sections("guses", ctx.effects.guses);

  for (const auto& [name, vars] : ctx.reaching.reaching) {
    os << "reaching " << name << ":";
    dump_specs(os, vars);
    os << "\n";
  }
  for (const auto& proc : bp.ast.procedures) {
    auto it = ctx.reaching.at_stmt.find(proc->name);
    if (it == ctx.reaching.at_stmt.end()) continue;
    std::map<const Stmt*, size_t> index_of;
    size_t count = 0;
    walk_stmts(proc->body, [&](const Stmt& s) { index_of[&s] = count++; });
    std::map<size_t, const std::map<std::string, std::set<DecompSpec>>*> ordered;
    for (const auto& [stmt, vars] : it->second) {
      auto f = index_of.find(stmt);
      if (f == index_of.end()) {
        ADD_FAILURE() << proc->name << ": at_stmt key outside the AST";
        continue;
      }
      ordered[f->second] = &vars;
    }
    for (const auto& [idx, vars] : ordered) {
      os << "at " << proc->name << "#" << idx << ":";
      dump_specs(os, *vars);
      os << "\n";
    }
  }
  return os.str();
}

std::string ipa_dump_of(const std::string& src, const IpaOptions& opts,
                        ThreadPool* pool = nullptr) {
  BoundProgram bp = parse_and_bind(src);
  IpaContext ctx = run_ipa(bp, opts, pool);
  return dump_ipa(bp, ctx);
}

// ---------------------------------------------------------------------------
// Determinism: serial vs parallel, incremental vs full
// ---------------------------------------------------------------------------

class IpaDeterminism
    : public ::testing::TestWithParam<std::pair<const char*, std::string>> {};

TEST_P(IpaDeterminism, SerialAndParallelAgree) {
  const std::string& src = GetParam().second;
  ThreadPool pool(3);
  std::string serial = ipa_dump_of(src, {});
  std::string parallel = ipa_dump_of(src, {}, &pool);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST_P(IpaDeterminism, IncrementalAndFullRecomputeAgree) {
  const std::string& src = GetParam().second;
  IpaOptions full;
  full.incremental = false;
  IpaOptions inc;
  inc.incremental = true;
  EXPECT_EQ(ipa_dump_of(src, full), ipa_dump_of(src, inc));
}

TEST_P(IpaDeterminism, ParallelIncrementalEqualsSerialFull) {
  const std::string& src = GetParam().second;
  IpaOptions full;
  full.incremental = false;
  ThreadPool pool(3);
  EXPECT_EQ(ipa_dump_of(src, full), ipa_dump_of(src, {}, &pool));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, IpaDeterminism,
    ::testing::Values(
        std::make_pair("stencil1d", bench::stencil1d(64)),
        std::make_pair("fig4", bench::fig4(32, 8)),
        std::make_pair("fig15", bench::fig15(64, 4)),
        std::make_pair("dgefa", bench::dgefa(16)),
        std::make_pair("call_chain", bench::call_chain(12, 64)),
        std::make_pair("cloning_hub", bench::cloning_hub(4, 16)),
        std::make_pair("cloning_fanout", bench::cloning_fanout(8, 3, 32)),
        std::make_pair("fan_out", bench::fan_out(16, 64))),
    [](const auto& info) { return info.param.first; });

TEST(IpaDeterminism, ParallelEndToEndOutputIsIdentical) {
  // Through the whole Compiler (pooled IPA + pooled codegen): the printed
  // SPMD program must not depend on jobs.
  std::string src = bench::cloning_fanout(8, 3, 32);
  CodegenOptions serial_opt;
  serial_opt.n_procs = 4;
  CodegenOptions par_opt = serial_opt;
  par_opt.jobs = 4;
  Compiler serial(serial_opt);
  Compiler parallel(par_opt);
  EXPECT_EQ(print_spmd(serial.compile_source(src).spmd),
            print_spmd(parallel.compile_source(src).spmd));
}

// ---------------------------------------------------------------------------
// Incremental fixed point: reuse accounting
// ---------------------------------------------------------------------------

TEST(IncrementalIpa, CloningRoundReusesUntouchedLeaves) {
  // 8 leaves never change; the hub gets 2 clones in round 1. Round 2 must
  // re-analyze only {hub$2, hub$3, p} and carry the leaves over.
  BoundProgram bp = parse_and_bind(bench::cloning_fanout(8, 3, 32));
  IpaContext ctx = run_ipa(bp);
  EXPECT_EQ(ctx.clones_created, 2);
  EXPECT_GE(ctx.stats.rounds, 2);
  EXPECT_EQ(ctx.stats.rounds_incremental, ctx.stats.rounds - 1);
  // Round 1 analyzes all 10 procedures; round 2 the 2 clones + retargeted
  // main program.
  EXPECT_EQ(ctx.stats.summaries_computed, 13);
  EXPECT_EQ(ctx.stats.summaries_reused, 9);  // 8 leaves + original hub
  EXPECT_GT(ctx.stats.effects_reused, 0);
  EXPECT_GT(ctx.stats.reaching_reused, 0);
}

TEST(IncrementalIpa, FullRecomputeReusesNothing) {
  IpaOptions full;
  full.incremental = false;
  BoundProgram bp = parse_and_bind(bench::cloning_fanout(8, 3, 32));
  IpaContext ctx = run_ipa(bp, full);
  EXPECT_EQ(ctx.stats.rounds_incremental, 0);
  EXPECT_EQ(ctx.stats.summaries_reused, 0);
  EXPECT_EQ(ctx.stats.effects_reused, 0);
  EXPECT_EQ(ctx.stats.reaching_reused, 0);
}

TEST(IncrementalIpa, CloneNamesMatchFullRecompute) {
  IpaOptions full;
  full.incremental = false;
  BoundProgram bp1 = parse_and_bind(bench::cloning_hub(4, 16));
  BoundProgram bp2 = parse_and_bind(bench::cloning_hub(4, 16));
  IpaContext inc = run_ipa(bp1);
  IpaContext ful = run_ipa(bp2, full);
  EXPECT_EQ(inc.clone_origin, ful.clone_origin);
  EXPECT_EQ(inc.clones_created, ful.clones_created);
  EXPECT_EQ(inc.runtime_fallback, ful.runtime_fallback);
}

// ---------------------------------------------------------------------------
// IpaSummaryCache: cross-compile reuse keyed by hash_procedure
// ---------------------------------------------------------------------------

TEST(SummaryCache, SecondCompileSkipsAllLocalAnalysis) {
  std::string src = bench::fan_out(8, 64);
  Compiler compiler;
  CompileResult r1 = compiler.compile_source(src);
  EXPECT_EQ(r1.stats.summaries_computed, 9);  // 8 leaves + program
  EXPECT_EQ(r1.stats.summaries_cached, 0);

  CompileResult r2 = compiler.compile_source(src);
  EXPECT_EQ(r2.stats.summaries_computed, 0);
  EXPECT_EQ(r2.stats.summaries_cached, 9);
  EXPECT_EQ(print_spmd(r1.spmd), print_spmd(r2.spmd));
}

TEST(SummaryCache, OneEditReanalyzesOneProcedure) {
  Compiler compiler;
  compiler.compile_source(bench::fan_out(8, 64));
  CompileResult r = compiler.compile_source(bench::fan_out(8, 64, 3));
  EXPECT_EQ(r.stats.summaries_computed, 1);  // only the edited leaf3
  EXPECT_EQ(r.stats.summaries_cached, 8);

  // Byte-identical to a cold compile of the edited program.
  Compiler cold;
  EXPECT_EQ(print_spmd(r.spmd),
            print_spmd(cold.compile_source(bench::fan_out(8, 64, 3)).spmd));
}

TEST(SummaryCache, RehydratedPointersTargetTheNewAst) {
  // Insert a summary computed from one AST, look it up against a second
  // parse of the same source: the Stmt pointers must land in the new AST.
  std::string src = bench::fig15(64, 4);
  BoundProgram bp1 = parse_and_bind(src);
  BoundProgram bp2 = parse_and_bind(src);
  const Procedure* f1_old = bp1.find("f1");
  const Procedure* f1_new = bp2.find("f1");
  ASSERT_NE(f1_old, nullptr);
  ASSERT_NE(f1_new, nullptr);

  IpaSummaryCache cache;
  ProcSummary sum = compute_summary(bp1, "f1");
  ASSERT_FALSE(sum.distribute_stmts.empty());
  uint64_t h = hash_procedure(*f1_old);
  EXPECT_EQ(hash_procedure(*f1_new), h);
  EXPECT_FALSE(cache.lookup(h, *f1_new).has_value());  // cold
  cache.insert(h, *f1_old, sum);

  auto hit = cache.lookup(h, *f1_new);
  ASSERT_TRUE(hit.has_value());
  std::set<const Stmt*> new_stmts;
  walk_stmts(f1_new->body, [&](const Stmt& s) { new_stmts.insert(&s); });
  for (const Stmt* s : hit->distribute_stmts) EXPECT_TRUE(new_stmts.count(s));
  for (const auto& e : hit->local_reaching)
    EXPECT_TRUE(new_stmts.count(e.call_stmt));
  // Value parts are untouched.
  EXPECT_EQ(hit->mod, sum.mod);
  EXPECT_EQ(hit->ref, sum.ref);
  EXPECT_EQ(hit->hash, sum.hash);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SummaryCache, CachedCompileIsByteIdenticalAcrossJobs) {
  std::string src = bench::cloning_fanout(8, 3, 32);
  CodegenOptions opt;
  opt.jobs = 4;
  Compiler warm(opt);
  warm.compile_source(src);
  CompileResult r = warm.compile_source(src);  // summaries all cached
  EXPECT_EQ(r.stats.summaries_computed, 0);
  Compiler cold;
  EXPECT_EQ(print_spmd(r.spmd), print_spmd(cold.compile_source(src).spmd));
}

// ---------------------------------------------------------------------------
// Top-down wavefront levels
// ---------------------------------------------------------------------------

TEST(TopDownLevels, DgefaRespectsCallerBeforeCallee) {
  BoundProgram bp = parse_and_bind(bench::dgefa(16));
  IpaContext ctx = run_ipa(bp);
  auto levels = ctx.acg.top_down_levels();
  ASSERT_FALSE(levels.empty());

  std::map<int, int> level_of;
  for (size_t l = 0; l < levels.size(); ++l)
    for (int idx : levels[l]) {
      EXPECT_EQ(level_of.count(idx), 0u);
      level_of[idx] = static_cast<int>(l);
    }
  EXPECT_EQ(level_of.size(), bp.ast.procedures.size());

  for (const CallSiteInfo& site : ctx.acg.call_sites()) {
    int caller = ctx.acg.procedure_index(site.caller);
    int callee = ctx.acg.procedure_index(site.callee);
    EXPECT_LT(level_of.at(caller), level_of.at(callee))
        << site.caller << " -> " << site.callee;
  }

  // main alone at level 0, the four BLAS leaves below it.
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].size(), 1u);
  EXPECT_EQ(levels[0][0], ctx.acg.procedure_index("main"));
  EXPECT_EQ(levels[1].size(), 4u);
}

TEST(TopDownLevels, ConcatenationIsATopologicalOrder) {
  BoundProgram bp = parse_and_bind(bench::call_chain(10, 32));
  IpaContext ctx = run_ipa(bp);
  std::vector<int> flat;
  for (const auto& level : ctx.acg.top_down_levels())
    for (int idx : level) flat.push_back(idx);
  EXPECT_EQ(flat, ctx.acg.topological_indices());
}

// ---------------------------------------------------------------------------
// Shared pool: ensure_workers + the simulator's processor batch
// ---------------------------------------------------------------------------

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.size(), 3);
  pool.ensure_workers(2);
  EXPECT_EQ(pool.size(), 3);
  std::atomic<int> total{0};
  pool.parallel_for(64, [&](size_t) { ++total; });
  EXPECT_EQ(total.load(), 64);
}

TEST(Simulator, PooledRunMatchesThreadedRun) {
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(bench::fig4(32, 8));

  RunResult threaded = simulate(r.spmd);
  ThreadPool pool(0);  // run() must grow it to cover the processors
  Machine pooled(CostModel::ipsc860(), &pool);
  RunResult viapool = pooled.run(r.spmd);
  EXPECT_GE(pool.size(), opt.n_procs - 1);
  EXPECT_EQ(viapool.sim_time_us, threaded.sim_time_us);
  EXPECT_EQ(viapool.messages, threaded.messages);
  EXPECT_EQ(viapool.bytes, threaded.bytes);
  EXPECT_EQ(viapool.gather("x", *r.ipa.reaching.unique_spec("p1", "x")),
            threaded.gather("x", *r.ipa.reaching.unique_spec("p1", "x")));
}

TEST(Simulator, CompileAndRunUsesTheSharedPool) {
  // compile_and_run wires the compiler's pool into the Machine; the
  // result must match a plain simulate() of the same program.
  std::string src = bench::stencil1d(64);
  CodegenOptions opt;
  opt.n_procs = 4;
  RunResult pooled = compile_and_run(src, opt);
  Compiler compiler(opt);
  RunResult plain = simulate(compiler.compile_source(src).spmd);
  EXPECT_EQ(pooled.sim_time_us, plain.sim_time_us);
  EXPECT_EQ(pooled.messages, plain.messages);
}

}  // namespace
}  // namespace fortd
