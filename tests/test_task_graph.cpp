// The barrier-free work-stealing scheduler (TaskGraph) and its three
// consumers:
//   * TaskGraph shape tests — chain, diamond, fan — respect dependency
//     order under stealing, fire the ready hook before each body, and
//     account executed/stolen/ready-peak/critical-path,
//   * exception policy: dependents of a failed node are cancelled, every
//     independent node still runs, the lowest-index failure is rethrown
//     (the serial first-failure), and the pool survives for reuse,
//   * byte-identity: serial, wavefront, and work-stealing schedules
//     print identical SPMD programs with identical cache hit/miss
//     counts across jobs 1/2/4,
//   * both IPA propagation passes produce identical maps under either
//     scheduler,
//   * readiness-driven prefetch accounting against a warm daemon fleet,
//   * ThreadPool satellites: parallel_for(0) never touches batch state,
//     ensure_workers grows the pool between batches.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "../bench/programs.hpp"
#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "fleet_harness.hpp"
#include "frontend/parser.hpp"
#include "support/task_graph.hpp"
#include "support/thread_pool.hpp"

namespace fortd {
namespace {

using fleet_test::TestFleet;
using fleet_test::fresh_cache_dir;

// ---------------------------------------------------------------------------
// TaskGraph shapes
// ---------------------------------------------------------------------------

/// Records completion order and asserts every dependency finished before
/// its dependent started.
struct OrderRecorder {
  std::mutex mu;
  std::vector<size_t> done;
  std::vector<char> finished;

  explicit OrderRecorder(size_t n) : finished(n, 0) {}

  void body(size_t i, const std::vector<std::pair<size_t, size_t>>& edges) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [node, dep] : edges)
      if (node == i)
        EXPECT_TRUE(finished[dep]) << "node " << i << " ran before dep " << dep;
    finished[i] = 1;
    done.push_back(i);
  }
};

void run_shape(size_t n, const std::vector<std::pair<size_t, size_t>>& edges,
               ThreadPool* pool, size_t expect_critical_path) {
  TaskGraph graph(n);
  for (const auto& [node, dep] : edges) graph.add_dependency(node, dep);
  OrderRecorder rec(n);
  graph.run(pool, [&](size_t i) { rec.body(i, edges); });
  EXPECT_EQ(rec.done.size(), n);
  EXPECT_EQ(graph.stats().executed, n);
  EXPECT_EQ(graph.stats().cancelled, 0u);
  EXPECT_EQ(graph.stats().critical_path, expect_critical_path);
  EXPECT_GE(graph.stats().ready_peak, 1u);
}

TEST(TaskGraph, ChainDiamondAndFanRespectDependencies) {
  ThreadPool pool(3);
  // Chain 0 -> 1 -> 2 -> 3 (edges point dep -> dependent).
  run_shape(4, {{1, 0}, {2, 1}, {3, 2}}, &pool, 4);
  // Diamond: 1 and 2 depend on 0; 3 joins them.
  run_shape(4, {{1, 0}, {2, 0}, {3, 1}, {3, 2}}, &pool, 3);
  // Fan: 8 leaves feeding one root.
  {
    std::vector<std::pair<size_t, size_t>> edges;
    for (size_t leaf = 0; leaf < 8; ++leaf) edges.push_back({8, leaf});
    run_shape(9, edges, &pool, 2);
  }
  // Inline (no pool) runs in index order.
  {
    TaskGraph graph(5);
    graph.add_dependency(4, 1);
    std::vector<size_t> order;
    graph.run(nullptr, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  }
}

TEST(TaskGraph, ReadyHookFiresOnceBeforeEachBody) {
  ThreadPool pool(3);
  const size_t n = 16;
  TaskGraph graph(n);
  for (size_t i = 1; i < n; ++i) graph.add_dependency(i, i / 2);  // tree
  std::mutex mu;
  std::vector<int> hooked(n, 0);
  graph.set_ready_hook([&](const std::vector<size_t>& ready) {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t r : ready) hooked[r]++;
  });
  graph.run(&pool, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(hooked[i], 1) << "body " << i << " ran before its ready hook";
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hooked[i], 1);
}

TEST(TaskGraph, AuxTasksRunOnIdleSlotsAndDropAtTermination) {
  ThreadPool pool(3);
  TaskGraph graph(4);
  std::atomic<int> aux_ran{0};
  graph.set_ready_hook([&](const std::vector<size_t>& ready) {
    for (size_t r = 0; r < ready.size(); ++r)
      graph.spawn_aux([&] { aux_ran++; });
  });
  graph.run(&pool, [](size_t) {});
  const auto& st = graph.stats();
  EXPECT_EQ(st.aux_executed + st.aux_dropped, 4u);
  EXPECT_EQ(static_cast<uint64_t>(aux_ran.load()), st.aux_executed);

  // Inline: spawn_aux executes at the spawn point, nothing dropped.
  TaskGraph inline_graph(2);
  std::vector<int> trace;
  inline_graph.set_ready_hook([&](const std::vector<size_t>& ready) {
    for (size_t r = 0; r < ready.size(); ++r)
      inline_graph.spawn_aux([&] { trace.push_back(-1); });
  });
  inline_graph.run(nullptr, [&](size_t i) { trace.push_back(static_cast<int>(i)); });
  EXPECT_EQ(trace, (std::vector<int>{-1, -1, 0, 1}));
  EXPECT_EQ(inline_graph.stats().aux_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Exceptions
// ---------------------------------------------------------------------------

TEST(TaskGraph, LowestIndexFailureWinsAndPoolSurvives) {
  ThreadPool pool(3);
  // 8 independent nodes; 3 and 5 throw. Serial index order reports 3
  // first, so the parallel run must too — and nodes 0..7 except none
  // are cancelled (no dependents).
  TaskGraph graph(8);
  std::atomic<int> ran{0};
  try {
    graph.run(&pool, [&](size_t i) {
      ran++;
      if (i == 3) throw std::runtime_error("node3");
      if (i == 5) throw std::runtime_error("node5");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "node3");
  }
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(graph.stats().cancelled, 0u);

  // Dependents of a failed node are cancelled transitively; siblings run.
  TaskGraph chain(4);
  chain.add_dependency(1, 0);
  chain.add_dependency(2, 1);
  chain.add_dependency(3, 0);  // sibling branch, must still run
  std::atomic<int> ran2{0};
  try {
    chain.run(&pool, [&](size_t i) {
      ran2++;
      if (i == 1) throw std::runtime_error("mid");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "mid");
  }
  EXPECT_EQ(ran2.load(), 3);  // 0, 1, 3; node 2 cancelled
  EXPECT_EQ(chain.stats().cancelled, 1u);

  // The pool is reusable after both throws.
  std::atomic<int> after{0};
  pool.parallel_for(16, [&](size_t) { after++; });
  EXPECT_EQ(after.load(), 16);
}

TEST(TaskGraph, InlineThrowMatchesSerialFirstFailure) {
  TaskGraph graph(4);
  std::vector<size_t> ran;
  EXPECT_THROW(graph.run(nullptr,
                         [&](size_t i) {
                           ran.push_back(i);
                           if (i == 2) throw std::runtime_error("x");
                         }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<size_t>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Byte-identity across schedulers
// ---------------------------------------------------------------------------

std::string compile_sched(const std::string& src, Scheduler sched, int jobs,
                          CompilerStats* stats = nullptr) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.jobs = jobs;
  opt.scheduler = sched;
  IpaOptions iopt;
  iopt.scheduler = sched;
  Compiler compiler(opt, iopt);
  CompileResult r = compiler.compile_source(src);
  if (stats) *stats = r.stats;
  return print_spmd(r.spmd);
}

class SchedulerDeterminism
    : public ::testing::TestWithParam<std::pair<const char*, std::string>> {};

TEST_P(SchedulerDeterminism, AllSchedulesPrintIdentically) {
  const std::string& src = GetParam().second;
  CompilerStats serial_stats;
  std::string serial =
      compile_sched(src, Scheduler::Wavefront, 1, &serial_stats);
  ASSERT_FALSE(serial.empty());
  for (int jobs : {1, 2, 4}) {
    CompilerStats ws;
    EXPECT_EQ(serial, compile_sched(src, Scheduler::WorkStealing, jobs, &ws))
        << "work-stealing jobs=" << jobs;
    EXPECT_EQ(serial_stats.cache_hits, ws.cache_hits) << "jobs=" << jobs;
    EXPECT_EQ(serial_stats.cache_misses, ws.cache_misses) << "jobs=" << jobs;
    EXPECT_EQ(serial_stats.generated, ws.generated) << "jobs=" << jobs;
    CompilerStats wf;
    EXPECT_EQ(serial, compile_sched(src, Scheduler::Wavefront, jobs, &wf))
        << "wavefront jobs=" << jobs;
    EXPECT_EQ(serial_stats.cache_misses, wf.cache_misses) << "jobs=" << jobs;
  }
}

const char* kJacobi = R"(
      program jacobi
      real u(256)
      real unew(256)
      integer i, t
      distribute u(block)
      distribute unew(block)
      do i = 1, 256
        u(i) = modp(i*13, 97) * 1.0
      enddo
      do t = 1, 20
        do i = 2, 255
          unew(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
        do i = 2, 255
          u(i) = unew(i)
        enddo
      enddo
      end
)";

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SchedulerDeterminism,
    ::testing::Values(
        std::make_pair("jacobi", std::string(kJacobi)),
        std::make_pair("dgefa", bench::dgefa(16)),
        std::make_pair("cloning_fanout", bench::cloning_fanout(8, 4, 32)),
        std::make_pair("chain_fanout", bench::chain_fanout(6, 8, 64))),
    [](const auto& info) { return info.param.first; });

TEST(SchedulerDeterminism, RecompileRegeneratesTheSameSetUnderBothSchedules) {
  // Warm compile + one-leaf edit: the cache must regenerate exactly the
  // same procedures whichever schedule probes it.
  const std::string base = bench::fan_out(12, 64);
  const std::string edited = bench::fan_out(12, 64, /*edited_leaf=*/5);
  std::vector<std::vector<std::string>> regenerated;
  for (Scheduler sched : {Scheduler::WorkStealing, Scheduler::Wavefront}) {
    CodegenOptions opt;
    opt.n_procs = 4;
    opt.jobs = 4;
    opt.scheduler = sched;
    IpaOptions iopt;
    iopt.scheduler = sched;
    Compiler compiler(opt, iopt);
    compiler.compile_source(base);
    CompileResult r = compiler.compile_source(edited);
    regenerated.push_back(r.regenerated);
  }
  EXPECT_EQ(regenerated[0], (std::vector<std::string>{"leaf5"}));
  EXPECT_EQ(regenerated[0], regenerated[1]);
}

// ---------------------------------------------------------------------------
// IPA passes under both schedulers
// ---------------------------------------------------------------------------

std::string dump_effects(const SideEffects& fx) {
  std::ostringstream os;
  auto names = [&](const char* tag,
                   const std::map<std::string, std::set<std::string>>& m) {
    for (const auto& [proc, vars] : m) {
      os << tag << " " << proc << ":";
      for (const auto& v : vars) os << " " << v;
      os << "\n";
    }
  };
  names("gmod", fx.gmod);
  names("gref", fx.gref);
  auto sections =
      [&](const char* tag,
          const std::map<std::string, std::map<std::string, RsdList>>& m) {
        for (const auto& [proc, arrays] : m) {
          os << tag << " " << proc << ":";
          for (const auto& [a, list] : arrays) os << " " << a << "=" << list.str();
          os << "\n";
        }
      };
  sections("gdefs", fx.gdefs);
  sections("guses", fx.guses);
  return os.str();
}

TEST(SchedulerDeterminism, IpaPassesMatchAcrossSchedulers) {
  for (const std::string& src :
       {bench::dgefa(16), bench::chain_fanout(6, 8, 64),
        bench::cloning_fanout(8, 4, 32)}) {
    // One bound program, so statement pointers are comparable across runs.
    BoundProgram bp = parse_and_bind(src);
    AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
    auto summaries = compute_all_summaries(bp);
    ThreadPool pool(3);

    SideEffects fx_wave = compute_side_effects(bp, acg, summaries, nullptr,
                                               Scheduler::Wavefront);
    SideEffects fx_steal = compute_side_effects(bp, acg, summaries, &pool,
                                                Scheduler::WorkStealing);
    EXPECT_EQ(dump_effects(fx_wave), dump_effects(fx_steal));

    ReachingDecomps rd_wave = compute_reaching_decomps(
        bp, acg, summaries, nullptr, Scheduler::Wavefront);
    ReachingDecomps rd_steal = compute_reaching_decomps(
        bp, acg, summaries, &pool, Scheduler::WorkStealing);
    EXPECT_EQ(rd_wave.reaching, rd_steal.reaching);
    EXPECT_EQ(rd_wave.at_stmt, rd_steal.at_stmt);

    // Entry presence must match too (§8 digests hash presence): the
    // work-stealing pre-size/erase dance must not leave placeholders.
    EXPECT_EQ(rd_wave.reaching.size(), rd_steal.reaching.size());
  }
}

TEST(SchedulerDeterminism, SchedulerChoiceDoesNotPerturbDigests) {
  // Same program compiled by two Compilers that differ only in
  // scheduler: the second must hit the first's artifacts through a
  // shared cache directory — digests exclude the schedule.
  const std::string dir = fresh_cache_dir("sched_digest");
  const std::string src = bench::chain_fanout(5, 6, 64);
  auto compile_into = [&](Scheduler sched) {
    CodegenOptions opt;
    opt.n_procs = 4;
    opt.jobs = 2;
    opt.scheduler = sched;
    CacheOptions copt;
    copt.dir = dir;
    Compiler compiler(opt, {}, {}, copt);
    return compiler.compile_source(src);
  };
  CompileResult warm = compile_into(Scheduler::Wavefront);
  EXPECT_EQ(warm.stats.generated, 12);
  CompileResult cold = compile_into(Scheduler::WorkStealing);
  EXPECT_EQ(cold.stats.generated, 0)
      << "work-stealing digests must match wavefront digests";
}

// ---------------------------------------------------------------------------
// Readiness-driven prefetch against a warm fleet
// ---------------------------------------------------------------------------

TEST(SchedulerDeterminism, ReadinessPrefetchLandsAgainstWarmFleet) {
  TestFleet fleet("sched_prefetch", 2);
  const std::string src = bench::chain_fanout(6, 8, 64);
  auto compile_fleet = [&](const std::string& dir, int jobs,
                           Scheduler sched) {
    CodegenOptions opt;
    opt.n_procs = 4;
    opt.jobs = jobs;
    opt.scheduler = sched;
    IpaOptions iopt;
    iopt.scheduler = sched;
    CacheOptions copt;
    copt.dir = dir;
    copt.remote_endpoint = fleet.endpoints();
    Compiler compiler(opt, iopt, {}, copt);
    CompileResult r = compiler.compile_source(src);
    EXPECT_FALSE(compiler.remote_store()->any_degraded())
        << compiler.remote_store()->degraded_reason();
    return r;
  };

  compile_fleet(fresh_cache_dir("sp_warm"), 1, Scheduler::WorkStealing);

  // Cold work-stealing compile: every digest is finalized by the ready
  // hook and batch-prefetched, so nothing should be generated and the
  // prefetcher must have done real work — serial and parallel alike.
  for (int jobs : {1, 2}) {
    CompileResult cold = compile_fleet(
        fresh_cache_dir("sp_cold" + std::to_string(jobs)), jobs,
        Scheduler::WorkStealing);
    EXPECT_EQ(cold.stats.generated, 0) << "jobs=" << jobs;
    EXPECT_GT(cold.stats.prefetch_issued, 0) << "jobs=" << jobs;
    EXPECT_GT(cold.stats.prefetch_hits, 0) << "jobs=" << jobs;
    EXPECT_LE(cold.stats.prefetch_hits, cold.stats.prefetch_issued);
    EXPECT_GE(cold.stats.remote_hits, cold.stats.prefetch_hits);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool satellites
// ---------------------------------------------------------------------------

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
  // Batch state untouched: ensure_workers (asserts no batch in flight in
  // debug builds) and a real batch both still work.
  pool.ensure_workers(3);
  EXPECT_GE(pool.size(), 3);
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](size_t) { ran++; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, EnsureWorkersGrowsBetweenBatches) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](size_t) { ran++; });
  pool.ensure_workers(4);
  EXPECT_EQ(pool.size(), 4);
  pool.ensure_workers(2);  // never shrinks
  EXPECT_EQ(pool.size(), 4);
  pool.parallel_for(12, [&](size_t) { ran++; });
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace fortd
