// The persistent content-addressed compilation database:
//   * BinaryWriter/BinaryReader round trips and stream-failure semantics,
//   * ContentStore blob lifecycle — store/flush/load across instances,
//     atomic layout, LRU eviction, read-only mode, clear(),
//   * corruption robustness — truncation, bit flips, and version skew all
//     degrade to a silent full recompile with the corrupt counter bumped
//     and the damaged blob quarantined,
//   * two-process recompilation — a *fresh Compiler* pointed at a
//     populated cache directory generates 0 procedures and computes 0
//     summaries on an unchanged program, and regenerates exactly the one
//     edited procedure after a 1-of-N edit,
//   * golden digest stability — two independent compiler constructions
//     produce identical artifact digests and identical blob bytes,
//   * cold-vs-warm byte identity for jobs=1 and jobs=4,
//   * CompilerStats surviving a CompileError (the -timings analogue of
//     last_lint_report()).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "../bench/programs.hpp"
#include "codegen/spmd_printer.hpp"
#include "driver/compilation_db.hpp"
#include "driver/compiler.hpp"
#include "support/serialize.hpp"

namespace fs = std::filesystem;

namespace fortd {
namespace {

// Fresh per-test cache directory under gtest's temp root.
std::string fresh_cache_dir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("fortd_cachedb_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<uint8_t> bytes_of(std::initializer_list<int> xs) {
  std::vector<uint8_t> v;
  for (int x : xs) v.push_back(static_cast<uint8_t>(x));
  return v;
}

std::vector<uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void spit(const fs::path& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// All blob files under `dir`, as "kind/hexdigest" relative paths.
std::set<std::string> blob_listing(const std::string& dir) {
  std::set<std::string> out;
  for (const auto& kind_dir : fs::directory_iterator(dir)) {
    if (!kind_dir.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(kind_dir.path()))
      out.insert(kind_dir.path().filename().string() + "/" +
                 file.path().filename().string());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serialization primitives
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTripsPrimitives) {
  BinaryWriter w;
  w.u64(0);
  w.u64(127);
  w.u64(128);
  w.u64(~0ull);
  w.i64(-1);
  w.i64(INT64_MIN);
  w.i64(INT64_MAX);
  w.boolean(true);
  w.boolean(false);
  w.f64(-0.125);
  w.str("");
  w.str("hello fortran d");
  w.count(3);  // counts must be followed by their elements (see count())
  for (int x : {10, 20, 30}) w.u8(static_cast<uint8_t>(x));

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), 127u);
  EXPECT_EQ(r.u64(), 128u);
  EXPECT_EQ(r.u64(), ~0ull);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.i64(), INT64_MIN);
  EXPECT_EQ(r.i64(), INT64_MAX);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.f64(), -0.125);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello fortran d");
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.u8(), 10);
  EXPECT_EQ(r.u8(), 20);
  EXPECT_EQ(r.u8(), 30);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, TruncationSetsStickyFailBit) {
  BinaryWriter w;
  w.str("a long enough string to truncate");
  std::vector<uint8_t> bytes = w.take();
  bytes.resize(bytes.size() / 2);

  BinaryReader r(bytes);
  (void)r.str();
  EXPECT_FALSE(r.ok());
  // Sticky: later reads keep failing and return zero values.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, ImplausibleCountFails) {
  // A count claiming more elements than remaining bytes is corruption by
  // construction — it must fail instead of driving a huge reserve() loop.
  BinaryWriter w;
  w.count(1u << 30);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.count(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, OverlongVarintFails) {
  // 11 continuation bytes cannot encode a uint64 value.
  std::vector<uint8_t> bytes(11, 0xff);
  BinaryReader r(bytes);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// ContentStore blob lifecycle
// ---------------------------------------------------------------------------

TEST(ContentStore, PendingBlobIsVisibleBeforeFlush) {
  ContentStore store({fresh_cache_dir("pending")});
  store.store("proc", 7, 42, bytes_of({1, 2, 3}));
  auto got = store.load("proc", 7, 42);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes_of({1, 2, 3}));
  // Not yet on disk: the write is buffered off the hot path.
  EXPECT_FALSE(fs::exists(fs::path(store.options().dir) / "proc"));
}

TEST(ContentStore, FlushedBlobSurvivesIntoANewInstance) {
  std::string dir = fresh_cache_dir("survive");
  {
    ContentStore store({dir});
    store.store("proc", 7, 42, bytes_of({9, 8, 7}));
    store.store("summary", 11, 43, bytes_of({4, 5}));
  }  // destructor flushes
  EXPECT_TRUE(fs::exists(fs::path(dir) / "proc" /
                         ContentStore::hex_digest(42)));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "index"));

  ContentStore reopened({dir});
  EXPECT_EQ(reopened.size(), 2u);
  auto got = reopened.load("proc", 7, 42);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes_of({9, 8, 7}));
  got = reopened.load("summary", 11, 43);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes_of({4, 5}));
  EXPECT_EQ(reopened.counters().hits, 2u);
}

TEST(ContentStore, MissesAreCounted) {
  ContentStore store({fresh_cache_dir("miss")});
  EXPECT_FALSE(store.load("proc", 7, 99).has_value());
  EXPECT_EQ(store.counters().misses, 1u);
  EXPECT_EQ(store.counters().hits, 0u);
}

TEST(ContentStore, TruncatedBlobIsCorruptAndQuarantined) {
  std::string dir = fresh_cache_dir("truncate");
  {
    ContentStore store({dir});
    store.store("proc", 7, 42, std::vector<uint8_t>(64, 0xab));
  }
  fs::path blob = fs::path(dir) / "proc" / ContentStore::hex_digest(42);
  std::vector<uint8_t> bytes = slurp(blob);
  bytes.resize(bytes.size() / 2);
  spit(blob, bytes);

  ContentStore store({dir});
  EXPECT_FALSE(store.load("proc", 7, 42).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_EQ(store.counters().misses, 1u);
  EXPECT_FALSE(fs::exists(blob)) << "corrupt blob must be quarantined";
  // The slot accepts a clean rewrite.
  store.store("proc", 7, 42, bytes_of({1}));
  store.flush();
  EXPECT_TRUE(fs::exists(blob));
}

TEST(ContentStore, BitFlippedPayloadFailsTheChecksum) {
  std::string dir = fresh_cache_dir("bitflip");
  {
    ContentStore store({dir});
    store.store("proc", 7, 42, std::vector<uint8_t>(64, 0xab));
  }
  fs::path blob = fs::path(dir) / "proc" / ContentStore::hex_digest(42);
  std::vector<uint8_t> bytes = slurp(blob);
  bytes[bytes.size() / 2] ^= 0x01;  // one bit, somewhere in the payload
  spit(blob, bytes);

  ContentStore store({dir});
  EXPECT_FALSE(store.load("proc", 7, 42).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_FALSE(fs::exists(blob));
}

TEST(ContentStore, FormatHashSkewReadsAsCorruption) {
  // A blob written by an older codec version carries a different format
  // hash; loading it under the current hash must quarantine, not decode.
  std::string dir = fresh_cache_dir("skew");
  {
    ContentStore store({dir});
    store.store("proc", /*format_hash=*/7, 42, bytes_of({1, 2, 3}));
  }
  ContentStore store({dir});
  EXPECT_FALSE(store.load("proc", /*format_hash=*/8, 42).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_FALSE(
      fs::exists(fs::path(dir) / "proc" / ContentStore::hex_digest(42)));
}

TEST(ContentStore, LruEvictionKeepsTheMostRecentlyUsed) {
  std::string dir = fresh_cache_dir("lru");
  CacheOptions opt{dir};
  // Three same-shaped blobs; bound the store to two of them. The on-disk
  // blob size is exactly the envelope size (compression included), so
  // measure it instead of hard-coding codec arithmetic.
  const uint64_t blob_size =
      make_blob_envelope(7, 1, std::vector<uint8_t>(100, 1)).size();
  opt.max_bytes = 2 * blob_size + blob_size / 2;
  ContentStore store(opt);
  store.store("proc", 7, 1, std::vector<uint8_t>(100, 1));
  store.store("proc", 7, 2, std::vector<uint8_t>(100, 2));
  store.flush();
  EXPECT_EQ(store.counters().evictions, 0u);

  // Touch 1 so 2 becomes least recently used, then overflow with 3.
  EXPECT_TRUE(store.load("proc", 7, 1).has_value());
  store.store("proc", 7, 3, std::vector<uint8_t>(100, 3));
  store.flush();
  EXPECT_EQ(store.counters().evictions, 1u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "proc" / ContentStore::hex_digest(1)));
  EXPECT_FALSE(
      fs::exists(fs::path(dir) / "proc" / ContentStore::hex_digest(2)));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "proc" / ContentStore::hex_digest(3)));
}

TEST(ContentStore, LruTicksSurviveReopen) {
  std::string dir = fresh_cache_dir("lru_reopen");
  {
    ContentStore store({dir});
    store.store("proc", 7, 1, std::vector<uint8_t>(100, 1));
    store.store("proc", 7, 2, std::vector<uint8_t>(100, 2));
    store.flush();
    EXPECT_TRUE(store.load("proc", 7, 1).has_value());  // 1 is now newest
  }
  CacheOptions opt{dir};
  const uint64_t blob_size =
      make_blob_envelope(7, 1, std::vector<uint8_t>(100, 1)).size();
  opt.max_bytes = blob_size + blob_size / 2;  // room for one blob only
  ContentStore store(opt);
  store.store("proc", 7, 3, std::vector<uint8_t>(100, 3));
  store.flush();
  // 2 (oldest tick, recorded in the index file) went first, then 1.
  EXPECT_EQ(store.counters().evictions, 2u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "proc" / ContentStore::hex_digest(3)));
  EXPECT_FALSE(
      fs::exists(fs::path(dir) / "proc" / ContentStore::hex_digest(2)));
}

TEST(ContentStore, ReadOnlyModeNeverWritesOrQuarantines) {
  std::string dir = fresh_cache_dir("readonly");
  {
    ContentStore store({dir});
    store.store("proc", 7, 42, bytes_of({1, 2, 3}));
  }
  fs::path blob = fs::path(dir) / "proc" / ContentStore::hex_digest(42);
  std::vector<uint8_t> bytes = slurp(blob);
  bytes.back() ^= 0xff;
  spit(blob, bytes);

  CacheOptions opt{dir};
  opt.read_only = true;
  ContentStore store(opt);
  store.store("proc", 7, 99, bytes_of({4}));
  store.flush();
  EXPECT_FALSE(store.load("proc", 7, 99).has_value()) << "stores are dropped";
  EXPECT_FALSE(store.load("proc", 7, 42).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_TRUE(fs::exists(blob)) << "read-only must not delete blobs";
}

TEST(ContentStore, ClearEmptiesTheStore) {
  std::string dir = fresh_cache_dir("clear");
  ContentStore store({dir});
  store.store("proc", 7, 1, bytes_of({1}));
  store.store("summary", 9, 2, bytes_of({2}));
  store.flush();
  EXPECT_EQ(store.size(), 2u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "index"));
  EXPECT_FALSE(store.load("proc", 7, 1).has_value());
}

TEST(ContentStore, ForeignFilesInTheDirectoryAreIgnored) {
  std::string dir = fresh_cache_dir("foreign");
  fs::create_directories(fs::path(dir) / "proc");
  spit(fs::path(dir) / "proc" / "not-a-digest", bytes_of({1, 2}));
  spit(fs::path(dir) / "README", bytes_of({3}));
  ContentStore store({dir});
  EXPECT_EQ(store.size(), 0u);
  store.store("proc", 7, 1, bytes_of({9}));
  store.flush();
  EXPECT_TRUE(fs::exists(fs::path(dir) / "proc" / "not-a-digest"));
}

// ---------------------------------------------------------------------------
// Two-process recompilation (fresh Compiler instances sharing a directory)
// ---------------------------------------------------------------------------

CompileResult compile_with_dir(const std::string& src, const std::string& dir,
                               int jobs = 1) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.jobs = jobs;
  Compiler compiler(opt, {}, {}, CacheOptions{dir});
  return compiler.compile_source(src);
}

class TwoProcessRecompilation : public ::testing::TestWithParam<int> {};

TEST_P(TwoProcessRecompilation, UnchangedProgramRecompilesNothing) {
  const int jobs = GetParam();
  const std::string src = bench::fan_out(32, 64);
  std::string dir = fresh_cache_dir("twoproc_j" + std::to_string(jobs));

  // "Process" A: cold, populates the database. 32 leaves + the program.
  CompileResult a = compile_with_dir(src, dir, jobs);
  EXPECT_EQ(a.stats.generated, 33);
  EXPECT_EQ(a.stats.summaries_computed, 33);
  EXPECT_GT(a.stats.disk_misses, 0);

  // "Process" B: a fresh Compiler (empty memory tiers) on the same
  // directory. Zero procedures generated, zero summaries computed.
  CompileResult b = compile_with_dir(src, dir, jobs);
  EXPECT_EQ(b.stats.generated, 0);
  EXPECT_TRUE(b.regenerated.empty());
  EXPECT_EQ(b.stats.summaries_computed, 0);
  EXPECT_EQ(b.stats.summaries_cached, 33);
  EXPECT_GT(b.stats.disk_hits, 0);
  EXPECT_EQ(b.stats.disk_corrupt, 0);
  EXPECT_EQ(print_spmd(b.spmd), print_spmd(a.spmd));
}

TEST_P(TwoProcessRecompilation, OneEditRegeneratesExactlyOne) {
  const int jobs = GetParam();
  std::string dir = fresh_cache_dir("oneedit_j" + std::to_string(jobs));
  compile_with_dir(bench::fan_out(32, 64), dir, jobs);

  // Edit 1 of 32 leaves (same exported interface): a fresh Compiler must
  // regenerate exactly that leaf and re-analyze only it.
  CompileResult c = compile_with_dir(bench::fan_out(32, 64, 3), dir, jobs);
  EXPECT_EQ(c.regenerated, std::vector<std::string>{"leaf3"});
  EXPECT_EQ(c.stats.generated, 1);
  EXPECT_EQ(c.stats.summaries_computed, 1);
  EXPECT_EQ(c.stats.summaries_cached, 32);

  // The warm result is byte-identical to a cold compile of the edited
  // program.
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.jobs = jobs;
  Compiler cold(opt);
  CompileResult d = cold.compile_source(bench::fan_out(32, 64, 3));
  EXPECT_EQ(print_spmd(c.spmd), print_spmd(d.spmd));
}

INSTANTIATE_TEST_SUITE_P(Jobs, TwoProcessRecompilation,
                         ::testing::Values(1, 4),
                         [](const auto& info) {
                           return "jobs" + std::to_string(info.param);
                         });

TEST(TwoProcessRecompilation, WarmDiskOutputMatchesColdAcrossWorkloads) {
  const std::vector<std::pair<const char*, std::string>> workloads = {
      {"fig15", bench::fig15(64, 4)},
      {"dgefa", bench::dgefa(16)},
      {"cloning_hub", bench::cloning_hub(4, 16)}};
  for (const auto& [name, src] : workloads) {
    std::string dir = fresh_cache_dir(std::string("warmcold_") + name);
    CompileResult cold = compile_with_dir(src, dir);
    CompileResult warm = compile_with_dir(src, dir);
    EXPECT_EQ(print_spmd(warm.spmd), print_spmd(cold.spmd)) << name;
    EXPECT_EQ(warm.stats.generated, 0) << name;
    EXPECT_EQ(warm.stats.summaries_computed, 0) << name;
  }
}

// ---------------------------------------------------------------------------
// Golden digest stability
// ---------------------------------------------------------------------------

TEST(GoldenDigests, TwoCompilerConstructionsProduceIdenticalArtifacts) {
  // Any nondeterminism in procedure_digest / hash_procedure (pointer
  // hashing, unordered iteration, uninitialized fields) would show up as
  // differing blob names or bytes between two independent compilations
  // into two separate directories.
  const std::string src = bench::fan_out(8, 64);
  std::string dir_a = fresh_cache_dir("golden_a");
  std::string dir_b = fresh_cache_dir("golden_b");
  compile_with_dir(src, dir_a, /*jobs=*/1);
  compile_with_dir(src, dir_b, /*jobs=*/4);

  std::set<std::string> blobs_a = blob_listing(dir_a);
  EXPECT_EQ(blobs_a, blob_listing(dir_b));
  EXPECT_GE(blobs_a.size(), 18u);  // 9 proc + 9 summary artifacts
  for (const std::string& rel : blobs_a)
    EXPECT_EQ(slurp(fs::path(dir_a) / rel), slurp(fs::path(dir_b) / rel))
        << rel;
}

// ---------------------------------------------------------------------------
// Compiler-level corruption robustness: silent full recompile
// ---------------------------------------------------------------------------

TEST(CompilerCorruption, DamagedDatabaseMeansSilentFullRecompile) {
  const std::string src = bench::fan_out(8, 64);
  std::string dir = fresh_cache_dir("damage");
  CompileResult a = compile_with_dir(src, dir);

  // Damage every blob a different way: truncation, payload bit flip, and
  // format-hash skew (a byte of the header's format-hash field).
  int i = 0;
  for (const std::string& rel : blob_listing(dir)) {
    fs::path blob = fs::path(dir) / rel;
    std::vector<uint8_t> bytes = slurp(blob);
    switch (i++ % 3) {
      case 0: bytes.resize(bytes.size() / 2); break;
      case 1: bytes[bytes.size() - 1] ^= 0x40; break;
      case 2: bytes[5] ^= 0x40; break;
    }
    spit(blob, bytes);
  }

  CompileResult b = compile_with_dir(src, dir);
  EXPECT_EQ(b.stats.generated, 9) << "full recompile";
  EXPECT_EQ(b.stats.summaries_computed, 9);
  EXPECT_GT(b.stats.disk_corrupt, 0);
  EXPECT_EQ(print_spmd(b.spmd), print_spmd(a.spmd));

  // The quarantined slots were rewritten cleanly: a third fresh Compiler
  // is fully warm again.
  CompileResult c = compile_with_dir(src, dir);
  EXPECT_EQ(c.stats.generated, 0);
  EXPECT_EQ(c.stats.summaries_computed, 0);
  EXPECT_EQ(c.stats.disk_corrupt, 0);
}

TEST(CompilerCorruption, RoundTripsCachedProcedureThroughTheCodec) {
  // serialize/deserialize_cached_procedure is exercised end-to-end by the
  // two-process tests; here the decode path must also reject garbage.
  EXPECT_FALSE(deserialize_cached_procedure({}).has_value());
  EXPECT_FALSE(
      deserialize_cached_procedure(std::vector<uint8_t>(64, 0xfe)).has_value());
}

// ---------------------------------------------------------------------------
// Stats survive a CompileError (fortdc -timings after a failed compile)
// ---------------------------------------------------------------------------

TEST(CompilerStatsOnError, LastStatsFilledWhenCompileThrows) {
  // Recursion is rejected while building the augmented call graph, well
  // after bind — the phases that ran must still be reported, and pending
  // store writes must still be flushed.
  const char* recursive = R"(
      program p
      call a()
      end
      subroutine a()
      call b()
      end
      subroutine b()
      call a()
      end
)";
  std::string dir = fresh_cache_dir("error_stats");
  CodegenOptions opt;
  Compiler compiler(opt, {}, {}, CacheOptions{dir});
  EXPECT_THROW(compiler.compile_source(recursive), CompileError);
  EXPECT_GT(compiler.last_stats().total_ms, 0.0);
  EXPECT_EQ(compiler.last_stats().jobs, 1);
  EXPECT_EQ(compiler.last_stats().generated, 0);
}

}  // namespace
}  // namespace fortd
