// Shared loopback-daemon harness for the remote-cache and fleet tests.
//
// TestDaemon spawns one fortd-cached-equivalent CacheDaemon over a fresh
// cache directory; TestFleet spawns N of them and renders the
// comma-separated `-cache-remote` endpoint list a Compiler consumes.
// Both tear down in their destructors, and killing an individual fleet
// member mid-test (TestFleet::kill) is how the partial-degradation tests
// simulate a dead shard. Helpers configure clients for test time: no
// backoff naps, short deadlines, hair-trigger breakers.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "driver/compilation_db.hpp"
#include "net/socket.hpp"
#include "remote/server.hpp"
#include "remote/shard_map.hpp"
#include "support/thread_pool.hpp"

namespace fortd::fleet_test {

// The pid suffix keeps concurrent ctest processes apart: the tsan label
// runs these suites in one process while ctest -j runs them again as
// individual processes, and two live daemons must never share a dir.
inline std::string fresh_cache_dir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) /
                 ("fortd_remote_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A daemon over a fresh directory with its own pool (ThreadPool batches
/// are single-owner, so the daemon must never share a compiler's pool).
struct TestDaemon {
  explicit TestDaemon(const std::string& tag,
                      remote::DaemonOptions options = {})
      : store({fresh_cache_dir(tag)}), pool(2),
        daemon(&store, &pool, std::move(options)) {
    std::string err;
    started = daemon.start(&err);
    EXPECT_TRUE(started) << err;
  }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(daemon.port());
  }

  ContentStore store;
  ThreadPool pool;
  remote::CacheDaemon daemon;
  bool started = false;
};

/// N independent loopback daemons — one cache fleet. endpoints() is the
/// comma-separated list `-cache-remote` takes.
struct TestFleet {
  TestFleet(const std::string& tag, size_t n) {
    for (size_t i = 0; i < n; ++i)
      daemons.push_back(std::make_unique<TestDaemon>(
          tag + "_shard" + std::to_string(i)));
  }

  size_t size() const { return daemons.size(); }
  TestDaemon& shard(size_t i) { return *daemons[i]; }

  std::string endpoints() const {
    std::string out;
    for (const auto& d : daemons) {
      if (!out.empty()) out += ",";
      out += d->endpoint();
    }
    return out;
  }

  /// Stop shard `i`'s daemon, as a mid-compile crash would — then park a
  /// never-accepting listener on its port. Without the tombstone the
  /// freed ephemeral port could be handed to a *concurrently running
  /// test's* daemon, resurrecting an endpoint this test assumes dead;
  /// with it, connects complete but no reply ever comes, so impatient
  /// clients (make_impatient) time out deterministically.
  void kill(size_t i) {
    const int port = daemons[i]->daemon.port();
    daemons[i]->daemon.stop();
    auto tombstone = std::make_unique<net::Listener>();
    if (tombstone->listen_on("127.0.0.1", port))
      tombstones.push_back(std::move(tombstone));
  }

  std::vector<std::unique_ptr<TestDaemon>> daemons;
  std::vector<std::unique_ptr<net::Listener>> tombstones;
};

inline remote::RemoteOptions client_options(int port) {
  remote::RemoteOptions opt;
  opt.host = "127.0.0.1";
  opt.port = port;
  opt.timeout_ms = 2000;  // generous: loopback, but CI machines stall
  opt.sleep_fn = [](int) {};
  return opt;
}

/// Make a remote tier fail fast and without wall-clock sleeps: short
/// deadlines, no backoff naps, a hair-trigger breaker.
inline void make_impatient(remote::RemoteStore* rs) {
  ASSERT_NE(rs, nullptr);
  rs->options_for_test().timeout_ms = 50;
  rs->options_for_test().max_retries = 1;
  rs->options_for_test().breaker_threshold = 1;
  rs->options_for_test().sleep_fn = [](int) {};
}

/// Fleet-wide impatience: every shard fails fast independently.
inline void make_impatient(remote::ShardedRemoteStore* rs) {
  ASSERT_NE(rs, nullptr);
  for (size_t i = 0; i < rs->shard_count(); ++i) make_impatient(rs->shard(i));
}

}  // namespace fortd::fleet_test
