// RSD algebra: unit tests plus property-based sweeps that check every
// operation against brute-force set semantics.
#include <gtest/gtest.h>

#include <set>

#include "ir/rsd.hpp"

namespace fortd {
namespace {

std::set<int64_t> members(const Triplet& t) {
  std::set<int64_t> out;
  for (int64_t v = t.lb; v <= t.ub; v += t.step) out.insert(v);
  return out;
}

TEST(Triplet, NormalizationAndCount) {
  Triplet t(1, 10, 3);  // {1,4,7,10}
  EXPECT_EQ(t.count(), 4);
  EXPECT_EQ(t.ub, 10);
  Triplet u(1, 9, 3);  // {1,4,7}
  EXPECT_EQ(u.count(), 3);
  EXPECT_EQ(u.ub, 7);  // normalized to last member
  Triplet e(5, 4);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.count(), 0);
}

TEST(Triplet, Contains) {
  Triplet t(2, 14, 4);  // {2,6,10,14}
  EXPECT_TRUE(t.contains(6));
  EXPECT_FALSE(t.contains(7));
  EXPECT_FALSE(t.contains(18));
  EXPECT_TRUE(t.contains(Triplet(2, 10, 4)));
  EXPECT_TRUE(t.contains(Triplet(2, 14, 8)));  // {2,10}
  EXPECT_FALSE(t.contains(Triplet(2, 14, 2)));
}

TEST(Triplet, IntersectDense) {
  Triplet a(1, 30), b(26, 40);
  EXPECT_EQ(Triplet::intersect(a, b), Triplet(26, 30));
  EXPECT_TRUE(Triplet::intersect(Triplet(1, 5), Triplet(7, 9)).empty());
}

TEST(Triplet, IntersectStridedCrt) {
  // {1,4,7,...} with {2,5,8,...}: disjoint residues mod gcd-compatible.
  Triplet a(1, 100, 3), b(2, 100, 3);
  EXPECT_TRUE(Triplet::intersect(a, b).empty());
  // {0,6,12,...} with {0,10,20,...} -> lcm 30.
  Triplet c(0, 120, 6), d(0, 120, 10);
  Triplet i = Triplet::intersect(c, d);
  EXPECT_EQ(i, Triplet(0, 120, 30));
}

TEST(Triplet, SubtractFullStride) {
  bool exact = false;
  auto pieces = Triplet::subtract(Triplet(1, 30), Triplet(26, 30), &exact);
  EXPECT_TRUE(exact);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], Triplet(1, 25));
}

TEST(Triplet, SubtractMiddle) {
  bool exact = false;
  auto pieces = Triplet::subtract(Triplet(1, 10), Triplet(4, 6), &exact);
  EXPECT_TRUE(exact);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], Triplet(1, 3));
  EXPECT_EQ(pieces[1], Triplet(7, 10));
}

TEST(Triplet, SubtractConservative) {
  bool exact = true;
  // Removing every third element from a dense range is inexpressible.
  auto pieces = Triplet::subtract(Triplet(1, 30), Triplet(1, 30, 3), &exact);
  EXPECT_FALSE(exact);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], Triplet(1, 30));  // over-approximation keeps everything
}

TEST(Triplet, MergeAdjacentAndOverlapping) {
  EXPECT_EQ(*Triplet::merge(Triplet(1, 5), Triplet(6, 10)), Triplet(1, 10));
  EXPECT_EQ(*Triplet::merge(Triplet(1, 7), Triplet(4, 10)), Triplet(1, 10));
  EXPECT_FALSE(Triplet::merge(Triplet(1, 5), Triplet(7, 10)).has_value());
  EXPECT_EQ(*Triplet::merge(Triplet(1, 7, 3), Triplet(10, 13, 3)),
            Triplet(1, 13, 3));
  EXPECT_FALSE(Triplet::merge(Triplet(1, 7, 3), Triplet(2, 8, 3)).has_value());
}

// ---- property sweeps ------------------------------------------------------

struct TripletPair {
  Triplet a, b;
};

class TripletProperty : public ::testing::TestWithParam<TripletPair> {};

TEST_P(TripletProperty, IntersectMatchesSetSemantics) {
  const auto& [a, b] = GetParam();
  std::set<int64_t> expect;
  for (int64_t v : members(a))
    if (members(b).count(v)) expect.insert(v);
  EXPECT_EQ(members(Triplet::intersect(a, b)), expect)
      << a.str() << " ^ " << b.str();
}

TEST_P(TripletProperty, SubtractIsSoundAndDisjoint) {
  const auto& [a, b] = GetParam();
  bool exact = false;
  auto pieces = Triplet::subtract(a, b, &exact);
  std::set<int64_t> got;
  for (const auto& p : pieces)
    for (int64_t v : members(p)) {
      EXPECT_TRUE(got.insert(v).second) << "pieces overlap at " << v;
    }
  std::set<int64_t> expect;
  for (int64_t v : members(a))
    if (!members(b).count(v)) expect.insert(v);
  if (exact) {
    EXPECT_EQ(got, expect) << a.str() << " \\ " << b.str();
  } else {
    // Conservative: a superset of the true difference, subset of a.
    for (int64_t v : expect) EXPECT_TRUE(got.count(v));
    for (int64_t v : got) EXPECT_TRUE(members(a).count(v));
  }
}

TEST_P(TripletProperty, MergeIsExactUnion) {
  const auto& [a, b] = GetParam();
  auto merged = Triplet::merge(a, b);
  if (!merged) return;
  std::set<int64_t> expect = members(a);
  for (int64_t v : members(b)) expect.insert(v);
  EXPECT_EQ(members(*merged), expect) << a.str() << " U " << b.str();
}

std::vector<TripletPair> make_pairs() {
  std::vector<Triplet> pool = {
      Triplet(1, 10),       Triplet(5, 14),      Triplet(11, 20),
      Triplet(1, 30, 3),    Triplet(2, 29, 3),   Triplet(1, 30, 5),
      Triplet(4, 4),        Triplet(10, 10),     Triplet(1, 0),
      Triplet(0, 40, 4),    Triplet(2, 38, 6),   Triplet(-10, 10, 2),
      Triplet(-5, 25, 5),   Triplet(1, 100, 7),  Triplet(3, 99, 7),
  };
  std::vector<TripletPair> pairs;
  for (const auto& a : pool)
    for (const auto& b : pool) pairs.push_back({a, b});
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, TripletProperty,
                         ::testing::ValuesIn(make_pairs()));

// ---- Rsd ------------------------------------------------------------------

TEST(Rsd, SizeAndContains) {
  Rsd r = Rsd::dense({{1, 25}, {1, 100}});
  EXPECT_EQ(r.size(), 2500);
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_TRUE(r.contains({25, 100}));
  EXPECT_FALSE(r.contains({26, 1}));
  EXPECT_TRUE(r.contains(Rsd::dense({{5, 10}, {20, 30}})));
  EXPECT_FALSE(r.contains(Rsd::dense({{5, 30}, {20, 30}})));
}

TEST(Rsd, IntersectAndEmpty) {
  Rsd a = Rsd::dense({{1, 25}, {1, 100}});
  Rsd b = Rsd::dense({{20, 40}, {50, 150}});
  Rsd i = Rsd::intersect(a, b);
  EXPECT_EQ(i, Rsd::dense({{20, 25}, {50, 100}}));
  Rsd c = Rsd::dense({{30, 40}, {1, 10}});
  EXPECT_TRUE(Rsd::intersect(a, c).empty());
}

TEST(Rsd, SubtractBoxDecomposition) {
  // [1:30] x [1:10] minus [26:30] x [1:10] = [1:25] x [1:10].
  bool exact = false;
  auto pieces = Rsd::subtract(Rsd::dense({{1, 30}, {1, 10}}),
                              Rsd::dense({{26, 30}, {1, 10}}), &exact);
  EXPECT_TRUE(exact);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], Rsd::dense({{1, 25}, {1, 10}}));
}

TEST(Rsd, SubtractCorner) {
  bool exact = false;
  auto pieces = Rsd::subtract(Rsd::dense({{1, 10}, {1, 10}}),
                              Rsd::dense({{6, 10}, {6, 10}}), &exact);
  EXPECT_TRUE(exact);
  int64_t total = 0;
  for (const auto& p : pieces) total += p.size();
  EXPECT_EQ(total, 100 - 25);
  // Pieces must be pairwise disjoint.
  for (size_t i = 0; i < pieces.size(); ++i)
    for (size_t j = i + 1; j < pieces.size(); ++j)
      EXPECT_TRUE(Rsd::intersect(pieces[i], pieces[j]).empty());
}

TEST(Rsd, MergeAlongOneDim) {
  auto m = Rsd::merge(Rsd::dense({{26, 30}, {1, 50}}),
                      Rsd::dense({{26, 30}, {51, 100}}));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, Rsd::dense({{26, 30}, {1, 100}}));
  EXPECT_FALSE(Rsd::merge(Rsd::dense({{1, 5}, {1, 50}}),
                          Rsd::dense({{6, 10}, {51, 100}}))
                   .has_value());
}

TEST(Rsd, MergeContainment) {
  auto m = Rsd::merge(Rsd::dense({{1, 30}}), Rsd::dense({{5, 10}}));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, Rsd::dense({{1, 30}}));
}

TEST(Rsd, TranslateAndEnumerate) {
  Rsd r = Rsd::dense({{1, 2}, {3, 4}});
  Rsd t = r.translate({10, -2});
  EXPECT_EQ(t, Rsd::dense({{11, 12}, {1, 2}}));
  auto pts = r.enumerate();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(pts[3], (std::vector<int64_t>{2, 4}));
}

TEST(RsdList, CoalescingAddMergesSections) {
  RsdList list;
  for (int64_t c = 1; c <= 100; ++c)
    list.add_coalescing(Rsd({Triplet(26, 30), Triplet::single(c)}));
  ASSERT_EQ(list.sections().size(), 1u);
  EXPECT_EQ(list.sections()[0], Rsd::dense({{26, 30}, {1, 100}}));
  EXPECT_EQ(list.total_size(), 500);
}

TEST(RsdList, ContainsPoint) {
  RsdList list;
  list.add(Rsd::dense({{1, 5}}));
  list.add(Rsd::dense({{10, 15}}));
  EXPECT_TRUE(list.contains_point({3}));
  EXPECT_TRUE(list.contains_point({12}));
  EXPECT_FALSE(list.contains_point({7}));
}

// 2-D subtraction property sweep against brute force.
struct BoxPair {
  Rsd a, b;
};

class RsdSubtractProperty : public ::testing::TestWithParam<BoxPair> {};

TEST_P(RsdSubtractProperty, MatchesSetSemantics) {
  const auto& [a, b] = GetParam();
  bool exact = false;
  auto pieces = Rsd::subtract(a, b, &exact);
  std::set<std::vector<int64_t>> got;
  for (const auto& p : pieces)
    for (auto& pt : p.enumerate()) EXPECT_TRUE(got.insert(pt).second);
  std::set<std::vector<int64_t>> expect;
  for (auto& pt : a.enumerate())
    if (!b.contains(pt)) expect.insert(pt);
  if (exact)
    EXPECT_EQ(got, expect);
  else
    for (const auto& pt : expect) EXPECT_TRUE(got.count(pt));
}

std::vector<BoxPair> make_boxes() {
  std::vector<Rsd> pool = {
      Rsd::dense({{1, 8}, {1, 8}}),   Rsd::dense({{3, 10}, {3, 10}}),
      Rsd::dense({{1, 8}, {5, 12}}),  Rsd::dense({{4, 6}, {4, 6}}),
      Rsd::dense({{9, 12}, {1, 4}}),  Rsd({Triplet(1, 7, 2), Triplet(1, 8)}),
      Rsd({Triplet(2, 8, 2), Triplet(1, 8)}),
  };
  std::vector<BoxPair> out;
  for (const auto& a : pool)
    for (const auto& b : pool) out.push_back({a, b});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllBoxes, RsdSubtractProperty,
                         ::testing::ValuesIn(make_boxes()));

}  // namespace
}  // namespace fortd
