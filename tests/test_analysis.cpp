// CFG, data-flow framework, symbolic analysis, and dependence tests.
#include <gtest/gtest.h>

#include "analysis/dataflow.hpp"
#include "analysis/dependence.hpp"
#include "frontend/parser.hpp"
#include "ir/program.hpp"

namespace fortd {
namespace {

TEST(Cfg, StraightLine) {
  SourceProgram unit = parse_program("program p\ninteger a\na = 1\na = 2\nend");
  Cfg cfg = Cfg::build(*unit.procedures[0]);
  // entry -> first block -> exit; statements share one block.
  int with_stmts = 0;
  for (const auto& b : cfg.blocks())
    if (!b.stmts.empty()) ++with_stmts;
  EXPECT_EQ(with_stmts, 1);
}

TEST(Cfg, IfElseDiamond) {
  SourceProgram unit = parse_program(R"(
      program p
      integer a, b
      if (a .gt. 0) then
        b = 1
      else
        b = 2
      endif
      b = 3
      end
)");
  Cfg cfg = Cfg::build(*unit.procedures[0]);
  // The block holding the IF condition must have two successors.
  const Stmt* if_stmt = unit.procedures[0]->body[0].get();
  for (const auto& b : cfg.blocks()) {
    if (!b.stmts.empty() && b.stmts.back() == if_stmt) {
      EXPECT_EQ(b.succs.size(), 2u);
    }
  }
}

TEST(Cfg, LoopBackEdge) {
  SourceProgram unit = parse_program(R"(
      program p
      integer i, a
      do i = 1, 10
        a = i
      enddo
      end
)");
  Cfg cfg = Cfg::build(*unit.procedures[0]);
  // Some block must be its own ancestor through a back edge: check a cycle
  // exists by looking for a block whose successor has a smaller id.
  bool has_back_edge = false;
  for (const auto& b : cfg.blocks())
    for (int s : b.succs)
      if (s <= b.id) has_back_edge = true;
  EXPECT_TRUE(has_back_edge);
}

TEST(Cfg, ReversePostorderStartsAtEntry) {
  SourceProgram unit = parse_program("program p\ninteger a\na = 1\nend");
  Cfg cfg = Cfg::build(*unit.procedures[0]);
  auto order = cfg.reverse_postorder();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), cfg.entry());
}

TEST(LoopTree, NestingAndLevels) {
  SourceProgram unit = parse_program(R"(
      program p
      integer i, j, k
      real a(10,10)
      do i = 1, 10
        do j = 1, 10
          a(i,j) = 0.0
        enddo
      enddo
      do k = 1, 5
        a(k,k) = 1.0
      enddo
      end
)");
  LoopTree tree = LoopTree::build(*unit.procedures[0]);
  ASSERT_EQ(tree.size(), 3);
  EXPECT_EQ(tree.loop(0).depth, 1);
  EXPECT_EQ(tree.loop(1).depth, 2);
  EXPECT_EQ(tree.loop(1).parent, 0);
  EXPECT_EQ(tree.loop(2).depth, 1);

  const Stmt* inner_assign =
      unit.procedures[0]->body[0]->body[0]->body[0].get();
  EXPECT_EQ(tree.nest_vars_of(inner_assign),
            (std::vector<std::string>{"i", "j"}));
}

// ---------------------------------------------------------------------------

TEST(BitSet, Operations) {
  BitSet a(130), b(130);
  a.set(0);
  a.set(64);
  a.set(129);
  b.set(64);
  EXPECT_EQ(a.count(), 3);
  BitSet c = a;
  c &= b;
  EXPECT_EQ(c.members(), (std::vector<int>{64}));
  a.subtract(b);
  EXPECT_EQ(a.members(), (std::vector<int>{0, 129}));
  a |= b;
  EXPECT_TRUE(a.get(64));
}

TEST(Dataflow, ReachingDefinitionsThroughLoop) {
  // Facts: 0 = def before loop, 1 = def inside loop. Both reach the exit.
  SourceProgram unit = parse_program(R"(
      program p
      integer i, a
      a = 1
      do i = 1, 10
        a = 2
      enddo
      a = a
      end
)");
  const Procedure& proc = *unit.procedures[0];
  Cfg cfg = Cfg::build(proc);
  DataflowProblem prob;
  prob.num_facts = 2;
  prob.forward = true;
  prob.may = true;
  prob.gen.assign(static_cast<size_t>(cfg.size()), BitSet(2));
  prob.kill.assign(static_cast<size_t>(cfg.size()), BitSet(2));
  prob.boundary = BitSet(2);
  const Stmt* def0 = proc.body[0].get();
  const Stmt* def1 = proc.body[1]->body[0].get();
  for (const auto& blk : cfg.blocks()) {
    for (const Stmt* s : blk.stmts) {
      if (s == def0) {
        prob.gen[static_cast<size_t>(blk.id)].set(0);
        prob.kill[static_cast<size_t>(blk.id)].set(1);
      }
      if (s == def1) {
        prob.gen[static_cast<size_t>(blk.id)].set(1);
        prob.kill[static_cast<size_t>(blk.id)].set(0);
        prob.gen[static_cast<size_t>(blk.id)].reset(0);
      }
    }
  }
  DataflowResult res = solve_dataflow(cfg, prob);
  // At exit both defs may reach (zero-trip loop keeps def0 alive).
  BitSet at_exit = res.in[static_cast<size_t>(cfg.exit())];
  EXPECT_TRUE(at_exit.get(0));
  EXPECT_TRUE(at_exit.get(1));
}

// ---------------------------------------------------------------------------

TEST(Affine, ExtractionAndArithmetic) {
  SourceProgram unit = parse_program(R"(
      program p
      parameter (n = 5)
      integer i, a
      a = 2*i + n + 3
      end
)");
  BoundProgram bp = bind_program(std::move(unit));
  const Procedure& proc = *bp.ast.procedures[0];
  SymbolicEnv env = SymbolicEnv::from_params(proc, bp.symtab("p"));
  auto f = extract_affine(*proc.body[0]->rhs, env.consts);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeff("i"), 2);
  EXPECT_EQ(f->konst, 8);  // n folded
}

TEST(Affine, NonAffineRejected) {
  SourceProgram unit = parse_program("program p\ninteger i,j,a\na = i*j\nend");
  auto f = extract_affine(*unit.procedures[0]->body[0]->rhs, {});
  EXPECT_FALSE(f.has_value());
}

TEST(Symbolic, EvalRange) {
  SymbolicEnv env;
  env.ranges["i"] = Triplet(1, 25);
  SourceProgram unit = parse_program("program p\ninteger i,a\na = i+5\nend");
  auto r = eval_range(*unit.procedures[0]->body[0]->rhs, env);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Triplet(6, 30));
}

TEST(Symbolic, EvalRangeNegativeCoefficient) {
  SymbolicEnv env;
  env.ranges["i"] = Triplet(1, 10);
  SourceProgram unit = parse_program("program p\ninteger i,a\na = 20-2*i\nend");
  auto r = eval_range(*unit.procedures[0]->body[0]->rhs, env);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lb, 0);
  EXPECT_EQ(r->ub, 18);
  EXPECT_EQ(r->step, 2);
}

// ---------------------------------------------------------------------------

DependenceAnalysis analyze(const char* src, BoundProgram& bp) {
  bp = parse_and_bind(src);
  const Procedure& proc = *bp.ast.procedures[0];
  SymbolicEnv env = SymbolicEnv::from_params(proc, bp.symtab(proc.name));
  return DependenceAnalysis(proc, env);
}

TEST(Dependence, ForwardShiftIsAntiOnly) {
  // Fig. 1: X(i) = F(X(i+5)) — no true dependence, so the message
  // vectorizes out of the loop (commlevel 0).
  BoundProgram bp;
  auto deps = analyze(R"(
      program p
      real x(100)
      integer i
      do i = 1, 95
        x(i) = x(i+5)
      enddo
      end
)", bp);
  bool has_anti = false;
  for (const auto& d : deps.all()) {
    EXPECT_NE(d.kind, DepKind::True) << "level " << d.level;
    if (d.kind == DepKind::Anti) has_anti = true;
  }
  EXPECT_TRUE(has_anti);
}

TEST(Dependence, BackwardShiftIsTrueCarried) {
  BoundProgram bp;
  auto deps = analyze(R"(
      program p
      real x(100)
      integer i
      do i = 2, 100
        x(i) = x(i-1)
      enddo
      end
)", bp);
  bool has_true_l1 = false;
  for (const auto& d : deps.all())
    if (d.kind == DepKind::True && d.level == 1) {
      has_true_l1 = true;
      EXPECT_EQ(d.distance.value_or(-1), 1);
    }
  EXPECT_TRUE(has_true_l1);
  // The rhs read is the sink of a level-1 true dependence.
  const Procedure& proc = *bp.ast.procedures[0];
  const Expr* read = proc.body[0]->body[0]->rhs.get();
  EXPECT_EQ(deps.deepest_true_dep_level_into(read), 1);
}

TEST(Dependence, InnerLoopCarriesDeepest) {
  BoundProgram bp;
  auto deps = analyze(R"(
      program p
      real x(100,100)
      integer i, j
      do i = 1, 100
        do j = 2, 100
          x(i,j) = x(i,j-1)
        enddo
      enddo
      end
)", bp);
  const Procedure& proc = *bp.ast.procedures[0];
  const Expr* read = proc.body[0]->body[0]->body[0]->rhs.get();
  EXPECT_EQ(deps.deepest_true_dep_level_into(read), 2);
}

TEST(Dependence, ZivDisproves) {
  BoundProgram bp;
  auto deps = analyze(R"(
      program p
      real x(100)
      integer i
      do i = 1, 100
        x(1) = x(2)
      enddo
      end
)", bp);
  for (const auto& d : deps.all()) EXPECT_NE(d.kind, DepKind::True);
}

TEST(Dependence, LoopInvariantElementCarriesTrue) {
  BoundProgram bp;
  auto deps = analyze(R"(
      program p
      real x(100)
      integer i
      do i = 1, 100
        x(5) = x(5) + 1.0
      enddo
      end
)", bp);
  bool carried_true = false;
  for (const auto& d : deps.all())
    if (d.kind == DepKind::True && d.level == 1) carried_true = true;
  EXPECT_TRUE(carried_true);
}

TEST(Dependence, OutputDependences) {
  BoundProgram bp;
  auto deps = analyze(R"(
      program p
      real x(100)
      integer i
      do i = 1, 99
        x(i) = 1.0
        x(i+1) = 2.0
      enddo
      end
)", bp);
  bool has_output = false;
  for (const auto& d : deps.all())
    if (d.kind == DepKind::Output) has_output = true;
  EXPECT_TRUE(has_output);
}

TEST(Dependence, CollectRefsFindsAll) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      real x(10), y(10)
      integer i
      do i = 1, 10
        x(i) = y(i) + x(i)
      enddo
      end
)");
  const Procedure& proc = *bp.ast.procedures[0];
  LoopTree tree = LoopTree::build(proc);
  auto refs = collect_refs(proc, tree);
  int writes = 0, reads = 0;
  for (const auto& r : refs) (r.is_write ? writes : reads)++;
  EXPECT_EQ(writes, 1);
  EXPECT_EQ(reads, 2);
}

}  // namespace
}  // namespace fortd
