// Seeded-PRNG fuzz of every decoder that consumes untrusted bytes:
// BinaryReader, the FDCA blob envelope, the LZ decompressor, the frame
// decoder, and the wire-protocol message codec. The contract under fuzz
// is uniform — return nullopt / fail-bit, never throw, never hang, never
// over-allocate — and mutated valid inputs must never decode to the
// *wrong* payload (checksums catch the flip or the decode fails).
//
// All randomness is std::mt19937_64 under fixed seeds, so a failure
// reproduces exactly.
#include <gtest/gtest.h>

#include <random>

#include "driver/compilation_db.hpp"
#include "net/frame.hpp"
#include "remote/protocol.hpp"
#include "support/compress.hpp"
#include "support/serialize.hpp"

namespace fortd {
namespace {

std::vector<uint8_t> random_bytes(std::mt19937_64& rng, size_t n) {
  std::vector<uint8_t> v(n);
  for (auto& b : v) b = static_cast<uint8_t>(rng());
  return v;
}

/// A structurally valid envelope with a pseudorandom payload.
std::vector<uint8_t> valid_envelope(std::mt19937_64& rng, uint64_t format_hash,
                                    uint64_t digest) {
  std::uniform_int_distribution<size_t> len(0, 600);
  return make_blob_envelope(format_hash, digest, random_bytes(rng, len(rng)));
}

/// Mutate `bytes` one of three ways: truncate, flip a bit, or extend.
std::vector<uint8_t> mutate(std::mt19937_64& rng, std::vector<uint8_t> bytes) {
  switch (rng() % 3) {
    case 0: {  // truncate (possibly to empty)
      if (!bytes.empty()) bytes.resize(rng() % bytes.size());
      break;
    }
    case 1: {  // flip one bit
      if (!bytes.empty())
        bytes[rng() % bytes.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
      break;
    }
    default: {  // append garbage
      for (size_t i = 0, n = 1 + rng() % 16; i < n; ++i)
        bytes.push_back(static_cast<uint8_t>(rng()));
      break;
    }
  }
  return bytes;
}

TEST(FuzzRobustness, BinaryReaderNeverThrowsOnGarbage) {
  std::mt19937_64 rng(0xf0021);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes = random_bytes(rng, rng() % 64);
    BinaryReader r(bytes);
    // A pseudorandom op sequence; every op must be total.
    for (int op = 0; op < 12; ++op) {
      switch (rng() % 5) {
        case 0: (void)r.u64(); break;
        case 1: (void)r.str(); break;
        case 2: (void)r.i64(); break;
        case 3: (void)r.f64(); break;
        default: (void)r.blob(); break;
      }
    }
    (void)r.ok();
    (void)r.at_end();
  }
}

TEST(FuzzRobustness, EnvelopeDecoderRejectsGarbageQuietly) {
  std::mt19937_64 rng(0xf0022);
  for (int iter = 0; iter < 1500; ++iter) {
    std::vector<uint8_t> bytes = random_bytes(rng, rng() % 200);
    (void)inspect_blob_envelope(bytes);
    (void)open_blob_envelope(bytes, rng(), rng());
  }
}

TEST(FuzzRobustness, MutatedEnvelopesNeverDecodeWrong) {
  std::mt19937_64 rng(0xf0023);
  const uint64_t fh = 0x1234, digest = 0x5678;
  int rejected = 0, survived = 0;
  for (int iter = 0; iter < 1500; ++iter) {
    std::vector<uint8_t> good = valid_envelope(rng, fh, digest);
    auto expect = open_blob_envelope(good, fh, digest);
    ASSERT_TRUE(expect.has_value());

    std::vector<uint8_t> bad = mutate(rng, good);
    auto got = open_blob_envelope(bad, fh, digest);
    if (bad == good) continue;  // mutation was a no-op this round
    if (!got.has_value()) {
      ++rejected;
    } else {
      // The only mutations an envelope may survive are ones its checksum
      // cannot see — and there are none: every byte is covered by magic,
      // fixed-width sizes, or the payload checksum, except a flip inside
      // the 8-byte trailer itself, which must also reject. So a surviving
      // decode must return the exact original payload.
      ++survived;
      EXPECT_EQ(*got, *expect) << "iteration " << iter;
    }
  }
  EXPECT_GT(rejected, 1000) << "mutations should overwhelmingly be caught";
}

TEST(FuzzRobustness, DecompressorIsTotalOnGarbage) {
  std::mt19937_64 rng(0xf0024);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes = random_bytes(rng, rng() % 300);
    (void)decompress_bytes(bytes);
  }
  // Mutated *valid* streams: reject or round-trip, never misdecode into
  // an unbounded allocation (the declared raw size caps the output).
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<uint8_t> raw = random_bytes(rng, rng() % 400);
    std::vector<uint8_t> bad = mutate(rng, compress_bytes(raw));
    auto got = decompress_bytes(bad);
    if (got.has_value()) {
      EXPECT_LE(got->size(), raw.size() + 400) << "iteration " << iter;
    }
  }
}

TEST(FuzzRobustness, FrameDecoderSurvivesRandomChunkSplits) {
  std::mt19937_64 rng(0xf0025);
  for (int iter = 0; iter < 300; ++iter) {
    // A mix of valid frames and raw garbage, delivered in random chunks.
    std::vector<uint8_t> wire;
    std::vector<std::vector<uint8_t>> sent;
    const bool poison = rng() % 2 == 0;
    for (size_t i = 0, n = 1 + rng() % 4; i < n; ++i) {
      sent.push_back(random_bytes(rng, rng() % 100));
      net::encode_frame(wire, sent.back());
    }
    if (poison) {
      auto junk = random_bytes(rng, 1 + rng() % 40);
      wire.insert(wire.end(), junk.begin(), junk.end());
    }

    net::FrameDecoder dec;
    std::vector<std::vector<uint8_t>> got;
    size_t pos = 0;
    while (pos < wire.size()) {
      size_t chunk = std::min<size_t>(1 + rng() % 16, wire.size() - pos);
      dec.feed(wire.data() + pos, chunk);
      pos += chunk;
      while (auto f = dec.next()) got.push_back(*f);
      if (dec.failed()) break;
    }
    // The valid frames occupy a prefix of the stream, so they must all
    // come out first and intact. Trailing junk may happen to parse as
    // further frames (it is indistinguishable from data) or trip the
    // fail bit — either is fine; a clean stream must yield exactly the
    // frames sent.
    if (poison) {
      ASSERT_GE(got.size(), sent.size()) << "iteration " << iter;
    } else {
      ASSERT_EQ(got.size(), sent.size()) << "iteration " << iter;
    }
    for (size_t i = 0; i < sent.size(); ++i)
      EXPECT_EQ(got[i], sent[i]) << "iteration " << iter;
  }
}

TEST(FuzzRobustness, WireMessageDecoderIsTotal) {
  std::mt19937_64 rng(0xf0026);
  for (int iter = 0; iter < 2000; ++iter)
    (void)remote::decode_message(random_bytes(rng, rng() % 120));
  // Mutations of every valid message type: decode to nullopt or to a
  // well-formed message — never throw.
  using remote::MsgType;
  for (int iter = 0; iter < 1000; ++iter) {
    remote::WireMessage m;
    m.type = static_cast<MsgType>(1 + rng() % 14);
    m.format_hash = rng();
    m.kind = "proc";
    m.digest = rng();
    m.blob = random_bytes(rng, rng() % 50);
    m.keys = {{"summary", rng()}};
    m.blobs = {{true, random_bytes(rng, rng() % 20)}};
    m.text = "reason";
    (void)remote::decode_message(mutate(rng, remote::encode_message(m)));
  }
}

}  // namespace
}  // namespace fortd
