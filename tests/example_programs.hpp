// The five example Fortran D programs the paper's evaluation (and this
// repo's tests) revolve around: jacobi (1-D ping-pong stencil), adi
// (alternating-direction sweeps with transposing remaps), stencil2d
// (aligned 2-D arrays through a shared subroutine), redistribution
// (block <-> cyclic remap traffic), and dgefa (LU factorization with
// pivot broadcasts). Shared by the lint/verifier suite and the runtime
// differential tests so both always exercise the same programs.
#pragma once

namespace fortd::examples {

inline constexpr const char* kJacobi = R"(
      program jacobi
      real u(256)
      real unew(256)
      integer i, t
      distribute u(block)
      distribute unew(block)
      do i = 1, 256
        u(i) = modp(i*13, 97) * 1.0
      enddo
      do t = 1, 20
        do i = 2, 255
          unew(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
        do i = 2, 255
          u(i) = unew(i)
        enddo
      enddo
      end
)";

inline constexpr const char* kAdi = R"(
      program adi
      real u(48,48)
      integer i, j, t
      distribute u(block,:)
      do i = 1, 48
        do j = 1, 48
          u(i,j) = modp(i*3 + j*5, 11) + 1
        enddo
      enddo
      do t = 1, 4
        call rowsweep(u)
        distribute u(:,block)
        call colsweep(u)
        distribute u(block,:)
      enddo
      end

      subroutine rowsweep(u)
      real u(48,48)
      integer i, j
      do i = 1, 48
        do j = 2, 48
          u(i,j) = u(i,j) + 0.5*u(i,j-1)
        enddo
      enddo
      end

      subroutine colsweep(u)
      real u(48,48)
      integer i, j
      do j = 1, 48
        do i = 2, 48
          u(i,j) = u(i,j) + 0.5*u(i-1,j)
        enddo
      enddo
      end
)";

inline constexpr const char* kStencil2d = R"(
      program p1
      real x(100,100)
      real y(100,100)
      integer i, j
      align y(i,j) with x(j,i)
      distribute x(block,:)
      do i = 1, 100
        do j = 1, 100
          x(i,j) = i + 0.01*j
          y(i,j) = j + 0.01*i
        enddo
      enddo
      do i = 1, 100
        call f1(x, i)
      enddo
      do j = 1, 100
        call f1(y, j)
      enddo
      end

      subroutine f1(z, i)
      real z(100,100)
      integer i, k
      do k = 1, 95
        z(k,i) = f(z(k+5,i))
      enddo
      end
)";

inline constexpr const char* kRedistribution = R"(
      program p1
      real x(100)
      integer k, i
      distribute x(block)
      do i = 1, 100
        x(i) = i * 1.0
      enddo
      do k = 1, 10
        call f1(x)
        call f1(x)
      enddo
      call f2(x)
      end

      subroutine f1(x)
      real x(100)
      integer i
      distribute x(cyclic)
      do i = 1, 100
        x(i) = x(i) + 1.0
      enddo
      end

      subroutine f2(x)
      real x(100)
      integer i
      do i = 1, 100
        x(i) = 2.0 * i
      enddo
      end
)";

inline constexpr const char* kDgefa = R"(
      program main
      parameter (n = 16)
      real a(n,n)
      real ipvt(n)
      integer i, j, k, ip
      distribute a(:,cyclic)
      do j = 1, n
        do i = 1, n
          a(i,j) = modp(i*7 + j*3, 13) + 1
        enddo
        a(j,j) = a(j,j) + n*13
      enddo
      do k = 1, n-1
        call idamax(a, k, n, ip)
        ipvt(k) = ip
        if (ip .ne. k) then
          call dswap(a, k, ip, n)
        endif
        call dscal(a, k, n)
        do j = k+1, n
          call daxpy(a, k, j, n)
        enddo
      enddo
      end

      subroutine idamax(a, k, n, ip)
      parameter (nmax = 16)
      real a(nmax,nmax)
      integer k, n, ip, i
      real tmax
      tmax = 0.0
      ip = k
      do i = k, n
        if (abs(a(i,k)) .gt. tmax) then
          tmax = abs(a(i,k))
          ip = i
        endif
      enddo
      end

      subroutine dswap(a, k, ip, n)
      parameter (nmax = 16)
      real a(nmax,nmax)
      integer k, ip, n, j
      real t1
      do j = 1, n
        t1 = a(k,j)
        a(k,j) = a(ip,j)
        a(ip,j) = t1
      enddo
      end

      subroutine dscal(a, k, n)
      parameter (nmax = 16)
      real a(nmax,nmax)
      integer k, n, i
      do i = k+1, n
        a(i,k) = a(i,k) / a(k,k)
      enddo
      end

      subroutine daxpy(a, k, j, n)
      parameter (nmax = 16)
      real a(nmax,nmax)
      integer k, j, n, i
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      end
)";

struct Example {
  const char* name;
  const char* source;
};

inline constexpr Example kExamples[] = {
    {"jacobi", kJacobi},         {"adi", kAdi},
    {"stencil2d", kStencil2d},   {"redistribution", kRedistribution},
    {"dgefa", kDgefa},
};

}  // namespace fortd::examples
