// Interprocedural analysis tests: the augmented call graph (Fig. 5),
// reaching decompositions (Figs. 6/7), procedure cloning (Fig. 8),
// GMOD/GREF side effects, overlap estimation (Fig. 13), and
// recompilation analysis (§8).
#include <gtest/gtest.h>

#include "ipa/cloning.hpp"
#include "ipa/overlap_prop.hpp"
#include "ipa/recompilation.hpp"

namespace fortd {
namespace {

// The paper's Figure 4 program (with F1 containing the k loop as §5.3
// assumes, and F1 calling F2 to exercise the call chain).
const char* kFigure4 = R"(
      program p1
      real x(100,100)
      real y(100,100)
      integer i, j
      align y(i,j) with x(j,i)
      distribute x(block,:)
      do i = 1, 100
        call f1(x, i)
      enddo
      do j = 1, 100
        call f1(y, j)
      enddo
      end

      subroutine f1(z, i)
      real z(100,100)
      integer i
      call f2(z, i)
      end

      subroutine f2(z, i)
      real z(100,100)
      integer i, k
      do k = 1, 95
        z(k,i) = f(z(k+5,i))
      enddo
      end
)";

TEST(Acg, Figure5Structure) {
  BoundProgram bp = parse_and_bind(kFigure4);
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);

  auto to_f1 = acg.calls_to("f1");
  ASSERT_EQ(to_f1.size(), 2u);
  EXPECT_EQ(to_f1[0]->caller, "p1");
  // Both calls sit inside one loop each.
  ASSERT_EQ(to_f1[0]->enclosing_loops.size(), 1u);
  EXPECT_EQ(to_f1[0]->enclosing_loops[0].var, "i");
  ASSERT_EQ(to_f1[1]->enclosing_loops.size(), 1u);
  EXPECT_EQ(to_f1[1]->enclosing_loops[0].var, "j");

  // Fig. 5 annotation: formal #1 of f1 receives a loop index 1:100:1.
  auto it = to_f1[0]->formal_loop_ranges.find(1);
  ASSERT_NE(it, to_f1[0]->formal_loop_ranges.end());
  EXPECT_EQ(it->second, Triplet(1, 100, 1));

  auto to_f2 = acg.calls_to("f2");
  ASSERT_EQ(to_f2.size(), 1u);
  EXPECT_EQ(to_f2[0]->caller, "f1");
  EXPECT_TRUE(to_f2[0]->enclosing_loops.empty());
}

TEST(Acg, TopologicalOrder) {
  BoundProgram bp = parse_and_bind(kFigure4);
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  EXPECT_EQ(acg.topological_order(),
            (std::vector<std::string>{"p1", "f1", "f2"}));
  EXPECT_EQ(acg.reverse_topological_order(),
            (std::vector<std::string>{"f2", "f1", "p1"}));
}

TEST(Acg, RecursionRejected) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      call a()
      end
      subroutine a()
      call b()
      end
      subroutine b()
      call a()
      end
)");
  EXPECT_THROW(AugmentedCallGraph::build(bp), CompileError);
}

// ---------------------------------------------------------------------------

TEST(Summaries, AlignComposition) {
  BoundProgram bp = parse_and_bind(kFigure4);
  ProcSummary sum = compute_summary(bp, "p1");
  // DISTRIBUTE x(BLOCK,:) must give x (BLOCK,:) and y (:,BLOCK).
  ASSERT_EQ(sum.distribute_stmts.size(), 1u);
  auto xspec = spec_for_array(*sum.distribute_stmts[0], "x", 2, sum.align);
  ASSERT_TRUE(xspec.has_value());
  EXPECT_EQ(xspec->dists[0].kind, DistKind::Block);
  EXPECT_EQ(xspec->dists[1].kind, DistKind::None);
  auto yspec = spec_for_array(*sum.distribute_stmts[0], "y", 2, sum.align);
  ASSERT_TRUE(yspec.has_value());
  EXPECT_EQ(yspec->dists[0].kind, DistKind::None);
  EXPECT_EQ(yspec->dists[1].kind, DistKind::Block);
}

TEST(Summaries, LocalReachingAtCallSites) {
  BoundProgram bp = parse_and_bind(kFigure4);
  ProcSummary sum = compute_summary(bp, "p1");
  ASSERT_EQ(sum.local_reaching.size(), 2u);
  // Call 1: x reaches with (BLOCK,:).
  const auto& r1 = sum.local_reaching[0].reaching;
  ASSERT_TRUE(r1.count("x"));
  ASSERT_EQ(r1.at("x").size(), 1u);
  EXPECT_EQ(r1.at("x").begin()->dists[0].kind, DistKind::Block);
  // Call 2: y reaches with (:,BLOCK).
  const auto& r2 = sum.local_reaching[1].reaching;
  ASSERT_TRUE(r2.count("y"));
  EXPECT_EQ(r2.at("y").begin()->dists[1].kind, DistKind::Block);
}

TEST(Summaries, TopPlaceholderInCallee) {
  BoundProgram bp = parse_and_bind(kFigure4);
  ProcSummary sum = compute_summary(bp, "f1");
  // LocalReaching(S3) = { <top, z> } — f1 inherits z's decomposition.
  ASSERT_EQ(sum.local_reaching.size(), 1u);
  ASSERT_TRUE(sum.local_reaching[0].reaching.count("z"));
  EXPECT_TRUE(sum.local_reaching[0].reaching.at("z").begin()->is_top);
}

TEST(Summaries, ModRefAndSections) {
  BoundProgram bp = parse_and_bind(kFigure4);
  ProcSummary sum = compute_summary(bp, "f2");
  EXPECT_TRUE(sum.mod.count("z"));
  EXPECT_TRUE(sum.ref.count("z"));
  ASSERT_TRUE(sum.defs.count("z"));
  // z(k,i) over k=1:95 — section [1:95] x [whole dim] (i unknown).
  const Rsd& def = sum.defs.at("z").sections()[0];
  EXPECT_EQ(def.dim(0), Triplet(1, 95));
}

TEST(Summaries, OverlapOffsets) {
  BoundProgram bp = parse_and_bind(kFigure4);
  ProcSummary sum = compute_summary(bp, "f2");
  ASSERT_TRUE(sum.overlaps.count("z"));
  EXPECT_EQ(sum.overlaps.at("z").pos[0], 5);  // z(k+5,i) vs z(k,i)
  EXPECT_EQ(sum.overlaps.at("z").neg[0], 0);
}

TEST(Summaries, HashChangesWithEdits) {
  BoundProgram a = parse_and_bind("program p\ninteger x\nx = 1\nend");
  BoundProgram b = parse_and_bind("program p\ninteger x\nx = 2\nend");
  BoundProgram c = parse_and_bind("program p\ninteger x\nx = 1\nend");
  EXPECT_NE(hash_procedure(*a.ast.procedures[0]),
            hash_procedure(*b.ast.procedures[0]));
  EXPECT_EQ(hash_procedure(*a.ast.procedures[0]),
            hash_procedure(*c.ast.procedures[0]));
}

// ---------------------------------------------------------------------------

TEST(SideEffects, TransitiveGmodGref) {
  BoundProgram bp = parse_and_bind(kFigure4);
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  auto summaries = compute_all_summaries(bp);
  SideEffects fx = compute_side_effects(bp, acg, summaries);
  // f1 itself writes nothing, but f2 writes z through it.
  EXPECT_TRUE(fx.gmod.at("f1").count("z"));
  // p1 sees writes to both x and y through the calls.
  EXPECT_TRUE(fx.gmod.at("p1").count("x"));
  EXPECT_TRUE(fx.gmod.at("p1").count("y"));
  // Appear(f1) includes z.
  EXPECT_TRUE(fx.appear("f1", bp).count("z"));
}

// ---------------------------------------------------------------------------

TEST(ReachingDecomps, Figure7Solution) {
  BoundProgram bp = parse_and_bind(kFigure4);
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  auto summaries = compute_all_summaries(bp);
  ReachingDecomps rd = compute_reaching_decomps(bp, acg, summaries);

  // Reaching(f1) for z = union of row and column distributions.
  auto zf1 = rd.reaching.at("f1").at("z");
  ASSERT_EQ(zf1.size(), 2u);
  // Reaching(f2) inherits both through f1.
  auto zf2 = rd.reaching.at("f2").at("z");
  EXPECT_EQ(zf2.size(), 2u);
  EXPECT_TRUE(rd.has_conflict("f2", "z"));
  EXPECT_FALSE(rd.unique_spec("f2", "z").has_value());
}

TEST(ReachingDecomps, DynamicRedistributionPointwise) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      real x(100)
      integer i
      distribute x(block)
      x(1) = 0.0
      distribute x(cyclic)
      x(2) = 0.0
      end
)");
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  auto summaries = compute_all_summaries(bp);
  ReachingDecomps rd = compute_reaching_decomps(bp, acg, summaries);
  const Procedure& proc = *bp.ast.procedures[0];
  auto at1 = rd.specs_at("p", proc.body[1].get(), "x");
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(at1.begin()->dists[0].kind, DistKind::Block);
  auto at2 = rd.specs_at("p", proc.body[3].get(), "x");
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2.begin()->dists[0].kind, DistKind::Cyclic);
}

// ---------------------------------------------------------------------------

TEST(Cloning, Figure8CreatesRowAndColVersions) {
  BoundProgram bp = parse_and_bind(kFigure4);
  IpaContext ctx = run_ipa(bp);
  // f1 and f2 each get one clone (two reaching decompositions).
  EXPECT_EQ(ctx.clones_created, 2);
  ASSERT_EQ(bp.ast.procedures.size(), 5u);
  EXPECT_NE(bp.find("f1$2"), nullptr);
  EXPECT_NE(bp.find("f2$2"), nullptr);
  EXPECT_EQ(ctx.clone_origin.at("f1$2"), "f1");
  // After cloning, every procedure sees a unique decomposition for z.
  for (const char* proc : {"f1", "f1$2", "f2", "f2$2"})
    EXPECT_FALSE(ctx.reaching.has_conflict(proc, "z")) << proc;
}

TEST(Cloning, SharedCloneForEqualDecomps) {
  // Two call sites with the SAME decomposition must share one version.
  BoundProgram bp = parse_and_bind(R"(
      program p
      real x(100), y(100)
      integer i
      distribute x(block)
      distribute y(block)
      call f(x)
      call f(y)
      end
      subroutine f(a)
      real a(100)
      integer i
      do i = 1, 100
        a(i) = 0.0
      enddo
      end
)");
  IpaContext ctx = run_ipa(bp);
  EXPECT_EQ(ctx.clones_created, 0);
}

TEST(Cloning, GrowthThresholdForcesRuntimeFallback) {
  BoundProgram bp = parse_and_bind(kFigure4);
  IpaOptions opts;
  opts.max_procedures = 3;  // no room for any clone
  IpaContext ctx = run_ipa(bp, opts);
  EXPECT_EQ(ctx.clones_created, 0);
  EXPECT_TRUE(ctx.runtime_fallback.count("f1"));
}

TEST(Cloning, FilterAvoidsUnnecessaryClones) {
  // The callee never touches the differently-distributed arrays, so
  // Filter(..., Appear) must prevent cloning.
  BoundProgram bp = parse_and_bind(R"(
      program p
      real x(100), y(100)
      integer s
      distribute x(block)
      distribute y(cyclic)
      call f(x, s)
      call f(y, s)
      end
      subroutine f(a, s)
      real a(100)
      integer s
      s = s + 1
      end
)");
  IpaContext ctx = run_ipa(bp);
  EXPECT_EQ(ctx.clones_created, 0);
}

// ---------------------------------------------------------------------------

TEST(Overlaps, EstimatePropagatesUpAndDown) {
  BoundProgram bp = parse_and_bind(kFigure4);
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  auto summaries = compute_all_summaries(bp);
  OverlapEstimates est = compute_overlap_estimates(bp, acg, summaries);
  // f2's +5 offset on z propagates up to x and y in p1...
  ASSERT_NE(est.lookup("p1", "x"), nullptr);
  EXPECT_EQ(est.lookup("p1", "x")->pos[0], 5);
  EXPECT_EQ(est.lookup("p1", "y")->pos[0], 5);
  // ...and back down to f1 (which has no local refs at all).
  ASSERT_NE(est.lookup("f1", "z"), nullptr);
  EXPECT_EQ(est.lookup("f1", "z")->pos[0], 5);
}

// ---------------------------------------------------------------------------

TEST(Recompilation, OnlyEditedAndAffectedProceduresRecompile) {
  const char* before_src = kFigure4;
  // Edit: scale f2's right-hand side — the body changes but none of the
  // interface summaries (MOD/REF, def/use sections, overlaps) do.
  std::string after_src = before_src;
  size_t pos = after_src.find("z(k,i) = f(z(k+5,i))");
  ASSERT_NE(pos, std::string::npos);
  after_src.replace(pos, 20, "z(k,i) = 2.0*f(z(k+5,i))");

  auto record_of = [](const std::string& src) {
    BoundProgram bp = parse_and_bind(src);
    IpaContext ctx = run_ipa(bp);
    OverlapEstimates est =
        compute_overlap_estimates(bp, ctx.acg, ctx.summaries);
    return make_compilation_record(bp, ctx, est);
  };
  CompilationRecord before = record_of(before_src);
  CompilationRecord after = record_of(after_src);
  auto to_recompile = procedures_to_recompile(before, after);
  // f2 (and its clone) changed; p1 and f1 keep their interface inputs.
  EXPECT_TRUE(to_recompile.count("f2"));
  EXPECT_FALSE(to_recompile.count("p1"));
  EXPECT_FALSE(to_recompile.count("f1"));
}

TEST(Recompilation, InterfaceChangePropagatesToCallers) {
  const char* before_src = kFigure4;
  // Edit f2 so it also writes a second column band — its def summary
  // (interface) changes, so callers must recompile.
  std::string after_src = before_src;
  size_t pos = after_src.find("z(k,i) = f(z(k+5,i))");
  ASSERT_NE(pos, std::string::npos);
  after_src.replace(pos, 20, "z(k,i) = f(z(k+5,i))\n        z(k+1,i) = 0.0");

  auto record_of = [](const std::string& src) {
    BoundProgram bp = parse_and_bind(src);
    IpaContext ctx = run_ipa(bp);
    OverlapEstimates est =
        compute_overlap_estimates(bp, ctx.acg, ctx.summaries);
    return make_compilation_record(bp, ctx, est);
  };
  auto to_recompile =
      procedures_to_recompile(record_of(before_src), record_of(after_src));
  EXPECT_TRUE(to_recompile.count("f2"));
  EXPECT_TRUE(to_recompile.count("f1"));  // consumes f2's interface
}

TEST(Recompilation, NoEditNoRecompile) {
  auto record_of = [](const std::string& src) {
    BoundProgram bp = parse_and_bind(src);
    IpaContext ctx = run_ipa(bp);
    OverlapEstimates est =
        compute_overlap_estimates(bp, ctx.acg, ctx.summaries);
    return make_compilation_record(bp, ctx, est);
  };
  auto to_recompile =
      procedures_to_recompile(record_of(kFigure4), record_of(kFigure4));
  EXPECT_TRUE(to_recompile.empty());
}

}  // namespace
}  // namespace fortd
