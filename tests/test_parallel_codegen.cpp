// Wavefront-parallel code generation and the content-hashed procedure
// cache:
//   * serial (jobs=1) and parallel (jobs=4) schedules print byte-identical
//     SPMD programs across every workload generator and example source,
//   * the Compiler's cache regenerates only edited procedures (and their
//     callers when the exported interface changed) on recompiles,
//   * ACG wavefront levels respect callee-before-caller,
//   * ThreadPool and DiagnosticEngine worker-safety primitives.
#include <gtest/gtest.h>

#include <atomic>

#include "../bench/programs.hpp"
#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "support/thread_pool.hpp"

namespace fortd {
namespace {

// Example sources (examples/jacobi.cpp, examples/stencil2d.cpp — kept in
// sync by eye; they exercise shift vectorization and cloning shapes the
// generators do not).
const char* kJacobi = R"(
      program jacobi
      real u(256)
      real unew(256)
      integer i, t
      distribute u(block)
      distribute unew(block)
      do i = 1, 256
        u(i) = modp(i*13, 97) * 1.0
      enddo
      do t = 1, 20
        do i = 2, 255
          unew(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
        do i = 2, 255
          u(i) = unew(i)
        enddo
      enddo
      end
)";

const char* kStencil2d = R"(
      program p1
      real x(100,100)
      real y(100,100)
      integer i, j
      align y(i,j) with x(j,i)
      distribute x(block,:)
      do i = 1, 100
        do j = 1, 100
          x(i,j) = i + 0.01*j
          y(i,j) = j + 0.01*i
        enddo
      enddo
      do i = 1, 100
        call f1(x, i)
      enddo
      do j = 1, 100
        call f1(y, j)
      enddo
      end
      subroutine f1(z, i)
      real z(100,100)
      integer i, k
      do k = 1, 95
        z(k,i) = 0.5*z(k+5,i)
      enddo
      end
)";

std::string compile_with_jobs(const std::string& src, int jobs,
                              int n_procs = 4) {
  CodegenOptions opt;
  opt.n_procs = n_procs;
  opt.jobs = jobs;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(src);
  return print_spmd(r.spmd);
}

// ---------------------------------------------------------------------------
// Determinism: parallel output is byte-identical to serial output
// ---------------------------------------------------------------------------

class ParallelDeterminism
    : public ::testing::TestWithParam<std::pair<const char*, std::string>> {};

TEST_P(ParallelDeterminism, SerialAndParallelPrintIdentically) {
  const std::string& src = GetParam().second;
  std::string serial = compile_with_jobs(src, 1);
  std::string parallel = compile_with_jobs(src, 4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ParallelDeterminism,
    ::testing::Values(
        std::make_pair("stencil1d", bench::stencil1d(64)),
        std::make_pair("fig4", bench::fig4(32, 8)),
        std::make_pair("fig15", bench::fig15(64, 4)),
        std::make_pair("dgefa", bench::dgefa(16)),
        std::make_pair("call_chain", bench::call_chain(12, 64)),
        std::make_pair("cloning_hub", bench::cloning_hub(4, 16)),
        std::make_pair("fan_out", bench::fan_out(16, 64)),
        std::make_pair("jacobi", std::string(kJacobi)),
        std::make_pair("stencil2d", std::string(kStencil2d))),
    [](const auto& info) { return info.param.first; });

TEST(ParallelDeterminism, ManyJobValuesAgreeOnFanOut) {
  std::string src = bench::fan_out(32, 128);
  std::string serial = compile_with_jobs(src, 1, 8);
  for (int jobs : {2, 3, 4, 8, 16})
    EXPECT_EQ(serial, compile_with_jobs(src, jobs, 8)) << "jobs=" << jobs;
}

// ---------------------------------------------------------------------------
// Procedure cache: hit/miss accounting across recompiles
// ---------------------------------------------------------------------------

TEST(CompilationCache, SecondCompileHitsEverything) {
  std::string src = bench::fan_out(8, 64);
  Compiler compiler;
  CompileResult r1 = compiler.compile_source(src);
  EXPECT_EQ(r1.stats.cache_hits, 0);
  EXPECT_EQ(r1.stats.cache_misses, 9);  // 8 leaves + program
  EXPECT_EQ(r1.stats.generated, 9);

  CompileResult r2 = compiler.compile_source(src);
  EXPECT_EQ(r2.stats.cache_hits, 9);
  EXPECT_EQ(r2.stats.cache_misses, 0);
  EXPECT_EQ(r2.stats.generated, 0);
  EXPECT_TRUE(r2.regenerated.empty());
  EXPECT_EQ(print_spmd(r1.spmd), print_spmd(r2.spmd));
}

TEST(CompilationCache, EditedBodyRegeneratesOnlyThatProcedure) {
  // The edit changes leaf3's stencil coefficient: its structural hash
  // changes but its exported interface (same shift, same formals) does
  // not, so no caller is invalidated — §8's recompilation-test behaviour.
  Compiler compiler;
  compiler.compile_source(bench::fan_out(8, 64));
  CompileResult r = compiler.compile_source(bench::fan_out(8, 64, 3));
  EXPECT_EQ(r.stats.generated, 1);
  EXPECT_EQ(r.stats.cache_hits, 8);
  ASSERT_EQ(r.regenerated.size(), 1u);
  EXPECT_EQ(r.regenerated[0], "leaf3");

  // The cached result must be byte-identical to a cold compile.
  Compiler cold;
  EXPECT_EQ(print_spmd(r.spmd),
            print_spmd(cold.compile_source(bench::fan_out(8, 64, 3)).spmd));
}

TEST(CompilationCache, InterfaceChangingEditInvalidatesCaller) {
  // Changing the leaf's shift distance changes its exported communication
  // (pending shift event / overlap demand), so the caller must regenerate
  // too — but only the edited procedure and its direct caller.
  const char* before = R"(
      program p
      real x(64)
      integer i
      distribute x(block)
      do i = 1, 64
        x(i) = i*1.0
      enddo
      call leaf(x)
      end
      subroutine leaf(a)
      real a(64)
      integer i
      do i = 1, 62
        a(i) = 0.5*a(i+1)
      enddo
      end
)";
  const char* after = R"(
      program p
      real x(64)
      integer i
      distribute x(block)
      do i = 1, 64
        x(i) = i*1.0
      enddo
      call leaf(x)
      end
      subroutine leaf(a)
      real a(64)
      integer i
      do i = 1, 62
        a(i) = 0.5*a(i+2)
      enddo
      end
)";
  Compiler compiler;
  compiler.compile_source(before);
  CompileResult r = compiler.compile_source(after);
  EXPECT_EQ(r.stats.generated, 2);
  EXPECT_EQ(r.stats.cache_hits, 0);
}

TEST(CompilationCache, DifferentOptionsDoNotShareEntries) {
  std::string src = bench::stencil1d(64);
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  compiler.compile_source(src);
  // Same Compiler-owned cache, different n_procs would be a different
  // digest — emulate by checking jobs does NOT change the digest while
  // the cache still hits across schedules.
  CodegenOptions par = opt;
  par.jobs = 4;
  Compiler parallel(par);
  CompileResult r1 = parallel.compile_source(src);
  EXPECT_EQ(r1.stats.cache_hits, 0);  // separate Compiler, fresh cache
  CompileResult r2 = parallel.compile_source(src);
  EXPECT_EQ(r2.stats.generated, 0);   // schedule change can't miss
}

TEST(CompilationCache, SerialAndParallelRecompilesAgree) {
  CodegenOptions opt;
  opt.jobs = 4;
  Compiler compiler(opt);
  compiler.compile_source(bench::fan_out(8, 64));
  CompileResult warm = compiler.compile_source(bench::fan_out(8, 64, 5));
  EXPECT_EQ(warm.stats.generated, 1);
  EXPECT_EQ(print_spmd(warm.spmd),
            compile_with_jobs(bench::fan_out(8, 64, 5), 1));
}

// ---------------------------------------------------------------------------
// Wavefront levels
// ---------------------------------------------------------------------------

TEST(WavefrontLevels, DgefaRespectsCalleeBeforeCaller) {
  BoundProgram bp = parse_and_bind(bench::dgefa(16));
  IpaContext ctx = run_ipa(bp);
  auto levels = ctx.acg.wavefront_levels();
  ASSERT_FALSE(levels.empty());

  // Each procedure appears in exactly one level.
  std::map<int, int> level_of;
  for (size_t l = 0; l < levels.size(); ++l)
    for (int idx : levels[l]) {
      EXPECT_EQ(level_of.count(idx), 0u);
      level_of[idx] = static_cast<int>(l);
    }
  EXPECT_EQ(level_of.size(), bp.ast.procedures.size());

  // Every call edge goes from a strictly higher level to a lower one.
  for (const CallSiteInfo& site : ctx.acg.call_sites()) {
    int caller = ctx.acg.procedure_index(site.caller);
    int callee = ctx.acg.procedure_index(site.callee);
    ASSERT_GE(caller, 0);
    ASSERT_GE(callee, 0);
    EXPECT_GT(level_of.at(caller), level_of.at(callee))
        << site.caller << " -> " << site.callee;
  }

  // dgefa shape: the four BLAS leaves at level 0, main above them.
  EXPECT_EQ(levels[0].size(), 4u);
  int main_idx = ctx.acg.procedure_index("main");
  EXPECT_EQ(level_of.at(main_idx), 1);
}

TEST(WavefrontLevels, ConcatenationIsAReverseTopologicalOrder) {
  BoundProgram bp = parse_and_bind(bench::call_chain(10, 32));
  IpaContext ctx = run_ipa(bp);
  std::vector<int> flat;
  for (const auto& level : ctx.acg.wavefront_levels())
    for (int idx : level) flat.push_back(idx);
  // A chain has singleton levels: the flattening *is* the reverse
  // topological order.
  EXPECT_EQ(flat, ctx.acg.reverse_topological_indices());
}

TEST(WavefrontLevels, IndexOrdersMatchNameOrders) {
  BoundProgram bp = parse_and_bind(bench::fan_out(6, 32));
  IpaContext ctx = run_ipa(bp);
  auto names = ctx.acg.reverse_topological_order();
  auto indices = ctx.acg.reverse_topological_indices();
  ASSERT_EQ(names.size(), indices.size());
  for (size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(bp.ast.procedures[static_cast<size_t>(indices[i])]->name,
              names[i]);
}

// ---------------------------------------------------------------------------
// Worker-safety primitives
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(257);
  for (auto& c : counts) c = 0;
  pool.parallel_for(counts.size(), [&](size_t i) { ++counts[i]; });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(10, [&](size_t) { ++total; });
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      pool.parallel_for(64, [&](size_t i) {
        if (i == 7 || i == 50) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "7");
    }
  }
}

TEST(Diagnostics, OrderedSortsByProcedureIndex) {
  DiagnosticEngine diags;
  diags.warning({1, 1}, "from worker 2", 2);
  diags.warning({2, 1}, "from worker 0", 0);
  diags.note({3, 1}, "front-end");  // default order_key -1
  diags.warning({4, 1}, "from worker 0 again", 0);
  auto ordered = diags.ordered();
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered[0].message, "front-end");
  EXPECT_EQ(ordered[1].message, "from worker 0");
  EXPECT_EQ(ordered[2].message, "from worker 0 again");
  EXPECT_EQ(ordered[3].message, "from worker 2");
  EXPECT_EQ(diags.warning_count(), 3);
}

// ---------------------------------------------------------------------------
// CompilerStats plumbing
// ---------------------------------------------------------------------------

TEST(CompilerStats, ReportsPhasesAndSchedule) {
  CodegenOptions opt;
  opt.jobs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(bench::fan_out(8, 64));
  EXPECT_EQ(r.stats.procedures, 9);
  EXPECT_EQ(r.stats.wavefront_levels, 2);
  EXPECT_EQ(r.stats.jobs, 4);
  EXPECT_GE(r.stats.total_ms, 0.0);
  EXPECT_EQ(r.stats.generated + r.stats.cache_hits, r.stats.procedures);
  EXPECT_EQ(compiler.last_stats().procedures, r.stats.procedures);
  EXPECT_EQ(compiler.cache().size(), 9u);
}

}  // namespace
}  // namespace fortd
