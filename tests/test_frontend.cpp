// Lexer and parser tests.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"

namespace fortd {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  std::vector<Tok> out;
  for (const auto& t : lexer.tokenize()) out.push_back(t.kind);
  return out;
}

TEST(Lexer, BasicTokens) {
  auto ks = kinds("x = 1 + 2.5");
  ASSERT_EQ(ks.size(), 6u);
  EXPECT_EQ(ks[0], Tok::Ident);
  EXPECT_EQ(ks[1], Tok::Assign);
  EXPECT_EQ(ks[2], Tok::IntLit);
  EXPECT_EQ(ks[3], Tok::Plus);
  EXPECT_EQ(ks[4], Tok::RealLit);
  EXPECT_EQ(ks[5], Tok::Eof);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto ks = kinds("DO EnDdO Distribute ALIGN with");
  EXPECT_EQ(ks[0], Tok::KwDo);
  EXPECT_EQ(ks[1], Tok::KwEndDo);
  EXPECT_EQ(ks[2], Tok::KwDistribute);
  EXPECT_EQ(ks[3], Tok::KwAlign);
  EXPECT_EQ(ks[4], Tok::KwWith);
}

TEST(Lexer, DotOperators) {
  auto ks = kinds("a .eq. b .and. c .lt. d .or. .not. e");
  std::vector<Tok> expect = {Tok::Ident, Tok::Eq,  Tok::Ident, Tok::And,
                             Tok::Ident, Tok::Lt,  Tok::Ident, Tok::Or,
                             Tok::Not,   Tok::Ident, Tok::Eof};
  EXPECT_EQ(ks, expect);
}

TEST(Lexer, SymbolicRelationalOperators) {
  auto ks = kinds("a <= b >= c == d /= e < f > g");
  std::vector<Tok> expect = {Tok::Ident, Tok::Le, Tok::Ident, Tok::Ge,
                             Tok::Ident, Tok::Eq, Tok::Ident, Tok::Ne,
                             Tok::Ident, Tok::Lt, Tok::Ident, Tok::Gt,
                             Tok::Ident, Tok::Eof};
  EXPECT_EQ(ks, expect);
}

TEST(Lexer, CommentsAndContinuations) {
  auto ks = kinds("a = 1 ! comment here\nb = a + &\n    2\n");
  // a = 1 NL b = a + 2 NL EOF
  std::vector<Tok> expect = {Tok::Ident, Tok::Assign, Tok::IntLit, Tok::Newline,
                             Tok::Ident, Tok::Assign, Tok::Ident,  Tok::Plus,
                             Tok::IntLit, Tok::Newline, Tok::Eof};
  EXPECT_EQ(ks, expect);
}

TEST(Lexer, RealLiteralForms) {
  DiagnosticEngine diags;
  Lexer lexer("1.5 2e3 4.5e-2 .25", diags);
  auto toks = lexer.tokenize();
  ASSERT_GE(toks.size(), 4u);
  EXPECT_DOUBLE_EQ(toks[0].real_val, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].real_val, 2000.0);
  EXPECT_DOUBLE_EQ(toks[2].real_val, 0.045);
  EXPECT_DOUBLE_EQ(toks[3].real_val, 0.25);
}

TEST(Lexer, IntDotOperatorDisambiguation) {
  // "1.eq." must lex as IntLit 1 then .eq., not a real literal.
  auto ks = kinds("if (1.eq.n) then");
  EXPECT_EQ(ks[2], Tok::IntLit);
  EXPECT_EQ(ks[3], Tok::Eq);
}

TEST(Lexer, DollarsInIdentifiers) {
  DiagnosticEngine diags;
  Lexer lexer("my$p ub$1", diags);
  auto toks = lexer.tokenize();
  EXPECT_EQ(toks[0].text, "my$p");
  EXPECT_EQ(toks[1].text, "ub$1");
}

TEST(Lexer, UnknownCharacterThrows) {
  DiagnosticEngine diags;
  Lexer lexer("a # b", diags);
  EXPECT_THROW(lexer.tokenize(), CompileError);
}

// ---------------------------------------------------------------------------

const char* kSimple = R"(
      program p1
      real x(100)
      integer i
      distribute x(block)
      do i = 1, 95
        x(i) = f(x(i+5))
      enddo
      end
)";

TEST(Parser, SimpleProgramStructure) {
  SourceProgram unit = parse_program(kSimple);
  ASSERT_EQ(unit.procedures.size(), 1u);
  const Procedure& p = *unit.procedures[0];
  EXPECT_TRUE(p.is_program);
  EXPECT_EQ(p.name, "p1");
  ASSERT_EQ(p.decls.size(), 2u);
  EXPECT_EQ(p.decls[0].name, "x");
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.body[0]->kind, StmtKind::Distribute);
  EXPECT_EQ(p.body[1]->kind, StmtKind::Do);
  ASSERT_EQ(p.body[1]->body.size(), 1u);
  EXPECT_EQ(p.body[1]->body[0]->kind, StmtKind::Assign);
}

TEST(Parser, ArrayRefVsFuncCall) {
  SourceProgram unit = parse_program(kSimple);
  const Stmt& assign = *unit.procedures[0]->body[1]->body[0];
  EXPECT_EQ(assign.lhs->kind, ExprKind::ArrayRef);  // x declared as array
  EXPECT_EQ(assign.rhs->kind, ExprKind::FuncCall);  // f undeclared
  EXPECT_EQ(assign.rhs->args[0]->kind, ExprKind::ArrayRef);
}

TEST(Parser, SubroutineFormalsAndCall) {
  SourceProgram unit = parse_program(R"(
      program p
      real x(10)
      call f1(x, 3)
      end
      subroutine f1(a, n)
      real a(10)
      integer n
      a(n) = 1.0
      end
)");
  ASSERT_EQ(unit.procedures.size(), 2u);
  const Procedure& f1 = *unit.procedures[1];
  EXPECT_FALSE(f1.is_program);
  EXPECT_EQ(f1.formals, (std::vector<std::string>{"a", "n"}));
  EXPECT_EQ(unit.procedures[0]->body[0]->kind, StmtKind::Call);
  EXPECT_EQ(unit.procedures[0]->body[0]->callee, "f1");
}

TEST(Parser, AlignPermutation) {
  SourceProgram unit = parse_program(R"(
      program p
      real x(10,10)
      real y(10,10)
      align y(i,j) with x(j,i)
      end
)");
  const Stmt& align = *unit.procedures[0]->body[0];
  EXPECT_EQ(align.kind, StmtKind::Align);
  EXPECT_EQ(align.align_array, "y");
  EXPECT_EQ(align.align_target, "x");
  EXPECT_EQ(align.align_perm, (std::vector<int>{1, 0}));
}

TEST(Parser, DistributeSpecs) {
  SourceProgram unit = parse_program(R"(
      program p
      real x(10,10)
      distribute x(block, :)
      distribute x(:, cyclic)
      distribute x(block_cyclic(4), :)
      end
)");
  const auto& body = unit.procedures[0]->body;
  EXPECT_EQ(body[0]->dist_specs[0].kind, DistKind::Block);
  EXPECT_EQ(body[0]->dist_specs[1].kind, DistKind::None);
  EXPECT_EQ(body[1]->dist_specs[1].kind, DistKind::Cyclic);
  EXPECT_EQ(body[2]->dist_specs[0].kind, DistKind::BlockCyclic);
  EXPECT_EQ(body[2]->dist_specs[0].block_size, 4);
}

TEST(Parser, IfElseAndLogicalIf) {
  SourceProgram unit = parse_program(R"(
      program p
      integer a, b
      if (a .gt. 0) then
        b = 1
      else
        b = 2
      endif
      if (a .lt. 0) b = 3
      end
)");
  const auto& body = unit.procedures[0]->body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[0]->then_body.size(), 1u);
  EXPECT_EQ(body[0]->else_body.size(), 1u);
  EXPECT_EQ(body[1]->then_body.size(), 1u);
  EXPECT_TRUE(body[1]->else_body.empty());
}

TEST(Parser, OperatorPrecedence) {
  SourceProgram unit = parse_program(R"(
      program p
      integer a
      a = 1 + 2 * 3
      end
)");
  const Expr& rhs = *unit.procedures[0]->body[0]->rhs;
  ASSERT_EQ(rhs.kind, ExprKind::Binary);
  EXPECT_EQ(rhs.bin_op, BinOp::Add);
  EXPECT_EQ(rhs.args[1]->bin_op, BinOp::Mul);
}

TEST(Parser, ParameterAndSymbolicBounds) {
  SourceProgram unit = parse_program(R"(
      program p
      parameter (n = 10)
      real x(n, 2*n)
      x(1,1) = 0.0
      end
)");
  EXPECT_EQ(unit.procedures[0]->params.size(), 1u);
  EXPECT_EQ(unit.procedures[0]->decls[0].dims.size(), 2u);
}

TEST(Parser, CommonBlocks) {
  SourceProgram unit = parse_program(R"(
      program p
      real x(10)
      integer n
      common /shared/ x, n
      end
)");
  ASSERT_EQ(unit.procedures[0]->commons.size(), 1u);
  EXPECT_EQ(unit.procedures[0]->commons[0].name, "shared");
  EXPECT_EQ(unit.procedures[0]->commons[0].vars,
            (std::vector<std::string>{"x", "n"}));
}

TEST(Parser, ErrorsOnMissingEnddo) {
  EXPECT_THROW(parse_program("program p\ninteger i\ndo i = 1, 3\nend"),
               CompileError);
}

TEST(Parser, ErrorsOnAssignToCall) {
  EXPECT_THROW(parse_program("program p\nf(1) = 2\nend"), CompileError);
}

TEST(Parser, ErrorsOnRedeclaration) {
  EXPECT_THROW(parse_program("program p\nreal x(5)\ninteger x\nend"),
               CompileError);
}

TEST(Parser, LowerBoundDims) {
  SourceProgram unit = parse_program(R"(
      subroutine f(x, lo, hi)
      real x(lo:hi)
      x(lo) = 0.0
      end
)");
  const VarDecl& d = unit.procedures[0]->decls[0];
  ASSERT_EQ(d.dims.size(), 1u);
  EXPECT_NE(d.dims[0].lb, nullptr);
}

TEST(Parser, StatementIdsAreUnique) {
  SourceProgram unit = parse_program(kSimple);
  std::set<int> ids;
  int count = 0;
  walk_stmts(unit.procedures[0]->body, [&](const Stmt& s) {
    ids.insert(s.id);
    ++count;
  });
  EXPECT_EQ(static_cast<int>(ids.size()), count);
}

TEST(Ast, CloneIsDeepAndEqual) {
  SourceProgram unit = parse_program(kSimple);
  auto clone = unit.procedures[0]->clone_as("copy");
  EXPECT_EQ(clone->name, "copy");
  EXPECT_EQ(clone->body.size(), unit.procedures[0]->body.size());
  // Mutating the clone must not affect the original.
  clone->body.clear();
  EXPECT_EQ(unit.procedures[0]->body.size(), 2u);
}

TEST(Ast, StructuralEquality) {
  auto a = Expr::make_binary(BinOp::Add, Expr::make_var("i"), Expr::make_int(5));
  auto b = Expr::make_binary(BinOp::Add, Expr::make_var("i"), Expr::make_int(5));
  auto c = Expr::make_binary(BinOp::Add, Expr::make_var("i"), Expr::make_int(6));
  EXPECT_TRUE(a->structurally_equal(*b));
  EXPECT_FALSE(a->structurally_equal(*c));
}

}  // namespace
}  // namespace fortd
