// Interprocedural lint and SPMD verification tests: the negative-fixture
// corpus under tests/lint/ (each file triggers exactly one checker, by
// id), deterministic diagnostic ordering across worker counts, and the
// SpmdVerifier over the example programs and mutated SPMD output.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <optional>
#include <sstream>

#include "analysis/lint/spmd_verifier.hpp"
#include "example_programs.hpp"
#include "driver/compiler.hpp"
#include "support/thread_pool.hpp"

#ifndef FORTD_LINT_FIXTURE_DIR
#define FORTD_LINT_FIXTURE_DIR "tests/lint"
#endif

namespace fortd {
namespace {

using examples::Example;
using examples::kExamples;
using examples::kJacobi;
using examples::kRedistribution;

std::string load_fixture(const std::string& name) {
  std::string path = std::string(FORTD_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

CompileResult compile_analyzed(const std::string& source, int jobs = 1,
                               int n_procs = 4) {
  CodegenOptions options;
  options.n_procs = n_procs;
  options.jobs = jobs;
  LintOptions lint;
  lint.analyze = true;
  lint.verify_spmd = true;
  Compiler compiler(options, {}, lint);
  return compiler.compile_source(source);
}

const char* kAllCheckerIds[] = {
    "fortd-call-mismatch",
    "fortd-overlap-bounds",
    "fortd-loop-sequential",
    "fortd-dead-decomp",
    "fortd-alias-hazard",
};

/// The fixture must report warnings only under `expected` and stay silent
/// under every other checker id.
void expect_exactly(const LintReport& report, const std::string& expected) {
  for (const char* id : kAllCheckerIds) {
    if (id == expected) {
      EXPECT_GE(report.count(id), 1) << "expected findings under " << id;
    } else {
      EXPECT_EQ(report.count(id), 0) << "unexpected findings under " << id
                                     << ":\n" << report.text();
    }
  }
}

// ---------------------------------------------------------------------------
// Negative fixtures: one checker each
// ---------------------------------------------------------------------------

TEST(LintFixtures, CallMismatch) {
  CompileResult r = compile_analyzed(load_fixture("call_mismatch.fd"));
  expect_exactly(r.lint, "fortd-call-mismatch");
}

TEST(LintFixtures, OverlapBounds) {
  CompileResult r = compile_analyzed(load_fixture("overlap_bounds.fd"));
  expect_exactly(r.lint, "fortd-overlap-bounds");
}

TEST(LintFixtures, LoopSequential) {
  CompileResult r = compile_analyzed(load_fixture("loop_sequential.fd"));
  expect_exactly(r.lint, "fortd-loop-sequential");
}

TEST(LintFixtures, DeadDecomp) {
  CompileResult r = compile_analyzed(load_fixture("dead_decomp.fd"));
  expect_exactly(r.lint, "fortd-dead-decomp");
}

TEST(LintFixtures, AliasHazard) {
  CompileResult r = compile_analyzed(load_fixture("alias_hazard.fd"));
  expect_exactly(r.lint, "fortd-alias-hazard");
  // The note carries the inducing call site as provenance.
  bool note_with_line = false;
  for (const Diagnostic& d : r.lint.diags)
    if (d.id == "fortd-alias-hazard" && d.level == DiagLevel::Note &&
        d.loc.line > 0)
      note_with_line = true;
  EXPECT_TRUE(note_with_line) << r.lint.text();
}

TEST(LintFixtures, CleanProgramIsSilent) {
  CompileResult r = compile_analyzed(load_fixture("clean.fd"));
  EXPECT_TRUE(r.lint.empty()) << r.lint.text();
  EXPECT_TRUE(r.verify.clean()) << r.verify.text();
}

TEST(LintFixtures, StatsCarryLintCounts) {
  CompileResult r = compile_analyzed(load_fixture("dead_decomp.fd"));
  EXPECT_EQ(r.stats.lint_warnings, r.lint.warnings);
  EXPECT_EQ(r.stats.lint_notes, r.lint.notes);
  EXPECT_GE(r.lint.warnings, 1);
  EXPECT_EQ(r.stats.verify_unmatched, r.verify.unmatched);
}

TEST(LintFixtures, DisabledCheckerIsSkipped) {
  CodegenOptions options;
  LintOptions lint;
  lint.analyze = true;
  lint.disabled.insert("fortd-dead-decomp");
  Compiler compiler(options, {}, lint);
  CompileResult r = compiler.compile_source(load_fixture("dead_decomp.fd"));
  EXPECT_EQ(r.lint.count("fortd-dead-decomp"), 0) << r.lint.text();
}

TEST(LintFixtures, JsonCarriesIdAndLocation) {
  CompileResult r = compile_analyzed(load_fixture("dead_decomp.fd"));
  const std::string json = r.lint.json();
  EXPECT_NE(json.find("\"id\": \"fortd-dead-decomp\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Deterministic ordering across worker counts
// ---------------------------------------------------------------------------

// Several procedures, several findings, so a racy schedule would have
// many chances to reorder the report.
const char* kManyFindings = R"(
      program manyf
      real a(64)
      real u(64)
      integer i, n
      distribute a(block)
      distribute a(cyclic)
      distribute u(block)
      do i = 1, 64
        a(5) = a(5) + 1.0
      enddo
      do i = 1, 44
        a(i) = u(i+20)
      enddo
      call s1(a)
      call s2(u)
      end

      subroutine s1(x)
      real x(64)
      integer i
      do i = 1, 64
        x(7) = x(7) + 2.0
      enddo
      end

      subroutine s2(x)
      real x(64)
      integer i
      do i = 1, 64
        x(9) = x(9) + 3.0
      enddo
      end
)";

TEST(LintDeterminism, SerialAndParallelReportsAreByteIdentical) {
  CompileResult serial = compile_analyzed(kManyFindings, /*jobs=*/1);
  CompileResult parallel = compile_analyzed(kManyFindings, /*jobs=*/4);
  ASSERT_FALSE(serial.lint.empty());
  EXPECT_EQ(serial.lint.text(), parallel.lint.text());
  EXPECT_EQ(serial.lint.json(), parallel.lint.json());
  EXPECT_EQ(serial.verify.text(), parallel.verify.text());
  EXPECT_EQ(serial.verify.summary(), parallel.verify.summary());
}

// The new-checker fixtures through every (jobs, scheduler) combination:
// the findings must be byte-identical, because the alias pass, the lint
// cells, and the verifier all order their output deterministically.
TEST(LintDeterminism, NewFixturesAreScheduleInvariant) {
  for (const char* fixture : {"alias_hazard.fd", "spmd_deadlock.fd"}) {
    const std::string src = load_fixture(fixture);
    auto compile_with = [&](int jobs, Scheduler sched) {
      CodegenOptions options;
      options.n_procs = 2;
      options.jobs = jobs;
      options.scheduler = sched;
      IpaOptions ipa;
      ipa.scheduler = sched;
      LintOptions lint;
      lint.analyze = true;
      lint.verify_spmd = true;
      Compiler compiler(options, ipa, lint);
      CompileResult r = compiler.compile_source(src);
      // The folded report (satellite of -lint-json): the uniform
      // serialization of lint + verifier findings.
      return compiler.last_lint_report().json() + "|" + r.lint.text() + "|" +
             r.verify.text();
    };
    const std::string base = compile_with(1, Scheduler::WorkStealing);
    for (Scheduler sched : {Scheduler::WorkStealing, Scheduler::Wavefront})
      for (int jobs : {1, 4})
        EXPECT_EQ(base, compile_with(jobs, sched))
            << fixture << " jobs=" << jobs << " sched="
            << static_cast<int>(sched);
  }
}

// Verifier findings fold into last_lint_report() with their ids, so the
// -lint-json stream is uniform across lint and verify diagnostics.
TEST(LintDeterminism, VerifierFindingsSerializeUniformly) {
  CodegenOptions options;
  options.n_procs = 4;
  LintOptions lint;
  lint.analyze = true;
  lint.verify_spmd = true;
  Compiler compiler(options, {}, lint);
  CompileResult r =
      compiler.compile_source(load_fixture("alias_hazard.fd"));
  const LintReport& folded = compiler.last_lint_report();
  EXPECT_EQ(folded.diags.size(),
            r.lint.diags.size() + r.verify.diags.size());
  EXPECT_NE(folded.json().find("\"id\": \"fortd-alias-hazard\""),
            std::string::npos)
      << folded.json();
  EXPECT_EQ(folded.warnings + folded.notes,
            static_cast<int>(folded.diags.size()));
}

// ---------------------------------------------------------------------------
// SpmdVerifier: clean on the example programs
// ---------------------------------------------------------------------------

TEST(SpmdVerifier, CleanOnEveryExample) {
  for (const Example& ex : kExamples) {
    CompileResult r = compile_analyzed(ex.source);
    EXPECT_TRUE(r.verify.clean())
        << ex.name << " verifier findings:\n" << r.verify.text();
  }
}

TEST(SpmdVerifier, CleanOnEveryExampleUnderEveryStrategy) {
  const Strategy strategies[] = {Strategy::Interprocedural,
                                 Strategy::Intraprocedural,
                                 Strategy::RuntimeResolution};
  for (const Example& ex : kExamples) {
    for (Strategy strat : strategies) {
      CodegenOptions options;
      options.n_procs = 4;
      options.strategy = strat;
      LintOptions lint;
      lint.verify_spmd = true;
      Compiler compiler(options, {}, lint);
      CompileResult r = compiler.compile_source(ex.source);
      EXPECT_TRUE(r.verify.clean())
          << ex.name << " (strategy " << static_cast<int>(strat)
          << ") verifier findings:\n" << r.verify.text();
    }
  }
}

// The deadlock simulation is order-sensitive, so the generated schedule of
// every example must drain at every processor count under every strategy —
// a false positive here would be a send/recv emission-order bug.
TEST(SpmdVerifier, CleanAtOtherProcessorCounts) {
  const Strategy strategies[] = {Strategy::Interprocedural,
                                 Strategy::Intraprocedural,
                                 Strategy::RuntimeResolution};
  for (const Example& ex : kExamples) {
    for (Strategy strat : strategies) {
      for (int p : {2, 8}) {
        CodegenOptions options;
        options.n_procs = p;
        options.strategy = strat;
        LintOptions lint;
        lint.verify_spmd = true;
        Compiler compiler(options, {}, lint);
        CompileResult r = compiler.compile_source(ex.source);
        EXPECT_TRUE(r.verify.clean())
            << ex.name << " (strategy " << static_cast<int>(strat)
            << ") at P=" << p << ":\n" << r.verify.text();
        EXPECT_EQ(r.verify.deadlocks, 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SpmdVerifier: mutated programs must be flagged
// ---------------------------------------------------------------------------

/// Remove the first statement of `kind` anywhere in the program;
/// returns true when one was removed.
bool remove_first(SpmdProgram& spmd, StmtKind kind) {
  for (auto& proc : spmd.ast.procedures) {
    std::function<bool(std::vector<StmtPtr>&)> prune =
        [&](std::vector<StmtPtr>& stmts) -> bool {
      for (size_t i = 0; i < stmts.size(); ++i) {
        if (stmts[i]->kind == kind) {
          stmts.erase(stmts.begin() + static_cast<long>(i));
          return true;
        }
        if (prune(stmts[i]->then_body) || prune(stmts[i]->else_body) ||
            prune(stmts[i]->body))
          return true;
      }
      return false;
    };
    if (prune(proc->body)) return true;
  }
  return false;
}

TEST(SpmdVerifier, RemovedRecvLeavesUnmatchedSend) {
  CompileResult r = compile_analyzed(kJacobi);
  ASSERT_TRUE(r.verify.clean());
  ASSERT_TRUE(remove_first(r.spmd, StmtKind::Recv));
  SpmdVerifyReport v = verify_spmd(r.spmd);
  EXPECT_GT(v.unmatched, 0);
  int unmatched_sends = 0;
  for (const Diagnostic& d : v.diags)
    if (d.id == "fortd-spmd-unmatched-send") ++unmatched_sends;
  EXPECT_GE(unmatched_sends, 1) << v.text();
  EXPECT_FALSE(v.clean());
}

TEST(SpmdVerifier, RemovedSendLeavesUnmatchedRecv) {
  CompileResult r = compile_analyzed(kJacobi);
  ASSERT_TRUE(remove_first(r.spmd, StmtKind::Send));
  SpmdVerifyReport v = verify_spmd(r.spmd);
  EXPECT_GT(v.unmatched, 0);
  int unmatched_recvs = 0;
  for (const Diagnostic& d : v.diags)
    if (d.id == "fortd-spmd-unmatched-recv") ++unmatched_recvs;
  EXPECT_GE(unmatched_recvs, 1) << v.text();
}

TEST(SpmdVerifier, GuardedCollectiveIsFlagged) {
  CompileResult r = compile_analyzed(kRedistribution);
  // Wrap the first collective in a processor-dependent guard.
  bool wrapped = false;
  for (auto& proc : r.spmd.ast.procedures) {
    for (auto& sp : proc->body) {
      if (sp->kind == StmtKind::Remap || sp->kind == StmtKind::MarkDist ||
          sp->kind == StmtKind::Broadcast) {
        auto cond = Expr::make_binary(BinOp::Gt, Expr::make_var("my$p"),
                                      Expr::make_int(0));
        std::vector<StmtPtr> then_body;
        then_body.push_back(std::move(sp));
        sp = Stmt::make_if(std::move(cond), std::move(then_body));
        wrapped = true;
        break;
      }
    }
    if (wrapped) break;
  }
  ASSERT_TRUE(wrapped) << "no collective found to wrap";
  SpmdVerifyReport v = verify_spmd(r.spmd);
  int guarded = 0;
  for (const Diagnostic& d : v.diags)
    if (d.id == "fortd-spmd-guarded-collective") ++guarded;
  EXPECT_GE(guarded, 1) << v.text();
}

/// Reorder the message statements of every top-level statement list so
/// all If-wrapped sends precede all If-wrapped recvs, keeping relative
/// order within each kind and leaving every other slot untouched. The
/// send/recv *multisets* are unchanged — only the schedule moves.
bool partition_sends_first(std::vector<StmtPtr>& stmts) {
  auto msg_kind = [](const Stmt& s) -> std::optional<StmtKind> {
    if (s.kind == StmtKind::Send || s.kind == StmtKind::Recv) return s.kind;
    if (s.kind == StmtKind::If && s.then_body.size() == 1 &&
        s.else_body.empty() &&
        (s.then_body[0]->kind == StmtKind::Send ||
         s.then_body[0]->kind == StmtKind::Recv))
      return s.then_body[0]->kind;
    return std::nullopt;
  };
  std::vector<size_t> slots;
  for (size_t i = 0; i < stmts.size(); ++i)
    if (msg_kind(*stmts[i])) slots.push_back(i);
  if (slots.size() < 2) return false;
  std::vector<StmtPtr> sends, recvs;
  for (size_t i : slots) {
    if (*msg_kind(*stmts[i]) == StmtKind::Send)
      sends.push_back(std::move(stmts[i]));
    else
      recvs.push_back(std::move(stmts[i]));
  }
  if (sends.empty() || recvs.empty()) return false;
  size_t next = 0;
  for (StmtPtr& s : sends) stmts[slots[next++]] = std::move(s);
  for (StmtPtr& r : recvs) stmts[slots[next++]] = std::move(r);
  return true;
}

// Two opposite shifts on one array generate [send, recv, send, recv] per
// processor; reordering to sends-first makes both processors at P=2 front
// a synchronous send to each other — matched multisets, no execution
// order. The multiset pass accepts it; only the simulation catches it.
TEST(SpmdVerifier, CyclicBlockingSendsAreDeadlock) {
  CompileResult r = compile_analyzed(load_fixture("spmd_deadlock.fd"),
                                     /*jobs=*/1, /*n_procs=*/2);
  ASSERT_TRUE(r.verify.clean()) << r.verify.text();
  ASSERT_EQ(r.verify.deadlocks, 0);
  bool mutated = false;
  for (auto& proc : r.spmd.ast.procedures)
    mutated |= partition_sends_first(proc->body);
  ASSERT_TRUE(mutated) << "no send/recv run found to reorder";
  SpmdVerifyReport v = verify_spmd(r.spmd);
  EXPECT_EQ(v.unmatched, 0) << v.text();  // multisets still match
  EXPECT_GE(v.deadlocks, 1);
  int deadlock_diags = 0;
  for (const Diagnostic& d : v.diags) {
    if (d.id != "fortd-spmd-deadlock") continue;
    ++deadlock_diags;
    EXPECT_GT(d.loc.line, 0) << "deadlock diagnostic lost its source line: "
                             << d.str();
  }
  EXPECT_GE(deadlock_diags, 1) << v.text();
  EXPECT_FALSE(v.clean());
}

// The verifier's simulation must be a pure function of the program: the
// parallel walk and the serial walk agree, and the report is identical at
// every processor count that deadlocks.
TEST(SpmdVerifier, DeadlockReportIsPoolInvariant) {
  CompileResult r = compile_analyzed(load_fixture("spmd_deadlock.fd"),
                                     /*jobs=*/1, /*n_procs=*/2);
  for (auto& proc : r.spmd.ast.procedures) partition_sends_first(proc->body);
  SpmdVerifyReport serial = verify_spmd(r.spmd);
  ThreadPool pool(4);
  SpmdVerifyReport parallel = verify_spmd(r.spmd, &pool);
  EXPECT_EQ(serial.text(), parallel.text());
  EXPECT_EQ(serial.deadlocks, parallel.deadlocks);
}

TEST(SpmdVerifier, SizeMismatchIsFlagged) {
  CompileResult r = compile_analyzed(kJacobi);
  // Widen the first recv's section by one element: same (src, dst,
  // array) channel, different payload.
  bool widened = false;
  for (auto& proc : r.spmd.ast.procedures) {
    walk_stmts(proc->body, [&](Stmt& s) {
      if (widened || s.kind != StmtKind::Recv || s.msg_section.empty())
        return;
      s.msg_section[0].ub = Expr::make_binary(
          BinOp::Add, std::move(s.msg_section[0].ub), Expr::make_int(1));
      widened = true;
    });
    if (widened) break;
  }
  ASSERT_TRUE(widened);
  SpmdVerifyReport v = verify_spmd(r.spmd);
  int mismatches = 0;
  for (const Diagnostic& d : v.diags)
    if (d.id == "fortd-spmd-size-mismatch") ++mismatches;
  EXPECT_GE(mismatches, 1) << v.text();
}

}  // namespace
}  // namespace fortd
