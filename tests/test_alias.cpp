// Interprocedural may-alias analysis (ipa/alias.hpp): pair introduction
// at call sites (overlapping actuals, sequence-associated sections,
// COMMON visibility), caller→callee propagation over the ACG, schedule
// invariance of the map across serial / wavefront / work-stealing runs,
// and stability of the §8 recompilation digests the entries fold into.
#include <gtest/gtest.h>

#include "../bench/programs.hpp"
#include "ipa/alias.hpp"
#include "ipa/recompilation.hpp"
#include "support/thread_pool.hpp"

namespace fortd {
namespace {

// ---------------------------------------------------------------------------
// Pair introduction
// ---------------------------------------------------------------------------

const char* kSelfArg = R"(
      program aliash
      real a(64)
      integer i
      distribute a(block)
      do i = 1, 64
        a(i) = i * 1.0
      enddo
      call upd(a, a)
      end

      subroutine upd(x, y)
      real x(64)
      real y(64)
      integer i
      do i = 1, 64
        x(i) = y(i) + 1.0
      enddo
      end
)";

TEST(AliasAnalysis, SelfArgumentInducesFormalPair) {
  BoundProgram bp = parse_and_bind(kSelfArg);
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  AliasMap am = compute_alias_map(bp, acg);
  ASSERT_TRUE(am.may_alias("upd", "x", "y"));
  ASSERT_TRUE(am.may_alias("upd", "y", "x"));  // order-insensitive
  const AliasPair* pair = am.find("upd", "x", "y");
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->via, "aliash");
  EXPECT_GT(pair->loc.line, 0);  // call-site provenance
  EXPECT_EQ(am.of("aliash"), nullptr);  // the caller itself has no pairs
}

TEST(AliasAnalysis, DistinctArraysStayDistinct) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      real a(64)
      real b(64)
      distribute a(block)
      distribute b(block)
      call upd(a, b)
      end

      subroutine upd(x, y)
      real x(64)
      real y(64)
      integer i
      do i = 1, 64
        x(i) = y(i) + 1.0
      enddo
      end
)");
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  AliasMap am = compute_alias_map(bp, acg);
  EXPECT_EQ(am.total_pairs(), 0) << am.str();
}

// Fortran sequence association: an actual a(c) bound to a formal of
// extent E covers a(c:c+E-1). Disjoint covers (exact RSD intersection)
// refine the pair away; overlapping covers keep it.
TEST(AliasAnalysis, SequenceAssociatedSectionsRefine) {
  const char* pattern = R"(
      program p
      real a(64)
      distribute a(block)
      call sub(a(1), a(%s))
      end

      subroutine sub(x, y)
      real x(32)
      real y(32)
      integer i
      do i = 1, 32
        x(i) = y(i) + 1.0
      enddo
      end
)";
  auto with_offset = [&](const char* c) {
    std::string src = pattern;
    src.replace(src.find("%s"), 2, c);
    BoundProgram bp = parse_and_bind(src);
    AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
    return compute_alias_map(bp, acg);
  };
  // a(1:32) vs a(33:64): provably disjoint, no pair.
  EXPECT_EQ(with_offset("33").total_pairs(), 0);
  // a(1:32) vs a(16:47): overlap, the pair survives.
  EXPECT_TRUE(with_offset("16").may_alias("sub", "x", "y"));
}

TEST(AliasAnalysis, CommonVisibilityInducesFormalGlobalPair) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      real g(64)
      integer i
      common /shared/ g
      distribute g(block)
      do i = 1, 64
        g(i) = i * 1.0
      enddo
      call upd(g)
      end

      subroutine upd(x)
      real x(64)
      real g(64)
      integer i
      common /shared/ g
      do i = 1, 64
        x(i) = g(i) + 1.0
      enddo
      end
)");
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  AliasMap am = compute_alias_map(bp, acg);
  EXPECT_TRUE(am.may_alias("upd", "x", "g")) << am.str();
}

TEST(AliasAnalysis, PairsPropagateToTransitiveCallees) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      real a(64)
      distribute a(block)
      call outer(a, a)
      end

      subroutine outer(x, y)
      real x(64)
      real y(64)
      call inner(x, y)
      end

      subroutine inner(u, v)
      real u(64)
      real v(64)
      integer i
      do i = 1, 64
        u(i) = v(i) + 1.0
      enddo
      end
)");
  AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
  AliasMap am = compute_alias_map(bp, acg);
  EXPECT_TRUE(am.may_alias("outer", "x", "y"));
  EXPECT_TRUE(am.may_alias("inner", "u", "v")) << am.str();
}

// ---------------------------------------------------------------------------
// Schedule invariance
// ---------------------------------------------------------------------------

// The map must be byte-identical across serial, work-stealing, and
// wavefront runs at any worker count — entries are canonical set unions,
// and both schedules publish callers before callees.
TEST(AliasAnalysis, ScheduleInvariantOnWorkloadGenerators) {
  for (const std::string& src :
       {bench::cloning_fanout(8, 3, 32), bench::dgefa(16)}) {
    BoundProgram bp = parse_and_bind(src);
    AugmentedCallGraph acg = AugmentedCallGraph::build(bp);
    const AliasMap serial = compute_alias_map(bp, acg);
    ThreadPool pool(4);
    const AliasMap stealing =
        compute_alias_map(bp, acg, &pool, Scheduler::WorkStealing);
    const AliasMap wavefront =
        compute_alias_map(bp, acg, &pool, Scheduler::Wavefront);
    EXPECT_EQ(serial.str(), stealing.str());
    EXPECT_EQ(serial.str(), wavefront.str());
    EXPECT_EQ(serial.total_pairs(), stealing.total_pairs());
  }
}

// ---------------------------------------------------------------------------
// §8 digests
// ---------------------------------------------------------------------------

TEST(AliasAnalysis, DigestsAreScheduleInvariant) {
  BoundProgram bp1 = parse_and_bind(kSelfArg);
  BoundProgram bp2 = parse_and_bind(kSelfArg);
  IpaOptions steal, wave;
  steal.scheduler = Scheduler::WorkStealing;
  wave.scheduler = Scheduler::Wavefront;
  ThreadPool pool(4);
  IpaContext c1 = run_ipa(bp1, steal, &pool);
  IpaContext c2 = run_ipa(bp2, wave, &pool);
  ASSERT_EQ(c1.alias.str(), c2.alias.str());
  const OverlapEstimates ov1 =
      compute_overlap_estimates(bp1, c1.acg, c1.summaries);
  const OverlapEstimates ov2 =
      compute_overlap_estimates(bp2, c2.acg, c2.summaries);
  for (const auto& proc : bp1.ast.procedures) {
    EXPECT_EQ(hash_alias_entry(c1.alias, proc->name),
              hash_alias_entry(c2.alias, proc->name));
    EXPECT_EQ(hash_codegen_inputs(proc->name, c1, ov1),
              hash_codegen_inputs(proc->name, c2, ov2))
        << proc->name;
  }
}

// A changed alias environment must change the codegen-input digest even
// when every other interprocedural fact is identical: 'upd' has the same
// body, summaries, and reaching decompositions in both programs — only
// the aliasing of its formals differs.
TEST(AliasAnalysis, AliasEnvironmentFoldsIntoDigest) {
  BoundProgram aliased = parse_and_bind(kSelfArg);
  BoundProgram clean = parse_and_bind(R"(
      program aliash
      real a(64)
      real b(64)
      integer i
      distribute a(block)
      distribute b(block)
      do i = 1, 64
        a(i) = i * 1.0
      enddo
      call upd(a, b)
      end

      subroutine upd(x, y)
      real x(64)
      real y(64)
      integer i
      do i = 1, 64
        x(i) = y(i) + 1.0
      enddo
      end
)");
  IpaContext ca = run_ipa(aliased);
  IpaContext cc = run_ipa(clean);
  ASSERT_NE(hash_alias_entry(ca.alias, "upd"),
            hash_alias_entry(cc.alias, "upd"));
  OverlapEstimates ova = compute_overlap_estimates(aliased, ca.acg, ca.summaries);
  OverlapEstimates ovc = compute_overlap_estimates(clean, cc.acg, cc.summaries);
  EXPECT_NE(hash_codegen_inputs("upd", ca, ova),
            hash_codegen_inputs("upd", cc, ovc));
}

// Aliased formals widen the callee's side-effect summary: a write to one
// member is a may-write of the other.
TEST(AliasAnalysis, AliasWidensSideEffects) {
  BoundProgram bp = parse_and_bind(kSelfArg);
  IpaContext ctx = run_ipa(bp);
  ASSERT_TRUE(ctx.alias.may_alias("upd", "x", "y"));
  auto git = ctx.effects.gmod.find("upd");
  ASSERT_NE(git, ctx.effects.gmod.end());
  EXPECT_TRUE(git->second.count("x"));
  EXPECT_TRUE(git->second.count("y")) << "write to x must widen to alias y";
}

}  // namespace
}  // namespace fortd
