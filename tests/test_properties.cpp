// Cross-cutting property tests.
//
// 1. Dependence soundness: whenever the analysis reports NO carried true
//    dependence into a read (the license for message vectorization), a
//    brute-force execution of the loop nest must agree — the read never
//    observes a value written by an earlier iteration. The analysis may
//    be conservative (report a dependence where none exists) but must
//    never be optimistic.
// 2. Owner-expression consistency: the symbolic my$p expressions emitted
//    into generated code must agree with the value-level distribution
//    functions for every processor and index.
// 3. Simulation/oracle consistency under random-ish shift stencils.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dependence.hpp"
#include "driver/compiler.hpp"

namespace fortd {
namespace {

// ---------------------------------------------------------------------------
// 1. Dependence soundness
// ---------------------------------------------------------------------------

struct SubscriptPair {
  int wa, wc;  // write subscript: wa*i + wc
  int ra, rc;  // read subscript:  ra*i + rc
};

std::string stencil_source(const SubscriptPair& p) {
  auto term = [](int a, int c) {
    std::string s;
    if (a == 0)
      s = std::to_string(c < 1 ? 1 : c);  // keep subscripts in bounds
    else {
      s = a == 1 ? "i" : std::to_string(a) + "*i";
      if (c > 0) s += "+" + std::to_string(c);
      if (c < 0) s += "-" + std::to_string(-c);
    }
    return s;
  };
  return "      program p\n      real x(400)\n      integer i\n"
         "      do i = 10, 90\n        x(" +
         term(p.wa, p.wc) + ") = x(" + term(p.ra, p.rc) +
         ") + 1.0\n      enddo\n      end\n";
}

/// Brute force: does any iteration read an element written by an
/// *earlier* iteration (a carried true dependence)?
bool brute_force_carried_true(const SubscriptPair& p) {
  auto sub = [](int a, int c, int i) { return a == 0 ? (c < 1 ? 1 : c) : a * i + c; };
  std::map<int, int> last_write_iter;
  for (int i = 10; i <= 90; ++i) {
    int r = sub(p.ra, p.rc, i);
    auto it = last_write_iter.find(r);
    if (it != last_write_iter.end() && it->second < i) return true;
    last_write_iter[sub(p.wa, p.wc, i)] = i;
  }
  return false;
}

class DependenceSoundness : public ::testing::TestWithParam<SubscriptPair> {};

TEST_P(DependenceSoundness, NoFalseIndependence) {
  const SubscriptPair& p = GetParam();
  BoundProgram bp = parse_and_bind(stencil_source(p));
  const Procedure& proc = *bp.ast.procedures[0];
  SymbolicEnv env = SymbolicEnv::from_params(proc, bp.symtab("p"));
  DependenceAnalysis deps(proc, env);
  // Locate the rhs read of x.
  const Expr* read = nullptr;
  walk_stmts(proc.body, [&](const Stmt& s) {
    if (s.kind != StmtKind::Assign) return;
    walk_expr(*s.rhs, [&](const Expr& e) {
      if (e.kind == ExprKind::ArrayRef && e.name == "x") read = &e;
    });
  });
  ASSERT_NE(read, nullptr);
  bool analysis_says_free = deps.deepest_true_dep_level_into(read) == 0;
  bool truly_carried = brute_force_carried_true(p);
  if (analysis_says_free) {
    EXPECT_FALSE(truly_carried)
        << "analysis claims no carried true dep for write " << p.wa << "*i+"
        << p.wc << ", read " << p.ra << "*i+" << p.rc;
  }
}

std::vector<SubscriptPair> subscript_pairs() {
  std::vector<SubscriptPair> out;
  for (int wa : {0, 1, 2})
    for (int wc : {-3, -1, 0, 2, 5})
      for (int ra : {0, 1, 2})
        for (int rc : {-3, -1, 0, 2, 5}) out.push_back({wa, wc, ra, rc});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AffineSweep, DependenceSoundness,
                         ::testing::ValuesIn(subscript_pairs()));

// ---------------------------------------------------------------------------
// 2. Owner-expression consistency
// ---------------------------------------------------------------------------

struct OwnerCase {
  DistKind kind;
  int block;
  int64_t n;
  int procs;
};

class OwnerExprProperty : public ::testing::TestWithParam<OwnerCase> {};

TEST_P(OwnerExprProperty, SymbolicOwnerMatchesValueOwner) {
  const auto& c = GetParam();
  DimDistribution dd(DistSpec{c.kind, c.block}, 1, c.n, c.procs);
  for (int64_t i = 1; i <= c.n; ++i) {
    ExprPtr owner = dd.owner_expr(Expr::make_int(i));
    auto v = try_eval_int(*owner, {});
    ASSERT_TRUE(v.has_value()) << "owner expr not constant-foldable at " << i;
    EXPECT_EQ(*v, dd.owner(i)) << "index " << i;
  }
}

TEST_P(OwnerExprProperty, LocalBoundsExprsMatchLocalSets) {
  const auto& c = GetParam();
  if (c.kind == DistKind::BlockCyclic || c.kind == DistKind::None) return;
  DimDistribution dd(DistSpec{c.kind, c.block}, 1, c.n, c.procs);
  for (int p = 0; p < c.procs; ++p) {
    std::unordered_map<std::string, int64_t> env{{"my$p", p}};
    auto lb = try_eval_int(*dd.local_lb_expr(), env);
    ASSERT_TRUE(lb.has_value());
    Triplet local = dd.local_set(p);
    if (!local.empty()) {
      EXPECT_EQ(*lb, local.lb) << "p=" << p;
    }
    if (c.kind == DistKind::Block) {
      auto ub = try_eval_int(*dd.local_ub_expr(), env);
      ASSERT_TRUE(ub.has_value());
      if (!local.empty()) {
        EXPECT_EQ(*ub, local.ub) << "p=" << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OwnerExprProperty,
    ::testing::Values(OwnerCase{DistKind::Block, 0, 100, 4},
                      OwnerCase{DistKind::Block, 0, 97, 3},
                      OwnerCase{DistKind::Block, 0, 64, 8},
                      OwnerCase{DistKind::Cyclic, 0, 100, 4},
                      OwnerCase{DistKind::Cyclic, 0, 31, 5},
                      OwnerCase{DistKind::BlockCyclic, 4, 64, 4},
                      OwnerCase{DistKind::None, 0, 16, 4}));

// ---------------------------------------------------------------------------
// 3. Compiled shifts match the oracle across widths and machine sizes
// ---------------------------------------------------------------------------

struct ShiftCase {
  int shift;
  int procs;
};

class ShiftStencilProperty : public ::testing::TestWithParam<ShiftCase> {};

TEST_P(ShiftStencilProperty, MatchesOracle) {
  const auto& c = GetParam();
  const int n = 120;
  std::string src = "      program p\n      real x(120)\n      integer i\n"
                    "      distribute x(block)\n"
                    "      do i = 1, 120\n        x(i) = i*1.0\n      enddo\n"
                    "      do i = 1, " + std::to_string(n - c.shift) +
                    "\n        x(i) = 0.5*x(i+" + std::to_string(c.shift) +
                    ")\n      enddo\n      end\n";
  // Oracle.
  std::vector<double> x(static_cast<size_t>(n + 1));
  for (int i = 1; i <= n; ++i) x[static_cast<size_t>(i)] = i;
  for (int i = 1; i <= n - c.shift; ++i)
    x[static_cast<size_t>(i)] = 0.5 * x[static_cast<size_t>(i + c.shift)];

  CodegenOptions opt;
  opt.n_procs = c.procs;
  RunResult run = compile_and_run(src, opt);
  DecompSpec block;
  block.dists = {DistSpec{DistKind::Block, 0}};
  auto got = run.gather("x", block);
  for (int i = 1; i <= n; ++i)
    ASSERT_DOUBLE_EQ(got[static_cast<size_t>(i - 1)], x[static_cast<size_t>(i)])
        << "shift " << c.shift << " procs " << c.procs << " elem " << i;
}

std::vector<ShiftCase> shift_cases() {
  std::vector<ShiftCase> out;
  // Includes shifts wider than the block size (e.g. 17 > 120/8), which
  // must fall back to run-time resolution and still match the oracle.
  for (int s : {1, 2, 5, 11, 17})
    for (int p : {2, 3, 4, 8}) out.push_back({s, p});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShiftStencilProperty,
                         ::testing::ValuesIn(shift_cases()));

TEST(ShiftStencil, ShortAndEmptyBlocksAtLargeP) {
  // More processors than full blocks: edge processors own short or empty
  // blocks, shift sections clamp to the declared range, and the empty
  // send/recv pairs are skipped symmetrically. Values must still match.
  for (auto [n, procs] : std::vector<std::pair<int, int>>{
           {6, 8}, {5, 8}, {10, 7}, {3, 4}}) {
    std::string src = "      program p\n      real x(" + std::to_string(n) +
                      ")\n      integer i\n      distribute x(block)\n"
                      "      do i = 1, " + std::to_string(n) +
                      "\n        x(i) = i*1.0\n      enddo\n"
                      "      do i = 1, " + std::to_string(n - 1) +
                      "\n        x(i) = x(i+1)\n      enddo\n      end\n";
    CodegenOptions opt;
    opt.n_procs = procs;
    RunResult run = compile_and_run(src, opt);
    DecompSpec block;
    block.dists = {DistSpec{DistKind::Block, 0}};
    auto got = run.gather("x", block);
    for (int i = 1; i <= n; ++i) {
      double want = i < n ? i + 1 : n;
      ASSERT_DOUBLE_EQ(got[static_cast<size_t>(i - 1)], want)
          << "n=" << n << " procs=" << procs << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace fortd
