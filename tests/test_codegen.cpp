// Code-generation tests: distribution functions, owner-computes
// partitioning, communication classification and placement, golden
// structure for the paper's Figures 2, 10, and 12, run-time resolution
// shape (Fig. 3), storage management, and the dynamic-decomposition
// optimization pipeline (Fig. 16).
#include <gtest/gtest.h>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"

namespace fortd {
namespace {

// ---------------------------------------------------------------------------
// Distribution functions (property sweeps across kinds, sizes, processors)
// ---------------------------------------------------------------------------

struct DistCase {
  DistKind kind;
  int block;
  int64_t n;
  int procs;
};

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, OwnershipPartitionsIndexSpace) {
  const auto& c = GetParam();
  DimDistribution dd(DistSpec{c.kind, c.block}, 1, c.n, c.procs);
  if (c.kind == DistKind::None) {
    // Replicated: every processor holds the full range; owner is 0.
    for (int64_t i = 1; i <= c.n; ++i) EXPECT_EQ(dd.owner(i), 0);
    EXPECT_EQ(dd.local_set(2), Triplet(1, c.n));
    return;
  }
  // Every index has exactly one owner, and local sets tile the space.
  std::vector<int> owner_count(static_cast<size_t>(c.n) + 1, 0);
  for (int p = 0; p < c.procs; ++p) {
    RsdList owned = dd.owned_list(p);
    for (const Rsd& r : owned.sections())
      for (const auto& pt : r.enumerate()) {
        ASSERT_GE(pt[0], 1);
        ASSERT_LE(pt[0], c.n);
        ++owner_count[static_cast<size_t>(pt[0])];
        EXPECT_EQ(dd.owner(pt[0]), p);
      }
  }
  for (int64_t i = 1; i <= c.n; ++i)
    EXPECT_EQ(owner_count[static_cast<size_t>(i)], 1) << "index " << i;
}

TEST_P(DistributionProperty, LocalCountsSumToN) {
  const auto& c = GetParam();
  if (c.kind == DistKind::None) return;  // replicated: not a partition
  DimDistribution dd(DistSpec{c.kind, c.block}, 1, c.n, c.procs);
  int64_t total = 0;
  for (int p = 0; p < c.procs; ++p) total += dd.local_count(p);
  EXPECT_EQ(total, c.n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributionProperty,
    ::testing::Values(DistCase{DistKind::Block, 0, 100, 4},
                      DistCase{DistKind::Block, 0, 97, 4},
                      DistCase{DistKind::Block, 0, 100, 7},
                      DistCase{DistKind::Block, 0, 5, 8},
                      DistCase{DistKind::Cyclic, 0, 100, 4},
                      DistCase{DistKind::Cyclic, 0, 97, 3},
                      DistCase{DistKind::Cyclic, 0, 4, 8},
                      DistCase{DistKind::BlockCyclic, 4, 100, 4},
                      DistCase{DistKind::BlockCyclic, 3, 97, 5},
                      DistCase{DistKind::None, 0, 50, 4}));

TEST(Distribution, BlockLocalSetsMatchPaper) {
  // Fig. 1: X(100) BLOCK over 4 procs -> [1:25] per processor.
  DimDistribution dd(DistSpec{DistKind::Block, 0}, 1, 100, 4);
  EXPECT_EQ(dd.local_set(0), Triplet(1, 25));
  EXPECT_EQ(dd.local_set(3), Triplet(76, 100));
  EXPECT_EQ(dd.owner(26), 1);
  EXPECT_EQ(dd.block_size(), 25);
}

TEST(Distribution, CyclicLocalSetsAreStrided) {
  DimDistribution dd(DistSpec{DistKind::Cyclic, 0}, 1, 100, 4);
  EXPECT_EQ(dd.local_set(0), Triplet(1, 97, 4));
  EXPECT_EQ(dd.local_set(2), Triplet(3, 99, 4));
}

TEST(Distribution, RemapBytesCountsMovedElements) {
  DecompSpec block, cyclic;
  block.dists = {DistSpec{DistKind::Block, 0}};
  cyclic.dists = {DistSpec{DistKind::Cyclic, 0}};
  ArrayDistribution from("x", block, {{1, 100}}, 4);
  ArrayDistribution to("x", cyclic, {{1, 100}}, 4);
  // Block p owns [25p+1, 25p+25]; cyclic owner (i-1)%4. Within each block
  // 7 of 25 elements keep their owner (28 total), so 72 move.
  EXPECT_EQ(from.remap_bytes(to, 8), 72 * 8);
  EXPECT_EQ(from.remap_bytes(from, 8), 0);
}

// ---------------------------------------------------------------------------
// Owner-computes partitioning
// ---------------------------------------------------------------------------

TEST(Partition, OwnerComputesClassification) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      real x(100)
      integer i, s
      distribute x(block)
      do i = 1, 95
        x(i+2) = 0.0
        s = 1
      enddo
      x(7) = 1.0
      end
)");
  const Procedure& proc = *bp.ast.procedures[0];
  const Symbol* sym = bp.symtab("p").lookup("x");
  DecompSpec spec;
  spec.dists = {DistSpec{DistKind::Block, 0}};
  ArrayDistribution ad("x", spec, sym->dims, 4);
  SymbolicEnv env;

  // x(i+2): constrained on i with offset 2.  (body[0] is the DISTRIBUTE.)
  IterationSet s1 =
      owner_computes(*proc.body[1]->body[0]->lhs, ad, env);
  ASSERT_TRUE(s1.is_constrained());
  EXPECT_EQ(s1.constraint.var, "i");
  EXPECT_EQ(s1.constraint.offset, 2);

  // s = 1: universal.
  IterationSet s2 = owner_computes(*proc.body[1]->body[1]->lhs, std::nullopt, env);
  EXPECT_TRUE(s2.is_universal());

  // x(7): fixed owner guard.
  IterationSet s3 = owner_computes(*proc.body[2]->lhs, ad, env);
  ASSERT_TRUE(s3.is_constrained());
  EXPECT_FALSE(s3.constraint.uses_var());
  EXPECT_EQ(s3.constraint.fixed.konst, 7);
}

TEST(Partition, UnifyIterationSets) {
  OwnershipConstraint c;
  c.var = "i";
  c.array = "x";
  c.dim = 0;
  IterationSet a = IterationSet::constrained(c);
  IterationSet b = IterationSet::universal();
  auto u1 = unify_iteration_sets({a, a, b});
  ASSERT_TRUE(u1.has_value());
  EXPECT_TRUE(u1->is_constrained());
  OwnershipConstraint c2 = c;
  c2.offset = 3;
  auto u2 = unify_iteration_sets({a, IterationSet::constrained(c2)});
  EXPECT_FALSE(u2.has_value());
  auto u3 = unify_iteration_sets({IterationSet::runtime()});
  EXPECT_FALSE(u3.has_value());
}

// ---------------------------------------------------------------------------
// Symbolic sections and hoisting classification
// ---------------------------------------------------------------------------

AffineForm var_form(const std::string& v, int64_t c = 0) {
  AffineForm f;
  f.coeffs[v] = 1;
  f.konst = c;
  return f;
}

TEST(SymSection, SubstituteAndWiden) {
  SymTriplet t = SymTriplet::single(var_form("i", 5));
  auto w = widen_over_loop(t, "i", AffineForm{{}, 1}, AffineForm{{}, 95}, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->lb.konst, 6);
  EXPECT_EQ(w->ub.konst, 100);
  // Widening over a var not referenced is the identity.
  auto id = widen_over_loop(t, "j", AffineForm{{}, 1}, AffineForm{{}, 10}, 1);
  EXPECT_EQ(id->str(), t.str());
}

TEST(SymSection, StridedWidening) {
  SymTriplet t = SymTriplet::single(var_form("j"));
  auto w = widen_over_loop(t, "j", var_form("k", 1), AffineForm{{}, 64}, 4);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->step, 4);
}

TEST(Hoisting, AntiShiftAllowsVectorization) {
  // write x(i), read x(i+5): anti -> hoist legal.
  SymSection write = {SymTriplet::single(var_form("i"))};
  SymSection read = {SymTriplet::single(var_form("i", 5))};
  EXPECT_FALSE(blocks_hoist(write, read, {}, "i", true));
}

TEST(Hoisting, FlowShiftBlocks) {
  SymSection write = {SymTriplet::single(var_form("i"))};
  SymSection read = {SymTriplet::single(var_form("i", -1))};
  EXPECT_TRUE(blocks_hoist(write, read, {}, "i", true));
}

TEST(Hoisting, PinnedDimensionMakesLoopIndependent) {
  // write x(range, i), read x(range, i): second dim pins iterations.
  SymSection write = {SymTriplet{AffineForm{{}, 1}, AffineForm{{}, 95}, 1},
                      SymTriplet::single(var_form("i"))};
  SymSection read = {SymTriplet{AffineForm{{}, 6}, AffineForm{{}, 100}, 1},
                     SymTriplet::single(var_form("i"))};
  EXPECT_FALSE(blocks_hoist(write, read, {}, "i", false));
  EXPECT_TRUE(blocks_hoist(write, read, {}, "i", true));
}

TEST(Hoisting, RangeDisjointnessViaLoopBounds) {
  // dgefa: write column j with j in [k+1, n]; read column k: disjoint.
  LoopCtx ctx = {{"j", var_form("k", 1), var_form("n"), 1}};
  SymSection write = {SymTriplet{var_form("k", 1), var_form("n"), 1},
                      SymTriplet::single(var_form("j"))};
  SymSection read = {SymTriplet{var_form("k", 1), var_form("n"), 1},
                     SymTriplet::single(var_form("k"))};
  EXPECT_FALSE(blocks_hoist(write, read, ctx, "j", true));
}

TEST(Hoisting, LoopInvariantElementBlocks) {
  // write x(5), read x(5) across loop i: carried true dependence.
  SymSection write = {SymTriplet::single(AffineForm{{}, 5})};
  SymSection read = {SymTriplet::single(AffineForm{{}, 5})};
  EXPECT_TRUE(blocks_hoist(write, read, {}, "i", false));
}

// ---------------------------------------------------------------------------
// Golden structure: Figures 2, 10, 12, 3
// ---------------------------------------------------------------------------

const char* kFigure1 = R"(
      program p1
      real x(100)
      integer i
      distribute x(block)
      call f1(x)
      end
      subroutine f1(x)
      real x(100)
      integer i
      do i = 1, 95
        x(i) = f(x(i+5))
      enddo
      end
)";

struct Counts {
  int sends = 0, recvs = 0, bcasts = 0, dos = 0, ifs = 0;
};

Counts count_stmts(const Procedure& proc) {
  Counts c;
  walk_stmts(proc.body, [&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Send: ++c.sends; break;
      case StmtKind::Recv: ++c.recvs; break;
      case StmtKind::Broadcast: ++c.bcasts; break;
      case StmtKind::Do: ++c.dos; break;
      case StmtKind::If: ++c.ifs; break;
      default: break;
    }
  });
  return c;
}

/// Is `child` nested (at any depth) inside a DO loop of `proc`?
bool inside_loop(const Procedure& proc, StmtKind kind) {
  bool found = false;
  std::function<void(const std::vector<StmtPtr>&, bool)> scan =
      [&](const std::vector<StmtPtr>& stmts, bool in_loop) {
        for (const auto& s : stmts) {
          if (s->kind == kind && in_loop) found = true;
          scan(s->then_body, in_loop);
          scan(s->else_body, in_loop);
          scan(s->body, in_loop || s->kind == StmtKind::Do);
        }
      };
  scan(proc.body, false);
  return found;
}

TEST(Golden, Figure2CompiledStencil) {
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(kFigure1);
  const Procedure* f1 = r.spmd.ast.find("f1");
  ASSERT_NE(f1, nullptr);
  Counts c = count_stmts(*f1);
  // Fig. 2 shape: one guarded send + one guarded recv, both OUTSIDE the
  // loop (vectorized), and reduced loop bounds.
  EXPECT_EQ(c.sends, 1);
  EXPECT_EQ(c.recvs, 1);
  EXPECT_FALSE(inside_loop(*f1, StmtKind::Send));
  EXPECT_FALSE(inside_loop(*f1, StmtKind::Recv));
  EXPECT_GE(r.spmd.stats.loops_bounds_reduced, 1);
  // The reduced loop's upper bound holds the paper's min(...) form.
  std::string text = print_procedure(*f1);
  EXPECT_NE(text.find("min("), std::string::npos);
  EXPECT_NE(text.find("my$p"), std::string::npos);
  // Overlap storage: +5 upper overlap on 25 local elements (Fig. 2's
  // REAL X(30)), consistent with the interprocedural estimate.
  bool found = false;
  for (const auto& info : r.spmd.storage.at("f1"))
    if (info.array == "x") {
      found = true;
      EXPECT_EQ(info.local_extent, 25);
      EXPECT_EQ(info.overlap_hi, 5);
      EXPECT_EQ(info.est_hi, 5);
      EXPECT_FALSE(info.used_buffer);
    }
  EXPECT_TRUE(found);
}

TEST(Golden, Figure3RuntimeResolution) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.strategy = Strategy::RuntimeResolution;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(kFigure1);
  const Procedure* f1 = r.spmd.ast.find("f1");
  ASSERT_NE(f1, nullptr);
  // Fig. 3 shape: element send/recv guarded by owner tests INSIDE the loop.
  EXPECT_TRUE(inside_loop(*f1, StmtKind::Send));
  EXPECT_TRUE(inside_loop(*f1, StmtKind::Recv));
  std::string text = print_procedure(*f1);
  EXPECT_NE(text.find("owner$x"), std::string::npos);
  EXPECT_GE(r.spmd.stats.runtime_resolved_stmts, 1);
}

const char* kFigure4 = R"(
      program p1
      real x(100,100)
      real y(100,100)
      integer i, j
      align y(i,j) with x(j,i)
      distribute x(block,:)
      do i = 1, 100
        call f1(x, i)
      enddo
      do j = 1, 100
        call f1(y, j)
      enddo
      end
      subroutine f1(z, i)
      real z(100,100)
      integer i, k
      do k = 1, 95
        z(k,i) = f(z(k+5,i))
      enddo
      end
)";

TEST(Golden, Figure10InterproceduralOutput) {
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(kFigure4);

  // Cloning produced two versions of f1.
  const Procedure* main = r.spmd.ast.find("p1");
  ASSERT_NE(main, nullptr);
  EXPECT_EQ(r.spmd.stats.clones_created, 1);

  // The shift communication for the row version is vectorized into p1,
  // outside both call loops: exactly one send/recv pair in main.
  Counts cm = count_stmts(*main);
  EXPECT_EQ(cm.sends, 1);
  EXPECT_EQ(cm.recvs, 1);
  EXPECT_FALSE(inside_loop(*main, StmtKind::Send));

  // Neither clone contains communication (delayed to the caller).
  for (const auto& p : r.spmd.ast.procedures) {
    if (p->name.rfind("f1", 0) != 0) continue;
    Counts c = count_stmts(*p);
    EXPECT_EQ(c.sends + c.recvs, 0) << p->name;
  }

  // One of the two caller loops had its bounds reduced (the j loop for
  // the column version); message vectorization crossed the boundary.
  EXPECT_GE(r.spmd.stats.delayed_comms_exported, 1);
  EXPECT_GE(r.spmd.stats.delayed_comms_absorbed, 1);
  EXPECT_GE(r.spmd.stats.delayed_iter_sets_exported, 1);
}

TEST(Golden, Figure12ImmediateInstantiation) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.strategy = Strategy::Intraprocedural;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(kFigure4);

  // Fig. 12: messages stay inside the callee (per-invocation), and no
  // pending communication crosses to the caller.
  EXPECT_EQ(r.spmd.stats.delayed_comms_exported, 0);
  const Procedure* main = r.spmd.ast.find("p1");
  Counts cm = count_stmts(*main);
  EXPECT_EQ(cm.sends + cm.recvs, 0);
  bool callee_has_comm = false;
  for (const auto& p : r.spmd.ast.procedures)
    if (p->name.rfind("f1", 0) == 0 && count_stmts(*p).sends > 0)
      callee_has_comm = true;
  EXPECT_TRUE(callee_has_comm);
}

TEST(Golden, ImmediateVsDelayedMessageCounts) {
  // The quantitative claim of §5.5: delayed instantiation sends ONE
  // vectorized message per neighbor pair where immediate instantiation
  // sends one per invocation (100x).
  auto run_with = [&](Strategy strategy) {
    CodegenOptions opt;
    opt.n_procs = 4;
    opt.strategy = strategy;
    Compiler compiler(opt);
    CompileResult r = compiler.compile_source(kFigure4);
    return simulate(r.spmd);
  };
  RunResult inter = run_with(Strategy::Interprocedural);
  RunResult intra = run_with(Strategy::Intraprocedural);
  EXPECT_EQ(inter.messages, 3);       // one 5x100 section per neighbor pair
  EXPECT_EQ(intra.messages, 300);     // 100 invocations x 3 pairs
  EXPECT_EQ(inter.bytes, intra.bytes);  // same data volume
  EXPECT_LT(inter.sim_time_us, intra.sim_time_us);
}

// ---------------------------------------------------------------------------
// Dynamic data decomposition (Fig. 16)
// ---------------------------------------------------------------------------

const char* kFigure15 = R"(
      program p1
      real x(100)
      integer k, i
      distribute x(block)
      do k = 1, 10
        call f1(x)
        call f1(x)
      enddo
      call f2(x)
      end
      subroutine f1(x)
      real x(100)
      integer i
      distribute x(cyclic)
      do i = 1, 100
        x(i) = x(i) + 1.0
      enddo
      end
      subroutine f2(x)
      real x(100)
      integer i
      do i = 1, 100
        x(i) = 2.0 * i
      enddo
      end
)";

int static_remaps(const SpmdProgram& spmd, bool include_marks) {
  int n = 0;
  for (const auto& p : spmd.ast.procedures)
    walk_stmts(p->body, [&](const Stmt& s) {
      if (s.kind == StmtKind::Remap) ++n;
      if (include_marks && s.kind == StmtKind::MarkDist) ++n;
    });
  return n;
}

TEST(DynDecomp, Figure16Pipeline) {
  auto compile_with = [&](DynDecompOpt level) {
    CodegenOptions opt;
    opt.n_procs = 4;
    opt.dyn_decomp = level;
    Compiler compiler(opt);
    return compiler.compile_source(kFigure15);
  };
  // 16a: before/after remaps at both calls.
  CompileResult a = compile_with(DynDecompOpt::None);
  EXPECT_EQ(static_remaps(a.spmd, false), 4);
  // 16b: dead elimination + coalescing leave one pair in the loop.
  CompileResult b = compile_with(DynDecompOpt::Live);
  EXPECT_EQ(static_remaps(b.spmd, false), 2);
  EXPECT_GE(b.spmd.stats.remaps_eliminated_dead, 1);
  EXPECT_GE(b.spmd.stats.remaps_coalesced, 1);
  // 16c: both hoisted out of the loop (still 2 static, but executed once).
  CompileResult c = compile_with(DynDecompOpt::LiveInvariant);
  EXPECT_GE(c.spmd.stats.remaps_hoisted, 2);
  RunResult rc = simulate(c.spmd);
  EXPECT_EQ(rc.remaps_executed, 2);
  // 16d: the restore remap becomes a no-copy relabel.
  CompileResult d = compile_with(DynDecompOpt::Full);
  EXPECT_EQ(d.spmd.stats.remaps_marked_in_place, 1);
  RunResult rd = simulate(d.spmd);
  EXPECT_EQ(rd.remaps_executed, 1);
}

TEST(DynDecomp, RemapCountScalesWithIterationsWhenUnoptimized) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.dyn_decomp = DynDecompOpt::None;
  Compiler compiler(opt);
  RunResult run = simulate(compiler.compile_source(kFigure15).spmd);
  EXPECT_EQ(run.remaps_executed, 40);  // 4 per iteration x 10
}

// ---------------------------------------------------------------------------
// Storage / parameterized overlaps (Fig. 13/14)
// ---------------------------------------------------------------------------

TEST(Storage, ParameterizedOverlapsFlagFormalArrays) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.parameterized_overlaps = true;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(kFigure1);
  bool parameterized = false;
  for (const auto& info : r.spmd.storage.at("f1"))
    if (info.array == "x" && info.parameterized) parameterized = true;
  EXPECT_TRUE(parameterized);
}

TEST(Storage, ReplicatedArraysHoldWholeCopy) {
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(R"(
      program p
      real x(100)
      real w(50)
      integer i
      distribute x(block)
      do i = 1, 100
        x(i) = 1.0
      enddo
      end
)");
  for (const auto& info : r.spmd.storage.at("p")) {
    if (info.array == "w") {
      EXPECT_EQ(info.dist_dim, -1);
      EXPECT_EQ(info.local_words(), 50);
    }
    if (info.array == "x") {
      EXPECT_EQ(info.local_words(), 25);
    }
  }
}

// ---------------------------------------------------------------------------
// Cloning fallback integration
// ---------------------------------------------------------------------------

TEST(RuntimeFallback, ThresholdedProgramStillRunsCorrectly) {
  IpaOptions ipa;
  ipa.max_procedures = 2;  // force run-time resolution for the callee
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt, ipa);
  CompileResult r = compiler.compile_source(kFigure4);
  EXPECT_FALSE(r.ipa.runtime_fallback.empty());
  RunResult run = simulate(r.spmd);
  EXPECT_GT(run.messages, 3);  // element traffic instead of vectorized
}

}  // namespace
}  // namespace fortd
