// Extension features and robustness: procedure inlining (§4's alternative
// transformation), the pretty-printer, and simulator failure injection.
#include <gtest/gtest.h>

#include <cmath>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "ipa/inlining.hpp"

namespace fortd {
namespace {

const char* kCallProgram = R"(
      program p
      real x(64)
      integer i
      distribute x(block)
      do i = 1, 64
        x(i) = i*1.0
      enddo
      call work(x, 3)
      call work(x, 5)
      end
      subroutine work(a, off)
      real a(64)
      integer off, i
      real t
      t = off * 1.0
      do i = 1, 64 - off
        a(i) = a(i+off) + t
      enddo
      end
)";

TEST(Inlining, InlineAllRemovesCalls) {
  BoundProgram bp = parse_and_bind(kCallProgram);
  InlineStats stats = inline_all(bp);
  EXPECT_EQ(stats.calls_inlined, 2);
  ASSERT_EQ(bp.ast.procedures.size(), 1u);
  int calls = 0;
  walk_stmts(bp.ast.procedures[0]->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Call) ++calls;
  });
  EXPECT_EQ(calls, 0);
}

TEST(Inlining, LocalsAreRenamedApart) {
  BoundProgram bp = parse_and_bind(kCallProgram);
  inline_all(bp);
  // The two inlined copies of `t` must have distinct names, declared in
  // the caller.
  const Procedure& main = *bp.ast.procedures[0];
  int t_decls = 0;
  for (const auto& d : main.decls)
    if (d.name.find("$t") != std::string::npos) ++t_decls;
  EXPECT_EQ(t_decls, 2);
}

TEST(Inlining, SemanticsPreserved) {
  // The inlined program must compute the same values as the original.
  auto run_src = [](BoundProgram bp) {
    IpaContext ctx = run_ipa(bp);
    CodegenOptions opt;
    opt.n_procs = 4;
    SpmdProgram spmd = generate_spmd(bp, ctx, opt);
    DecompSpec block;
    block.dists = {DistSpec{DistKind::Block, 0}};
    return simulate(spmd).gather("x", block);
  };
  BoundProgram original = parse_and_bind(kCallProgram);
  BoundProgram inlined = parse_and_bind(kCallProgram);
  inline_all(inlined);
  auto a = run_src(std::move(original));
  auto b = run_src(std::move(inlined));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], 1e-12) << "element " << i;
}

TEST(Inlining, ExpressionActualsCopyIn) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      integer n
      n = 1
      call f(n + 10)
      end
      subroutine f(m)
      integer m
      m = m + 1
      end
)");
  InlineStats stats = inline_all(bp);
  EXPECT_EQ(stats.calls_inlined, 1);
  // A copy-in temp assignment must precede the body.
  const Procedure& main = *bp.ast.procedures[0];
  bool has_temp = false;
  walk_stmts(main.body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Assign && s.lhs->kind == ExprKind::VarRef &&
        s.lhs->name.rfind("inl$", 0) == 0)
      has_temp = true;
  });
  EXPECT_TRUE(has_temp);
}

TEST(Inlining, EarlyReturnRefused) {
  BoundProgram bp = parse_and_bind(R"(
      program p
      integer n
      call f(n)
      end
      subroutine f(m)
      integer m
      if (m .gt. 0) then
        return
      endif
      m = 1
      end
)");
  const Stmt* call = bp.ast.procedures[0]->body[0].get();
  EXPECT_FALSE(inline_call(bp, "p", call));
}

// ---------------------------------------------------------------------------

TEST(Printer, RoundTripThroughParser) {
  // Source-level programs must re-parse to an equivalent AST after
  // unparse (statement counts and hashes agree).
  BoundProgram bp = parse_and_bind(kCallProgram);
  std::string text = print_program(bp.ast);
  BoundProgram bp2 = parse_and_bind(text);
  ASSERT_EQ(bp2.ast.procedures.size(), bp.ast.procedures.size());
  for (size_t i = 0; i < bp.ast.procedures.size(); ++i) {
    int n1 = 0, n2 = 0;
    walk_stmts(bp.ast.procedures[i]->body, [&](const Stmt&) { ++n1; });
    walk_stmts(bp2.ast.procedures[i]->body, [&](const Stmt&) { ++n2; });
    EXPECT_EQ(n1, n2) << bp.ast.procedures[i]->name;
  }
}

TEST(Printer, PrecedenceParenthesization) {
  auto e = Expr::make_binary(
      BinOp::Mul,
      Expr::make_binary(BinOp::Add, Expr::make_var("a"), Expr::make_var("b")),
      Expr::make_var("c"));
  EXPECT_EQ(print_expr(*e), "(a + b)*c");
  auto f = Expr::make_binary(
      BinOp::Sub, Expr::make_var("a"),
      Expr::make_binary(BinOp::Sub, Expr::make_var("b"), Expr::make_var("c")));
  EXPECT_EQ(print_expr(*f), "a - (b - c)");
}

TEST(Printer, SpmdStatements) {
  StmtPtr send = Stmt::make_send(
      "x", [] {
        std::vector<SectionExpr> sec;
        SectionExpr t;
        t.lb = Expr::make_int(1);
        t.ub = Expr::make_int(5);
        sec.push_back(std::move(t));
        return sec;
      }(),
      Expr::make_binary(BinOp::Sub, Expr::make_var("my$p"), Expr::make_int(1)));
  EXPECT_EQ(print_stmt(*send), "send x(1:5) to my$p - 1\n");
}

// ---------------------------------------------------------------------------

TEST(FailureInjection, MismatchedSectionSizesAreDetected) {
  // Hand-build an SPMD program whose send and recv sections disagree: the
  // simulator must fail loudly, not corrupt data.
  SpmdProgram spmd;
  spmd.options.n_procs = 2;
  auto proc = std::make_unique<Procedure>();
  proc->name = "p";
  proc->is_program = true;
  VarDecl x;
  x.name = "x";
  x.dims.push_back({nullptr, Expr::make_int(10)});
  proc->decls.push_back(std::move(x));

  auto section = [](int lo, int hi) {
    std::vector<SectionExpr> sec;
    SectionExpr t;
    t.lb = Expr::make_int(lo);
    t.ub = Expr::make_int(hi);
    sec.push_back(std::move(t));
    return sec;
  };
  using namespace fortd;
  // p0 sends 3 elements to p1; p1 expects 5.
  std::vector<StmtPtr> send_body, recv_body;
  send_body.push_back(Stmt::make_send("x", section(1, 3), Expr::make_int(1)));
  recv_body.push_back(Stmt::make_recv("x", section(1, 5), Expr::make_int(0)));
  proc->body.push_back(Stmt::make_if(
      Expr::make_binary(BinOp::Eq, Expr::make_var("my$p"), Expr::make_int(0)),
      std::move(send_body), std::move(recv_body)));
  spmd.ast.procedures.push_back(std::move(proc));
  EXPECT_THROW(simulate(spmd), std::runtime_error);
}

TEST(FailureInjection, MissingSenderDeadlocks) {
  SpmdProgram spmd;
  spmd.options.n_procs = 2;
  auto proc = std::make_unique<Procedure>();
  proc->name = "p";
  proc->is_program = true;
  VarDecl x;
  x.name = "x";
  x.dims.push_back({nullptr, Expr::make_int(4)});
  proc->decls.push_back(std::move(x));
  std::vector<SectionExpr> sec;
  SectionExpr t;
  t.lb = Expr::make_int(1);
  t.ub = Expr::make_int(1);
  sec.push_back(std::move(t));
  std::vector<StmtPtr> recv_body;
  recv_body.push_back(Stmt::make_recv("x", std::move(sec), Expr::make_int(0)));
  proc->body.push_back(Stmt::make_if(
      Expr::make_binary(BinOp::Eq, Expr::make_var("my$p"), Expr::make_int(1)),
      std::move(recv_body)));
  spmd.ast.procedures.push_back(std::move(proc));
  // Use a short network timeout via a custom machine? The default timeout
  // is 30s — too slow for a unit test, so drive the Network directly.
  Network net(2, 0.05);
  EXPECT_THROW(net.recv(1, 0), SimDeadlock);
}

TEST(FailureInjection, UnknownIntrinsicThrows) {
  EXPECT_THROW(compile_and_run(R"(
      program p
      real x(4)
      x(1) = frobnicate(2.0)
      end
)"),
               std::runtime_error);
}

TEST(FailureInjection, DivisionByZeroThrows) {
  EXPECT_THROW(compile_and_run(R"(
      program p
      integer a, b
      b = 0
      a = 7 / b
      end
)"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Reduction recognition (collective communication)
// ---------------------------------------------------------------------------

TEST(Reductions, SumOverDistributedDimension) {
  const char* src = R"(
      program p
      real x(100)
      real total
      integer i
      distribute x(block)
      do i = 1, 100
        x(i) = i*1.0
      enddo
      total = 5.0
      do i = 1, 100
        total = total + x(i)
      enddo
      end
)";
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(src);
  // The generated code must contain an AllReduce and a reduced loop, and
  // no run-time resolution.
  int allreduces = 0;
  walk_stmts(r.spmd.ast.procedures[0]->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::AllReduce) ++allreduces;
  });
  EXPECT_EQ(allreduces, 1);
  EXPECT_EQ(r.spmd.stats.runtime_resolved_stmts, 0);
  RunResult run = simulate(r.spmd);
  // total = 5 + sum(1..100) = 5055 on every processor.
  EXPECT_DOUBLE_EQ(run.gather_scalar("total"), 5055.0);
}

TEST(Reductions, CyclicDistributionAndVaryingProcs) {
  for (int procs : {1, 2, 4, 8}) {
    std::string src = R"(
      program p
      real x(60)
      real total
      integer i
      distribute x(cyclic)
      do i = 1, 60
        x(i) = 2.0*i
      enddo
      total = 0.0
      do i = 1, 60
        total = total + x(i)
      enddo
      end
)";
    CodegenOptions opt;
    opt.n_procs = procs;
    RunResult run = compile_and_run(src, opt);
    EXPECT_DOUBLE_EQ(run.gather_scalar("total"), 60.0 * 61.0)
        << "procs " << procs;
  }
}

TEST(Reductions, MixedLoopFallsBackSafely) {
  // The loop carries both a reduction and an unrelated scalar update:
  // the loop cannot be reduced, and results must still be correct.
  const char* src = R"(
      program p
      real x(40)
      real total, other
      integer i
      distribute x(block)
      do i = 1, 40
        x(i) = 1.0
      enddo
      total = 0.0
      other = 0.0
      do i = 1, 40
        total = total + x(i)
        other = other + 1.0
      enddo
      end
)";
  CodegenOptions opt;
  opt.n_procs = 4;
  RunResult run = compile_and_run(src, opt);
  EXPECT_DOUBLE_EQ(run.gather_scalar("total"), 40.0);
  EXPECT_DOUBLE_EQ(run.gather_scalar("other"), 40.0);
}

TEST(Reductions, NonReductionScalarOverDistributedDimFallsBack) {
  // `last = x(i)` is not an accumulation: run-time resolution must keep
  // it correct (the final value is x(40) on every processor).
  const char* src = R"(
      program p
      real x(40)
      real last
      integer i
      distribute x(block)
      do i = 1, 40
        x(i) = i*3.0
      enddo
      do i = 1, 40
        last = x(i)
      enddo
      end
)";
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(src);
  EXPECT_GE(r.spmd.stats.runtime_resolved_stmts, 1);
  RunResult run = simulate(r.spmd);
  EXPECT_DOUBLE_EQ(run.gather_scalar("last"), 120.0);
}

}  // namespace
}  // namespace fortd
