// The sharded cache fleet, wavefront prefetch, and pipelined client:
//   * ShardMap determinism (endpoint-order independence, full coverage,
//     minimal remapping when an endpoint leaves the list),
//   * `-cache-remote host:p1,host:p2,host:p3` end to end: a cold client
//     against a warm 3-daemon fleet generates nothing, with artifacts
//     spread across every shard,
//   * wavefront BATCH_GET prefetch counters (issued/hit, and the
//     -cache-no-prefetch off switch),
//   * partial degradation: killing one of three shards mid-test degrades
//     only its key range — compile succeeds, output byte-identical, the
//     two healthy shards keep serving,
//   * protocol v2 pipelining: one shared RemoteStore multiplexed by 4
//     concurrent workers (run under FORTD_SANITIZE=thread), and a
//     stalled reply that times out without costing the connection.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "../bench/programs.hpp"
#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "fleet_harness.hpp"
#include "remote/shard_map.hpp"

namespace fortd {
namespace {

using fleet_test::TestFleet;
using fleet_test::client_options;
using fleet_test::fresh_cache_dir;
using fleet_test::make_impatient;

// ---------------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------------

TEST(ShardMap, RoutingIsIndependentOfEndpointOrder) {
  const std::vector<std::string> a = {"h1:1", "h2:2", "h3:3"};
  const std::vector<std::string> b = {"h3:3", "h1:1", "h2:2"};
  remote::ShardMap ma(a), mb(b);
  for (uint64_t d = 0; d < 500; ++d) {
    for (const char* kind : {"proc", "summary"}) {
      EXPECT_EQ(a[ma.shard_for(kind, d)], b[mb.shard_for(kind, d)])
          << "key (" << kind << ", " << d
          << ") must live on the same endpoint whatever the list order";
    }
  }
}

TEST(ShardMap, SpreadsKeysAcrossEveryShard) {
  remote::ShardMap map({"h1:1", "h2:2", "h3:3"});
  std::vector<int> hits(3, 0);
  for (uint64_t d = 0; d < 600; ++d) ++hits[map.shard_for("proc", d)];
  for (int h : hits) EXPECT_GT(h, 600 / 10) << "grossly unbalanced routing";
}

TEST(ShardMap, RemovingAnEndpointOnlyRemapsItsKeys) {
  // The consistent-hashing property rendezvous hashing guarantees: keys
  // that did not live on the removed endpoint stay where they were.
  const std::vector<std::string> full = {"h1:1", "h2:2", "h3:3"};
  const std::vector<std::string> less = {"h1:1", "h3:3"};
  remote::ShardMap mf(full), ml(less);
  for (uint64_t d = 0; d < 500; ++d) {
    const std::string& before = full[mf.shard_for("proc", d)];
    if (before == "h2:2") continue;  // its keys must move somewhere
    EXPECT_EQ(less[ml.shard_for("proc", d)], before)
        << "key " << d << " lived on a surviving endpoint and must not move";
  }
}

TEST(ShardMap, ReplicaIsWhereTheKeyMovesWhenThePrimaryDies) {
  // The replica (second-highest rendezvous score) must be exactly the
  // shard that inherits the key once the primary leaves the list — so a
  // failed-over GET and a post-outage rerouted GET agree on location.
  const std::vector<std::string> full = {"h1:1", "h2:2", "h3:3"};
  remote::ShardMap map(full);
  for (uint64_t d = 0; d < 500; ++d) {
    const auto [primary, replica] = map.replicas_for("proc", d);
    EXPECT_EQ(primary, map.shard_for("proc", d));
    EXPECT_NE(primary, replica);
    std::vector<std::string> without = full;
    without.erase(without.begin() + static_cast<long>(primary));
    remote::ShardMap survivor(without);
    EXPECT_EQ(without[survivor.shard_for("proc", d)], full[replica])
        << "key " << d << " must fail over to its future owner";
  }
}

TEST(ShardMap, SingleEndpointReplicatesToItself) {
  remote::ShardMap map({"h1:1"});
  const auto [primary, replica] = map.replicas_for("proc", 7);
  EXPECT_EQ(primary, 0u);
  EXPECT_EQ(replica, 0u);
}

TEST(ShardMap, EndpointListParsing) {
  using remote::split_endpoint_list;
  EXPECT_EQ(split_endpoint_list("a:1"), (std::vector<std::string>{"a:1"}));
  EXPECT_EQ(split_endpoint_list("a:1,b:2, c:3 "),
            (std::vector<std::string>{"a:1", "b:2", "c:3"}));
  EXPECT_EQ(split_endpoint_list(",a:1,,"),
            (std::vector<std::string>{"a:1"}));
  EXPECT_TRUE(split_endpoint_list("").empty());

  std::string host;
  int port = 0;
  EXPECT_TRUE(remote::parse_endpoint("example:4815", &host, &port));
  EXPECT_EQ(host, "example");
  EXPECT_EQ(port, 4815);
  EXPECT_TRUE(remote::parse_endpoint("4815", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_FALSE(remote::parse_endpoint("example:", &host, &port));
  EXPECT_FALSE(remote::parse_endpoint("example:notaport", &host, &port));
  EXPECT_FALSE(remote::parse_endpoint("example:99999", &host, &port));
}

// ---------------------------------------------------------------------------
// Fleet end to end
// ---------------------------------------------------------------------------

CompileResult compile_fleet(const std::string& src, const std::string& dir,
                            const std::string& endpoints, int jobs,
                            std::string* spmd = nullptr,
                            bool prefetch = true) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.jobs = jobs;
  CacheOptions copt;
  copt.dir = dir;
  copt.remote_endpoint = endpoints;
  copt.prefetch = prefetch;
  Compiler compiler(opt, {}, {}, copt);
  CompileResult r = compiler.compile_source(src);
  EXPECT_FALSE(compiler.remote_store()->any_degraded())
      << compiler.remote_store()->degraded_reason();
  if (spmd) *spmd = print_spmd(r.spmd);
  return r;
}

TEST(ShardedFleet, ColdClientAgainstWarmFleetGeneratesNothing) {
  TestFleet fleet("fleet3", 3);
  const std::string src = bench::fan_out(32, 64);

  std::string warm_spmd;
  CompileResult warm = compile_fleet(src, fresh_cache_dir("fleet3_warm"),
                                     fleet.endpoints(), 1, &warm_spmd);
  EXPECT_EQ(warm.stats.generated, 33);
  EXPECT_EQ(warm.stats.remote_shards, 3);
  EXPECT_GT(warm.stats.remote_puts, 0);

  // Consistent hashing must have spread the artifacts: with 33 proc and
  // 33 summary blobs, every one of three daemons should hold some.
  for (size_t s = 0; s < fleet.size(); ++s)
    EXPECT_GT(fleet.shard(s).store.size(), 0u)
        << "shard " << s << " received no artifacts";

  std::string cold_spmd;
  CompileResult cold = compile_fleet(src, fresh_cache_dir("fleet3_cold"),
                                     fleet.endpoints(), 1, &cold_spmd);
  EXPECT_EQ(cold.stats.generated, 0);
  EXPECT_EQ(cold.stats.summaries_computed, 0);
  EXPECT_GT(cold.stats.remote_hits, 0);
  EXPECT_EQ(cold_spmd, warm_spmd) << "fleet hits must be byte-identical";
}

TEST(ShardedFleet, WavefrontPrefetchLandsNextLevelAhead) {
  TestFleet fleet("prefetch", 2);
  // A deep call chain maximizes the number of levels whose digests are
  // prefetchable one level early.
  const std::string src = bench::call_chain(8, 48);
  compile_fleet(src, fresh_cache_dir("prefetch_warm"), fleet.endpoints(), 1);

  CompileResult cold = compile_fleet(src, fresh_cache_dir("prefetch_cold"),
                                     fleet.endpoints(), 2);
  EXPECT_EQ(cold.stats.generated, 0);
  EXPECT_GT(cold.stats.prefetch_issued, 0)
      << "a cold compile against a warm fleet must prefetch";
  EXPECT_GT(cold.stats.prefetch_hits, 0);
  EXPECT_LE(cold.stats.prefetch_hits, cold.stats.prefetch_issued);
  // Everything the prefetcher landed was consumed as a remote hit.
  EXPECT_GE(cold.stats.remote_hits, cold.stats.prefetch_hits);

  CompileResult off =
      compile_fleet(src, fresh_cache_dir("prefetch_off"), fleet.endpoints(),
                    2, nullptr, /*prefetch=*/false);
  EXPECT_EQ(off.stats.generated, 0);
  EXPECT_EQ(off.stats.prefetch_issued, 0) << "-cache-no-prefetch must stick";
  EXPECT_EQ(off.stats.prefetch_hits, 0);
}

TEST(ShardedFleet, KillingOneShardDegradesOnlyItsKeyRange) {
  TestFleet fleet("kill", 3);
  const std::string src = bench::fan_out(24, 64);

  std::string warm_spmd;
  compile_fleet(src, fresh_cache_dir("kill_warm"), fleet.endpoints(), 1,
                &warm_spmd);

  // One daemon dies. A cold client must still compile with *nothing*
  // regenerated: the warm compile write-through-replicated every blob to
  // its top-2 rendezvous shards, so the dead shard's keys fail over to
  // their replicas — and the output stays byte-identical.
  fleet.kill(1);

  CodegenOptions opt;
  opt.n_procs = 4;
  CacheOptions copt;
  copt.dir = fresh_cache_dir("kill_cold");
  copt.remote_endpoint = fleet.endpoints();
  Compiler compiler(opt, {}, {}, copt);
  make_impatient(compiler.remote_store());

  CompileResult r = compiler.compile_source(src);
  EXPECT_EQ(print_spmd(r.spmd), warm_spmd)
      << "partial fleet loss must not change the generated program";
  EXPECT_GT(r.stats.remote_hits, 0) << "healthy shards must keep serving";
  EXPECT_EQ(r.stats.generated, 0)
      << "every dead-shard key must fail over to its replica";
  const auto counters = compiler.remote_store()->counters();
  EXPECT_GT(counters.failovers, 0u)
      << "dead-shard GETs must be retried on the replica";
  EXPECT_GT(counters.replica_hits, 0u)
      << "the replicas must actually serve the failed-over GETs";
  EXPECT_LE(counters.replica_hits, counters.failovers);

  EXPECT_FALSE(compiler.remote_store()->degraded())
      << "one dead shard of three must not declare the tier gone";
  EXPECT_TRUE(compiler.remote_store()->any_degraded());
  EXPECT_EQ(r.stats.remote_shards, 3);
  EXPECT_EQ(r.stats.remote_shards_degraded, 1);
  const auto down = compiler.remote_store()->shard_degraded();
  EXPECT_FALSE(down[0]);
  EXPECT_TRUE(down[1]);
  EXPECT_FALSE(down[2]);
  EXPECT_NE(compiler.remote_store()->degraded_reason().find(
                fleet.shard(1).endpoint()),
            std::string::npos)
      << "the diagnostic must name the dead endpoint: "
      << compiler.remote_store()->degraded_reason();

  const std::string json = compiler.cache_stats_json();
  EXPECT_NE(json.find("\"shards\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"replica_hits\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"failovers\":"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"failovers\":0"), std::string::npos)
      << "the failover counter must reflect the dead shard: " << json;
}

TEST(ShardedFleet, WholeFleetDownStillCompilesLocally) {
  // All three endpoints dead: the tier as a whole degrades, the compile
  // still succeeds on local tiers — the PR-5 contract, fleet edition.
  TestFleet fleet("alldead", 3);
  const std::string endpoints = fleet.endpoints();
  for (size_t s = 0; s < fleet.size(); ++s) fleet.kill(s);

  CodegenOptions opt;
  opt.n_procs = 4;
  CacheOptions copt;
  copt.dir = fresh_cache_dir("alldead_client");
  copt.remote_endpoint = endpoints;
  Compiler compiler(opt, {}, {}, copt);
  make_impatient(compiler.remote_store());

  // 25 procedures = 50 keys: rendezvous routing (which depends on the
  // ephemeral port numbers) leaves every shard owning some keys, so
  // every breaker sees traffic and trips. A tiny program could leave a
  // shard with no keys at all — untouched breakers never open.
  CompileResult r = compiler.compile_source(bench::fan_out(24, 64));
  EXPECT_EQ(r.stats.generated, 25) << "local compile must complete";
  EXPECT_TRUE(r.stats.remote_degraded);
  EXPECT_EQ(r.stats.remote_shards_degraded, 3);
  EXPECT_TRUE(compiler.remote_store()->degraded());
}

// ---------------------------------------------------------------------------
// Pipelined client (protocol v2)
// ---------------------------------------------------------------------------

TEST(PipelinedClient, FourWorkersMultiplexOneConnection) {
  // One *shared* RemoteStore hammered by 4 threads: requests interleave
  // on a single connection and replies land by id. Run under
  // FORTD_SANITIZE=thread to vet the multiplexer's locking.
  fleet_test::TestDaemon td("pipeline");
  remote::RemoteStore client(client_options(td.daemon.port()));
  constexpr int kWorkers = 4;
  constexpr int kOps = 32;
  constexpr uint64_t kFormat = 11;

  const auto payload_for = [](uint64_t digest) {
    std::vector<uint8_t> p(64 + digest % 256);
    for (size_t i = 0; i < p.size(); ++i)
      p[i] = static_cast<uint8_t>(digest * 131 + i * 17);
    return p;
  };
  for (uint64_t d = 1; d <= 8; ++d)
    ASSERT_TRUE(client.put_blob("proc", d,
                                make_blob_envelope(kFormat, d, payload_for(d))));

  std::vector<std::thread> workers;
  std::vector<int> failures(kWorkers, 0);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kOps; ++i) {
        const uint64_t mine = 100 + static_cast<uint64_t>(w) * 1000 +
                              static_cast<uint64_t>(i);
        const auto blob = make_blob_envelope(kFormat, mine, payload_for(mine));
        if (!client.put_blob("summary", mine, blob)) ++failures[w];
        auto got = client.get_blob("summary", kFormat, mine);
        if (!got || *got != blob) ++failures[w];
        const uint64_t shared = 1 + static_cast<uint64_t>(i) % 8;
        auto s = client.get_blob("proc", kFormat, shared);
        if (!s ||
            *s != make_blob_envelope(kFormat, shared, payload_for(shared)))
          ++failures[w];
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kWorkers; ++w) EXPECT_EQ(failures[w], 0) << "worker " << w;
  EXPECT_FALSE(client.degraded()) << client.degraded_reason();
  EXPECT_EQ(client.counters().reconnects, 1u)
      << "4 workers must share one pipelined connection";
  td.daemon.stop();
}

TEST(PipelinedClient, TimedOutRequestDoesNotCostTheConnection) {
  // The daemon swallows replies for digest 42. Under the serial protocol
  // a timeout forced a reconnect (the stream was unsynchronized); with
  // tagged ids the late/never reply is simply discarded and the same
  // connection keeps serving.
  remote::DaemonOptions dopt;
  dopt.stall_reply = [](const remote::WireMessage& m) {
    return m.type == remote::MsgType::Get && m.digest == 42;
  };
  fleet_test::TestDaemon td("stall42", dopt);

  remote::RemoteOptions opt = client_options(td.daemon.port());
  opt.timeout_ms = 200;
  opt.max_retries = 0;
  remote::RemoteStore client(opt);

  std::vector<uint8_t> blob = make_blob_envelope(11, 7, {1, 2, 3});
  ASSERT_TRUE(client.put_blob("proc", 7, blob));

  EXPECT_FALSE(client.get_blob("proc", 11, 42).has_value());
  EXPECT_EQ(client.counters().errors, 1u);
  EXPECT_FALSE(client.degraded());

  auto got = client.get_blob("proc", 11, 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob);
  EXPECT_EQ(client.counters().reconnects, 1u)
      << "a reply timeout must not drop the pipelined connection";
  td.daemon.stop();
}

TEST(PipelinedClient, BatchGetBlobsDegradesToAllMiss) {
  // StorageBackend::batch_get_blobs on a dead endpoint: every key reads
  // as a miss, no throw, breaker accounting as usual.
  net::Listener probe;
  ASSERT_TRUE(probe.listen_on("127.0.0.1", 0));
  const int dead_port = probe.port();
  probe.close();

  remote::RemoteOptions opt = client_options(dead_port);
  remote::RemoteStore client(opt);
  make_impatient(&client);

  auto results = client.batch_get_blobs(11, {{"proc", 1}, {"proc", 2}});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].first);
  EXPECT_FALSE(results[1].first);
  EXPECT_TRUE(client.degraded());
}

}  // namespace
}  // namespace fortd
