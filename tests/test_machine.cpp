// Machine simulator tests: cost model, network channels, the SPMD
// interpreter (values, control flow, calls by reference, intrinsics), and
// whole-machine runs including deadlock detection.
#include <gtest/gtest.h>

#include <thread>

#include "driver/compiler.hpp"

namespace fortd {
namespace {

TEST(CostModel, WireTimeAndBroadcastDepth) {
  CostModel cm = CostModel::ipsc860();
  EXPECT_DOUBLE_EQ(cm.wire_time(0), cm.alpha_us);
  EXPECT_DOUBLE_EQ(cm.wire_time(100), cm.alpha_us + 100 * cm.beta_us_per_byte);
  EXPECT_EQ(cm.bcast_depth(1), 1);
  EXPECT_EQ(cm.bcast_depth(2), 1);
  EXPECT_EQ(cm.bcast_depth(4), 2);
  EXPECT_EQ(cm.bcast_depth(5), 3);
  EXPECT_EQ(cm.bcast_depth(16), 4);
}

TEST(Network, FifoPerChannelAndStats) {
  Network net(2, /*timeout=*/5.0);
  SimMessage a;
  a.src = 0;
  a.tag = "x";
  a.payload = {1.0, 2.0};
  a.bytes = 16;
  SimMessage b = a;
  b.payload = {3.0};
  b.bytes = 8;
  net.send(0, 1, std::move(a));
  net.send(0, 1, std::move(b));
  SimMessage first = net.recv(1, 0);
  SimMessage second = net.recv(1, 0);
  EXPECT_EQ(first.payload.size(), 2u);
  EXPECT_EQ(second.payload.size(), 1u);
  EXPECT_EQ(net.total_messages(), 2);
  EXPECT_EQ(net.total_bytes(), 24);
}

TEST(Network, RecvTimesOutAsDeadlock) {
  Network net(2, /*timeout=*/0.05);
  EXPECT_THROW(net.recv(0, 1), SimDeadlock);
}

TEST(Network, CrossThreadDelivery) {
  Network net(2, 5.0);
  std::thread t([&] {
    SimMessage m;
    m.src = 1;
    m.payload = {42.0};
    m.bytes = 8;
    net.send(1, 0, std::move(m));
  });
  SimMessage got = net.recv(0, 1);
  t.join();
  EXPECT_DOUBLE_EQ(got.payload[0], 42.0);
}

// ---------------------------------------------------------------------------
// Interpreter semantics through single-processor runs
// ---------------------------------------------------------------------------

RunResult run_program(const char* src, int procs = 1) {
  CodegenOptions opt;
  opt.n_procs = procs;
  return compile_and_run(src, opt);
}

TEST(Interpreter, IntegerArithmeticTruncates) {
  RunResult r = run_program(R"(
      program p
      integer a, b
      a = 7 / 2
      b = -7 / 2
      end
)");
  EXPECT_DOUBLE_EQ(r.gather_scalar("a"), 3.0);
  EXPECT_DOUBLE_EQ(r.gather_scalar("b"), -3.0);
}

TEST(Interpreter, LoopWithStepAndZeroTrip) {
  RunResult r = run_program(R"(
      program p
      integer i, count
      count = 0
      do i = 1, 10, 3
        count = count + 1
      enddo
      do i = 5, 4
        count = count + 100
      enddo
      end
)");
  EXPECT_DOUBLE_EQ(r.gather_scalar("count"), 4.0);
}

TEST(Interpreter, IfElseAndLogicalOperators) {
  RunResult r = run_program(R"(
      program p
      integer a, b
      a = 5
      if ((a .gt. 0) .and. (a .lt. 10)) then
        b = 1
      else
        b = 2
      endif
      end
)");
  EXPECT_DOUBLE_EQ(r.gather_scalar("b"), 1.0);
}

TEST(Interpreter, CallByReferenceScalarsAndArrays) {
  RunResult r = run_program(R"(
      program p
      real x(10)
      integer n
      n = 3
      call setall(x, n)
      end
      subroutine setall(a, m)
      real a(10)
      integer m, i
      do i = 1, 10
        a(i) = m * 1.0
      enddo
      m = 7
      end
)");
  EXPECT_DOUBLE_EQ(r.gather_scalar("n"), 7.0);  // out-parameter written back
  auto x = r.gather("x");
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[9], 3.0);
}

TEST(Interpreter, ExpressionActualIsCopyIn) {
  RunResult r = run_program(R"(
      program p
      integer n
      n = 1
      call f(n + 1)
      end
      subroutine f(m)
      integer m
      m = 99
      end
)");
  EXPECT_DOUBLE_EQ(r.gather_scalar("n"), 1.0);  // caller unchanged
}

TEST(Interpreter, CommonBlocksShareStorage) {
  RunResult r = run_program(R"(
      program p
      real buf(5)
      integer tag
      common /shared/ buf, tag
      call producer()
      end
      subroutine producer()
      real buf(5)
      integer tag
      common /shared/ buf, tag
      buf(3) = 12.5
      tag = 4
      end
)");
  auto buf = r.gather("buf");
  EXPECT_DOUBLE_EQ(buf[2], 12.5);
  EXPECT_DOUBLE_EQ(r.gather_scalar("tag"), 4.0);
}

TEST(Interpreter, IntrinsicFunctions) {
  RunResult r = run_program(R"(
      program p
      integer a, b, c
      real s
      a = min(3, max(7, 5))
      b = modp(0 - 3, 4)
      c = mod(10, 3)
      s = sqrt(16.0) + abs(0.0 - 2.0)
      end
)");
  EXPECT_DOUBLE_EQ(r.gather_scalar("a"), 3.0);
  EXPECT_DOUBLE_EQ(r.gather_scalar("b"), 1.0);
  EXPECT_DOUBLE_EQ(r.gather_scalar("c"), 1.0);
  EXPECT_DOUBLE_EQ(r.gather_scalar("s"), 6.0);
}

TEST(Interpreter, ReturnStatement) {
  RunResult r = run_program(R"(
      program p
      integer a
      a = 1
      call f(a)
      end
      subroutine f(a)
      integer a
      a = 2
      return
      a = 3
      end
)");
  EXPECT_DOUBLE_EQ(r.gather_scalar("a"), 2.0);
}

TEST(Interpreter, ParameterizedArrayBounds) {
  // Fig. 14 style: array bounds from formal parameters.
  RunResult r = run_program(R"(
      program p
      real x(30)
      integer i
      do i = 1, 30
        x(i) = i * 1.0
      enddo
      call f(x, 1, 30)
      end
      subroutine f(a, lo, hi)
      real a(lo:hi)
      integer lo, hi
      a(hi) = a(lo) + 100.0
      end
)");
  auto x = r.gather("x");
  EXPECT_DOUBLE_EQ(x[29], 101.0);
}

// ---------------------------------------------------------------------------
// Whole-machine behaviour
// ---------------------------------------------------------------------------

TEST(Machine, ClockAdvancesWithComputation) {
  RunResult small = run_program(R"(
      program p
      real x(10)
      integer i
      do i = 1, 10
        x(i) = i*2.0
      enddo
      end
)");
  RunResult big = run_program(R"(
      program p
      real x(1000)
      integer i
      do i = 1, 1000
        x(i) = i*2.0
      enddo
      end
)");
  EXPECT_GT(big.sim_time_us, small.sim_time_us);
}

TEST(Machine, MessageTimingDominatedByLatency) {
  // One 5-element shift at P=2: time >= alpha.
  const char* src = R"(
      program p
      real x(100)
      integer i
      distribute x(block)
      do i = 1, 95
        x(i) = x(i+5)
      enddo
      end
)";
  CodegenOptions opt;
  opt.n_procs = 2;
  RunResult r = compile_and_run(src, opt);
  EXPECT_EQ(r.messages, 1);
  EXPECT_GE(r.sim_time_us, CostModel::ipsc860().alpha_us);
}

TEST(Machine, PerProcStatsPopulated) {
  CodegenOptions opt;
  opt.n_procs = 4;
  RunResult r = compile_and_run(R"(
      program p
      real x(100)
      integer i
      distribute x(block)
      do i = 1, 100
        x(i) = 1.0
      enddo
      end
)", opt);
  ASSERT_EQ(r.per_proc.size(), 4u);
  for (const auto& st : r.per_proc) {
    EXPECT_GT(st.iterations, 0);
    EXPECT_GT(st.clock_us, 0.0);
  }
}

TEST(Machine, LowLatencyModelIsFaster) {
  const char* src = R"(
      program p
      real x(100)
      integer i
      distribute x(block)
      do i = 1, 95
        x(i) = x(i+5)
      enddo
      end
)";
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(src);
  RunResult slow = simulate(r.spmd, CostModel::ipsc860());
  RunResult fast = simulate(r.spmd, CostModel::low_latency());
  EXPECT_LT(fast.sim_time_us, slow.sim_time_us);
}

TEST(Machine, DeterministicAcrossRuns) {
  CodegenOptions opt;
  opt.n_procs = 4;
  Compiler compiler(opt);
  CompileResult r = compiler.compile_source(R"(
      program p
      real x(64)
      integer i
      distribute x(cyclic)
      do i = 1, 64
        x(i) = i*1.0
      enddo
      end
)");
  RunResult a = simulate(r.spmd);
  RunResult b = simulate(r.spmd);
  EXPECT_EQ(a.sim_time_us, b.sim_time_us);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.gather("x"), b.gather("x"));
}

}  // namespace
}  // namespace fortd
