// Compile-as-a-service tests: the resident fortdd daemon (CompileService),
// its thin client, warm-session recompilation guarantees, admission
// control, graceful drain, and the concurrent-batch ThreadPool contract
// the shared-pool design rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../bench/programs.hpp"
#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "fleet_harness.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/client.hpp"
#include "service/compile_service.hpp"

namespace fortd {
namespace {

using fleet_test::fresh_cache_dir;

/// One CompileService over a fresh cache directory on an ephemeral port.
struct TestService {
  explicit TestService(const std::string& tag,
                       service::ServiceOptions options = {}) {
    if (options.cache_dir.empty())
      options.cache_dir = fresh_cache_dir("svc_" + tag);
    options.port = 0;
    svc = std::make_unique<service::CompileService>(std::move(options));
    std::string err;
    started = svc->start(&err);
    EXPECT_TRUE(started) << err;
  }

  service::CompileClient client(int timeout_ms = 20000) {
    service::ClientOptions copt;
    copt.port = svc->port();
    copt.timeout_ms = timeout_ms;
    return service::CompileClient(copt);
  }

  std::unique_ptr<service::CompileService> svc;
  bool started = false;
};

remote::CompileOptionsWire wire_options(int n_procs = 4) {
  remote::CompileOptionsWire copts;
  copts.n_procs = static_cast<uint32_t>(n_procs);
  return copts;
}

/// The local reference: what a plain in-process fortdc compile prints.
std::string local_spmd(const std::string& src, int n_procs = 4) {
  CodegenOptions opt;
  opt.n_procs = n_procs;
  Compiler compiler(opt);
  return print_spmd(compiler.compile_source(src).spmd);
}

uint64_t json_uint(const std::string& json, const std::string& key) {
  const auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return ~0ull;
  return std::strtoull(json.c_str() + pos + key.size() + 3, nullptr, 10);
}

// ---------------------------------------------------------------------------
// Warm-session recompilation guarantees (the §8 contract, over a socket)
// ---------------------------------------------------------------------------

TEST(CompileService, WarmRepeatParsesNothingAndComputesNoSummaries) {
  TestService ts("warm_repeat");
  auto client = ts.client();
  const std::string src = bench::fan_out(32, 64);
  const std::string reference = local_spmd(src);

  std::string reason;
  auto first = client.compile(src, wire_options(), &reason);
  ASSERT_TRUE(first) << reason;
  EXPECT_EQ(static_cast<remote::CompileStatus>(first->status),
            remote::CompileStatus::Ok);
  EXPECT_EQ(first->parsed_procedures, 33u);
  EXPECT_EQ(first->generated, 33u);
  EXPECT_EQ(first->spmd, reference) << "served output must be byte-identical";

  // The repeat against the warm daemon: AST from the digest cache (0
  // parsed), everything else from the session Compiler's hot caches
  // (0 generated, 0 summaries) — and still byte-identical.
  auto repeat = client.compile(src, wire_options(), &reason);
  ASSERT_TRUE(repeat) << reason;
  EXPECT_EQ(repeat->parsed_procedures, 0u);
  EXPECT_EQ(repeat->generated, 0u);
  EXPECT_EQ(repeat->summaries_computed, 0u);
  EXPECT_EQ(repeat->spmd, reference);
}

TEST(CompileService, OneOfThirtyTwoEditRecompilesExactlyOneProcedure) {
  TestService ts("one_edit");
  auto client = ts.client();
  std::string reason;
  auto warm = client.compile(bench::fan_out(32, 64), wire_options(), &reason);
  ASSERT_TRUE(warm) << reason;

  auto edited = client.compile(bench::fan_out(32, 64, /*edited_leaf=*/1),
                               wire_options(), &reason);
  ASSERT_TRUE(edited) << reason;
  EXPECT_EQ(edited->generated, 1u);
  EXPECT_EQ(edited->summaries_computed, 1u);
  EXPECT_EQ(edited->spmd, local_spmd(bench::fan_out(32, 64, 1)));
}

TEST(CompileService, RestartedDaemonIsWarmFromDisk) {
  const std::string dir = fresh_cache_dir("svc_restart");
  const std::string src = bench::fan_out(16, 64);
  service::ServiceOptions opt;
  opt.cache_dir = dir;
  {
    TestService ts("restart_a", opt);
    std::string reason;
    auto r = ts.client().compile(src, wire_options(), &reason);
    ASSERT_TRUE(r) << reason;
    EXPECT_EQ(r->generated, 17u);
    ts.svc->drain();
    ts.svc->stop();
  }
  // A fresh process image over the same store: the session tier starts
  // empty (the AST must re-parse) but codegen and summaries come from
  // disk.
  TestService ts("restart_b", opt);
  std::string reason;
  auto r = ts.client().compile(src, wire_options(), &reason);
  ASSERT_TRUE(r) << reason;
  EXPECT_GT(r->parsed_procedures, 0u);
  EXPECT_EQ(r->generated, 0u);
  EXPECT_EQ(r->summaries_computed, 0u);
  EXPECT_EQ(r->spmd, local_spmd(src));
}

TEST(CompileService, SessionEvictionKeepsOptionKeyedOutputsCorrect) {
  service::ServiceOptions opt;
  opt.max_sessions = 1;  // every option switch evicts the resident session
  TestService ts("evict", opt);
  auto client = ts.client();
  const std::string src = bench::fan_out(4, 64);

  std::string reason;
  auto at4 = client.compile(src, wire_options(4), &reason);
  ASSERT_TRUE(at4) << reason;
  auto at2 = client.compile(src, wire_options(2), &reason);
  ASSERT_TRUE(at2) << reason;
  auto again4 = client.compile(src, wire_options(4), &reason);
  ASSERT_TRUE(again4) << reason;

  EXPECT_EQ(at4->spmd, local_spmd(src, 4));
  EXPECT_EQ(at2->spmd, local_spmd(src, 2));
  EXPECT_EQ(again4->spmd, at4->spmd);
  const std::string json = ts.svc->metrics_json();
  const auto sessions = json.substr(json.find("\"sessions\""));
  EXPECT_GE(json_uint(sessions, "evictions"), 1u);
}

// ---------------------------------------------------------------------------
// Failure semantics
// ---------------------------------------------------------------------------

TEST(CompileService, CompileFailureIsAuthoritativeNotDegraded) {
  TestService ts("compile_fail");
  std::string reason;
  auto r = ts.client().compile("program p1\n  this is not fortran d\n",
                               wire_options(), &reason);
  ASSERT_TRUE(r) << reason;  // a reply, not a fallback
  EXPECT_EQ(static_cast<remote::CompileStatus>(r->status),
            remote::CompileStatus::CompileFail);
  EXPECT_FALSE(r->diagnostics.empty());
}

TEST(CompileService, UnreachableDaemonYieldsReasonNotReply) {
  net::Listener probe;
  ASSERT_TRUE(probe.listen_on("127.0.0.1", 0));
  const int dead_port = probe.port();
  probe.close();
  service::ClientOptions copt;
  copt.port = dead_port;
  copt.timeout_ms = 500;
  service::CompileClient client(copt);
  std::string reason;
  auto r = client.compile("program p\nend\n", wire_options(), &reason);
  EXPECT_FALSE(r);
  EXPECT_FALSE(reason.empty());
}

TEST(CompileService, HandshakeSkewIsRejectedBeforeAnyCompile) {
  TestService ts("skew");
  service::ClientOptions copt;
  copt.port = ts.svc->port();
  copt.timeout_ms = 2000;
  copt.format_hash_override = 0xdeadbeefull;
  service::CompileClient client(copt);
  std::string reason;
  auto r = client.compile(bench::fan_out(2, 64), wire_options(), &reason);
  EXPECT_FALSE(r);
  EXPECT_NE(reason.find("mismatch"), std::string::npos) << reason;
  EXPECT_GE(json_uint(ts.svc->metrics_json(), "handshake_rejects"), 1u);
}

TEST(CompileService, FullQueueRejectsInsteadOfQueueingUnboundedly) {
  service::ServiceOptions opt;
  opt.max_queue = 0;  // admission always refuses
  TestService ts("reject", opt);
  std::string reason;
  auto r = ts.client().compile(bench::fan_out(2, 64), wire_options(), &reason);
  EXPECT_FALSE(r);
  EXPECT_NE(reason.find("capacity"), std::string::npos) << reason;
  EXPECT_GE(json_uint(ts.svc->metrics_json(), "rejected"), 1u);
}

TEST(CompileService, QueuedRequestPastItsDeadlineIsDroppedNotCompiled) {
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<int> compiles{0};
  service::ServiceOptions opt;
  opt.executors = 1;
  opt.before_compile = [&] {
    if (compiles.fetch_add(1) == 0) released.wait();
  };
  TestService ts("deadline", opt);

  // Occupy the lone executor with a request that blocks in
  // before_compile until we release it.
  std::thread hog([&] {
    auto client = ts.client();
    std::string reason;
    auto r = client.compile(bench::fan_out(2, 64), wire_options(), &reason);
    EXPECT_TRUE(r) << reason;
  });
  while (compiles.load() == 0) std::this_thread::yield();

  // This request's whole 50 ms budget passes in the queue.
  auto copts = wire_options();
  copts.deadline_ms = 50;
  std::string reason;
  std::optional<remote::CompileReplyWire> expired;
  std::thread waiter([&] {
    auto client = ts.client();
    expired = client.compile(bench::fan_out(2, 64), copts, &reason);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  release.set_value();
  hog.join();
  waiter.join();
  EXPECT_FALSE(expired);
  EXPECT_NE(reason.find("deadline"), std::string::npos) << reason;
  EXPECT_EQ(compiles.load(), 1) << "the expired request must not compile";
  EXPECT_GE(json_uint(ts.svc->metrics_json(), "deadline_expired"), 1u);
}

TEST(CompileService, DrainFinishesInFlightWorkThenRefusesNewRequests) {
  TestService ts("drain");
  auto client = ts.client();
  std::string reason;
  ASSERT_TRUE(client.compile(bench::fan_out(4, 64), wire_options(), &reason))
      << reason;

  // DRAIN answers once the daemon is idle...
  EXPECT_TRUE(client.drain(&reason)) << reason;
  // ...and later COMPILEs are refused (the client's cue to go local).
  auto refused =
      client.compile(bench::fan_out(4, 64), wire_options(), &reason);
  EXPECT_FALSE(refused);
  EXPECT_NE(reason.find("draining"), std::string::npos) << reason;
}

TEST(CompileService, ClientGoneBeforeReplyIsCountedNotFatal) {
  TestService ts("gone");
  const std::string src = bench::fan_out(8, 64);
  {
    // Handshake, send a COMPILE, vanish before the reply can be written.
    auto sock = net::connect_to("127.0.0.1", ts.svc->port(), 2000);
    ASSERT_TRUE(sock);
    remote::WireMessage hello;
    hello.type = remote::MsgType::Hello;
    hello.format_hash = remote::remote_wire_format_hash();
    std::vector<uint8_t> framed;
    ASSERT_TRUE(net::encode_frame(framed, encode_message(hello)));
    ASSERT_EQ(sock->send_all(framed.data(), framed.size(), 2000),
              net::IoStatus::Ok);
    remote::WireMessage req;
    req.type = remote::MsgType::Compile;
    req.request_id = 7;
    req.text = src;
    req.copts = wire_options();
    ASSERT_TRUE(net::encode_frame(framed, encode_message(req)));
    ASSERT_EQ(sock->send_all(framed.data(), framed.size(), 2000),
              net::IoStatus::Ok);
  }  // socket closes here, compile still running

  // The daemon must survive, count the loss, and keep serving.
  for (int spin = 0; spin < 200; ++spin) {
    const std::string json = ts.svc->metrics_json();
    if (json_uint(json, "disconnects_mid_reply") +
            json_uint(json, "replies_dropped") >=
        1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  const std::string json = ts.svc->metrics_json();
  EXPECT_GE(json_uint(json, "disconnects_mid_reply") +
                json_uint(json, "replies_dropped"),
            1u);
  std::string reason;
  auto r = ts.client().compile(src, wire_options(), &reason);
  ASSERT_TRUE(r) << reason;
  EXPECT_EQ(r->spmd, local_spmd(src));
}

TEST(CompileService, MetricsReportPhaseTotalsAndPeaks) {
  TestService ts("metrics");
  auto client = ts.client();
  std::string reason;
  ASSERT_TRUE(client.compile(bench::fan_out(4, 64), wire_options(), &reason))
      << reason;
  auto copts = wire_options();
  copts.want_timings = 1;
  auto timed = client.compile(bench::fan_out(4, 64), copts, &reason);
  ASSERT_TRUE(timed) << reason;
  EXPECT_NE(timed->timings_json.find("\"queue_ms\""), std::string::npos);
  EXPECT_NE(timed->timings_json.find("\"compile_ms\""), std::string::npos);

  auto metrics = client.fetch_metrics(&reason);
  ASSERT_TRUE(metrics) << reason;
  EXPECT_EQ(json_uint(*metrics, "requests"), 2u);
  EXPECT_EQ(json_uint(*metrics, "ok"), 2u);
  EXPECT_GE(json_uint(*metrics, "in_flight_peak"), 1u);
  EXPECT_NE(metrics->find("\"ast_cache\""), std::string::npos);
  EXPECT_NE(metrics->find("\"sessions\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent-client soak: fair completion, byte-identical outputs
// ---------------------------------------------------------------------------

class ServiceSoak : public ::testing::TestWithParam<int> {};

TEST_P(ServiceSoak, ConcurrentClientsGetByteIdenticalOutputs) {
  const int jobs = GetParam();
  service::ServiceOptions opt;
  opt.jobs = jobs;
  opt.executors = 4;
  TestService ts("soak_j" + std::to_string(jobs), opt);

  // Three distinct programs; every client compiles all of them, twice.
  const std::vector<std::string> programs = {
      bench::fan_out(8, 64), bench::fan_out(4, 64),
      bench::fan_out(8, 64, /*edited_leaf=*/2)};
  std::vector<std::string> references;
  for (const auto& src : programs) references.push_back(local_spmd(src));

  constexpr int kClients = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = ts.client(60000);
      auto copts = wire_options();
      copts.deadline_ms = 60000;  // fair FIFO: nobody may starve past this
      for (int round = 0; round < 2; ++round) {
        for (size_t p = 0; p < programs.size(); ++p) {
          const size_t idx = (static_cast<size_t>(c) + p) % programs.size();
          std::string reason;
          auto r = client.compile(programs[idx], copts, &reason);
          if (!r ||
              static_cast<remote::CompileStatus>(r->status) !=
                  remote::CompileStatus::Ok ||
              r->spmd != references[idx]) {
            ADD_FAILURE() << "client " << c << " round " << round
                          << " program " << idx << ": "
                          << (r ? "wrong output/status" : reason);
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const std::string json = ts.svc->metrics_json();
  EXPECT_EQ(json_uint(json, "requests"), kClients * 2u * 3u);
  EXPECT_EQ(json_uint(json, "ok"), kClients * 2u * 3u);
  EXPECT_EQ(json_uint(json, "deadline_expired"), 0u);
  EXPECT_EQ(json_uint(json, "rejected"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Jobs, ServiceSoak, ::testing::Values(1, 4));

// ---------------------------------------------------------------------------
// ThreadPool: the concurrent-batch contract the shared pool rests on
// ---------------------------------------------------------------------------

TEST(ThreadPool, ConcurrentBatchesFromManyThreadsRunEveryIndexOnce) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t)
    threads.emplace_back([&] {
      for (int round = 0; round < 25; ++round)
        pool.parallel_for(64, [&](size_t) { sum.fetch_add(1); });
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), 6l * 25 * 64);
}

TEST(ThreadPool, CallerCompletesItsBatchWhileWorkersAreBusyElsewhere) {
  ThreadPool pool(1);
  std::atomic<bool> hold{true};
  std::atomic<int> hogs_running{0};
  std::thread hog([&] {
    pool.parallel_for(2, [&](size_t) {
      hogs_running.fetch_add(1);
      while (hold.load()) std::this_thread::yield();
    });
  });
  // Both hog indices spinning = the lone worker is pinned.
  while (hogs_running.load() < 2) std::this_thread::yield();

  std::atomic<long> sum{0};
  pool.parallel_for(32, [&](size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 32);  // completed with zero worker help

  hold.store(false);
  hog.join();
}

TEST(ThreadPool, ExceptionsStayWithinTheirOwnBatch) {
  ThreadPool pool(2);
  std::atomic<long> clean_sum{0};
  std::thread clean([&] {
    for (int round = 0; round < 10; ++round)
      pool.parallel_for(32, [&](size_t) { clean_sum.fetch_add(1); });
  });
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        pool.parallel_for(8,
                          [&](size_t i) {
                            if (i == 3) throw std::runtime_error("batch");
                          }),
        std::runtime_error);
  }
  clean.join();
  EXPECT_EQ(clean_sum.load(), 10l * 32);
}

}  // namespace
}  // namespace fortd
