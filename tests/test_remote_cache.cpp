// The remote compilation-cache tier end to end, over real loopback TCP:
//   * LZ compression codec round trips and the envelope size win,
//   * frame codec incremental decode (byte-at-a-time, coalesced frames,
//     oversized-length rejection),
//   * protocol message encode/decode round trips,
//   * daemon lifecycle + GET/PUT/BATCH_GET/STATS against a live daemon,
//   * the acceptance path: a *fresh* Compiler with an empty local cache
//     directory compiling a 32-procedure program against a warm daemon
//     generates 0 procedures and computes 0 summaries (jobs=1 and
//     jobs=4), and a 1-of-32 edit regenerates exactly one,
//   * graceful degradation — unreachable daemon, mid-stream disconnect,
//     stalled replies, and a version-skewed handshake each leave the
//     compile successful on local tiers with the circuit breaker open
//     (no sleeps: fault hooks + short poll deadlines),
//   * a multi-client soak: concurrent clients mixing GETs and PUTs with
//     byte-identity checks (run it under FORTD_SANITIZE=thread to vet
//     the daemon's locking).
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "../bench/programs.hpp"
#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "fleet_harness.hpp"
#include "net/frame.hpp"
#include "remote/client.hpp"
#include "remote/server.hpp"
#include "support/compress.hpp"

namespace fs = std::filesystem;

namespace fortd {
namespace {

using fleet_test::TestDaemon;
using fleet_test::client_options;
using fleet_test::fresh_cache_dir;
using fleet_test::make_impatient;

// ---------------------------------------------------------------------------
// Compression codec
// ---------------------------------------------------------------------------

TEST(Compress, RoundTripsRepetitiveAndShrinksIt) {
  std::vector<uint8_t> raw;
  for (int i = 0; i < 10000; ++i)
    raw.push_back(static_cast<uint8_t>("abcdabcdabcd"[i % 12]));
  std::vector<uint8_t> comp = compress_bytes(raw);
  EXPECT_LT(comp.size(), raw.size() / 4)
      << "repetitive data must compress well";
  auto back = decompress_bytes(comp);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, raw);
}

TEST(Compress, RoundTripsIncompressibleViaStoredMode) {
  // A deterministic pseudorandom buffer defeats the matcher; the codec
  // must fall back to stored mode and cost only the small header.
  std::vector<uint8_t> raw;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    raw.push_back(static_cast<uint8_t>(x));
  }
  std::vector<uint8_t> comp = compress_bytes(raw);
  EXPECT_LE(comp.size(), raw.size() + 8);
  auto back = decompress_bytes(comp);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, raw);
}

TEST(Compress, RoundTripsEmptyAndTiny) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}}) {
    std::vector<uint8_t> raw(n, 0x5a);
    auto back = decompress_bytes(compress_bytes(raw));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, raw);
  }
}

TEST(Compress, EnvelopePayloadsAreCompressed) {
  std::vector<uint8_t> payload(8192, 7);  // maximally repetitive
  std::vector<uint8_t> blob = make_blob_envelope(1, 2, payload);
  EXPECT_LT(blob.size(), payload.size() / 8);
  auto back = open_blob_envelope(blob, 1, 2);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(FrameCodec, DecodesByteAtATime) {
  std::vector<uint8_t> payload;
  for (int i = 0; i < 300; ++i) payload.push_back(static_cast<uint8_t>(i));
  std::vector<uint8_t> wire;
  net::encode_frame(wire, payload);
  net::encode_frame(wire, {});  // an empty frame is legal

  net::FrameDecoder dec;
  std::vector<std::vector<uint8_t>> frames;
  for (uint8_t b : wire) {
    dec.feed(&b, 1);
    while (auto f = dec.next()) frames.push_back(*f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], payload);
  EXPECT_TRUE(frames[1].empty());
  EXPECT_FALSE(dec.failed());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, CoalescedFramesDecodeInOrder) {
  std::vector<uint8_t> wire;
  for (int i = 0; i < 5; ++i)
    net::encode_frame(wire, std::vector<uint8_t>(i * 10, static_cast<uint8_t>(i)));
  net::FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  for (int i = 0; i < 5; ++i) {
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->size(), static_cast<size_t>(i * 10));
  }
  EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameCodec, EncodeRefusesOversizePayload) {
  // The sender must enforce the same ceiling the decoder does: framing an
  // oversize payload would only sticky-fail the receiver and kill the
  // connection as a misleading "garbled reply".
  std::vector<uint8_t> wire;
  std::vector<uint8_t> big(net::kMaxFramePayload + 1);
  EXPECT_FALSE(net::encode_frame(wire, big));
  EXPECT_TRUE(wire.empty()) << "a refused frame must not emit bytes";
  EXPECT_TRUE(net::encode_frame(wire, {1, 2, 3}));
  EXPECT_FALSE(wire.empty());
}

TEST(FrameCodec, OversizedLengthFailsSticky) {
  // Varint for 1 GiB, far above kMaxFramePayload.
  std::vector<uint8_t> wire;
  uint64_t v = 1ull << 30;
  while (v >= 0x80) {
    wire.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  wire.push_back(static_cast<uint8_t>(v));
  net::FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
  dec.feed(wire.data(), wire.size());  // no-op once failed
  EXPECT_FALSE(dec.next().has_value());
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

TEST(RemoteProtocol, RoundTripsEveryMessageType) {
  using remote::MsgType;
  using remote::WireMessage;
  std::vector<WireMessage> messages;
  {
    WireMessage m;
    m.type = MsgType::Hello;
    m.format_hash = remote::remote_wire_format_hash();
    messages.push_back(m);
  }
  for (MsgType t : {MsgType::HelloOk, MsgType::GetMiss, MsgType::PutOk,
                    MsgType::Stats}) {
    WireMessage m;
    m.type = t;
    messages.push_back(m);
  }
  for (MsgType t : {MsgType::HelloReject, MsgType::PutDenied, MsgType::StatsOk,
                    MsgType::Error}) {
    WireMessage m;
    m.type = t;
    m.text = "some reason \"quoted\"";
    messages.push_back(m);
  }
  {
    WireMessage m;
    m.type = MsgType::Get;
    m.kind = "proc";
    m.format_hash = 0xfeed;
    m.digest = 0xbeef;
    messages.push_back(m);
  }
  {
    WireMessage m;
    m.type = MsgType::GetOk;
    m.blob = {1, 2, 3, 4, 5};
    messages.push_back(m);
  }
  {
    WireMessage m;
    m.type = MsgType::Put;
    m.kind = "summary";
    m.digest = 77;
    m.blob = std::vector<uint8_t>(1000, 0xcd);
    messages.push_back(m);
  }
  {
    WireMessage m;
    m.type = MsgType::BatchGet;
    m.format_hash = 5;
    m.keys = {{"proc", 1}, {"summary", 2}};
    messages.push_back(m);
  }
  {
    WireMessage m;
    m.type = MsgType::BatchGetOk;
    m.blobs = {{true, {9, 9}}, {false, {}}};
    messages.push_back(m);
  }

  // Every message carries a request id (the pipelining tag); ids must
  // survive the codec for every type.
  for (size_t i = 0; i < messages.size(); ++i)
    messages[i].request_id = i * 1000003 + 1;

  for (const auto& m : messages) {
    auto decoded = remote::decode_message(remote::encode_message(m));
    ASSERT_TRUE(decoded.has_value())
        << "type " << static_cast<int>(m.type);
    EXPECT_EQ(decoded->type, m.type);
    EXPECT_EQ(decoded->request_id, m.request_id);
    EXPECT_EQ(decoded->format_hash, m.format_hash);
    EXPECT_EQ(decoded->kind, m.kind);
    EXPECT_EQ(decoded->digest, m.digest);
    EXPECT_EQ(decoded->blob, m.blob);
    EXPECT_EQ(decoded->keys, m.keys);
    EXPECT_EQ(decoded->blobs, m.blobs);
    EXPECT_EQ(decoded->text, m.text);
  }
}

TEST(RemoteProtocol, RejectsGarbageAndTrailingBytes) {
  EXPECT_FALSE(remote::decode_message({}).has_value());
  EXPECT_FALSE(remote::decode_message({0}).has_value());
  EXPECT_FALSE(remote::decode_message({200}).has_value());
  remote::WireMessage m;
  m.type = remote::MsgType::GetMiss;
  auto bytes = remote::encode_message(m);
  bytes.push_back(0);  // trailing garbage
  EXPECT_FALSE(remote::decode_message(bytes).has_value());
}

// ---------------------------------------------------------------------------
// Live daemon: blob exchange and stats
// ---------------------------------------------------------------------------

TEST(RemoteCache, PutThenGetRoundTripsBytesExactly) {
  TestDaemon td("putget");
  remote::RemoteStore client(client_options(td.daemon.port()));

  std::vector<uint8_t> payload(2000, 0x3c);
  std::vector<uint8_t> blob = make_blob_envelope(11, 42, payload);
  ASSERT_TRUE(client.put_blob("proc", 42, blob));

  auto got = client.get_blob("proc", 11, 42);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob) << "the daemon must serve blobs byte-identically";
  EXPECT_FALSE(client.get_blob("proc", 11, 43).has_value());

  auto counters = td.daemon.counters();
  EXPECT_EQ(counters["proc"].puts, 1u);
  EXPECT_EQ(counters["proc"].get_hits, 1u);
  EXPECT_EQ(counters["proc"].get_misses, 1u);
  EXPECT_EQ(counters["proc"].bytes_out, blob.size());
}

TEST(RemoteCache, PutOfACorruptBlobIsDenied) {
  TestDaemon td("badput");
  remote::RemoteStore client(client_options(td.daemon.port()));
  std::vector<uint8_t> blob = make_blob_envelope(11, 42, {1, 2, 3});
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_FALSE(client.put_blob("proc", 42, blob));
  EXPECT_FALSE(client.degraded()) << "a denial is not a network failure";
  EXPECT_EQ(td.daemon.counters()["proc"].puts, 0u);
}

TEST(RemoteCache, ReadOnlyDaemonServesGetsAndDeniesPuts) {
  std::string dir = fresh_cache_dir("readonly_daemon");
  std::vector<uint8_t> blob = make_blob_envelope(11, 42, {1, 2, 3});
  {
    ContentStore seed({dir});
    seed.store("proc", 11, 42, {1, 2, 3});
  }
  CacheOptions opt{dir};
  opt.read_only = true;
  ContentStore store(opt);
  ThreadPool pool(1);
  remote::CacheDaemon daemon(&store, &pool, {});
  ASSERT_TRUE(daemon.start());

  remote::RemoteStore client(client_options(daemon.port()));
  EXPECT_TRUE(client.get_blob("proc", 11, 42).has_value());
  EXPECT_FALSE(client.put_blob("proc", 43, make_blob_envelope(11, 43, {4})));
  daemon.stop();
}

TEST(RemoteCache, TraversalKindsNeverTouchTheFilesystem) {
  // A hostile client must not steer blob paths outside the cache dir:
  // kinds are validated at the wire (PutDenied/GetMiss) and again inside
  // ContentStore, and a traversal kind never creates files or dirs.
  TestDaemon td("traversal");
  remote::RemoteStore client(client_options(td.daemon.port()));

  const std::string evil = "../escaped";
  std::vector<uint8_t> blob = make_blob_envelope(11, 42, {1, 2, 3});
  EXPECT_FALSE(client.put_blob(evil, 42, blob));
  EXPECT_FALSE(client.degraded()) << "a denial is not a network failure";
  EXPECT_FALSE(client.get_blob(evil, 11, 42).has_value());

  const fs::path outside = fs::path(::testing::TempDir()) / "escaped";
  EXPECT_FALSE(fs::exists(outside))
      << "traversal kind must not create paths outside the cache dir";
  EXPECT_EQ(td.daemon.counters().count(evil), 0u)
      << "invalid kinds must not pollute the per-kind counters";
  auto stats = client.fetch_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("\"invalid_kinds\":2"), std::string::npos) << *stats;
  td.daemon.stop();
}

TEST(RemoteCache, ContentStoreValidatesKinds) {
  EXPECT_TRUE(ContentStore::valid_kind("proc"));
  EXPECT_TRUE(ContentStore::valid_kind("summary_v2.x-y"));
  EXPECT_FALSE(ContentStore::valid_kind(""));
  EXPECT_FALSE(ContentStore::valid_kind("."));
  EXPECT_FALSE(ContentStore::valid_kind(".."));
  EXPECT_FALSE(ContentStore::valid_kind("a/b"));
  EXPECT_FALSE(ContentStore::valid_kind("../up"));
  EXPECT_FALSE(ContentStore::valid_kind("quote\"kind"));
  EXPECT_FALSE(ContentStore::valid_kind(std::string(65, 'a')));

  const std::string dir = fresh_cache_dir("kind_validation");
  ContentStore store({dir});
  store.store_blob("../up", 7, make_blob_envelope(11, 7, {1}));
  store.store("bad/slash", 11, 8, {2});
  store.flush();
  EXPECT_FALSE(store.load("../up", 11, 7).has_value());
  EXPECT_FALSE(fs::exists(fs::path(dir).parent_path() / "up"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "bad"));
  EXPECT_EQ(store.counters().writes, 0u) << "hostile kinds are dropped writes";
}

TEST(RemoteCache, OversizePutIsSkippedWithoutDegrading) {
  // A request beyond the frame ceiling is never sent: it reads as a
  // dropped write with its own counter, and the breaker stays closed so
  // the remote tier keeps serving normal traffic.
  TestDaemon td("oversize");
  remote::RemoteStore client(client_options(td.daemon.port()));

  std::vector<uint8_t> huge(net::kMaxFramePayload + 1024, 0x5a);
  EXPECT_FALSE(client.put_blob("proc", 9, huge));
  EXPECT_EQ(client.counters().oversize, 1u);
  EXPECT_EQ(client.counters().errors, 0u);
  EXPECT_FALSE(client.degraded());

  std::vector<uint8_t> blob = make_blob_envelope(11, 10, {1, 2});
  EXPECT_TRUE(client.put_blob("proc", 10, blob));
  EXPECT_TRUE(client.get_blob("proc", 11, 10).has_value());
  td.daemon.stop();
}

TEST(RemoteCache, ReadOnlyStoreDoesNotBufferRemotePromotions) {
  // A read-only ContentStore never flushes, so promoting remote hits into
  // the pending buffer would grow it without bound — promotion is skipped
  // and every load consults the remote tier again.
  struct StubBackend : StorageBackend {
    std::vector<uint8_t> blob;
    int gets = 0;
    std::optional<std::vector<uint8_t>> get_blob(const std::string&, uint64_t,
                                                 uint64_t) override {
      ++gets;
      return blob;
    }
    bool put_blob(const std::string&, uint64_t,
                  const std::vector<uint8_t>&) override {
      return true;
    }
  };

  CacheOptions opt{fresh_cache_dir("ro_promote")};
  opt.read_only = true;
  ContentStore store(opt);
  StubBackend remote;
  remote.blob = make_blob_envelope(11, 7, {1, 2, 3});
  store.attach_remote(&remote);

  for (int i = 1; i <= 3; ++i) {
    auto p = store.load("proc", 11, 7);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_EQ(store.size(), 0u)
        << "read-only store must not accumulate pending promotions";
    EXPECT_EQ(remote.gets, i);
  }
  EXPECT_EQ(store.counters().remote_hits, 3u);
}

TEST(RemoteCache, BatchGetMixesHitsAndMisses) {
  TestDaemon td("batch");
  remote::RemoteStore client(client_options(td.daemon.port()));
  std::vector<uint8_t> b1 = make_blob_envelope(11, 1, {1});
  std::vector<uint8_t> b2 = make_blob_envelope(11, 2, {2, 2});
  ASSERT_TRUE(client.put_blob("proc", 1, b1));
  ASSERT_TRUE(client.put_blob("summary", 2, b2));

  auto got = client.batch_get(11, {{"proc", 1}, {"summary", 2}, {"proc", 3}});
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), 3u);
  EXPECT_TRUE((*got)[0].first);
  EXPECT_EQ((*got)[0].second, b1);
  EXPECT_TRUE((*got)[1].first);
  EXPECT_EQ((*got)[1].second, b2);
  EXPECT_FALSE((*got)[2].first);
}

TEST(RemoteCache, StatsReportsPerKindCounters) {
  TestDaemon td("stats");
  remote::RemoteStore client(client_options(td.daemon.port()));
  ASSERT_TRUE(client.put_blob("proc", 7, make_blob_envelope(11, 7, {1})));
  ASSERT_TRUE(client.get_blob("proc", 11, 7).has_value());

  auto stats = client.fetch_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("\"proc\""), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"get_hits\":1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"puts\":1"), std::string::npos) << *stats;
  EXPECT_EQ(*stats, td.daemon.metrics_json());
}

// ---------------------------------------------------------------------------
// Acceptance: warm daemon, cold client
// ---------------------------------------------------------------------------

CompileResult compile_remote(const std::string& src, const std::string& dir,
                             const std::string& endpoint, int jobs,
                             std::string* spmd = nullptr) {
  CodegenOptions opt;
  opt.n_procs = 4;
  opt.jobs = jobs;
  CacheOptions copt;
  copt.dir = dir;
  copt.remote_endpoint = endpoint;
  Compiler compiler(opt, {}, {}, copt);
  CompileResult r = compiler.compile_source(src);
  EXPECT_FALSE(compiler.remote_store()->degraded())
      << compiler.remote_store()->degraded_reason();
  if (spmd) *spmd = print_spmd(r.spmd);
  return r;
}

class RemoteRecompilation : public ::testing::TestWithParam<int> {};

TEST_P(RemoteRecompilation, WarmDaemonMakesAColdClientIncremental) {
  const int jobs = GetParam();
  const std::string tag = "accept_j" + std::to_string(jobs);
  TestDaemon td(tag);
  const std::string src = bench::fan_out(32, 64);

  // First build anywhere: everything generated, written through to the
  // daemon at flush time.
  std::string warm_spmd;
  CompileResult warm = compile_remote(src, fresh_cache_dir(tag + "_warm"),
                                      td.endpoint(), jobs, &warm_spmd);
  EXPECT_EQ(warm.stats.procedures, 33);
  EXPECT_EQ(warm.stats.generated, 33);
  EXPECT_GT(warm.stats.remote_puts, 0);

  // Cold client, *empty* local cache directory: every artifact arrives
  // over the wire — zero procedures generated, zero summaries computed.
  std::string cold_spmd;
  CompileResult cold = compile_remote(src, fresh_cache_dir(tag + "_cold"),
                                      td.endpoint(), jobs, &cold_spmd);
  EXPECT_EQ(cold.stats.generated, 0);
  EXPECT_EQ(cold.stats.summaries_computed, 0);
  EXPECT_GT(cold.stats.remote_hits, 0);
  EXPECT_EQ(cold_spmd, warm_spmd) << "remote hits must be byte-identical";

  // A 1-of-32 edit from another cold client: exactly the edited leaf is
  // regenerated; all 32 untouched procedures come from the daemon.
  CompileResult edited =
      compile_remote(bench::fan_out(32, 64, /*edited_leaf=*/1),
                     fresh_cache_dir(tag + "_edit"), td.endpoint(), jobs);
  EXPECT_EQ(edited.stats.generated, 1);
  EXPECT_EQ(edited.stats.summaries_computed, 1);

  td.daemon.stop();
}

INSTANTIATE_TEST_SUITE_P(Jobs, RemoteRecompilation, ::testing::Values(1, 4));

TEST(RemoteCache, RemoteOnlyClientNeedsNoLocalDirectory) {
  TestDaemon td("remote_only");
  const std::string src = bench::fan_out(8, 64);
  compile_remote(src, fresh_cache_dir("remote_only_warm"), td.endpoint(), 1);

  // dir left empty: the memory tier sits directly on the remote tier.
  CompileResult r = compile_remote(src, "", td.endpoint(), 1);
  EXPECT_EQ(r.stats.generated, 0);
  EXPECT_GT(r.stats.remote_hits, 0);
  td.daemon.stop();
}

// ---------------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------------

/// Compile with a remote tier expected to fail: the compile must succeed
/// purely locally with the breaker open.
void expect_degraded_compile(const std::string& endpoint,
                             const std::string& dir_tag) {
  CodegenOptions opt;
  opt.n_procs = 4;
  CacheOptions copt;
  copt.dir = fresh_cache_dir(dir_tag);
  copt.remote_endpoint = endpoint;
  copt.remote_timeout_ms = 50;
  Compiler compiler(opt, {}, {}, copt);
  make_impatient(compiler.remote_store());

  CompileResult r = compiler.compile_source(bench::fan_out(4, 64));
  EXPECT_EQ(r.stats.procedures, 5);
  EXPECT_EQ(r.stats.generated, 5) << "local compile must complete";
  EXPECT_TRUE(r.stats.remote_degraded);
  EXPECT_GT(r.stats.remote_errors, 0);
  EXPECT_TRUE(compiler.remote_store()->degraded());
  EXPECT_FALSE(compiler.remote_store()->degraded_reason().empty());
}

TEST(RemoteDegradation, UnreachableDaemonFallsBackToLocal) {
  // Grab a port nothing listens on: bind an ephemeral listener, read the
  // port, close it again.
  net::Listener probe;
  ASSERT_TRUE(probe.listen_on("127.0.0.1", 0));
  const int dead_port = probe.port();
  probe.close();
  expect_degraded_compile("127.0.0.1:" + std::to_string(dead_port),
                          "degrade_unreachable");
}

TEST(RemoteDegradation, MidStreamDisconnectFallsBackToLocal) {
  remote::DaemonOptions dopt;
  dopt.drop_before_reply = [](const remote::WireMessage& m) {
    return m.type == remote::MsgType::Get ||
           m.type == remote::MsgType::Put;
  };
  TestDaemon td("degrade_drop", dopt);
  expect_degraded_compile(td.endpoint(), "degrade_drop_client");
  td.daemon.stop();
}

TEST(RemoteDegradation, StalledReplyTimesOutAndFallsBackToLocal) {
  remote::DaemonOptions dopt;
  dopt.stall_reply = [](const remote::WireMessage& m) {
    return m.type == remote::MsgType::Get ||
           m.type == remote::MsgType::Put;
  };
  TestDaemon td("degrade_stall", dopt);
  expect_degraded_compile(td.endpoint(), "degrade_stall_client");
  td.daemon.stop();
}

TEST(RemoteDegradation, VersionSkewedDaemonIsRejectedAtHandshake) {
  remote::DaemonOptions dopt;
  dopt.format_hash_override = 0xdeadbeef;  // pretend a different build
  TestDaemon td("degrade_skew", dopt);

  CodegenOptions opt;
  opt.n_procs = 4;
  CacheOptions copt;
  copt.dir = fresh_cache_dir("degrade_skew_client");
  copt.remote_endpoint = td.endpoint();
  Compiler compiler(opt, {}, {}, copt);
  make_impatient(compiler.remote_store());

  CompileResult r = compiler.compile_source(bench::fan_out(4, 64));
  EXPECT_EQ(r.stats.generated, 5);
  EXPECT_EQ(r.stats.remote_hits, 0);
  EXPECT_TRUE(compiler.remote_store()->degraded());
  EXPECT_NE(compiler.remote_store()->degraded_reason().find("handshake"),
            std::string::npos)
      << compiler.remote_store()->degraded_reason();
  EXPECT_GE(td.daemon.counters().size(), 0u);  // no artifact traffic
  td.daemon.stop();
}

TEST(RemoteDegradation, CacheStatsJsonNamesEveryTier) {
  net::Listener probe;
  ASSERT_TRUE(probe.listen_on("127.0.0.1", 0));
  const int dead_port = probe.port();
  probe.close();

  CodegenOptions opt;
  opt.n_procs = 4;
  CacheOptions copt;
  copt.dir = fresh_cache_dir("stats_json");
  copt.remote_endpoint = "127.0.0.1:" + std::to_string(dead_port);
  copt.remote_timeout_ms = 50;
  Compiler compiler(opt, {}, {}, copt);
  make_impatient(compiler.remote_store());
  compiler.compile_source(bench::fan_out(4, 64));

  const std::string json = compiler.cache_stats_json();
  EXPECT_NE(json.find("\"memory\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"disk\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"remote\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Concurrency soak (loopback; run under FORTD_SANITIZE=thread)
// ---------------------------------------------------------------------------

TEST(RemoteCacheSoak, ConcurrentClientsMixGetsAndPutsByteIdentically) {
  TestDaemon td("soak");
  constexpr int kClients = 4;
  constexpr int kOps = 40;
  constexpr uint64_t kFormat = 11;

  const auto payload_for = [](uint64_t digest) {
    std::vector<uint8_t> p(64 + digest % 512);
    for (size_t i = 0; i < p.size(); ++i)
      p[i] = static_cast<uint8_t>(digest * 31 + i * 7);
    return p;
  };

  // Seed a shared region every client reads.
  {
    remote::RemoteStore seeder(client_options(td.daemon.port()));
    for (uint64_t d = 1; d <= 8; ++d)
      ASSERT_TRUE(
          seeder.put_blob("proc", d, make_blob_envelope(kFormat, d, payload_for(d))));
  }

  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      remote::RemoteStore client(client_options(td.daemon.port()));
      for (int i = 0; i < kOps; ++i) {
        // Private write, then read-back.
        const uint64_t mine = 1000 + static_cast<uint64_t>(c) * 100 +
                              static_cast<uint64_t>(i);
        const auto blob = make_blob_envelope(kFormat, mine, payload_for(mine));
        if (!client.put_blob("summary", mine, blob)) ++failures[c];
        auto got = client.get_blob("summary", kFormat, mine);
        if (!got || *got != blob) ++failures[c];
        // Shared read.
        const uint64_t shared = 1 + static_cast<uint64_t>(i) % 8;
        auto s = client.get_blob("proc", kFormat, shared);
        if (!s || *s != make_blob_envelope(kFormat, shared, payload_for(shared)))
          ++failures[c];
      }
      if (client.degraded()) ++failures[c];
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(failures[c], 0) << "client " << c;

  auto counters = td.daemon.counters();
  EXPECT_EQ(counters["summary"].puts,
            static_cast<uint64_t>(kClients * kOps));
  EXPECT_EQ(counters["summary"].get_hits,
            static_cast<uint64_t>(kClients * kOps));
  EXPECT_EQ(counters["proc"].get_hits + counters["proc"].puts,
            static_cast<uint64_t>(kClients * kOps + 8));
  td.daemon.stop();
}

}  // namespace
}  // namespace fortd
