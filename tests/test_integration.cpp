// End-to-end integration tests: whole Fortran D programs compiled under
// every strategy and run on varying machine sizes, with results checked
// against a single-processor oracle execution. This is the system-level
// correctness property behind every benchmark: all strategies and all
// machine sizes compute the same values.
#include <gtest/gtest.h>

#include <cmath>

#include "driver/compiler.hpp"

namespace fortd {
namespace {

struct ProgramCase {
  const char* name;
  const char* source;
  const char* result_array;
  DecompSpec final_spec;
};

DecompSpec spec1(DistKind k) {
  DecompSpec s;
  s.dists = {DistSpec{k, 0}};
  return s;
}

DecompSpec spec2(DistKind a, DistKind b) {
  DecompSpec s;
  s.dists = {DistSpec{a, 0}, DistSpec{b, 0}};
  return s;
}

std::vector<ProgramCase> programs() {
  std::vector<ProgramCase> out;
  out.push_back({"block_stencil", R"(
      program p
      real x(120)
      integer i
      distribute x(block)
      do i = 1, 120
        x(i) = i * 0.5
      enddo
      do i = 1, 115
        x(i) = 0.25*x(i+5) + 1.0
      enddo
      end
)", "x", spec1(DistKind::Block)});

  out.push_back({"stencil_through_call", R"(
      program p
      real x(96)
      integer i
      distribute x(block)
      do i = 1, 96
        x(i) = i * 1.0
      enddo
      call sweep(x)
      call sweep(x)
      end
      subroutine sweep(a)
      real a(96)
      integer i
      do i = 1, 93
        a(i) = 0.5*a(i+3)
      enddo
      end
)", "x", spec1(DistKind::Block)});

  out.push_back({"cyclic_scale", R"(
      program p
      real x(100)
      integer i
      distribute x(cyclic)
      do i = 1, 100
        x(i) = i * 1.0
      enddo
      do i = 1, 100
        x(i) = 3.0 * x(i)
      enddo
      end
)", "x", spec1(DistKind::Cyclic)});

  out.push_back({"column_pivot_pattern", R"(
      program p
      real a(24,24)
      integer i, j, k
      distribute a(:,cyclic)
      do j = 1, 24
        do i = 1, 24
          a(i,j) = modp(i*5 + j*11, 7) + 1
        enddo
      enddo
      do k = 1, 23
        do j = k+1, 24
          call update(a, k, j, 24)
        enddo
      enddo
      end
      subroutine update(a, k, j, n)
      real a(24,24)
      integer k, j, n, i
      do i = k+1, n
        a(i,j) = a(i,j) + 0.001 * a(i,k)
      enddo
      end
)", "a", spec2(DistKind::None, DistKind::Cyclic)});

  out.push_back({"reduction_scalar", R"(
      program p
      real a(16,16)
      real total
      integer i, j, k
      distribute a(:,block)
      do j = 1, 16
        do i = 1, 16
          a(i,j) = i + j*0.5
        enddo
      enddo
      total = 0.0
      do k = 1, 16
        call colsum(a, k, 16, total)
      enddo
      end
      subroutine colsum(a, k, n, total)
      real a(16,16)
      integer k, n, i
      real total
      do i = 1, n
        total = total + a(i,k)
      enddo
      end
)", "a", spec2(DistKind::None, DistKind::Block)});

  out.push_back({"flow_carried_recurrence", R"(
      program p
      real x(64)
      integer i
      distribute x(block)
      do i = 1, 64
        x(i) = i*1.0
      enddo
      call prefix(x)
      end
      subroutine prefix(a)
      real a(64)
      integer i
      do i = 2, 64
        a(i) = a(i) + a(i-1)
      enddo
      end
)", "x", spec1(DistKind::Block)});

  out.push_back({"global_sum_then_scale", R"(
      program p
      real x(80)
      real total
      integer i
      distribute x(block)
      do i = 1, 80
        x(i) = 1.0
      enddo
      total = 0.0
      do i = 1, 80
        total = total + x(i)
      enddo
      do i = 1, 80
        x(i) = x(i) * total
      enddo
      end
)", "x", spec1(DistKind::Block)});

  out.push_back({"redistribution", R"(
      program p
      real x(64)
      integer i, k
      distribute x(block)
      do i = 1, 64
        x(i) = i*1.0
      enddo
      do k = 1, 3
        call bump(x)
      enddo
      end
      subroutine bump(x)
      real x(64)
      integer i
      distribute x(cyclic)
      do i = 1, 64
        x(i) = x(i) + 1.0
      enddo
      end
)", "x", spec1(DistKind::Block)});
  return out;
}

struct IntegrationCase {
  ProgramCase program;
  Strategy strategy;
  int procs;
};

std::string case_name(const ::testing::TestParamInfo<IntegrationCase>& info) {
  const char* strat = info.param.strategy == Strategy::Interprocedural ? "inter"
                      : info.param.strategy == Strategy::Intraprocedural
                          ? "intra"
                          : "runtime";
  return std::string(info.param.program.name) + "_" + strat + "_p" +
         std::to_string(info.param.procs);
}

class StrategyEquivalence : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(StrategyEquivalence, MatchesSingleProcessorOracle) {
  const auto& c = GetParam();

  // Oracle: one processor, interprocedural (equivalent to sequential).
  CodegenOptions oracle_opt;
  oracle_opt.n_procs = 1;
  Compiler oracle(oracle_opt);
  RunResult expect = simulate(oracle.compile_source(c.program.source).spmd);
  auto want = expect.gather(c.program.result_array, c.program.final_spec);

  CodegenOptions opt;
  opt.n_procs = c.procs;
  opt.strategy = c.strategy;
  Compiler compiler(opt);
  RunResult run = simulate(compiler.compile_source(c.program.source).spmd);
  auto got = run.gather(c.program.result_array, c.program.final_spec);

  ASSERT_EQ(got.size(), want.size());
  double max_err = 0.0;
  for (size_t i = 0; i < got.size(); ++i)
    max_err = std::max(max_err, std::fabs(got[i] - want[i]));
  EXPECT_LT(max_err, 1e-9);
}

std::vector<IntegrationCase> make_cases() {
  std::vector<IntegrationCase> cases;
  for (const auto& prog : programs())
    for (Strategy s : {Strategy::Interprocedural, Strategy::Intraprocedural,
                       Strategy::RuntimeResolution})
      for (int p : {2, 4, 7})
        cases.push_back({prog, s, p});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, StrategyEquivalence,
                         ::testing::ValuesIn(make_cases()), case_name);

// ---------------------------------------------------------------------------
// Strategy performance ordering: the paper's headline claims.
// ---------------------------------------------------------------------------

TEST(StrategyOrdering, RuntimeResolutionIsSlowest) {
  const char* src = programs()[1].source;  // stencil through a call
  auto time_of = [&](Strategy s) {
    CodegenOptions opt;
    opt.n_procs = 4;
    opt.strategy = s;
    Compiler compiler(opt);
    return simulate(compiler.compile_source(src).spmd);
  };
  RunResult inter = time_of(Strategy::Interprocedural);
  RunResult runtime = time_of(Strategy::RuntimeResolution);
  EXPECT_LT(inter.sim_time_us, runtime.sim_time_us);
  // Run-time resolution sends an element message per nonlocal access; the
  // compiled code sends one vectorized message per boundary (the ratio is
  // the shift width here, and grows with it).
  EXPECT_GT(runtime.messages, inter.messages);
}

TEST(StrategyOrdering, InterproceduralBeatsIntraproceduralOnCalls) {
  // Figure 4 program: the caller-loop vectorization is the whole game.
  const char* src = R"(
      program p1
      real x(100,100)
      integer i
      distribute x(block,:)
      do i = 1, 100
        call f1(x, i)
      enddo
      end
      subroutine f1(z, i)
      real z(100,100)
      integer i, k
      do k = 1, 95
        z(k,i) = 0.5*z(k+5,i)
      enddo
      end
)";
  auto run_of = [&](Strategy s) {
    CodegenOptions opt;
    opt.n_procs = 4;
    opt.strategy = s;
    Compiler compiler(opt);
    return simulate(compiler.compile_source(src).spmd);
  };
  RunResult inter = run_of(Strategy::Interprocedural);
  RunResult intra = run_of(Strategy::Intraprocedural);
  EXPECT_EQ(inter.messages, 3);
  EXPECT_EQ(intra.messages, 300);
  EXPECT_LT(inter.sim_time_us, intra.sim_time_us);
}

TEST(Scaling, ComputeBoundProblemSpeedsUpWithProcessors) {
  const char* src = R"(
      program p
      real x(4096)
      integer i, t
      distribute x(block)
      do i = 1, 4096
        x(i) = i*1.0
      enddo
      do t = 1, 5
        do i = 1, 4091
          x(i) = 0.2*x(i+5) + 0.8*x(i)
        enddo
      enddo
      end
)";
  auto time_at = [&](int procs) {
    CodegenOptions opt;
    opt.n_procs = procs;
    Compiler compiler(opt);
    return simulate(compiler.compile_source(src).spmd).sim_time_us;
  };
  double t1 = time_at(1);
  double t4 = time_at(4);
  double t8 = time_at(8);
  EXPECT_LT(t4, t1 / 2.0);
  EXPECT_LT(t8, t4);
}

}  // namespace
}  // namespace fortd
