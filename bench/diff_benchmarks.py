#!/usr/bin/env python3
"""Diff freshly produced google-benchmark JSON against committed baselines.

    bench/diff_benchmarks.py [--baseline-dir DIR] [--new-dir DIR]
                             [--threshold FRACTION]

For every BENCH_<name>.json present in *both* directories, benchmarks are
matched by their "name" field and compared on wall-clock ("real_time",
normalized to nanoseconds). The script exits 1 when any benchmark's new
wall time exceeds baseline * (1 + threshold) — default threshold 0.25,
i.e. a >25% regression fails CI.

Individual benchmarks may carry a wider threshold via PER_BENCH_THRESHOLD
(matched by longest prefix of the benchmark name): scheduler and
remote-cache microbenches time thread handoffs and socket round trips,
which jitter far beyond 25% on loaded CI machines without any code
change. --threshold only moves the global default; the per-bench
overrides always win where they are wider.

Benchmarks or whole files present on only one side are reported but never
fail the diff: adding a benchmark (or retiring one) is not a regression.
A fresh BENCH_<name>.json with no committed baseline (a newly added bench
binary) is announced with re-baselining instructions and skipped — the
diff still exits 0. Counter-only entries without timings are skipped.

Typical CI sequence:

    cmake -B build -S . && cmake --build build -j
    bench/run_benchmarks.sh build /tmp/bench-out
    bench/diff_benchmarks.py --new-dir /tmp/bench-out

Re-baselining (after an intentional perf change, or when a new benchmark
should start being tracked): regenerate the JSON on a quiet machine and
commit it at the repo root —

    bench/run_benchmarks.sh build .
    git add BENCH_<name>.json

Only files committed at the baseline dir (repo root by default) are
tracked; the diff is a no-op for benchmarks without a baseline.
"""
import argparse
import json
import pathlib
import sys

TIME_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Benchmark-name prefix -> allowed fractional slowdown. Used when wider
# than the global --threshold; longest matching prefix wins. These are
# the benches whose timed region is dominated by thread scheduling or
# loopback sockets rather than compiler code.
PER_BENCH_THRESHOLD = {
    "BM_WorkStealingVsWavefront": 0.60,  # 33-proc graph, µs-scale tasks
    "BM_ParallelCodegen": 0.50,          # thread handoff dominated
    "BM_ParallelIpa": 0.50,
    "BM_CodeGeneration": 0.50,           # ms-scale; ±30% run-to-run jitter
    "BM_FullCompile": 0.50,
    "BM_CachedRecompile": 0.50,
    "BM_ParseAndBind": 0.50,             # µs-scale; timer-granularity bound
    "BM_VectorizationAblation": 0.60,    # Iterations(1): single-shot timing
    "BM_RemoteHit": 0.60,                # loopback socket latency
    "BM_RemoteMissPenalty": 0.60,
    "BM_WavefrontPrefetch": 0.60,
    "BM_ShardedFleet": 0.60,
    "BM_WarmDaemonCompile": 0.60,        # loopback COMPILE round trip
    "BM_ColdProcessRecompile": 0.50,
    "BM_LocalWarmCompile": 0.50,
}


def threshold_for(name, default):
    """Per-benchmark threshold: the widest of the global default and the
    longest PER_BENCH_THRESHOLD prefix matching `name`."""
    best_len = -1
    best = default
    for prefix, frac in PER_BENCH_THRESHOLD.items():
        if name.startswith(prefix) and len(prefix) > best_len:
            best_len = len(prefix)
            best = max(frac, default)
    return best


def load_timings(path):
    """name -> real_time in ns for every timed benchmark in a JSON file,
    or None when the file is unreadable (e.g. a truncated run)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"-- {path}: unreadable ({e}); skipped", file=sys.stderr)
        return None
    out = {}
    for bm in data.get("benchmarks", []):
        if bm.get("run_type") == "aggregate" and bm.get("aggregate_name") != "mean":
            continue
        if "real_time" not in bm:
            continue
        unit = TIME_UNITS_NS.get(bm.get("time_unit", "ns"), 1.0)
        out[bm["name"]] = bm["real_time"] * unit
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def main():
    ap = argparse.ArgumentParser(
        description="fail on benchmark wall-time regressions")
    ap.add_argument("--baseline-dir", default=".",
                    help="directory holding committed BENCH_*.json "
                         "(default: repo root)")
    ap.add_argument("--new-dir", default=".",
                    help="directory holding freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional slowdown before failing "
                         "(default 0.25 = 25%%)")
    args = ap.parse_args()

    baseline_dir = pathlib.Path(args.baseline_dir)
    new_dir = pathlib.Path(args.new_dir)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"diff_benchmarks: no BENCH_*.json under {baseline_dir}; "
              "nothing to diff")
        return 0

    # Fresh results for bench binaries that have no committed baseline yet
    # (e.g. a benchmark added in this very change): warn and skip — never
    # a failure, but loud enough that someone commits a baseline.
    baseline_names = {p.name for p in baselines}
    if new_dir.resolve() != baseline_dir.resolve():
        for new_path in sorted(new_dir.glob("BENCH_*.json")):
            if new_path.name not in baseline_names:
                print(f"-- {new_path.name}: no committed baseline under "
                      f"{baseline_dir} (skipped); to start tracking it: "
                      f"cp {new_path} {baseline_dir}/ && git add "
                      f"{new_path.name}", file=sys.stderr)

    regressions = []
    compared = 0
    for base_path in baselines:
        new_path = new_dir / base_path.name
        if not new_path.exists():
            print(f"-- {base_path.name}: no fresh run (skipped)")
            continue
        base = load_timings(base_path)
        new = load_timings(new_path)
        if base is None or new is None:
            continue
        for name in sorted(base):
            if name not in new:
                print(f"-- {base_path.name}: '{name}' retired (skipped)")
                continue
            compared += 1
            ratio = new[name] / base[name] if base[name] > 0 else 1.0
            limit = threshold_for(name, args.threshold)
            marker = "REGRESSION" if ratio > 1 + limit else "ok"
            note = f" [limit {limit * 100:.0f}%]" if limit != args.threshold \
                else ""
            print(f"{marker:>10}  {name}: {fmt_ns(base[name])} -> "
                  f"{fmt_ns(new[name])}  ({(ratio - 1) * 100:+.1f}%){note}")
            if ratio > 1 + limit:
                regressions.append((name, ratio))
        for name in sorted(set(new) - set(base)):
            print(f"       new  {name}: {fmt_ns(new[name])} (no baseline)")

    if regressions:
        print(f"\ndiff_benchmarks: {len(regressions)} regression(s) beyond "
              f"{args.threshold * 100:.0f}% (see docstring for re-baselining)")
        return 1
    print(f"\ndiff_benchmarks: {compared} benchmark(s) within "
          f"{args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
