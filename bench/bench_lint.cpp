// Lint-pass and SPMD-verifier throughput: the -analyze phases reuse the
// products every compile already builds, so they should stay a small
// fraction of the end-to-end compile time even as the program grows.
#include <benchmark/benchmark.h>

#include "analysis/lint/lint.hpp"
#include "analysis/lint/spmd_verifier.hpp"
#include "driver/compiler.hpp"
#include "ipa/alias.hpp"
#include "programs.hpp"
#include "support/thread_pool.hpp"

namespace {

void BM_LintPass(benchmark::State& state) {
  std::string src =
      fortd::bench::call_chain(static_cast<int>(state.range(0)), 256);
  fortd::BoundProgram bp = fortd::parse_and_bind(src);
  fortd::IpaContext ctx = fortd::run_ipa(bp);
  fortd::OverlapEstimates overlaps =
      fortd::compute_overlap_estimates(bp, ctx.acg, ctx.summaries);
  fortd::CodegenOptions opt;
  opt.n_procs = 8;
  fortd::LintDriver linter;
  fortd::LintContext lint_ctx{bp, ctx, overlaps, opt};
  for (auto _ : state) {
    fortd::LintReport report = linter.run(lint_ctx);
    { auto sink = report.diags.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["procs"] =
      static_cast<double>(bp.ast.procedures.size());
}

void BM_LintPassParallel(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  std::string src = fortd::bench::fan_out(32, 256);
  fortd::BoundProgram bp = fortd::parse_and_bind(src);
  fortd::IpaContext ctx = fortd::run_ipa(bp);
  fortd::OverlapEstimates overlaps =
      fortd::compute_overlap_estimates(bp, ctx.acg, ctx.summaries);
  fortd::CodegenOptions opt;
  opt.n_procs = 8;
  fortd::LintDriver linter;
  fortd::LintContext lint_ctx{bp, ctx, overlaps, opt};
  fortd::ThreadPool pool(jobs - 1);
  for (auto _ : state) {
    fortd::LintReport report = linter.run(lint_ctx, &pool);
    { auto sink = report.diags.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["jobs"] = jobs;
}

void BM_SpmdVerifier(benchmark::State& state) {
  std::string src =
      fortd::bench::call_chain(static_cast<int>(state.range(0)), 256);
  fortd::CodegenOptions opt;
  opt.n_procs = 8;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(src);
  for (auto _ : state) {
    fortd::SpmdVerifyReport report = fortd::verify_spmd(r.spmd);
    { auto sink = report.matched; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sends"] = 0;
  {
    fortd::SpmdVerifyReport report = fortd::verify_spmd(r.spmd);
    state.counters["sends"] = report.sends;
    state.counters["unmatched"] = report.unmatched;
  }
}

// Interprocedural may-alias propagation over the ACG (serial vs the
// work-stealing TaskGraph): runs once per IPA round, so it must stay
// cheap relative to summary/side-effect propagation.
void BM_AliasAnalysis(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  std::string src = fortd::bench::cloning_fanout(16, 3, 64);
  fortd::BoundProgram bp = fortd::parse_and_bind(src);
  fortd::AugmentedCallGraph acg = fortd::AugmentedCallGraph::build(bp);
  fortd::ThreadPool pool(jobs > 1 ? jobs - 1 : 0);
  fortd::ThreadPool* p = jobs > 1 ? &pool : nullptr;
  for (auto _ : state) {
    fortd::AliasMap am = fortd::compute_alias_map(bp, acg, p);
    { auto sink = am.total_pairs(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["procs"] = static_cast<double>(bp.ast.procedures.size());
  state.counters["jobs"] = jobs;
}

// The order-sensitive deadlock simulation rides on every clean verify
// scope; measure the verifier end-to-end on comm-heavy generated code at
// a processor count that exercises the per-processor sequences.
void BM_DeadlockSim(benchmark::State& state) {
  const int n_procs = static_cast<int>(state.range(0));
  std::string src = fortd::bench::call_chain(32, 256);
  fortd::CodegenOptions opt;
  opt.n_procs = n_procs;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(src);
  for (auto _ : state) {
    fortd::SpmdVerifyReport report = fortd::verify_spmd(r.spmd);
    { auto sink = report.deadlocks; benchmark::DoNotOptimize(sink); }
  }
  {
    fortd::SpmdVerifyReport report = fortd::verify_spmd(r.spmd);
    state.counters["sends"] = report.sends;
    state.counters["collectives"] = report.collectives;
    state.counters["deadlocks"] = report.deadlocks;
  }
}

}  // namespace

BENCHMARK(BM_LintPass)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LintPassParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpmdVerifier)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AliasAnalysis)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeadlockSim)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
