// Shared Fortran D workload generators for the benchmark harness.
// Each generator corresponds to a program from the paper (Figures 1, 4,
// 15, and the dgefa case study), parameterized by problem size.
#pragma once

#include <string>

namespace fortd::bench {

/// Figure 1: 1-D BLOCK stencil inside a subroutine.
inline std::string stencil1d(int64_t n, int shift = 5) {
  std::string N = std::to_string(n);
  std::string S = std::to_string(shift);
  return R"(
      program p1
      real x()" + N + R"()
      integer i
      distribute x(block)
      do i = 1, )" + N + R"(
        x(i) = i * 0.5
      enddo
      call f1(x)
      end
      subroutine f1(x)
      real x()" + N + R"()
      integer i
      do i = 1, )" + N + " - " + S + R"(
        x(i) = 0.25*x(i+)" + S + R"() + 1.0
      enddo
      end
)";
}

/// Figure 4: 2-D program whose subroutine is called under row-BLOCK and
/// column-BLOCK reaching decompositions; `trips` caller iterations.
inline std::string fig4(int64_t n, int64_t trips) {
  std::string N = std::to_string(n);
  std::string T = std::to_string(trips);
  return R"(
      program p1
      real x()" + N + "," + N + R"()
      real y()" + N + "," + N + R"()
      integer i, j
      align y(i,j) with x(j,i)
      distribute x(block,:)
      do i = 1, )" + N + R"(
        do j = 1, )" + N + R"(
          x(i,j) = i + 0.01*j
          y(i,j) = j + 0.01*i
        enddo
      enddo
      do i = 1, )" + T + R"(
        call f1(x, i)
      enddo
      do j = 1, )" + T + R"(
        call f1(y, j)
      enddo
      end
      subroutine f1(z, i)
      real z()" + N + "," + N + R"()
      integer i, k
      do k = 1, )" + N + R"( - 5
        z(k,i) = 0.5*z(k+5,i)
      enddo
      end
)";
}

/// Figure 15: time-step loop with a redistributing callee.
inline std::string fig15(int64_t n, int64_t steps) {
  std::string N = std::to_string(n);
  std::string T = std::to_string(steps);
  return R"(
      program p1
      real x()" + N + R"()
      integer k, i
      distribute x(block)
      do i = 1, )" + N + R"(
        x(i) = i * 1.0
      enddo
      do k = 1, )" + T + R"(
        call f1(x)
        call f1(x)
      enddo
      call f2(x)
      end
      subroutine f1(x)
      real x()" + N + R"()
      integer i
      distribute x(cyclic)
      do i = 1, )" + N + R"(
        x(i) = x(i) + 1.0
      enddo
      end
      subroutine f2(x)
      real x()" + N + R"()
      integer i
      do i = 1, )" + N + R"(
        x(i) = 2.0 * i
      enddo
      end
)";
}

/// The dgefa case study: LU factorization with partial pivoting, the
/// matrix CYCLIC by columns, BLAS-style leaf subroutines.
inline std::string dgefa(int64_t n) {
  std::string N = std::to_string(n);
  return R"(
      program main
      parameter (n = )" + N + R"()
      real a(n,n)
      real ipvt(n)
      integer i, j, k, ip
      distribute a(:,cyclic)
      do j = 1, n
        do i = 1, n
          a(i,j) = modp(i*7 + j*3, 13) + 1
        enddo
        a(j,j) = a(j,j) + n*13
      enddo
      do k = 1, n-1
        call idamax(a, k, n, ip)
        ipvt(k) = ip
        if (ip .ne. k) then
          call dswap(a, k, ip, n)
        endif
        call dscal(a, k, n)
        do j = k+1, n
          call daxpy(a, k, j, n)
        enddo
      enddo
      end

      subroutine idamax(a, k, n, ip)
      parameter (nmax = )" + N + R"()
      real a(nmax,nmax)
      integer k, n, ip, i
      real tmax
      tmax = 0.0
      ip = k
      do i = k, n
        if (abs(a(i,k)) .gt. tmax) then
          tmax = abs(a(i,k))
          ip = i
        endif
      enddo
      end

      subroutine dswap(a, k, ip, n)
      parameter (nmax = )" + N + R"()
      real a(nmax,nmax)
      integer k, ip, n, j
      real t1
      do j = 1, n
        t1 = a(k,j)
        a(k,j) = a(ip,j)
        a(ip,j) = t1
      enddo
      end

      subroutine dscal(a, k, n)
      parameter (nmax = )" + N + R"()
      real a(nmax,nmax)
      integer k, n, i
      do i = k+1, n
        a(i,k) = a(i,k) / a(k,k)
      enddo
      end

      subroutine daxpy(a, k, j, n)
      parameter (nmax = )" + N + R"()
      real a(nmax,nmax)
      integer k, j, n, i
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      end
)";
}

/// A call chain of `depth` procedures for recompilation / compile-time
/// studies; each level calls the next and does local stencil work.
inline std::string call_chain(int depth, int64_t n) {
  std::string N = std::to_string(n);
  std::string src = R"(
      program p
      real x()" + N + R"()
      integer i
      distribute x(block)
      do i = 1, )" + N + R"(
        x(i) = i*1.0
      enddo
      call level1(x)
      end
)";
  for (int d = 1; d <= depth; ++d) {
    src += "\n      subroutine level" + std::to_string(d) + "(a)\n";
    src += "      real a(" + N + ")\n      integer i\n";
    src += "      do i = 1, " + N + " - 2\n";
    src += "        a(i) = 0.5*a(i+" + std::to_string(1 + d % 2) + ")\n";
    src += "      enddo\n";
    if (d < depth)
      src += "      call level" + std::to_string(d + 1) + "(a)\n";
    src += "      end\n";
  }
  return src;
}

/// A wide fan-out: the program calls `width` independent leaf subroutines
/// once each, so the ACG has two wavefront levels (all leaves, then the
/// program) and the leaves can be generated fully in parallel. Exercises
/// the parallel-codegen scheduler and the procedure cache.
/// `edited_leaf`, when in [1, width], perturbs that leaf's body
/// (a different stencil coefficient) to model a one-procedure edit: the
/// leaf's structural hash changes while its exported interface (same
/// shift distance, same formals) stays identical.
inline std::string fan_out(int width, int64_t n, int edited_leaf = 0) {
  std::string N = std::to_string(n);
  std::string src = R"(
      program p
      real x()" + N + R"()
      integer i
      distribute x(block)
      do i = 1, )" + N + R"(
        x(i) = i*1.0
      enddo
)";
  for (int d = 1; d <= width; ++d)
    src += "      call leaf" + std::to_string(d) + "(x)\n";
  src += "      end\n";
  for (int d = 1; d <= width; ++d) {
    std::string coeff = d == edited_leaf ? "0.25" : "0.5";
    std::string shift = std::to_string(1 + d % 3);
    src += "\n      subroutine leaf" + std::to_string(d) + "(a)\n";
    src += "      real a(" + N + ")\n      integer i\n";
    src += "      do i = 1, " + N + " - 3\n";
    src += "        a(i) = " + coeff + "*a(i+" + shift + ")\n";
    src += "      enddo\n      end\n";
  }
  return src;
}

/// A serial call chain of `depth` procedures next to `width` independent
/// leaves, all called from the program — the shape that separates the
/// barrier-free scheduler from the depth-leveled wavefront. The ACG has
/// depth+1 levels; every leaf sits at the chain's deepest level, so the
/// wavefront generates the wide leaf level first, then pays a one-
/// procedure barrier per chain link with every other worker idle. The
/// work-stealing schedule overlaps the chain with the leaves: its span
/// is max(chain, leaves/jobs) instead of their sum.
inline std::string chain_fanout(int depth, int width, int64_t n) {
  std::string N = std::to_string(n);
  std::string src = R"(
      program p
      real x()" + N + R"()
      integer i
      distribute x(block)
      do i = 1, )" + N + R"(
        x(i) = i*1.0
      enddo
      call chain1(x)
)";
  for (int d = 1; d <= width; ++d)
    src += "      call wide" + std::to_string(d) + "(x)\n";
  src += "      end\n";
  for (int d = 1; d <= depth; ++d) {
    src += "\n      subroutine chain" + std::to_string(d) + "(a)\n";
    src += "      real a(" + N + ")\n      integer i\n";
    src += "      do i = 1, " + N + " - 2\n";
    src += "        a(i) = 0.5*a(i+" + std::to_string(1 + d % 2) + ")\n";
    src += "      enddo\n";
    if (d < depth)
      src += "      call chain" + std::to_string(d + 1) + "(a)\n";
    src += "      end\n";
  }
  for (int d = 1; d <= width; ++d) {
    std::string shift = std::to_string(1 + d % 3);
    src += "\n      subroutine wide" + std::to_string(d) + "(a)\n";
    src += "      real a(" + N + ")\n      integer i\n";
    src += "      do i = 1, " + N + " - 3\n";
    src += "        a(i) = 0.5*a(i+" + shift + ")\n";
    src += "      enddo\n      end\n";
  }
  return src;
}

/// A hub procedure invoked with `variants` distinct decompositions —
/// drives the cloning-growth study.
inline std::string cloning_hub(int variants, int64_t n) {
  std::string N = std::to_string(n);
  std::string src = "      program p\n";
  for (int v = 0; v < variants; ++v)
    src += "      real a" + std::to_string(v) + "(" + N + "," + N + ")\n";
  src += "      integer i\n";
  for (int v = 0; v < variants; ++v) {
    // Distinct BLOCK_CYCLIC block sizes make every call site's reaching
    // decomposition unique.
    src += "      distribute a" + std::to_string(v) + "(block_cyclic(" +
           std::to_string(v + 1) + "),:)\n";
  }
  for (int v = 0; v < variants; ++v) {
    src += "      do i = 1, " + N + "\n";
    src += "        call hub(a" + std::to_string(v) + ", i)\n";
    src += "      enddo\n";
  }
  src += "      end\n";
  src += "      subroutine hub(z, i)\n      real z(" + N + "," + N + ")\n";
  src += "      integer i, k\n      do k = 1, " + N + " - 1\n";
  src += "        z(k,i) = 0.5*z(k+1,i)\n      enddo\n      end\n";
  return src;
}

/// `width` independent stencil leaves plus a hub invoked under `variants`
/// distinct decompositions. The cloning fixed point needs an extra round
/// for the hub's clones while the leaves never change, so incremental IPA
/// re-analyzes only the clones and the retargeted main program — the
/// leaves' summaries/effects/reaching are carried over.
inline std::string cloning_fanout(int width, int variants, int64_t n) {
  std::string N = std::to_string(n);
  std::string src = "      program p\n";
  src += "      real x(" + N + ")\n";
  for (int v = 0; v < variants; ++v)
    src += "      real a" + std::to_string(v) + "(" + N + "," + N + ")\n";
  src += "      integer i\n";
  src += "      distribute x(block)\n";
  for (int v = 0; v < variants; ++v)
    src += "      distribute a" + std::to_string(v) + "(block_cyclic(" +
           std::to_string(v + 1) + "),:)\n";
  src += "      do i = 1, " + N + "\n        x(i) = i*1.0\n      enddo\n";
  for (int d = 1; d <= width; ++d)
    src += "      call leaf" + std::to_string(d) + "(x)\n";
  for (int v = 0; v < variants; ++v) {
    src += "      do i = 1, " + N + "\n";
    src += "        call hub(a" + std::to_string(v) + ", i)\n";
    src += "      enddo\n";
  }
  src += "      end\n";
  for (int d = 1; d <= width; ++d) {
    std::string shift = std::to_string(1 + d % 3);
    src += "\n      subroutine leaf" + std::to_string(d) + "(a)\n";
    src += "      real a(" + N + ")\n      integer i\n";
    src += "      do i = 1, " + N + " - 3\n";
    src += "        a(i) = 0.5*a(i+" + shift + ")\n";
    src += "      enddo\n      end\n";
  }
  src += "\n      subroutine hub(z, i)\n      real z(" + N + "," + N + ")\n";
  src += "      integer i, k\n      do k = 1, " + N + " - 1\n";
  src += "        z(k,i) = 0.5*z(k+1,i)\n      enddo\n      end\n";
  return src;
}

}  // namespace fortd::bench
