// E10 — the dgefa case study (paper §1/§9).
//
// LU factorization with partial pivoting, matrix CYCLIC by columns,
// leaf subroutines compiled interprocedurally. Swept over matrix size,
// machine size, and compilation strategy. Expected shape: interprocedural
// compilation dominates run-time resolution by a widening margin;
// speedup over 1 processor grows with N (communication-bound at small N).
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

double g_seq_time_us[512] = {};  // indexed by n, filled by the P=1 run

void run_dgefa(benchmark::State& state, fortd::Strategy strategy) {
  const int64_t n = state.range(0);
  const int procs = static_cast<int>(state.range(1));
  fortd::CodegenOptions opt;
  opt.n_procs = procs;
  opt.strategy = strategy;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(fortd::bench::dgefa(n));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["kbytes"] = static_cast<double>(last.bytes) / 1024.0;
  if (strategy == fortd::Strategy::Interprocedural) {
    if (procs == 1 && n < 512) g_seq_time_us[n] = last.sim_time_us;
    if (procs > 1 && n < 512 && g_seq_time_us[n] > 0)
      state.counters["speedup"] = g_seq_time_us[n] / last.sim_time_us;
  }
}

void BM_DgefaInterprocedural(benchmark::State& state) {
  run_dgefa(state, fortd::Strategy::Interprocedural);
}
void BM_DgefaIntraprocedural(benchmark::State& state) {
  run_dgefa(state, fortd::Strategy::Intraprocedural);
}
void BM_DgefaRuntimeResolution(benchmark::State& state) {
  run_dgefa(state, fortd::Strategy::RuntimeResolution);
}

}  // namespace

BENCHMARK(BM_DgefaInterprocedural)
    ->ArgsProduct({{32, 64, 96, 144}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DgefaIntraprocedural)
    ->ArgsProduct({{32, 64}, {4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DgefaRuntimeResolution)
    ->ArgsProduct({{32, 64}, {4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
