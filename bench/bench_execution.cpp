// Execution backends head to head: the threaded message-passing runtime
// vs the logical-clock simulator vs the serial reference, on the same
// compiled SPMD programs at P=4. The simulator charges a CostModel but
// runs on one thread; the threaded backend spends real wall-clock time
// blocking on rendezvous channels. Both report identical message/byte
// counts (the harness asserts this in tests/test_runtime.cpp) — what
// this benchmark adds is the *time* comparison, and a sanity check that
// a real P=4 execution is not absurdly slower than simulating it.
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "frontend/parser.hpp"
#include "programs.hpp"
#include "runtime/backend.hpp"

namespace {

/// Jacobi relaxation, the paper's simplest pipeline: a 1-D ping-pong
/// stencil with BLOCK edges exchanged every sweep.
std::string jacobi(int64_t n, int64_t steps) {
  std::string N = std::to_string(n);
  std::string T = std::to_string(steps);
  return R"(
      program jacobi
      real u()" + N + R"()
      real unew()" + N + R"()
      integer i, t
      distribute u(block)
      distribute unew(block)
      do i = 1, )" + N + R"(
        u(i) = modp(i*13, 97) * 1.0
      enddo
      do t = 1, )" + T + R"(
        do i = 2, )" + N + R"( - 1
          unew(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
        do i = 2, )" + N + R"( - 1
          u(i) = unew(i)
        enddo
      enddo
      end
)";
}

std::string program_for(int64_t which, int64_t n, int64_t steps) {
  return which == 0 ? jacobi(n, steps) : fortd::bench::fig15(n, steps);
}

void run_backend(benchmark::State& state, fortd::BackendKind kind) {
  const int64_t which = state.range(0);
  const int64_t n = state.range(1);
  const int64_t steps = state.range(2);
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r =
      compiler.compile_source(program_for(which, n, steps));
  fortd::ExecResult last;
  for (auto _ : state) {
    last = fortd::make_backend(kind)->execute(r.spmd);
    { auto sink = last.messages; benchmark::DoNotOptimize(sink); }
  }
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["bytes"] = static_cast<double>(last.bytes);
  state.counters["remap_bytes"] = static_cast<double>(last.remap_bytes);
  if (last.sim_time_us > 0) state.counters["sim_ms"] = last.sim_time_us / 1000.0;
}

void BM_ThreadedRun(benchmark::State& state) {
  run_backend(state, fortd::BackendKind::Threaded);
}

void BM_SimulatedRun(benchmark::State& state) {
  run_backend(state, fortd::BackendKind::Simulator);
}

void BM_SerialRun(benchmark::State& state) {
  const int64_t which = state.range(0);
  const int64_t n = state.range(1);
  const int64_t steps = state.range(2);
  fortd::SourceProgram ast =
      fortd::parse_program(program_for(which, n, steps));
  fortd::ExecResult last;
  for (auto _ : state) {
    last = fortd::run_serial_reference(ast);
    { auto sink = last.wall_ms; benchmark::DoNotOptimize(sink); }
  }
}

}  // namespace

// range(0): 0 = jacobi (stencil edge exchange), 1 = fig15 (block<->cyclic
// redistribution traffic). range(1): array extent. range(2): time steps.
#define FORTD_EXEC_ARGS \
  ->ArgsProduct({{0, 1}, {256, 1024}, {20}})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_ThreadedRun) FORTD_EXEC_ARGS;
BENCHMARK(BM_SimulatedRun) FORTD_EXEC_ARGS;
BENCHMARK(BM_SerialRun) FORTD_EXEC_ARGS;

BENCHMARK_MAIN();
