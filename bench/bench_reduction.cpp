// E15 (extension) — reduction recognition (collective communication).
//
// A global sum over a distributed vector. Recognized reductions compile
// to per-processor partial sums plus one allreduce (2(P-1) scalar
// messages); run-time resolution broadcasts every element. The gap is the
// strongest of any pattern because the unrecognized form serializes the
// whole vector through messages.
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"

namespace {

std::string sum_source(int64_t n) {
  std::string N = std::to_string(n);
  return "      program p\n      real x(" + N +
         ")\n      real total\n      integer i\n"
         "      distribute x(block)\n"
         "      do i = 1, " + N + "\n        x(i) = i*1.0\n      enddo\n"
         "      total = 0.0\n"
         "      do i = 1, " + N + "\n        total = total + x(i)\n      enddo\n"
         "      end\n";
}

void run_sum(benchmark::State& state, fortd::Strategy strategy) {
  const int64_t n = state.range(0);
  const int procs = static_cast<int>(state.range(1));
  fortd::CodegenOptions opt;
  opt.n_procs = procs;
  opt.strategy = strategy;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(sum_source(n));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["msgs"] = static_cast<double>(last.messages);
  // Sanity: the collective must produce the exact sum.
  state.counters["total_ok"] =
      last.gather_scalar("total") == 0.5 * static_cast<double>(n) * (n + 1)
          ? 1
          : 0;
}

void BM_RecognizedReduction(benchmark::State& state) {
  run_sum(state, fortd::Strategy::Interprocedural);
}

void BM_RuntimeResolvedReduction(benchmark::State& state) {
  run_sum(state, fortd::Strategy::RuntimeResolution);
}

}  // namespace

BENCHMARK(BM_RecognizedReduction)
    ->ArgsProduct({{1024, 8192}, {2, 4, 8, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RuntimeResolvedReduction)
    ->ArgsProduct({{1024}, {2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
