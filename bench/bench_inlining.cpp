// E13 (extension) — inlining vs interprocedural compilation (§4, §10).
//
// ParaScope supports inlining as the classical way to expose calling
// context. For the Fig. 4 program, inlining the callee into the caller
// lets purely intraprocedural machinery match interprocedural quality —
// at the price of program growth and the loss of separate compilation
// (every edit recompiles the whole inlined program). The counters report
// generated message counts (equal when both succeed) and program sizes.
#include <benchmark/benchmark.h>

#include "ipa/inlining.hpp"
#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

int count_statements(const fortd::SourceProgram& prog) {
  int n = 0;
  for (const auto& p : prog.procedures)
    fortd::walk_stmts(p->body, [&](const fortd::Stmt&) { ++n; });
  return n;
}

void BM_Interprocedural(benchmark::State& state) {
  std::string src = fortd::bench::fig4(128, 128);
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(src);
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.messages; benchmark::DoNotOptimize(sink); }
  }
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["statements"] = count_statements(r.spmd.ast);
}

void BM_FullyInlined(benchmark::State& state) {
  std::string src = fortd::bench::fig4(128, 128);
  // Inline everything first, then compile (no interprocedural machinery
  // is needed: all context is local).
  fortd::BoundProgram bp = fortd::parse_and_bind(src);
  fortd::InlineStats istats = fortd::inline_all(bp);
  fortd::IpaContext ctx = fortd::run_ipa(bp);
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  fortd::SpmdProgram spmd = fortd::generate_spmd(bp, ctx, opt);
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(spmd);
    { auto sink = last.messages; benchmark::DoNotOptimize(sink); }
  }
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["statements"] = count_statements(spmd.ast);
  state.counters["inlined_calls"] = istats.calls_inlined;
}

void BM_InlineGrowth(benchmark::State& state) {
  // Program growth with call-site fan-out: inlining duplicates the callee
  // body at every site; separate compilation keeps one copy.
  const int sites = static_cast<int>(state.range(0));
  std::string src = "      program p\n      real x(64)\n      integer i\n";
  src += "      distribute x(block)\n";
  for (int c = 0; c < sites; ++c) src += "      call work(x)\n";
  src += "      end\n";
  src +=
      "      subroutine work(a)\n      real a(64)\n      integer i\n"
      "      do i = 1, 60\n        a(i) = 0.5*a(i+4)\n      enddo\n"
      "      do i = 1, 64\n        a(i) = a(i) + 1.0\n      enddo\n"
      "      end\n";
  int inlined_stmts = 0, separate_stmts = 0;
  for (auto _ : state) {
    fortd::BoundProgram bp = fortd::parse_and_bind(src);
    separate_stmts = count_statements(bp.ast);
    fortd::inline_all(bp);
    inlined_stmts = count_statements(bp.ast);
    { auto sink = inlined_stmts; benchmark::DoNotOptimize(sink); }
  }
  state.counters["separate_stmts"] = separate_stmts;
  state.counters["inlined_stmts"] = inlined_stmts;
}

}  // namespace

BENCHMARK(BM_Interprocedural)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullyInlined)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InlineGrowth)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
