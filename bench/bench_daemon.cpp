// E15 — compile-as-a-service (fortdd).
//
// The daemon's pitch is that a *resident* compiler beats a fresh process
// even when that process has a warm on-disk cache: the socket round trip
// plus hot in-memory caches (serialized ASTs, resident per-option-set
// Compilers with their procedure/summary caches) versus re-reading and
// re-deserializing everything from the ContentStore. Three points bound
// it:
//
//   BM_WarmDaemonCompile     full COMPILE round trip (connect + HELLO +
//                            request + streamed reply) against a warm
//                            daemon: 0 procedures parsed, 0 summaries
//                            computed, everything from memory,
//   BM_ColdProcessRecompile  what fortdc without -server pays per
//                            invocation: a fresh Compiler (new process
//                            image) over a warm on-disk store — disk-warm
//                            but memory-cold, every artifact
//                            re-deserialized,
//   BM_LocalWarmCompile      one resident in-process Compiler compiled
//                            repeatedly: the daemon's compile cost with
//                            the socket subtracted (the protocol tax is
//                            the gap to BM_WarmDaemonCompile).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "driver/compiler.hpp"
#include "programs.hpp"
#include "service/client.hpp"
#include "service/compile_service.hpp"

namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("fortd_bench_daemon_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void BM_WarmDaemonCompile(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  const std::string dir = scratch_dir("warm_" + std::to_string(width));

  fortd::service::ServiceOptions options;
  options.cache_dir = dir;
  options.jobs = 2;
  fortd::service::CompileService daemon(options);
  std::string err;
  if (!daemon.start(&err)) {
    state.SkipWithError(("daemon failed to start: " + err).c_str());
    return;
  }
  fortd::service::ClientOptions copt;
  copt.port = daemon.port();
  fortd::service::CompileClient client(copt);
  fortd::remote::CompileOptionsWire wire;
  {
    // Warm the session once; not part of the measured loop.
    std::string reason;
    if (!client.compile(src, wire, &reason)) {
      state.SkipWithError(("warmup compile failed: " + reason).c_str());
      return;
    }
  }

  uint64_t parsed = 0, generated = 0;
  for (auto _ : state) {
    std::string reason;
    auto r = client.compile(src, wire, &reason);
    if (!r) {
      state.SkipWithError(reason.c_str());
      break;
    }
    parsed = r->parsed_procedures;
    generated = r->generated;
    { auto sink = r->spmd.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["parsed"] = static_cast<double>(parsed);
  state.counters["generated"] = static_cast<double>(generated);
  daemon.drain();
  daemon.stop();
  fs::remove_all(dir);
}

void BM_ColdProcessRecompile(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  const std::string dir = scratch_dir("cold_" + std::to_string(width));

  {
    // Warm the on-disk store once — the common case for a developer
    // re-running fortdc on an unchanged tree.
    fortd::Compiler warmup{fortd::CodegenOptions{}, {}, {},
                           fortd::CacheOptions{dir}};
    warmup.compile_source(src);
  }

  int generated = 0, disk_hits = 0;
  for (auto _ : state) {
    // A fresh Compiler per iteration stands in for a fresh fortdc
    // process: the disk tier is warm, every in-memory tier is cold.
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {},
                             fortd::CacheOptions{dir}};
    auto r = compiler.compile_source(src);
    generated = r.stats.generated;
    disk_hits = r.stats.disk_hits;
    { auto sink = r.stats.generated; benchmark::DoNotOptimize(sink); }
  }
  state.counters["disk_hits"] = static_cast<double>(disk_hits);
  state.counters["generated"] = static_cast<double>(generated);
  fs::remove_all(dir);
}

void BM_LocalWarmCompile(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);

  fortd::Compiler compiler{fortd::CodegenOptions{}};
  compiler.compile_source(src);  // warm the resident caches

  int generated = 0;
  for (auto _ : state) {
    auto r = compiler.compile_source(src);
    generated = r.stats.generated;
    { auto sink = r.stats.generated; benchmark::DoNotOptimize(sink); }
  }
  state.counters["generated"] = static_cast<double>(generated);
}

}  // namespace

BENCHMARK(BM_WarmDaemonCompile)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdProcessRecompile)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LocalWarmCompile)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
