// E14 — the remote compilation-cache tier (fortd-cached).
//
// An in-process CacheDaemon on a loopback socket stands in for a shared
// team cache. Three costs bound the design space:
//
//   BM_RemoteHit          a cold compiler with *no local tiers* pulls
//                         every artifact over the wire — the best case a
//                         warm daemon offers a fresh checkout/CI machine,
//   BM_RemoteMissPenalty  the same compiler against an empty read-only
//                         daemon: every GET misses, so this is the full
//                         compile plus pure protocol overhead (the price
//                         of asking),
//   BM_DegradedLocal      the daemon is unreachable and the circuit
//                         breaker is open: the floor the degradation
//                         path must stay at (a purely local compile).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "driver/compiler.hpp"
#include "programs.hpp"
#include "remote/server.hpp"

namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("fortd_bench_remote_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

fortd::CacheOptions remote_only(int port) {
  fortd::CacheOptions cache;
  cache.remote_endpoint = "127.0.0.1:" + std::to_string(port);
  return cache;  // dir left empty: memory tier directly over the wire
}

void BM_RemoteHit(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  const std::string dir = scratch_dir("hit_" + std::to_string(width));

  fortd::ContentStore store{fortd::CacheOptions{dir}};
  fortd::ThreadPool pool(2);
  fortd::remote::CacheDaemon daemon(&store, &pool, {});
  if (!daemon.start()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  {
    // Warm the daemon once; not part of the measured loop.
    fortd::Compiler warmup{fortd::CodegenOptions{}, {}, {},
                           remote_only(daemon.port())};
    warmup.compile_source(src);
  }

  int generated = 0, remote_hits = 0;
  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {},
                             remote_only(daemon.port())};
    auto r = compiler.compile_source(src);
    generated = r.stats.generated;
    remote_hits = r.stats.remote_hits;
    { auto sink = r.spmd.stats.loops_bounds_reduced; benchmark::DoNotOptimize(sink); }
  }
  state.counters["generated"] = static_cast<double>(generated);
  state.counters["remote_hits"] = static_cast<double>(remote_hits);
  daemon.stop();
  fs::remove_all(dir);
}

void BM_RemoteMissPenalty(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  const std::string dir = scratch_dir("miss_" + std::to_string(width));

  // Read-only over an empty store: every GET misses, every PUT is
  // denied, and the store never warms up between iterations.
  fortd::CacheOptions store_options{dir};
  store_options.read_only = true;
  fortd::ContentStore store(store_options);
  fortd::ThreadPool pool(2);
  fortd::remote::CacheDaemon daemon(&store, &pool, {});
  if (!daemon.start()) {
    state.SkipWithError("daemon failed to start");
    return;
  }

  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {},
                             remote_only(daemon.port())};
    auto r = compiler.compile_source(src);
    { auto sink = r.stats.generated; benchmark::DoNotOptimize(sink); }
  }
  daemon.stop();
  fs::remove_all(dir);
}

void BM_DegradedLocal(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);

  bool degraded = false;
  for (auto _ : state) {
    // Port 1 on loopback: connect is refused immediately. A hair-trigger
    // breaker and no backoff naps isolate the *local compile* cost the
    // degraded path falls back to.
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {},
                             remote_only(1)};
    auto& opts = compiler.remote_store()->options_for_test();
    opts.timeout_ms = 50;
    opts.max_retries = 0;
    opts.breaker_threshold = 1;
    opts.sleep_fn = [](int) {};
    auto r = compiler.compile_source(src);
    degraded = r.stats.remote_degraded;
    { auto sink = r.stats.generated; benchmark::DoNotOptimize(sink); }
  }
  state.counters["degraded"] = degraded ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(BM_RemoteHit)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RemoteMissPenalty)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DegradedLocal)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
