// E14 — the remote compilation-cache tier (fortd-cached).
//
// An in-process CacheDaemon on a loopback socket stands in for a shared
// team cache. Three costs bound the design space:
//
//   BM_RemoteHit          a cold compiler with *no local tiers* pulls
//                         every artifact over the wire — the best case a
//                         warm daemon offers a fresh checkout/CI machine,
//   BM_RemoteMissPenalty  the same compiler against an empty read-only
//                         daemon: every GET misses, so this is the full
//                         compile plus pure protocol overhead (the price
//                         of asking),
//   BM_DegradedLocal      the daemon is unreachable and the circuit
//                         breaker is open: the floor the degradation
//                         path must stay at (a purely local compile),
//   BM_WavefrontPrefetch  a cold compiler against a warm daemon with the
//                         wavefront BATCH_GET prefetcher on vs off — the
//                         win of overlapping level k+1's fetches with
//                         level k's codegen,
//   BM_ShardedFleet       the same warm-fleet pull against 1 vs 3
//                         daemons — what consistent-hash sharding costs
//                         (or saves) at loopback latencies.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "driver/compiler.hpp"
#include "programs.hpp"
#include "remote/server.hpp"

namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("fortd_bench_remote_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

fortd::CacheOptions remote_only(int port) {
  fortd::CacheOptions cache;
  cache.remote_endpoint = "127.0.0.1:" + std::to_string(port);
  return cache;  // dir left empty: memory tier directly over the wire
}

void BM_RemoteHit(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  const std::string dir = scratch_dir("hit_" + std::to_string(width));

  fortd::ContentStore store{fortd::CacheOptions{dir}};
  fortd::ThreadPool pool(2);
  fortd::remote::CacheDaemon daemon(&store, &pool, {});
  if (!daemon.start()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  {
    // Warm the daemon once; not part of the measured loop.
    fortd::Compiler warmup{fortd::CodegenOptions{}, {}, {},
                           remote_only(daemon.port())};
    warmup.compile_source(src);
  }

  int generated = 0, remote_hits = 0;
  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {},
                             remote_only(daemon.port())};
    auto r = compiler.compile_source(src);
    generated = r.stats.generated;
    remote_hits = r.stats.remote_hits;
    { auto sink = r.spmd.stats.loops_bounds_reduced; benchmark::DoNotOptimize(sink); }
  }
  state.counters["generated"] = static_cast<double>(generated);
  state.counters["remote_hits"] = static_cast<double>(remote_hits);
  daemon.stop();
  fs::remove_all(dir);
}

void BM_RemoteMissPenalty(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  const std::string dir = scratch_dir("miss_" + std::to_string(width));

  // Read-only over an empty store: every GET misses, every PUT is
  // denied, and the store never warms up between iterations.
  fortd::CacheOptions store_options{dir};
  store_options.read_only = true;
  fortd::ContentStore store(store_options);
  fortd::ThreadPool pool(2);
  fortd::remote::CacheDaemon daemon(&store, &pool, {});
  if (!daemon.start()) {
    state.SkipWithError("daemon failed to start");
    return;
  }

  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {},
                             remote_only(daemon.port())};
    auto r = compiler.compile_source(src);
    { auto sink = r.stats.generated; benchmark::DoNotOptimize(sink); }
  }
  daemon.stop();
  fs::remove_all(dir);
}

void BM_DegradedLocal(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);

  bool degraded = false;
  for (auto _ : state) {
    // Port 1 on loopback: connect is refused immediately. A hair-trigger
    // breaker and no backoff naps isolate the *local compile* cost the
    // degraded path falls back to.
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {},
                             remote_only(1)};
    for (size_t s = 0; s < compiler.remote_store()->shard_count(); ++s) {
      auto& opts = compiler.remote_store()->shard(s)->options_for_test();
      opts.timeout_ms = 50;
      opts.max_retries = 0;
      opts.breaker_threshold = 1;
      opts.sleep_fn = [](int) {};
    }
    auto r = compiler.compile_source(src);
    degraded = r.stats.remote_degraded;
    { auto sink = r.stats.generated; benchmark::DoNotOptimize(sink); }
  }
  state.counters["degraded"] = degraded ? 1.0 : 0.0;
}

/// One warm daemon, a cold 2-job compiler each iteration; range(0)
/// toggles the wavefront prefetcher. A wide fan-out maximizes the keys
/// per level, so prefetch-on collapses a level's worth of per-key GET
/// round trips into one BATCH_GET (plus one for all the summaries).
void BM_WavefrontPrefetch(benchmark::State& state) {
  const bool prefetch = state.range(0) != 0;
  const std::string src = fortd::bench::fan_out(32, 256);
  const std::string dir =
      scratch_dir(prefetch ? "prefetch_on" : "prefetch_off");

  fortd::ContentStore store{fortd::CacheOptions{dir}};
  fortd::ThreadPool pool(2);
  fortd::remote::CacheDaemon daemon(&store, &pool, {});
  if (!daemon.start()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  {
    fortd::Compiler warmup{fortd::CodegenOptions{}, {}, {},
                           remote_only(daemon.port())};
    warmup.compile_source(src);
  }

  fortd::CodegenOptions copt;
  copt.jobs = 2;
  int issued = 0, hits = 0, generated = 0;
  for (auto _ : state) {
    fortd::CacheOptions cache = remote_only(daemon.port());
    cache.prefetch = prefetch;
    fortd::Compiler compiler{copt, {}, {}, cache};
    auto r = compiler.compile_source(src);
    issued = r.stats.prefetch_issued;
    hits = r.stats.prefetch_hits;
    generated = r.stats.generated;
    { auto sink = r.stats.remote_hits; benchmark::DoNotOptimize(sink); }
  }
  state.counters["prefetch_issued"] = static_cast<double>(issued);
  state.counters["prefetch_hits"] = static_cast<double>(hits);
  state.counters["generated"] = static_cast<double>(generated);
  daemon.stop();
  fs::remove_all(dir);
}

/// Cold compiler against a warm fleet of range(0) daemons: what the
/// consistent-hash spread costs (extra connections) or saves (parallel
/// BATCH_GETs) versus one daemon holding everything.
void BM_ShardedFleet(benchmark::State& state) {
  const int n_shards = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(32, 256);

  struct Shard {
    explicit Shard(const std::string& dir)
        : store{fortd::CacheOptions{dir}}, pool(2),
          daemon(&store, &pool, {}) {}
    fortd::ContentStore store;
    fortd::ThreadPool pool;
    fortd::remote::CacheDaemon daemon;
  };
  std::vector<std::unique_ptr<Shard>> shards;
  std::string endpoints;
  std::vector<std::string> dirs;
  for (int s = 0; s < n_shards; ++s) {
    dirs.push_back(scratch_dir("fleet" + std::to_string(n_shards) + "_" +
                               std::to_string(s)));
    shards.push_back(std::make_unique<Shard>(dirs.back()));
    if (!shards.back()->daemon.start()) {
      state.SkipWithError("daemon failed to start");
      return;
    }
    if (!endpoints.empty()) endpoints += ",";
    endpoints += "127.0.0.1:" + std::to_string(shards.back()->daemon.port());
  }
  fortd::CacheOptions cache;
  cache.remote_endpoint = endpoints;
  {
    fortd::Compiler warmup{fortd::CodegenOptions{}, {}, {}, cache};
    warmup.compile_source(src);
  }

  int remote_hits = 0, generated = 0;
  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {}, cache};
    auto r = compiler.compile_source(src);
    remote_hits = r.stats.remote_hits;
    generated = r.stats.generated;
    { auto sink = r.stats.remote_hits; benchmark::DoNotOptimize(sink); }
  }
  state.counters["remote_hits"] = static_cast<double>(remote_hits);
  state.counters["generated"] = static_cast<double>(generated);
  for (auto& s : shards) s->daemon.stop();
  for (const auto& d : dirs) fs::remove_all(d);
}

}  // namespace

BENCHMARK(BM_RemoteHit)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RemoteMissPenalty)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DegradedLocal)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WavefrontPrefetch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedFleet)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
