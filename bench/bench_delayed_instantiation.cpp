// E4 — delayed vs immediate instantiation (paper Figs. 10 vs 12, §5.5).
//
// The Figure 4 program: a subroutine called inside caller loops under two
// reaching decompositions. Delayed instantiation vectorizes the shift
// message out of the caller's loop (1 message per neighbor pair) and
// replaces guards with reduced caller-loop bounds; immediate
// instantiation sends one message per invocation. The message-count
// ratio equals the caller trip count.
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

void run_fig4(benchmark::State& state, fortd::Strategy strategy) {
  const int64_t n = state.range(0);
  const int procs = static_cast<int>(state.range(1));
  fortd::CodegenOptions opt;
  opt.n_procs = procs;
  opt.strategy = strategy;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(fortd::bench::fig4(n, n));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["kbytes"] = static_cast<double>(last.bytes) / 1024.0;
  state.counters["guards"] = r.spmd.stats.guards_inserted;
  state.counters["reduced_loops"] = r.spmd.stats.loops_bounds_reduced;
}

void BM_Delayed(benchmark::State& state) {
  run_fig4(state, fortd::Strategy::Interprocedural);
}

void BM_Immediate(benchmark::State& state) {
  run_fig4(state, fortd::Strategy::Intraprocedural);
}

}  // namespace

BENCHMARK(BM_Delayed)
    ->ArgsProduct({{64, 128, 256}, {4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Immediate)
    ->ArgsProduct({{64, 128, 256}, {4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
