#!/usr/bin/env sh
# Run the benchmark suite and emit machine-readable JSON so the perf
# trajectory is tracked across PRs.
#
#   bench/run_benchmarks.sh [build-dir] [out-dir]
#
# Produces one <out-dir>/BENCH_<name>.json (google-benchmark JSON format)
# per benchmark binary found in <build-dir>/bench — the full suite by
# default, so CI can diff compile time, IPA counters, cloning, overlap,
# lint, and machine-balance numbers across PRs.
#
# Environment:
#   BENCH_SUITE       space-separated binary names to run instead of the
#                     full suite (e.g. "bench_compile_time bench_lint")
#   BENCHMARK_FILTER  forwarded as --benchmark_filter to every binary
#                     (google-benchmark regex syntax)
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
FILTER="${BENCHMARK_FILTER:-}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build directory '$BUILD_DIR' not found (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

if [ -n "${BENCH_SUITE:-}" ]; then
  BENCHES="$BENCH_SUITE"
else
  BENCHES=""
  for bin in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$bin" ] || continue
    BENCHES="$BENCHES ${bin##*/}"
  done
  if [ -z "$BENCHES" ]; then
    echo "error: no benchmark binaries under '$BUILD_DIR/bench'" >&2
    exit 1
  fi
fi

for bench in $BENCHES; do
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: benchmark binary '$bin' not built" >&2
    exit 1
  fi
  out="$OUT_DIR/BENCH_${bench#bench_}.json"
  echo "== $bench -> $out"
  if [ -n "$FILTER" ]; then
    "$bin" --benchmark_format=json --benchmark_out="$out" \
           --benchmark_out_format=json --benchmark_filter="$FILTER"
  else
    "$bin" --benchmark_format=json --benchmark_out="$out" \
           --benchmark_out_format=json
  fi
done
