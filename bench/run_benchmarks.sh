#!/usr/bin/env sh
# Run the compile-time benchmark suite and emit machine-readable JSON so
# the perf trajectory is tracked across PRs.
#
#   bench/run_benchmarks.sh [build-dir] [out-dir]
#
# Produces <out-dir>/BENCH_compile_time.json (google-benchmark JSON
# format), covering the full suite registered in bench_compile_time.cpp —
# including BM_ParallelIpa and BM_IncrementalClone — so CI can diff the
# IPA counters (sum_computed / sum_reused / regenerated) across PRs.
# Extend BENCHES to snapshot more suites; set BENCHMARK_FILTER to run a
# subset (google-benchmark --benchmark_filter syntax).
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
BENCHES="bench_compile_time"
FILTER="${BENCHMARK_FILTER:-}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build directory '$BUILD_DIR' not found (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

for bench in $BENCHES; do
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: benchmark binary '$bin' not built" >&2
    exit 1
  fi
  out="$OUT_DIR/BENCH_${bench#bench_}.json"
  echo "== $bench -> $out"
  if [ -n "$FILTER" ]; then
    "$bin" --benchmark_format=json --benchmark_out="$out" \
           --benchmark_out_format=json --benchmark_filter="$FILTER"
  else
    "$bin" --benchmark_format=json --benchmark_out="$out" \
           --benchmark_out_format=json
  fi
done
