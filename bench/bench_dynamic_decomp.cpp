// E7 — dynamic data decomposition optimization (paper Figs. 15/16).
//
// The redistribution program swept over time steps and array size under
// the four optimization levels. Expected shape: data-moving remap counts
// follow 4T (none) -> 2T (live) -> 2 (loop-invariant) -> 1 (array kills),
// with simulated time tracking remap volume.
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

void run_fig15(benchmark::State& state, fortd::DynDecompOpt level) {
  const int64_t n = state.range(0);
  const int64_t steps = state.range(1);
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  opt.dyn_decomp = level;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r =
      compiler.compile_source(fortd::bench::fig15(n, steps));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["remaps"] = static_cast<double>(last.remaps_executed);
  state.counters["remap_kb"] = static_cast<double>(last.remap_bytes) / 1024.0;
  state.counters["eliminated"] = r.spmd.stats.remaps_eliminated_dead +
                                 r.spmd.stats.remaps_coalesced;
  state.counters["hoisted"] = r.spmd.stats.remaps_hoisted;
  state.counters["marked"] = r.spmd.stats.remaps_marked_in_place;
}

void BM_NoOpt(benchmark::State& state) {
  run_fig15(state, fortd::DynDecompOpt::None);
}
void BM_LiveDecomps(benchmark::State& state) {
  run_fig15(state, fortd::DynDecompOpt::Live);
}
void BM_LoopInvariant(benchmark::State& state) {
  run_fig15(state, fortd::DynDecompOpt::LiveInvariant);
}
void BM_ArrayKills(benchmark::State& state) {
  run_fig15(state, fortd::DynDecompOpt::Full);
}

}  // namespace

#define DYN_ARGS \
  ->ArgsProduct({{1024, 8192}, {10, 50}})->Iterations(1)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_NoOpt) DYN_ARGS;
BENCHMARK(BM_LiveDecomps) DYN_ARGS;
BENCHMARK(BM_LoopInvariant) DYN_ARGS;
BENCHMARK(BM_ArrayKills) DYN_ARGS;

BENCHMARK_MAIN();
