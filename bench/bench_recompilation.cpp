// E9 — recompilation analysis (paper §4/§8).
//
// A call chain of M procedures; one leaf-adjacent procedure is edited.
// Without recompilation analysis the whole program recompiles (M+1
// procedures); with it only the edited procedure — plus callers whose
// interprocedural inputs actually changed — recompiles.
//
// BM_ColdProcessRecompile extends the study across process boundaries:
// a fresh Compiler per iteration (empty memory tiers — a new compiler
// process) shares one persistent compilation database, so every
// procedure and summary is served from disk instead of being
// regenerated. BM_ColdProcessNoCache is the same shape without the
// database: the full from-scratch compile a cold process otherwise pays.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

fortd::CompilationRecord record_of(const std::string& src) {
  fortd::Compiler compiler{fortd::CodegenOptions{}};
  return compiler.compile_source(src).record;
}

void BM_RecompilationAnalysis(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  std::string before = fortd::bench::call_chain(depth, 256);
  // Interface-neutral edit of the middle procedure's arithmetic.
  std::string after = before;
  std::string needle = "a(i) = 0.5*a(i+" +
                       std::to_string(1 + (depth / 2) % 2) + ")";
  size_t pos = after.find(needle);
  size_t count = 0;
  // The needle appears once per level with matching parity; edit the one
  // belonging to level depth/2 by replacing the (depth/2)-th occurrence.
  size_t target = 0;
  for (size_t at = after.find(needle); at != std::string::npos;
       at = after.find(needle, at + 1), ++count)
    if (count == static_cast<size_t>(depth / 4)) target = at;
  pos = target;
  after.replace(pos, needle.size(),
                "a(i) = 0.25*a(i+" +
                    std::to_string(1 + (depth / 2) % 2) + ")");

  fortd::CompilationRecord rec_before = record_of(before);
  std::set<std::string> recompiled;
  for (auto _ : state) {
    fortd::CompilationRecord rec_after = record_of(after);
    recompiled = fortd::procedures_to_recompile(rec_before, rec_after);
    { auto sink = recompiled.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["recompiled"] = static_cast<double>(recompiled.size());
  state.counters["total_procs"] = static_cast<double>(depth + 1);
  state.counters["saved"] =
      static_cast<double>(depth + 1 - static_cast<int>(recompiled.size()));
}

void BM_BlindRecompilation(benchmark::State& state) {
  // Baseline: no recompilation analysis — every procedure recompiles
  // after any edit. (The "cost" is a full compile.)
  const int depth = static_cast<int>(state.range(0));
  std::string src = fortd::bench::call_chain(depth, 256);
  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}};
    auto r = compiler.compile_source(src);
    { auto sink = r.spmd.stats.loops_bounds_reduced; benchmark::DoNotOptimize(sink); }
  }
  state.counters["recompiled"] = static_cast<double>(depth + 1);
  state.counters["total_procs"] = static_cast<double>(depth + 1);
}

void BM_ColdProcessRecompile(benchmark::State& state) {
  namespace fs = std::filesystem;
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  const fs::path dir = fs::temp_directory_path() /
                       ("fortd_bench_cold_" + std::to_string(width));
  fs::remove_all(dir);
  fortd::CacheOptions cache{dir.string()};
  {
    // Populate the database once; not part of the measured loop.
    fortd::Compiler warmup{fortd::CodegenOptions{}, {}, {}, cache};
    warmup.compile_source(src);
  }
  int generated = 0, disk_hits = 0;
  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}, {}, {}, cache};
    auto r = compiler.compile_source(src);
    generated = r.stats.generated;
    disk_hits = r.stats.disk_hits;
    { auto sink = r.spmd.stats.loops_bounds_reduced; benchmark::DoNotOptimize(sink); }
  }
  state.counters["generated"] = static_cast<double>(generated);
  state.counters["disk_hits"] = static_cast<double>(disk_hits);
  state.counters["total_procs"] = static_cast<double>(width + 1);
  fs::remove_all(dir);
}

void BM_ColdProcessNoCache(benchmark::State& state) {
  // Baseline for BM_ColdProcessRecompile: a fresh Compiler with no
  // persistent tier pays the full compile every time.
  const int width = static_cast<int>(state.range(0));
  const std::string src = fortd::bench::fan_out(width, 256);
  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}};
    auto r = compiler.compile_source(src);
    { auto sink = r.spmd.stats.loops_bounds_reduced; benchmark::DoNotOptimize(sink); }
  }
  state.counters["total_procs"] = static_cast<double>(width + 1);
}

}  // namespace

BENCHMARK(BM_RecompilationAnalysis)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlindRecompilation)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdProcessRecompile)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdProcessNoCache)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
