// E14 (extension) — machine-balance sensitivity.
//
// The paper's numbers are tied to the iPSC/860's very high message
// startup (alpha ~ 100+ us). This study re-runs the dgefa case study and
// the Fig. 4 program under a low-latency machine (alpha/10) to show which
// conclusions are balance-dependent: the interprocedural-vs-run-time gap
// persists (it is mostly redundant work), while the small-N speedup
// crossover moves to much smaller matrices.
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

void run_dgefa_with(benchmark::State& state, const fortd::CostModel& cm) {
  const int64_t n = state.range(0);
  const int procs = static_cast<int>(state.range(1));
  fortd::CodegenOptions opt;
  opt.n_procs = procs;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(fortd::bench::dgefa(n));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd, cm);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["msgs"] = static_cast<double>(last.messages);
}

void BM_DgefaHighLatency(benchmark::State& state) {
  run_dgefa_with(state, fortd::CostModel::ipsc860());
}

void BM_DgefaLowLatency(benchmark::State& state) {
  run_dgefa_with(state, fortd::CostModel::low_latency());
}

void BM_Fig4AlphaSweep(benchmark::State& state) {
  // Delayed vs immediate message counts are alpha-independent, but the
  // *time* gap scales directly with alpha: sweep it.
  const double alpha = static_cast<double>(state.range(0));
  const bool delayed = state.range(1) != 0;
  fortd::CostModel cm = fortd::CostModel::ipsc860();
  cm.alpha_us = alpha;
  cm.send_overhead_us = alpha / 3.0;
  cm.recv_overhead_us = alpha / 3.0;
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  opt.strategy = delayed ? fortd::Strategy::Interprocedural
                         : fortd::Strategy::Intraprocedural;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(fortd::bench::fig4(128, 128));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd, cm);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["alpha_us"] = alpha;
}

}  // namespace

BENCHMARK(BM_DgefaHighLatency)
    ->ArgsProduct({{64, 96}, {1, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DgefaLowLatency)
    ->ArgsProduct({{64, 96}, {1, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig4AlphaSweep)
    ->ArgsProduct({{14, 136, 1360}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
