// E11 — procedure-cloning growth (paper §5.2, Fig. 8).
//
// A hub subroutine invoked under a growing number of distinct reaching
// decompositions. Cloning creates one version per distinct decomposition;
// the growth threshold flips the hub to run-time resolution instead.
// Counters: clones created, final procedure count, fallback flag, and
// whole-compile wall time (cloning re-runs interprocedural analysis).
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

void BM_CloningGrowth(benchmark::State& state) {
  const int variants = static_cast<int>(state.range(0));
  std::string src = fortd::bench::cloning_hub(variants, 64);
  fortd::CompileResult last;
  for (auto _ : state) {
    fortd::Compiler compiler(fortd::CodegenOptions{});
    last = compiler.compile_source(src);
    { auto sink = last.ipa.clones_created; benchmark::DoNotOptimize(sink); }
  }
  state.counters["clones"] = last.ipa.clones_created;
  state.counters["procedures"] =
      static_cast<double>(last.program.ast.procedures.size());
  state.counters["fallback"] =
      static_cast<double>(last.ipa.runtime_fallback.size());
}

void BM_CloningThreshold(benchmark::State& state) {
  const int max_procs = static_cast<int>(state.range(0));
  std::string src = fortd::bench::cloning_hub(8, 64);
  fortd::CompileResult last;
  for (auto _ : state) {
    fortd::IpaOptions ipa;
    ipa.max_procedures = max_procs;
    fortd::Compiler compiler(fortd::CodegenOptions{}, ipa);
    last = compiler.compile_source(src);
    { auto sink = last.ipa.clones_created; benchmark::DoNotOptimize(sink); }
  }
  state.counters["clones"] = last.ipa.clones_created;
  state.counters["fallback"] =
      static_cast<double>(last.ipa.runtime_fallback.size());
}

}  // namespace

BENCHMARK(BM_CloningGrowth)->DenseRange(1, 12, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CloningThreshold)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
