// E8 — overlap estimation precision and parameterized overlaps
// (paper §5.6, Figs. 13/14).
//
// Stencils with varying shift widths through a call chain: the
// interprocedural overlap-offset estimate must match the actual demand
// discovered during code generation (no buffer fallback), and the
// estimate must be consistent across the whole chain. Counters report
// per-processor storage words under overlaps vs. the whole-array
// replicated baseline.
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

void BM_OverlapEstimate(benchmark::State& state) {
  const int shift = static_cast<int>(state.range(0));
  const int64_t n = 4096;
  std::string src = fortd::bench::stencil1d(n, shift);
  fortd::CompileResult last;
  for (auto _ : state) {
    fortd::CodegenOptions opt;
    opt.n_procs = 8;
    fortd::Compiler compiler(opt);
    last = compiler.compile_source(src);
    { auto sink = last.spmd.stats.buffers_used; benchmark::DoNotOptimize(sink); }
  }
  double est = 0, actual = 0, words = 0;
  for (const auto& info : last.spmd.storage.at("f1"))
    if (info.array == "x") {
      est = static_cast<double>(info.est_hi);
      actual = static_cast<double>(info.overlap_hi);
      words = static_cast<double>(info.local_words());
    }
  state.counters["est"] = est;
  state.counters["actual"] = actual;
  state.counters["buffers"] = last.spmd.stats.buffers_used;
  state.counters["local_words"] = words;
  state.counters["replicated_words"] = static_cast<double>(n);
}

void BM_ParameterizedOverlaps(benchmark::State& state) {
  const int shift = static_cast<int>(state.range(0));
  std::string src = fortd::bench::stencil1d(4096, shift);
  fortd::CompileResult last;
  for (auto _ : state) {
    fortd::CodegenOptions opt;
    opt.n_procs = 8;
    opt.parameterized_overlaps = true;
    fortd::Compiler compiler(opt);
    last = compiler.compile_source(src);
    { auto sink = last.spmd.stats.buffers_used; benchmark::DoNotOptimize(sink); }
  }
  int parameterized = 0;
  for (const auto& [proc, infos] : last.spmd.storage)
    for (const auto& info : infos)
      if (info.parameterized) ++parameterized;
  state.counters["parameterized"] = parameterized;
}

void BM_BufferFallback(benchmark::State& state) {
  // Force buffers to quantify the alternative storage strategy.
  std::string src = fortd::bench::stencil1d(4096, 8);
  fortd::CompileResult last;
  for (auto _ : state) {
    fortd::CodegenOptions opt;
    opt.n_procs = 8;
    opt.prefer_buffers = true;
    fortd::Compiler compiler(opt);
    last = compiler.compile_source(src);
    { auto sink = last.spmd.stats.buffers_used; benchmark::DoNotOptimize(sink); }
  }
  state.counters["buffers"] = last.spmd.stats.buffers_used;
}

}  // namespace

BENCHMARK(BM_OverlapEstimate)->Arg(1)->Arg(3)->Arg(5)->Arg(13)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParameterizedOverlaps)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BufferFallback)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
