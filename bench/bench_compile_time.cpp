// E12 — compiler throughput and the single-pass claim.
//
// Wall-clock time of each compilation phase (parse+bind, interprocedural
// propagation, code generation) as the program grows, demonstrating that
// compilation visits each procedure once (near-linear scaling in the
// number of procedures). Includes the message-vectorization ablation.
#include <benchmark/benchmark.h>

#include "frontend/parser.hpp"
#include "driver/compiler.hpp"
#include "support/thread_pool.hpp"
#include "programs.hpp"

namespace {

void BM_ParseAndBind(benchmark::State& state) {
  std::string src =
      fortd::bench::call_chain(static_cast<int>(state.range(0)), 256);
  for (auto _ : state) {
    fortd::BoundProgram bp = fortd::parse_and_bind(src);
    { auto sink = bp.ast.procedures.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["procs"] = static_cast<double>(state.range(0) + 1);
}

void BM_InterproceduralPropagation(benchmark::State& state) {
  std::string src =
      fortd::bench::call_chain(static_cast<int>(state.range(0)), 256);
  for (auto _ : state) {
    state.PauseTiming();
    fortd::BoundProgram bp = fortd::parse_and_bind(src);
    state.ResumeTiming();
    fortd::IpaContext ctx = fortd::run_ipa(bp);
    { auto sink = ctx.acg.call_sites().size(); benchmark::DoNotOptimize(sink); }
  }
}

void BM_CodeGeneration(benchmark::State& state) {
  std::string src =
      fortd::bench::call_chain(static_cast<int>(state.range(0)), 256);
  for (auto _ : state) {
    // Rebuild the bound program + interprocedural solution per iteration
    // (untimed): sharing one across iterations lets any codegen-side
    // mutation of shared analysis state leak between iterations and skew
    // the measurement.
    state.PauseTiming();
    fortd::BoundProgram bp = fortd::parse_and_bind(src);
    fortd::IpaContext ctx = fortd::run_ipa(bp);
    fortd::CodegenOptions opt;
    opt.n_procs = 8;
    state.ResumeTiming();
    fortd::SpmdProgram spmd = fortd::generate_spmd(bp, ctx, opt);
    { auto sink = spmd.ast.procedures.size(); benchmark::DoNotOptimize(sink); }
  }
}

void BM_ParallelCodegen(benchmark::State& state) {
  // Wavefront-parallel code generation over a 32-leaf fan-out program:
  // every leaf is independent, so the leaf level scales with jobs.
  const int jobs = static_cast<int>(state.range(0));
  std::string src = fortd::bench::fan_out(32, 512);
  fortd::BoundProgram bp = fortd::parse_and_bind(src);
  fortd::IpaContext ctx = fortd::run_ipa(bp);
  fortd::CodegenOptions opt;
  opt.n_procs = 8;
  opt.jobs = jobs;
  for (auto _ : state) {
    fortd::SpmdProgram spmd = fortd::generate_spmd(bp, ctx, opt);
    { auto sink = spmd.ast.procedures.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["jobs"] = jobs;
  state.counters["procs"] = 33;
}

void BM_ParallelIpa(benchmark::State& state) {
  // Wavefront-parallel interprocedural analysis: summaries are
  // embarrassingly parallel, side effects / reaching run level-by-level
  // over the ACG. shape 0 = 32-leaf fan-out (one wide level), shape 1 =
  // dgefa (serial idamax chain feeding a wide daxpy level).
  const int jobs = static_cast<int>(state.range(0));
  const bool shaped = state.range(1) != 0;
  std::string src = shaped ? fortd::bench::dgefa(64)
                           : fortd::bench::fan_out(32, 512);
  fortd::ThreadPool pool(jobs - 1);
  for (auto _ : state) {
    state.PauseTiming();
    fortd::BoundProgram bp = fortd::parse_and_bind(src);
    state.ResumeTiming();
    fortd::IpaContext ctx =
        fortd::run_ipa(bp, {}, jobs > 1 ? &pool : nullptr);
    { auto sink = ctx.summaries.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["jobs"] = jobs;
}

void BM_WorkStealingVsWavefront(benchmark::State& state) {
  // The barrier cost itself: an 8-deep call chain next to 24 independent
  // leaves at jobs=4. The wavefront generates the wide leaf level, then
  // walks the chain one barrier-separated level at a time with three
  // workers idle; work-stealing overlaps the chain with the leaf pool,
  // so its span is max(chain, leaves/4) instead of the sum. The win
  // needs free cores — on a core-starved machine the two schedules tie
  // and the stolen/idle counters are what to read.
  const bool wavefront = state.range(0) != 0;
  std::string src = fortd::bench::chain_fanout(8, 24, 256);
  fortd::BoundProgram bp = fortd::parse_and_bind(src);
  fortd::IpaContext ctx = fortd::run_ipa(bp);
  fortd::CodegenOptions opt;
  opt.n_procs = 8;
  opt.jobs = 4;
  opt.scheduler = wavefront ? fortd::Scheduler::Wavefront
                            : fortd::Scheduler::WorkStealing;
  fortd::ThreadPool pool(opt.jobs - 1);
  fortd::TaskGraphStats sched;
  for (auto _ : state) {
    fortd::CodeGenerator gen(bp, ctx, opt, nullptr, nullptr, &pool);
    fortd::SpmdProgram spmd = gen.generate();
    sched = gen.scheduler_stats();
    { auto sink = spmd.ast.procedures.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["procs"] = 33;
  state.counters["stolen"] = static_cast<double>(sched.stolen);
  state.counters["ready_peak"] = static_cast<double>(sched.ready_peak);
  state.counters["critical_path"] = static_cast<double>(sched.critical_path);
  state.counters["idle_ms"] = sched.idle_ms;
}

void BM_IncrementalClone(benchmark::State& state) {
  // Cloning fixed point over a hub with 4 conflicting decompositions plus
  // 24 untouched leaves: the incremental rounds re-analyze only the new
  // clones and the retargeted main program, carrying the leaves over.
  const bool incremental = state.range(0) != 0;
  std::string src = fortd::bench::cloning_fanout(24, 4, 64);
  fortd::IpaOptions opts;
  opts.incremental = incremental;
  fortd::IpaStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    fortd::BoundProgram bp = fortd::parse_and_bind(src);
    state.ResumeTiming();
    fortd::IpaContext ctx = fortd::run_ipa(bp, opts);
    stats = ctx.stats;
    { auto sink = ctx.clones_created; benchmark::DoNotOptimize(sink); }
  }
  state.counters["rounds"] = stats.rounds;
  state.counters["sum_computed"] = stats.summaries_computed;
  state.counters["sum_reused"] = stats.summaries_reused;
  state.counters["fx_reused"] = stats.effects_reused;
  state.counters["rd_reused"] = stats.reaching_reused;
}

void BM_CachedRecompile(benchmark::State& state) {
  // Second compile() of a 32-leaf program with exactly one leaf body
  // edited: the procedure cache regenerates only the edited leaf (its
  // exported interface is unchanged, so no caller is invalidated).
  std::string base = fortd::bench::fan_out(32, 512);
  std::string edited = fortd::bench::fan_out(32, 512, /*edited_leaf=*/7);
  int regenerated = -1;
  int summaries_computed = -1;
  for (auto _ : state) {
    state.PauseTiming();
    fortd::CodegenOptions opt;
    opt.n_procs = 8;
    fortd::Compiler compiler(opt);
    compiler.compile_source(base);  // warm the caches (untimed)
    state.ResumeTiming();
    auto r = compiler.compile_source(edited);
    regenerated = static_cast<int>(r.regenerated.size());
    summaries_computed = r.stats.summaries_computed;
    { auto sink = r.spmd.ast.procedures.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["regenerated"] = regenerated;
  state.counters["sum_computed"] = summaries_computed;
  state.counters["procs"] = 33;
}

void BM_FullCompile(benchmark::State& state) {
  std::string src =
      fortd::bench::call_chain(static_cast<int>(state.range(0)), 256);
  for (auto _ : state) {
    fortd::Compiler compiler{fortd::CodegenOptions{}};
    auto r = compiler.compile_source(src);
    { auto sink = r.spmd.ast.procedures.size(); benchmark::DoNotOptimize(sink); }
  }
  state.counters["procs"] = static_cast<double>(state.range(0) + 1);
}

void BM_VectorizationAblation(benchmark::State& state) {
  // Message vectorization off: every shift message instantiates at its
  // deepest legal point. Counter contrast against the default.
  const bool vectorize = state.range(0) != 0;
  std::string src = fortd::bench::fig4(128, 128);
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  opt.strategy = vectorize ? fortd::Strategy::Interprocedural
                           : fortd::Strategy::Intraprocedural;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(src);
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.messages; benchmark::DoNotOptimize(sink); }
  }
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
}

}  // namespace

BENCHMARK(BM_ParseAndBind)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterproceduralPropagation)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CodeGeneration)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelCodegen)->ArgName("jobs")->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ParallelIpa)->ArgNames({"jobs", "shape"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({1, 1})->Args({4, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_WorkStealingVsWavefront)->ArgName("wavefront")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_IncrementalClone)->ArgName("incremental")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedRecompile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullCompile)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VectorizationAblation)->Arg(0)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
