// E2 — compile-time code vs run-time resolution (paper Figs. 2 vs 3).
//
// The stencil of Fig. 1 compiled interprocedurally and under run-time
// resolution, swept over problem size and machine size. Reported counters
// are simulated metrics: sim_ms (execution time on the modeled iPSC/860),
// msgs, kbytes. The paper's claim: run-time resolution is slower by an
// amount that grows with N (per-element ownership tests + element
// messages vs one vectorized message).
#include <benchmark/benchmark.h>

#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

void run_stencil(benchmark::State& state, fortd::Strategy strategy) {
  const int64_t n = state.range(0);
  const int procs = static_cast<int>(state.range(1));
  fortd::CodegenOptions opt;
  opt.n_procs = procs;
  opt.strategy = strategy;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r =
      compiler.compile_source(fortd::bench::stencil1d(n));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["sim_ms"] = last.sim_time_us / 1000.0;
  state.counters["msgs"] = static_cast<double>(last.messages);
  state.counters["kbytes"] = static_cast<double>(last.bytes) / 1024.0;
}

void BM_CompileTime(benchmark::State& state) {
  run_stencil(state, fortd::Strategy::Interprocedural);
}

void BM_RuntimeResolution(benchmark::State& state) {
  run_stencil(state, fortd::Strategy::RuntimeResolution);
}

}  // namespace

BENCHMARK(BM_CompileTime)
    ->ArgsProduct({{256, 1024, 4096, 16384}, {4, 8, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RuntimeResolution)
    ->ArgsProduct({{256, 1024, 4096, 16384}, {4, 8, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
