// E1/E3/E5/E6 — figure regeneration harness.
//
// Compiles the paper's Figure 1 and Figure 4 programs and reports the
// structural quantities each figure demonstrates (message placement,
// vectorization, cloning, reduced loops, overlap extents). Run any bench
// binary with --help for google-benchmark options; the structural golden
// checks live in tests/test_codegen.cpp.
#include <benchmark/benchmark.h>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "programs.hpp"

namespace {

void BM_Figure2_CompiledStencil(benchmark::State& state) {
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r =
      compiler.compile_source(fortd::bench::stencil1d(100));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  double overlap = 0, local = 0;
  for (const auto& info : r.spmd.storage.at("f1"))
    if (info.array == "x") {
      overlap = static_cast<double>(info.overlap_hi);
      local = static_cast<double>(info.local_extent);
    }
  state.counters["msgs"] = static_cast<double>(last.messages);      // 3
  state.counters["local_extent"] = local;                           // 25
  state.counters["overlap"] = overlap;                              // 5
  state.counters["sim_us"] = last.sim_time_us;
}

void BM_Figure10_InterproceduralFig4(benchmark::State& state) {
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(fortd::bench::fig4(100, 100));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["clones"] = r.spmd.stats.clones_created;            // 1
  state.counters["msgs"] = static_cast<double>(last.messages);       // 3
  state.counters["reduced_loops"] = r.spmd.stats.loops_bounds_reduced;
  state.counters["delayed_comms"] = r.spmd.stats.delayed_comms_exported;
  state.counters["sim_us"] = last.sim_time_us;
}

void BM_Figure12_ImmediateFig4(benchmark::State& state) {
  fortd::CodegenOptions opt;
  opt.n_procs = 4;
  opt.strategy = fortd::Strategy::Intraprocedural;
  fortd::Compiler compiler(opt);
  fortd::CompileResult r = compiler.compile_source(fortd::bench::fig4(100, 100));
  fortd::RunResult last;
  for (auto _ : state) {
    last = fortd::simulate(r.spmd);
    { auto sink = last.sim_time_us; benchmark::DoNotOptimize(sink); }
  }
  state.counters["msgs"] = static_cast<double>(last.messages);       // 300
  state.counters["guards"] = r.spmd.stats.guards_inserted;
  state.counters["sim_us"] = last.sim_time_us;
}

}  // namespace

BENCHMARK(BM_Figure2_CompiledStencil)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Figure10_InterproceduralFig4)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Figure12_ImmediateFig4)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
