#include "machine/interpreter.hpp"

#include <cassert>
#include <cmath>

#include "machine/simulator.hpp"

namespace fortd {

// ---------------------------------------------------------------------------
// ArrayStorage
// ---------------------------------------------------------------------------

int64_t ArrayStorage::flat_index(const std::vector<int64_t>& point) const {
  if (point.size() != bounds.size())
    throw std::runtime_error("rank mismatch indexing array '" + name + "'");
  int64_t idx = 0;
  for (size_t d = 0; d < bounds.size(); ++d) {
    auto [lb, ub] = bounds[d];
    if (point[d] < lb || point[d] > ub)
      throw std::runtime_error(
          "subscript out of bounds: " + name + " dim " + std::to_string(d + 1) +
          " index " + std::to_string(point[d]) + " not in [" +
          std::to_string(lb) + "," + std::to_string(ub) + "]");
    idx = idx * (ub - lb + 1) + (point[d] - lb);
  }
  return idx;
}

int64_t ArrayStorage::size() const {
  int64_t n = 1;
  for (auto [lb, ub] : bounds) n *= (ub - lb + 1);
  return n;
}

// ---------------------------------------------------------------------------
// ProcessorContext
// ---------------------------------------------------------------------------

ProcessorContext::ProcessorContext(Machine& machine, const SpmdProgram& program,
                                   int my_p)
    : machine_(machine), program_(program), my_p_(my_p) {
  auto cell = std::make_shared<Value>(Value::of_int(my_p));
  globals_.scalars["my$p"] = std::move(cell);
}

ArrayStorage* ProcessorContext::array_by_uid(int uid) const {
  for (const auto& [name, arr] : globals_.arrays)
    if (arr->uid == uid) return arr.get();
  for (const auto& [name, arr] : main_frame_.arrays)
    if (arr->uid == uid) return arr.get();
  return nullptr;
}

const DecompSpec* ProcessorContext::registry_spec(
    const ArrayStorage* storage) const {
  auto it = registry_.find(storage);
  return it == registry_.end() ? nullptr : &it->second;
}

Frame ProcessorContext::make_frame(const Procedure& proc, Frame* caller,
                                   const std::vector<ExprPtr>* actuals) {
  Frame frame;
  // PARAMETER constants.
  for (const auto& pc : proc.params) {
    Value v = eval(*pc.value, frame);
    frame.scalars[pc.name] = std::make_shared<Value>(v);
  }
  // Bind formals by reference.
  if (actuals) {
    for (size_t f = 0; f < proc.formals.size() && f < actuals->size(); ++f) {
      const Expr& a = *(*actuals)[f];
      const std::string& formal = proc.formals[f];
      if (a.kind == ExprKind::VarRef && caller) {
        auto fit = caller->arrays.find(a.name);
        if (fit != caller->arrays.end()) {
          frame.arrays[formal] = fit->second;
          continue;
        }
        auto git = globals_.arrays.find(a.name);
        if (git != globals_.arrays.end()) {
          frame.arrays[formal] = git->second;
          continue;
        }
        // Scalar by reference: share (or create) the caller's cell.
        ScalarCell cell;
        auto sit = caller->scalars.find(a.name);
        if (sit != caller->scalars.end()) {
          cell = sit->second;
        } else {
          auto gsit = globals_.scalars.find(a.name);
          if (gsit != globals_.scalars.end()) {
            cell = gsit->second;
          } else {
            cell = std::make_shared<Value>(Value::of_int(0));
            caller->scalars[a.name] = cell;
          }
        }
        frame.scalars[formal] = std::move(cell);
        continue;
      }
      // Expression actual: copy-in only.
      Value v = caller ? eval(a, *caller) : Value::of_int(0);
      frame.scalars[formal] = std::make_shared<Value>(v);
    }
  }
  // Common-block variables alias the per-processor globals.
  std::map<std::string, bool> in_common;
  for (const auto& blk : proc.commons)
    for (const auto& v : blk.vars) in_common[v] = true;

  // Allocate declared locals (skip already bound formals).
  for (const auto& decl : proc.decls) {
    if (decl.is_decomposition) continue;
    if (frame.arrays.count(decl.name) || frame.scalars.count(decl.name))
      continue;
    if (decl.dims.empty()) {
      if (in_common.count(decl.name)) {
        if (!globals_.scalars.count(decl.name))
          globals_.scalars[decl.name] = std::make_shared<Value>(
              decl.type == ElemType::Real ? Value::of_real(0.0)
                                          : Value::of_int(0));
        frame.scalars[decl.name] = globals_.scalars[decl.name];
      } else {
        frame.scalars[decl.name] = std::make_shared<Value>(
            decl.type == ElemType::Real ? Value::of_real(0.0)
                                        : Value::of_int(0));
      }
      continue;
    }
    // Array: evaluate bounds (may reference params/formals — Fig. 14
    // parameterized overlaps).
    std::vector<std::pair<int64_t, int64_t>> bounds;
    for (const auto& dim : decl.dims) {
      int64_t lb = dim.lb ? eval(*dim.lb, frame).as_int() : 1;
      int64_t ub = eval(*dim.ub, frame).as_int();
      bounds.emplace_back(lb, ub);
    }
    if (in_common.count(decl.name)) {
      if (!globals_.arrays.count(decl.name)) {
        auto arr = std::make_shared<ArrayStorage>();
        arr->uid = next_uid_++;
        arr->name = decl.name;
        arr->type = decl.type;
        arr->bounds = bounds;
        arr->data.assign(static_cast<size_t>(arr->size()), 0.0);
        globals_.arrays[decl.name] = std::move(arr);
      }
      frame.arrays[decl.name] = globals_.arrays[decl.name];
    } else {
      auto arr = std::make_shared<ArrayStorage>();
      arr->uid = next_uid_++;
      arr->name = decl.name;
      arr->type = decl.type;
      arr->bounds = std::move(bounds);
      arr->data.assign(static_cast<size_t>(arr->size()), 0.0);
      frame.arrays[decl.name] = std::move(arr);
    }
  }
  return frame;
}

void ProcessorContext::run() {
  const Procedure* main = program_.main();
  if (!main) throw std::runtime_error("SPMD program has no main PROGRAM");
  main_frame_ = make_frame(*main, nullptr, nullptr);
  exec_stmts(main->body, main_frame_);
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

namespace {
thread_local bool g_returning = false;
}

void ProcessorContext::exec_stmts(const std::vector<StmtPtr>& stmts,
                                  Frame& frame) {
  for (const auto& s : stmts) {
    if (g_returning) return;
    exec_stmt(*s, frame);
  }
}

void ProcessorContext::exec_stmt(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  switch (s.kind) {
    case StmtKind::Assign: {
      Value v = eval(*s.rhs, frame);
      if (s.lhs->kind == ExprKind::VarRef) {
        Value* cell = scalar_lvalue(s.lhs->name, frame);
        *cell = v;
      } else {
        ArrayStorage* arr = array_of(s.lhs->name, frame);
        auto point = eval_point(s.lhs->args, frame);
        arr->set(point, v.as_real());
      }
      break;
    }
    case StmtKind::If: {
      stats_.clock_us += cm.guard_us;
      if (eval(*s.cond, frame).truthy())
        exec_stmts(s.then_body, frame);
      else
        exec_stmts(s.else_body, frame);
      break;
    }
    case StmtKind::Do: {
      int64_t lb = eval(*s.lb, frame).as_int();
      int64_t ub = eval(*s.ub, frame).as_int();
      int64_t step = s.step ? eval(*s.step, frame).as_int() : 1;
      if (step == 0) throw std::runtime_error("DO step is zero");
      Value* var = scalar_lvalue(s.loop_var, frame);
      for (int64_t i = lb; step > 0 ? i <= ub : i >= ub; i += step) {
        *var = Value::of_int(i);
        stats_.clock_us += cm.loop_overhead_us;
        ++stats_.iterations;
        exec_stmts(s.body, frame);
        if (g_returning) break;
      }
      break;
    }
    case StmtKind::Call:
      exec_call(s, frame);
      break;
    case StmtKind::Return:
      g_returning = true;
      break;
    case StmtKind::Continue:
      break;
    case StmtKind::Align:
      break;
    case StmtKind::Distribute: {
      // Run-time redistribution: the mapping library moves data unless
      // this is the array's first (initial) distribution.
      ArrayStorage* arr = array_of(s.dist_target, frame);
      DecompSpec to;
      to.dists = s.dist_specs;
      auto it = registry_.find(arr);
      if (it == registry_.end()) {
        apply_redistribution(arr, nullptr, to);
      } else if (!(it->second == to)) {
        DecompSpec from = it->second;
        apply_redistribution(arr, &from, to);
      }
      break;
    }
    case StmtKind::Send:
      exec_send(s, frame);
      break;
    case StmtKind::Recv:
      exec_recv(s, frame);
      break;
    case StmtKind::Broadcast:
      exec_broadcast(s, frame);
      break;
    case StmtKind::Remap:
      exec_remap(s, frame);
      break;
    case StmtKind::MarkDist: {
      ArrayStorage* arr = array_of(s.dist_target, frame);
      DecompSpec spec;
      spec.dists = s.dist_specs;
      registry_[arr] = std::move(spec);
      break;
    }
    case StmtKind::AllReduce: {
      // Gather-to-root + broadcast realization of the collective.
      const int P = machine_.n_procs();
      Value* cell = scalar_lvalue(s.msg_array, frame);
      if (P == 1) break;
      auto combine = [&](double acc, double v) {
        if (s.reduce_op == "min") return std::min(acc, v);
        if (s.reduce_op == "max") return std::max(acc, v);
        return acc + v;
      };
      if (my_p_ == 0) {
        double acc = cell->as_real();
        for (int p = 1; p < P; ++p) {
          SimMessage msg = machine_.network().recv(my_p_, p);
          acc = combine(acc, msg.payload.at(0));
          stats_.clock_us = std::max(stats_.clock_us + cm.recv_overhead_us,
                                     msg.arrival_us);
          ++stats_.recvs;
        }
        *cell = Value::of_real(acc);
        SimMessage proto;
        proto.src = my_p_;
        proto.tag = s.msg_array;
        proto.payload = {acc};
        proto.bytes = cm.elem_bytes;
        proto.send_time_us = stats_.clock_us;
        proto.arrival_us =
            stats_.clock_us + cm.wire_time(proto.bytes) * cm.bcast_depth(P);
        for (int p = 1; p < P; ++p)
          machine_.network().send(my_p_, p, proto);
        stats_.clock_us += cm.send_overhead_us * cm.bcast_depth(P);
        stats_.sends += P - 1;
      } else {
        SimMessage up;
        up.src = my_p_;
        up.tag = s.msg_array;
        up.payload = {cell->as_real()};
        up.bytes = cm.elem_bytes;
        up.send_time_us = stats_.clock_us;
        up.arrival_us = stats_.clock_us + cm.wire_time(up.bytes);
        machine_.network().send(my_p_, 0, std::move(up));
        stats_.clock_us += cm.send_overhead_us;
        ++stats_.sends;
        SimMessage down = machine_.network().recv(my_p_, 0);
        *cell = Value::of_real(down.payload.at(0));
        stats_.clock_us = std::max(stats_.clock_us + cm.recv_overhead_us,
                                   down.arrival_us);
        ++stats_.recvs;
      }
      break;
    }
  }
}

void ProcessorContext::exec_call(const Stmt& s, Frame& frame) {
  const Procedure* callee = program_.ast.find(s.callee);
  if (!callee)
    throw std::runtime_error("call to unknown procedure '" + s.callee + "'");
  stats_.clock_us += machine_.cost_model().call_overhead_us;
  // Fortran D scoping: decomposition changes in the callee are undone on
  // return — including the data motion of the restoring remap.
  auto saved_registry = registry_;
  Frame inner = make_frame(*callee, &frame, &s.call_args);
  bool saved_return = g_returning;
  g_returning = false;
  exec_stmts(callee->body, inner);
  g_returning = saved_return;
  for (const auto& [arr, spec] : saved_registry) {
    auto it = registry_.find(arr);
    if (it != registry_.end() && !(it->second == spec)) {
      DecompSpec from = it->second;
      apply_redistribution(const_cast<ArrayStorage*>(arr), &from, spec);
    }
  }
  registry_ = std::move(saved_registry);
}

void ProcessorContext::exec_send(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  int dst = static_cast<int>(eval(*s.peer, frame).as_int());
  ArrayStorage* arr = array_of(s.msg_array, frame);
  Rsd section = eval_section(s.msg_section, frame);
  if (section.empty()) return;  // edge processor with a short/empty block

  SimMessage msg;
  msg.src = my_p_;
  msg.tag = s.msg_array;
  for (const auto& point : section.enumerate())
    msg.payload.push_back(arr->get(point));
  msg.bytes = static_cast<int64_t>(msg.payload.size()) * cm.elem_bytes;
  msg.send_time_us = stats_.clock_us;
  msg.arrival_us = stats_.clock_us + cm.wire_time(msg.bytes);
  stats_.clock_us += cm.send_overhead_us;
  ++stats_.sends;
  machine_.network().send(my_p_, dst, std::move(msg));
}

void ProcessorContext::exec_recv(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  int src = static_cast<int>(eval(*s.peer, frame).as_int());
  ArrayStorage* arr = array_of(s.msg_array, frame);
  Rsd section = eval_section(s.msg_section, frame);
  if (section.empty()) return;  // matches the sender's empty-section skip

  SimMessage msg = machine_.network().recv(my_p_, src);
  auto points = section.enumerate();
  if (msg.payload.size() != points.size())
    throw std::runtime_error("message size mismatch on recv of " +
                             s.msg_array + ": sent " +
                             std::to_string(msg.payload.size()) + " expected " +
                             std::to_string(points.size()));
  for (size_t i = 0; i < points.size(); ++i)
    arr->set(points[i], msg.payload[i]);
  stats_.clock_us =
      std::max(stats_.clock_us + cm.recv_overhead_us, msg.arrival_us);
  ++stats_.recvs;
}

void ProcessorContext::exec_broadcast(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  const int P = machine_.n_procs();
  int root = static_cast<int>(eval(*s.peer, frame).as_int());
  const int depth = cm.bcast_depth(P);

  const bool scalar = s.msg_section.empty();
  ArrayStorage* arr = scalar ? nullptr : array_of(s.msg_array, frame);
  Rsd section = scalar ? Rsd{} : eval_section(s.msg_section, frame);

  if (P == 1) return;
  if (my_p_ == root) {
    SimMessage proto;
    proto.src = my_p_;
    proto.tag = s.msg_array;
    if (scalar) {
      Value* cell = scalar_lvalue(s.msg_array, frame);
      proto.payload.push_back(cell->as_real());
    } else {
      for (const auto& point : section.enumerate())
        proto.payload.push_back(arr->get(point));
    }
    proto.bytes = static_cast<int64_t>(proto.payload.size()) * cm.elem_bytes;
    proto.send_time_us = stats_.clock_us;
    proto.arrival_us = stats_.clock_us + cm.wire_time(proto.bytes) * depth;
    for (int p = 0; p < P; ++p) {
      if (p == my_p_) continue;
      SimMessage msg = proto;
      machine_.network().send(my_p_, p, std::move(msg));
    }
    stats_.clock_us += cm.send_overhead_us * depth;
    stats_.sends += P - 1;
  } else {
    SimMessage msg = machine_.network().recv(my_p_, root);
    if (scalar) {
      Value* cell = scalar_lvalue(s.msg_array, frame);
      // Preserve integer-ness for integer scalars (pivot indices).
      double v = msg.payload.at(0);
      if (cell->is_int && v == std::floor(v))
        *cell = Value::of_int(static_cast<int64_t>(v));
      else
        *cell = Value::of_real(v);
    } else {
      auto points = section.enumerate();
      if (msg.payload.size() != points.size())
        throw std::runtime_error("broadcast size mismatch on " + s.msg_array);
      for (size_t i = 0; i < points.size(); ++i)
        arr->set(points[i], msg.payload[i]);
    }
    stats_.clock_us =
        std::max(stats_.clock_us + cm.recv_overhead_us, msg.arrival_us);
    ++stats_.recvs;
  }
}

void ProcessorContext::apply_redistribution(ArrayStorage* arr,
                                            const DecompSpec* from_spec,
                                            const DecompSpec& to_spec) {
  const CostModel& cm = machine_.cost_model();
  const int P = machine_.n_procs();
  registry_[arr] = to_spec;
  if (!from_spec) return;  // initial labeling: no data motion

  // Synchronize: remapping is collective.
  stats_.clock_us = machine_.barrier_max_clock(stats_.clock_us);

  ArrayDistribution from(arr->name, *from_spec, arr->bounds, P);
  ArrayDistribution to(arr->name, to_spec, arr->bounds, P);
  int64_t moved_bytes = from.remap_bytes(to, cm.elem_bytes);

  if (moved_bytes > 0) {
    // Pull current values for every element this processor now owns from
    // the previous owner's copy (their copy is authoritative).
    Rsd full = Rsd::dense(arr->bounds);
    for (const auto& point : full.enumerate()) {
      int old_owner = from.owner_of(point);
      int new_owner = to.owner_of(point);
      if (new_owner != my_p_ || old_owner == my_p_) continue;
      ProcessorContext* peer = machine_.context(old_owner);
      ArrayStorage* peer_arr = peer->array_by_uid(arr->uid);
      if (peer_arr) arr->set(point, peer_arr->get(point));
    }
    // Charge: each processor exchanges roughly 1/P of the moved data.
    double share = static_cast<double>(moved_bytes) / P;
    stats_.clock_us += 2.0 * (cm.alpha_us + cm.beta_us_per_byte * share) +
                       cm.send_overhead_us + cm.recv_overhead_us;
    if (my_p_ == 0) {
      machine_.network().add_traffic(2 * P, moved_bytes);
      machine_.count_remap(moved_bytes);
    }
  }
  // Second barrier: no processor races ahead while peers still read.
  stats_.clock_us = machine_.barrier_max_clock(stats_.clock_us);
}

void ProcessorContext::exec_remap(const Stmt& s, Frame& frame) {
  ArrayStorage* arr = array_of(s.dist_target, frame);
  DecompSpec to_spec;
  to_spec.dists = s.dist_specs;
  if (s.from_specs.empty()) {
    apply_redistribution(arr, nullptr, to_spec);
    return;
  }
  DecompSpec from_spec;
  from_spec.dists = s.from_specs;
  apply_redistribution(arr, &from_spec, to_spec);
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

Value* ProcessorContext::scalar_lvalue(const std::string& name, Frame& frame) {
  auto it = frame.scalars.find(name);
  if (it != frame.scalars.end()) return it->second.get();
  auto git = globals_.scalars.find(name);
  if (git != globals_.scalars.end()) return git->second.get();
  // Implicit local (loop variables, compiler temporaries).
  auto cell = std::make_shared<Value>(Value::of_int(0));
  Value* raw = cell.get();
  frame.scalars[name] = std::move(cell);
  return raw;
}

ArrayStorage* ProcessorContext::array_of(const std::string& name, Frame& frame) {
  auto it = frame.arrays.find(name);
  if (it != frame.arrays.end()) return it->second.get();
  auto git = globals_.arrays.find(name);
  if (git != globals_.arrays.end()) return git->second.get();
  throw std::runtime_error("reference to unknown array '" + name + "'");
}

std::vector<int64_t> ProcessorContext::eval_point(
    const std::vector<ExprPtr>& subs, Frame& frame) {
  std::vector<int64_t> point;
  point.reserve(subs.size());
  for (const auto& s : subs) point.push_back(eval(*s, frame).as_int());
  return point;
}

Rsd ProcessorContext::eval_section(const std::vector<SectionExpr>& sec,
                                   Frame& frame) {
  std::vector<Triplet> dims;
  for (const auto& t : sec) {
    int64_t lb = eval(*t.lb, frame).as_int();
    int64_t ub = eval(*t.ub, frame).as_int();
    int64_t step = t.step ? eval(*t.step, frame).as_int() : 1;
    dims.emplace_back(lb, ub, step);
  }
  return Rsd(std::move(dims));
}

Value ProcessorContext::eval_intrinsic(const Expr& e, Frame& frame) {
  auto arg = [&](size_t i) { return eval(*e.args[i], frame); };
  const std::string& n = e.name;
  if (n == "myproc") return Value::of_int(my_p_);
  if (n == "min") {
    Value v = arg(0);
    for (size_t i = 1; i < e.args.size(); ++i) {
      Value w = arg(i);
      if (v.is_int && w.is_int)
        v = Value::of_int(std::min(v.i, w.i));
      else
        v = Value::of_real(std::min(v.as_real(), w.as_real()));
    }
    return v;
  }
  if (n == "max") {
    Value v = arg(0);
    for (size_t i = 1; i < e.args.size(); ++i) {
      Value w = arg(i);
      if (v.is_int && w.is_int)
        v = Value::of_int(std::max(v.i, w.i));
      else
        v = Value::of_real(std::max(v.as_real(), w.as_real()));
    }
    return v;
  }
  if (n == "modp") {
    int64_t a = arg(0).as_int(), m = arg(1).as_int();
    int64_t r = a % m;
    return Value::of_int(r < 0 ? r + m : r);
  }
  if (n == "mod") return Value::of_int(arg(0).as_int() % arg(1).as_int());
  if (n == "abs") {
    Value v = arg(0);
    return v.is_int ? Value::of_int(std::abs(v.i))
                    : Value::of_real(std::fabs(v.d));
  }
  if (n == "sqrt") return Value::of_real(std::sqrt(arg(0).as_real()));
  if (n == "f") {
    // The paper's unspecified F(...) — an arbitrary elementwise function.
    return Value::of_real(0.5 * arg(0).as_real() + 1.0);
  }
  if (n.rfind("owner$", 0) == 0) {
    std::string array = n.substr(6);
    ArrayStorage* arr = array_of(array, frame);
    auto it = registry_.find(arr);
    DecompSpec spec;
    if (it != registry_.end()) spec = it->second;
    ArrayDistribution ad(array, spec, arr->bounds, machine_.n_procs());
    auto point = eval_point(e.args, frame);
    return Value::of_int(ad.owner_of(point));
  }
  throw std::runtime_error("unknown intrinsic function '" + n + "'");
}

Value ProcessorContext::eval(const Expr& e, Frame& frame) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return Value::of_int(e.int_val);
    case ExprKind::RealLit:
      return Value::of_real(e.real_val);
    case ExprKind::VarRef:
      return *scalar_lvalue(e.name, frame);
    case ExprKind::ArrayRef: {
      ArrayStorage* arr = array_of(e.name, frame);
      auto point = eval_point(e.args, frame);
      double v = arr->get(point);
      return arr->type == ElemType::Integer
                 ? Value::of_int(static_cast<int64_t>(v))
                 : Value::of_real(v);
    }
    case ExprKind::FuncCall: {
      stats_.clock_us += machine_.cost_model().flop_us;
      ++stats_.flops;
      return eval_intrinsic(e, frame);
    }
    case ExprKind::Unary: {
      Value v = eval(*e.args[0], frame);
      if (e.un_op == UnOp::Neg)
        return v.is_int ? Value::of_int(-v.i) : Value::of_real(-v.d);
      return Value::of_int(v.truthy() ? 0 : 1);
    }
    case ExprKind::Binary: {
      Value l = eval(*e.args[0], frame);
      Value r = eval(*e.args[1], frame);
      stats_.clock_us += machine_.cost_model().flop_us;
      ++stats_.flops;
      const bool ii = l.is_int && r.is_int;
      switch (e.bin_op) {
        case BinOp::Add:
          return ii ? Value::of_int(l.i + r.i)
                    : Value::of_real(l.as_real() + r.as_real());
        case BinOp::Sub:
          return ii ? Value::of_int(l.i - r.i)
                    : Value::of_real(l.as_real() - r.as_real());
        case BinOp::Mul:
          return ii ? Value::of_int(l.i * r.i)
                    : Value::of_real(l.as_real() * r.as_real());
        case BinOp::Div:
          if (ii) {
            if (r.i == 0) throw std::runtime_error("integer division by zero");
            return Value::of_int(l.i / r.i);
          }
          return Value::of_real(l.as_real() / r.as_real());
        case BinOp::Eq:
          return Value::of_int(ii ? l.i == r.i : l.as_real() == r.as_real());
        case BinOp::Ne:
          return Value::of_int(ii ? l.i != r.i : l.as_real() != r.as_real());
        case BinOp::Lt:
          return Value::of_int(ii ? l.i < r.i : l.as_real() < r.as_real());
        case BinOp::Le:
          return Value::of_int(ii ? l.i <= r.i : l.as_real() <= r.as_real());
        case BinOp::Gt:
          return Value::of_int(ii ? l.i > r.i : l.as_real() > r.as_real());
        case BinOp::Ge:
          return Value::of_int(ii ? l.i >= r.i : l.as_real() >= r.as_real());
        case BinOp::And:
          return Value::of_int(l.truthy() && r.truthy());
        case BinOp::Or:
          return Value::of_int(l.truthy() || r.truthy());
      }
      return Value::of_int(0);
    }
  }
  return Value::of_int(0);
}

int ProcessorContext::flop_cost(const Expr& e) const {
  int n = e.kind == ExprKind::Binary || e.kind == ExprKind::FuncCall ? 1 : 0;
  for (const auto& a : e.args) n += flop_cost(*a);
  return n;
}

}  // namespace fortd
