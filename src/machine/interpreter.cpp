#include "machine/interpreter.hpp"

#include <algorithm>
#include <cmath>

#include "machine/simulator.hpp"

namespace fortd {

ProcessorContext::ProcessorContext(Machine& machine, const SpmdProgram& program,
                                   int my_p)
    : EvalCore(program.ast, my_p, program.options.n_procs),
      machine_(machine) {}

void ProcessorContext::charge_guard() {
  stats_.clock_us += machine_.cost_model().guard_us;
}

void ProcessorContext::charge_loop_iteration() {
  stats_.clock_us += machine_.cost_model().loop_overhead_us;
}

void ProcessorContext::charge_flop() {
  stats_.clock_us += machine_.cost_model().flop_us;
}

void ProcessorContext::charge_call() {
  stats_.clock_us += machine_.cost_model().call_overhead_us;
}

void ProcessorContext::exec_send(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  int dst = static_cast<int>(eval(*s.peer, frame).as_int());
  ArrayStorage* arr = array_of(s.msg_array, frame);
  Rsd section = eval_section(s.msg_section, frame);
  if (section.empty()) return;  // edge processor with a short/empty block

  SimMessage msg;
  msg.src = my_p_;
  msg.tag = s.msg_array;
  msg.payload = pack_section(arr, section);
  msg.bytes = static_cast<int64_t>(msg.payload.size()) * cm.elem_bytes;
  msg.send_time_us = stats_.clock_us;
  msg.arrival_us = stats_.clock_us + cm.wire_time(msg.bytes);
  stats_.clock_us += cm.send_overhead_us;
  ++stats_.sends;
  stats_.sent_bytes += msg.bytes;
  machine_.network().send(my_p_, dst, std::move(msg));
}

void ProcessorContext::exec_recv(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  int src = static_cast<int>(eval(*s.peer, frame).as_int());
  ArrayStorage* arr = array_of(s.msg_array, frame);
  Rsd section = eval_section(s.msg_section, frame);
  if (section.empty()) return;  // matches the sender's empty-section skip

  SimMessage msg = machine_.network().recv(my_p_, src);
  unpack_section(arr, section, msg.payload, "recv of " + s.msg_array);
  stats_.clock_us =
      std::max(stats_.clock_us + cm.recv_overhead_us, msg.arrival_us);
  ++stats_.recvs;
  stats_.recvd_bytes += msg.bytes;
}

void ProcessorContext::exec_broadcast(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  const int P = machine_.n_procs();
  int root = static_cast<int>(eval(*s.peer, frame).as_int());
  const int depth = cm.bcast_depth(P);

  const bool scalar = s.msg_section.empty();
  ArrayStorage* arr = scalar ? nullptr : array_of(s.msg_array, frame);
  Rsd section = scalar ? Rsd{} : eval_section(s.msg_section, frame);

  if (P == 1) return;
  if (my_p_ == root) {
    SimMessage proto;
    proto.src = my_p_;
    proto.tag = s.msg_array;
    if (scalar) {
      Value* cell = scalar_lvalue(s.msg_array, frame);
      proto.payload.push_back(cell->as_real());
    } else {
      proto.payload = pack_section(arr, section);
    }
    proto.bytes = static_cast<int64_t>(proto.payload.size()) * cm.elem_bytes;
    proto.send_time_us = stats_.clock_us;
    proto.arrival_us = stats_.clock_us + cm.wire_time(proto.bytes) * depth;
    for (int p = 0; p < P; ++p) {
      if (p == my_p_) continue;
      SimMessage msg = proto;
      machine_.network().send(my_p_, p, std::move(msg));
    }
    stats_.clock_us += cm.send_overhead_us * depth;
    stats_.sends += P - 1;
    stats_.sent_bytes += (P - 1) * proto.bytes;
  } else {
    SimMessage msg = machine_.network().recv(my_p_, root);
    if (scalar) {
      Value* cell = scalar_lvalue(s.msg_array, frame);
      store_bcast_scalar(cell, msg.payload.at(0));
    } else {
      auto points = section.enumerate();
      if (msg.payload.size() != points.size())
        throw std::runtime_error("broadcast size mismatch on " + s.msg_array);
      for (size_t i = 0; i < points.size(); ++i)
        arr->set(points[i], msg.payload[i]);
    }
    stats_.clock_us =
        std::max(stats_.clock_us + cm.recv_overhead_us, msg.arrival_us);
    ++stats_.recvs;
    stats_.recvd_bytes += msg.bytes;
  }
}

void ProcessorContext::exec_allreduce(const Stmt& s, Frame& frame) {
  const CostModel& cm = machine_.cost_model();
  // Gather-to-root + broadcast realization of the collective.
  const int P = machine_.n_procs();
  Value* cell = scalar_lvalue(s.msg_array, frame);
  if (P == 1) return;
  auto combine = [&](double acc, double v) {
    if (s.reduce_op == "min") return std::min(acc, v);
    if (s.reduce_op == "max") return std::max(acc, v);
    return acc + v;
  };
  if (my_p_ == 0) {
    double acc = cell->as_real();
    for (int p = 1; p < P; ++p) {
      SimMessage msg = machine_.network().recv(my_p_, p);
      acc = combine(acc, msg.payload.at(0));
      stats_.clock_us = std::max(stats_.clock_us + cm.recv_overhead_us,
                                 msg.arrival_us);
      ++stats_.recvs;
      stats_.recvd_bytes += msg.bytes;
    }
    *cell = Value::of_real(acc);
    SimMessage proto;
    proto.src = my_p_;
    proto.tag = s.msg_array;
    proto.payload = {acc};
    proto.bytes = cm.elem_bytes;
    proto.send_time_us = stats_.clock_us;
    proto.arrival_us =
        stats_.clock_us + cm.wire_time(proto.bytes) * cm.bcast_depth(P);
    for (int p = 1; p < P; ++p)
      machine_.network().send(my_p_, p, proto);
    stats_.clock_us += cm.send_overhead_us * cm.bcast_depth(P);
    stats_.sends += P - 1;
    stats_.sent_bytes += (P - 1) * proto.bytes;
  } else {
    SimMessage up;
    up.src = my_p_;
    up.tag = s.msg_array;
    up.payload = {cell->as_real()};
    up.bytes = cm.elem_bytes;
    up.send_time_us = stats_.clock_us;
    up.arrival_us = stats_.clock_us + cm.wire_time(up.bytes);
    machine_.network().send(my_p_, 0, std::move(up));
    stats_.clock_us += cm.send_overhead_us;
    ++stats_.sends;
    stats_.sent_bytes += cm.elem_bytes;
    SimMessage down = machine_.network().recv(my_p_, 0);
    *cell = Value::of_real(down.payload.at(0));
    stats_.clock_us = std::max(stats_.clock_us + cm.recv_overhead_us,
                               down.arrival_us);
    ++stats_.recvs;
    stats_.recvd_bytes += down.bytes;
  }
}

void ProcessorContext::apply_redistribution(ArrayStorage* arr,
                                            const DecompSpec* from_spec,
                                            const DecompSpec& to_spec) {
  const CostModel& cm = machine_.cost_model();
  const int P = machine_.n_procs();
  note_distribution(arr, to_spec);
  if (!from_spec) return;  // initial labeling: no data motion

  // Synchronize: remapping is collective.
  stats_.clock_us = machine_.barrier_max_clock(stats_.clock_us);

  ArrayDistribution from(arr->name, *from_spec, arr->bounds, P);
  ArrayDistribution to(arr->name, to_spec, arr->bounds, P);
  int64_t moved_bytes = from.remap_bytes(to, cm.elem_bytes);

  if (moved_bytes > 0) {
    // Pull current values for every element this processor now owns from
    // the previous owner's copy (their copy is authoritative).
    Rsd full = Rsd::dense(arr->bounds);
    for (const auto& point : full.enumerate()) {
      int old_owner = from.owner_of(point);
      int new_owner = to.owner_of(point);
      if (new_owner != my_p_ || old_owner == my_p_) continue;
      ProcessorContext* peer = machine_.context(old_owner);
      ArrayStorage* peer_arr = peer->array_by_uid(arr->uid);
      if (peer_arr) arr->set(point, peer_arr->get(point));
    }
    // Charge: each processor exchanges roughly 1/P of the moved data.
    double share = static_cast<double>(moved_bytes) / P;
    stats_.clock_us += 2.0 * (cm.alpha_us + cm.beta_us_per_byte * share) +
                       cm.send_overhead_us + cm.recv_overhead_us;
    if (my_p_ == 0) {
      machine_.network().add_traffic(2 * P, moved_bytes);
      machine_.count_remap(moved_bytes);
    }
  }
  // Second barrier: no processor races ahead while peers still read.
  stats_.clock_us = machine_.barrier_max_clock(stats_.clock_us);
}

}  // namespace fortd
