// Cost model for the simulated MIMD distributed-memory machine.
//
// Substitution (see DESIGN.md): the paper ran on real iPSC/860 hardware;
// we charge per-processor logical clocks with a latency+bandwidth message
// model (T_msg = alpha + beta * bytes), tree-structured broadcasts, and a
// per-operation compute cost. The defaults approximate the iPSC/860
// (~136 us message startup, ~2.8 MB/s sustained per link in 1992 terms
// scaled to 0.4 us/byte); all knobs are configurable so benchmark shapes
// can be stress-tested across machine balances.
#pragma once

#include <cmath>
#include <cstdint>

namespace fortd {

struct CostModel {
  double alpha_us = 136.0;        // message startup latency
  double beta_us_per_byte = 0.4;  // per-byte transfer time
  double send_overhead_us = 44.0; // sender-side occupancy per message
  double recv_overhead_us = 44.0; // receiver-side occupancy per message
  double flop_us = 0.1;           // per arithmetic operation
  double loop_overhead_us = 0.05; // per loop iteration
  double guard_us = 0.02;         // per evaluated guard/branch
  double call_overhead_us = 0.5;  // per procedure call
  int elem_bytes = 8;             // REAL is REAL*8 in the simulator

  /// Point-to-point delivery time after the send is initiated.
  double wire_time(int64_t bytes) const {
    return alpha_us + beta_us_per_byte * static_cast<double>(bytes);
  }

  /// Tree depth used for broadcast cost.
  int bcast_depth(int nprocs) const {
    int d = 0;
    while ((1 << d) < nprocs) ++d;
    return d == 0 ? 1 : d;
  }

  static CostModel ipsc860() { return CostModel{}; }

  /// A low-latency machine (alpha 10x smaller) for crossover studies.
  static CostModel low_latency() {
    CostModel cm;
    cm.alpha_us = 13.6;
    cm.send_overhead_us = 5.0;
    cm.recv_overhead_us = 5.0;
    return cm;
  }
};

}  // namespace fortd
