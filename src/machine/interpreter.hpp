// SPMD interpreter: one ProcessorContext per virtual processor executes
// the generated program, exchanging messages through the Network and
// advancing a logical clock according to the CostModel.
//
// Storage model: every processor holds full-size (global index space)
// copies of all arrays; ownership determines which copy is *current*.
// This matches how the compiled code is generated (global indices) and
// leaves all measured quantities — messages, bytes, simulated time —
// identical to a local-index implementation (see DESIGN.md).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/distribution.hpp"
#include "codegen/spmd.hpp"
#include "machine/cost_model.hpp"
#include "machine/network.hpp"

namespace fortd {

class Machine;

/// A typed scalar value. Integer arithmetic stays exact (Fortran integer
/// division truncates); mixed expressions promote to real.
struct Value {
  bool is_int = true;
  int64_t i = 0;
  double d = 0.0;

  static Value of_int(int64_t v) { return {true, v, static_cast<double>(v)}; }
  static Value of_real(double v) { return {false, 0, v}; }
  double as_real() const { return is_int ? static_cast<double>(i) : d; }
  int64_t as_int() const { return is_int ? i : static_cast<int64_t>(d); }
  bool truthy() const { return is_int ? i != 0 : d != 0.0; }
};

/// Array storage: column-major-agnostic flat buffer addressed by global
/// indices. `uid` is the allocation sequence number — identical across
/// processors because SPMD execution is symmetric — used to pair up peers'
/// copies during remaps.
struct ArrayStorage {
  int uid = -1;
  std::string name;
  ElemType type = ElemType::Real;
  std::vector<std::pair<int64_t, int64_t>> bounds;
  std::vector<double> data;

  int64_t flat_index(const std::vector<int64_t>& point) const;
  int64_t size() const;
  double get(const std::vector<int64_t>& point) const {
    return data[static_cast<size_t>(flat_index(point))];
  }
  void set(const std::vector<int64_t>& point, double v) {
    data[static_cast<size_t>(flat_index(point))] = v;
  }
};

/// A scalar cell, shareable by reference across call frames.
using ScalarCell = std::shared_ptr<Value>;
using ArrayRefPtr = std::shared_ptr<ArrayStorage>;

struct Frame {
  std::map<std::string, ScalarCell> scalars;
  std::map<std::string, ArrayRefPtr> arrays;
};

struct ProcStats {
  double clock_us = 0.0;
  int64_t flops = 0;
  int64_t iterations = 0;
  int64_t sends = 0;
  int64_t recvs = 0;
};

class ProcessorContext {
public:
  ProcessorContext(Machine& machine, const SpmdProgram& program, int my_p);

  /// Execute the main program to completion.
  void run();

  int my_p() const { return my_p_; }
  const ProcStats& stats() const { return stats_; }
  /// The main program's frame (kept alive after run for result gathering).
  const Frame& main_frame() const { return main_frame_; }
  ArrayStorage* array_by_uid(int uid) const;
  const DecompSpec* registry_spec(const ArrayStorage* storage) const;

private:
  friend class Machine;

  void exec_stmts(const std::vector<StmtPtr>& stmts, Frame& frame);
  void exec_stmt(const Stmt& s, Frame& frame);
  void exec_call(const Stmt& s, Frame& frame);
  void exec_send(const Stmt& s, Frame& frame);
  void exec_recv(const Stmt& s, Frame& frame);
  void exec_broadcast(const Stmt& s, Frame& frame);
  void exec_remap(const Stmt& s, Frame& frame);
  /// Collective redistribution: pull newly owned elements from previous
  /// owners' copies and charge the remap cost. `from` null = initial
  /// labeling (no data motion).
  void apply_redistribution(ArrayStorage* arr, const DecompSpec* from,
                            const DecompSpec& to);

  Value eval(const Expr& e, Frame& frame);
  Value eval_intrinsic(const Expr& e, Frame& frame);
  Value* scalar_lvalue(const std::string& name, Frame& frame);
  ArrayStorage* array_of(const std::string& name, Frame& frame);
  std::vector<int64_t> eval_point(const std::vector<ExprPtr>& subs, Frame& frame);
  /// Evaluate a message section to a concrete Rsd.
  Rsd eval_section(const std::vector<SectionExpr>& sec, Frame& frame);

  Frame make_frame(const Procedure& proc, Frame* caller,
                   const std::vector<ExprPtr>* actuals);
  int flop_cost(const Expr& e) const;

  Machine& machine_;
  const SpmdProgram& program_;
  int my_p_;
  ProcStats stats_;
  Frame globals_;      // COMMON variables
  Frame main_frame_;
  std::map<const ArrayStorage*, DecompSpec> registry_;
  int next_uid_ = 0;
};

}  // namespace fortd
