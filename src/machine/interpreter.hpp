// SPMD interpreter for the simulated machine: one ProcessorContext per
// virtual processor executes the generated program on the shared EvalCore
// (src/runtime/eval.hpp), exchanging messages through the Network and
// advancing a logical clock according to the CostModel. This is the
// `sim` ExecutionBackend's per-processor body; the evaluation semantics
// live in EvalCore, only the message transport and the cost model are
// simulator-specific.
#pragma once

#include <string>
#include <vector>

#include "codegen/distribution.hpp"
#include "codegen/spmd.hpp"
#include "machine/cost_model.hpp"
#include "machine/network.hpp"
#include "runtime/eval.hpp"

namespace fortd {

class Machine;

class ProcessorContext : public EvalCore {
 public:
  ProcessorContext(Machine& machine, const SpmdProgram& program, int my_p);

 protected:
  void exec_send(const Stmt& s, Frame& frame) override;
  void exec_recv(const Stmt& s, Frame& frame) override;
  void exec_broadcast(const Stmt& s, Frame& frame) override;
  void exec_allreduce(const Stmt& s, Frame& frame) override;
  /// Collective redistribution: pull newly owned elements from previous
  /// owners' copies and charge the remap cost. `from` null = initial
  /// labeling (no data motion).
  void apply_redistribution(ArrayStorage* arr, const DecompSpec* from,
                            const DecompSpec& to) override;

  void charge_guard() override;
  void charge_loop_iteration() override;
  void charge_flop() override;
  void charge_call() override;

 private:
  Machine& machine_;
};

}  // namespace fortd
