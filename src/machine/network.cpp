#include "machine/network.hpp"

#include <chrono>

namespace fortd {

Network::Network(int nprocs, double timeout_seconds)
    : nprocs_(nprocs),
      timeout_seconds_(timeout_seconds),
      channels_(static_cast<size_t>(nprocs) * static_cast<size_t>(nprocs)) {}

void Network::send(int src, int dst, SimMessage msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++messages_;
    bytes_ += msg.bytes;
    channel(src, dst).queue.push_back(std::move(msg));
  }
  cv_.notify_all();
}

SimMessage Network::recv(int dst, int src) {
  std::unique_lock<std::mutex> lock(mu_);
  Channel& ch = channel(src, dst);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_seconds_);
  while (ch.queue.empty()) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        ch.queue.empty())
      throw SimDeadlock("simulated deadlock: processor " +
                        std::to_string(dst) + " waiting on message from " +
                        std::to_string(src));
  }
  SimMessage msg = std::move(ch.queue.front());
  ch.queue.pop_front();
  return msg;
}

void Network::add_traffic(int64_t messages, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  messages_ += messages;
  bytes_ += bytes;
}

}  // namespace fortd
