#include "machine/simulator.hpp"

#include <algorithm>
#include <thread>

#include "support/thread_pool.hpp"

namespace fortd {

Machine::Machine(CostModel cost_model, ThreadPool* pool)
    : cost_(cost_model), pool_(pool) {}

double Machine::barrier_max_clock(double my_clock) {
  std::unique_lock<std::mutex> lock(bar_mu_);
  long my_generation = bar_generation_;
  bar_max_ = std::max(bar_max_, my_clock);
  if (++bar_waiting_ == n_procs_) {
    // Last arrival releases the barrier. The release value stays valid for
    // this generation: a subsequent barrier cannot complete (and overwrite
    // it) until every waiter of this one has re-entered.
    bar_release_value_ = bar_max_;
    bar_max_ = 0.0;
    bar_waiting_ = 0;
    ++bar_generation_;
    bar_cv_.notify_all();
    return bar_release_value_;
  }
  bar_cv_.wait(lock, [&] { return bar_generation_ != my_generation; });
  return bar_release_value_;
}

void Machine::count_remap(int64_t bytes) {
  std::lock_guard<std::mutex> lock(stat_mu_);
  ++remaps_;
  remap_bytes_ += bytes;
}

RunResult Machine::run(const SpmdProgram& program) {
  n_procs_ = program.options.n_procs;
  network_ = std::make_unique<Network>(n_procs_);
  contexts_ =
      std::make_shared<std::vector<std::unique_ptr<ProcessorContext>>>();
  for (int p = 0; p < n_procs_; ++p)
    contexts_->push_back(std::make_unique<ProcessorContext>(*this, program, p));

  if (pool_) {
    // Processor bodies block on each other, so the batch deadlocks unless
    // its concurrency (workers + the caller) covers every processor.
    pool_->ensure_workers(n_procs_ - 1);
    // parallel_for rethrows the lowest-index exception — the same
    // first-error-in-processor-order the thread path reports.
    pool_->parallel_for(static_cast<size_t>(n_procs_), [this](size_t p) {
      (*contexts_)[p]->run();
    });
  } else {
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(static_cast<size_t>(n_procs_));
    threads.reserve(static_cast<size_t>(n_procs_));
    for (int p = 0; p < n_procs_; ++p) {
      threads.emplace_back([this, p, &errors] {
        try {
          (*contexts_)[static_cast<size_t>(p)]->run();
        } catch (...) {
          errors[static_cast<size_t>(p)] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& err : errors)
      if (err) std::rethrow_exception(err);
  }

  RunResult result;
  result.n_procs = n_procs_;
  result.contexts = contexts_;
  for (int p = 0; p < n_procs_; ++p) {
    const ProcStats& st = (*contexts_)[static_cast<size_t>(p)]->stats();
    result.per_proc.push_back(st);
    result.sim_time_us = std::max(result.sim_time_us, st.clock_us);
  }
  result.messages = network_->total_messages();
  result.bytes = network_->total_bytes();
  result.remaps_executed = remaps_;
  result.remap_bytes = remap_bytes_;
  return result;
}

namespace {

std::vector<double> gather_impl(
    const std::vector<std::unique_ptr<ProcessorContext>>& contexts,
    int /*n_procs*/, const std::string& array, const DecompSpec* spec) {
  std::vector<const EvalCore*> views;
  views.reserve(contexts.size());
  for (const auto& c : contexts) views.push_back(c.get());
  return gather_array(views, array, spec);
}

}  // namespace

std::vector<double> RunResult::gather(const std::string& array) const {
  if (!contexts || contexts->empty())
    throw std::runtime_error("gather: no simulation contexts");
  return gather_impl(*contexts, n_procs, array, nullptr);
}

std::vector<double> RunResult::gather(const std::string& array,
                                      const DecompSpec& spec) const {
  if (!contexts || contexts->empty())
    throw std::runtime_error("gather: no simulation contexts");
  return gather_impl(*contexts, n_procs, array, &spec);
}

double RunResult::gather_scalar(const std::string& name) const {
  const ProcessorContext& p0 = *(*contexts)[0];
  auto it = p0.main_frame().scalars.find(name);
  if (it == p0.main_frame().scalars.end())
    throw std::runtime_error("gather_scalar: unknown scalar '" + name + "'");
  return it->second->as_real();
}

RunResult simulate(const SpmdProgram& program, CostModel cost_model) {
  Machine machine(cost_model);
  return machine.run(program);
}

}  // namespace fortd
