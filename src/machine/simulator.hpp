// The simulated MIMD distributed-memory machine: spawns one interpreter
// thread per virtual processor, provides the barrier used by collective
// remaps, and reports simulated time plus traffic statistics.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codegen/spmd.hpp"
#include "machine/cost_model.hpp"
#include "machine/interpreter.hpp"
#include "machine/network.hpp"

namespace fortd {

struct RunResult {
  /// Simulated execution time: the maximum processor clock (µs).
  double sim_time_us = 0.0;
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t remaps_executed = 0;   // data-moving remaps
  int64_t remap_bytes = 0;
  std::vector<ProcStats> per_proc;

  /// The authoritative final contents of a main-program array, assembled
  /// from each element's owner. The distribution comes from the run-time
  /// registry when available; pass it explicitly for compiled programs
  /// whose (static) distribution the caller knows.
  std::vector<double> gather(const std::string& array) const;
  std::vector<double> gather(const std::string& array,
                             const DecompSpec& spec) const;
  double gather_scalar(const std::string& name) const;

  // Internal: kept alive for gather().
  std::shared_ptr<std::vector<std::unique_ptr<ProcessorContext>>> contexts;
  int n_procs = 0;
};

class ThreadPool;

class Machine {
public:
  /// `pool`, when non-null, runs the per-processor interpreter bodies on
  /// the given worker pool instead of spawning fresh std::threads per
  /// run(). Processor bodies block on each other (barriers, receives), so
  /// run() grows the pool until workers + caller covers n_procs.
  Machine(CostModel cost_model = CostModel::ipsc860(),
          ThreadPool* pool = nullptr);

  /// Run the SPMD program on options.n_procs virtual processors.
  RunResult run(const SpmdProgram& program);

  const CostModel& cost_model() const { return cost_; }
  Network& network() { return *network_; }

  // -- collective support used by the interpreter ------------------------
  /// Barrier across all processors; every participant's clock is advanced
  /// to the maximum passed in, and the maximum is returned.
  double barrier_max_clock(double my_clock);
  ProcessorContext* context(int p) { return (*contexts_)[static_cast<size_t>(p)].get(); }
  int n_procs() const { return n_procs_; }
  void count_remap(int64_t bytes);
  int64_t remaps_executed() const { return remaps_; }
  int64_t remap_bytes() const { return remap_bytes_; }

private:
  CostModel cost_;
  ThreadPool* pool_ = nullptr;  // borrowed; may be null
  std::unique_ptr<Network> network_;
  std::shared_ptr<std::vector<std::unique_ptr<ProcessorContext>>> contexts_;
  int n_procs_ = 0;

  // Reusable barrier.
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_waiting_ = 0;
  long bar_generation_ = 0;
  double bar_max_ = 0.0;
  double bar_release_value_ = 0.0;

  std::mutex stat_mu_;
  int64_t remaps_ = 0;
  int64_t remap_bytes_ = 0;
};

/// One-call helper: simulate `program` and return the result.
RunResult simulate(const SpmdProgram& program,
                   CostModel cost_model = CostModel::ipsc860());

}  // namespace fortd
