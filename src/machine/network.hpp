// Deterministic message-passing fabric for the machine simulator: one FIFO
// channel per (source, destination) pair, blocking receives with explicit
// sources, and global traffic statistics. Logical send timestamps ride on
// the messages so receivers can advance their clocks to the arrival time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace fortd {

struct SimMessage {
  int src = -1;
  std::string tag;               // array name (debug/assertion aid)
  std::vector<double> payload;
  double send_time_us = 0.0;     // sender's clock when initiated
  double arrival_us = 0.0;       // earliest time the receiver may consume
  int64_t bytes = 0;
};

/// Thrown when a receive waits longer than the configured wall-clock
/// timeout — almost always a generated-code deadlock.
struct SimDeadlock : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Network {
public:
  explicit Network(int nprocs, double timeout_seconds = 30.0);

  void send(int src, int dst, SimMessage msg);
  /// Blocking receive of the next message on the (src, dst) channel.
  SimMessage recv(int dst, int src);

  int64_t total_messages() const { return messages_; }
  int64_t total_bytes() const { return bytes_; }
  void add_traffic(int64_t messages, int64_t bytes);

private:
  struct Channel {
    std::deque<SimMessage> queue;
  };
  Channel& channel(int src, int dst) {
    return channels_[static_cast<size_t>(src) * static_cast<size_t>(nprocs_) +
                     static_cast<size_t>(dst)];
  }

  int nprocs_;
  double timeout_seconds_;
  std::vector<Channel> channels_;
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t messages_ = 0;
  int64_t bytes_ = 0;
};

}  // namespace fortd
