#include "runtime/threaded_backend.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "codegen/distribution.hpp"
#include "support/thread_pool.hpp"

namespace fortd {

namespace {

using runtime::ChannelAborted;
using runtime::ChannelDeadlock;
using runtime::ChannelFabric;
using runtime::RtMessage;

class ThreadedProcess;

/// Everything the P processes share for one execution.
struct RunState {
  RunState(int nprocs, const RuntimeOptions& options)
      : nprocs(nprocs),
        deadline_ms(options.channel.deadline_ms),
        fabric(nprocs, options.channel) {}

  const int nprocs;
  const int deadline_ms;
  ChannelFabric fabric;
  std::vector<std::unique_ptr<ThreadedProcess>> procs;

  // Collective barrier (used by redistribution).
  std::mutex bar_mu;
  std::condition_variable bar_cv;
  int bar_waiting = 0;
  long bar_generation = 0;

  // Remap accounting, mirroring the simulator's (counted once per
  // collective by process 0).
  std::mutex stat_mu;
  int64_t remaps = 0;
  int64_t remap_bytes = 0;

  // First-failure capture: the lowest-index *real* exception wins over
  // the ChannelAborted cascade the poison triggers in its peers.
  std::mutex err_mu;
  std::vector<std::exception_ptr> errors;
  std::vector<bool> error_is_abort;

  void barrier() {
    std::unique_lock<std::mutex> lock(bar_mu);
    const long my_generation = bar_generation;
    if (++bar_waiting == nprocs) {
      bar_waiting = 0;
      ++bar_generation;
      bar_cv.notify_all();
      return;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(
                              deadline_ms > 0 ? deadline_ms : 0);
    while (bar_generation == my_generation) {
      if (fabric.poisoned())
        throw ChannelAborted("aborted while waiting at a remap barrier");
      if (deadline_ms <= 0) {
        bar_cv.wait(lock);
        continue;
      }
      if (bar_cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          bar_generation == my_generation && !fabric.poisoned())
        throw ChannelDeadlock(
            "deadlock: a remap barrier made no progress for " +
            std::to_string(deadline_ms) + " ms");
    }
  }

  void poison(const std::string& why) {
    fabric.poison(why);
    {
      std::lock_guard<std::mutex> g(bar_mu);
    }
    bar_cv.notify_all();
  }

  void count_remap(int64_t bytes) {
    std::lock_guard<std::mutex> g(stat_mu);
    ++remaps;
    remap_bytes += bytes;
  }

  void record_failure(int p, std::exception_ptr e, bool is_abort,
                      const std::string& why) {
    {
      std::lock_guard<std::mutex> g(err_mu);
      errors[static_cast<size_t>(p)] = std::move(e);
      error_is_abort[static_cast<size_t>(p)] = is_abort;
    }
    if (!is_abort) poison("P" + std::to_string(p) + " failed: " + why);
  }

  void rethrow_first_failure() {
    std::lock_guard<std::mutex> g(err_mu);
    // Prefer the lowest-index real failure; only if every captured error
    // is an abort echo (cannot happen without a real failure first, but
    // stay safe) rethrow the lowest-index one.
    for (size_t p = 0; p < errors.size(); ++p)
      if (errors[p] && !error_is_abort[p]) std::rethrow_exception(errors[p]);
    for (size_t p = 0; p < errors.size(); ++p)
      if (errors[p]) std::rethrow_exception(errors[p]);
  }
};

class ThreadedProcess : public EvalCore {
 public:
  ThreadedProcess(RunState& rt, const SourceProgram& ast, int my_p,
                  int n_procs, int elem_bytes)
      : EvalCore(ast, my_p, n_procs), rt_(rt), elem_bytes_(elem_bytes) {}

 protected:
  void exec_send(const Stmt& s, Frame& frame) override {
    int dst = static_cast<int>(eval(*s.peer, frame).as_int());
    ArrayStorage* arr = array_of(s.msg_array, frame);
    Rsd section = eval_section(s.msg_section, frame);
    if (section.empty()) return;  // edge processor with a short/empty block

    RtMessage msg;
    msg.src = my_p_;
    msg.tag = s.msg_array;
    msg.payload = pack_section(arr, section);
    ++stats_.sends;
    stats_.sent_bytes += static_cast<int64_t>(msg.payload.size()) * elem_bytes_;
    rt_.fabric.send(my_p_, dst, std::move(msg));
  }

  void exec_recv(const Stmt& s, Frame& frame) override {
    int src = static_cast<int>(eval(*s.peer, frame).as_int());
    ArrayStorage* arr = array_of(s.msg_array, frame);
    Rsd section = eval_section(s.msg_section, frame);
    if (section.empty()) return;  // matches the sender's empty-section skip

    RtMessage msg = rt_.fabric.recv(my_p_, src);
    unpack_section(arr, section, msg.payload, "recv of " + s.msg_array);
    ++stats_.recvs;
    stats_.recvd_bytes +=
        static_cast<int64_t>(msg.payload.size()) * elem_bytes_;
  }

  void exec_broadcast(const Stmt& s, Frame& frame) override {
    const int P = n_procs_;
    int root = static_cast<int>(eval(*s.peer, frame).as_int());
    const bool scalar = s.msg_section.empty();
    ArrayStorage* arr = scalar ? nullptr : array_of(s.msg_array, frame);
    Rsd section = scalar ? Rsd{} : eval_section(s.msg_section, frame);

    if (P == 1) return;
    if (my_p_ == root) {
      RtMessage proto;
      proto.src = my_p_;
      proto.tag = s.msg_array;
      if (scalar) {
        Value* cell = scalar_lvalue(s.msg_array, frame);
        proto.payload.push_back(cell->as_real());
      } else {
        proto.payload = pack_section(arr, section);
      }
      const int64_t bytes =
          static_cast<int64_t>(proto.payload.size()) * elem_bytes_;
      for (int p = 0; p < P; ++p) {
        if (p == my_p_) continue;
        RtMessage msg = proto;
        rt_.fabric.send(my_p_, p, std::move(msg));
      }
      stats_.sends += P - 1;
      stats_.sent_bytes += (P - 1) * bytes;
    } else {
      RtMessage msg = rt_.fabric.recv(my_p_, root);
      if (scalar) {
        Value* cell = scalar_lvalue(s.msg_array, frame);
        store_bcast_scalar(cell, msg.payload.at(0));
      } else {
        unpack_section(arr, section, msg.payload,
                       "broadcast of " + s.msg_array);
      }
      ++stats_.recvs;
      stats_.recvd_bytes +=
          static_cast<int64_t>(msg.payload.size()) * elem_bytes_;
    }
  }

  void exec_allreduce(const Stmt& s, Frame& frame) override {
    // Gather-to-root + broadcast, exactly the simulator's realization so
    // observed message counts match its predictions.
    const int P = n_procs_;
    Value* cell = scalar_lvalue(s.msg_array, frame);
    if (P == 1) return;
    auto combine = [&](double acc, double v) {
      if (s.reduce_op == "min") return std::min(acc, v);
      if (s.reduce_op == "max") return std::max(acc, v);
      return acc + v;
    };
    if (my_p_ == 0) {
      double acc = cell->as_real();
      for (int p = 1; p < P; ++p) {
        RtMessage msg = rt_.fabric.recv(my_p_, p);
        acc = combine(acc, msg.payload.at(0));
        ++stats_.recvs;
        stats_.recvd_bytes += elem_bytes_;
      }
      *cell = Value::of_real(acc);
      RtMessage proto;
      proto.src = my_p_;
      proto.tag = s.msg_array;
      proto.payload = {acc};
      for (int p = 1; p < P; ++p) rt_.fabric.send(my_p_, p, proto);
      stats_.sends += P - 1;
      stats_.sent_bytes += (P - 1) * static_cast<int64_t>(elem_bytes_);
    } else {
      RtMessage up;
      up.src = my_p_;
      up.tag = s.msg_array;
      up.payload = {cell->as_real()};
      rt_.fabric.send(my_p_, 0, std::move(up));
      ++stats_.sends;
      stats_.sent_bytes += elem_bytes_;
      RtMessage down = rt_.fabric.recv(my_p_, 0);
      *cell = Value::of_real(down.payload.at(0));
      ++stats_.recvs;
      stats_.recvd_bytes += elem_bytes_;
    }
  }

  void apply_redistribution(ArrayStorage* arr, const DecompSpec* from_spec,
                            const DecompSpec& to_spec) override {
    const int P = n_procs_;
    note_distribution(arr, to_spec);
    if (!from_spec) return;  // initial labeling: no data motion

    // Remapping is collective: no process starts exchanging against a
    // peer still executing pre-remap code.
    rt_.barrier();

    ArrayDistribution from(arr->name, *from_spec, arr->bounds, P);
    ArrayDistribution to(arr->name, to_spec, arr->bounds, P);
    const int64_t moved_bytes = from.remap_bytes(to, elem_bytes_);

    if (moved_bytes > 0) {
      // Every process derives the same exchange plan from the two
      // distributions: out[q] = points I owned that q owns now, in[q] =
      // points q owned that I own now, both in full-array enumeration
      // order, so peers agree on payload layout without a header.
      std::vector<std::vector<std::vector<int64_t>>> out(
          static_cast<size_t>(P)),
          in(static_cast<size_t>(P));
      Rsd full = Rsd::dense(arr->bounds);
      for (const auto& point : full.enumerate()) {
        const int old_owner = from.owner_of(point);
        const int new_owner = to.owner_of(point);
        if (old_owner == new_owner) continue;
        if (old_owner == my_p_)
          out[static_cast<size_t>(new_owner)].push_back(point);
        else if (new_owner == my_p_)
          in[static_cast<size_t>(old_owner)].push_back(point);
      }
      // Globally ordered pairwise exchange: all processes walk the pairs
      // (i, j), i < j, in lexicographic order; within a pair the lower
      // rank sends before receiving and the higher receives before
      // sending. The lexicographically smallest unfinished pair can
      // always progress, so the schedule is rendezvous-deadlock-free.
      auto send_points = [&](int dst,
                             const std::vector<std::vector<int64_t>>& pts) {
        if (pts.empty()) return;
        RtMessage msg;
        msg.src = my_p_;
        msg.tag = arr->name + "$remap";
        msg.payload.reserve(pts.size());
        for (const auto& point : pts) msg.payload.push_back(arr->get(point));
        rt_.fabric.send(my_p_, dst, std::move(msg));
      };
      auto recv_points = [&](int src,
                             const std::vector<std::vector<int64_t>>& pts) {
        if (pts.empty()) return;
        RtMessage msg = rt_.fabric.recv(my_p_, src);
        if (msg.payload.size() != pts.size())
          throw std::runtime_error("remap exchange size mismatch on " +
                                   arr->name);
        for (size_t i = 0; i < pts.size(); ++i)
          arr->set(pts[i], msg.payload[i]);
      };
      for (int i = 0; i < P; ++i) {
        for (int j = i + 1; j < P; ++j) {
          if (i == my_p_) {
            send_points(j, out[static_cast<size_t>(j)]);
            recv_points(j, in[static_cast<size_t>(j)]);
          } else if (j == my_p_) {
            recv_points(i, in[static_cast<size_t>(i)]);
            send_points(i, out[static_cast<size_t>(i)]);
          }
        }
      }
      if (my_p_ == 0) rt_.count_remap(moved_bytes);
    }
    // Second barrier: no process races into post-remap communication
    // while a peer is still mid-exchange.
    rt_.barrier();
  }

 private:
  RunState& rt_;
  const int elem_bytes_;
};

}  // namespace

ThreadedBackend::ThreadedBackend(RuntimeOptions options)
    : options_(std::move(options)) {}

ExecResult ThreadedBackend::execute(const SpmdProgram& program) {
  const int P = program.options.n_procs;
  auto state = std::make_shared<RunState>(P, options_);
  state->errors.resize(static_cast<size_t>(P));
  state->error_is_abort.resize(static_cast<size_t>(P));
  state->procs.reserve(static_cast<size_t>(P));
  for (int p = 0; p < P; ++p)
    state->procs.push_back(std::make_unique<ThreadedProcess>(
        *state, program.ast, p, P, options_.elem_bytes));

  auto body = [&](size_t p) {
    try {
      state->procs[p]->run();
    } catch (const ChannelAborted& e) {
      state->record_failure(static_cast<int>(p), std::current_exception(),
                            /*is_abort=*/true, e.what());
    } catch (const std::exception& e) {
      state->record_failure(static_cast<int>(p), std::current_exception(),
                            /*is_abort=*/false, e.what());
    } catch (...) {
      state->record_failure(static_cast<int>(p), std::current_exception(),
                            /*is_abort=*/false, "unknown error");
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (options_.pool) {
    // Process bodies block on each other (rendezvous, barriers), so the
    // batch deadlocks unless workers + the caller cover every process.
    options_.pool->ensure_workers(P - 1);
    options_.pool->parallel_for(static_cast<size_t>(P), body);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(P));
    for (int p = 0; p < P; ++p)
      threads.emplace_back([&body, p] { body(static_cast<size_t>(p)); });
    for (auto& t : threads) t.join();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  state->rethrow_first_failure();

  ExecResult result;
  result.backend = name();
  result.n_procs = P;
  result.wall_ms = wall_ms;
  for (int p = 0; p < P; ++p) {
    const ProcStats& st = state->procs[static_cast<size_t>(p)]->stats();
    result.per_proc.push_back(st);
    result.messages += st.sends;
    result.bytes += st.sent_bytes;
  }
  result.remaps_executed = state->remaps;
  result.remap_bytes = state->remap_bytes;
  for (const auto& proc : state->procs) result.contexts.push_back(proc.get());
  result.keepalive = state;
  return result;
}

}  // namespace fortd
