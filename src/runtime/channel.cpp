#include "runtime/channel.hpp"

#include <chrono>

namespace fortd::runtime {

ChannelFabric::ChannelFabric(int nprocs, ChannelOptions options)
    : nprocs_(nprocs),
      options_(std::move(options)),
      channels_(static_cast<size_t>(nprocs) * static_cast<size_t>(nprocs)) {}

template <typename Pred>
void ChannelFabric::wait(Channel& ch, std::unique_lock<std::mutex>& lock,
                         Pred pred, const std::string& what) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.deadline_ms > 0 ? options_.deadline_ms
                                                         : 0);
  for (;;) {
    if (poisoned()) {
      std::lock_guard<std::mutex> g(poison_mu_);
      throw ChannelAborted("aborted while " + what + ": " + poison_why_);
    }
    if (pred()) return;
    if (options_.deadline_ms <= 0) {
      ch.cv.wait(lock);
      continue;
    }
    if (ch.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        !pred() && !poisoned()) {
      throw ChannelDeadlock("deadlock: " + what + " made no progress for " +
                            std::to_string(options_.deadline_ms) + " ms");
    }
  }
}

void ChannelFabric::send(int src, int dst, RtMessage msg) {
  if (options_.send_delay) options_.send_delay(src, dst);
  Channel& ch = channel(src, dst);
  std::unique_lock<std::mutex> lock(ch.mu);
  const std::string what = "P" + std::to_string(src) + " sending '" + msg.tag +
                           "' to P" + std::to_string(dst);
  // One sender at a time per channel; SPMD programs never queue here, but
  // torture tests may aim several senders at one destination pair.
  wait(ch, lock, [&] { return !ch.busy; }, what);
  ch.busy = true;
  ch.slot = std::move(msg);
  ch.has_msg = true;
  ch.delivered = false;
  ch.cv.notify_all();
  // Rendezvous: the send completes only when the receiver took the
  // message.
  wait(ch, lock, [&] { return ch.delivered; }, what);
  ch.delivered = false;
  ch.busy = false;
  ch.cv.notify_all();
  std::lock_guard<std::mutex> g(stat_mu_);
  ++messages_;
}

RtMessage ChannelFabric::recv(int dst, int src) {
  Channel& ch = channel(src, dst);
  std::unique_lock<std::mutex> lock(ch.mu);
  const std::string what = "P" + std::to_string(dst) + " receiving from P" +
                           std::to_string(src);
  wait(ch, lock, [&] { return ch.has_msg; }, what);
  RtMessage msg = std::move(ch.slot);
  ch.has_msg = false;
  ch.delivered = true;
  ch.cv.notify_all();
  return msg;
}

void ChannelFabric::poison(const std::string& why) {
  {
    std::lock_guard<std::mutex> g(poison_mu_);
    if (poisoned_) return;
    poisoned_ = true;
    poison_why_ = why;
  }
  for (auto& ch : channels_) {
    std::lock_guard<std::mutex> g(ch.mu);
    ch.cv.notify_all();
  }
}

bool ChannelFabric::poisoned() const {
  std::lock_guard<std::mutex> g(poison_mu_);
  return poisoned_;
}

int64_t ChannelFabric::total_messages() const {
  std::lock_guard<std::mutex> g(stat_mu_);
  return messages_;
}

}  // namespace fortd::runtime
