// The differential execution harness (the NASA debugging-support shape):
// run the compiled SPMD program on a real backend, diff its numeric
// results against a serial execution of the *original* program, and
// cross-check the observed per-processor message counts and payload
// bytes against the Machine simulator's static predictions — the paper's
// Fig. 11/16/17 quantities, now measured instead of modeled.
#pragma once

#include <string>
#include <vector>

#include "runtime/backend.hpp"

namespace fortd {

struct HarnessOptions {
  BackendKind backend = BackendKind::Threaded;
  RuntimeOptions runtime;
  /// Absolute tolerance for the serial diff. Parallel reductions combine
  /// in a fixed rank order, so everything except reduction round-off is
  /// expected bit-identical.
  double tolerance = 1e-9;
  /// Cross-check observed counts against the simulator's predictions
  /// (skipped when the backend *is* the simulator — it would compare the
  /// run against itself).
  bool check_counts = true;
};

struct HarnessReport {
  ExecResult run;        // the requested backend's execution
  ExecResult predicted;  // simulator prediction (empty unless cross-checked)
  ExecResult serial;     // serial reference of the original program

  bool numerics_ok = true;
  bool counts_ok = true;
  double max_abs_err = 0.0;
  int arrays_checked = 0;
  int scalars_checked = 0;
  std::vector<std::string> failures;

  bool ok() const { return numerics_ok && counts_ok; }
  /// Human-readable multi-line summary (one line per check).
  std::string text() const;
};

/// Execute `spmd` on the requested backend and validate it against the
/// serial execution of `original` (the pre-codegen program) and, for the
/// threaded backend, against the simulator's predicted traffic. Both
/// programs must outlive the report (their ASTs back the ExecResults).
HarnessReport run_and_check(const SourceProgram& original,
                            const SpmdProgram& spmd,
                            const HarnessOptions& options = {});

}  // namespace fortd
