// Pluggable SPMD execution backends.
//
// An ExecutionBackend runs a compiled SpmdProgram end to end and reports
// what actually happened: final array contents (gatherable per element
// owner), per-processor message counts and payload bytes, and remap
// traffic. Two implementations ship:
//
//   * `sim`     — the logical-clock Machine simulator (src/machine),
//                 unchanged semantics, now behind this interface. Its
//                 per-processor clocks realize the CostModel and its
//                 message counts are the paper's Fig. 11/16/17
//                 quantities — the *predictions* the harness checks the
//                 real runtime against.
//   * `threads` — the concurrent runtime (src/runtime/threaded_backend):
//                 one OS thread per SPMD process, rendezvous channels
//                 with real blocking send/recv, broadcasts, reductions,
//                 and message-based redistribution. No cost model — it
//                 measures wall-clock time.
//
// Both backends share the EvalCore evaluator, so the values they compute
// are bit-identical; only transport and timing differ.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/spmd.hpp"
#include "runtime/channel.hpp"
#include "runtime/eval.hpp"

namespace fortd {

class ThreadPool;

enum class BackendKind { Simulator, Threaded };

/// Parse "sim" / "threads" (also accepts "simulator" / "threaded").
std::optional<BackendKind> parse_backend_kind(const std::string& name);
const char* backend_kind_name(BackendKind kind);

struct RuntimeOptions {
  /// Payload accounting: bytes per REAL element (matches the simulator's
  /// CostModel.elem_bytes so observed bytes compare against predictions).
  int elem_bytes = 8;
  /// Channel deadline / fault injection (threaded backend only).
  runtime::ChannelOptions channel;
  /// Worker pool to run processor bodies on; null spawns plain threads.
  ThreadPool* pool = nullptr;
};

/// What one backend execution observed.
struct ExecResult {
  std::string backend;
  int n_procs = 1;
  double wall_ms = 0.0;      // real time spent inside execute()
  double sim_time_us = 0.0;  // simulator backend only: max logical clock

  // Point-to-point + collective traffic from the generated communication
  // statements (excludes redistribution exchanges, reported separately —
  // the simulator models those in aggregate, not as messages).
  int64_t messages = 0;  // == sum of per_proc sends == sum of recvs
  int64_t bytes = 0;     // payload bytes of those messages
  int64_t remaps_executed = 0;  // data-moving redistributions
  int64_t remap_bytes = 0;      // elements moved * elem_bytes

  std::vector<ProcStats> per_proc;

  /// The authoritative final contents of a main-program array, assembled
  /// from each element's owner (context 0's run-time registry supplies
  /// the distribution unless one is passed explicitly).
  std::vector<double> gather(const std::string& array) const;
  std::vector<double> gather(const std::string& array,
                             const DecompSpec& spec) const;
  double gather_scalar(const std::string& name) const;
  /// Main-program array names, sorted (the diffable surface).
  std::vector<std::string> main_arrays() const;

  // Internal: kept alive for gather().
  std::shared_ptr<void> keepalive;
  std::vector<const EvalCore*> contexts;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  virtual std::string name() const = 0;
  /// Run `program` on program.options.n_procs processes to completion.
  /// Throws on execution errors (including detected deadlocks).
  virtual ExecResult execute(const SpmdProgram& program) = 0;
};

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               const RuntimeOptions& options =
                                                   RuntimeOptions{});

/// Execute the *original* (pre-SPMD) program on a single process with no
/// communication — the serial reference the differential harness diffs
/// parallel executions against (the ast must outlive the result).
ExecResult run_serial_reference(const SourceProgram& ast);

}  // namespace fortd
