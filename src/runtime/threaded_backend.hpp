// The `threads` ExecutionBackend: really-concurrent SPMD execution, one
// OS thread per SPMD process, exchanging messages through rendezvous
// channels (src/runtime/channel.hpp). Collectives are realized exactly
// like the simulator's (gather-to-root + broadcast for reductions,
// root-fan-out for broadcasts) so observed message counts match the
// simulator's predictions message for message; redistribution moves data
// through a globally ordered pairwise exchange instead of reading peer
// memory, which is rendezvous-safe by construction (the lexicographically
// smallest unfinished pair can always progress).
//
// Processor bodies run on the shared ThreadPool when one is supplied
// (grown so workers + caller cover every process — bodies block on each
// other) or on plain std::threads otherwise. A failing process poisons
// the fabric so its peers unwind instead of waiting on a rendezvous that
// can never complete; the first real failure is rethrown.
#pragma once

#include <memory>

#include "runtime/backend.hpp"

namespace fortd {

class ThreadedBackend : public ExecutionBackend {
 public:
  explicit ThreadedBackend(RuntimeOptions options = {});

  std::string name() const override { return "threads"; }
  ExecResult execute(const SpmdProgram& program) override;

 private:
  RuntimeOptions options_;
};

}  // namespace fortd
