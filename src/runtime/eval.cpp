#include "runtime/eval.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "codegen/distribution.hpp"

namespace fortd {

// ---------------------------------------------------------------------------
// ArrayStorage
// ---------------------------------------------------------------------------

int64_t ArrayStorage::flat_index(const std::vector<int64_t>& point) const {
  if (point.size() != bounds.size())
    throw std::runtime_error("rank mismatch indexing array '" + name + "'");
  int64_t idx = 0;
  for (size_t d = 0; d < bounds.size(); ++d) {
    auto [lb, ub] = bounds[d];
    if (point[d] < lb || point[d] > ub)
      throw std::runtime_error(
          "subscript out of bounds: " + name + " dim " + std::to_string(d + 1) +
          " index " + std::to_string(point[d]) + " not in [" +
          std::to_string(lb) + "," + std::to_string(ub) + "]");
    idx = idx * (ub - lb + 1) + (point[d] - lb);
  }
  return idx;
}

int64_t ArrayStorage::size() const {
  int64_t n = 1;
  for (auto [lb, ub] : bounds) n *= (ub - lb + 1);
  return n;
}

// ---------------------------------------------------------------------------
// EvalCore
// ---------------------------------------------------------------------------

EvalCore::EvalCore(const SourceProgram& ast, int my_p, int n_procs)
    : ast_(ast), my_p_(my_p), n_procs_(n_procs) {
  auto cell = std::make_shared<Value>(Value::of_int(my_p));
  globals_.scalars["my$p"] = std::move(cell);
}

ArrayStorage* EvalCore::array_by_uid(int uid) const {
  for (const auto& [name, arr] : globals_.arrays)
    if (arr->uid == uid) return arr.get();
  for (const auto& [name, arr] : main_frame_.arrays)
    if (arr->uid == uid) return arr.get();
  return nullptr;
}

const DecompSpec* EvalCore::registry_spec(const ArrayStorage* storage) const {
  auto it = registry_.find(storage);
  return it == registry_.end() ? nullptr : &it->second;
}

Frame EvalCore::make_frame(const Procedure& proc, Frame* caller,
                           const std::vector<ExprPtr>* actuals) {
  Frame frame;
  // PARAMETER constants.
  for (const auto& pc : proc.params) {
    Value v = eval(*pc.value, frame);
    frame.scalars[pc.name] = std::make_shared<Value>(v);
  }
  // Bind formals by reference.
  if (actuals) {
    for (size_t f = 0; f < proc.formals.size() && f < actuals->size(); ++f) {
      const Expr& a = *(*actuals)[f];
      const std::string& formal = proc.formals[f];
      if (a.kind == ExprKind::VarRef && caller) {
        auto fit = caller->arrays.find(a.name);
        if (fit != caller->arrays.end()) {
          frame.arrays[formal] = fit->second;
          continue;
        }
        auto git = globals_.arrays.find(a.name);
        if (git != globals_.arrays.end()) {
          frame.arrays[formal] = git->second;
          continue;
        }
        // Scalar by reference: share (or create) the caller's cell.
        ScalarCell cell;
        auto sit = caller->scalars.find(a.name);
        if (sit != caller->scalars.end()) {
          cell = sit->second;
        } else {
          auto gsit = globals_.scalars.find(a.name);
          if (gsit != globals_.scalars.end()) {
            cell = gsit->second;
          } else {
            cell = std::make_shared<Value>(Value::of_int(0));
            caller->scalars[a.name] = cell;
          }
        }
        frame.scalars[formal] = std::move(cell);
        continue;
      }
      // Expression actual: copy-in only.
      Value v = caller ? eval(a, *caller) : Value::of_int(0);
      frame.scalars[formal] = std::make_shared<Value>(v);
    }
  }
  // Common-block variables alias the per-processor globals.
  std::map<std::string, bool> in_common;
  for (const auto& blk : proc.commons)
    for (const auto& v : blk.vars) in_common[v] = true;

  // Allocate declared locals (skip already bound formals).
  for (const auto& decl : proc.decls) {
    if (decl.is_decomposition) continue;
    if (frame.arrays.count(decl.name) || frame.scalars.count(decl.name))
      continue;
    if (decl.dims.empty()) {
      if (in_common.count(decl.name)) {
        if (!globals_.scalars.count(decl.name))
          globals_.scalars[decl.name] = std::make_shared<Value>(
              decl.type == ElemType::Real ? Value::of_real(0.0)
                                          : Value::of_int(0));
        frame.scalars[decl.name] = globals_.scalars[decl.name];
      } else {
        frame.scalars[decl.name] = std::make_shared<Value>(
            decl.type == ElemType::Real ? Value::of_real(0.0)
                                        : Value::of_int(0));
      }
      continue;
    }
    // Array: evaluate bounds (may reference params/formals — Fig. 14
    // parameterized overlaps).
    std::vector<std::pair<int64_t, int64_t>> bounds;
    for (const auto& dim : decl.dims) {
      int64_t lb = dim.lb ? eval(*dim.lb, frame).as_int() : 1;
      int64_t ub = eval(*dim.ub, frame).as_int();
      bounds.emplace_back(lb, ub);
    }
    if (in_common.count(decl.name)) {
      if (!globals_.arrays.count(decl.name)) {
        auto arr = std::make_shared<ArrayStorage>();
        arr->uid = next_uid_++;
        arr->name = decl.name;
        arr->type = decl.type;
        arr->bounds = bounds;
        arr->data.assign(static_cast<size_t>(arr->size()), 0.0);
        globals_.arrays[decl.name] = std::move(arr);
      }
      frame.arrays[decl.name] = globals_.arrays[decl.name];
    } else {
      auto arr = std::make_shared<ArrayStorage>();
      arr->uid = next_uid_++;
      arr->name = decl.name;
      arr->type = decl.type;
      arr->bounds = std::move(bounds);
      arr->data.assign(static_cast<size_t>(arr->size()), 0.0);
      frame.arrays[decl.name] = std::move(arr);
    }
  }
  return frame;
}

void EvalCore::run() {
  const Procedure* main = nullptr;
  for (const auto& p : ast_.procedures)
    if (p->is_program) {
      main = p.get();
      break;
    }
  if (!main) throw std::runtime_error("SPMD program has no main PROGRAM");
  main_frame_ = make_frame(*main, nullptr, nullptr);
  exec_stmts(main->body, main_frame_);
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

namespace {
thread_local bool g_returning = false;
}

void EvalCore::exec_stmts(const std::vector<StmtPtr>& stmts, Frame& frame) {
  for (const auto& s : stmts) {
    if (g_returning) return;
    exec_stmt(*s, frame);
  }
}

void EvalCore::exec_stmt(const Stmt& s, Frame& frame) {
  switch (s.kind) {
    case StmtKind::Assign: {
      Value v = eval(*s.rhs, frame);
      if (s.lhs->kind == ExprKind::VarRef) {
        Value* cell = scalar_lvalue(s.lhs->name, frame);
        *cell = v;
      } else {
        ArrayStorage* arr = array_of(s.lhs->name, frame);
        auto point = eval_point(s.lhs->args, frame);
        arr->set(point, v.as_real());
      }
      break;
    }
    case StmtKind::If: {
      charge_guard();
      if (eval(*s.cond, frame).truthy())
        exec_stmts(s.then_body, frame);
      else
        exec_stmts(s.else_body, frame);
      break;
    }
    case StmtKind::Do: {
      int64_t lb = eval(*s.lb, frame).as_int();
      int64_t ub = eval(*s.ub, frame).as_int();
      int64_t step = s.step ? eval(*s.step, frame).as_int() : 1;
      if (step == 0) throw std::runtime_error("DO step is zero");
      Value* var = scalar_lvalue(s.loop_var, frame);
      for (int64_t i = lb; step > 0 ? i <= ub : i >= ub; i += step) {
        *var = Value::of_int(i);
        charge_loop_iteration();
        ++stats_.iterations;
        exec_stmts(s.body, frame);
        if (g_returning) break;
      }
      break;
    }
    case StmtKind::Call:
      exec_call(s, frame);
      break;
    case StmtKind::Return:
      g_returning = true;
      break;
    case StmtKind::Continue:
      break;
    case StmtKind::Align:
      break;
    case StmtKind::Distribute: {
      // Run-time redistribution: the mapping library moves data unless
      // this is the array's first (initial) distribution.
      ArrayStorage* arr = array_of(s.dist_target, frame);
      DecompSpec to;
      to.dists = s.dist_specs;
      auto it = registry_.find(arr);
      if (it == registry_.end()) {
        apply_redistribution(arr, nullptr, to);
      } else if (!(it->second == to)) {
        DecompSpec from = it->second;
        apply_redistribution(arr, &from, to);
      }
      break;
    }
    case StmtKind::Send:
      exec_send(s, frame);
      break;
    case StmtKind::Recv:
      exec_recv(s, frame);
      break;
    case StmtKind::Broadcast:
      exec_broadcast(s, frame);
      break;
    case StmtKind::Remap: {
      ArrayStorage* arr = array_of(s.dist_target, frame);
      DecompSpec to_spec;
      to_spec.dists = s.dist_specs;
      if (s.from_specs.empty()) {
        apply_redistribution(arr, nullptr, to_spec);
        break;
      }
      DecompSpec from_spec;
      from_spec.dists = s.from_specs;
      apply_redistribution(arr, &from_spec, to_spec);
      break;
    }
    case StmtKind::MarkDist: {
      ArrayStorage* arr = array_of(s.dist_target, frame);
      DecompSpec spec;
      spec.dists = s.dist_specs;
      registry_[arr] = std::move(spec);
      break;
    }
    case StmtKind::AllReduce:
      exec_allreduce(s, frame);
      break;
  }
}

void EvalCore::exec_call(const Stmt& s, Frame& frame) {
  const Procedure* callee = ast_.find(s.callee);
  if (!callee)
    throw std::runtime_error("call to unknown procedure '" + s.callee + "'");
  charge_call();
  // Fortran D scoping: decomposition changes in the callee are undone on
  // return — including the data motion of the restoring remap.
  auto saved_registry = registry_;
  Frame inner = make_frame(*callee, &frame, &s.call_args);
  bool saved_return = g_returning;
  g_returning = false;
  exec_stmts(callee->body, inner);
  g_returning = saved_return;
  for (const auto& [arr, spec] : saved_registry) {
    auto it = registry_.find(arr);
    if (it != registry_.end() && !(it->second == spec)) {
      DecompSpec from = it->second;
      apply_redistribution(const_cast<ArrayStorage*>(arr), &from, spec);
    }
  }
  registry_ = std::move(saved_registry);
}

// ---------------------------------------------------------------------------
// Message payloads
// ---------------------------------------------------------------------------

std::vector<double> EvalCore::pack_section(ArrayStorage* arr,
                                           const Rsd& section) {
  std::vector<double> payload;
  for (const auto& point : section.enumerate())
    payload.push_back(arr->get(point));
  return payload;
}

void EvalCore::unpack_section(ArrayStorage* arr, const Rsd& section,
                              const std::vector<double>& payload,
                              const std::string& what) {
  auto points = section.enumerate();
  if (payload.size() != points.size())
    throw std::runtime_error("message size mismatch on " + what + ": sent " +
                             std::to_string(payload.size()) + " expected " +
                             std::to_string(points.size()));
  for (size_t i = 0; i < points.size(); ++i) arr->set(points[i], payload[i]);
}

void EvalCore::store_bcast_scalar(Value* cell, double v) {
  if (cell->is_int && v == std::floor(v))
    *cell = Value::of_int(static_cast<int64_t>(v));
  else
    *cell = Value::of_real(v);
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

Value* EvalCore::scalar_lvalue(const std::string& name, Frame& frame) {
  auto it = frame.scalars.find(name);
  if (it != frame.scalars.end()) return it->second.get();
  auto git = globals_.scalars.find(name);
  if (git != globals_.scalars.end()) return git->second.get();
  // Implicit local (loop variables, compiler temporaries).
  auto cell = std::make_shared<Value>(Value::of_int(0));
  Value* raw = cell.get();
  frame.scalars[name] = std::move(cell);
  return raw;
}

ArrayStorage* EvalCore::array_of(const std::string& name, Frame& frame) {
  auto it = frame.arrays.find(name);
  if (it != frame.arrays.end()) return it->second.get();
  auto git = globals_.arrays.find(name);
  if (git != globals_.arrays.end()) return git->second.get();
  throw std::runtime_error("reference to unknown array '" + name + "'");
}

std::vector<int64_t> EvalCore::eval_point(const std::vector<ExprPtr>& subs,
                                          Frame& frame) {
  std::vector<int64_t> point;
  point.reserve(subs.size());
  for (const auto& s : subs) point.push_back(eval(*s, frame).as_int());
  return point;
}

Rsd EvalCore::eval_section(const std::vector<SectionExpr>& sec, Frame& frame) {
  std::vector<Triplet> dims;
  for (const auto& t : sec) {
    int64_t lb = eval(*t.lb, frame).as_int();
    int64_t ub = eval(*t.ub, frame).as_int();
    int64_t step = t.step ? eval(*t.step, frame).as_int() : 1;
    dims.emplace_back(lb, ub, step);
  }
  return Rsd(std::move(dims));
}

Value EvalCore::eval_intrinsic(const Expr& e, Frame& frame) {
  auto arg = [&](size_t i) { return eval(*e.args[i], frame); };
  const std::string& n = e.name;
  if (n == "myproc") return Value::of_int(my_p_);
  if (n == "min") {
    Value v = arg(0);
    for (size_t i = 1; i < e.args.size(); ++i) {
      Value w = arg(i);
      if (v.is_int && w.is_int)
        v = Value::of_int(std::min(v.i, w.i));
      else
        v = Value::of_real(std::min(v.as_real(), w.as_real()));
    }
    return v;
  }
  if (n == "max") {
    Value v = arg(0);
    for (size_t i = 1; i < e.args.size(); ++i) {
      Value w = arg(i);
      if (v.is_int && w.is_int)
        v = Value::of_int(std::max(v.i, w.i));
      else
        v = Value::of_real(std::max(v.as_real(), w.as_real()));
    }
    return v;
  }
  if (n == "modp") {
    int64_t a = arg(0).as_int(), m = arg(1).as_int();
    int64_t r = a % m;
    return Value::of_int(r < 0 ? r + m : r);
  }
  if (n == "mod") return Value::of_int(arg(0).as_int() % arg(1).as_int());
  if (n == "abs") {
    Value v = arg(0);
    return v.is_int ? Value::of_int(std::abs(v.i))
                    : Value::of_real(std::fabs(v.d));
  }
  if (n == "sqrt") return Value::of_real(std::sqrt(arg(0).as_real()));
  if (n == "f") {
    // The paper's unspecified F(...) — an arbitrary elementwise function.
    return Value::of_real(0.5 * arg(0).as_real() + 1.0);
  }
  if (n.rfind("owner$", 0) == 0) {
    std::string array = n.substr(6);
    ArrayStorage* arr = array_of(array, frame);
    auto it = registry_.find(arr);
    DecompSpec spec;
    if (it != registry_.end()) spec = it->second;
    ArrayDistribution ad(array, spec, arr->bounds, n_procs_);
    auto point = eval_point(e.args, frame);
    return Value::of_int(ad.owner_of(point));
  }
  throw std::runtime_error("unknown intrinsic function '" + n + "'");
}

Value EvalCore::eval(const Expr& e, Frame& frame) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return Value::of_int(e.int_val);
    case ExprKind::RealLit:
      return Value::of_real(e.real_val);
    case ExprKind::VarRef:
      return *scalar_lvalue(e.name, frame);
    case ExprKind::ArrayRef: {
      ArrayStorage* arr = array_of(e.name, frame);
      auto point = eval_point(e.args, frame);
      double v = arr->get(point);
      return arr->type == ElemType::Integer
                 ? Value::of_int(static_cast<int64_t>(v))
                 : Value::of_real(v);
    }
    case ExprKind::FuncCall: {
      charge_flop();
      ++stats_.flops;
      return eval_intrinsic(e, frame);
    }
    case ExprKind::Unary: {
      Value v = eval(*e.args[0], frame);
      if (e.un_op == UnOp::Neg)
        return v.is_int ? Value::of_int(-v.i) : Value::of_real(-v.d);
      return Value::of_int(v.truthy() ? 0 : 1);
    }
    case ExprKind::Binary: {
      Value l = eval(*e.args[0], frame);
      Value r = eval(*e.args[1], frame);
      charge_flop();
      ++stats_.flops;
      const bool ii = l.is_int && r.is_int;
      switch (e.bin_op) {
        case BinOp::Add:
          return ii ? Value::of_int(l.i + r.i)
                    : Value::of_real(l.as_real() + r.as_real());
        case BinOp::Sub:
          return ii ? Value::of_int(l.i - r.i)
                    : Value::of_real(l.as_real() - r.as_real());
        case BinOp::Mul:
          return ii ? Value::of_int(l.i * r.i)
                    : Value::of_real(l.as_real() * r.as_real());
        case BinOp::Div:
          if (ii) {
            if (r.i == 0) throw std::runtime_error("integer division by zero");
            return Value::of_int(l.i / r.i);
          }
          return Value::of_real(l.as_real() / r.as_real());
        case BinOp::Eq:
          return Value::of_int(ii ? l.i == r.i : l.as_real() == r.as_real());
        case BinOp::Ne:
          return Value::of_int(ii ? l.i != r.i : l.as_real() != r.as_real());
        case BinOp::Lt:
          return Value::of_int(ii ? l.i < r.i : l.as_real() < r.as_real());
        case BinOp::Le:
          return Value::of_int(ii ? l.i <= r.i : l.as_real() <= r.as_real());
        case BinOp::Gt:
          return Value::of_int(ii ? l.i > r.i : l.as_real() > r.as_real());
        case BinOp::Ge:
          return Value::of_int(ii ? l.i >= r.i : l.as_real() >= r.as_real());
        case BinOp::And:
          return Value::of_int(l.truthy() && r.truthy());
        case BinOp::Or:
          return Value::of_int(l.truthy() || r.truthy());
      }
      return Value::of_int(0);
    }
  }
  return Value::of_int(0);
}

// ---------------------------------------------------------------------------
// Result gathering
// ---------------------------------------------------------------------------

std::vector<double> gather_array(const std::vector<const EvalCore*>& contexts,
                                 const std::string& array,
                                 const DecompSpec* spec) {
  if (contexts.empty())
    throw std::runtime_error("gather: no execution contexts");
  const EvalCore& p0 = *contexts[0];
  auto it = p0.main_frame().arrays.find(array);
  if (it == p0.main_frame().arrays.end())
    throw std::runtime_error("gather: unknown main-program array '" + array +
                             "'");
  const ArrayStorage& proto = *it->second;
  if (!spec) spec = p0.registry_spec(&proto);

  Rsd full = Rsd::dense(proto.bounds);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(proto.size()));
  std::optional<ArrayDistribution> dist;
  if (spec)
    dist.emplace(array, *spec, proto.bounds,
                 static_cast<int>(contexts.size()));

  for (const auto& point : full.enumerate()) {
    if (dist && !dist->replicated_p()) {
      int owner = dist->owner_of(point);
      const ArrayStorage* arr =
          contexts[static_cast<size_t>(owner)]->array_by_uid(proto.uid);
      out.push_back(arr ? arr->get(point) : 0.0);
    } else {
      out.push_back(proto.get(point));
    }
  }
  return out;
}

}  // namespace fortd
