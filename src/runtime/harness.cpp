#include "runtime/harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace fortd {

namespace {

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

/// The storage pass's distribution of `array` in the main program — the
/// authoritative final ownership labels. The *run-time* registry is not:
/// array-kill remaps relabel to "(:)" without data motion (the values
/// materialize only under the next writer's static distribution), so
/// gathering by registry would read stale copies. Null for arrays the
/// storage pass did not place (gather falls back to the registry).
const DecompSpec* static_main_spec(const SpmdProgram& spmd,
                                   const std::string& array) {
  const Procedure* main = spmd.main();
  if (!main) return nullptr;
  auto it = spmd.storage.find(main->name);
  if (it == spmd.storage.end()) return nullptr;
  for (const ArrayStorageInfo& info : it->second)
    if (info.array == array && !info.spec.dists.empty()) return &info.spec;
  return nullptr;
}

}  // namespace

HarnessReport run_and_check(const SourceProgram& original,
                            const SpmdProgram& spmd,
                            const HarnessOptions& options) {
  HarnessReport report;
  report.serial = run_serial_reference(original);
  report.run = make_backend(options.backend, options.runtime)->execute(spmd);

  // -- numerics: every main-program array of the original, elementwise ----
  const auto ref_arrays = report.serial.main_arrays();
  const auto run_arrays = report.run.main_arrays();
  for (const std::string& name : ref_arrays) {
    if (!std::binary_search(run_arrays.begin(), run_arrays.end(), name)) {
      report.numerics_ok = false;
      report.failures.push_back(
          fmt("array '%s' exists serially but not in the parallel execution",
              name.c_str()));
      continue;
    }
    const DecompSpec* spec = static_main_spec(spmd, name);
    const std::vector<double> want = report.serial.gather(name);
    const std::vector<double> got =
        spec ? report.run.gather(name, *spec) : report.run.gather(name);
    if (want.size() != got.size()) {
      report.numerics_ok = false;
      report.failures.push_back(fmt("array '%s': size %zu serial vs %zu %s",
                                    name.c_str(), want.size(), got.size(),
                                    report.run.backend.c_str()));
      continue;
    }
    ++report.arrays_checked;
    for (size_t i = 0; i < want.size(); ++i) {
      const double err = std::abs(want[i] - got[i]);
      report.max_abs_err = std::max(report.max_abs_err, err);
      if (!(err <= options.tolerance)) {  // catches NaN too
        report.numerics_ok = false;
        report.failures.push_back(
            fmt("array '%s'[flat %zu]: serial %.17g, %s %.17g (|err| %.3g)",
                name.c_str(), i, want[i], report.run.backend.c_str(), got[i],
                err));
        break;  // one sample per array keeps the report readable
      }
    }
  }

  // -- counts: observed traffic vs the simulator's static prediction ------
  if (options.check_counts && options.backend != BackendKind::Simulator) {
    report.predicted =
        make_backend(BackendKind::Simulator, options.runtime)->execute(spmd);
    const ExecResult& obs = report.run;
    const ExecResult& pred = report.predicted;
    auto mismatch = [&](const char* what, long long o, long long p) {
      report.counts_ok = false;
      report.failures.push_back(
          fmt("%s: observed %lld, predicted %lld", what, o, p));
    };
    if (obs.messages != pred.messages)
      mismatch("total messages", obs.messages, pred.messages);
    if (obs.bytes != pred.bytes) mismatch("total bytes", obs.bytes, pred.bytes);
    if (obs.remaps_executed != pred.remaps_executed)
      mismatch("remaps", obs.remaps_executed, pred.remaps_executed);
    if (obs.remap_bytes != pred.remap_bytes)
      mismatch("remap bytes", obs.remap_bytes, pred.remap_bytes);
    for (int p = 0; p < obs.n_procs; ++p) {
      const ProcStats& o = obs.per_proc[static_cast<size_t>(p)];
      const ProcStats& s = pred.per_proc[static_cast<size_t>(p)];
      if (o.sends != s.sends)
        mismatch(fmt("P%d sends", p).c_str(), o.sends, s.sends);
      if (o.recvs != s.recvs)
        mismatch(fmt("P%d recvs", p).c_str(), o.recvs, s.recvs);
      if (o.sent_bytes != s.sent_bytes)
        mismatch(fmt("P%d sent bytes", p).c_str(), o.sent_bytes, s.sent_bytes);
      if (o.recvd_bytes != s.recvd_bytes)
        mismatch(fmt("P%d recvd bytes", p).c_str(), o.recvd_bytes,
                 s.recvd_bytes);
    }
  }
  return report;
}

std::string HarnessReport::text() const {
  std::ostringstream out;
  out << "harness: " << run.backend << " backend, " << run.n_procs
      << " processor(s), " << fmt("%.2f", run.wall_ms) << " ms wall";
  if (run.sim_time_us > 0)
    out << ", " << fmt("%.1f", run.sim_time_us) << " us simulated";
  out << "\n";
  out << "harness: numerics vs serial: "
      << (numerics_ok ? "OK" : "MISMATCH") << " (" << arrays_checked
      << " array(s), max |err| " << fmt("%.3g", max_abs_err) << ")\n";
  if (!predicted.backend.empty()) {
    out << "harness: traffic vs simulator prediction: "
        << (counts_ok ? "OK" : "MISMATCH") << " (" << run.messages
        << " message(s), " << run.bytes << " byte(s), " << run.remaps_executed
        << " remap(s), " << run.remap_bytes << " remap byte(s))\n";
  }
  for (const std::string& failure : failures)
    out << "harness:   " << failure << "\n";
  return out.str();
}

}  // namespace fortd
