// Shared SPMD evaluation core: one EvalCore per (virtual or OS-thread)
// processor executes the generated program's statements and expressions.
// Everything a backend can disagree about — how messages move, what a
// collective costs, how a redistribution exchanges data — is a virtual
// hook; everything else (frames, scoping, arithmetic, intrinsics, the
// run-time distribution registry) lives here so the logical-clock
// simulator, the threaded runtime, and the serial reference interpreter
// compute bit-identical values.
//
// Storage model (inherited from the original Machine interpreter): every
// processor holds full-size (global index space) copies of all arrays;
// ownership determines which copy is *current*. This matches how the
// compiled code is generated (global indices) and leaves all observable
// quantities — messages, bytes, final owned values — identical to a
// local-index implementation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "ir/decomp.hpp"
#include "ir/rsd.hpp"

namespace fortd {

/// A typed scalar value. Integer arithmetic stays exact (Fortran integer
/// division truncates); mixed expressions promote to real.
struct Value {
  bool is_int = true;
  int64_t i = 0;
  double d = 0.0;

  static Value of_int(int64_t v) { return {true, v, static_cast<double>(v)}; }
  static Value of_real(double v) { return {false, 0, v}; }
  double as_real() const { return is_int ? static_cast<double>(i) : d; }
  int64_t as_int() const { return is_int ? i : static_cast<int64_t>(d); }
  bool truthy() const { return is_int ? i != 0 : d != 0.0; }
};

/// Array storage: column-major-agnostic flat buffer addressed by global
/// indices. `uid` is the allocation sequence number — identical across
/// processors because SPMD execution is symmetric — used to pair up peers'
/// copies during remaps.
struct ArrayStorage {
  int uid = -1;
  std::string name;
  ElemType type = ElemType::Real;
  std::vector<std::pair<int64_t, int64_t>> bounds;
  std::vector<double> data;

  int64_t flat_index(const std::vector<int64_t>& point) const;
  int64_t size() const;
  double get(const std::vector<int64_t>& point) const {
    return data[static_cast<size_t>(flat_index(point))];
  }
  void set(const std::vector<int64_t>& point, double v) {
    data[static_cast<size_t>(flat_index(point))] = v;
  }
};

/// A scalar cell, shareable by reference across call frames.
using ScalarCell = std::shared_ptr<Value>;
using ArrayRefPtr = std::shared_ptr<ArrayStorage>;

struct Frame {
  std::map<std::string, ScalarCell> scalars;
  std::map<std::string, ArrayRefPtr> arrays;
};

struct ProcStats {
  double clock_us = 0.0;  // logical clock (simulator backend only)
  int64_t flops = 0;
  int64_t iterations = 0;
  int64_t sends = 0;
  int64_t recvs = 0;
  int64_t sent_bytes = 0;   // payload bytes of counted sends
  int64_t recvd_bytes = 0;  // payload bytes of counted recvs
};

/// The backend-independent SPMD evaluator. Subclasses implement the
/// communication statements and (optionally) the cost hooks.
class EvalCore {
 public:
  EvalCore(const SourceProgram& ast, int my_p, int n_procs);
  virtual ~EvalCore() = default;

  EvalCore(const EvalCore&) = delete;
  EvalCore& operator=(const EvalCore&) = delete;

  /// Execute the main program to completion.
  void run();

  int my_p() const { return my_p_; }
  int n_procs() const { return n_procs_; }
  const ProcStats& stats() const { return stats_; }
  /// The main program's frame (kept alive after run for result gathering).
  const Frame& main_frame() const { return main_frame_; }
  ArrayStorage* array_by_uid(int uid) const;
  const DecompSpec* registry_spec(const ArrayStorage* storage) const;

 protected:
  // -- backend hooks: communication ---------------------------------------
  virtual void exec_send(const Stmt& s, Frame& frame) = 0;
  virtual void exec_recv(const Stmt& s, Frame& frame) = 0;
  virtual void exec_broadcast(const Stmt& s, Frame& frame) = 0;
  virtual void exec_allreduce(const Stmt& s, Frame& frame) = 0;
  /// Collective redistribution: move every element whose owner changes
  /// from its previous owner's copy to its new owner's, and account for
  /// the traffic. `from` null = initial labeling (no data motion). The
  /// implementation must record `to` in registry_ (via note_distribution)
  /// before returning.
  virtual void apply_redistribution(ArrayStorage* arr, const DecompSpec* from,
                                    const DecompSpec& to) = 0;

  // -- backend hooks: cost accounting -------------------------------------
  // Fired at exactly the sequence points the logical-clock simulator
  // charges; default no-ops keep real-time backends free of model costs.
  virtual void charge_guard() {}
  virtual void charge_loop_iteration() {}
  virtual void charge_flop() {}
  virtual void charge_call() {}

  // -- shared machinery ----------------------------------------------------
  void exec_stmts(const std::vector<StmtPtr>& stmts, Frame& frame);
  void exec_stmt(const Stmt& s, Frame& frame);
  void exec_call(const Stmt& s, Frame& frame);

  Value eval(const Expr& e, Frame& frame);
  Value eval_intrinsic(const Expr& e, Frame& frame);
  Value* scalar_lvalue(const std::string& name, Frame& frame);
  ArrayStorage* array_of(const std::string& name, Frame& frame);
  std::vector<int64_t> eval_point(const std::vector<ExprPtr>& subs,
                                  Frame& frame);
  /// Evaluate a message section to a concrete Rsd.
  Rsd eval_section(const std::vector<SectionExpr>& sec, Frame& frame);
  Frame make_frame(const Procedure& proc, Frame* caller,
                   const std::vector<ExprPtr>* actuals);

  /// Record `spec` as the array's current distribution.
  void note_distribution(ArrayStorage* arr, const DecompSpec& spec) {
    registry_[arr] = spec;
  }

  // Payload packing shared by every message-passing backend.
  std::vector<double> pack_section(ArrayStorage* arr, const Rsd& section);
  void unpack_section(ArrayStorage* arr, const Rsd& section,
                      const std::vector<double>& payload,
                      const std::string& what);
  /// Store a broadcast scalar, preserving integer-ness for integer cells
  /// (pivot indices).
  static void store_bcast_scalar(Value* cell, double v);

  const SourceProgram& ast_;
  int my_p_;
  int n_procs_;
  ProcStats stats_;
  Frame globals_;  // COMMON variables
  Frame main_frame_;
  std::map<const ArrayStorage*, DecompSpec> registry_;
  int next_uid_ = 0;
};

/// Assemble the authoritative final contents of a main-program array from
/// each element's owning context. `spec` null = use context 0's run-time
/// registry entry (replicated when absent).
std::vector<double> gather_array(const std::vector<const EvalCore*>& contexts,
                                 const std::string& array,
                                 const DecompSpec* spec);

}  // namespace fortd
