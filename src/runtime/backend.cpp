#include "runtime/backend.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "machine/simulator.hpp"
#include "runtime/threaded_backend.hpp"

namespace fortd {

std::optional<BackendKind> parse_backend_kind(const std::string& name) {
  if (name == "sim" || name == "simulator") return BackendKind::Simulator;
  if (name == "threads" || name == "threaded") return BackendKind::Threaded;
  return std::nullopt;
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Simulator: return "sim";
    case BackendKind::Threaded: return "threads";
  }
  return "?";
}

std::vector<double> ExecResult::gather(const std::string& array) const {
  if (contexts.empty()) throw std::runtime_error("gather: no contexts");
  return gather_array(contexts, array, nullptr);
}

std::vector<double> ExecResult::gather(const std::string& array,
                                       const DecompSpec& spec) const {
  if (contexts.empty()) throw std::runtime_error("gather: no contexts");
  return gather_array(contexts, array, &spec);
}

double ExecResult::gather_scalar(const std::string& name) const {
  if (contexts.empty()) throw std::runtime_error("gather_scalar: no contexts");
  const Frame& frame = contexts.front()->main_frame();
  auto it = frame.scalars.find(name);
  if (it == frame.scalars.end())
    throw std::runtime_error("gather_scalar: unknown scalar '" + name + "'");
  return it->second->as_real();
}

std::vector<std::string> ExecResult::main_arrays() const {
  std::vector<std::string> names;
  if (contexts.empty()) return names;
  for (const auto& [name, arr] : contexts.front()->main_frame().arrays)
    names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

namespace {

/// The logical-clock Machine simulator behind the ExecutionBackend
/// interface. ExecResult normalization: `messages`/`bytes` count only the
/// generated communication (sum of per-processor sends), never the
/// aggregate remap traffic the Network also books — that keeps the two
/// backends' headline numbers directly comparable.
class SimulatorBackend : public ExecutionBackend {
 public:
  explicit SimulatorBackend(RuntimeOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "sim"; }

  ExecResult execute(const SpmdProgram& program) override {
    Machine machine(CostModel::ipsc860(), options_.pool);
    const auto start = std::chrono::steady_clock::now();
    RunResult run = machine.run(program);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    ExecResult result;
    result.backend = name();
    result.n_procs = run.n_procs;
    result.wall_ms = wall_ms;
    result.sim_time_us = run.sim_time_us;
    for (const ProcStats& st : run.per_proc) {
      result.per_proc.push_back(st);
      result.messages += st.sends;
      result.bytes += st.sent_bytes;
    }
    result.remaps_executed = run.remaps_executed;
    result.remap_bytes = run.remap_bytes;
    for (const auto& ctx : *run.contexts) result.contexts.push_back(ctx.get());
    result.keepalive = run.contexts;
    return result;
  }

 private:
  RuntimeOptions options_;
};

/// Single-process evaluator for the *original* program: no communication
/// statements exist pre-codegen, so every comm hook is a hard error, and
/// redistribution reduces to relabeling (there is no second copy to move
/// data from).
class SerialProcess : public EvalCore {
 public:
  explicit SerialProcess(const SourceProgram& ast) : EvalCore(ast, 0, 1) {}

 protected:
  [[noreturn]] void comm_in_serial(const char* what) {
    throw std::logic_error(std::string("serial reference executed a ") + what +
                           " — the input is not a pre-SPMD program");
  }
  void exec_send(const Stmt&, Frame&) override { comm_in_serial("send"); }
  void exec_recv(const Stmt&, Frame&) override { comm_in_serial("recv"); }
  void exec_broadcast(const Stmt&, Frame&) override {
    comm_in_serial("broadcast");
  }
  void exec_allreduce(const Stmt&, Frame&) override {
    comm_in_serial("reduction");
  }
  void apply_redistribution(ArrayStorage* arr, const DecompSpec*,
                            const DecompSpec& to) override {
    note_distribution(arr, to);
  }
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               const RuntimeOptions& options) {
  switch (kind) {
    case BackendKind::Simulator:
      return std::make_unique<SimulatorBackend>(options);
    case BackendKind::Threaded:
      return std::make_unique<ThreadedBackend>(options);
  }
  throw std::logic_error("make_backend: unknown backend kind");
}

ExecResult run_serial_reference(const SourceProgram& ast) {
  auto proc = std::make_shared<SerialProcess>(ast);
  const auto start = std::chrono::steady_clock::now();
  proc->run();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  ExecResult result;
  result.backend = "serial";
  result.n_procs = 1;
  result.wall_ms = wall_ms;
  result.per_proc.push_back(proc->stats());
  result.contexts.push_back(proc.get());
  result.keepalive = proc;
  return result;
}

}  // namespace fortd
