// Rendezvous message channels for the threaded SPMD runtime.
//
// One unbuffered channel per (source, destination) pair: send() blocks
// until the matching recv() has taken the message (and vice versa), the
// synchronous semantics the SPMD verifier's deadlock simulator assumes.
// Every blocking wait runs under a wall-clock deadline (the idiom
// src/net's sockets use): a processor stuck longer than the deadline
// throws ChannelDeadlock naming both ends of the stuck operation instead
// of hanging the test suite. poison() wakes every waiter with
// ChannelAborted so one failed processor cannot strand its peers in a
// rendezvous that will never complete.
//
// Fault injection: `send_delay`, when set, runs on the sender's thread
// before the message is offered — torture tests use it to schedule
// adversarial interleavings without touching the runtime itself.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace fortd::runtime {

struct RtMessage {
  int src = -1;
  std::string tag;  // array name (debug/assertion aid)
  std::vector<double> payload;
};

/// A blocking wait outlived the deadline — almost always a deadlock in
/// the program under execution.
struct ChannelDeadlock : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The fabric was poisoned while this processor was blocked: a peer
/// failed, and the rendezvous it was waiting for can never complete.
struct ChannelAborted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ChannelOptions {
  /// Per-operation deadline in milliseconds; <= 0 waits forever.
  int deadline_ms = 30000;
  /// Fault injection: runs on the sender's thread, outside any lock,
  /// before the message is offered to the channel.
  std::function<void(int src, int dst)> send_delay;
};

class ChannelFabric {
 public:
  explicit ChannelFabric(int nprocs, ChannelOptions options = {});

  /// Rendezvous send: blocks until the receiver has taken the message.
  void send(int src, int dst, RtMessage msg);
  /// Blocking receive of the next message on the (src, dst) channel.
  RtMessage recv(int dst, int src);

  /// Wake every current and future waiter with ChannelAborted.
  void poison(const std::string& why);
  bool poisoned() const;

  int64_t total_messages() const;

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    bool busy = false;       // a sender owns the slot (supports N senders)
    bool has_msg = false;    // deposited, not yet taken
    bool delivered = false;  // taken; the sender may return
    RtMessage slot;
  };

  Channel& channel(int src, int dst) {
    return channels_[static_cast<size_t>(src) * static_cast<size_t>(nprocs_) +
                     static_cast<size_t>(dst)];
  }
  /// Wait for `pred` under `lock`, honoring deadline and poison. `what`
  /// describes the blocked operation for the deadlock diagnostic.
  template <typename Pred>
  void wait(Channel& ch, std::unique_lock<std::mutex>& lock, Pred pred,
            const std::string& what);

  int nprocs_;
  ChannelOptions options_;
  std::vector<Channel> channels_;

  mutable std::mutex poison_mu_;
  bool poisoned_ = false;
  std::string poison_why_;

  mutable std::mutex stat_mu_;
  int64_t messages_ = 0;
};

}  // namespace fortd::runtime
