// Communication analysis and optimization (§5.4, Fig. 11).
//
// Nonlocal references are classified into communication *events*:
//   * Shift   — the reference is offset by a constant from the owner-
//               computes subscript in the distributed dimension
//               (nearest-neighbor send/recv, overlap storage),
//   * Bcast   — the distributed-dimension subscript is loop-invariant
//               (one owner broadcasts the section, e.g. a pivot column),
//   * ScalarBcast — a scalar computed under an owner guard must be made
//               consistent on all processors.
//
// Events carry *symbolic sections* (affine triplets over loop variables
// and formals). Placement walks outward over enclosing loops: an event
// crosses a loop when no true dependence blocks it, *widening* its section
// over the loop range (message vectorization); events whose sections still
// reference formal parameters at the procedure top are exported to callers
// (delayed instantiation), where translation and further widening realize
// interprocedural message vectorization.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/symbolic.hpp"
#include "codegen/distribution.hpp"
#include "codegen/partition.hpp"

namespace fortd {

/// A triplet with affine bounds: lb:ub:step over loop vars / formals.
struct SymTriplet {
  AffineForm lb;
  AffineForm ub;
  int64_t step = 1;

  static SymTriplet single(AffineForm f) { return {f, f, 1}; }
  static SymTriplet constant(int64_t lo, int64_t hi, int64_t st = 1);
  bool is_singleton() const { return lb.str() == ub.str() && step == 1; }
  /// Free variables appearing in the bounds.
  std::vector<std::string> vars() const;
  std::string str() const;
};

using SymSection = std::vector<SymTriplet>;

std::string sym_section_str(const SymSection& s);
std::vector<std::string> sym_section_vars(const SymSection& s);

/// Substitute `var := replacement` in a form / triplet / section.
AffineForm substitute(const AffineForm& f, const std::string& var,
                      const AffineForm& replacement);
SymTriplet substitute(const SymTriplet& t, const std::string& var,
                      const AffineForm& replacement);
SymSection substitute(const SymSection& s, const std::string& var,
                      const AffineForm& replacement);

/// Widen a triplet over a loop range: every occurrence of `var` in the
/// bounds is replaced by the loop's lower bound in `lb` and upper bound in
/// `ub` (valid for coefficient +1/0; returns nullopt otherwise).
std::optional<SymTriplet> widen_over_loop(const SymTriplet& t,
                                          const std::string& var,
                                          const AffineForm& loop_lb,
                                          const AffineForm& loop_ub,
                                          int64_t loop_step);

/// Loop context for symbolic range reasoning: var -> (lb, ub) forms,
/// innermost last.
struct LoopBound {
  std::string var;
  AffineForm lb;
  AffineForm ub;
  int64_t step = 1;
};
using LoopCtx = std::vector<LoopBound>;

/// Render an affine form as an AST expression.
ExprPtr form_to_expr(const AffineForm& f);
SectionExpr triplet_to_section(const SymTriplet& t);

// ---------------------------------------------------------------------------
// Dependence classification for hoisting
// ---------------------------------------------------------------------------

/// Constraint one subscript dimension places on the iteration distance
/// (read iteration minus write iteration, in `crossing_var` steps) of a
/// potential dependence. Dimensions compose by intersection.
struct DimDistance {
  enum Kind {
    Disjoint,       // elements never equal: no dependence at all
    Fixed,          // elements equal only at distance `dist`
    Unconstrained,  // any distance possible (conservative)
  } kind = Unconstrained;
  int64_t dist = 0;

  static DimDistance disjoint() { return {Disjoint, 0}; }
  static DimDistance fixed(int64_t d) { return {Fixed, d}; }
  static DimDistance any() { return {Unconstrained, 0}; }
};

/// Classify one dimension of a (write section, read section) pair for the
/// purpose of hoisting communication across the loop with `crossing_var`
/// (empty = no loop: plain program-order check).
DimDistance classify_dim(const SymTriplet& write, const SymTriplet& read,
                         const LoopCtx& ctx, const std::string& crossing_var);

/// Does hoisting the read of `read_sec` across the loop with
/// `crossing_var` violate a dependence with a write of `write_sec`?
/// `write_lexically_first` breaks the all-SameIter tie.
bool blocks_hoist(const SymSection& write_sec, const SymSection& read_sec,
                  const LoopCtx& ctx, const std::string& crossing_var,
                  bool write_lexically_first);

// ---------------------------------------------------------------------------
// Communication events
// ---------------------------------------------------------------------------

struct CommEvent {
  enum class Kind { Shift, Bcast, ScalarBcast };
  Kind kind = Kind::Bcast;
  std::string array;  // Shift/Bcast: the communicated array
  DecompSpec spec;    // its distribution
  std::vector<std::pair<int64_t, int64_t>> bounds;  // its declared bounds
  int dist_dim = -1;
  int64_t shift = 0;       // Shift: offset amount (signed)
  SymSection section;      // full-rank; Shift's dist_dim entry is a
                           // placeholder overwritten at instantiation
  AffineForm root_index;   // Bcast/ScalarBcast: dist-dim index owning data
  std::string scalar;      // ScalarBcast: the scalar variable
  int hoisted_loops = 0;   // how many loops the event crossed (stats)
  /// Source location of the reference that demanded the communication;
  /// stamped onto every generated message statement so SPMD diagnostics
  /// map back to source lines. Not part of message identity.
  SourceLoc loc;

  std::string str() const;
  /// Equality used for coalescing duplicate events (ignores `loc`).
  bool same_message(const CommEvent& o) const;
};

/// Classify the communication required by one rhs reference given the
/// statement's iteration-set constraint. Returns nullopt when the
/// reference is local (no communication). `needs_runtime` is set when the
/// pattern is not compile-time analyzable.
std::optional<CommEvent> classify_reference(
    const Expr& ref, const ArrayDistribution& ref_dist,
    const IterationSet& iter_set,
    const std::optional<ArrayDistribution>& lhs_dist, const SymbolicEnv& env,
    bool* needs_runtime);

}  // namespace fortd
