// Data and computation partitioning with delayed instantiation (§5.3,
// Fig. 9).
//
// Each assignment statement gets an *iteration-set constraint* derived
// from the owner-computes rule on its left-hand side:
//
//   lhs A(..., v+c, ...) with A distributed in that dimension
//     =>  the statement executes for v in localset(A) - c.
//
// The constraint variable `v` may be
//   * a DO variable of a loop local to the procedure — instantiated here
//     by loop-bounds reduction (uniform) or a guard (mixed),
//   * a formal parameter / caller-defined variable — *delayed*: exported
//     to callers, where it becomes bounds reduction of the caller's loop
//     or a guard at the call site, or
//   * a constant/loop-invariant expression — an owner guard.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/symbolic.hpp"
#include "codegen/distribution.hpp"
#include "ir/decomp.hpp"

namespace fortd {

/// "my$p must own element (var + offset) along dimension `dim` of `array`".
struct OwnershipConstraint {
  std::string var;    // constraint variable; empty when `fixed` is used
  AffineForm fixed;   // loop-invariant subscript (var empty)
  std::string array;  // array whose distribution constrains execution
  int dim = -1;
  int64_t offset = 0;

  bool uses_var() const { return !var.empty(); }
  bool operator==(const OwnershipConstraint& o) const {
    return var == o.var && fixed.str() == o.fixed.str() && array == o.array &&
           dim == o.dim && offset == o.offset;
  }
  std::string str() const;
};

/// The iteration-set of one statement (or one whole procedure).
struct IterationSet {
  enum class Kind {
    Universal,   // executes on every processor (replicated lhs)
    Constrained, // owner-computes constraint below
    RuntimeOnly, // needs run-time resolution (non-affine / multi-dim dist)
  };
  Kind kind = Kind::Universal;
  OwnershipConstraint constraint;

  static IterationSet universal() { return {}; }
  static IterationSet runtime() {
    IterationSet s;
    s.kind = Kind::RuntimeOnly;
    return s;
  }
  static IterationSet constrained(OwnershipConstraint c) {
    IterationSet s;
    s.kind = Kind::Constrained;
    s.constraint = std::move(c);
    return s;
  }
  bool is_universal() const { return kind == Kind::Universal; }
  bool is_constrained() const { return kind == Kind::Constrained; }
  std::string str() const;
};

/// Derive the iteration set of an assignment from its lhs under the given
/// distribution of the lhs array (nullopt distribution = replicated).
/// `env` supplies constants; loop variables of the enclosing nest are
/// passed so constant-folding can classify subscripts.
IterationSet owner_computes(const Expr& lhs,
                            const std::optional<ArrayDistribution>& lhs_dist,
                            const SymbolicEnv& env);

/// Union of statement iteration sets for a whole procedure (Fig. 9:
/// "collect union of all iteration sets in P for callers"). Returns
/// nullopt when the sets differ (the procedure must guard internally and
/// export Universal).
std::optional<IterationSet> unify_iteration_sets(
    const std::vector<IterationSet>& sets);

}  // namespace fortd
