// Storage management (§5.6): overlap regions, buffers, and parameterized
// overlaps. Computes, per procedure and array, the local extent along the
// distributed dimension, the actual overlap demanded by shift
// communication, and whether the interprocedural estimate (Fig. 13)
// sufficed — falling back to buffers when it did not.
#pragma once

#include "codegen/spmd.hpp"
#include "ipa/cloning.hpp"

namespace fortd {

class CodeGenerator;
struct ProcExports;

/// Populate `result.storage[proc]` from the compiled procedure's
/// communication shape and the overlap estimates.
void compute_storage(CodeGenerator& cg, const Procedure& proc,
                     const ProcExports& exports, SpmdProgram& result);

}  // namespace fortd
