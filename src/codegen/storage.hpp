// Storage management (§5.6): overlap regions, buffers, and parameterized
// overlaps. Computes, per procedure and array, the local extent along the
// distributed dimension, the actual overlap demanded by shift
// communication, and whether the interprocedural estimate (Fig. 13)
// sufficed — falling back to buffers when it did not.
#pragma once

#include <vector>

#include "codegen/spmd.hpp"
#include "ipa/cloning.hpp"

namespace fortd {

class CodeGenerator;
struct ProcExports;

/// Storage layout for one procedure, from its compiled communication
/// shape and the overlap estimates. Reads only shared analysis state, so
/// it is safe to call from concurrent per-procedure workers; buffer
/// fallbacks are counted into the caller-owned `stats`.
std::vector<ArrayStorageInfo> compute_storage(const CodeGenerator& cg,
                                              const Procedure& proc,
                                              const ProcExports& exports,
                                              CompileStats& stats);

}  // namespace fortd
