#include "codegen/partition.hpp"

namespace fortd {

std::string OwnershipConstraint::str() const {
  std::string s = "own(" + array + ",dim" + std::to_string(dim) + ",";
  if (uses_var())
    s += var + (offset >= 0 ? "+" : "") + std::to_string(offset);
  else
    s += fixed.str();
  return s + ")";
}

std::string IterationSet::str() const {
  switch (kind) {
    case Kind::Universal: return "<universal>";
    case Kind::RuntimeOnly: return "<runtime>";
    case Kind::Constrained: return constraint.str();
  }
  return "?";
}

IterationSet owner_computes(const Expr& lhs,
                            const std::optional<ArrayDistribution>& lhs_dist,
                            const SymbolicEnv& env) {
  if (lhs.kind == ExprKind::VarRef) return IterationSet::universal();
  if (!lhs_dist || lhs_dist->replicated_p()) return IterationSet::universal();

  int d = lhs_dist->dist_dim();
  if (d == -2) return IterationSet::runtime();  // multi-dim distribution
  if (d < 0 || d >= static_cast<int>(lhs.args.size()))
    return IterationSet::universal();
  // BLOCK_CYCLIC footprints are not single strided ranges: compile-time
  // bounds reduction / guards do not apply — fall back to the run-time
  // resolution scheme (documented substitution).
  if (lhs_dist->spec().dists[static_cast<size_t>(d)].kind ==
      DistKind::BlockCyclic)
    return IterationSet::runtime();

  auto form = extract_affine(*lhs.args[static_cast<size_t>(d)], env.consts);
  if (!form) return IterationSet::runtime();

  OwnershipConstraint c;
  c.array = lhs.name;
  c.dim = d;
  auto vars = form->vars();
  if (vars.empty()) {
    c.fixed = *form;
    c.offset = 0;
  } else if (vars.size() == 1 && form->coeff(vars[0]) == 1) {
    c.var = vars[0];
    c.offset = form->konst;
  } else {
    // Coupled or scaled subscripts: owner tests must run per iteration.
    return IterationSet::runtime();
  }
  return IterationSet::constrained(std::move(c));
}

std::optional<IterationSet> unify_iteration_sets(
    const std::vector<IterationSet>& sets) {
  std::optional<IterationSet> unified;
  for (const auto& s : sets) {
    if (s.kind == IterationSet::Kind::RuntimeOnly) return std::nullopt;
    if (s.is_universal()) continue;  // replicated statements run anywhere
    if (!unified) {
      unified = s;
    } else if (!(unified->constraint == s.constraint)) {
      return std::nullopt;
    }
  }
  if (!unified) return IterationSet::universal();
  return unified;
}

}  // namespace fortd
