#include "codegen/spmd_printer.hpp"

#include <sstream>

namespace fortd {

namespace {

const char* binop_str(BinOp op) {
  switch (op) {
    case BinOp::Add: return " + ";
    case BinOp::Sub: return " - ";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Eq: return " .eq. ";
    case BinOp::Ne: return " .ne. ";
    case BinOp::Lt: return " .lt. ";
    case BinOp::Le: return " .le. ";
    case BinOp::Gt: return " .gt. ";
    case BinOp::Ge: return " .ge. ";
    case BinOp::And: return " .and. ";
    case BinOp::Or: return " .or. ";
  }
  return "?";
}

int precedence(const Expr& e) {
  if (e.kind != ExprKind::Binary) return 100;
  switch (e.bin_op) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: return 3;
    case BinOp::Add:
    case BinOp::Sub: return 4;
    case BinOp::Mul:
    case BinOp::Div: return 5;
  }
  return 100;
}

std::string print_child(const Expr& parent, const Expr& child, bool right) {
  std::string s = print_expr(child);
  bool need_parens = precedence(child) < precedence(parent) ||
                     (right && precedence(child) == precedence(parent) &&
                      (parent.bin_op == BinOp::Sub || parent.bin_op == BinOp::Div));
  return need_parens ? "(" + s + ")" : s;
}

std::string section_str(const std::vector<SectionExpr>& sec) {
  std::string s = "(";
  for (size_t i = 0; i < sec.size(); ++i) {
    if (i) s += ",";
    std::string lb = print_expr(*sec[i].lb);
    std::string ub = print_expr(*sec[i].ub);
    s += lb == ub ? lb : lb + ":" + ub;
    if (sec[i].step) s += ":" + print_expr(*sec[i].step);
  }
  return s + ")";
}

std::string dists_str(const std::vector<DistSpec>& dists) {
  std::string s = "(";
  for (size_t i = 0; i < dists.size(); ++i) {
    if (i) s += ",";
    s += dists[i].str();
  }
  return s + ")";
}

void print_stmts(std::ostringstream& out, const std::vector<StmtPtr>& stmts,
                 int indent);

void print_one(std::ostringstream& out, const Stmt& s, int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::Assign:
      out << pad << print_expr(*s.lhs) << " = " << print_expr(*s.rhs) << "\n";
      break;
    case StmtKind::If:
      out << pad << "if (" << print_expr(*s.cond) << ") then\n";
      print_stmts(out, s.then_body, indent + 1);
      if (!s.else_body.empty()) {
        out << pad << "else\n";
        print_stmts(out, s.else_body, indent + 1);
      }
      out << pad << "endif\n";
      break;
    case StmtKind::Do:
      out << pad << "do " << s.loop_var << " = " << print_expr(*s.lb) << ", "
          << print_expr(*s.ub);
      if (s.step) out << ", " << print_expr(*s.step);
      out << "\n";
      print_stmts(out, s.body, indent + 1);
      out << pad << "enddo\n";
      break;
    case StmtKind::Call: {
      out << pad << "call " << s.callee << "(";
      for (size_t i = 0; i < s.call_args.size(); ++i) {
        if (i) out << ", ";
        out << print_expr(*s.call_args[i]);
      }
      out << ")\n";
      break;
    }
    case StmtKind::Return:
      out << pad << "return\n";
      break;
    case StmtKind::Continue:
      out << pad << "continue\n";
      break;
    case StmtKind::Align: {
      out << pad << "ALIGN " << s.align_array << " WITH " << s.align_target
          << "\n";
      break;
    }
    case StmtKind::Distribute:
      out << pad << "DISTRIBUTE " << s.dist_target << dists_str(s.dist_specs)
          << "\n";
      break;
    case StmtKind::Send:
      out << pad << "send " << s.msg_array << section_str(s.msg_section)
          << " to " << print_expr(*s.peer) << "\n";
      break;
    case StmtKind::Recv:
      out << pad << "recv " << s.msg_array << section_str(s.msg_section)
          << " from " << print_expr(*s.peer) << "\n";
      break;
    case StmtKind::Broadcast:
      out << pad << "broadcast " << s.msg_array;
      if (!s.msg_section.empty()) out << section_str(s.msg_section);
      out << " from " << print_expr(*s.peer) << "\n";
      break;
    case StmtKind::Remap:
      out << pad << "call remap$" << s.dist_target << "("
          << dists_str(s.from_specs) << " -> " << dists_str(s.dist_specs)
          << ")\n";
      break;
    case StmtKind::MarkDist:
      out << pad << "call mark$" << s.dist_target << "("
          << dists_str(s.dist_specs) << ")  ! array kill: no data motion\n";
      break;
    case StmtKind::AllReduce:
      out << pad << "allreduce " << s.msg_array << " (" << s.reduce_op
          << ")\n";
      break;
  }
}

void print_stmts(std::ostringstream& out, const std::vector<StmtPtr>& stmts,
                 int indent) {
  for (const auto& s : stmts) print_one(out, *s, indent);
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return std::to_string(e.int_val);
    case ExprKind::RealLit: {
      std::ostringstream os;
      os << e.real_val;
      std::string s = os.str();
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos)
        s += ".0";
      return s;
    }
    case ExprKind::VarRef:
      return e.name;
    case ExprKind::ArrayRef:
    case ExprKind::FuncCall: {
      std::string s = e.name + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) s += ",";
        s += print_expr(*e.args[i]);
      }
      return s + ")";
    }
    case ExprKind::Binary:
      return print_child(e, *e.args[0], false) + binop_str(e.bin_op) +
             print_child(e, *e.args[1], true);
    case ExprKind::Unary: {
      std::string inner = print_expr(*e.args[0]);
      if (precedence(*e.args[0]) < 100) inner = "(" + inner + ")";
      return (e.un_op == UnOp::Neg ? "-" : ".not. ") + inner;
    }
  }
  return "?";
}

std::string print_stmt(const Stmt& s, int indent) {
  std::ostringstream out;
  print_one(out, s, indent);
  return out.str();
}

std::string print_procedure(const Procedure& proc) {
  std::ostringstream out;
  if (proc.is_program) {
    out << "PROGRAM " << proc.name << "\n";
  } else {
    out << "SUBROUTINE " << proc.name << "(";
    for (size_t i = 0; i < proc.formals.size(); ++i) {
      if (i) out << ",";
      out << proc.formals[i];
    }
    out << ")\n";
  }
  for (const auto& d : proc.decls) {
    out << "  " << (d.is_decomposition ? "DECOMPOSITION"
                    : d.type == ElemType::Real ? "REAL"
                    : d.type == ElemType::Integer ? "INTEGER"
                                                  : "LOGICAL")
        << " " << d.name;
    if (!d.dims.empty()) {
      out << "(";
      for (size_t i = 0; i < d.dims.size(); ++i) {
        if (i) out << ",";
        if (d.dims[i].lb) out << print_expr(*d.dims[i].lb) << ":";
        out << print_expr(*d.dims[i].ub);
      }
      out << ")";
    }
    out << "\n";
  }
  print_stmts(out, proc.body, 1);
  out << "END\n";
  return out.str();
}

std::string print_program(const SourceProgram& prog) {
  std::string out;
  for (const auto& p : prog.procedures) {
    out += print_procedure(*p);
    out += "\n";
  }
  return out;
}

std::string print_spmd(const SpmdProgram& spmd) {
  std::ostringstream out;
  out << "! SPMD program for " << spmd.options.n_procs << " processors\n\n";
  for (const auto& p : spmd.ast.procedures) {
    auto sit = spmd.storage.find(p->name);
    if (sit != spmd.storage.end()) {
      for (const auto& info : sit->second) {
        if (info.dist_dim < 0) continue;
        out << "! " << p->name << ": " << info.array << " " << info.spec.str()
            << " local " << info.local_extent << " (+" << info.overlap_lo
            << "/+" << info.overlap_hi << " overlap, est " << info.est_lo
            << "/" << info.est_hi << ")"
            << (info.used_buffer ? " [buffer]" : "")
            << (info.parameterized ? " [parameterized]" : "") << "\n";
      }
    }
    out << print_procedure(*p) << "\n";
  }
  return out.str();
}

}  // namespace fortd
