#include "codegen/runtime_resolution.hpp"

#include "codegen/expr_build.hpp"

namespace fortd {

ExprPtr owner_intrinsic(const std::string& array,
                        const std::vector<ExprPtr>& subscripts) {
  std::vector<ExprPtr> args;
  args.reserve(subscripts.size());
  for (const auto& s : subscripts) args.push_back(s->clone());
  return Expr::make_call("owner$" + array, std::move(args));
}

namespace {

std::vector<SectionExpr> element_section(const Expr& ref) {
  std::vector<SectionExpr> sec;
  for (const auto& sub : ref.args) {
    SectionExpr t;
    t.lb = sub->clone();
    t.ub = sub->clone();
    sec.push_back(std::move(t));
  }
  return sec;
}

ExprPtr owner_of_ref(const Expr& ref) {
  std::vector<ExprPtr> subs;
  for (const auto& s : ref.args) subs.push_back(s->clone());
  return owner_intrinsic(ref.name, subs);
}

}  // namespace

void emit_runtime_resolved_assign(const Stmt& stmt, const SymbolTable& st,
                                  const IsDistributedFn& is_distributed,
                                  std::vector<StmtPtr>& out,
                                  CompileStats& stats) {
  using namespace build;
  ++stats.runtime_resolved_stmts;
  // Every generated statement inherits the source assignment's position so
  // SPMD diagnostics on run-time-resolved code map back to source lines.
  const size_t first_new = out.size();

  // Collect distributed rhs references.
  std::vector<const Expr*> dist_refs;
  walk_expr(*stmt.rhs, [&](const Expr& e) {
    if (e.kind == ExprKind::ArrayRef && is_distributed(e.name))
      dist_refs.push_back(&e);
  });

  const bool lhs_distributed = stmt.lhs->kind == ExprKind::ArrayRef &&
                               is_distributed(stmt.lhs->name);

  std::function<void(Stmt&)> stamp_rec = [&](Stmt& s) {
    if (!s.loc.valid()) s.loc = stmt.loc;
    for (auto& c : s.then_body) stamp_rec(*c);
    for (auto& c : s.else_body) stamp_rec(*c);
    for (auto& c : s.body) stamp_rec(*c);
  };
  auto stamp_new = [&] {
    if (!stmt.loc.valid()) return;
    for (size_t i = first_new; i < out.size(); ++i) stamp_rec(*out[i]);
  };

  if (!lhs_distributed) {
    // Replicated target: every processor executes; each distributed rhs
    // element is broadcast from its owner.
    for (const Expr* r : dist_refs) {
      out.push_back(
          Stmt::make_broadcast(r->name, element_section(*r), owner_of_ref(*r)));
    }
    out.push_back(Stmt::make_assign(stmt.lhs->clone(), stmt.rhs->clone()));
    stamp_new();
    return;
  }

  ExprPtr lhs_owner = owner_of_ref(*stmt.lhs);
  for (const Expr* r : dist_refs) {
    // Skip references that are syntactically the lhs element itself.
    if (r->structurally_equal(*stmt.lhs)) continue;
    ExprPtr r_owner = owner_of_ref(*r);

    // Sender side.
    std::vector<StmtPtr> send_body;
    send_body.push_back(
        Stmt::make_send(r->name, element_section(*r), lhs_owner->clone()));
    out.push_back(Stmt::make_if(
        land(cmp(BinOp::Eq, myp(), r_owner->clone()),
             cmp(BinOp::Ne, lhs_owner->clone(), myp())),
        std::move(send_body)));

    // Receiver side.
    std::vector<StmtPtr> recv_body;
    recv_body.push_back(
        Stmt::make_recv(r->name, element_section(*r), r_owner->clone()));
    out.push_back(Stmt::make_if(
        land(cmp(BinOp::Eq, myp(), lhs_owner->clone()),
             cmp(BinOp::Ne, r_owner->clone(), myp())),
        std::move(recv_body)));
  }

  // Owner executes the assignment.
  std::vector<StmtPtr> body;
  body.push_back(Stmt::make_assign(stmt.lhs->clone(), stmt.rhs->clone()));
  out.push_back(
      Stmt::make_if(cmp(BinOp::Eq, myp(), lhs_owner->clone()), std::move(body)));
  stamp_new();
  (void)st;
}

}  // namespace fortd
