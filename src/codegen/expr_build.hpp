// Small expression-building helpers used throughout code generation.
// Generated code references the intrinsics `min`, `max`, `modp` (positive
// modulus) and the pseudo-variable `my$p` (this processor's 0-based id),
// all of which the SPMD interpreter and pretty-printer understand.
#pragma once

#include <utility>

#include "frontend/ast.hpp"

namespace fortd::build {

inline ExprPtr num(int64_t v) { return Expr::make_int(v); }
inline ExprPtr var(const std::string& name) { return Expr::make_var(name); }
inline ExprPtr myp() { return Expr::make_var("my$p"); }

inline ExprPtr add(ExprPtr a, ExprPtr b) {
  return Expr::make_binary(BinOp::Add, std::move(a), std::move(b));
}
inline ExprPtr sub(ExprPtr a, ExprPtr b) {
  return Expr::make_binary(BinOp::Sub, std::move(a), std::move(b));
}
inline ExprPtr mul(ExprPtr a, ExprPtr b) {
  return Expr::make_binary(BinOp::Mul, std::move(a), std::move(b));
}
inline ExprPtr div(ExprPtr a, ExprPtr b) {
  return Expr::make_binary(BinOp::Div, std::move(a), std::move(b));
}

inline ExprPtr fn(const std::string& name, ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return Expr::make_call(name, std::move(args));
}
inline ExprPtr fmin(ExprPtr a, ExprPtr b) { return fn("min", std::move(a), std::move(b)); }
inline ExprPtr fmax(ExprPtr a, ExprPtr b) { return fn("max", std::move(a), std::move(b)); }
inline ExprPtr modp(ExprPtr a, ExprPtr b) { return fn("modp", std::move(a), std::move(b)); }

inline ExprPtr cmp(BinOp op, ExprPtr a, ExprPtr b) {
  return Expr::make_binary(op, std::move(a), std::move(b));
}
inline ExprPtr land(ExprPtr a, ExprPtr b) {
  return Expr::make_binary(BinOp::And, std::move(a), std::move(b));
}

/// Constant-fold trivial arithmetic so generated code stays readable
/// (e.g. `i + 0` -> `i`, `2 + 3` -> `5`).
ExprPtr simplify(ExprPtr e);

}  // namespace fortd::build
