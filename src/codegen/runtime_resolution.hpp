// Run-time resolution code generation (§3.1, Fig. 3): the baseline the
// paper compares against, and the compiler's per-statement fallback when
// compile-time analysis fails (non-affine subscripts, BLOCK_CYCLIC or
// multi-dimensional distributions, cloning threshold exceeded).
//
// Every assignment touching distributed data is rewritten to explicitly
// test ownership of each reference and move single elements:
//
//     if (my$p .eq. owner(X(i+5)) .and. owner(X(i)) .ne. my$p)
//        send X(i+5) to owner(X(i))
//     if (my$p .eq. owner(X(i)) .and. owner(X(i+5)) .ne. my$p)
//        recv X(i+5) from owner(X(i+5))
//     if (my$p .eq. owner(X(i)))  X(i) = F(X(i+5))
//
// Ownership is resolved through the runtime intrinsic `owner$<array>`,
// which the SPMD interpreter evaluates against the live distribution
// registry (so dynamic redistribution works under this scheme too).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "codegen/spmd.hpp"
#include "frontend/ast.hpp"
#include "ir/symbol_table.hpp"

namespace fortd {

/// Is `name` distributed (non-replicated) in this statement's context?
/// Supplied by the caller because reaching decompositions are a
/// compile-time notion even for this baseline's code shape.
using IsDistributedFn = std::function<bool(const std::string&)>;

/// Rewrite one assignment into run-time-resolved form. Appends the
/// generated statements to `out`.
void emit_runtime_resolved_assign(const Stmt& stmt, const SymbolTable& st,
                                  const IsDistributedFn& is_distributed,
                                  std::vector<StmtPtr>& out,
                                  CompileStats& stats);

/// Owner intrinsic reference: owner$<array>(subscripts...).
ExprPtr owner_intrinsic(const std::string& array,
                        const std::vector<ExprPtr>& subscripts);

}  // namespace fortd
