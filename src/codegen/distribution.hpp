// Distribution functions: value-level and symbolic (my$p-expression) forms
// of BLOCK / CYCLIC / BLOCK_CYCLIC data mappings (§3 step 2, §5.3).
//
// The value-level form answers "which processor owns index i" and "which
// indices does processor p own" — used by analysis, the run-time
// resolution baseline, the simulator, and tests. The symbolic form
// produces the my$p arithmetic that appears in generated SPMD code
// (reduced loop bounds, owner guards, neighbor expressions).
#pragma once

#include <cstdint>
#include <optional>

#include "frontend/ast.hpp"
#include "ir/decomp.hpp"
#include "ir/rsd.hpp"
#include "ir/symbol_table.hpp"

namespace fortd {

/// Distribution of a single array dimension over `nprocs` processors.
class DimDistribution {
public:
  DimDistribution(DistSpec spec, int64_t glb, int64_t gub, int nprocs);

  DistKind kind() const { return spec_.kind; }
  int nprocs() const { return nprocs_; }
  int64_t glb() const { return glb_; }
  int64_t gub() const { return gub_; }
  /// BLOCK: elements per processor, ceil(N / P).
  int64_t block_size() const;

  /// Processor owning global index i (0-based processor ids).
  int owner(int64_t i) const;
  /// Global indices owned by processor p (single triplet for BLOCK and
  /// CYCLIC; BLOCK_CYCLIC footprints are not triplets — use owned_list).
  Triplet local_set(int p) const;
  RsdList owned_list(int p) const;  // exact for all kinds
  /// Count of indices owned by p.
  int64_t local_count(int p) const;

  // -- symbolic forms (expressions over "my$p" / an index expression) ----
  /// Expression for the owner of `index` (0-based processor number).
  ExprPtr owner_expr(ExprPtr index) const;
  /// Expression for the first global index owned by my$p (BLOCK/CYCLIC).
  ExprPtr local_lb_expr() const;
  /// Expression for the last global index owned by my$p (BLOCK/CYCLIC;
  /// capped at the global upper bound for BLOCK).
  ExprPtr local_ub_expr() const;

private:
  DistSpec spec_;
  int64_t glb_, gub_;
  int nprocs_;
};

/// Distribution of a whole array under a DecompSpec.
class ArrayDistribution {
public:
  ArrayDistribution(std::string array, DecompSpec spec,
                    std::vector<std::pair<int64_t, int64_t>> bounds, int nprocs);

  static ArrayDistribution replicated(std::string array,
                                      std::vector<std::pair<int64_t, int64_t>> bounds,
                                      int nprocs);
  static std::optional<ArrayDistribution> from_symbol(const Symbol& sym,
                                                      const DecompSpec& spec,
                                                      int nprocs);

  const std::string& array() const { return array_; }
  const DecompSpec& spec() const { return spec_; }
  int rank() const { return static_cast<int>(bounds_.size()); }
  int nprocs() const { return nprocs_; }

  bool replicated_p() const;
  /// Index of the unique distributed dimension; -1 when replicated, -2
  /// when more than one dimension is distributed (compile-time code
  /// generation falls back to run-time resolution in that case).
  int dist_dim() const;
  DimDistribution dim(int d) const;

  /// Section of the global index space owned by processor p.
  Rsd local_section(int p) const;
  /// Owner of a full index point; processors own points along the single
  /// distributed dim (0 for replicated arrays — every processor holds a
  /// copy and 0 is the canonical owner).
  int owner_of(const std::vector<int64_t>& point) const;
  /// True when processor p owns the point (always true for replicated).
  bool owns(int p, const std::vector<int64_t>& point) const;

  /// Bytes moved if the array is remapped from this distribution to `to`
  /// (elements whose owner changes, times element size).
  int64_t remap_bytes(const ArrayDistribution& to, int elem_size) const;

private:
  std::string array_;
  DecompSpec spec_;
  std::vector<std::pair<int64_t, int64_t>> bounds_;
  int nprocs_;
};

}  // namespace fortd
