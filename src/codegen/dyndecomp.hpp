// Dynamic data decomposition optimization (§6, Figs. 15-17): dead-remap
// elimination via live decompositions, coalescing of identical reaching
// remaps, loop-invariant remap hoisting, and array-kill remap-in-place.
// Operates on the generated SPMD AST, where delayed remaps have already
// been instantiated in the callers.
#pragma once

#include <map>
#include <set>
#include <string>

#include "codegen/options.hpp"
#include "codegen/spmd.hpp"

namespace fortd {

/// Which arrays a procedure kills (fully overwrites before any use) —
/// drives the array-kill optimization (Fig. 16d): remapping such an array
/// needs no data motion, only relabeling.
struct ArrayKillSummary {
  std::set<int> killed_formals;            // formal positions
  std::set<std::string> killed_globals;    // COMMON arrays by name
};

/// Apply the optimization pipeline up to `level` to every procedure of the
/// generated program, updating `program.stats`.
void optimize_dynamic_decomps(
    SpmdProgram& program, DynDecompOpt level,
    const std::map<std::string, ArrayKillSummary>& kills = {});

}  // namespace fortd
