// Interprocedural code generation driver (§5, Fig. 9/11/13/17): compiles
// procedures in reverse topological order, exactly once each, delaying
// instantiation of the computation partition, communication, and dynamic
// data decomposition so callers can optimize across procedure boundaries.
#pragma once

#include <map>
#include <set>
#include <string>

#include "codegen/comm.hpp"
#include "codegen/options.hpp"
#include "codegen/partition.hpp"
#include "codegen/spmd.hpp"
#include "ipa/cloning.hpp"
#include "ipa/overlap_prop.hpp"

namespace fortd {

/// Everything a compiled procedure exports to its (not yet compiled)
/// callers — the concrete realization of "delayed instantiation".
struct ProcExports {
  /// Unified iteration set of the procedure (Fig. 9): Constrained when
  /// every effectful statement shares one owner-computes constraint on a
  /// formal; Universal when the procedure guards internally.
  IterationSet iter_set;
  /// Pending communication events, in the procedure's own name space.
  std::vector<CommEvent> pending_comms;
  /// Symbolic write sections per array (in formal terms) — the RSD
  /// def summaries callers use for dependence checks when hoisting.
  std::map<std::string, std::vector<SymSection>> sym_defs;
  /// Dynamic-data-decomposition summary sets (Fig. 17).
  std::set<std::string> decomp_use;
  std::set<std::string> decomp_kill;
  std::vector<std::pair<DecompSpec, std::string>> decomp_before;
  std::vector<std::pair<DecompSpec, std::string>> decomp_after;
  /// Scalars (formals/globals) the procedure may modify — a caller that
  /// guards this call must re-broadcast them.
  std::set<std::string> scalar_mods;
  /// True when the compiled body contains message statements; such a
  /// procedure must be invoked by every processor.
  bool contains_comm = false;
  /// Overlap demand observed from shift communication: array ->
  /// (lower, upper) element counts along the distributed dimension.
  std::map<std::string, std::pair<int64_t, int64_t>> shift_demand;
};

class CodeGenerator {
public:
  CodeGenerator(BoundProgram& program, const IpaContext& ipa,
                const CodegenOptions& options);

  /// Compile the whole program (one pass per procedure).
  SpmdProgram generate();

  /// Exports of an already compiled procedure (test/bench introspection).
  const ProcExports* exports_of(const std::string& proc) const;

  BoundProgram& program() { return program_; }
  const IpaContext& ipa() const { return ipa_; }
  const CodegenOptions& options() const { return options_; }
  const OverlapEstimates& overlaps() const { return overlaps_; }

private:
  friend class ProcGen;

  BoundProgram& program_;
  const IpaContext& ipa_;
  CodegenOptions options_;
  OverlapEstimates overlaps_;
  std::map<std::string, ProcExports> exports_;
  SpmdProgram result_;
};

/// Convenience wrapper: run code generation end to end.
SpmdProgram generate_spmd(BoundProgram& program, const IpaContext& ipa,
                          const CodegenOptions& options);

}  // namespace fortd
