// Interprocedural code generation driver (§5, Fig. 9/11/13/17): compiles
// procedures in reverse topological order, exactly once each, delaying
// instantiation of the computation partition, communication, and dynamic
// data decomposition so callers can optimize across procedure boundaries.
//
// The reverse topological walk is scheduled barrier-free by default: a
// TaskGraph node per procedure, dependency edges to its callees, and a
// work-stealing run over the shared ThreadPool (options.jobs > 1) — a
// caller starts the moment its own callees finish. Each ProcGen touches
// only its own state; results are committed in fixed reverse topological
// order after the run, so output is byte-identical to the serial walk
// regardless of completion order. Scheduler::Wavefront keeps the
// depth-leveled schedule of PR 1 (a barrier per ACG level) as the
// measurable baseline. An optional content-hashed CompilationCache
// short-circuits generation of procedures whose §8 recompilation-test
// inputs are unchanged since a previous compile.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "codegen/comm.hpp"
#include "codegen/options.hpp"
#include "codegen/partition.hpp"
#include "codegen/spmd.hpp"
#include "ipa/cloning.hpp"
#include "ipa/overlap_prop.hpp"

namespace fortd {

class CompilationCache;
class ContentStore;
struct ProcOut;  // internal per-procedure result slot (codegen.cpp)

/// Everything a compiled procedure exports to its (not yet compiled)
/// callers — the concrete realization of "delayed instantiation".
struct ProcExports {
  /// Unified iteration set of the procedure (Fig. 9): Constrained when
  /// every effectful statement shares one owner-computes constraint on a
  /// formal; Universal when the procedure guards internally.
  IterationSet iter_set;
  /// Pending communication events, in the procedure's own name space.
  std::vector<CommEvent> pending_comms;
  /// Symbolic write sections per array (in formal terms) — the RSD
  /// def summaries callers use for dependence checks when hoisting.
  std::map<std::string, std::vector<SymSection>> sym_defs;
  /// Dynamic-data-decomposition summary sets (Fig. 17).
  std::set<std::string> decomp_use;
  std::set<std::string> decomp_kill;
  std::vector<std::pair<DecompSpec, std::string>> decomp_before;
  std::vector<std::pair<DecompSpec, std::string>> decomp_after;
  /// Scalars (formals/globals) the procedure may modify — a caller that
  /// guards this call must re-broadcast them.
  std::set<std::string> scalar_mods;
  /// True when the compiled body contains message statements; such a
  /// procedure must be invoked by every processor.
  bool contains_comm = false;
  /// Overlap demand observed from shift communication: array ->
  /// (lower, upper) element counts along the distributed dimension.
  std::map<std::string, std::pair<int64_t, int64_t>> shift_demand;
};

class CodeGenerator {
public:
  /// `cache`, when non-null, is consulted before generating each
  /// procedure and filled with every procedure generated. `overlaps`,
  /// when non-null, is copied instead of recomputed. `pool`, when
  /// non-null, is borrowed for parallel schedules (options.jobs > 1);
  /// otherwise generate() creates a transient pool of its own.
  CodeGenerator(const BoundProgram& program, const IpaContext& ipa,
                const CodegenOptions& options,
                CompilationCache* cache = nullptr,
                const OverlapEstimates* overlaps = nullptr,
                ThreadPool* pool = nullptr);

  /// Compile the whole program (one pass per procedure) over the ACG
  /// dependency graph — work-stealing by default, depth-leveled under
  /// Scheduler::Wavefront. Parallel schedules (options.jobs > 1)
  /// produce output byte-identical to the serial walk.
  SpmdProgram generate();

  /// Work-stealing scheduler counters of the last generate() (all zero
  /// under Scheduler::Wavefront or for an empty program).
  const TaskGraphStats& scheduler_stats() const { return sched_stats_; }

  /// Exports of an already compiled procedure (test/bench introspection).
  const ProcExports* exports_of(const std::string& proc) const;

  /// Names of the procedures that actually ran through ProcGen in the
  /// last generate() — cache hits are excluded. Reverse topological
  /// order.
  const std::vector<std::string>& generated_procedures() const {
    return last_generated_;
  }

  const BoundProgram& program() const { return program_; }
  const IpaContext& ipa() const { return ipa_; }
  const CodegenOptions& options() const { return options_; }
  const OverlapEstimates& overlaps() const { return overlaps_; }

private:
  friend class ProcGen;

  /// The two schedules. Both fill `outs` (indexed by procedure index),
  /// publish exports_, append last_generated_, and insert cache entries
  /// in the same deterministic reverse topological order.
  void schedule_wavefront(std::vector<ProcOut>& outs, ContentStore* pstore);
  void schedule_work_stealing(std::vector<ProcOut>& outs,
                              ContentStore* pstore);

  const BoundProgram& program_;
  const IpaContext& ipa_;
  CodegenOptions options_;
  OverlapEstimates overlaps_;
  CompilationCache* cache_ = nullptr;
  ThreadPool* pool_ = nullptr;  // borrowed; may be null
  /// Exports of completed procedures. Wavefront: mutated only at level
  /// barriers, workers read entries of earlier levels. Work-stealing:
  /// pre-sized with every procedure name before the run, then tasks
  /// assign mapped values in place — map structure is never mutated
  /// concurrently, and a dependency edge orders each callee's write
  /// before any caller's read.
  std::map<std::string, ProcExports> exports_;
  std::vector<std::string> last_generated_;
  TaskGraphStats sched_stats_;
  SpmdProgram result_;
};

/// Convenience wrapper: run code generation end to end.
SpmdProgram generate_spmd(const BoundProgram& program, const IpaContext& ipa,
                          const CodegenOptions& options);

}  // namespace fortd
