#include "codegen/distribution.hpp"

#include <algorithm>
#include <cassert>

#include "codegen/expr_build.hpp"

namespace fortd {

namespace build {

ExprPtr simplify(ExprPtr e) {
  if (!e) return e;
  for (auto& a : e->args) a = simplify(std::move(a));
  if (e->kind == ExprKind::Binary && e->args[0]->kind == ExprKind::IntLit &&
      e->args[1]->kind == ExprKind::IntLit) {
    int64_t l = e->args[0]->int_val, r = e->args[1]->int_val;
    switch (e->bin_op) {
      case BinOp::Add: return Expr::make_int(l + r);
      case BinOp::Sub: return Expr::make_int(l - r);
      case BinOp::Mul: return Expr::make_int(l * r);
      case BinOp::Div:
        if (r != 0) return Expr::make_int(l / r);
        break;
      default:
        break;
    }
  }
  if (e->kind == ExprKind::Binary) {
    auto is_zero = [](const Expr& x) {
      return x.kind == ExprKind::IntLit && x.int_val == 0;
    };
    auto is_one = [](const Expr& x) {
      return x.kind == ExprKind::IntLit && x.int_val == 1;
    };
    switch (e->bin_op) {
      case BinOp::Add:
        if (is_zero(*e->args[0])) return std::move(e->args[1]);
        if (is_zero(*e->args[1])) return std::move(e->args[0]);
        break;
      case BinOp::Sub:
        if (is_zero(*e->args[1])) return std::move(e->args[0]);
        break;
      case BinOp::Mul:
        if (is_one(*e->args[0])) return std::move(e->args[1]);
        if (is_one(*e->args[1])) return std::move(e->args[0]);
        if (is_zero(*e->args[0]) || is_zero(*e->args[1])) return Expr::make_int(0);
        break;
      case BinOp::Div:
        if (is_one(*e->args[1])) return std::move(e->args[0]);
        break;
      default:
        break;
    }
  }
  if (e->kind == ExprKind::FuncCall && e->args.size() == 2 &&
      e->args[0]->kind == ExprKind::IntLit && e->args[1]->kind == ExprKind::IntLit) {
    int64_t l = e->args[0]->int_val, r = e->args[1]->int_val;
    if (e->name == "min") return Expr::make_int(std::min(l, r));
    if (e->name == "max") return Expr::make_int(std::max(l, r));
    if (e->name == "modp" && r != 0) {
      int64_t m = l % r;
      return Expr::make_int(m < 0 ? m + r : m);
    }
  }
  return e;
}

}  // namespace build

// ---------------------------------------------------------------------------
// DimDistribution
// ---------------------------------------------------------------------------

DimDistribution::DimDistribution(DistSpec spec, int64_t glb, int64_t gub,
                                 int nprocs)
    : spec_(spec), glb_(glb), gub_(gub), nprocs_(nprocs) {
  assert(nprocs_ >= 1);
}

int64_t DimDistribution::block_size() const {
  int64_t n = gub_ - glb_ + 1;
  return (n + nprocs_ - 1) / nprocs_;
}

int DimDistribution::owner(int64_t i) const {
  int64_t off = i - glb_;
  switch (spec_.kind) {
    case DistKind::None:
      return 0;
    case DistKind::Block:
      return static_cast<int>(std::min<int64_t>(off / block_size(), nprocs_ - 1));
    case DistKind::Cyclic:
      return static_cast<int>(off % nprocs_);
    case DistKind::BlockCyclic:
      return static_cast<int>((off / spec_.block_size) % nprocs_);
  }
  return 0;
}

Triplet DimDistribution::local_set(int p) const {
  switch (spec_.kind) {
    case DistKind::None:
      return Triplet(glb_, gub_);
    case DistKind::Block: {
      int64_t b = block_size();
      int64_t lo = glb_ + p * b;
      int64_t hi = std::min(gub_, glb_ + (p + 1) * b - 1);
      return Triplet(lo, hi);
    }
    case DistKind::Cyclic:
      return Triplet(glb_ + p, gub_, nprocs_);
    case DistKind::BlockCyclic:
      // Not a single triplet; callers that need the exact footprint use
      // owned_list. Return the bounding triplet of the first block so the
      // caller can detect the approximation via owned_list instead.
      return Triplet(glb_ + p * spec_.block_size, gub_, 1);
  }
  return Triplet::empty_range();
}

RsdList DimDistribution::owned_list(int p) const {
  RsdList out;
  if (spec_.kind != DistKind::BlockCyclic) {
    out.add(Rsd({local_set(p)}));
    return out;
  }
  int64_t k = spec_.block_size;
  for (int64_t start = glb_ + p * k; start <= gub_; start += int64_t{nprocs_} * k) {
    out.add(Rsd({Triplet(start, std::min(gub_, start + k - 1))}));
  }
  return out;
}

int64_t DimDistribution::local_count(int p) const {
  if (spec_.kind == DistKind::BlockCyclic) {
    int64_t n = 0;
    RsdList owned = owned_list(p);  // keep alive across iteration
    for (const Rsd& r : owned.sections()) n += r.size();
    return n;
  }
  return local_set(p).count();
}

ExprPtr DimDistribution::owner_expr(ExprPtr index) const {
  using namespace build;
  ExprPtr off = simplify(sub(std::move(index), num(glb_)));
  switch (spec_.kind) {
    case DistKind::None:
      return num(0);
    case DistKind::Block:
      return simplify(fmin(div(std::move(off), num(block_size())), num(nprocs_ - 1)));
    case DistKind::Cyclic:
      return simplify(modp(std::move(off), num(nprocs_)));
    case DistKind::BlockCyclic:
      return simplify(
          modp(div(std::move(off), num(spec_.block_size)), num(nprocs_)));
  }
  return num(0);
}

ExprPtr DimDistribution::local_lb_expr() const {
  using namespace build;
  switch (spec_.kind) {
    case DistKind::None:
      return num(glb_);
    case DistKind::Block:
      return simplify(add(num(glb_), mul(myp(), num(block_size()))));
    case DistKind::Cyclic:
      return simplify(add(num(glb_), myp()));
    case DistKind::BlockCyclic:
      return simplify(add(num(glb_), mul(myp(), num(spec_.block_size))));
  }
  return num(glb_);
}

ExprPtr DimDistribution::local_ub_expr() const {
  using namespace build;
  switch (spec_.kind) {
    case DistKind::None:
    case DistKind::Cyclic:
      return num(gub_);
    case DistKind::Block:
      return simplify(fmin(
          num(gub_),
          sub(add(num(glb_), mul(add(myp(), num(1)), num(block_size()))), num(1))));
    case DistKind::BlockCyclic:
      return num(gub_);
  }
  return num(gub_);
}

// ---------------------------------------------------------------------------
// ArrayDistribution
// ---------------------------------------------------------------------------

ArrayDistribution::ArrayDistribution(std::string array, DecompSpec spec,
                                     std::vector<std::pair<int64_t, int64_t>> bounds,
                                     int nprocs)
    : array_(std::move(array)),
      spec_(std::move(spec)),
      bounds_(std::move(bounds)),
      nprocs_(nprocs) {
  if (spec_.dists.size() < bounds_.size())
    spec_.dists.resize(bounds_.size(), DistSpec{});
}

ArrayDistribution ArrayDistribution::replicated(
    std::string array, std::vector<std::pair<int64_t, int64_t>> bounds,
    int nprocs) {
  DecompSpec spec;
  spec.dists.assign(bounds.size(), DistSpec{});
  return ArrayDistribution(std::move(array), std::move(spec), std::move(bounds),
                           nprocs);
}

std::optional<ArrayDistribution> ArrayDistribution::from_symbol(
    const Symbol& sym, const DecompSpec& spec, int nprocs) {
  if (!sym.dims_const) return std::nullopt;
  return ArrayDistribution(sym.name, spec, sym.dims, nprocs);
}

bool ArrayDistribution::replicated_p() const {
  if (spec_.is_top) return false;
  return spec_.distributed_dims() == 0;
}

int ArrayDistribution::dist_dim() const {
  if (replicated_p()) return -1;
  int d = spec_.single_distributed_dim();
  return d >= 0 ? d : -2;
}

DimDistribution ArrayDistribution::dim(int d) const {
  auto [lb, ub] = bounds_[static_cast<size_t>(d)];
  return DimDistribution(spec_.dists[static_cast<size_t>(d)], lb, ub, nprocs_);
}

Rsd ArrayDistribution::local_section(int p) const {
  std::vector<Triplet> dims;
  for (int d = 0; d < rank(); ++d) dims.push_back(dim(d).local_set(p));
  return Rsd(std::move(dims));
}

int ArrayDistribution::owner_of(const std::vector<int64_t>& point) const {
  int d = dist_dim();
  if (d < 0) return 0;
  return dim(d).owner(point[static_cast<size_t>(d)]);
}

bool ArrayDistribution::owns(int p, const std::vector<int64_t>& point) const {
  if (replicated_p()) return true;
  // With multiple distributed dims, ownership requires owning along every
  // distributed dimension (linearized grid would be needed for owner ids;
  // `owns` remains well-defined).
  for (int d = 0; d < rank(); ++d) {
    if (spec_.dists[static_cast<size_t>(d)].kind == DistKind::None) continue;
    if (dim(d).owner(point[static_cast<size_t>(d)]) != p) return false;
  }
  return true;
}

int64_t ArrayDistribution::remap_bytes(const ArrayDistribution& to,
                                       int elem_size) const {
  // Count elements whose owner changes. Along the (single) distributed
  // dimensions this factorizes: iterate the dist-dim indices, multiply by
  // the product of the other extents.
  assert(rank() == to.rank());
  int64_t other = 1;
  for (int d = 0; d < rank(); ++d) {
    auto [lb, ub] = bounds_[static_cast<size_t>(d)];
    bool involved = spec_.dists[static_cast<size_t>(d)].kind != DistKind::None ||
                    to.spec_.dists[static_cast<size_t>(d)].kind != DistKind::None;
    if (!involved) other *= (ub - lb + 1);
  }
  int64_t moved = 0;
  // Iterate over the involved dims jointly (at most 2 in practice; we
  // support exactly the single-dist-dim case plus replicated).
  std::vector<int> involved_dims;
  for (int d = 0; d < rank(); ++d) {
    bool involved = spec_.dists[static_cast<size_t>(d)].kind != DistKind::None ||
                    to.spec_.dists[static_cast<size_t>(d)].kind != DistKind::None;
    if (involved) involved_dims.push_back(d);
  }
  if (involved_dims.empty()) return 0;
  // Enumerate the cross product of involved dims (sizes are modest).
  std::vector<int64_t> point(static_cast<size_t>(rank()), 0);
  std::function<void(size_t)> walk = [&](size_t k) {
    if (k == involved_dims.size()) {
      std::vector<int64_t> full(static_cast<size_t>(rank()), 0);
      for (int d = 0; d < rank(); ++d)
        full[static_cast<size_t>(d)] = point[static_cast<size_t>(d)];
      if (owner_of(full) != to.owner_of(full)) moved += other;
      return;
    }
    int d = involved_dims[k];
    auto [lb, ub] = bounds_[static_cast<size_t>(d)];
    for (int64_t i = lb; i <= ub; ++i) {
      point[static_cast<size_t>(d)] = i;
      walk(k + 1);
    }
  };
  walk(0);
  return moved * elem_size;
}

}  // namespace fortd
