// The result of Fortran D code generation: an SPMD program (one AST
// executed by every processor, with explicit message passing), per-array
// storage information, and compile-time statistics used by the paper's
// ablation benchmarks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "codegen/options.hpp"
#include "frontend/ast.hpp"
#include "ir/decomp.hpp"

namespace fortd {

/// Storage management result for one array in one procedure (§5.6).
struct ArrayStorageInfo {
  std::string array;
  DecompSpec spec;
  int dist_dim = -1;         // -1 replicated
  int64_t local_extent = 0;  // max owned elements along the distributed dim
  int64_t other_extent = 1;  // product of non-distributed extents
  int64_t overlap_lo = 0;    // actual overlap demand used (elements)
  int64_t overlap_hi = 0;
  int64_t est_lo = 0;  // interprocedural estimate (Fig. 13)
  int64_t est_hi = 0;
  bool used_buffer = false;      // actual exceeded estimate
  bool parameterized = false;    // Fig. 14 parameterized overlap emitted

  /// Per-processor words this array occupies under overlaps.
  int64_t local_words() const {
    return (local_extent + overlap_lo + overlap_hi) * other_extent;
  }
};

/// Compile-time counters reported by the ablation benchmarks.
struct CompileStats {
  int clones_created = 0;
  int vectorized_messages = 0;    // messages hoisted above >= 1 loop
  int delayed_comms_exported = 0; // pending comms passed to callers
  int delayed_comms_absorbed = 0; // pending comms instantiated in a caller
  int delayed_iter_sets_exported = 0;
  int loops_bounds_reduced = 0;
  int guards_inserted = 0;
  int scalar_broadcasts = 0;
  int runtime_resolved_stmts = 0;
  int remaps_inserted = 0;
  int remaps_eliminated_dead = 0;
  int remaps_coalesced = 0;
  int remaps_hoisted = 0;
  int remaps_marked_in_place = 0;  // array-kill optimization
  int buffers_used = 0;
};

/// A compiled SPMD program, ready for the machine simulator or the
/// pretty-printer.
struct SpmdProgram {
  SourceProgram ast;
  CodegenOptions options;
  /// Per procedure, per array: storage layout decisions.
  std::map<std::string, std::vector<ArrayStorageInfo>> storage;
  CompileStats stats;

  const Procedure* main() const {
    for (const auto& p : ast.procedures)
      if (p->is_program) return p.get();
    return nullptr;
  }
  /// Total per-processor data words across the main program's arrays.
  int64_t main_local_words() const;
};

}  // namespace fortd
