// Pretty-printer: unparses source-level and SPMD-level ASTs to the
// Fortran-like concrete syntax used throughout the paper's figures
// (guarded `send`/`recv`, reduced loop bounds with min/max over my$p,
// remap calls). Used by golden tests, examples, and debugging.
#pragma once

#include <string>

#include "codegen/spmd.hpp"
#include "frontend/ast.hpp"

namespace fortd {

std::string print_expr(const Expr& e);
std::string print_stmt(const Stmt& s, int indent = 0);
std::string print_procedure(const Procedure& proc);
std::string print_program(const SourceProgram& prog);

/// Full SPMD program including storage annotations per procedure.
std::string print_spmd(const SpmdProgram& spmd);

}  // namespace fortd
