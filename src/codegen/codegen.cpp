#include "codegen/codegen.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "codegen/dyndecomp.hpp"
#include "codegen/expr_build.hpp"
#include "codegen/runtime_resolution.hpp"
#include "codegen/storage.hpp"
#include "driver/compilation_cache.hpp"
#include "driver/compilation_db.hpp"
#include "support/thread_pool.hpp"

namespace fortd {

namespace {

/// Stamp `loc` onto every generated statement (recursively) that has no
/// source position of its own, so SPMD-level diagnostics — verifier and
/// deadlock findings — report the originating source line. Statements that
/// already carry a location (e.g. cloned user statements) keep it.
void stamp_locs(std::vector<StmtPtr>& stmts, SourceLoc loc) {
  if (!loc.valid()) return;
  walk_stmts(stmts, [&](Stmt& s) {
    if (!s.loc.valid()) s.loc = loc;
  });
}

void stamp_loc(Stmt& s, SourceLoc loc) {
  if (loc.valid() && !s.loc.valid()) s.loc = loc;
}

/// Analysis result for one effectful statement.
struct StmtPlan {
  IterationSet iset;
  std::vector<CommEvent> events;
  bool runtime = false;
  /// Scalars assigned under an owner guard that must be broadcast because
  /// they are live outside the guarded region.
  std::vector<std::string> bcast_scalars;
  /// Scalars assigned under the guard (for liveness bookkeeping).
  std::vector<std::string> owned_scalars;
  /// Non-empty when this statement is a recognized sum reduction over the
  /// distributed dimension: each processor accumulates a partial into a
  /// temporary, combined by an AllReduce after the reduced loop.
  std::string reduction_scalar;
};

enum class LoopDecision { None, Reduce, GuardWhole };

struct LoopPlan {
  LoopDecision decision = LoopDecision::None;
  OwnershipConstraint constraint;
  std::vector<std::string> bcast_scalars;  // after a GuardWhole loop
  std::vector<std::string> reductions;     // scalars AllReduce'd after Reduce
};

struct FloatingEvent {
  CommEvent ev;
  int origin_seq = 0;
};

struct WriteRec {
  std::string array;
  SymSection sec;
  int seq = 0;
};

struct GenOut {
  std::vector<StmtPtr> stmts;
  std::vector<int> seqs;  // creation sequence of each top-level statement
  std::vector<FloatingEvent> floats;
  std::vector<WriteRec> writes;

  void emit(StmtPtr s, int seq) {
    stmts.push_back(std::move(s));
    seqs.push_back(seq);
  }
};

}  // namespace

// ===========================================================================
// ProcGen: compiles one procedure.
// ===========================================================================

class ProcGen {
public:
  ProcGen(const CodeGenerator& cg, const Procedure& proc)
      : cg_(cg),
        proc_(proc),
        st_(cg.program_.symtab(proc.name)),
        env_(SymbolicEnv::from_params(proc, st_)),
        nprocs_(cg.options_.n_procs) {}

  std::unique_ptr<Procedure> run(ProcExports& exports);

  /// This procedure's contribution to the program-wide counters. ProcGen
  /// deliberately never writes shared CodeGenerator state: instances for
  /// one wavefront level run concurrently.
  const CompileStats& stats() const { return stats_; }

private:
  // ---- shared helpers ----------------------------------------------------
  std::optional<DecompSpec> spec_at(const Stmt* stmt,
                                    const std::string& var) const {
    auto specs = cg_.ipa_.reaching.specs_at(proc_.name, stmt, var);
    std::optional<DecompSpec> found;
    for (const auto& s : specs) {
      if (s.is_top) continue;
      if (found && !(*found == s)) return std::nullopt;  // conflicting
      found = s;
    }
    return found;
  }

  std::optional<ArrayDistribution> dist_at(const Stmt* stmt,
                                           const std::string& var) const {
    const Symbol* sym = st_.lookup(var);
    if (!sym || !sym->is_array() || !sym->dims_const) return std::nullopt;
    auto spec = spec_at(stmt, var);
    if (!spec) return std::nullopt;
    return ArrayDistribution(var, *spec, sym->dims, nprocs_);
  }

  bool is_distributed_at(const Stmt* stmt, const std::string& var) const {
    auto d = dist_at(stmt, var);
    return d && !d->replicated_p();
  }

  /// Conservative: the variable may be distributed here (any reaching
  /// spec — including conflicting sets and the inherited top — counts).
  bool may_be_distributed(const Stmt* stmt, const std::string& var) const {
    for (const auto& spec : cg_.ipa_.reaching.specs_at(proc_.name, stmt, var))
      if (spec.is_top || spec.distributed_dims() > 0) return true;
    return false;
  }

  bool forced_runtime() const {
    return cg_.options_.strategy == Strategy::RuntimeResolution ||
           cg_.ipa_.runtime_fallback.count(proc_.name) > 0;
  }

  // ---- pre-pass ------------------------------------------------------------
  void analyze();
  void analyze_list(const std::vector<StmtPtr>& stmts);
  StmtPlan plan_assign(const Stmt& s);
  std::optional<StmtPlan> plan_owner_region(const Stmt& s);
  StmtPlan plan_call(const Stmt& s);
  void decide_loop(const Stmt& loop);
  void refine_scalar_bcasts();
  std::optional<AffineForm> translate_form(const AffineForm& f,
                                           const Procedure& callee,
                                           const CallSiteInfo& site) const;
  bool event_would_export(const CommEvent& ev) const;
  void decide_export();

  // ---- generation ----------------------------------------------------------
  GenOut gen_block(const std::vector<StmtPtr>& in, LoopCtx& lctx);
  void gen_assign(const Stmt& s, GenOut& out, LoopCtx& lctx);
  void gen_call(const Stmt& s, GenOut& out, LoopCtx& lctx);
  void gen_do(const Stmt& s, GenOut& out, LoopCtx& lctx);
  void gen_if(const Stmt& s, GenOut& out, LoopCtx& lctx);
  void gen_distribute(const Stmt& s, GenOut& out, LoopCtx& lctx);
  void float_events(const StmtPlan& plan, GenOut& out);
  void settle_floats_at_loop(const Stmt& loop, GenOut& body, LoopCtx& lctx,
                             GenOut& out);
  void hoist_writes_over_loop(const Stmt& loop, GenOut& body, LoopCtx& lctx,
                              GenOut& out);
  std::vector<StmtPtr> instantiate_event(const CommEvent& ev);
  ExprPtr owner_cond(const OwnershipConstraint& c) const;
  StmtPtr guarded(const OwnershipConstraint& c, std::vector<StmtPtr> body);
  void emit_scalar_bcasts(const OwnershipConstraint& c,
                          const std::vector<std::string>& scalars,
                          GenOut& out, SourceLoc loc = {});
  void insert_blocked(GenOut& block, const FloatingEvent& f,
                      const LoopCtx& lctx);
  void emit_runtime(const Stmt& s, const Stmt* ctx_stmt, GenOut& out);
  bool constraint_consumed(const OwnershipConstraint& c) const;
  StmtPtr reduce_loop_bounds(const Stmt& loop, const OwnershipConstraint& c,
                             std::vector<StmtPtr> body, LoopCtx& lctx);
  DimDistribution constraint_dim(const OwnershipConstraint& c) const;

  const CodeGenerator& cg_;
  const Procedure& proc_;
  const SymbolTable& st_;
  SymbolicEnv env_;
  int nprocs_;
  CompileStats stats_;

  std::map<const Stmt*, StmtPlan> plans_;
  std::map<const Stmt*, LoopPlan> loop_plans_;
  std::map<const Stmt*, std::vector<const Stmt*>> loop_stack_of_;
  std::vector<const Stmt*> cur_loops_;  // during analyze
  std::optional<OwnershipConstraint> export_constraint_;
  bool local_comm_expected_ = false;
  std::vector<OwnershipConstraint> active_reductions_;
  std::map<const Stmt*, std::vector<StmtPtr>> local_remaps_;
  std::set<std::string> reduction_temps_;
  std::map<std::string, std::pair<int64_t, int64_t>> shift_demand_;
  int seq_ = 0;
  bool emitted_comm_ = false;
};

// ---------------------------------------------------------------------------
// Pre-pass
// ---------------------------------------------------------------------------

std::optional<AffineForm> ProcGen::translate_form(
    const AffineForm& f, const Procedure& callee,
    const CallSiteInfo& site) const {
  AffineForm out;
  out.konst = f.konst;
  for (const auto& [v, c] : f.coeffs) {
    if (c == 0) continue;
    int fi = callee.formal_index(v);
    if (fi < 0) {
      out.coeffs[v] += c;
      continue;
    }
    if (fi >= static_cast<int>(site.actuals.size())) return std::nullopt;
    auto actual = extract_affine(*site.actuals[static_cast<size_t>(fi)],
                                 env_.consts);
    if (!actual) return std::nullopt;
    out = out + actual->scaled(c);
  }
  // Normalize zero coefficients away.
  for (auto it = out.coeffs.begin(); it != out.coeffs.end();)
    it = it->second == 0 ? out.coeffs.erase(it) : std::next(it);
  return out;
}

StmtPlan ProcGen::plan_assign(const Stmt& s) {
  StmtPlan plan;
  auto lhs_dist = s.lhs->kind == ExprKind::ArrayRef
                      ? dist_at(&s, s.lhs->name)
                      : std::nullopt;
  // A reference to an array with conflicting reaching decompositions (no
  // unique spec but distributed somewhere) falls back to run-time
  // resolution.
  if (s.lhs->kind == ExprKind::ArrayRef && !lhs_dist) {
    const Symbol* sym = st_.lookup(s.lhs->name);
    if (sym && sym->is_array() &&
        cg_.ipa_.reaching.specs_at(proc_.name, &s, s.lhs->name).size() > 1) {
      plan.runtime = true;
      return plan;
    }
  }
  plan.iset = owner_computes(*s.lhs, lhs_dist, env_);
  if (plan.iset.kind == IterationSet::Kind::RuntimeOnly) {
    plan.runtime = true;
    return plan;
  }

  // Owner-computed scalar pattern, tried first: a scalar assignment whose
  // distributed reads all carry the same distributed-dimension subscript
  // executes on that owner with purely local data (pivot-search
  // accumulations and the like). Whether the scalar then needs a broadcast
  // is decided by refine_scalar_bcasts once all plans exist.
  if (s.lhs->kind == ExprKind::VarRef && plan.iset.is_universal()) {
    std::optional<AffineForm> root;
    std::string root_array;
    int root_dim = -1;
    bool pattern = true;
    int dist_refs = 0;
    walk_expr(*s.rhs, [&](const Expr& e) {
      if (!pattern || e.kind != ExprKind::ArrayRef) return;
      auto rd = dist_at(&s, e.name);
      if (!rd || rd->replicated_p()) return;
      ++dist_refs;
      int dd = rd->dist_dim();
      if (dd < 0 || dd >= static_cast<int>(e.args.size())) {
        pattern = false;
        return;
      }
      auto f = extract_affine(*e.args[static_cast<size_t>(dd)], env_.consts);
      if (!f) {
        pattern = false;
        return;
      }
      if (!root) {
        root = *f;
        root_array = e.name;
        root_dim = dd;
      } else if (root->str() != f->str()) {
        pattern = false;
      }
    });
    if (pattern && dist_refs > 0 && root) {
      OwnershipConstraint c;
      c.array = root_array;
      c.dim = root_dim;
      auto vars = root->vars();
      if (vars.size() == 1 && root->coeff(vars[0]) == 1) {
        c.var = vars[0];
        c.offset = root->konst;
      } else {
        c.fixed = *root;
      }
      // Does the owner vary with an enclosing loop? Then no single
      // processor owns the whole computation; try the reduction pattern
      // (s = s + g): partial sums per processor plus an AllReduce.
      bool owner_varies = false;
      for (const Stmt* loop : cur_loops_)
        if (root->coeff(loop->loop_var) != 0) owner_varies = true;
      if (owner_varies) {
        if (c.uses_var() && s.rhs->kind == ExprKind::Binary &&
            s.rhs->bin_op == BinOp::Add) {
          const Expr* acc = nullptr;
          const Expr* g = nullptr;
          if (s.rhs->args[0]->kind == ExprKind::VarRef &&
              s.rhs->args[0]->name == s.lhs->name) {
            acc = s.rhs->args[0].get();
            g = s.rhs->args[1].get();
          } else if (s.rhs->args[1]->kind == ExprKind::VarRef &&
                     s.rhs->args[1]->name == s.lhs->name) {
            acc = s.rhs->args[1].get();
            g = s.rhs->args[0].get();
          }
          bool g_uses_s = false;
          if (g)
            walk_expr(*g, [&](const Expr& e) {
              if (e.kind == ExprKind::VarRef && e.name == s.lhs->name)
                g_uses_s = true;
            });
          if (acc && g && !g_uses_s) {
            plan.iset = IterationSet::constrained(std::move(c));
            plan.reduction_scalar = s.lhs->name;
            return plan;
          }
        }
        // Owner varies but the statement is not a reduction: run-time
        // resolution is the safe fallback.
        plan.runtime = true;
        return plan;
      }
      plan.iset = IterationSet::constrained(std::move(c));
      plan.owned_scalars.push_back(s.lhs->name);
      return plan;
    }
  }

  // Classify every distributed rhs reference.
  bool needs_runtime = false;
  bool all_bcast_same_root = true;
  std::optional<AffineForm> common_root;
  std::string root_array;
  int root_dim = -1;
  int dist_ref_count = 0;
  walk_expr(*s.rhs, [&](const Expr& e) {
    if (needs_runtime || e.kind != ExprKind::ArrayRef) return;
    auto rd = dist_at(&s, e.name);
    if (!rd) {
      const Symbol* sym = st_.lookup(e.name);
      if (sym && sym->is_array() &&
          cg_.ipa_.reaching.specs_at(proc_.name, &s, e.name).size() > 1)
        needs_runtime = true;
      return;
    }
    if (rd->replicated_p()) return;
    ++dist_ref_count;
    bool rt = false;
    auto ev = classify_reference(e, *rd, plan.iset, lhs_dist, env_, &rt);
    if (rt) {
      needs_runtime = true;
      return;
    }
    if (ev) {
      if (ev->kind == CommEvent::Kind::Shift) {
        // A negative displacement against the owner-computes subscript of
        // the same array is a flow dependence carried by the partitioned
        // loop (upwind stencil): element messages must interleave with
        // computation — run-time resolution stands in for pipelining.
        if (ev->array == plan.iset.constraint.array && ev->shift < 0) {
          needs_runtime = true;
          return;
        }
        all_bcast_same_root = false;
      } else if (ev->kind == CommEvent::Kind::Bcast) {
        if (!common_root) {
          common_root = ev->root_index;
          root_array = ev->array;
          root_dim = ev->dist_dim;
        } else if (common_root->str() != ev->root_index.str()) {
          all_bcast_same_root = false;
        }
      }
      plan.events.push_back(std::move(*ev));
    }
  });
  if (needs_runtime) {
    plan.runtime = true;
    plan.events.clear();
    return plan;
  }

  (void)all_bcast_same_root;
  (void)common_root;
  (void)root_array;
  (void)root_dim;
  (void)dist_ref_count;
  return plan;
}

std::optional<StmtPlan> ProcGen::plan_owner_region(const Stmt& s) {
  // IF statement whose condition reads distributed data: when every
  // distributed read in the whole region shares one owner and every lhs in
  // the region is scalar, the region executes on the owner (guard), with
  // assigned scalars broadcast if live outside.
  std::vector<const Expr*> dist_refs;
  bool only_scalar_writes = true;
  std::function<void(const Stmt&)> scan = [&](const Stmt& stmt) {
    for_each_expr(stmt, [&](const Expr& e) {
      if (e.kind == ExprKind::ArrayRef && is_distributed_at(&s, e.name))
        dist_refs.push_back(&e);
    });
    if (stmt.kind == StmtKind::Assign && stmt.lhs->kind == ExprKind::ArrayRef)
      only_scalar_writes = false;
    if (stmt.kind == StmtKind::Call || stmt.kind == StmtKind::Do)
      only_scalar_writes = false;  // keep the pattern small and sound
    for (const auto& b : stmt.then_body) scan(*b);
    for (const auto& b : stmt.else_body) scan(*b);
  };
  scan(s);
  if (dist_refs.empty() || !only_scalar_writes) return std::nullopt;

  std::optional<AffineForm> root;
  std::string root_array;
  int root_dim = -1;
  for (const Expr* r : dist_refs) {
    auto rd = dist_at(&s, r->name);
    if (!rd || rd->replicated_p()) continue;
    int e = rd->dist_dim();
    if (e < 0 || e >= static_cast<int>(r->args.size())) return std::nullopt;
    auto f = extract_affine(*r->args[static_cast<size_t>(e)], env_.consts);
    if (!f) return std::nullopt;
    if (!root) {
      root = *f;
      root_array = r->name;
      root_dim = e;
    } else if (root->str() != f->str()) {
      return std::nullopt;
    }
  }
  if (!root) return std::nullopt;

  StmtPlan plan;
  OwnershipConstraint c;
  c.array = root_array;
  c.dim = root_dim;
  auto vars = root->vars();
  if (vars.size() == 1 && root->coeff(vars[0]) == 1) {
    c.var = vars[0];
    c.offset = root->konst;
  } else {
    c.fixed = *root;
  }
  plan.iset = IterationSet::constrained(std::move(c));
  // Scalars assigned in the region.
  std::function<void(const Stmt&)> collect = [&](const Stmt& stmt) {
    if (stmt.kind == StmtKind::Assign && stmt.lhs->kind == ExprKind::VarRef)
      plan.owned_scalars.push_back(stmt.lhs->name);
    for (const auto& b : stmt.then_body) collect(*b);
    for (const auto& b : stmt.else_body) collect(*b);
  };
  collect(s);
  return plan;
}

void ProcGen::refine_scalar_bcasts() {
  // A scalar computed under an owner constraint needs a broadcast only
  // when some consumer is not covered by the same constraint: a formal /
  // global (escapes the procedure), a read inside a statement with a
  // different (or no) ownership plan, or a read in plain control
  // structure (loop bounds, unguarded IF conditions) that every processor
  // evaluates.
  //
  // First, index every statement by the plan that owns it (an IF owner
  // region owns its whole subtree).
  std::map<const Stmt*, const Stmt*> owner_of;
  std::function<void(const std::vector<StmtPtr>&, const Stmt*)> index =
      [&](const std::vector<StmtPtr>& stmts, const Stmt* owner) {
        for (const auto& s : stmts) {
          const Stmt* here = plans_.count(s.get()) ? s.get() : owner;
          owner_of[s.get()] = here;
          index(s->then_body, here);
          index(s->else_body, here);
          index(s->body, here);
        }
      };
  index(proc_.body, nullptr);

  for (auto& [def_stmt, plan] : plans_) {
    if (plan.owned_scalars.empty() || !plan.iset.is_constrained()) continue;
    if (!plan.reduction_scalar.empty()) continue;  // AllReduce handles it
    const OwnershipConstraint& c = plan.iset.constraint;
    for (const std::string& scalar : plan.owned_scalars) {
      bool need = false;
      const Symbol* sym = st_.lookup(scalar);
      if (sym && (sym->formal_index >= 0 || sym->is_global())) need = true;
      if (!need) {
        walk_stmts(proc_.body, [&](const Stmt& s) {
          if (need) return;
          bool reads = false;
          // Reads: every expression except an assignment's own lhs base.
          auto check = [&](const ExprPtr& e) {
            if (e) walk_expr(*e, [&](const Expr& x) {
              if (x.kind == ExprKind::VarRef && x.name == scalar) reads = true;
            });
          };
          check(s.rhs);
          check(s.cond);
          check(s.lb);
          check(s.ub);
          check(s.step);
          if (s.lhs && s.lhs->kind == ExprKind::ArrayRef)
            for (const auto& sub : s.lhs->args) check(const_cast<ExprPtr&>(sub));
          for (const auto& a : s.call_args) check(const_cast<ExprPtr&>(a));
          if (!reads) return;
          auto oit = owner_of.find(&s);
          const Stmt* owner = oit == owner_of.end() ? nullptr : oit->second;
          if (!owner) {
            need = true;
            return;
          }
          const StmtPlan& op = plans_.at(owner);
          if (!op.iset.is_constrained() || !(op.iset.constraint == c))
            need = true;
        });
      }
      if (need) plan.bcast_scalars.push_back(scalar);
    }
  }
}

StmtPlan ProcGen::plan_call(const Stmt& s) {
  StmtPlan plan;  // default universal
  const CallSiteInfo* site = cg_.ipa_.acg.site_for(&s);
  if (!site) return plan;  // intrinsic call
  auto it = cg_.exports_.find(s.callee);
  if (it == cg_.exports_.end()) return plan;
  const ProcExports& ex = it->second;
  const Procedure* callee = cg_.program_.find(s.callee);
  if (!callee) return plan;

  if (ex.iter_set.is_constrained()) {
    const OwnershipConstraint& c = ex.iter_set.constraint;
    OwnershipConstraint t;
    t.dim = c.dim;
    t.offset = c.offset;
    // Translate the constraining array name.
    int ai = callee->formal_index(c.array);
    if (ai >= 0) {
      if (ai < static_cast<int>(site->actuals.size()) &&
          site->actuals[static_cast<size_t>(ai)]->kind == ExprKind::VarRef)
        t.array = site->actuals[static_cast<size_t>(ai)]->name;
    } else {
      t.array = c.array;  // global
    }
    // Translate the constraint variable / fixed form.
    bool ok = !t.array.empty();
    if (ok && c.uses_var()) {
      AffineForm vf;
      vf.coeffs[c.var] = 1;
      auto tf = translate_form(vf, *callee, *site);
      if (!tf) {
        ok = false;
      } else {
        auto vars = tf->vars();
        if (vars.size() == 1 && tf->coeff(vars[0]) == 1) {
          t.var = vars[0];
          t.offset = c.offset + tf->konst;
        } else {
          t.fixed = *tf + AffineForm{{}, c.offset};
        }
      }
    } else if (ok) {
      auto tf = translate_form(c.fixed, *callee, *site);
      if (!tf)
        ok = false;
      else
        t.fixed = *tf;
    }
    if (ok) plan.iset = IterationSet::constrained(std::move(t));
    // When translation fails the call stays universal — the callee still
    // guards nothing, so fall back to run-time resolution safety: mark
    // runtime (conservative, should not happen for supported programs).
    if (!ok) plan.runtime = true;
  }
  return plan;
}

void ProcGen::analyze_list(const std::vector<StmtPtr>& stmts) {
  for (const auto& s : stmts) {
    loop_stack_of_[s.get()] = cur_loops_;
    switch (s->kind) {
      case StmtKind::Assign: {
        StmtPlan plan = forced_runtime() ? StmtPlan{} : plan_assign(*s);
        if (forced_runtime()) {
          bool touches_dist = false;
          for_each_expr(*s, [&](const Expr& e) {
            if (e.kind == ExprKind::ArrayRef && may_be_distributed(s.get(), e.name))
              touches_dist = true;
          });
          plan.runtime = touches_dist;
        }
        plans_[s.get()] = std::move(plan);
        break;
      }
      case StmtKind::Call:
        plans_[s.get()] = plan_call(*s);
        break;
      case StmtKind::If: {
        std::optional<StmtPlan> region =
            forced_runtime() ? std::nullopt : plan_owner_region(*s);
        if (region) {
          plans_[s.get()] = std::move(*region);
        } else {
          analyze_list(s->then_body);
          analyze_list(s->else_body);
        }
        break;
      }
      case StmtKind::Do: {
        cur_loops_.push_back(s.get());
        // Track the loop range for symbolic section evaluation.
        auto lb = eval_int(*s->lb, env_);
        auto ub = eval_int(*s->ub, env_);
        auto stp = s->step ? eval_int(*s->step, env_) : std::optional<int64_t>(1);
        bool pushed = false;
        if (lb && ub && stp && *stp > 0) {
          env_.ranges[s->loop_var] = Triplet(*lb, *ub, *stp);
          pushed = true;
        }
        analyze_list(s->body);
        if (pushed) env_.ranges.erase(s->loop_var);
        cur_loops_.pop_back();
        break;
      }
      default:
        break;
    }
  }
}

void ProcGen::decide_loop(const Stmt& loop) {
  LoopPlan lp;
  std::optional<OwnershipConstraint> unified;
  bool reducible = true;
  bool bcast_blocks_reduce = false;
  std::vector<std::string> bcast_scalars;
  std::vector<std::string> reductions;

  std::function<void(const std::vector<StmtPtr>&)> scan =
      [&](const std::vector<StmtPtr>& stmts) {
        for (const auto& s : stmts) {
          auto it = plans_.find(s.get());
          if (it != plans_.end()) {
            const StmtPlan& p = it->second;
            if (p.runtime) {
              reducible = false;
              continue;
            }
            if (p.iset.is_universal()) {
              // Universal statements (replicated scalar bookkeeping or
              // whole-machine calls) force full execution of the loop.
              reducible = false;
              continue;
            }
            if (!p.bcast_scalars.empty()) {
              // Bounds reduction would separate the defining guard from
              // its broadcast; a whole-loop guard keeps both legal (only
              // the owner executes the body, and the broadcast moves
              // after the loop).
              bcast_blocks_reduce = true;
            }
            if (!p.reduction_scalar.empty() &&
                std::find(reductions.begin(), reductions.end(),
                          p.reduction_scalar) == reductions.end())
              reductions.push_back(p.reduction_scalar);
            if (!unified)
              unified = p.iset.constraint;
            else if (!(*unified == p.iset.constraint))
              reducible = false;
            for (const auto& sc : p.bcast_scalars) bcast_scalars.push_back(sc);
            continue;
          }
          if (s->kind == StmtKind::Distribute) reducible = false;
          scan(s->then_body);
          scan(s->else_body);
          scan(s->body);
        }
      };
  scan(loop.body);

  if (reducible && unified) {
    // Is the constraint invariant of this loop (neither its variable nor
    // any variable of its fixed form is the loop variable, and the
    // variable is not assigned in the body)?
    auto invariant_here = [&] {
      if (unified->uses_var()) {
        if (unified->var == loop.loop_var) return false;
        bool assigned = false;
        walk_stmts(loop.body, [&](const Stmt& t) {
          if (t.kind == StmtKind::Assign && t.lhs->kind == ExprKind::VarRef &&
              t.lhs->name == unified->var)
            assigned = true;
          if (t.kind == StmtKind::Do && t.loop_var == unified->var)
            assigned = true;
        });
        return !assigned;
      }
      return unified->fixed.coeff(loop.loop_var) == 0;
    };
    if (unified->uses_var() && unified->var == loop.loop_var) {
      if (!bcast_blocks_reduce) {
        lp.decision = LoopDecision::Reduce;
        lp.constraint = *unified;
        lp.reductions = reductions;
      }
    } else if (invariant_here()) {
      // One guard around the whole loop instead of one per iteration.
      lp.decision = LoopDecision::GuardWhole;
      lp.constraint = *unified;
      lp.bcast_scalars = bcast_scalars;
    }
  }
  loop_plans_[&loop] = std::move(lp);
}

bool ProcGen::event_would_export(const CommEvent& ev) const {
  if (cg_.options_.strategy != Strategy::Interprocedural) return false;
  if (proc_.is_program) return false;
  if (ev.kind == CommEvent::Kind::ScalarBcast) return false;
  // Variables remaining after widening over all local loops.
  std::vector<std::string> vars = sym_section_vars(ev.section);
  for (const auto& v : ev.root_index.vars()) vars.push_back(v);
  // Fixpoint: local loop vars resolve to their bound variables.
  for (int iter = 0; iter < 8; ++iter) {
    bool changed = false;
    std::vector<std::string> next;
    for (const auto& v : vars) {
      const Stmt* loop = nullptr;
      walk_stmts(proc_.body, [&](const Stmt& s) {
        if (s.kind == StmtKind::Do && s.loop_var == v) loop = &s;
      });
      if (!loop) {
        next.push_back(v);
        continue;
      }
      changed = true;
      for (const Expr* b : {loop->lb.get(), loop->ub.get()}) {
        auto f = extract_affine(*b, env_.consts);
        if (f)
          for (const auto& bv : f->vars()) next.push_back(bv);
      }
    }
    vars = std::move(next);
    if (!changed) break;
  }
  for (const auto& v : vars)
    if (proc_.is_formal(v)) return true;
  return false;
}

void ProcGen::decide_export() {
  // Candidate: a single constraint shared by all effectful statements, on
  // a formal variable, with no locally instantiated communication.
  if (cg_.options_.strategy != Strategy::Interprocedural || proc_.is_program)
    return;
  std::optional<OwnershipConstraint> unified;
  for (const auto& [stmt, plan] : plans_) {
    if (plan.runtime) return;  // runtime statements contain comm
    if (!plan.reduction_scalar.empty()) return;  // AllReduce is local comm
    if (!plan.bcast_scalars.empty()) local_comm_expected_ = true;
    for (const auto& ev : plan.events)
      if (!event_would_export(ev)) local_comm_expected_ = true;
    if (plan.iset.is_universal()) {
      // Scalar bookkeeping is harmless under a caller-side guard only when
      // the scalar cannot escape the procedure.
      bool harmless = stmt->kind == StmtKind::Assign &&
                      stmt->lhs->kind == ExprKind::VarRef && plan.events.empty();
      if (harmless) {
        const Symbol* sym = st_.lookup(stmt->lhs->name);
        if (sym && (sym->formal_index >= 0 || sym->is_global()))
          harmless = false;
      }
      if (!harmless) return;
      continue;
    }
    if (!unified)
      unified = plan.iset.constraint;
    else if (!(*unified == plan.iset.constraint))
      return;
  }
  if (!unified || local_comm_expected_) return;
  // The constraint must be expressible by the caller: variable and array
  // must be formals or globals.
  const Symbol* arr = st_.lookup(unified->array);
  if (!arr || (arr->formal_index < 0 && !arr->is_global())) return;
  if (unified->uses_var()) {
    // A local loop variable will be consumed by bounds reduction here.
    bool is_local_loop = false;
    walk_stmts(proc_.body, [&](const Stmt& s) {
      if (s.kind == StmtKind::Do && s.loop_var == unified->var)
        is_local_loop = true;
    });
    if (is_local_loop) return;
    const Symbol* v = st_.lookup(unified->var);
    if (!v || (v->formal_index < 0 && !v->is_global())) return;
  } else {
    for (const auto& v : unified->fixed.vars()) {
      const Symbol* sym = st_.lookup(v);
      if (!sym || (sym->formal_index < 0 && !sym->is_global())) return;
    }
  }
  export_constraint_ = unified;
}

void ProcGen::analyze() {
  analyze_list(proc_.body);
  refine_scalar_bcasts();
  walk_stmts(proc_.body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Do) decide_loop(s);
  });
  decide_export();
}

// ---------------------------------------------------------------------------
// Generation helpers
// ---------------------------------------------------------------------------

DimDistribution ProcGen::constraint_dim(const OwnershipConstraint& c) const {
  const Symbol* sym = st_.lookup(c.array);
  assert(sym && sym->is_array());
  auto spec = spec_at(nullptr, c.array);
  // spec_at(nullptr) misses; derive from any statement: use unique spec.
  auto uniq = cg_.ipa_.reaching.unique_spec(proc_.name, c.array);
  DecompSpec s = uniq ? *uniq : DecompSpec{};
  if (spec) s = *spec;
  ArrayDistribution ad(c.array, s, sym->dims, nprocs_);
  return ad.dim(c.dim);
}

ExprPtr ProcGen::owner_cond(const OwnershipConstraint& c) const {
  using namespace build;
  AffineForm idx = c.fixed;
  if (c.uses_var()) {
    idx = AffineForm{};
    idx.coeffs[c.var] = 1;
    idx.konst = c.offset;
  }
  DimDistribution dd = constraint_dim(c);
  return cmp(BinOp::Eq, myp(), dd.owner_expr(form_to_expr(idx)));
}

StmtPtr ProcGen::guarded(const OwnershipConstraint& c,
                         std::vector<StmtPtr> body) {
  ++stats_.guards_inserted;
  return Stmt::make_if(owner_cond(c), std::move(body));
}

void ProcGen::emit_scalar_bcasts(const OwnershipConstraint& c,
                                 const std::vector<std::string>& scalars,
                                 GenOut& out, SourceLoc loc) {
  AffineForm idx = c.fixed;
  if (c.uses_var()) {
    idx = AffineForm{};
    idx.coeffs[c.var] = 1;
    idx.konst = c.offset;
  }
  DimDistribution dd = constraint_dim(c);
  for (const auto& s : scalars) {
    StmtPtr b = Stmt::make_broadcast(s, {}, dd.owner_expr(form_to_expr(idx)));
    stamp_loc(*b, loc);
    out.emit(std::move(b), seq_);
    ++stats_.scalar_broadcasts;
    emitted_comm_ = true;
  }
}

bool ProcGen::constraint_consumed(const OwnershipConstraint& c) const {
  if (export_constraint_ && *export_constraint_ == c) return true;
  for (const auto& r : active_reductions_)
    if (r == c) return true;
  return false;
}

StmtPtr ProcGen::reduce_loop_bounds(const Stmt& loop,
                                    const OwnershipConstraint& c,
                                    std::vector<StmtPtr> body, LoopCtx& lctx) {
  using namespace build;
  ++stats_.loops_bounds_reduced;
  DimDistribution dd = constraint_dim(c);
  ExprPtr lb = loop.lb->clone();
  ExprPtr ub = loop.ub->clone();
  ExprPtr step = loop.step ? loop.step->clone() : nullptr;
  switch (dd.kind()) {
    case DistKind::Block: {
      // v in [local_lb - offset, local_ub - offset] ∩ [lb, ub].
      lb = simplify(fmax(std::move(lb), sub(dd.local_lb_expr(), num(c.offset))));
      ub = simplify(fmin(std::move(ub), sub(dd.local_ub_expr(), num(c.offset))));
      break;
    }
    case DistKind::Cyclic: {
      // First v >= lb with owner(v + offset) == my$p, stride P.
      // owner(i) = (i - glb) mod P; v + offset = glb + my$p (mod P).
      ExprPtr first = simplify(add(
          lb->clone(),
          modp(sub(add(myp(), num(dd.glb() - c.offset)), lb->clone()),
               num(nprocs_))));
      lb = std::move(first);
      step = num(nprocs_);
      break;
    }
    default:
      // BLOCK_CYCLIC loops are not reduced (callers fall back earlier).
      break;
  }
  (void)lctx;
  return Stmt::make_do(loop.loop_var, std::move(lb), std::move(ub),
                       std::move(step), std::move(body));
}

std::vector<StmtPtr> ProcGen::instantiate_event(const CommEvent& ev) {
  using namespace build;
  std::vector<StmtPtr> out;
  emitted_comm_ = true;
  if (ev.hoisted_loops > 0) ++stats_.vectorized_messages;

  if (ev.kind == CommEvent::Kind::ScalarBcast) {
    // Handled by emit_scalar_bcasts; not expected here.
    return out;
  }

  const Symbol* sym = st_.lookup(ev.array);
  std::vector<std::pair<int64_t, int64_t>> bounds =
      sym && sym->dims_const ? sym->dims : ev.bounds;
  ArrayDistribution ad(ev.array, ev.spec, bounds, nprocs_);
  DimDistribution dd = ad.dim(ev.dist_dim);

  auto render_section = [&](bool send_side) {
    std::vector<SectionExpr> sec;
    for (size_t d = 0; d < ev.section.size(); ++d) {
      if (static_cast<int>(d) == ev.dist_dim &&
          ev.kind == CommEvent::Kind::Shift) {
        SectionExpr t;
        int64_t s = ev.shift;
        // Bounds are clamped to the declared range: processors whose
        // block is short or empty (P not dividing N) compute empty
        // sections, and empty sends/receives are skipped symmetrically
        // by the machine.
        if (s > 0) {
          if (send_side) {
            // My first s elements go to my left neighbor.
            t.lb = dd.local_lb_expr();
            t.ub = simplify(
                fmin(add(dd.local_lb_expr(), num(s - 1)), num(dd.gub())));
          } else {
            // I receive my right neighbor's first s elements.
            t.lb = simplify(add(dd.local_ub_expr(), num(1)));
            t.ub = simplify(
                fmin(add(dd.local_ub_expr(), num(s)), num(dd.gub())));
          }
        } else {
          int64_t a = -s;
          if (send_side) {
            t.lb = simplify(
                fmax(sub(dd.local_ub_expr(), num(a - 1)), num(dd.glb())));
            t.ub = dd.local_ub_expr();
          } else {
            t.lb = simplify(
                fmax(sub(dd.local_lb_expr(), num(a)), num(dd.glb())));
            t.ub = simplify(sub(dd.local_lb_expr(), num(1)));
          }
        }
        sec.push_back(std::move(t));
      } else {
        sec.push_back(triplet_to_section(ev.section[d]));
      }
    }
    return sec;
  };

  switch (ev.kind) {
    case CommEvent::Kind::Shift: {
      const int last = nprocs_ - 1;
      if (ev.shift > 0) {
        // Data flows right-to-left: p sends its low edge to p-1.
        std::vector<StmtPtr> send;
        send.push_back(Stmt::make_send(ev.array, render_section(true),
                                       sub(myp(), num(1))));
        out.push_back(Stmt::make_if(cmp(BinOp::Gt, myp(), num(0)),
                                    std::move(send)));
        std::vector<StmtPtr> recv;
        recv.push_back(Stmt::make_recv(ev.array, render_section(false),
                                       add(myp(), num(1))));
        out.push_back(Stmt::make_if(cmp(BinOp::Lt, myp(), num(last)),
                                    std::move(recv)));
      } else {
        // Data flows left-to-right: p sends its high edge to p+1.
        std::vector<StmtPtr> send;
        send.push_back(Stmt::make_send(ev.array, render_section(true),
                                       add(myp(), num(1))));
        out.push_back(Stmt::make_if(cmp(BinOp::Lt, myp(), num(last)),
                                    std::move(send)));
        std::vector<StmtPtr> recv;
        recv.push_back(Stmt::make_recv(ev.array, render_section(false),
                                       sub(myp(), num(1))));
        out.push_back(Stmt::make_if(cmp(BinOp::Gt, myp(), num(0)),
                                    std::move(recv)));
      }
      break;
    }
    case CommEvent::Kind::Bcast: {
      out.push_back(Stmt::make_broadcast(ev.array, render_section(false),
                                         dd.owner_expr(form_to_expr(ev.root_index))));
      break;
    }
    default:
      break;
  }
  stamp_locs(out, ev.loc);
  return out;
}

void ProcGen::emit_runtime(const Stmt& s, const Stmt* ctx_stmt, GenOut& out) {
  emitted_comm_ = true;
  auto is_dist = [&](const std::string& name) {
    const Symbol* sym = st_.lookup(name);
    if (!sym || !sym->is_array()) return false;
    auto specs = cg_.ipa_.reaching.specs_at(proc_.name, ctx_stmt, name);
    for (const auto& spec : specs)
      if (!spec.is_top && spec.distributed_dims() > 0) return true;
    // Under forced run-time resolution the registry decides dynamically;
    // treat arrays with any distribution anywhere as distributed.
    if (forced_runtime()) {
      auto all = cg_.ipa_.reaching.specs_for(proc_.name, name);
      for (const auto& spec : all)
        if (spec.distributed_dims() > 0) return true;
      // An inherited ⊤ under run-time fallback may be distributed.
      for (const auto& spec : specs)
        if (spec.is_top) return true;
    }
    return false;
  };
  emit_runtime_resolved_assign(s, st_, is_dist, out.stmts, stats_);
  // Record the write for dependence checks at outer levels.
  if (s.lhs->kind == ExprKind::ArrayRef) {
    SymSection sec;
    bool ok = true;
    for (const auto& sub : s.lhs->args) {
      auto f = extract_affine(*sub, env_.consts);
      if (!f) {
        ok = false;
        break;
      }
      sec.push_back(SymTriplet::single(*f));
    }
    if (ok) out.writes.push_back({s.lhs->name, std::move(sec), seq_});
  }
  ++seq_;
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

void ProcGen::insert_blocked(GenOut& block, const FloatingEvent& f,
                             const LoopCtx& lctx) {
  // Loop-independent true dependences: writes earlier in this block that
  // may produce the very data the message carries force the message after
  // them (e.g. the pivot column must be scaled before it is broadcast).
  int threshold = -1;
  for (const auto& w : block.writes) {
    if (w.seq >= f.origin_seq || w.array != f.ev.array) continue;
    if (blocks_hoist(w.sec, f.ev.section, lctx, "", /*write_first=*/true))
      threshold = std::max(threshold, w.seq);
  }
  size_t idx = 0;
  while (idx < block.stmts.size() && block.seqs[idx] <= threshold) ++idx;
  auto stmts = instantiate_event(f.ev);
  for (size_t k = 0; k < stmts.size(); ++k) {
    block.stmts.insert(block.stmts.begin() + static_cast<long>(idx + k),
                       std::move(stmts[k]));
    block.seqs.insert(block.seqs.begin() + static_cast<long>(idx + k),
                      threshold);
  }
}

void ProcGen::float_events(const StmtPlan& plan, GenOut& out) {
  for (const auto& ev : plan.events) {
    if (ev.kind == CommEvent::Kind::Shift) {
      auto& demand = shift_demand_[ev.array];
      if (ev.shift > 0)
        demand.second = std::max(demand.second, ev.shift);
      else
        demand.first = std::max(demand.first, -ev.shift);
    }
    // Coalesce identical in-flight messages (Fig. 11 "aggregate RSDs for
    // messages to the same processor").
    bool dup = false;
    for (const auto& f : out.floats)
      if (f.ev.same_message(ev)) {
        dup = true;
        break;
      }
    if (!dup) out.floats.push_back({ev, seq_});
  }
}

void ProcGen::gen_assign(const Stmt& s, GenOut& out, LoopCtx& lctx) {
  (void)lctx;
  const StmtPlan& plan = plans_.at(&s);
  if (plan.runtime) {
    emit_runtime(s, &s, out);
    return;
  }
  if (!plan.reduction_scalar.empty()) {
    if (!constraint_consumed(plan.iset.constraint)) {
      // The enclosing loop was not reduced (mixed statements): fall back.
      emit_runtime(s, &s, out);
      return;
    }
    // Accumulate into the per-processor partial: red$s = red$s + g.
    const std::string temp = "red$" + plan.reduction_scalar;
    reduction_temps_.insert(temp);
    const Expr* g = s.rhs->args[0]->kind == ExprKind::VarRef &&
                            s.rhs->args[0]->name == plan.reduction_scalar
                        ? s.rhs->args[1].get()
                        : s.rhs->args[0].get();
    out.emit(Stmt::make_assign(
                 Expr::make_var(temp),
                 Expr::make_binary(BinOp::Add, Expr::make_var(temp),
                                   g->clone())),
             seq_);
    ++seq_;
    return;
  }
  float_events(plan, out);

  StmtPtr body = Stmt::make_assign(s.lhs->clone(), s.rhs->clone(), s.loc);
  bool need_guard = plan.iset.is_constrained() &&
                    !constraint_consumed(plan.iset.constraint);
  if (need_guard) {
    std::vector<StmtPtr> inner;
    inner.push_back(std::move(body));
    out.emit(guarded(plan.iset.constraint, std::move(inner)), seq_);
    emit_scalar_bcasts(plan.iset.constraint, plan.bcast_scalars, out, s.loc);
  } else {
    // Constraint consumed by an enclosing Reduce/GuardWhole (whose level
    // emits any scalar broadcasts) — emit the bare statement.
    out.emit(std::move(body), seq_);
  }

  // Record the write (symbolic section) for hoisting checks.
  if (s.lhs->kind == ExprKind::ArrayRef) {
    SymSection sec;
    bool ok = true;
    for (const auto& sub : s.lhs->args) {
      auto f = extract_affine(*sub, env_.consts);
      if (!f) {
        ok = false;
        break;
      }
      sec.push_back(SymTriplet::single(*f));
    }
    if (ok)
      out.writes.push_back({s.lhs->name, std::move(sec), seq_});
    else
      out.writes.push_back(
          {s.lhs->name,
           SymSection(s.lhs->args.size(), SymTriplet::constant(1, 1 << 20)),
           seq_});
  }
  ++seq_;
}

void ProcGen::gen_call(const Stmt& s, GenOut& out, LoopCtx& lctx) {
  const StmtPlan& plan = plans_.at(&s);
  const CallSiteInfo* site = cg_.ipa_.acg.site_for(&s);
  const Procedure* callee = site ? cg_.program_.find(s.callee) : nullptr;

  // Dynamic data decomposition: instantiate the callee's delayed remaps
  // around the call (they are optimized by the Fig. 16/17 passes later).
  const ProcExports* ex = nullptr;
  if (callee) {
    auto it = cg_.exports_.find(s.callee);
    if (it != cg_.exports_.end()) ex = &it->second;
  }
  if (ex && callee) {
    for (const auto& [spec, var] : ex->decomp_before) {
      auto t = translate_to_caller(var, *callee, *site);
      if (!t) continue;
      auto cur = spec_at(&s, *t);
      auto remap = std::make_unique<Stmt>();
      remap->kind = StmtKind::Remap;
      remap->loc = s.loc;
      remap->dist_target = *t;
      remap->dist_specs = spec.dists;
      if (cur) remap->from_specs = cur->dists;
      out.emit(std::move(remap), seq_);
      ++stats_.remaps_inserted;
    }
  }

  // Pending communication from the callee: translate and float. The
  // event's own source position (the callee reference) is kept; events
  // that lost it fall back to the call site.
  if (ex && callee) {
    for (const CommEvent& pending : ex->pending_comms) {
      CommEvent ev = pending;
      if (!ev.loc.valid()) ev.loc = s.loc;
      // Array name.
      int ai = callee->formal_index(ev.array);
      if (ai >= 0) {
        if (ai >= static_cast<int>(site->actuals.size()) ||
            site->actuals[static_cast<size_t>(ai)]->kind != ExprKind::VarRef)
          continue;  // cannot translate: drop (callee guarded internally)
        ev.array = site->actuals[static_cast<size_t>(ai)]->name;
      }
      const Symbol* sym = st_.lookup(ev.array);
      if (sym && sym->dims_const) ev.bounds = sym->dims;
      // Section / root forms.
      bool ok = true;
      SymSection sec;
      for (const auto& t : ev.section) {
        auto lb = translate_form(t.lb, *callee, *site);
        auto ub = translate_form(t.ub, *callee, *site);
        if (!lb || !ub) {
          ok = false;
          break;
        }
        sec.push_back({*lb, *ub, t.step});
      }
      auto root = translate_form(ev.root_index, *callee, *site);
      if (!ok || !root) continue;
      ev.section = std::move(sec);
      ev.root_index = *root;
      if (ev.kind == CommEvent::Kind::Shift) {
        auto& demand = shift_demand_[ev.array];
        if (ev.shift > 0)
          demand.second = std::max(demand.second, ev.shift);
        else
          demand.first = std::max(demand.first, -ev.shift);
      }
      ++stats_.delayed_comms_absorbed;
      bool dup = false;
      for (const auto& f : out.floats)
        if (f.ev.same_message(ev)) dup = true;
      if (!dup) out.floats.push_back({std::move(ev), seq_});
    }
  }

  StmtPtr call = Stmt::make_call(s.callee, {}, s.loc);
  for (const auto& a : s.call_args) call->call_args.push_back(a->clone());

  bool need_guard = plan.iset.is_constrained() &&
                    !constraint_consumed(plan.iset.constraint) && ex &&
                    !ex->contains_comm;
  if (plan.runtime) {
    // Could not translate the callee's constraint: execute universally.
    need_guard = false;
  }
  if (need_guard) {
    std::vector<StmtPtr> inner;
    inner.push_back(std::move(call));
    out.emit(guarded(plan.iset.constraint, std::move(inner)), seq_);
    // Scalars the callee modifies must be re-broadcast.
    std::vector<std::string> scalars;
    if (ex && callee)
      for (const auto& sc : ex->scalar_mods) {
        auto t = translate_to_caller(sc, *callee, *site);
        if (t) {
          const Symbol* sym = st_.lookup(*t);
          if (sym && !sym->is_array()) scalars.push_back(*t);
        }
      }
    emit_scalar_bcasts(plan.iset.constraint, scalars, out, s.loc);
  } else {
    out.emit(std::move(call), seq_);
  }

  // Callee writes, translated, for dependence checks.
  if (ex && callee) {
    for (const auto& [arr, secs] : ex->sym_defs) {
      std::string name = arr;
      int ai = callee->formal_index(arr);
      if (ai >= 0) {
        if (ai >= static_cast<int>(site->actuals.size()) ||
            site->actuals[static_cast<size_t>(ai)]->kind != ExprKind::VarRef)
          continue;
        name = site->actuals[static_cast<size_t>(ai)]->name;
      }
      for (const auto& sec : secs) {
        SymSection tsec;
        bool ok = true;
        for (const auto& t : sec) {
          auto lb = translate_form(t.lb, *callee, *site);
          auto ub = translate_form(t.ub, *callee, *site);
          if (!lb || !ub) {
            ok = false;
            break;
          }
          tsec.push_back({*lb, *ub, t.step});
        }
        if (ok)
          out.writes.push_back({name, std::move(tsec), seq_});
        else
          out.writes.push_back(
              {name, SymSection(sec.size(), SymTriplet::constant(1, 1 << 20)),
               seq_});
      }
    }
  }

  // Restore remaps after the call.
  if (ex && callee) {
    for (const auto& [spec, var] : ex->decomp_after) {
      auto t = translate_to_caller(var, *callee, *site);
      if (!t) continue;
      auto remap = std::make_unique<Stmt>();
      remap->kind = StmtKind::Remap;
      remap->loc = s.loc;
      remap->dist_target = *t;
      remap->dist_specs = spec.dists;
      // The "from" is whatever the callee left it as (its before-spec).
      for (const auto& [bspec, bvar] : ex->decomp_before)
        if (bvar == var) remap->from_specs = bspec.dists;
      out.emit(std::move(remap), seq_);
      ++stats_.remaps_inserted;
    }
  }
  (void)lctx;
  ++seq_;
}

void ProcGen::settle_floats_at_loop(const Stmt& loop, GenOut& body,
                                    LoopCtx& lctx, GenOut& out) {
  auto lbf = extract_affine(*loop.lb, env_.consts);
  auto ubf = extract_affine(*loop.ub, env_.consts);
  int64_t lstep = 1;
  if (loop.step) {
    auto sv = eval_int(*loop.step, env_);
    if (sv && *sv > 0) lstep = *sv;
  }

  std::vector<StmtPtr> at_loop_top;
  std::vector<FloatingEvent> still_floating;

  for (auto& f : body.floats) {
    CommEvent& ev = f.ev;
    // (1) Dependence check against writes inside the loop body.
    bool blocked = false;
    for (const auto& w : body.writes) {
      if (w.array != ev.array) continue;
      if (blocks_hoist(w.sec, ev.section, lctx, loop.loop_var,
                       w.seq < f.origin_seq)) {
        blocked = true;
        break;
      }
    }
    // (2) A broadcast whose root varies with the loop cannot be hoisted.
    if (!blocked && ev.root_index.coeff(loop.loop_var) != 0) blocked = true;

    // (3) Widen the section over the loop (message vectorization).
    if (!blocked && lbf && ubf) {
      SymSection widened;
      bool ok = true;
      for (const auto& t : ev.section) {
        auto w = widen_over_loop(t, loop.loop_var, *lbf, *ubf, lstep);
        if (!w) {
          ok = false;
          break;
        }
        widened.push_back(*w);
      }
      if (ok) {
        ev.section = std::move(widened);
        ++ev.hoisted_loops;
        still_floating.push_back(std::move(f));
        continue;
      }
      blocked = true;
    } else if (!blocked) {
      blocked = true;  // non-affine loop bounds: cannot widen
    }

    if (blocked) {
      // Instantiating communication inside a loop whose execution is
      // restricted to owners would deadlock (non-owners skip the matching
      // send/recv/broadcast).
      const LoopPlan& lp = loop_plans_.at(&loop);
      if (lp.decision != LoopDecision::None)
        throw CompileError(
            {}, "communication for " + ev.str() + " in '" + proc_.name +
                    "' is blocked inside an owner-restricted loop; this "
                    "pattern requires pipelining (use run-time resolution)");
      insert_blocked(body, f, lctx);
    }
  }
  body.floats.clear();
  (void)at_loop_top;
  for (auto& f : still_floating) out.floats.push_back(std::move(f));
}

void ProcGen::hoist_writes_over_loop(const Stmt& loop, GenOut& body,
                                     LoopCtx& lctx, GenOut& out) {
  auto lbf = extract_affine(*loop.lb, env_.consts);
  auto ubf = extract_affine(*loop.ub, env_.consts);
  for (auto& w : body.writes) {
    SymSection widened;
    bool ok = lbf && ubf;
    if (ok) {
      for (const auto& t : w.sec) {
        auto wt = widen_over_loop(t, loop.loop_var, *lbf, *ubf, 1);
        if (!wt) {
          ok = false;
          break;
        }
        widened.push_back(*wt);
      }
    }
    if (ok)
      out.writes.push_back({w.array, std::move(widened), w.seq});
    else
      out.writes.push_back(
          {w.array, SymSection(w.sec.size(), SymTriplet::constant(1, 1 << 20)),
           w.seq});
  }
  (void)lctx;
}

void ProcGen::gen_do(const Stmt& s, GenOut& out, LoopCtx& lctx) {
  const LoopPlan& lp = loop_plans_.at(&s);
  // The loop's emission sequence is its *start*: a blocked message whose
  // dependence threshold lies inside the body must be placed after the
  // whole loop.
  const int start_seq = seq_;

  auto lbf = extract_affine(*s.lb, env_.consts);
  auto ubf = extract_affine(*s.ub, env_.consts);
  int64_t lstep = 1;
  if (s.step) {
    auto sv = eval_int(*s.step, env_);
    if (sv && *sv > 0) lstep = *sv;
  }
  lctx.push_back({s.loop_var, lbf ? *lbf : AffineForm{}, ubf ? *ubf : AffineForm{},
                  lstep});
  auto lb = eval_int(*s.lb, env_);
  auto ub = eval_int(*s.ub, env_);
  bool pushed_range = false;
  if (lb && ub && lstep > 0) {
    env_.ranges[s.loop_var] = Triplet(*lb, *ub, lstep);
    pushed_range = true;
  }

  // A GuardWhole whose constraint an outer level already consumed (outer
  // reduction or the procedure's exported iteration set) degrades to None.
  LoopDecision decision = lp.decision;
  if (decision == LoopDecision::GuardWhole &&
      constraint_consumed(lp.constraint))
    decision = LoopDecision::None;

  // Reduce and GuardWhole both make per-statement guards inside the body
  // redundant (the constraint is enforced at this level).
  const bool consumed_here = decision == LoopDecision::Reduce ||
                             decision == LoopDecision::GuardWhole;
  if (consumed_here) active_reductions_.push_back(lp.constraint);

  GenOut body = gen_block(s.body, lctx);

  if (consumed_here) active_reductions_.pop_back();
  if (pushed_range) env_.ranges.erase(s.loop_var);

  // Communication placement at this loop boundary.
  settle_floats_at_loop(s, body, lctx, out);
  hoist_writes_over_loop(s, body, lctx, out);
  lctx.pop_back();

  switch (decision) {
    case LoopDecision::Reduce: {
      for (const std::string& scalar : lp.reductions) {
        out.emit(Stmt::make_assign(Expr::make_var("red$" + scalar),
                                   Expr::make_real(0.0)),
                 start_seq);
      }
      out.emit(reduce_loop_bounds(s, lp.constraint, std::move(body.stmts), lctx),
               start_seq);
      for (const std::string& scalar : lp.reductions) {
        auto red = std::make_unique<Stmt>();
        red->kind = StmtKind::AllReduce;
        red->loc = s.loc;
        red->msg_array = "red$" + scalar;
        red->reduce_op = "sum";
        out.emit(std::move(red), seq_);
        out.emit(Stmt::make_assign(
                     Expr::make_var(scalar),
                     Expr::make_binary(BinOp::Add, Expr::make_var(scalar),
                                       Expr::make_var("red$" + scalar))),
                 seq_);
        emitted_comm_ = true;
        ++stats_.scalar_broadcasts;
      }
      break;
    }
    case LoopDecision::GuardWhole: {
      StmtPtr loop = Stmt::make_do(s.loop_var, s.lb->clone(), s.ub->clone(),
                                   s.step ? s.step->clone() : nullptr,
                                   std::move(body.stmts), s.loc);
      std::vector<StmtPtr> inner;
      inner.push_back(std::move(loop));
      out.emit(guarded(lp.constraint, std::move(inner)), start_seq);
      emit_scalar_bcasts(lp.constraint, lp.bcast_scalars, out, s.loc);
      break;
    }
    case LoopDecision::None: {
      out.emit(Stmt::make_do(s.loop_var, s.lb->clone(), s.ub->clone(),
                             s.step ? s.step->clone() : nullptr,
                             std::move(body.stmts), s.loc),
               start_seq);
      break;
    }
  }
  ++seq_;
}

void ProcGen::gen_if(const Stmt& s, GenOut& out, LoopCtx& lctx) {
  auto pit = plans_.find(&s);
  if (pit != plans_.end()) {
    // Owner region: guard the whole IF.
    const StmtPlan& plan = pit->second;
    StmtPtr body = s.clone();
    body->id = -1;
    if (plan.iset.is_constrained() &&
        !constraint_consumed(plan.iset.constraint)) {
      std::vector<StmtPtr> inner;
      inner.push_back(std::move(body));
      out.emit(guarded(plan.iset.constraint, std::move(inner)), seq_);
      emit_scalar_bcasts(plan.iset.constraint, plan.bcast_scalars, out, s.loc);
    } else {
      out.emit(std::move(body), seq_);
    }
    ++seq_;
    return;
  }
  // Plain IF: lower both branches.
  const int start_seq = seq_;
  // Under run-time resolution a condition reading distributed data must
  // first fetch those elements from their owners (every processor
  // evaluates the branch predicate).
  if (forced_runtime()) {
    std::vector<const Expr*> dist_refs;
    walk_expr(*s.cond, [&](const Expr& e) {
      if (e.kind == ExprKind::ArrayRef && may_be_distributed(&s, e.name))
        dist_refs.push_back(&e);
    });
    for (const Expr* r : dist_refs) {
      std::vector<SectionExpr> sec;
      for (const auto& sub : r->args) {
        SectionExpr t;
        t.lb = sub->clone();
        t.ub = sub->clone();
        sec.push_back(std::move(t));
      }
      std::vector<ExprPtr> subs;
      for (const auto& sub : r->args) subs.push_back(sub->clone());
      StmtPtr b = Stmt::make_broadcast(r->name, std::move(sec),
                                       owner_intrinsic(r->name, subs));
      stamp_loc(*b, r->loc.valid() ? r->loc : s.loc);
      out.emit(std::move(b), seq_);
      emitted_comm_ = true;
    }
  }
  GenOut then_out = gen_block(s.then_body, lctx);
  GenOut else_out = gen_block(s.else_body, lctx);
  // Events inside conditional branches instantiate in place (hoisting a
  // message above a branch could deadlock when the condition differs
  // across processors).
  for (auto& f : then_out.floats) insert_blocked(then_out, f, lctx);
  then_out.floats.clear();
  for (auto& f : else_out.floats) insert_blocked(else_out, f, lctx);
  else_out.floats.clear();
  for (auto& w : then_out.writes) out.writes.push_back(std::move(w));
  for (auto& w : else_out.writes) out.writes.push_back(std::move(w));
  out.emit(Stmt::make_if(s.cond->clone(), std::move(then_out.stmts),
                         std::move(else_out.stmts), s.loc),
           start_seq);
  ++seq_;
}

void ProcGen::gen_distribute(const Stmt& s, GenOut& out, LoopCtx& lctx) {
  // Executable DISTRIBUTE: under run-time resolution it survives as a
  // registry update; under compiled strategies the prologue distribution
  // is static (consumed by analysis) and *dynamic* redistribution becomes
  // an explicit Remap (delayed to the caller where legal — handled in
  // run(); here we emit the local form for the cases that stay local).
  if (cg_.options_.strategy == Strategy::RuntimeResolution) {
    // Emit one registry update per affected array with resolved specs.
    const ProcSummary& sum = cg_.ipa_.summaries.at(proc_.name);
    for (const std::string& arr :
         affected_arrays(s, proc_, st_, sum.align)) {
      const Symbol* sym = st_.lookup(arr);
      if (!sym) continue;
      auto spec = spec_for_array(s, arr, sym->rank(), sum.align);
      if (!spec) continue;
      auto d = std::make_unique<Stmt>();
      d->kind = StmtKind::Distribute;
      d->loc = s.loc;
      d->dist_target = arr;
      d->dist_specs = spec->dists;
      out.emit(std::move(d), seq_);
    }
    return;
  }
  // Compiled strategies: decide local-vs-delayed in run(); here nothing is
  // emitted — run() pre-computed which Distribute statements turn into
  // local remaps and stored them in local_remaps_.
  auto it = local_remaps_.find(&s);
  if (it == local_remaps_.end()) return;  // delayed to the caller
  for (const auto& r : it->second) {
    if (r->kind == StmtKind::Remap) ++stats_.remaps_inserted;
    out.emit(r->clone(), seq_);
  }
  (void)lctx;
}

GenOut ProcGen::gen_block(const std::vector<StmtPtr>& in, LoopCtx& lctx) {
  GenOut out;
  for (const auto& s : in) {
    switch (s->kind) {
      case StmtKind::Assign:
        gen_assign(*s, out, lctx);
        break;
      case StmtKind::Call:
        gen_call(*s, out, lctx);
        break;
      case StmtKind::Do: {
        GenOut sub;
        gen_do(*s, sub, lctx);
        for (size_t i = 0; i < sub.stmts.size(); ++i)
          out.emit(std::move(sub.stmts[i]), sub.seqs[i]);
        for (auto& f : sub.floats) {
          bool dup = false;
          for (const auto& g : out.floats)
            if (g.ev.same_message(f.ev)) dup = true;
          if (!dup) out.floats.push_back(std::move(f));
        }
        for (auto& w : sub.writes) out.writes.push_back(std::move(w));
        break;
      }
      case StmtKind::If:
        gen_if(*s, out, lctx);
        break;
      case StmtKind::Align:
        break;  // consumed by analysis
      case StmtKind::Distribute:
        gen_distribute(*s, out, lctx);
        break;
      case StmtKind::Return:
      case StmtKind::Continue: {
        out.emit(s->clone(), seq_);
        break;
      }
      default:
        out.emit(s->clone(), seq_);
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// run()
// ---------------------------------------------------------------------------

std::unique_ptr<Procedure> ProcGen::run(ProcExports& exports) {
  analyze();

  // Dynamic data decomposition (§6): classify each executable DISTRIBUTE.
  // A DISTRIBUTE before any use of the inherited decomposition delays to
  // the caller (DecompBefore); anything else instantiates a local Remap.
  // The inherited decomposition is restored on return (DecompAfter).
  const ProcSummary& sum = cg_.ipa_.summaries.at(proc_.name);
  bool delay_remaps = cg_.options_.strategy == Strategy::Interprocedural &&
                      !proc_.is_program;
  if (cg_.options_.strategy != Strategy::RuntimeResolution) {
    // Track textual order: uses seen before a DISTRIBUTE force local
    // instantiation.
    std::set<std::string> used;
    std::function<void(const std::vector<StmtPtr>&)> scan =
        [&](const std::vector<StmtPtr>& stmts) {
          for (const auto& s : stmts) {
            if (s->kind == StmtKind::Distribute) {
              for (const std::string& arr :
                   affected_arrays(*s, proc_, st_, sum.align)) {
                const Symbol* sym = st_.lookup(arr);
                if (!sym) continue;
                auto spec = spec_for_array(*s, arr, sym->rank(), sum.align);
                if (!spec) continue;
                bool is_prologue = !used.count(arr);
                bool inheritable =
                    sym->formal_index >= 0 || sym->is_global();
                if (proc_.is_program && !sum.has_dynamic_decomp) {
                  // Static prologue distribution of the main program: no
                  // data motion needed (arrays begin life distributed),
                  // but the run-time registry must still learn it so the
                  // owner$ intrinsic and result gathering work.
                  auto reg = std::make_unique<Stmt>();
                  reg->kind = StmtKind::Distribute;
                  reg->loc = s->loc;
                  reg->dist_target = arr;
                  reg->dist_specs = spec->dists;
                  local_remaps_[s.get()].push_back(std::move(reg));
                  continue;
                }
                auto remap = std::make_unique<Stmt>();
                remap->kind = StmtKind::Remap;
                remap->loc = s->loc;
                remap->dist_target = arr;
                remap->dist_specs = spec->dists;
                auto inherited =
                    cg_.ipa_.reaching.unique_spec(proc_.name, arr);
                if (delay_remaps && is_prologue && inheritable) {
                  exports.decomp_before.emplace_back(*spec, arr);
                  exports.decomp_kill.insert(arr);
                  if (inherited)
                    exports.decomp_after.emplace_back(*inherited, arr);
                  else {
                    DecompSpec none;
                    none.dists.assign(static_cast<size_t>(sym->rank()),
                                      DistSpec{});
                    exports.decomp_after.emplace_back(none, arr);
                  }
                } else {
                  auto cur = spec_at(s.get(), arr);
                  if (cur)
                    remap->from_specs = cur->dists;
                  else if (inherited)
                    remap->from_specs = inherited->dists;
                  local_remaps_[s.get()].push_back(std::move(remap));
                  if (inheritable) {
                    exports.decomp_kill.insert(arr);
                    if (inherited)
                      exports.decomp_after.emplace_back(*inherited, arr);
                  }
                }
              }
            }
            // Uses.
            for_each_expr(*s, [&](const Expr& e) {
              if (e.kind == ExprKind::ArrayRef || e.kind == ExprKind::VarRef)
                used.insert(e.name);
            });
            scan(s->then_body);
            scan(s->else_body);
            scan(s->body);
          }
        };
    scan(proc_.body);
  }

  // DecompUse: arrays referenced before any local redistribution.
  {
    std::set<std::string> redistributed;
    for (const auto& [spec, var] : exports.decomp_before)
      redistributed.insert(var);
    walk_stmts(proc_.body, [&](const Stmt& s) {
      for_each_expr(s, [&](const Expr& e) {
        if (e.kind != ExprKind::ArrayRef) return;
        const Symbol* sym = st_.lookup(e.name);
        if (!sym || (sym->formal_index < 0 && !sym->is_global())) return;
        if (!redistributed.count(e.name)) exports.decomp_use.insert(e.name);
      });
    });
  }

  // Generate the body.
  LoopCtx lctx;
  GenOut top = gen_block(proc_.body, lctx);

  // Remaining floats: export to callers, or instantiate in the top-level
  // body (after any writes they depend on).
  for (auto& f : top.floats) {
    if (event_would_export(f.ev)) {
      exports.pending_comms.push_back(f.ev);
      ++stats_.delayed_comms_exported;
    } else {
      insert_blocked(top, f, LoopCtx{});
    }
  }
  top.floats.clear();

  // Exported iteration set & consistency check.
  exports.iter_set = IterationSet::universal();
  if (export_constraint_ && !emitted_comm_) {
    exports.iter_set = IterationSet::constrained(*export_constraint_);
    ++stats_.delayed_iter_sets_exported;
  } else if (export_constraint_ && emitted_comm_) {
    // Estimated export was invalidated by locally instantiated comm: the
    // statements were generated unguarded assuming the caller would guard.
    // Regenerating with guards would be needed; for the supported
    // programs this does not occur.
    throw CompileError({}, "internal: delayed iteration set for '" +
                               proc_.name +
                               "' conflicts with local communication");
  }
  exports.contains_comm = emitted_comm_;
  exports.shift_demand = shift_demand_;

  // Exported write summaries (formal/global arrays only).
  for (auto& w : top.writes) {
    const Symbol* sym = st_.lookup(w.array);
    if (!sym || (sym->formal_index < 0 && !sym->is_global())) continue;
    auto& list = exports.sym_defs[w.array];
    bool dup = false;
    for (const auto& s : list)
      if (sym_section_str(s) == sym_section_str(w.sec)) dup = true;
    if (!dup) list.push_back(w.sec);
  }

  // Scalar side effects (formals/globals).
  {
    auto it = cg_.ipa_.effects.gmod.find(proc_.name);
    if (it != cg_.ipa_.effects.gmod.end())
      for (const auto& v : it->second) {
        const Symbol* sym = st_.lookup(v);
        if (sym && !sym->is_array() &&
            (sym->formal_index >= 0 || sym->is_global()))
          exports.scalar_mods.insert(v);
      }
  }

  // Assemble the output procedure.
  auto out = std::make_unique<Procedure>();
  out->name = proc_.name;
  out->is_program = proc_.is_program;
  out->formals = proc_.formals;
  for (const auto& d : proc_.decls)
    if (!d.is_decomposition) out->decls.push_back(d.clone());
  for (const std::string& temp : reduction_temps_) {
    VarDecl decl;
    decl.name = temp;
    decl.type = ElemType::Real;
    out->decls.push_back(std::move(decl));
  }
  for (const auto& p : proc_.params) out->params.push_back({p.name, p.value->clone()});
  out->commons = proc_.commons;
  if (proc_.is_program) {
    // my$p = myproc() prologue (Fig. 2).
    out->body.push_back(Stmt::make_assign(Expr::make_var("my$p"),
                                          Expr::make_call("myproc", {})));
  }
  for (auto& s : top.stmts) out->body.push_back(std::move(s));
  out->next_stmt_id = proc_.next_stmt_id;
  return out;
}

// ===========================================================================
// CodeGenerator
// ===========================================================================

/// One procedure's full contribution to the compiled program, produced
/// either by ProcGen or by a cache hit.
struct ProcOut {
  std::unique_ptr<Procedure> compiled;
  ProcExports exports;
  std::vector<ArrayStorageInfo> storage;
  CompileStats stats;
  uint64_t digest = 0;
  bool from_cache = false;
};

namespace {

void accumulate(CompileStats& into, const CompileStats& d) {
  into.vectorized_messages += d.vectorized_messages;
  into.delayed_comms_exported += d.delayed_comms_exported;
  into.delayed_comms_absorbed += d.delayed_comms_absorbed;
  into.delayed_iter_sets_exported += d.delayed_iter_sets_exported;
  into.loops_bounds_reduced += d.loops_bounds_reduced;
  into.guards_inserted += d.guards_inserted;
  into.scalar_broadcasts += d.scalar_broadcasts;
  into.runtime_resolved_stmts += d.runtime_resolved_stmts;
  into.remaps_inserted += d.remaps_inserted;
  into.buffers_used += d.buffers_used;
}

}  // namespace

CodeGenerator::CodeGenerator(const BoundProgram& program,
                             const IpaContext& ipa,
                             const CodegenOptions& options,
                             CompilationCache* cache,
                             const OverlapEstimates* overlaps,
                             ThreadPool* pool)
    : program_(program), ipa_(ipa), options_(options), cache_(cache),
      pool_(pool) {
  overlaps_ = overlaps ? *overlaps
                       : compute_overlap_estimates(program_, ipa_.acg,
                                                   ipa_.summaries);
}

SpmdProgram CodeGenerator::generate() {
  result_ = SpmdProgram{};
  result_.options = options_;
  result_.stats.clones_created = ipa_.clones_created;
  exports_.clear();
  last_generated_.clear();
  sched_stats_ = TaskGraphStats{};

  const auto& procs = program_.ast.procedures;
  std::vector<ProcOut> outs(procs.size());

  // Readiness-driven prefetch: §8's recompilation digests are exact, so
  // a procedure's digest is computable the moment its callee exports
  // resolved — one BATCH_GET per remote shard then warms the store
  // while other procedures generate.
  ContentStore* pstore = nullptr;
  if (cache_ && cache_->store() && cache_->store()->has_remote() &&
      cache_->store()->options().prefetch)
    pstore = cache_->store();

  if (options_.scheduler == Scheduler::Wavefront)
    schedule_wavefront(outs, pstore);
  else
    schedule_work_stealing(outs, pstore);

  // Merge per-procedure results. Counters accumulate in reverse
  // topological order (the serial emission order); the output AST is
  // assembled directly in topological (source) order, which the serial
  // walk used to reach with a post-hoc reverse.
  for (int idx : ipa_.acg.reverse_topological_indices()) {
    ProcOut& out = outs[static_cast<size_t>(idx)];
    accumulate(result_.stats, out.stats);
    result_.storage[procs[static_cast<size_t>(idx)]->name] =
        std::move(out.storage);
  }
  for (int idx : ipa_.acg.topological_indices())
    result_.ast.procedures.push_back(
        std::move(outs[static_cast<size_t>(idx)].compiled));

  // Dynamic data decomposition optimization (Fig. 16/17). Array-kill
  // summaries: arrays a procedure fully overwrites before any use.
  std::map<std::string, ArrayKillSummary> kills;
  for (const auto& proc : program_.ast.procedures) {
    const SymbolTable& st = program_.symtab(proc->name);
    auto dit = ipa_.effects.gdefs.find(proc->name);
    if (dit == ipa_.effects.gdefs.end()) continue;
    auto uit = ipa_.effects.guses.find(proc->name);
    for (const auto& [arr, defs] : dit->second) {
      const Symbol* sym = st.lookup(arr);
      if (!sym || !sym->is_array() || !sym->dims_const) continue;
      bool covers = false;
      for (const Rsd& r : defs.sections())
        if (r.contains(sym->full_section())) covers = true;
      bool used = uit != ipa_.effects.guses.end() && uit->second.count(arr) &&
                  !uit->second.at(arr).empty();
      if (covers && !used) {
        if (sym->formal_index >= 0)
          kills[proc->name].killed_formals.insert(sym->formal_index);
        else if (sym->is_global())
          kills[proc->name].killed_globals.insert(arr);
      }
    }
  }
  optimize_dynamic_decomps(result_, options_.dyn_decomp, kills);
  return std::move(result_);
}

/// The depth-leveled schedule of PR 1/6, kept behind
/// Scheduler::Wavefront as the measurable barrier baseline: per-level
/// serial cache probes, one parallel_for per level (prefetch of the
/// next level's known digests riding the same batch), and a barrier
/// that publishes exports/cache entries in level order.
void CodeGenerator::schedule_wavefront(std::vector<ProcOut>& outs,
                                       ContentStore* pstore) {
  const auto& procs = program_.ast.procedures;
  const int jobs = std::max(1, options_.jobs);
  ThreadPool* pool = pool_;           // borrowed (shared with IPA) ...
  std::unique_ptr<ThreadPool> local;  // ... or transient when none given

  // The digests of `level`'s procedures whose callee exports are all
  // present in `exports` (a leaf level trivially qualifies); procedures
  // with an unresolved callee are skipped — their digests would be wrong.
  const auto level_digests =
      [&](const std::vector<int>& level,
          const std::map<std::string, ProcExports>& exports) {
        std::vector<uint64_t> digests;
        for (int idx : level) {
          const Procedure& proc = *procs[static_cast<size_t>(idx)];
          bool resolved = true;
          for (const CallSiteInfo* site : ipa_.acg.calls_from(proc.name))
            if (!exports.count(site->callee)) {
              resolved = false;
              break;
            }
          if (resolved)
            digests.push_back(procedure_digest(proc, program_, ipa_,
                                               overlaps_, options_, exports));
        }
        return digests;
      };

  // Wavefront schedule over the reverse topological order: all of a
  // level's callees completed in earlier levels, so the level's
  // procedures are independent and may be generated concurrently.
  const std::vector<std::vector<int>> levels = ipa_.acg.wavefront_levels();

  // The first level has nothing to overlap with; fetch it up front so
  // even the leaves' probes land on a warm memory tier.
  if (pstore && !levels.empty()) {
    for (const auto& group :
         pstore->prefetch_groups(kProcArtifactKind,
                                 level_digests(levels[0], exports_)))
      pstore->prefetch(kProcArtifactKind, proc_artifact_format_hash(), group);
  }

  for (size_t li = 0; li < levels.size(); ++li) {
    const std::vector<int>& level = levels[li];
    // Cache probe, serial: digests fold in callee exports, final since
    // the previous level's barrier.
    std::vector<int> pending;
    for (int idx : level) {
      const Procedure& proc = *procs[static_cast<size_t>(idx)];
      ProcOut& out = outs[static_cast<size_t>(idx)];
      if (cache_) {
        out.digest = procedure_digest(proc, program_, ipa_, overlaps_,
                                      options_, exports_);
        if (auto hit = cache_->lookup(out.digest)) {
          out.compiled = hit->compiled->clone_as(hit->compiled->name);
          out.exports = hit->exports;
          out.storage = hit->storage;
          out.stats = hit->stats;
          out.from_cache = true;
          continue;
        }
      }
      pending.push_back(idx);
    }

    // Group the next level's known digests by shard before launching the
    // batch: this level's cache hits already fixed their exports, so a
    // caller all of whose callees hit is prefetchable right now, and the
    // BATCH_GETs overlap with this level's code generation below.
    std::vector<std::vector<uint64_t>> prefetch_groups;
    if (pstore && li + 1 < levels.size()) {
      std::map<std::string, ProcExports> resolved = exports_;
      for (int idx : level) {
        const ProcOut& out = outs[static_cast<size_t>(idx)];
        if (out.from_cache)
          resolved[procs[static_cast<size_t>(idx)]->name] = out.exports;
      }
      prefetch_groups = pstore->prefetch_groups(
          kProcArtifactKind, level_digests(levels[li + 1], resolved));
    }

    auto compile_one = [&](size_t k) {
      const int idx = pending[k];
      const Procedure& proc = *procs[static_cast<size_t>(idx)];
      ProcOut& out = outs[static_cast<size_t>(idx)];
      ProcGen gen(*this, proc);
      out.compiled = gen.run(out.exports);
      out.stats = gen.stats();
      out.storage = compute_storage(*this, proc, out.exports, out.stats);
    };
    // Prefetch tasks ride the same batch as the level's procedures: the
    // pool runs one batch at a time, so extra indices are the only way
    // to overlap the network round trips with codegen.
    auto task = [&](size_t k) {
      if (k < pending.size())
        compile_one(k);
      else
        pstore->prefetch(kProcArtifactKind, proc_artifact_format_hash(),
                         prefetch_groups[k - pending.size()]);
    };
    const size_t n_tasks = pending.size() + prefetch_groups.size();
    if (jobs > 1 && n_tasks > 1) {
      if (!pool) {
        local = std::make_unique<ThreadPool>(jobs - 1);
        pool = local.get();
      }
      pool->parallel_for(n_tasks, task);
    } else {
      // Serial schedule: issue the batched fetches first (still one
      // round trip per shard instead of one per next-level miss), then
      // generate.
      for (size_t k = pending.size(); k < n_tasks; ++k) task(k);
      for (size_t k = 0; k < pending.size(); ++k) compile_one(k);
    }

    // Level barrier: publish exports and cache entries in deterministic
    // level order before any caller level starts.
    for (int idx : level) {
      ProcOut& out = outs[static_cast<size_t>(idx)];
      const std::string& name = procs[static_cast<size_t>(idx)]->name;
      exports_[name] = out.exports;
      if (!out.from_cache) last_generated_.push_back(name);
      if (cache_ && !out.from_cache) {
        CachedProcedure entry;
        entry.compiled = out.compiled->clone_as(out.compiled->name);
        entry.exports = out.exports;
        entry.storage = out.storage;
        entry.stats = out.stats;
        cache_->insert(out.digest, std::move(entry));
      }
    }
  }
}

/// The barrier-free schedule (default): a TaskGraph node per procedure
/// in reverse topological order, dependency edges to callees, and a
/// work-stealing run on the shared pool. A procedure's cache probe and
/// generation start the moment its own callees finish. The ready hook
/// finalizes digests (a node is ready exactly when its last callee
/// export resolved) and spawns per-shard prefetch batches as auxiliary
/// tasks — readiness-driven lookahead, deeper than the wavefront's
/// one-level window. Exports publish into pre-sized map slots as tasks
/// finish (ordered by the dependency edges); everything
/// order-sensitive — last_generated_, cache inserts — is committed
/// after the run in fixed reverse topological order, so output and
/// digest semantics are byte-identical to the serial walk.
void CodeGenerator::schedule_work_stealing(std::vector<ProcOut>& outs,
                                           ContentStore* pstore) {
  const auto& procs = program_.ast.procedures;
  const int jobs = std::max(1, options_.jobs);
  ThreadPool* pool = jobs > 1 ? pool_ : nullptr;
  std::unique_ptr<ThreadPool> local;  // transient when none was borrowed
  if (jobs > 1 && !pool && procs.size() > 1) {
    local = std::make_unique<ThreadPool>(jobs - 1);
    pool = local.get();
  }

  const std::vector<int> order = ipa_.acg.reverse_topological_indices();
  std::vector<size_t> node_of(procs.size(), 0);
  for (size_t k = 0; k < order.size(); ++k)
    node_of[static_cast<size_t>(order[k])] = k;

  TaskGraph graph(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    const std::string& name = procs[static_cast<size_t>(order[k])]->name;
    for (const CallSiteInfo* site : ipa_.acg.calls_from(name)) {
      const int callee = ipa_.acg.procedure_index(site->callee);
      if (callee >= 0)
        graph.add_dependency(k, node_of[static_cast<size_t>(callee)]);
    }
  }

  // Pre-size exports_ so tasks publish by assigning mapped values only.
  // Digest-neutral: procedure_digest and ProcGen consult exports_ by
  // callee name, and every real callee's value is final before its
  // callers run.
  for (const auto& proc : procs) exports_[proc->name];

  graph.set_ready_hook([&](const std::vector<size_t>& ready) {
    if (!cache_) return;
    // All callee exports of `ready` are final: their digests are exact.
    std::vector<uint64_t> digests;
    digests.reserve(ready.size());
    for (size_t k : ready) {
      ProcOut& out = outs[static_cast<size_t>(order[k])];
      out.digest =
          procedure_digest(*procs[static_cast<size_t>(order[k])], program_,
                           ipa_, overlaps_, options_, exports_);
      digests.push_back(out.digest);
    }
    if (!pstore) return;
    // One BATCH_GET per owning shard, issued right now as idle-worker
    // tasks. A probe can race its own in-flight prefetch and fall
    // through to a direct GET — correct (the store dedups promotion),
    // merely redundant; the prefetch_requested_ ledger keeps each
    // digest fetched at most once.
    for (auto& group : pstore->prefetch_groups(kProcArtifactKind, digests))
      graph.spawn_aux([pstore, group = std::move(group)] {
        pstore->prefetch(kProcArtifactKind, proc_artifact_format_hash(),
                         group);
      });
  });

  graph.run(pool, [&](size_t k) {
    const int idx = order[k];
    const Procedure& proc = *procs[static_cast<size_t>(idx)];
    ProcOut& out = outs[static_cast<size_t>(idx)];
    if (cache_) {
      if (auto hit = cache_->lookup(out.digest)) {
        out.compiled = hit->compiled->clone_as(hit->compiled->name);
        out.exports = hit->exports;
        out.storage = hit->storage;
        out.stats = hit->stats;
        out.from_cache = true;
      }
    }
    if (!out.from_cache) {
      ProcGen gen(*this, proc);
      out.compiled = gen.run(out.exports);
      out.stats = gen.stats();
      out.storage = compute_storage(*this, proc, out.exports, out.stats);
    }
    exports_[proc.name] = out.exports;
  });
  sched_stats_ += graph.stats();

  // Deterministic commit: everything whose order the serial walk fixed
  // is published in reverse topological order, regardless of the order
  // the schedule completed nodes in.
  for (size_t k = 0; k < order.size(); ++k) {
    ProcOut& out = outs[static_cast<size_t>(order[k])];
    if (out.from_cache) continue;
    last_generated_.push_back(procs[static_cast<size_t>(order[k])]->name);
    if (cache_) {
      CachedProcedure entry;
      entry.compiled = out.compiled->clone_as(out.compiled->name);
      entry.exports = out.exports;
      entry.storage = out.storage;
      entry.stats = out.stats;
      cache_->insert(out.digest, std::move(entry));
    }
  }
}

const ProcExports* CodeGenerator::exports_of(const std::string& proc) const {
  auto it = exports_.find(proc);
  return it == exports_.end() ? nullptr : &it->second;
}

SpmdProgram generate_spmd(const BoundProgram& program, const IpaContext& ipa,
                          const CodegenOptions& options) {
  CodeGenerator cg(program, ipa, options);
  return cg.generate();
}

}  // namespace fortd
