// Code-generation options: the compilation strategies and optimization
// levels the paper's evaluation compares.
#pragma once

#include "support/task_graph.hpp"  // Scheduler

namespace fortd {

/// Overall compilation strategy.
enum class Strategy {
  /// Full interprocedural compilation with delayed instantiation of the
  /// computation partition, communication, and dynamic data decomposition
  /// (the paper's contribution; Figs. 2, 10).
  Interprocedural,
  /// Intraprocedural compilation only: guards and messages are
  /// instantiated immediately inside each procedure (Fig. 12 baseline).
  Intraprocedural,
  /// Run-time resolution: per-reference ownership tests and element
  /// messages (Fig. 3 baseline).
  RuntimeResolution,
};

/// Dynamic data decomposition optimization level (Fig. 16 a-d).
enum class DynDecompOpt {
  None,           // 16a: remap before/after every affected call
  Live,           // 16b: dead/duplicate remap elimination
  LiveInvariant,  // 16c: + loop-invariant remap hoisting
  Full,           // 16d: + array kills (remap in place)
};

struct CodegenOptions {
  int n_procs = 4;
  /// Worker threads for parallel code generation (1 = serial).
  /// Affects only the schedule: generated code is byte-identical for any
  /// value, and the field is excluded from procedure cache digests.
  int jobs = 1;
  /// How the per-procedure schedule is driven: barrier-free
  /// work-stealing over the ACG dependency graph (default), or the
  /// depth-leveled wavefronts with a barrier per level (the measurable
  /// baseline). Like jobs, schedule-only: byte-identical output, and
  /// excluded from cache digests.
  Scheduler scheduler = Scheduler::WorkStealing;
  Strategy strategy = Strategy::Interprocedural;
  DynDecompOpt dyn_decomp = DynDecompOpt::Full;
  /// Store nonlocal data in buffers instead of overlap regions when the
  /// overlap estimate proves insufficient (always true in effect; this
  /// flag forces buffers even when overlaps suffice).
  bool prefer_buffers = false;
  /// Emit parameterized overlaps (Fig. 14) for formal array parameters.
  bool parameterized_overlaps = false;
  /// Disable message vectorization (ablation; element messages at the
  /// reference's own loop level).
  bool message_vectorization = true;
};

}  // namespace fortd
