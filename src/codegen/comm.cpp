#include "codegen/comm.hpp"

#include <algorithm>

#include "codegen/expr_build.hpp"

namespace fortd {

// ---------------------------------------------------------------------------
// SymTriplet
// ---------------------------------------------------------------------------

SymTriplet SymTriplet::constant(int64_t lo, int64_t hi, int64_t st) {
  SymTriplet t;
  t.lb.konst = lo;
  t.ub.konst = hi;
  t.step = st;
  return t;
}

std::vector<std::string> SymTriplet::vars() const {
  std::vector<std::string> out = lb.vars();
  for (const auto& v : ub.vars())
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  return out;
}

std::string SymTriplet::str() const {
  std::string s = lb.str();
  if (!is_singleton()) {
    s += ":" + ub.str();
    if (step != 1) s += ":" + std::to_string(step);
  }
  return s;
}

std::string sym_section_str(const SymSection& s) {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += s[i].str();
  }
  return out + "]";
}

std::vector<std::string> sym_section_vars(const SymSection& s) {
  std::vector<std::string> out;
  for (const auto& t : s)
    for (const auto& v : t.vars())
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  return out;
}

AffineForm substitute(const AffineForm& f, const std::string& var,
                      const AffineForm& replacement) {
  int64_t c = f.coeff(var);
  if (c == 0) return f;
  AffineForm out = f;
  out.coeffs.erase(var);
  return out + replacement.scaled(c);
}

SymTriplet substitute(const SymTriplet& t, const std::string& var,
                      const AffineForm& replacement) {
  return {substitute(t.lb, var, replacement), substitute(t.ub, var, replacement),
          t.step};
}

SymSection substitute(const SymSection& s, const std::string& var,
                      const AffineForm& replacement) {
  SymSection out;
  out.reserve(s.size());
  for (const auto& t : s) out.push_back(substitute(t, var, replacement));
  return out;
}

std::optional<SymTriplet> widen_over_loop(const SymTriplet& t,
                                          const std::string& var,
                                          const AffineForm& loop_lb,
                                          const AffineForm& loop_ub,
                                          int64_t loop_step) {
  int64_t clb = t.lb.coeff(var);
  int64_t cub = t.ub.coeff(var);
  if (clb == 0 && cub == 0) return t;
  if (clb != cub || clb < 0) return std::nullopt;
  SymTriplet out;
  out.lb = substitute(t.lb, var, loop_lb);
  out.ub = substitute(t.ub, var, loop_ub);
  // A singleton v+c widened over a stride-s loop becomes a stride-s
  // triplet; a true range collapses strides to dense (conservative).
  out.step = t.is_singleton() && clb == 1 ? loop_step : 1;
  if (out.step != 1 && t.step != 1) out.step = 1;
  return out;
}

ExprPtr form_to_expr(const AffineForm& f) {
  using namespace build;
  ExprPtr e = num(f.konst);
  for (const auto& [v, c] : f.coeffs) {
    if (c == 0) continue;
    ExprPtr term = c == 1 || c == -1 ? var(v) : mul(num(std::abs(c)), var(v));
    e = c > 0 ? add(std::move(e), std::move(term))
              : sub(std::move(e), std::move(term));
  }
  return simplify(std::move(e));
}

SectionExpr triplet_to_section(const SymTriplet& t) {
  SectionExpr s;
  s.lb = form_to_expr(t.lb);
  s.ub = form_to_expr(t.ub);
  if (t.step != 1) s.step = Expr::make_int(t.step);
  return s;
}

// ---------------------------------------------------------------------------
// Dependence classification
// ---------------------------------------------------------------------------

namespace {

/// Try to prove `f` is strictly positive (> 0) under the loop context by
/// substituting each bounded variable with the extreme that minimizes `f`
/// (f is affine, hence monotone in each variable). Depth-limited to avoid
/// pathological self-referential bounds.
bool provably_positive(const AffineForm& f, const LoopCtx& ctx, int depth = 4) {
  if (f.is_constant()) return f.konst > 0;
  if (depth == 0) return false;
  for (const auto& b : ctx) {
    int64_t c = f.coeff(b.var);
    if (c == 0) continue;
    AffineForm at_min = substitute(f, b.var, c > 0 ? b.lb : b.ub);
    if (at_min.coeff(b.var) != 0) continue;  // bound references itself
    if (provably_positive(at_min, ctx, depth - 1)) return true;
  }
  return false;
}

bool provably_disjoint_ranges(const SymTriplet& a, const SymTriplet& b,
                              const LoopCtx& ctx) {
  // a entirely below b:  b.lb - a.ub > 0, or b entirely below a.
  return provably_positive(b.lb - a.ub, ctx) ||
         provably_positive(a.lb - b.ub, ctx);
}

}  // namespace

DimDistance classify_dim(const SymTriplet& write, const SymTriplet& read,
                         const LoopCtx& ctx, const std::string& crossing_var) {
  const bool w_single = write.is_singleton();
  const bool r_single = read.is_singleton();

  if (w_single && r_single) {
    AffineForm diff = write.lb - read.lb;
    const int64_t wc = write.lb.coeff(crossing_var);
    const int64_t rc = read.lb.coeff(crossing_var);
    if (diff.is_constant()) {
      if (wc == 0 && rc == 0) {
        // Elements independent of the crossing loop: never equal, or equal
        // at *every* iteration distance.
        return diff.konst != 0 ? DimDistance::disjoint() : DimDistance::any();
      }
      if (wc == rc) {
        // Both track the crossing variable identically. The element
        // written at iteration (e - cw)/wc is read at (e - cr)/wc; the
        // distance (read - write) is (cw - cr)/wc = diff/wc.
        if (diff.konst % wc != 0) return DimDistance::disjoint();
        return DimDistance::fixed(diff.konst / wc);
      }
      // diff constant with wc != rc cannot happen (the variable would
      // remain in diff); fall through conservatively.
      return DimDistance::any();
    }
    // Non-constant difference: range reasoning is sound as long as at
    // most one side varies with the crossing loop — the loop bounds hold
    // for every iteration, so a provably non-zero difference separates
    // the elements across all iteration pairs (e.g. column j in [k+1,n]
    // never equals the fixed column k). When both sides track the
    // crossing variable with different coefficients, instances from
    // different iterations can still collide: stay conservative.
    if (wc == 0 || rc == 0) {
      if (provably_positive(diff, ctx) ||
          provably_positive(read.lb - write.lb, ctx))
        return DimDistance::disjoint();
    }
    return DimDistance::any();
  }

  // Range forms: only disjointness is provable.
  if (provably_disjoint_ranges(write, read, ctx)) return DimDistance::disjoint();
  return DimDistance::any();
}

bool blocks_hoist(const SymSection& write_sec, const SymSection& read_sec,
                  const LoopCtx& ctx, const std::string& crossing_var,
                  bool write_lexically_first) {
  if (write_sec.size() != read_sec.size()) return true;  // reshaped: be safe

  // Intersect the per-dimension distance constraints.
  bool have_fixed = false;
  int64_t fixed = 0;
  for (size_t d = 0; d < write_sec.size(); ++d) {
    DimDistance dd = classify_dim(write_sec[d], read_sec[d], ctx, crossing_var);
    switch (dd.kind) {
      case DimDistance::Disjoint:
        return false;  // no dependence at all
      case DimDistance::Fixed:
        if (have_fixed && fixed != dd.dist) return false;  // inconsistent
        have_fixed = true;
        fixed = dd.dist;
        break;
      case DimDistance::Unconstrained:
        break;
    }
  }
  if (!have_fixed) {
    // Any distance possible. Without a crossing loop this is simply "the
    // elements may coincide": program order decides. Across a loop, a
    // positive distance (true dependence) cannot be excluded: block.
    return crossing_var.empty() ? write_lexically_first : true;
  }
  if (fixed > 0) return true;            // flow dependence carried: block
  if (fixed < 0) return false;           // anti: old values are correct
  return write_lexically_first;          // loop-independent: order decides
}

// ---------------------------------------------------------------------------
// CommEvent
// ---------------------------------------------------------------------------

std::string CommEvent::str() const {
  switch (kind) {
    case Kind::Shift:
      return "shift(" + array + ",dim" + std::to_string(dist_dim) + "," +
             std::to_string(shift) + "," + sym_section_str(section) + ")";
    case Kind::Bcast:
      return "bcast(" + array + "," + sym_section_str(section) + ",root@" +
             root_index.str() + ")";
    case Kind::ScalarBcast:
      return "sbcast(" + scalar + ",root@" + root_index.str() + ")";
  }
  return "?";
}

bool CommEvent::same_message(const CommEvent& o) const {
  return kind == o.kind && array == o.array && dist_dim == o.dist_dim &&
         shift == o.shift && scalar == o.scalar &&
         root_index.str() == o.root_index.str() &&
         sym_section_str(section) == sym_section_str(o.section);
}

std::optional<CommEvent> classify_reference(
    const Expr& ref, const ArrayDistribution& ref_dist,
    const IterationSet& iter_set,
    const std::optional<ArrayDistribution>& lhs_dist, const SymbolicEnv& env,
    bool* needs_runtime) {
  *needs_runtime = false;
  if (ref_dist.replicated_p()) return std::nullopt;
  int e = ref_dist.dist_dim();
  if (e == -2 || e >= static_cast<int>(ref.args.size())) {
    *needs_runtime = true;
    return std::nullopt;
  }

  auto sub_form = extract_affine(*ref.args[static_cast<size_t>(e)], env.consts);
  if (!sub_form) {
    *needs_runtime = true;
    return std::nullopt;
  }

  // Build the full symbolic section of the reference.
  SymSection section;
  for (size_t d = 0; d < ref.args.size(); ++d) {
    auto f = extract_affine(*ref.args[d], env.consts);
    if (!f) {
      // Unanalyzable subscript: the section cannot be described.
      *needs_runtime = true;
      return std::nullopt;
    }
    section.push_back(SymTriplet::single(*f));
  }

  const auto& svars = sub_form->vars();

  if (iter_set.is_constrained() && iter_set.constraint.uses_var()) {
    const OwnershipConstraint& c = iter_set.constraint;
    if (svars.size() == 1 && svars[0] == c.var && sub_form->coeff(c.var) == 1) {
      // Same induction variable governs ownership and the reference: the
      // displacement decides locality.
      // Executing processor owns (v + c.offset) along the lhs array's
      // distributed dim; it touches (v + sub_form.konst) of this array.
      bool same_layout = false;
      if (lhs_dist && !lhs_dist->replicated_p()) {
        int d = lhs_dist->dist_dim();
        if (d >= 0 && lhs_dist->array() == c.array) {
          DimDistribution a = lhs_dist->dim(d);
          DimDistribution b = ref_dist.dim(e);
          same_layout = a.kind() == b.kind() && a.glb() == b.glb() &&
                        a.gub() == b.gub();
        }
      }
      if (!same_layout) {
        *needs_runtime = true;
        return std::nullopt;
      }
      int64_t shift = sub_form->konst - c.offset;
      if (shift == 0) return std::nullopt;  // fully local
      if (ref_dist.dim(e).kind() != DistKind::Block) {
        // Shifts under CYCLIC / BLOCK_CYCLIC wrap around processors; we
        // fall back to run-time resolution for those (documented).
        *needs_runtime = true;
        return std::nullopt;
      }
      if (std::abs(shift) > ref_dist.dim(e).block_size()) {
        // The shifted section spans more than the immediate neighbor;
        // the nearest-neighbor send/recv pattern does not apply.
        *needs_runtime = true;
        return std::nullopt;
      }
      CommEvent ev;
      ev.loc = ref.loc;
      ev.kind = CommEvent::Kind::Shift;
      ev.array = ref_dist.array();
      ev.spec = ref_dist.spec();
      ev.dist_dim = e;
      ev.shift = shift;
      ev.section = std::move(section);
      return ev;
    }
    if (sub_form->coeff(c.var) == 0) {
      // Loop-invariant distributed-dim subscript while ownership varies
      // with v: every executing processor may need the section; its owner
      // broadcasts (pivot-column pattern).
      CommEvent ev;
      ev.loc = ref.loc;
      ev.kind = CommEvent::Kind::Bcast;
      ev.array = ref_dist.array();
      ev.spec = ref_dist.spec();
      ev.dist_dim = e;
      ev.root_index = *sub_form;
      ev.section = std::move(section);
      return ev;
    }
    *needs_runtime = true;
    return std::nullopt;
  }

  if (iter_set.is_constrained() && !iter_set.constraint.uses_var()) {
    // Fixed owner guard: the executing processor is owner(fixed) along the
    // lhs distribution. If the reference's distributed subscript equals
    // the guard's subscript on the same layout, the access is local.
    const OwnershipConstraint& c = iter_set.constraint;
    if (lhs_dist && lhs_dist->array() == c.array) {
      int d = lhs_dist->dist_dim();
      if (d >= 0) {
        DimDistribution a = lhs_dist->dim(d);
        DimDistribution b = ref_dist.dim(e);
        bool same_layout = a.kind() == b.kind() && a.glb() == b.glb() &&
                           a.gub() == b.gub();
        AffineForm diff = *sub_form - c.fixed;
        if (same_layout && diff.is_constant() && diff.konst == 0)
          return std::nullopt;  // owner reads its own element
      }
    }
    CommEvent ev;
    ev.loc = ref.loc;
    ev.kind = CommEvent::Kind::Bcast;
    ev.array = ref_dist.array();
    ev.spec = ref_dist.spec();
    ev.dist_dim = e;
    ev.root_index = *sub_form;
    ev.section = std::move(section);
    return ev;
  }

  // Universal iteration set (replicated lhs / scalar): all processors need
  // the data. A single-owner section broadcasts; anything wider needs
  // run-time resolution.
  if (svars.empty() ||
      (svars.size() == 1 && !env.ranges.count(svars[0]))) {
    CommEvent ev;
    ev.loc = ref.loc;
    ev.kind = CommEvent::Kind::Bcast;
    ev.array = ref_dist.array();
    ev.spec = ref_dist.spec();
    ev.dist_dim = e;
    ev.root_index = *sub_form;
    ev.section = std::move(section);
    return ev;
  }
  *needs_runtime = true;
  return std::nullopt;
}

}  // namespace fortd
