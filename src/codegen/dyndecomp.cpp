#include "codegen/dyndecomp.hpp"

#include <algorithm>
#include <functional>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"

namespace fortd {

namespace {

bool is_remap(const Stmt& s) {
  return s.kind == StmtKind::Remap || s.kind == StmtKind::MarkDist;
}

/// Does this statement (including nested bodies) reference the array —
/// i.e. "use" its current decomposition?
bool uses_array(const Stmt& s, const std::string& array) {
  if (is_remap(s)) return false;
  bool used = false;
  for_each_expr(s, [&](const Expr& e) {
    if ((e.kind == ExprKind::ArrayRef || e.kind == ExprKind::VarRef) &&
        e.name == array)
      used = true;
  });
  if (used) return true;
  for (const auto& list : {&s.then_body, &s.else_body, &s.body})
    for (const auto& inner : *list)
      if (uses_array(*inner, array)) return true;
  return false;
}

std::string spec_key(const std::vector<DistSpec>& specs) {
  std::string k;
  for (const auto& d : specs) k += d.str() + ",";
  return k;
}

// ---------------------------------------------------------------------------
// Pass 1: dead-remap elimination (live decompositions, backward may)
// ---------------------------------------------------------------------------

int eliminate_dead_remaps(Procedure& proc, CompileStats& stats) {
  // Arrays of interest: those that are remapped.
  std::vector<std::string> arrays;
  walk_stmts(proc.body, [&](const Stmt& s) {
    if (is_remap(s) &&
        std::find(arrays.begin(), arrays.end(), s.dist_target) == arrays.end())
      arrays.push_back(s.dist_target);
  });
  if (arrays.empty()) return 0;

  Cfg cfg = Cfg::build(proc);
  const int n = static_cast<int>(arrays.size());
  auto idx_of = [&](const std::string& a) {
    return static_cast<int>(std::find(arrays.begin(), arrays.end(), a) -
                            arrays.begin());
  };

  // Backward may problem: fact i live = "array i is used before being
  // remapped on some path forward".
  DataflowProblem problem;
  problem.num_facts = n;
  problem.forward = false;
  problem.may = true;
  problem.gen.assign(static_cast<size_t>(cfg.size()), BitSet(n));
  problem.kill.assign(static_cast<size_t>(cfg.size()), BitSet(n));
  problem.boundary = BitSet(n);
  for (const auto& blk : cfg.blocks()) {
    BitSet gen(n), kill(n);
    // Backward: process the block's statements in reverse.
    for (auto it = blk.stmts.rbegin(); it != blk.stmts.rend(); ++it) {
      const Stmt* s = *it;
      if (is_remap(*s)) {
        int i = idx_of(s->dist_target);
        if (i < n) {
          kill.set(i);
          gen.reset(i);
        }
      } else {
        for (int i = 0; i < n; ++i)
          if (uses_array(*s, arrays[static_cast<size_t>(i)])) gen.set(i);
      }
    }
    problem.gen[static_cast<size_t>(blk.id)] = std::move(gen);
    problem.kill[static_cast<size_t>(blk.id)] = std::move(kill);
  }
  DataflowResult res = solve_dataflow(cfg, problem);

  // For each remap, compute liveness immediately after it.
  std::vector<const Stmt*> dead;
  for (const auto& blk : cfg.blocks()) {
    // res.in[b] holds the facts at the block *end* (backward problem).
    BitSet live = res.in[static_cast<size_t>(blk.id)];
    for (auto it = blk.stmts.rbegin(); it != blk.stmts.rend(); ++it) {
      const Stmt* s = *it;
      if (is_remap(*s)) {
        int i = idx_of(s->dist_target);
        if (i < n && !live.get(i)) dead.push_back(s);
        if (i < n) live.reset(i);
      } else {
        for (int i = 0; i < n; ++i)
          if (uses_array(*s, arrays[static_cast<size_t>(i)])) live.set(i);
      }
    }
  }

  // Remove dead remaps from the AST.
  std::function<void(std::vector<StmtPtr>&)> prune =
      [&](std::vector<StmtPtr>& stmts) {
        stmts.erase(std::remove_if(stmts.begin(), stmts.end(),
                                   [&](const StmtPtr& s) {
                                     return std::find(dead.begin(), dead.end(),
                                                      s.get()) != dead.end();
                                   }),
                    stmts.end());
        for (auto& s : stmts) {
          prune(s->then_body);
          prune(s->else_body);
          prune(s->body);
        }
      };
  prune(proc.body);
  stats.remaps_eliminated_dead += static_cast<int>(dead.size());
  return static_cast<int>(dead.size());
}

// ---------------------------------------------------------------------------
// Pass 2: coalesce remaps whose target decomposition already reaches them
// ---------------------------------------------------------------------------

int coalesce_remaps(Procedure& proc, CompileStats& stats) {
  // Forward "current spec" analysis. Values per array: set of spec keys
  // ("?" = unknown initial).
  Cfg cfg = Cfg::build(proc);
  using State = std::map<std::string, std::set<std::string>>;
  std::vector<State> in(static_cast<size_t>(cfg.size()));
  std::vector<State> out(static_cast<size_t>(cfg.size()));
  in[static_cast<size_t>(cfg.entry())] = {};

  auto transfer = [&](const BasicBlock& blk, State st) {
    for (const Stmt* s : blk.stmts)
      if (is_remap(*s)) st[s->dist_target] = {spec_key(s->dist_specs)};
    return st;
  };
  auto merge = [](State& into, const State& from) {
    bool changed = false;
    for (const auto& [a, specs] : from)
      for (const auto& k : specs)
        if (into[a].insert(k).second) changed = true;
    return changed;
  };

  bool changed = true;
  auto order = cfg.reverse_postorder();
  while (changed) {
    changed = false;
    for (int b : order) {
      const BasicBlock& blk = cfg.block(b);
      State meet;
      for (int p : blk.preds) merge(meet, out[static_cast<size_t>(p)]);
      // A predecessor with no entry for an array implicitly carries the
      // initial/unknown spec "?" along that path.
      for (int p : blk.preds) {
        const State& po = out[static_cast<size_t>(p)];
        for (auto& [a, specs] : meet)
          if (!po.count(a)) specs.insert("?");
      }
      State next_out = transfer(blk, meet);
      if (!(next_out == out[static_cast<size_t>(b)]) ||
          !(meet == in[static_cast<size_t>(b)])) {
        in[static_cast<size_t>(b)] = std::move(meet);
        out[static_cast<size_t>(b)] = std::move(next_out);
        changed = true;
      }
    }
  }

  // A remap is redundant when the only spec reaching it equals its target.
  std::vector<const Stmt*> redundant;
  for (const auto& blk : cfg.blocks()) {
    State st = in[static_cast<size_t>(blk.id)];
    for (const Stmt* s : blk.stmts) {
      if (is_remap(*s)) {
        auto it = st.find(s->dist_target);
        if (it != st.end() && it->second.size() == 1 &&
            *it->second.begin() == spec_key(s->dist_specs))
          redundant.push_back(s);
        st[s->dist_target] = {spec_key(s->dist_specs)};
      }
    }
  }

  std::function<void(std::vector<StmtPtr>&)> prune =
      [&](std::vector<StmtPtr>& stmts) {
        stmts.erase(std::remove_if(stmts.begin(), stmts.end(),
                                   [&](const StmtPtr& s) {
                                     return std::find(redundant.begin(),
                                                      redundant.end(),
                                                      s.get()) != redundant.end();
                                   }),
                    stmts.end());
        for (auto& s : stmts) {
          prune(s->then_body);
          prune(s->else_body);
          prune(s->body);
        }
      };
  prune(proc.body);
  stats.remaps_coalesced += static_cast<int>(redundant.size());
  return static_cast<int>(redundant.size());
}

// ---------------------------------------------------------------------------
// Pass 3: loop-invariant remap hoisting
// ---------------------------------------------------------------------------

int hoist_remaps_in_list(std::vector<StmtPtr>& stmts, CompileStats& stats);

int hoist_loop(std::vector<StmtPtr>& parent, size_t loop_pos,
               CompileStats& stats) {
  Stmt& loop = *parent[loop_pos];
  int moved = 0;

  // (a) Move-after: a remap whose definition reaches no use inside the
  // loop body (scanning forward then around the back edge).
  for (size_t i = 0; i < loop.body.size();) {
    Stmt& s = *loop.body[i];
    if (!is_remap(s)) {
      ++i;
      continue;
    }
    const std::string& arr = s.dist_target;
    bool reaches_use = false;
    for (size_t j = i + 1; j < loop.body.size(); ++j) {
      if (is_remap(*loop.body[j]) && loop.body[j]->dist_target == arr) break;
      if (uses_array(*loop.body[j], arr)) {
        reaches_use = true;
        break;
      }
    }
    if (!reaches_use) {
      // Around the back edge: from body start down to (not including) the
      // remap, stopping at another remap of the array.
      for (size_t j = 0; j < i; ++j) {
        if (is_remap(*loop.body[j]) && loop.body[j]->dist_target == arr) break;
        if (uses_array(*loop.body[j], arr)) {
          reaches_use = true;
          break;
        }
      }
    }
    if (!reaches_use) {
      StmtPtr r = std::move(loop.body[static_cast<size_t>(i)]);
      loop.body.erase(loop.body.begin() + static_cast<long>(i));
      parent.insert(parent.begin() + static_cast<long>(loop_pos) + 1,
                    std::move(r));
      ++moved;
      ++stats.remaps_hoisted;
      continue;  // same index now holds the next statement
    }
    ++i;
  }

  // (b) Move-before: the only remap of its array in the body, with no use
  // of the array before it in the body.
  for (size_t i = 0; i < loop.body.size();) {
    Stmt& s = *loop.body[i];
    if (!is_remap(s)) {
      ++i;
      continue;
    }
    const std::string& arr = s.dist_target;
    int remap_count = 0;
    for (const auto& t : loop.body)
      if (is_remap(*t) && t->dist_target == arr) ++remap_count;
    bool use_before = false;
    for (size_t j = 0; j < i; ++j)
      if (uses_array(*loop.body[j], arr)) use_before = true;
    if (remap_count == 1 && !use_before) {
      StmtPtr r = std::move(loop.body[static_cast<size_t>(i)]);
      loop.body.erase(loop.body.begin() + static_cast<long>(i));
      parent.insert(parent.begin() + static_cast<long>(loop_pos),
                    std::move(r));
      ++loop_pos;  // the loop shifted right
      ++moved;
      ++stats.remaps_hoisted;
      continue;
    }
    ++i;
  }
  return moved;
}

int hoist_remaps_in_list(std::vector<StmtPtr>& stmts, CompileStats& stats) {
  int moved = 0;
  // Bottom-up: inner structures first.
  for (auto& s : stmts) {
    moved += hoist_remaps_in_list(s->then_body, stats);
    moved += hoist_remaps_in_list(s->else_body, stats);
    moved += hoist_remaps_in_list(s->body, stats);
  }
  for (size_t i = 0; i < stmts.size(); ++i)
    if (stmts[i]->kind == StmtKind::Do) moved += hoist_loop(stmts, i, stats);
  return moved;
}

// ---------------------------------------------------------------------------
// Pass 4: array kills — remap in place (MarkDist)
// ---------------------------------------------------------------------------

const Stmt* next_access(const std::vector<StmtPtr>& stmts, size_t from,
                        const std::string& array) {
  for (size_t j = from; j < stmts.size(); ++j) {
    const Stmt& s = *stmts[j];
    if (is_remap(s) && s.dist_target == array) return &s;
    if (s.kind == StmtKind::Do || s.kind == StmtKind::If) {
      for (const auto* list : {&s.then_body, &s.else_body, &s.body}) {
        const Stmt* a = next_access(*list, 0, array);
        if (a) return a;
      }
      continue;
    }
    if (uses_array(s, array)) return &s;
  }
  return nullptr;
}

int apply_array_kills(std::vector<StmtPtr>& stmts,
                      const std::map<std::string, ArrayKillSummary>& kills,
                      CompileStats& stats) {
  int marked = 0;
  for (size_t i = 0; i < stmts.size(); ++i) {
    Stmt& s = *stmts[i];
    marked += apply_array_kills(s.then_body, kills, stats);
    marked += apply_array_kills(s.else_body, kills, stats);
    marked += apply_array_kills(s.body, kills, stats);
    if (s.kind != StmtKind::Remap) continue;
    const Stmt* acc = next_access(stmts, i + 1, s.dist_target);
    if (!acc || acc->kind != StmtKind::Call) continue;
    auto kit = kills.find(acc->callee);
    if (kit == kills.end()) continue;
    const ArrayKillSummary& ks = kit->second;
    bool killed = ks.killed_globals.count(s.dist_target) > 0;
    for (int fi : ks.killed_formals) {
      if (fi < static_cast<int>(acc->call_args.size()) &&
          acc->call_args[static_cast<size_t>(fi)]->kind == ExprKind::VarRef &&
          acc->call_args[static_cast<size_t>(fi)]->name == s.dist_target)
        killed = true;
    }
    if (killed) {
      s.kind = StmtKind::MarkDist;
      ++marked;
      ++stats.remaps_marked_in_place;
    }
  }
  return marked;
}

}  // namespace

void optimize_dynamic_decomps(SpmdProgram& program, DynDecompOpt level,
                              const std::map<std::string, ArrayKillSummary>& kills) {
  if (level == DynDecompOpt::None) return;
  for (auto& proc : program.ast.procedures) {
    eliminate_dead_remaps(*proc, program.stats);
    coalesce_remaps(*proc, program.stats);
    if (level == DynDecompOpt::LiveInvariant || level == DynDecompOpt::Full) {
      hoist_remaps_in_list(proc->body, program.stats);
      // Hoisting can expose new dead/duplicate remaps.
      eliminate_dead_remaps(*proc, program.stats);
      coalesce_remaps(*proc, program.stats);
    }
    if (level == DynDecompOpt::Full)
      apply_array_kills(proc->body, kills, program.stats);
  }
}

}  // namespace fortd
