#include "codegen/storage.hpp"

#include <algorithm>

#include "codegen/codegen.hpp"

namespace fortd {

int64_t SpmdProgram::main_local_words() const {
  const Procedure* m = main();
  if (!m) return 0;
  auto it = storage.find(m->name);
  if (it == storage.end()) return 0;
  int64_t words = 0;
  for (const auto& info : it->second) words += info.local_words();
  return words;
}

std::vector<ArrayStorageInfo> compute_storage(const CodeGenerator& cg,
                                              const Procedure& proc,
                                              const ProcExports& exports,
                                              CompileStats& stats) {
  const SymbolTable& st = cg.program().symtab(proc.name);
  const OverlapEstimates& est = cg.overlaps();
  const int nprocs = cg.options().n_procs;

  std::vector<ArrayStorageInfo> infos;
  for (const std::string& name : st.array_names()) {
    const Symbol* sym = st.lookup(name);
    if (!sym->dims_const) continue;
    ArrayStorageInfo info;
    info.array = name;
    auto spec = cg.ipa().reaching.unique_spec(proc.name, name);
    if (spec) info.spec = *spec;

    ArrayDistribution ad(name, info.spec, sym->dims, nprocs);
    info.dist_dim = ad.dist_dim();
    if (info.dist_dim < 0) {
      // Replicated: every processor holds the whole array.
      info.local_extent = 1;
      info.other_extent = 1;
      for (int d = 0; d < sym->rank(); ++d) info.other_extent *= sym->extent(d);
      infos.push_back(std::move(info));
      continue;
    }

    DimDistribution dd = ad.dim(info.dist_dim);
    int64_t max_local = 0;
    for (int p = 0; p < nprocs; ++p)
      max_local = std::max(max_local, dd.local_count(p));
    info.local_extent = max_local;
    info.other_extent = 1;
    for (int d = 0; d < sym->rank(); ++d)
      if (d != info.dist_dim) info.other_extent *= sym->extent(d);

    // Actual overlap demand from shift communication seen while compiling
    // this procedure.
    auto dit = exports.shift_demand.find(name);
    if (dit != exports.shift_demand.end()) {
      info.overlap_lo = dit->second.first;
      info.overlap_hi = dit->second.second;
    }
    // Interprocedural estimate along the distributed dimension.
    const OverlapOffsets* ov = est.lookup(proc.name, name);
    if (ov && info.dist_dim < static_cast<int>(ov->pos.size())) {
      info.est_hi = ov->pos[static_cast<size_t>(info.dist_dim)];
      info.est_lo = ov->neg[static_cast<size_t>(info.dist_dim)];
    }
    if (cg.options().prefer_buffers ||
        info.overlap_hi > info.est_hi || info.overlap_lo > info.est_lo) {
      info.used_buffer = true;
      ++stats.buffers_used;
    }
    info.parameterized = cg.options().parameterized_overlaps &&
                         sym->formal_index >= 0 &&
                         (info.overlap_lo > 0 || info.overlap_hi > 0);
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace fortd
