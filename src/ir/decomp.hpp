// DecompSpec: the value-level form of a Fortran D data decomposition as it
// applies to one array — the per-array-dimension distribution obtained by
// composing the array's alignment with its decomposition's distribution.
//
// Example (Fig. 4 of the paper):
//   ALIGN Y(i,j) WITH X(j,i) ; DISTRIBUTE X(BLOCK,:)
// gives X the spec (BLOCK,:) and Y the spec (:,BLOCK).
//
// The reaching-decompositions lattice element ⊤ ("inherited from caller,
// unknown locally") is represented by `is_top`.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace fortd {

struct DecompSpec {
  std::vector<DistSpec> dists;  // one per array dimension
  bool is_top = false;

  static DecompSpec top() {
    DecompSpec s;
    s.is_top = true;
    return s;
  }

  bool operator==(const DecompSpec&) const = default;
  bool operator<(const DecompSpec& o) const { return key() < o.key(); }

  /// Number of distributed dimensions.
  int distributed_dims() const {
    int n = 0;
    for (const auto& d : dists)
      if (d.kind != DistKind::None) ++n;
    return n;
  }

  /// Index of the single distributed dimension, or -1 when none/many.
  int single_distributed_dim() const {
    int found = -1;
    for (size_t d = 0; d < dists.size(); ++d) {
      if (dists[d].kind == DistKind::None) continue;
      if (found >= 0) return -1;
      found = static_cast<int>(d);
    }
    return found;
  }

  std::string str() const {
    if (is_top) return "<top>";
    std::string s = "(";
    for (size_t i = 0; i < dists.size(); ++i) {
      if (i) s += ",";
      s += dists[i].str();
    }
    return s + ")";
  }

private:
  std::string key() const { return is_top ? "\x01top" : str(); }
};

}  // namespace fortd
