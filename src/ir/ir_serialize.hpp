// Binary (de)serialization of IR value types shared by the persistent
// artifact codecs: regular sections (Triplet/Rsd/RsdList) and
// decomposition specs. Same conventions as frontend/ast_serialize.hpp:
// writers are exact, readers set the BinaryReader fail bit on malformed
// input instead of throwing.
#pragma once

#include "frontend/ast_serialize.hpp"
#include "ir/decomp.hpp"
#include "ir/rsd.hpp"

namespace fortd {

void write_triplet(BinaryWriter& w, const Triplet& t);
void write_rsd(BinaryWriter& w, const Rsd& r);
void write_rsd_list(BinaryWriter& w, const RsdList& l);
void write_decomp_spec(BinaryWriter& w, const DecompSpec& d);

Triplet read_triplet(BinaryReader& r);
Rsd read_rsd(BinaryReader& r);
RsdList read_rsd_list(BinaryReader& r);
DecompSpec read_decomp_spec(BinaryReader& r);

}  // namespace fortd
