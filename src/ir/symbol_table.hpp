// Per-procedure symbol tables with constant-evaluated array bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "frontend/ast.hpp"
#include "ir/rsd.hpp"

namespace fortd {

enum class SymbolKind { Scalar, Array, Decomposition, Param };

struct Symbol {
  std::string name;
  SymbolKind kind = SymbolKind::Scalar;
  ElemType type = ElemType::Real;
  /// Declared bounds per dimension (lb, ub), constant-evaluated.
  /// Dimensions whose bounds are not compile-time constants are recorded
  /// as (1, -1) and flagged via `dims_const`.
  std::vector<std::pair<int64_t, int64_t>> dims;
  bool dims_const = true;
  int formal_index = -1;           // >= 0 when this is a formal parameter
  std::string common_block;        // non-empty when in a COMMON block
  int64_t param_value = 0;         // Param only

  bool is_array() const { return kind == SymbolKind::Array; }
  bool is_global() const { return !common_block.empty(); }
  int rank() const { return static_cast<int>(dims.size()); }
  /// Declared extent of a dimension (ub - lb + 1).
  int64_t extent(int d) const;
  /// The full declared index space as an RSD.
  Rsd full_section() const;
};

class SymbolTable {
public:
  const Symbol* lookup(const std::string& name) const;
  Symbol* lookup(const std::string& name);
  void insert(Symbol sym);
  const std::unordered_map<std::string, Symbol>& all() const { return table_; }

  /// Names of all array symbols, sorted for deterministic iteration.
  std::vector<std::string> array_names() const;

private:
  std::unordered_map<std::string, Symbol> table_;
};

/// Fold an integer-valued expression with the given environment of known
/// scalar values. Returns nullopt when the expression involves unknown
/// names, reals, or non-arithmetic operators.
std::optional<int64_t> try_eval_int(
    const Expr& e, const std::unordered_map<std::string, int64_t>& env);

/// Build the symbol table for one procedure: evaluates PARAMETER constants
/// and array bounds, classifies formals/commons. Throws CompileError on
/// redeclaration conflicts.
SymbolTable build_symbol_table(const Procedure& proc, DiagnosticEngine& diags);

}  // namespace fortd
