#include "ir/ir_serialize.hpp"

namespace fortd {

void write_triplet(BinaryWriter& w, const Triplet& t) {
  w.i64(t.lb);
  w.i64(t.ub);
  w.i64(t.step);
}

Triplet read_triplet(BinaryReader& r) {
  // Field-exact: bypass the normalizing constructor so round-tripping
  // preserves the stored representation bit for bit.
  Triplet t;
  t.lb = r.i64();
  t.ub = r.i64();
  t.step = r.i64();
  if (t.step == 0) r.fail();  // never produced by Triplet's constructor
  return t;
}

void write_rsd(BinaryWriter& w, const Rsd& rsd) {
  w.count(rsd.dims().size());
  for (const Triplet& t : rsd.dims()) write_triplet(w, t);
}

Rsd read_rsd(BinaryReader& r) {
  std::vector<Triplet> dims(r.count());
  for (Triplet& t : dims) t = read_triplet(r);
  return Rsd(std::move(dims));
}

void write_rsd_list(BinaryWriter& w, const RsdList& l) {
  w.count(l.sections().size());
  for (const Rsd& rsd : l.sections()) write_rsd(w, rsd);
}

RsdList read_rsd_list(BinaryReader& r) {
  RsdList out;
  size_t n = r.count();
  // add() (not add_coalescing): restore the stored sections verbatim.
  for (size_t i = 0; i < n; ++i) out.add(read_rsd(r));
  return out;
}

void write_decomp_spec(BinaryWriter& w, const DecompSpec& d) {
  w.boolean(d.is_top);
  write_dist_specs(w, d.dists);
}

DecompSpec read_decomp_spec(BinaryReader& r) {
  DecompSpec d;
  d.is_top = r.boolean();
  d.dists = read_dist_specs(r);
  return d;
}

}  // namespace fortd
