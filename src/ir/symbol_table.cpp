#include "ir/symbol_table.hpp"

#include <algorithm>

namespace fortd {

int64_t Symbol::extent(int d) const {
  auto [lb, ub] = dims[static_cast<size_t>(d)];
  return ub - lb + 1;
}

Rsd Symbol::full_section() const { return Rsd::dense(dims); }

const Symbol* SymbolTable::lookup(const std::string& name) const {
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

Symbol* SymbolTable::lookup(const std::string& name) {
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

void SymbolTable::insert(Symbol sym) { table_[sym.name] = std::move(sym); }

std::vector<std::string> SymbolTable::array_names() const {
  std::vector<std::string> names;
  for (const auto& [name, sym] : table_)
    if (sym.is_array()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::optional<int64_t> try_eval_int(
    const Expr& e, const std::unordered_map<std::string, int64_t>& env) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return e.int_val;
    case ExprKind::VarRef: {
      auto it = env.find(e.name);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case ExprKind::Unary: {
      if (e.un_op != UnOp::Neg) return std::nullopt;
      auto v = try_eval_int(*e.args[0], env);
      if (!v) return std::nullopt;
      return -*v;
    }
    case ExprKind::Binary: {
      auto l = try_eval_int(*e.args[0], env);
      auto r = try_eval_int(*e.args[1], env);
      if (!l || !r) return std::nullopt;
      switch (e.bin_op) {
        case BinOp::Add: return *l + *r;
        case BinOp::Sub: return *l - *r;
        case BinOp::Mul: return *l * *r;
        case BinOp::Div:
          if (*r == 0) return std::nullopt;
          return *l / *r;
        default: return std::nullopt;
      }
    }
    case ExprKind::FuncCall: {
      // Fold the intrinsics codegen emits into bounds expressions.
      if (e.name == "min" || e.name == "max") {
        std::optional<int64_t> acc;
        for (const auto& a : e.args) {
          auto v = try_eval_int(*a, env);
          if (!v) return std::nullopt;
          if (!acc)
            acc = *v;
          else
            acc = e.name == "min" ? std::min(*acc, *v) : std::max(*acc, *v);
        }
        return acc;
      }
      if (e.name == "mod" && e.args.size() == 2) {
        auto l = try_eval_int(*e.args[0], env);
        auto r = try_eval_int(*e.args[1], env);
        if (!l || !r || *r == 0) return std::nullopt;
        return *l % *r;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

SymbolTable build_symbol_table(const Procedure& proc, DiagnosticEngine& diags) {
  SymbolTable table;
  std::unordered_map<std::string, int64_t> env;

  // PARAMETER constants first: they may appear in later bounds.
  for (const auto& pc : proc.params) {
    auto v = try_eval_int(*pc.value, env);
    if (!v)
      diags.error(pc.value->loc,
                  "PARAMETER '" + pc.name + "' is not a compile-time constant");
    env[pc.name] = *v;
    Symbol sym;
    sym.name = pc.name;
    sym.kind = SymbolKind::Param;
    sym.type = ElemType::Integer;
    sym.param_value = *v;
    table.insert(std::move(sym));
  }

  for (const auto& decl : proc.decls) {
    Symbol sym;
    sym.name = decl.name;
    sym.type = decl.type;
    sym.kind = decl.is_decomposition ? SymbolKind::Decomposition
               : decl.dims.empty()   ? SymbolKind::Scalar
                                     : SymbolKind::Array;
    for (const auto& dim : decl.dims) {
      int64_t lb = 1;
      bool ok = true;
      if (dim.lb) {
        auto v = try_eval_int(*dim.lb, env);
        if (v)
          lb = *v;
        else
          ok = false;
      }
      int64_t ub = -1;
      auto v = try_eval_int(*dim.ub, env);
      if (v)
        ub = *v;
      else
        ok = false;
      if (!ok) {
        sym.dims_const = false;
        sym.dims.emplace_back(1, -1);
      } else {
        sym.dims.emplace_back(lb, ub);
      }
    }
    sym.formal_index = proc.formal_index(decl.name);
    table.insert(std::move(sym));
  }

  // Formals without explicit declarations default to integer scalars
  // (Fortran implicit-style, restricted to scalars).
  for (size_t i = 0; i < proc.formals.size(); ++i) {
    if (table.lookup(proc.formals[i])) continue;
    Symbol sym;
    sym.name = proc.formals[i];
    sym.kind = SymbolKind::Scalar;
    sym.type = ElemType::Integer;
    sym.formal_index = static_cast<int>(i);
    table.insert(std::move(sym));
  }

  for (const auto& blk : proc.commons) {
    for (const auto& var : blk.vars) {
      Symbol* sym = table.lookup(var);
      if (!sym)
        diags.error({}, "COMMON variable '" + var + "' has no declaration in '" +
                            proc.name + "'");
      sym->common_block = blk.name;
    }
  }
  return table;
}

}  // namespace fortd
