// Regular Section Descriptors (RSDs) [Callahan & Kennedy; Havlak & Kennedy].
//
// The Fortran D compiler represents index sets (collections of data) and
// iteration sets (collections of loop iterations) as RSDs: per-dimension
// triplets lb:ub:step in Fortran 90 notation. This file implements the
// *value-level* algebra over integer triplets — intersection, exact or
// conservative subtraction, merging, translation — used by data
// partitioning, communication analysis, overlap calculation, the run-time
// resolution baseline, and the machine simulator.
//
// Conservativeness contract: operations that cannot produce an exact
// result over-approximate (never under-approximate) and report
// inexactness where the caller needs to know. Over-approximating a
// nonlocal index set causes extra communication, never incorrect results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fortd {

/// One dimension of a regular section: the integers
/// {lb, lb+step, ..., <= ub}. Normalized so that ub is exactly the last
/// member (or lb-1 for a canonical empty triplet).
struct Triplet {
  int64_t lb = 1;
  int64_t ub = 0;
  int64_t step = 1;

  Triplet() = default;
  Triplet(int64_t lb_, int64_t ub_, int64_t step_ = 1);

  static Triplet empty_range() { return Triplet(1, 0, 1); }
  static Triplet single(int64_t v) { return Triplet(v, v, 1); }

  bool empty() const { return lb > ub; }
  int64_t count() const { return empty() ? 0 : (ub - lb) / step + 1; }
  bool contains(int64_t v) const;
  /// Does this triplet contain every element of `other`?
  bool contains(const Triplet& other) const;
  bool is_dense() const { return step == 1; }

  /// Exact intersection (always representable as a triplet).
  static Triplet intersect(const Triplet& a, const Triplet& b);

  /// a \ b as disjoint triplets. Exact when b's footprint inside a is a
  /// full-stride subrange; otherwise conservatively returns {a} and sets
  /// *exact=false.
  static std::vector<Triplet> subtract(const Triplet& a, const Triplet& b,
                                       bool* exact = nullptr);

  /// Exact union when representable as a single triplet (adjacent,
  /// overlapping, or interleavable); nullopt otherwise.
  static std::optional<Triplet> merge(const Triplet& a, const Triplet& b);

  Triplet translate(int64_t offset) const;

  bool operator==(const Triplet&) const = default;
  std::string str() const;
};

/// A rectangular regular section: the cross product of per-dimension
/// triplets. An Rsd with any empty dimension is the empty set.
class Rsd {
public:
  Rsd() = default;
  explicit Rsd(std::vector<Triplet> dims) : dims_(std::move(dims)) {}

  /// Dense section [lb1:ub1, lb2:ub2, ...].
  static Rsd dense(const std::vector<std::pair<int64_t, int64_t>>& bounds);
  static Rsd empty_like(const Rsd& shape);

  int rank() const { return static_cast<int>(dims_.size()); }
  const Triplet& dim(int d) const { return dims_[static_cast<size_t>(d)]; }
  Triplet& dim(int d) { return dims_[static_cast<size_t>(d)]; }
  const std::vector<Triplet>& dims() const { return dims_; }

  bool empty() const;
  /// Number of points in the section.
  int64_t size() const;
  bool contains(const std::vector<int64_t>& point) const;
  bool contains(const Rsd& other) const;

  static Rsd intersect(const Rsd& a, const Rsd& b);

  /// a \ b as disjoint sections (exact box decomposition when the
  /// per-dimension subtractions are exact; conservative otherwise).
  static std::vector<Rsd> subtract(const Rsd& a, const Rsd& b,
                                   bool* exact = nullptr);

  /// Exact union when representable as a single Rsd: sections equal in all
  /// dimensions but one whose triplets merge. nullopt otherwise.
  static std::optional<Rsd> merge(const Rsd& a, const Rsd& b);

  Rsd translate(const std::vector<int64_t>& offsets) const;

  /// Enumerate all points (row-major over dimensions) — used by the
  /// simulator and by property tests. Intended for small sections.
  std::vector<std::vector<int64_t>> enumerate() const;

  bool operator==(const Rsd&) const = default;
  std::string str() const;

private:
  std::vector<Triplet> dims_;
};

/// A union-of-sections set with conservative merging, used for summary
/// side-effect sets and communication coalescing.
class RsdList {
public:
  void add(Rsd r);
  /// Add, merging with an existing section when an exact merge exists.
  void add_coalescing(Rsd r);
  bool contains_point(const std::vector<int64_t>& p) const;
  int64_t total_size() const;  // counts overlapping points multiple times
  const std::vector<Rsd>& sections() const { return sections_; }
  bool empty() const;
  std::string str() const;

private:
  std::vector<Rsd> sections_;
};

}  // namespace fortd
