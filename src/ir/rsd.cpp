#include "ir/rsd.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace fortd {

namespace {

/// Extended Euclid: returns g = gcd(a,b) and x,y with a*x + b*y = g.
int64_t ext_gcd(int64_t a, int64_t b, int64_t& x, int64_t& y) {
  if (b == 0) {
    x = 1;
    y = 0;
    return a;
  }
  int64_t x1, y1;
  int64_t g = ext_gcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

int64_t floor_div(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t ceil_div(int64_t a, int64_t b) { return -floor_div(-a, b); }

/// Positive modulus.
int64_t pmod(int64_t a, int64_t m) {
  int64_t r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Triplet
// ---------------------------------------------------------------------------

Triplet::Triplet(int64_t lb_, int64_t ub_, int64_t step_)
    : lb(lb_), ub(ub_), step(step_ > 0 ? step_ : 1) {
  if (lb > ub) {
    // Canonical empty.
    lb = 1;
    ub = 0;
    step = 1;
  } else {
    // Normalize ub onto the last member.
    ub = lb + ((ub - lb) / step) * step;
    if (lb == ub) step = 1;
  }
}

bool Triplet::contains(int64_t v) const {
  return !empty() && v >= lb && v <= ub && (v - lb) % step == 0;
}

bool Triplet::contains(const Triplet& other) const {
  if (other.empty()) return true;
  if (empty()) return false;
  if (!contains(other.lb) || !contains(other.ub)) return false;
  // Every step of `other` must land on our lattice.
  return other.count() == 1 || other.step % step == 0;
}

Triplet Triplet::intersect(const Triplet& a, const Triplet& b) {
  if (a.empty() || b.empty()) return empty_range();
  int64_t lo = std::max(a.lb, b.lb);
  int64_t hi = std::min(a.ub, b.ub);
  if (lo > hi) return empty_range();
  if (a.step == 1 && b.step == 1) return Triplet(lo, hi, 1);

  // Solve x = a.lb (mod a.step), x = b.lb (mod b.step) via CRT.
  int64_t u, v;
  int64_t g = ext_gcd(a.step, b.step, u, v);
  if (pmod(b.lb - a.lb, g) != 0) return empty_range();
  int64_t lcm = a.step / g * b.step;
  // x0 = a.lb + a.step * ((b.lb - a.lb)/g * u mod (b.step/g))
  int64_t m = b.step / g;
  int64_t t = pmod(((b.lb - a.lb) / g) % m * pmod(u, m), m);
  int64_t x0 = a.lb + a.step * t;
  // Move x0 into [lo, hi].
  if (x0 < lo) x0 += ceil_div(lo - x0, lcm) * lcm;
  if (x0 > hi) return empty_range();
  return Triplet(x0, hi, lcm);
}

std::vector<Triplet> Triplet::subtract(const Triplet& a, const Triplet& b,
                                       bool* exact) {
  if (exact) *exact = true;
  if (a.empty()) return {};
  Triplet i = intersect(a, b);
  if (i.empty()) return {a};

  std::vector<Triplet> out;
  auto push = [&out](Triplet t) {
    if (!t.empty()) out.push_back(t);
  };

  // Treat a single-element overlap as having a's step for alignment tests.
  int64_t istep = i.count() == 1 ? a.step : i.step;

  if (istep == a.step) {
    // The overlap removes a full-stride subrange: left + right remainders.
    push(Triplet(a.lb, i.lb - a.step, a.step));
    push(Triplet(i.ub + a.step, a.ub, a.step));
    return out;
  }
  if (istep == 2 * a.step) {
    // Every other element removed inside [i.lb, i.ub]; the skipped ones
    // plus the outer remainders are all triplets.
    push(Triplet(a.lb, i.lb - a.step, a.step));
    push(Triplet(i.lb + a.step, i.ub - a.step, 2 * a.step));
    push(Triplet(i.ub + a.step, a.ub, a.step));
    return out;
  }
  // Not expressible exactly: conservatively keep everything.
  if (exact) *exact = false;
  return {a};
}

std::optional<Triplet> Triplet::merge(const Triplet& a, const Triplet& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.count() == 1 && b.count() == 1) {
    if (a.lb == b.lb) return a;
    int64_t lo = std::min(a.lb, b.lb), hi = std::max(a.lb, b.lb);
    return Triplet(lo, hi, hi - lo);
  }
  // Orient so `x` is the multi-element triplet whose step governs.
  const Triplet& x = a.count() > 1 ? a : b;
  const Triplet& y = a.count() > 1 ? b : a;
  int64_t s = x.step;
  if (y.count() > 1 && y.step != s) return std::nullopt;
  if (pmod(y.lb - x.lb, s) != 0) return std::nullopt;
  // Same lattice; mergeable if ranges overlap or are within one step.
  if (y.lb > x.ub + s || x.lb > y.ub + s) return std::nullopt;
  return Triplet(std::min(x.lb, y.lb), std::max(x.ub, y.ub), s);
}

Triplet Triplet::translate(int64_t offset) const {
  if (empty()) return *this;
  return Triplet(lb + offset, ub + offset, step);
}

std::string Triplet::str() const {
  if (empty()) return "<empty>";
  std::string s = std::to_string(lb) + ":" + std::to_string(ub);
  if (step != 1) s += ":" + std::to_string(step);
  return s;
}

// ---------------------------------------------------------------------------
// Rsd
// ---------------------------------------------------------------------------

Rsd Rsd::dense(const std::vector<std::pair<int64_t, int64_t>>& bounds) {
  std::vector<Triplet> dims;
  dims.reserve(bounds.size());
  for (auto [lb, ub] : bounds) dims.emplace_back(lb, ub, 1);
  return Rsd(std::move(dims));
}

Rsd Rsd::empty_like(const Rsd& shape) {
  std::vector<Triplet> dims(static_cast<size_t>(shape.rank()),
                            Triplet::empty_range());
  return Rsd(std::move(dims));
}

bool Rsd::empty() const {
  if (dims_.empty()) return true;
  return std::any_of(dims_.begin(), dims_.end(),
                     [](const Triplet& t) { return t.empty(); });
}

int64_t Rsd::size() const {
  if (empty()) return 0;
  int64_t n = 1;
  for (const auto& t : dims_) n *= t.count();
  return n;
}

bool Rsd::contains(const std::vector<int64_t>& point) const {
  if (point.size() != dims_.size() || empty()) return false;
  for (size_t d = 0; d < dims_.size(); ++d)
    if (!dims_[d].contains(point[d])) return false;
  return true;
}

bool Rsd::contains(const Rsd& other) const {
  if (other.empty()) return true;
  if (empty() || rank() != other.rank()) return false;
  for (size_t d = 0; d < dims_.size(); ++d)
    if (!dims_[d].contains(other.dims_[d])) return false;
  return true;
}

Rsd Rsd::intersect(const Rsd& a, const Rsd& b) {
  assert(a.rank() == b.rank());
  std::vector<Triplet> dims;
  dims.reserve(a.dims_.size());
  for (size_t d = 0; d < a.dims_.size(); ++d)
    dims.push_back(Triplet::intersect(a.dims_[d], b.dims_[d]));
  return Rsd(std::move(dims));
}

std::vector<Rsd> Rsd::subtract(const Rsd& a, const Rsd& b, bool* exact) {
  if (exact) *exact = true;
  if (a.empty()) return {};
  Rsd inter = intersect(a, b);
  if (inter.empty()) return {a};
  if (inter == a) return {};

  // Box decomposition: for each dimension, peel off the part of `a` lying
  // outside the intersection in that dimension, constraining already
  // processed dimensions to the intersection.
  std::vector<Rsd> out;
  bool all_exact = true;
  for (int d = 0; d < a.rank(); ++d) {
    bool dim_exact = true;
    std::vector<Triplet> pieces =
        Triplet::subtract(a.dim(d), inter.dim(d), &dim_exact);
    all_exact = all_exact && dim_exact;
    for (const Triplet& piece : pieces) {
      std::vector<Triplet> dims;
      dims.reserve(a.dims_.size());
      for (int k = 0; k < a.rank(); ++k) {
        if (k < d)
          dims.push_back(inter.dim(k));
        else if (k == d)
          dims.push_back(piece);
        else
          dims.push_back(a.dim(k));
      }
      Rsd box{std::move(dims)};
      if (!box.empty()) out.push_back(std::move(box));
    }
  }
  if (exact) *exact = all_exact;
  return out;
}

std::optional<Rsd> Rsd::merge(const Rsd& a, const Rsd& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.rank() != b.rank()) return std::nullopt;
  if (a.contains(b)) return a;
  if (b.contains(a)) return b;
  // Sections must agree in all dimensions but one, which must merge.
  int differing = -1;
  for (int d = 0; d < a.rank(); ++d) {
    if (a.dim(d) == b.dim(d)) continue;
    if (differing >= 0) return std::nullopt;
    differing = d;
  }
  if (differing < 0) return a;
  // Triplet::merge only succeeds on exact unions, so no precision is lost.
  auto merged = Triplet::merge(a.dim(differing), b.dim(differing));
  if (!merged) return std::nullopt;
  Rsd out = a;
  out.dim(differing) = *merged;
  return out;
}

Rsd Rsd::translate(const std::vector<int64_t>& offsets) const {
  assert(offsets.size() == dims_.size());
  std::vector<Triplet> dims;
  dims.reserve(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d)
    dims.push_back(dims_[d].translate(offsets[d]));
  return Rsd(std::move(dims));
}

std::vector<std::vector<int64_t>> Rsd::enumerate() const {
  std::vector<std::vector<int64_t>> out;
  if (empty()) return out;
  std::vector<int64_t> point;
  point.reserve(dims_.size());
  for (const auto& t : dims_) point.push_back(t.lb);
  for (;;) {
    out.push_back(point);
    // Odometer increment, last dimension fastest.
    int d = rank() - 1;
    for (; d >= 0; --d) {
      point[static_cast<size_t>(d)] += dims_[static_cast<size_t>(d)].step;
      if (point[static_cast<size_t>(d)] <= dims_[static_cast<size_t>(d)].ub) break;
      point[static_cast<size_t>(d)] = dims_[static_cast<size_t>(d)].lb;
    }
    if (d < 0) break;
  }
  return out;
}

std::string Rsd::str() const {
  if (dims_.empty()) return "[]";
  std::string s = "[";
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (d) s += ",";
    s += dims_[d].str();
  }
  return s + "]";
}

// ---------------------------------------------------------------------------
// RsdList
// ---------------------------------------------------------------------------

void RsdList::add(Rsd r) {
  if (!r.empty()) sections_.push_back(std::move(r));
}

void RsdList::add_coalescing(Rsd r) {
  if (r.empty()) return;
  for (auto& existing : sections_) {
    if (auto merged = Rsd::merge(existing, r)) {
      existing = std::move(*merged);
      return;
    }
  }
  sections_.push_back(std::move(r));
}

bool RsdList::contains_point(const std::vector<int64_t>& p) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [&](const Rsd& r) { return r.contains(p); });
}

int64_t RsdList::total_size() const {
  int64_t n = 0;
  for (const auto& r : sections_) n += r.size();
  return n;
}

bool RsdList::empty() const {
  return std::all_of(sections_.begin(), sections_.end(),
                     [](const Rsd& r) { return r.empty(); });
}

std::string RsdList::str() const {
  std::string s = "{";
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (i) s += ", ";
    s += sections_[i].str();
  }
  return s + "}";
}

}  // namespace fortd
