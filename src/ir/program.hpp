// BoundProgram: a parsed compilation unit together with per-procedure
// symbol tables — the input to all analysis and code-generation phases.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "frontend/ast.hpp"
#include "ir/symbol_table.hpp"

namespace fortd {

struct BoundProgram {
  SourceProgram ast;
  std::map<std::string, SymbolTable> symtabs;
  std::shared_ptr<DiagnosticEngine> diags;

  Procedure* find(const std::string& name) { return ast.find(name); }
  const Procedure* find(const std::string& name) const { return ast.find(name); }
  const SymbolTable& symtab(const std::string& proc) const;
  SymbolTable& symtab(const std::string& proc);

  /// (Re)build the symbol table for one procedure — used after cloning or
  /// any transformation that adds declarations.
  void rebind(const std::string& proc_name);

  /// Register a freshly created procedure (e.g. a clone) and bind it.
  Procedure* add_procedure(std::unique_ptr<Procedure> proc);
};

/// Parse + bind in one step. Throws CompileError on any error.
BoundProgram bind_program(SourceProgram ast,
                          std::shared_ptr<DiagnosticEngine> diags = nullptr);
BoundProgram parse_and_bind(std::string_view source);

}  // namespace fortd
