#include "ir/program.hpp"

#include "frontend/parser.hpp"

namespace fortd {

const SymbolTable& BoundProgram::symtab(const std::string& proc) const {
  auto it = symtabs.find(proc);
  if (it == symtabs.end())
    throw CompileError({}, "no symbol table for procedure '" + proc + "'");
  return it->second;
}

SymbolTable& BoundProgram::symtab(const std::string& proc) {
  auto it = symtabs.find(proc);
  if (it == symtabs.end())
    throw CompileError({}, "no symbol table for procedure '" + proc + "'");
  return it->second;
}

void BoundProgram::rebind(const std::string& proc_name) {
  const Procedure* proc = ast.find(proc_name);
  if (!proc)
    throw CompileError({}, "rebind: unknown procedure '" + proc_name + "'");
  symtabs[proc_name] = build_symbol_table(*proc, *diags);
}

Procedure* BoundProgram::add_procedure(std::unique_ptr<Procedure> proc) {
  Procedure* raw = proc.get();
  ast.procedures.push_back(std::move(proc));
  rebind(raw->name);
  return raw;
}

BoundProgram bind_program(SourceProgram ast,
                          std::shared_ptr<DiagnosticEngine> diags) {
  BoundProgram bp;
  bp.ast = std::move(ast);
  bp.diags = diags ? std::move(diags) : std::make_shared<DiagnosticEngine>();
  for (const auto& proc : bp.ast.procedures)
    bp.symtabs[proc->name] = build_symbol_table(*proc, *bp.diags);
  return bp;
}

BoundProgram parse_and_bind(std::string_view source) {
  auto diags = std::make_shared<DiagnosticEngine>();
  Parser parser(source, *diags);
  return bind_program(parser.parse_unit(), diags);
}

}  // namespace fortd
