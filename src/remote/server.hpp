// CacheDaemon — the serving side of fortd-cached.
//
// A single service thread runs a poll() loop over the listening socket
// and every live client connection: readable sockets are drained into
// per-connection FrameDecoders, complete requests are batched and
// answered (request handling fans out across the ThreadPool when a poll
// cycle yields several), and replies queue in per-connection output
// buffers drained under POLLOUT. Connections are independent — a client
// that stalls mid-frame or sends garbage affects only itself (its
// decoder's sticky fail bit closes it).
//
// The daemon owns nothing but counters: artifacts live in the
// ContentStore it serves, which may be opened read-only (PUTs are then
// denied, GETs still served). Per-kind hit/miss/put/byte counters are
// exported as JSON via metrics_json(), the STATS request, and the
// fortd-cached -metrics-json flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/compilation_db.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "remote/protocol.hpp"
#include "support/thread_pool.hpp"

namespace fortd::remote {

struct DaemonOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (tests); fortd-cached defaults to 4815
  /// Nonzero: the daemon's side of the handshake uses this instead of
  /// remote_wire_format_hash() — tests provoke version skew with it.
  uint64_t format_hash_override = 0;
  /// Fault injection (tests): when set and returning true for a request,
  /// the daemon closes that connection instead of replying / swallows the
  /// reply while keeping the connection open (a stall the client can only
  /// escape via its deadline).
  std::function<bool(const WireMessage&)> drop_before_reply;
  std::function<bool(const WireMessage&)> stall_reply;
};

class CacheDaemon {
 public:
  /// `store` must outlive the daemon. `pool` (nullable = serve inline) is
  /// used to parallelize request handling within one poll cycle; it must
  /// not be a pool some other thread runs batches on concurrently.
  CacheDaemon(ContentStore* store, ThreadPool* pool, DaemonOptions options);
  ~CacheDaemon();

  CacheDaemon(const CacheDaemon&) = delete;
  CacheDaemon& operator=(const CacheDaemon&) = delete;

  /// Bind and spawn the service thread. False (with reason) on failure.
  bool start(std::string* err = nullptr);
  /// Idempotent; joins the service thread and closes every connection.
  void stop();

  bool running() const { return running_.load(); }
  /// The bound port (after start(); meaningful with port 0 in options).
  int port() const { return listener_.port(); }

  struct KindCounters {
    uint64_t get_hits = 0;
    uint64_t get_misses = 0;
    uint64_t puts = 0;
    uint64_t bytes_in = 0;   // PUT blob bytes accepted
    uint64_t bytes_out = 0;  // GET blob bytes served
  };
  /// Snapshot of the per-kind counters.
  std::map<std::string, KindCounters> counters() const;
  /// The counters plus connection totals, as stable machine-readable
  /// JSON (also the STATS reply payload).
  std::string metrics_json() const;

 private:
  struct Conn {
    net::Socket sock;
    net::FrameDecoder decoder;
    bool hello_done = false;
    bool closing = false;    // close once outbuf drains
    std::string outbuf;      // encoded reply frames awaiting POLLOUT
  };

  void serve_loop();
  /// Drain one readable connection; false = drop it.
  bool read_conn(Conn& conn, std::vector<WireMessage>& requests);
  /// Compute the reply for one request (thread-safe; pool workers call
  /// this concurrently). `close_after` = reply then drop the connection.
  WireMessage handle(const WireMessage& req, bool* close_after);
  void queue_reply(Conn& conn, const WireMessage& reply);

  ContentStore* store_;
  ThreadPool* pool_;
  DaemonOptions options_;
  net::Listener listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex stats_mu_;
  std::map<std::string, KindCounters> counters_;
  uint64_t connections_accepted_ = 0;
  uint64_t handshake_rejects_ = 0;
  uint64_t protocol_errors_ = 0;
  uint64_t invalid_kinds_ = 0;  // requests whose kind failed validation
  uint64_t batch_gets_ = 0;     // BATCH_GET requests served
  uint64_t batch_keys_ = 0;     // keys across all BATCH_GETs
};

}  // namespace fortd::remote
