// CacheDaemon — the serving side of fortd-cached.
//
// The connection plumbing (poll loop, accept, FrameDecoder, output
// buffers, mid-reply disconnect accounting) lives in the shared
// net::ServerLoop skeleton; this class supplies the protocol: per-
// connection HELLO handshake state, the GET/PUT/BATCH_GET/STATS request
// handlers, and the per-kind counters. Complete requests gathered in one
// poll cycle are answered in a ThreadPool fan-out when the cycle yields
// several.
//
// The daemon owns nothing but counters: artifacts live in the
// ContentStore it serves, which may be opened read-only (PUTs are then
// denied, GETs still served). Per-kind hit/miss/put/byte counters are
// exported as JSON via metrics_json(), the STATS request, and the
// fortd-cached -metrics-json flag.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "driver/compilation_db.hpp"
#include "net/server_loop.hpp"
#include "remote/protocol.hpp"
#include "support/thread_pool.hpp"

namespace fortd::remote {

struct DaemonOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (tests); fortd-cached defaults to 4815
  /// Nonzero: the daemon's side of the handshake uses this instead of
  /// remote_wire_format_hash() — tests provoke version skew with it.
  uint64_t format_hash_override = 0;
  /// Fault injection (tests): when set and returning true for a request,
  /// the daemon closes that connection instead of replying / swallows the
  /// reply while keeping the connection open (a stall the client can only
  /// escape via its deadline).
  std::function<bool(const WireMessage&)> drop_before_reply;
  std::function<bool(const WireMessage&)> stall_reply;
};

class CacheDaemon {
 public:
  /// `store` must outlive the daemon. `pool` (nullable = serve inline) is
  /// used to parallelize request handling within one poll cycle; only
  /// non-blocking batches may share it (see ThreadPool).
  CacheDaemon(ContentStore* store, ThreadPool* pool, DaemonOptions options);
  ~CacheDaemon();

  CacheDaemon(const CacheDaemon&) = delete;
  CacheDaemon& operator=(const CacheDaemon&) = delete;

  /// Bind and spawn the service thread. False (with reason) on failure.
  bool start(std::string* err = nullptr);
  /// Idempotent; joins the service thread and closes every connection.
  void stop();

  bool running() const { return loop_.running(); }
  /// The bound port (after start(); meaningful with port 0 in options).
  int port() const { return loop_.port(); }

  struct KindCounters {
    uint64_t get_hits = 0;
    uint64_t get_misses = 0;
    uint64_t puts = 0;
    uint64_t bytes_in = 0;   // PUT blob bytes accepted
    uint64_t bytes_out = 0;  // GET blob bytes served
  };
  /// Snapshot of the per-kind counters.
  std::map<std::string, KindCounters> counters() const;
  /// The counters plus connection totals, as stable machine-readable
  /// JSON (also the STATS reply payload).
  std::string metrics_json() const;

 private:
  using ConnId = net::ServerLoop::ConnId;

  /// One poll cycle's worth of frames (loop thread).
  void on_cycle(std::vector<net::ServerLoop::InFrame>& frames);
  /// Compute the reply for one request (thread-safe; pool workers call
  /// this concurrently). `close_after` = reply then drop the connection.
  WireMessage handle(const WireMessage& req, bool* close_after);

  ContentStore* store_;
  ThreadPool* pool_;
  DaemonOptions options_;
  net::ServerLoop loop_;

  // Connections that completed the HELLO handshake. Loop thread only
  // (cycle + closed handlers).
  std::map<ConnId, bool> hello_done_;

  mutable std::mutex stats_mu_;
  std::map<std::string, KindCounters> counters_;
  uint64_t handshake_rejects_ = 0;
  uint64_t protocol_errors_ = 0;  // message-level; frame-level sits in loop_
  uint64_t invalid_kinds_ = 0;  // requests whose kind failed validation
  uint64_t batch_gets_ = 0;     // BATCH_GET requests served
  uint64_t batch_keys_ = 0;     // keys across all BATCH_GETs
};

}  // namespace fortd::remote
