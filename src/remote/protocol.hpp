// Wire protocol for the remote compilation-cache service (fortd-cached).
//
// Every message travels as one frame (net/frame.hpp) whose payload is a
// BinaryWriter encoding: a one-byte message type, a request-id varint,
// and then type-specific fields. A connection opens with HELLO carrying
// the client's wire format hash — a fingerprint of the protocol version
// plus every serialization and compression format version involved — and
// the daemon answers HELLO_OK only on an exact match. Version skew
// between a compiler and a long-running daemon is therefore detected at
// the handshake, before any artifact bytes move, and the client degrades
// to local-only operation.
//
// The request id tags every request a client sends and is echoed
// verbatim in the reply, so several requests may be in flight on one
// connection at once (pipelining): concurrent compiler workers multiplex
// the persistent connection instead of head-of-line blocking behind one
// slow reply, and a reply that arrives after its request's deadline
// passed is simply discarded by id — a timeout no longer forces the
// connection down.
//
// GET/PUT exchange complete FDCA-enveloped blobs
// (driver/compilation_db.hpp), never decoded payloads: the checksum that
// protects an artifact at rest protects it end-to-end across the wire,
// and the daemon can vet a PUT (inspect_blob_envelope) without
// understanding artifact payloads at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace fortd::remote {

/// Bump on any wire-visible protocol change.
/// v2: request-id varint after the type byte (pipelined connections).
/// v3: compile-as-a-service messages (COMPILE/COMPILE_REPLY/DRAIN/
///     METRICS) for the resident fortdd daemon.
constexpr uint32_t kProtocolVersion = 3;

/// The handshake fingerprint: protocol version mixed with the artifact
/// serialization and compression format versions. Any of the three
/// changing makes clients and daemons mutually unintelligible, and this
/// hash is how they find out.
uint64_t remote_wire_format_hash();

enum class MsgType : uint8_t {
  Hello = 1,        // client → daemon: format_hash
  HelloOk = 2,      // daemon → client
  HelloReject = 3,  // daemon → client: text = reason; connection closes
  Get = 4,          // kind, format_hash, digest
  GetOk = 5,        // blob = enveloped artifact
  GetMiss = 6,      //
  Put = 7,          // kind, digest, blob = enveloped artifact
  PutOk = 8,        //
  PutDenied = 9,    // text = reason (read-only daemon, invalid blob)
  BatchGet = 10,    // format_hash, keys = (kind, digest) list
  BatchGetOk = 11,  // blobs = (found, blob) list, parallel to keys
  Stats = 12,        //
  StatsOk = 13,      // text = metrics JSON
  Error = 14,        // text = reason; daemon closes the connection
  // Compile-as-a-service (fortdd). The HELLO fingerprint covers these
  // like every other message: a client and daemon that disagree on the
  // compile-request layout never get past the handshake.
  Compile = 15,      // text = source, copts = options + deadline
  CompileReply = 16, // creply = status, SPMD text, diagnostics, metrics
  Drain = 17,        // finish in-flight work, refuse new COMPILEs
  DrainOk = 18,      // sent once the last in-flight request completed
  Metrics = 19,      //
  MetricsOk = 20,    // text = service metrics JSON
};

/// Compile options as they travel in a COMPILE request — the subset of
/// CodegenOptions/LintOptions that changes the *output*, plus the
/// request deadline. Schedule-only knobs (jobs, -sched) stay server-side
/// because they are digest-neutral by contract.
struct CompileOptionsWire {
  uint32_t n_procs = 4;
  uint8_t strategy = 0;    // static_cast<uint8_t>(fortd::Strategy)
  uint8_t dyn_decomp = 3;  // static_cast<uint8_t>(fortd::DynDecompOpt)
  uint8_t analyze = 0;     // run the lint checkers + SPMD verifier
  uint8_t want_lint_json = 0;  // serialize findings as JSON in the reply
  uint8_t want_timings = 0;    // include the per-request timings JSON
  /// Total budget the client grants this request, queue wait included;
  /// a request still queued when it expires is dropped, not compiled.
  /// 0 = use the daemon's default.
  uint32_t deadline_ms = 0;
};

/// Terminal status of one COMPILE request. Everything except Ok and
/// CompileFail is a *daemon* condition: the client degrades to a local
/// in-process compile — a daemon problem is never a compile error.
enum class CompileStatus : uint8_t {
  Ok = 0,
  CompileFail = 1,       // CompileError: diagnostics carry the message
  Rejected = 2,          // admission control: queue full
  DeadlineExpired = 3,   // spent its whole deadline waiting in queue
  Draining = 4,          // daemon is shutting down gracefully
};

/// Body of a COMPILE_REPLY.
struct CompileReplyWire {
  uint8_t status = 0;  // CompileStatus
  uint32_t findings = 0;           // lint warnings + verifier diagnostics
  uint32_t parsed_procedures = 0;  // 0 = AST served from the session cache
  uint32_t generated = 0;          // procedures that ran codegen
  uint32_t summaries_computed = 0; // procedures that ran local analysis
  std::string spmd;        // generated SPMD listing (status Ok)
  std::string diagnostics; // human-readable block for the client's stderr
  std::string lint_json;   // only when want_lint_json
  std::string timings_json; // per-request service metrics (want_timings)
};

/// One decoded protocol message. Fields beyond `type` are meaningful only
/// for the message types annotated above; the codec writes and reads
/// exactly the fields each type defines.
struct WireMessage {
  MsgType type = MsgType::Error;
  uint64_t request_id = 0;  // echoed verbatim in the reply; 0 in handshake
  uint64_t format_hash = 0;
  std::string kind;
  uint64_t digest = 0;
  std::vector<uint8_t> blob;
  std::vector<std::pair<std::string, uint64_t>> keys;
  std::vector<std::pair<bool, std::vector<uint8_t>>> blobs;
  std::string text;
  CompileOptionsWire copts;   // Compile only
  CompileReplyWire creply;    // CompileReply only
};

/// Daemon-side handshake step shared by fortd-cached and fortdd: given
/// the first decoded message on a connection, fill `reply` and say how
/// the connection proceeds. Protocol = not a HELLO at all (drop without
/// replying); Reject = fingerprint mismatch (send reply, then close).
enum class HelloOutcome { Ok, Reject, Protocol };
HelloOutcome process_hello(const WireMessage& msg, uint64_t expected_hash,
                           WireMessage* reply);

/// Serialize `m` into a frame payload (not yet length-prefixed).
std::vector<uint8_t> encode_message(const WireMessage& m);

/// Decode one frame payload; nullopt on any structural problem (unknown
/// type, truncation, trailing bytes) — the BinaryReader discipline.
std::optional<WireMessage> decode_message(const std::vector<uint8_t>& frame);

}  // namespace fortd::remote
