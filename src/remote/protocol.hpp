// Wire protocol for the remote compilation-cache service (fortd-cached).
//
// Every message travels as one frame (net/frame.hpp) whose payload is a
// BinaryWriter encoding: a one-byte message type, a request-id varint,
// and then type-specific fields. A connection opens with HELLO carrying
// the client's wire format hash — a fingerprint of the protocol version
// plus every serialization and compression format version involved — and
// the daemon answers HELLO_OK only on an exact match. Version skew
// between a compiler and a long-running daemon is therefore detected at
// the handshake, before any artifact bytes move, and the client degrades
// to local-only operation.
//
// The request id tags every request a client sends and is echoed
// verbatim in the reply, so several requests may be in flight on one
// connection at once (pipelining): concurrent compiler workers multiplex
// the persistent connection instead of head-of-line blocking behind one
// slow reply, and a reply that arrives after its request's deadline
// passed is simply discarded by id — a timeout no longer forces the
// connection down.
//
// GET/PUT exchange complete FDCA-enveloped blobs
// (driver/compilation_db.hpp), never decoded payloads: the checksum that
// protects an artifact at rest protects it end-to-end across the wire,
// and the daemon can vet a PUT (inspect_blob_envelope) without
// understanding artifact payloads at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace fortd::remote {

/// Bump on any wire-visible protocol change.
/// v2: request-id varint after the type byte (pipelined connections).
constexpr uint32_t kProtocolVersion = 2;

/// The handshake fingerprint: protocol version mixed with the artifact
/// serialization and compression format versions. Any of the three
/// changing makes clients and daemons mutually unintelligible, and this
/// hash is how they find out.
uint64_t remote_wire_format_hash();

enum class MsgType : uint8_t {
  Hello = 1,        // client → daemon: format_hash
  HelloOk = 2,      // daemon → client
  HelloReject = 3,  // daemon → client: text = reason; connection closes
  Get = 4,          // kind, format_hash, digest
  GetOk = 5,        // blob = enveloped artifact
  GetMiss = 6,      //
  Put = 7,          // kind, digest, blob = enveloped artifact
  PutOk = 8,        //
  PutDenied = 9,    // text = reason (read-only daemon, invalid blob)
  BatchGet = 10,    // format_hash, keys = (kind, digest) list
  BatchGetOk = 11,  // blobs = (found, blob) list, parallel to keys
  Stats = 12,       //
  StatsOk = 13,     // text = metrics JSON
  Error = 14,       // text = reason; daemon closes the connection
};

/// One decoded protocol message. Fields beyond `type` are meaningful only
/// for the message types annotated above; the codec writes and reads
/// exactly the fields each type defines.
struct WireMessage {
  MsgType type = MsgType::Error;
  uint64_t request_id = 0;  // echoed verbatim in the reply; 0 in handshake
  uint64_t format_hash = 0;
  std::string kind;
  uint64_t digest = 0;
  std::vector<uint8_t> blob;
  std::vector<std::pair<std::string, uint64_t>> keys;
  std::vector<std::pair<bool, std::vector<uint8_t>>> blobs;
  std::string text;
};

/// Serialize `m` into a frame payload (not yet length-prefixed).
std::vector<uint8_t> encode_message(const WireMessage& m);

/// Decode one frame payload; nullopt on any structural problem (unknown
/// type, truncation, trailing bytes) — the BinaryReader discipline.
std::optional<WireMessage> decode_message(const std::vector<uint8_t>& frame);

}  // namespace fortd::remote
