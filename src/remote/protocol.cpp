#include "remote/protocol.hpp"

#include "support/compress.hpp"
#include "support/serialize.hpp"

namespace fortd::remote {

uint64_t remote_wire_format_hash() {
  const uint32_t parts[3] = {kProtocolVersion, kSerializeFormatVersion,
                             kCompressFormatVersion};
  return fnv1a(reinterpret_cast<const uint8_t*>(parts), sizeof(parts));
}

std::vector<uint8_t> encode_message(const WireMessage& m) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(m.type));
  w.u64(m.request_id);
  switch (m.type) {
    case MsgType::Hello:
      w.u64(m.format_hash);
      break;
    case MsgType::HelloOk:
    case MsgType::GetMiss:
    case MsgType::PutOk:
    case MsgType::Stats:
      break;
    case MsgType::HelloReject:
    case MsgType::PutDenied:
    case MsgType::StatsOk:
    case MsgType::Error:
      w.str(m.text);
      break;
    case MsgType::Get:
      w.str(m.kind);
      w.u64(m.format_hash);
      w.u64(m.digest);
      break;
    case MsgType::GetOk:
      w.blob(m.blob);
      break;
    case MsgType::Put:
      w.str(m.kind);
      w.u64(m.digest);
      w.blob(m.blob);
      break;
    case MsgType::BatchGet:
      w.u64(m.format_hash);
      w.count(m.keys.size());
      for (const auto& [kind, digest] : m.keys) {
        w.str(kind);
        w.u64(digest);
      }
      break;
    case MsgType::BatchGetOk:
      w.count(m.blobs.size());
      for (const auto& [found, blob] : m.blobs) {
        w.boolean(found);
        w.blob(blob);
      }
      break;
    case MsgType::Compile:
      w.str(m.text);
      w.u64(m.copts.n_procs);
      w.u8(m.copts.strategy);
      w.u8(m.copts.dyn_decomp);
      w.u8(m.copts.analyze);
      w.u8(m.copts.want_lint_json);
      w.u8(m.copts.want_timings);
      w.u64(m.copts.deadline_ms);
      break;
    case MsgType::CompileReply:
      w.u8(m.creply.status);
      w.u64(m.creply.findings);
      w.u64(m.creply.parsed_procedures);
      w.u64(m.creply.generated);
      w.u64(m.creply.summaries_computed);
      w.str(m.creply.spmd);
      w.str(m.creply.diagnostics);
      w.str(m.creply.lint_json);
      w.str(m.creply.timings_json);
      break;
    case MsgType::Drain:
    case MsgType::DrainOk:
    case MsgType::Metrics:
      break;
    case MsgType::MetricsOk:
      w.str(m.text);
      break;
  }
  return w.take();
}

std::optional<WireMessage> decode_message(const std::vector<uint8_t>& frame) {
  BinaryReader r(frame);
  WireMessage m;
  const uint8_t type = r.u8();
  if (type < static_cast<uint8_t>(MsgType::Hello) ||
      type > static_cast<uint8_t>(MsgType::MetricsOk))
    return std::nullopt;
  m.type = static_cast<MsgType>(type);
  m.request_id = r.u64();
  switch (m.type) {
    case MsgType::Hello:
      m.format_hash = r.u64();
      break;
    case MsgType::HelloOk:
    case MsgType::GetMiss:
    case MsgType::PutOk:
    case MsgType::Stats:
      break;
    case MsgType::HelloReject:
    case MsgType::PutDenied:
    case MsgType::StatsOk:
    case MsgType::Error:
      m.text = r.str();
      break;
    case MsgType::Get:
      m.kind = r.str();
      m.format_hash = r.u64();
      m.digest = r.u64();
      break;
    case MsgType::GetOk:
      m.blob = r.blob();
      break;
    case MsgType::Put:
      m.kind = r.str();
      m.digest = r.u64();
      m.blob = r.blob();
      break;
    case MsgType::BatchGet: {
      m.format_hash = r.u64();
      const size_t n = r.count();
      m.keys.reserve(n);
      for (size_t i = 0; i < n && r.ok(); ++i) {
        std::string kind = r.str();
        uint64_t digest = r.u64();
        m.keys.emplace_back(std::move(kind), digest);
      }
      break;
    }
    case MsgType::BatchGetOk: {
      const size_t n = r.count();
      m.blobs.reserve(n);
      for (size_t i = 0; i < n && r.ok(); ++i) {
        bool found = r.boolean();
        std::vector<uint8_t> blob = r.blob();
        m.blobs.emplace_back(found, std::move(blob));
      }
      break;
    }
    case MsgType::Compile:
      m.text = r.str();
      m.copts.n_procs = static_cast<uint32_t>(r.u64());
      m.copts.strategy = r.u8();
      m.copts.dyn_decomp = r.u8();
      m.copts.analyze = r.u8();
      m.copts.want_lint_json = r.u8();
      m.copts.want_timings = r.u8();
      m.copts.deadline_ms = static_cast<uint32_t>(r.u64());
      break;
    case MsgType::CompileReply:
      m.creply.status = r.u8();
      m.creply.findings = static_cast<uint32_t>(r.u64());
      m.creply.parsed_procedures = static_cast<uint32_t>(r.u64());
      m.creply.generated = static_cast<uint32_t>(r.u64());
      m.creply.summaries_computed = static_cast<uint32_t>(r.u64());
      m.creply.spmd = r.str();
      m.creply.diagnostics = r.str();
      m.creply.lint_json = r.str();
      m.creply.timings_json = r.str();
      break;
    case MsgType::Drain:
    case MsgType::DrainOk:
    case MsgType::Metrics:
      break;
    case MsgType::MetricsOk:
      m.text = r.str();
      break;
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

HelloOutcome process_hello(const WireMessage& msg, uint64_t expected_hash,
                           WireMessage* reply) {
  if (msg.type != MsgType::Hello) return HelloOutcome::Protocol;
  if (msg.format_hash != expected_hash) {
    reply->type = MsgType::HelloReject;
    reply->text = "wire format mismatch";
    return HelloOutcome::Reject;
  }
  reply->type = MsgType::HelloOk;
  return HelloOutcome::Ok;
}

}  // namespace fortd::remote
