// ShardMap + ShardedRemoteStore — the fleet side of the remote cache.
//
// A single fortd-cached daemon is both a single point of failure and a
// NIC bottleneck for a build farm. `-cache-remote` therefore accepts a
// comma-separated endpoint list; ShardMap routes every (kind, digest)
// key to exactly one endpoint by rendezvous (highest-random-weight)
// hashing: each endpoint's score for a key is a deterministic mix of the
// endpoint name and the key, and the key lives on the highest-scoring
// endpoint. The routing is a pure function of the strings and integers
// involved — every compiler process on every machine, whatever order it
// lists the endpoints in, sends a given artifact to the same daemon —
// and removing one endpoint from the list only remaps the keys that
// lived there (the consistent-hashing property; no ring positions to
// maintain).
//
// ShardedRemoteStore composes one RemoteStore per endpoint behind the
// StorageBackend interface. Each shard keeps its own connection, retry
// budget, and circuit breaker, so one dead daemon degrades only its key
// range: gets of those keys read as misses, puts are dropped, and every
// other shard keeps serving. The store as a whole reports degraded()
// only when every shard's breaker is open — the "remote tier is gone"
// signal the driver surfaces as one diagnostic — while per-shard state
// (shard_degraded()) feeds -cache-stats-json.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "remote/client.hpp"

namespace fortd::remote {

/// Deterministic rendezvous hash over a fixed endpoint list.
class ShardMap {
 public:
  explicit ShardMap(std::vector<std::string> endpoints);

  size_t size() const { return endpoints_.size(); }
  const std::string& endpoint(size_t shard) const { return endpoints_[shard]; }

  /// The shard holding (kind, digest). Requires size() > 0.
  size_t shard_for(const std::string& kind, uint64_t digest) const;

  /// The top-2 shards in rendezvous score order: {primary, replica}.
  /// The replica is the endpoint the key would move to if the primary
  /// left the list — exactly where a failed-over GET must look. With a
  /// single endpoint, replica == primary (no second copy possible).
  std::pair<size_t, size_t> replicas_for(const std::string& kind,
                                         uint64_t digest) const;

 private:
  std::vector<std::string> endpoints_;
  std::vector<uint64_t> endpoint_hashes_;  // precomputed fnv1a per endpoint
};

/// Split a comma-separated `-cache-remote` value into its endpoints
/// (whitespace trimmed, empty entries dropped).
std::vector<std::string> split_endpoint_list(const std::string& list);

/// Parse one "host:port" (or bare "port" → 127.0.0.1). False when the
/// port is absent or not a number.
bool parse_endpoint(const std::string& endpoint, std::string* host,
                    int* port);

/// One RemoteStore per endpoint, routed by ShardMap with top-2
/// replication: every PUT writes through to the key's primary *and*
/// replica shard, and a GET whose primary request fails (dead daemon,
/// open breaker, exhausted retries) fails over to the replica — the
/// fleet survives any single daemon loss with no artifact regeneration.
/// A healthy miss does not consult the replica: both copies are written
/// together, so a primary miss means the key is simply absent.
/// Thread-safe like its shards; all failure handling lives in them.
class ShardedRemoteStore : public StorageBackend {
 public:
  /// `base` supplies every knob except host/port, which come from
  /// `endpoints` ("host:port" each; a bare "port" means 127.0.0.1).
  ShardedRemoteStore(std::vector<std::string> endpoints,
                     const RemoteOptions& base);

  std::optional<std::vector<uint8_t>> get_blob(const std::string& kind,
                                               uint64_t format_hash,
                                               uint64_t digest) override;
  bool put_blob(const std::string& kind, uint64_t digest,
                const std::vector<uint8_t>& blob) override;
  /// Regroups `keys` by shard, one BATCH_GET per shard, results
  /// reassembled parallel to `keys` (failed shards read as misses).
  std::vector<std::pair<bool, std::vector<uint8_t>>> batch_get_blobs(
      uint64_t format_hash,
      const std::vector<std::pair<std::string, uint64_t>>& keys) override;
  size_t shard_count() const override { return shards_.size(); }
  size_t shard_of(const std::string& kind, uint64_t digest) const override {
    return map_.shard_for(kind, digest);
  }

  const ShardMap& shard_map() const { return map_; }
  RemoteStore* shard(size_t i) { return shards_[i].get(); }
  const RemoteStore* shard(size_t i) const { return shards_[i].get(); }

  /// True only when EVERY shard's breaker is open — the whole tier is
  /// local-only. Partial fleet loss is not full degradation.
  bool degraded() const;
  /// True when at least one shard degraded (partial or full).
  bool any_degraded() const;
  /// Per-shard breaker state, indexed like the endpoint list.
  std::vector<bool> shard_degraded() const;
  /// First shard failure reason (empty until one degraded), prefixed
  /// with its endpoint so the diagnostic names the dead daemon.
  std::string degraded_reason() const;

  /// Counters summed across shards.
  RemoteStore::Counters counters() const;

 private:
  /// True when the shard's last request failed rather than missed —
  /// breaker already open, or the error counter moved.
  static bool request_failed(const RemoteStore& shard, uint64_t errors_before);

  ShardMap map_;
  std::vector<std::unique_ptr<RemoteStore>> shards_;
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> replica_hits_{0};
};

}  // namespace fortd::remote
