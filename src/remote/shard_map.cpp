#include "remote/shard_map.hpp"

#include <cstdlib>

#include "support/serialize.hpp"

namespace fortd::remote {

namespace {

/// splitmix64 finalizer: a cheap full-avalanche mix so nearby digests
/// spread uniformly across shards.
uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

uint64_t hash_string(const std::string& s) {
  return fnv1a(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

}  // namespace

ShardMap::ShardMap(std::vector<std::string> endpoints)
    : endpoints_(std::move(endpoints)) {
  endpoint_hashes_.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) endpoint_hashes_.push_back(hash_string(ep));
}

size_t ShardMap::shard_for(const std::string& kind, uint64_t digest) const {
  return replicas_for(kind, digest).first;
}

std::pair<size_t, size_t> ShardMap::replicas_for(const std::string& kind,
                                                 uint64_t digest) const {
  // Rendezvous: every endpoint scores the key; the key lives on the
  // highest score, its replica on the second-highest — which is also
  // where the whole key range lands if the primary leaves the list, the
  // consistent-hashing property the failover path relies on. Ties are
  // broken by index, but with 64-bit scores a tie between distinct
  // endpoints is effectively impossible.
  const uint64_t key = mix64(hash_string(kind) ^ mix64(digest));
  size_t best = 0, second = 0;
  uint64_t best_score = 0, second_score = 0;
  for (size_t i = 0; i < endpoint_hashes_.size(); ++i) {
    const uint64_t score = mix64(endpoint_hashes_[i] ^ key);
    if (i == 0 || score > best_score) {
      if (i != 0) {
        second = best;
        second_score = best_score;
      }
      best = i;
      best_score = score;
    } else if (i == 1 || score > second_score) {
      second = i;
      second_score = score;
    }
  }
  if (endpoint_hashes_.size() < 2) second = best;
  return {best, second};
}

std::vector<std::string> split_endpoint_list(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    std::string item = list.substr(start, comma - start);
    size_t b = item.find_first_not_of(" \t");
    size_t e = item.find_last_not_of(" \t");
    if (b != std::string::npos) out.push_back(item.substr(b, e - b + 1));
    start = comma + 1;
  }
  return out;
}

bool parse_endpoint(const std::string& endpoint, std::string* host,
                    int* port) {
  std::string port_str;
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    *host = "127.0.0.1";
    port_str = endpoint;
  } else {
    *host = endpoint.substr(0, colon);
    port_str = endpoint.substr(colon + 1);
  }
  if (port_str.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(port_str.c_str(), &end, 10);
  if (*end != '\0' || v <= 0 || v > 65535) return false;
  *port = static_cast<int>(v);
  return true;
}

ShardedRemoteStore::ShardedRemoteStore(std::vector<std::string> endpoints,
                                       const RemoteOptions& base)
    : map_(std::move(endpoints)) {
  shards_.reserve(map_.size());
  for (size_t i = 0; i < map_.size(); ++i) {
    RemoteOptions opts = base;
    if (!parse_endpoint(map_.endpoint(i), &opts.host, &opts.port))
      opts.port = 0;  // unparseable endpoint: the shard degrades on use
    // Decorrelate the shards' backoff jitter streams.
    opts.jitter_seed = (base.jitter_seed ? base.jitter_seed : 1) + i;
    shards_.push_back(std::make_unique<RemoteStore>(std::move(opts)));
  }
}

bool ShardedRemoteStore::request_failed(const RemoteStore& shard,
                                        uint64_t errors_before) {
  return shard.degraded() || shard.counters().errors > errors_before;
}

std::optional<std::vector<uint8_t>> ShardedRemoteStore::get_blob(
    const std::string& kind, uint64_t format_hash, uint64_t digest) {
  if (shards_.empty()) return std::nullopt;
  const auto [primary, replica] = map_.replicas_for(kind, digest);
  const uint64_t errors_before = shards_[primary]->counters().errors;
  auto blob = shards_[primary]->get_blob(kind, format_hash, digest);
  if (blob || replica == primary) return blob;
  // Fail over only when the primary's *request* failed; a healthy miss
  // means the key is absent everywhere (PUTs write both copies).
  if (!request_failed(*shards_[primary], errors_before)) return std::nullopt;
  ++failovers_;
  blob = shards_[replica]->get_blob(kind, format_hash, digest);
  if (blob) ++replica_hits_;
  return blob;
}

bool ShardedRemoteStore::put_blob(const std::string& kind, uint64_t digest,
                                  const std::vector<uint8_t>& blob) {
  if (shards_.empty()) return false;
  const auto [primary, replica] = map_.replicas_for(kind, digest);
  // Write-through to both owners: the artifact is stored as long as
  // either copy landed, which is exactly when a failed-over GET can
  // still find it.
  const bool primary_ok = shards_[primary]->put_blob(kind, digest, blob);
  if (replica == primary) return primary_ok;
  const bool replica_ok = shards_[replica]->put_blob(kind, digest, blob);
  return primary_ok || replica_ok;
}

std::vector<std::pair<bool, std::vector<uint8_t>>>
ShardedRemoteStore::batch_get_blobs(
    uint64_t format_hash,
    const std::vector<std::pair<std::string, uint64_t>>& keys) {
  std::vector<std::pair<bool, std::vector<uint8_t>>> out(keys.size());
  if (shards_.empty()) return out;
  // One BATCH_GET per shard that owns any of the keys; results scatter
  // back to their original positions. A failed shard leaves its keys as
  // misses — partial fleet loss must stay invisible above this layer.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i)
    by_shard[map_.shard_for(keys[i].first, keys[i].second)].push_back(i);
  // Keys whose primary BATCH_GET failed (not merely missed) retry on
  // their replica shard, regrouped into one BATCH_GET per replica.
  std::vector<std::vector<size_t>> retry_by_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    std::vector<std::pair<std::string, uint64_t>> shard_keys;
    shard_keys.reserve(by_shard[s].size());
    for (size_t i : by_shard[s]) shard_keys.push_back(keys[i]);
    auto results = shards_[s]->batch_get(format_hash, shard_keys);
    if (!results) {
      for (size_t i : by_shard[s]) {
        const size_t replica =
            map_.replicas_for(keys[i].first, keys[i].second).second;
        if (replica != s) retry_by_shard[replica].push_back(i);
      }
      continue;
    }
    for (size_t j = 0; j < by_shard[s].size(); ++j)
      out[by_shard[s][j]] = std::move((*results)[j]);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (retry_by_shard[s].empty()) continue;
    failovers_ += retry_by_shard[s].size();
    std::vector<std::pair<std::string, uint64_t>> shard_keys;
    shard_keys.reserve(retry_by_shard[s].size());
    for (size_t i : retry_by_shard[s]) shard_keys.push_back(keys[i]);
    auto results = shards_[s]->batch_get(format_hash, shard_keys);
    if (!results) continue;
    for (size_t j = 0; j < retry_by_shard[s].size(); ++j) {
      if ((*results)[j].first) ++replica_hits_;
      out[retry_by_shard[s][j]] = std::move((*results)[j]);
    }
  }
  return out;
}

bool ShardedRemoteStore::degraded() const {
  if (shards_.empty()) return true;
  for (const auto& shard : shards_)
    if (!shard->degraded()) return false;
  return true;
}

bool ShardedRemoteStore::any_degraded() const {
  for (const auto& shard : shards_)
    if (shard->degraded()) return true;
  return false;
}

std::vector<bool> ShardedRemoteStore::shard_degraded() const {
  std::vector<bool> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->degraded());
  return out;
}

std::string ShardedRemoteStore::degraded_reason() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string why = shards_[i]->degraded_reason();
    if (!why.empty()) return map_.endpoint(i) + ": " + why;
  }
  return {};
}

RemoteStore::Counters ShardedRemoteStore::counters() const {
  RemoteStore::Counters sum;
  for (const auto& shard : shards_) {
    const auto c = shard->counters();
    sum.gets += c.gets;
    sum.hits += c.hits;
    sum.puts += c.puts;
    sum.errors += c.errors;
    sum.retries += c.retries;
    sum.reconnects += c.reconnects;
    sum.oversize += c.oversize;
  }
  // Routing-level counters live here, not in any one shard.
  sum.failovers = failovers_.load();
  sum.replica_hits = replica_hits_.load();
  return sum;
}

}  // namespace fortd::remote
