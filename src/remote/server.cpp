#include "remote/server.hpp"

#include <sstream>

namespace fortd::remote {

namespace {

std::string hex16(uint64_t v) { return ContentStore::hex_digest(v); }

/// JSON string escaping for metrics_json: belt-and-braces — kinds that
/// reach the counters have already passed ContentStore::valid_kind, but
/// the dump must stay well-formed no matter what lands in the map.
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20)
      out += ' ';
    else
      out += c;
  }
  return out;
}

/// Would a reply carrying `blob_size` payload bytes still frame? The
/// slack covers the message type byte and length varints.
bool reply_fits_frame(uint64_t blob_size) {
  return blob_size + 64 <= net::kMaxFramePayload;
}

}  // namespace

CacheDaemon::CacheDaemon(ContentStore* store, ThreadPool* pool,
                         DaemonOptions options)
    : store_(store), pool_(pool), options_(std::move(options)) {
  loop_.set_cycle_handler(
      [this](std::vector<net::ServerLoop::InFrame>& frames) {
        on_cycle(frames);
      });
  loop_.set_closed_handler([this](ConnId id) { hello_done_.erase(id); });
}

CacheDaemon::~CacheDaemon() { stop(); }

bool CacheDaemon::start(std::string* err) {
  if (loop_.running()) return true;
  net::ServerLoop::Options lo;
  lo.host = options_.host;
  lo.port = options_.port;
  return loop_.start(lo, err);
}

void CacheDaemon::stop() {
  if (!loop_.running()) return;
  loop_.stop();
  store_->flush();
}

void CacheDaemon::on_cycle(std::vector<net::ServerLoop::InFrame>& frames) {
  // Decode every frame; run the handshake inline, batch real requests.
  std::vector<std::pair<ConnId, WireMessage>> requests;
  std::map<ConnId, bool> dropped;
  for (auto& in : frames) {
    if (dropped[in.conn]) continue;
    auto msg = decode_message(in.payload);
    if (!msg) {
      dropped[in.conn] = true;
      loop_.drop(in.conn);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++protocol_errors_;
      continue;
    }
    auto it = hello_done_.find(in.conn);
    if (it == hello_done_.end() || !it->second) {
      const uint64_t expected = options_.format_hash_override
                                    ? options_.format_hash_override
                                    : remote_wire_format_hash();
      WireMessage reply;
      reply.request_id = msg->request_id;
      switch (process_hello(*msg, expected, &reply)) {
        case HelloOutcome::Ok:
          hello_done_[in.conn] = true;
          loop_.send(in.conn, encode_message(reply));
          break;
        case HelloOutcome::Reject:
          reply.text = "wire format mismatch: daemon " + hex16(expected) +
                       ", client " + hex16(msg->format_hash);
          loop_.send(in.conn, encode_message(reply));
          loop_.close_after_flush(in.conn);
          dropped[in.conn] = true;  // ignore anything pipelined behind it
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++handshake_rejects_;
          }
          break;
        case HelloOutcome::Protocol: {
          dropped[in.conn] = true;
          loop_.drop(in.conn);
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++protocol_errors_;
          break;
        }
      }
      continue;
    }
    requests.emplace_back(in.conn, std::move(*msg));
  }

  // Answer the batch; several requests in one cycle fan out across the
  // pool (ContentStore and the counters are thread-safe).
  std::vector<WireMessage> replies(requests.size());
  std::vector<char> close_after(requests.size(), 0);
  const auto handle_one = [&](size_t r) {
    bool close = false;
    replies[r] = handle(requests[r].second, &close);
    close_after[r] = close ? 1 : 0;
  };
  if (pool_ && requests.size() > 1) {
    pool_->parallel_for(requests.size(), handle_one);
  } else {
    for (size_t r = 0; r < requests.size(); ++r) handle_one(r);
  }

  // Queue replies in arrival order (per-connection FIFO) and apply the
  // fault-injection hooks.
  bool had_put = false;
  for (size_t r = 0; r < requests.size(); ++r) {
    const ConnId conn = requests[r].first;
    if (dropped[conn]) continue;
    if (requests[r].second.type == MsgType::Put &&
        replies[r].type == MsgType::PutOk)
      had_put = true;
    if (options_.drop_before_reply &&
        options_.drop_before_reply(requests[r].second)) {
      dropped[conn] = true;
      loop_.drop(conn);
      continue;
    }
    if (options_.stall_reply && options_.stall_reply(requests[r].second))
      continue;  // swallow the reply, hold the connection open
    loop_.send(conn, encode_message(replies[r]));
    if (close_after[r]) loop_.close_after_flush(conn);
  }
  if (had_put) store_->flush();  // bounded memory + durable across restart
}

WireMessage CacheDaemon::handle(const WireMessage& req, bool* close_after) {
  WireMessage reply;
  // Echo the id so a pipelining client can match this reply to its
  // request regardless of interleaving.
  reply.request_id = req.request_id;
  switch (req.type) {
    case MsgType::Get: {
      // A kind that is not a plain identifier never reaches the store
      // (and never becomes a filesystem path component): plain miss.
      if (!ContentStore::valid_kind(req.kind)) {
        reply.type = MsgType::GetMiss;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++invalid_kinds_;
        break;
      }
      auto blob = store_->load_blob(req.kind, req.format_hash, req.digest);
      std::lock_guard<std::mutex> lock(stats_mu_);
      auto& k = counters_[req.kind];
      if (blob && reply_fits_frame(blob->size())) {
        reply.type = MsgType::GetOk;
        k.bytes_out += blob->size();
        ++k.get_hits;
        reply.blob = std::move(*blob);
      } else {
        // Absent — or too large to frame, which must degrade to a miss
        // rather than kill the connection with an unframeable reply.
        reply.type = MsgType::GetMiss;
        ++k.get_misses;
      }
      break;
    }
    case MsgType::Put: {
      auto info = inspect_blob_envelope(req.blob);
      if (!ContentStore::valid_kind(req.kind)) {
        // Never let a hostile kind near a path: ContentStore would drop
        // it anyway (defense in depth), but deny loudly at the wire.
        reply.type = MsgType::PutDenied;
        reply.text = "invalid kind";
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++invalid_kinds_;
      } else if (!info || info->digest != req.digest) {
        reply.type = MsgType::PutDenied;
        reply.text = "invalid blob envelope";
      } else if (store_->options().read_only) {
        reply.type = MsgType::PutDenied;
        reply.text = "daemon is read-only";
      } else {
        store_->store_blob(req.kind, req.digest, req.blob);
        reply.type = MsgType::PutOk;
        std::lock_guard<std::mutex> lock(stats_mu_);
        auto& k = counters_[req.kind];
        ++k.puts;
        k.bytes_in += req.blob.size();
      }
      break;
    }
    case MsgType::BatchGet: {
      reply.type = MsgType::BatchGetOk;
      reply.blobs.reserve(req.keys.size());
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++batch_gets_;
        batch_keys_ += req.keys.size();
      }
      uint64_t reply_bytes = 0;  // keep the whole batch frameable
      for (const auto& [kind, digest] : req.keys) {
        if (!ContentStore::valid_kind(kind)) {
          reply.blobs.emplace_back(false, std::vector<uint8_t>{});
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++invalid_kinds_;
          continue;
        }
        auto blob = store_->load_blob(kind, req.format_hash, digest);
        std::lock_guard<std::mutex> lock(stats_mu_);
        auto& k = counters_[kind];
        if (blob && reply_fits_frame(reply_bytes + blob->size() +
                                     16 * req.keys.size())) {
          reply_bytes += blob->size();
          ++k.get_hits;
          k.bytes_out += blob->size();
          reply.blobs.emplace_back(true, std::move(*blob));
        } else {
          ++k.get_misses;
          reply.blobs.emplace_back(false, std::vector<uint8_t>{});
        }
      }
      break;
    }
    case MsgType::Stats:
      reply.type = MsgType::StatsOk;
      reply.text = metrics_json();
      break;
    default:
      reply.type = MsgType::Error;
      reply.text = "unexpected message type";
      *close_after = true;
      break;
  }
  return reply;
}

std::map<std::string, CacheDaemon::KindCounters> CacheDaemon::counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

std::string CacheDaemon::metrics_json() const {
  const auto lc = loop_.counters();
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::ostringstream out;
  out << "{\"connections_accepted\":" << lc.connections_accepted
      << ",\"handshake_rejects\":" << handshake_rejects_
      << ",\"protocol_errors\":" << protocol_errors_ + lc.frame_errors
      << ",\"disconnects_mid_reply\":" << lc.disconnects_mid_reply
      << ",\"invalid_kinds\":" << invalid_kinds_
      << ",\"batch_gets\":" << batch_gets_
      << ",\"batch_keys\":" << batch_keys_ << ",\"kinds\":{";
  bool first = true;
  for (const auto& [kind, k] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(kind) << "\":{\"get_hits\":" << k.get_hits
        << ",\"get_misses\":" << k.get_misses << ",\"puts\":" << k.puts
        << ",\"bytes_in\":" << k.bytes_in << ",\"bytes_out\":" << k.bytes_out
        << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace fortd::remote
