#include "remote/server.hpp"

#include <poll.h>

#include <sstream>

namespace fortd::remote {

namespace {

std::string hex16(uint64_t v) { return ContentStore::hex_digest(v); }

/// JSON string escaping for metrics_json: belt-and-braces — kinds that
/// reach the counters have already passed ContentStore::valid_kind, but
/// the dump must stay well-formed no matter what lands in the map.
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20)
      out += ' ';
    else
      out += c;
  }
  return out;
}

/// Would a reply carrying `blob_size` payload bytes still frame? The
/// slack covers the message type byte and length varints.
bool reply_fits_frame(uint64_t blob_size) {
  return blob_size + 64 <= net::kMaxFramePayload;
}

}  // namespace

CacheDaemon::CacheDaemon(ContentStore* store, ThreadPool* pool,
                         DaemonOptions options)
    : store_(store), pool_(pool), options_(std::move(options)) {}

CacheDaemon::~CacheDaemon() { stop(); }

bool CacheDaemon::start(std::string* err) {
  if (running_.load()) return true;
  if (!listener_.listen_on(options_.host, options_.port, err)) return false;
  stopping_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void CacheDaemon::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  listener_.close();
  running_.store(false);
  store_->flush();
}

void CacheDaemon::queue_reply(Conn& conn, const WireMessage& reply) {
  std::vector<uint8_t> wire;
  if (!net::encode_frame(wire, encode_message(reply))) {
    // Unframeable reply — prevented upstream (oversize GETs answer as
    // misses); close rather than stall the client or garble the stream.
    conn.closing = true;
    return;
  }
  conn.outbuf.append(reinterpret_cast<const char*>(wire.data()), wire.size());
}

bool CacheDaemon::read_conn(Conn& conn, std::vector<WireMessage>& requests) {
  std::string data;
  const auto st = conn.sock.recv_available(data);
  conn.decoder.feed(data);

  while (auto frame = conn.decoder.next()) {
    auto msg = decode_message(*frame);
    if (!msg) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++protocol_errors_;
      return false;
    }
    if (!conn.hello_done) {
      if (msg->type != MsgType::Hello) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++protocol_errors_;
        return false;
      }
      const uint64_t expected = options_.format_hash_override
                                    ? options_.format_hash_override
                                    : remote_wire_format_hash();
      WireMessage reply;
      reply.request_id = msg->request_id;
      if (msg->format_hash == expected) {
        reply.type = MsgType::HelloOk;
        conn.hello_done = true;
        queue_reply(conn, reply);
      } else {
        reply.type = MsgType::HelloReject;
        reply.text = "wire format mismatch: daemon " + hex16(expected) +
                     ", client " + hex16(msg->format_hash);
        queue_reply(conn, reply);
        conn.closing = true;  // close once the reject flushes
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++handshake_rejects_;
        return true;
      }
      continue;
    }
    requests.push_back(std::move(*msg));
  }
  if (conn.decoder.failed()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++protocol_errors_;
    return false;
  }
  if (st == net::IoStatus::Error) return false;
  // EOF with requests still buffered: serve them this cycle, the next
  // poll drops the connection.
  if (st == net::IoStatus::Closed && requests.empty()) return false;
  return true;
}

WireMessage CacheDaemon::handle(const WireMessage& req, bool* close_after) {
  WireMessage reply;
  // Echo the id so a pipelining client can match this reply to its
  // request regardless of interleaving.
  reply.request_id = req.request_id;
  switch (req.type) {
    case MsgType::Get: {
      // A kind that is not a plain identifier never reaches the store
      // (and never becomes a filesystem path component): plain miss.
      if (!ContentStore::valid_kind(req.kind)) {
        reply.type = MsgType::GetMiss;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++invalid_kinds_;
        break;
      }
      auto blob = store_->load_blob(req.kind, req.format_hash, req.digest);
      std::lock_guard<std::mutex> lock(stats_mu_);
      auto& k = counters_[req.kind];
      if (blob && reply_fits_frame(blob->size())) {
        reply.type = MsgType::GetOk;
        k.bytes_out += blob->size();
        ++k.get_hits;
        reply.blob = std::move(*blob);
      } else {
        // Absent — or too large to frame, which must degrade to a miss
        // rather than kill the connection with an unframeable reply.
        reply.type = MsgType::GetMiss;
        ++k.get_misses;
      }
      break;
    }
    case MsgType::Put: {
      auto info = inspect_blob_envelope(req.blob);
      if (!ContentStore::valid_kind(req.kind)) {
        // Never let a hostile kind near a path: ContentStore would drop
        // it anyway (defense in depth), but deny loudly at the wire.
        reply.type = MsgType::PutDenied;
        reply.text = "invalid kind";
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++invalid_kinds_;
      } else if (!info || info->digest != req.digest) {
        reply.type = MsgType::PutDenied;
        reply.text = "invalid blob envelope";
      } else if (store_->options().read_only) {
        reply.type = MsgType::PutDenied;
        reply.text = "daemon is read-only";
      } else {
        store_->store_blob(req.kind, req.digest, req.blob);
        reply.type = MsgType::PutOk;
        std::lock_guard<std::mutex> lock(stats_mu_);
        auto& k = counters_[req.kind];
        ++k.puts;
        k.bytes_in += req.blob.size();
      }
      break;
    }
    case MsgType::BatchGet: {
      reply.type = MsgType::BatchGetOk;
      reply.blobs.reserve(req.keys.size());
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++batch_gets_;
        batch_keys_ += req.keys.size();
      }
      uint64_t reply_bytes = 0;  // keep the whole batch frameable
      for (const auto& [kind, digest] : req.keys) {
        if (!ContentStore::valid_kind(kind)) {
          reply.blobs.emplace_back(false, std::vector<uint8_t>{});
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++invalid_kinds_;
          continue;
        }
        auto blob = store_->load_blob(kind, req.format_hash, digest);
        std::lock_guard<std::mutex> lock(stats_mu_);
        auto& k = counters_[kind];
        if (blob && reply_fits_frame(reply_bytes + blob->size() +
                                     16 * req.keys.size())) {
          reply_bytes += blob->size();
          ++k.get_hits;
          k.bytes_out += blob->size();
          reply.blobs.emplace_back(true, std::move(*blob));
        } else {
          ++k.get_misses;
          reply.blobs.emplace_back(false, std::vector<uint8_t>{});
        }
      }
      break;
    }
    case MsgType::Stats:
      reply.type = MsgType::StatsOk;
      reply.text = metrics_json();
      break;
    default:
      reply.type = MsgType::Error;
      reply.text = "unexpected message type";
      *close_after = true;
      break;
  }
  return reply;
}

void CacheDaemon::serve_loop() {
  std::vector<std::unique_ptr<Conn>> conns;
  while (!stopping_.load()) {
    // Only the first n_polled connections have a mirror entry in fds;
    // connections accepted below are picked up next cycle.
    const size_t n_polled = conns.size();
    std::vector<struct pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : conns) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);

    if (fds[0].revents & POLLIN) {
      while (auto sock = listener_.accept_conn()) {
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(*sock);
        conns.push_back(std::move(conn));
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++connections_accepted_;
      }
    }

    // Gather complete requests from every readable connection.
    std::vector<bool> drop(conns.size(), false);
    std::vector<std::pair<size_t, WireMessage>> requests;
    for (size_t i = 0; i < n_polled; ++i) {
      const short revents = fds[i + 1].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        drop[i] = true;
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        std::vector<WireMessage> batch;
        if (!read_conn(*conns[i], batch)) {
          drop[i] = true;
          continue;
        }
        for (auto& msg : batch) requests.emplace_back(i, std::move(msg));
      }
    }

    // Answer the batch; several requests in one cycle fan out across the
    // pool (ContentStore and the counters are thread-safe).
    std::vector<WireMessage> replies(requests.size());
    std::vector<char> close_after(requests.size(), 0);
    const auto handle_one = [&](size_t r) {
      bool close = false;
      replies[r] = handle(requests[r].second, &close);
      close_after[r] = close ? 1 : 0;
    };
    if (pool_ && requests.size() > 1) {
      pool_->parallel_for(requests.size(), handle_one);
    } else {
      for (size_t r = 0; r < requests.size(); ++r) handle_one(r);
    }

    // Queue replies in arrival order (per-connection FIFO) and apply the
    // fault-injection hooks.
    bool had_put = false;
    for (size_t r = 0; r < requests.size(); ++r) {
      const size_t i = requests[r].first;
      if (drop[i]) continue;
      if (requests[r].second.type == MsgType::Put &&
          replies[r].type == MsgType::PutOk)
        had_put = true;
      if (options_.drop_before_reply &&
          options_.drop_before_reply(requests[r].second)) {
        drop[i] = true;
        continue;
      }
      if (options_.stall_reply && options_.stall_reply(requests[r].second))
        continue;  // swallow the reply, hold the connection open
      queue_reply(*conns[i], replies[r]);
      if (close_after[r]) conns[i]->closing = true;
    }
    if (had_put) store_->flush();  // bounded memory + durable across restart

    // Drain output buffers.
    for (size_t i = 0; i < conns.size(); ++i) {
      if (drop[i] || conns[i]->outbuf.empty()) continue;
      size_t sent = 0;
      auto st = conns[i]->sock.send_nonblocking(
          reinterpret_cast<const uint8_t*>(conns[i]->outbuf.data()),
          conns[i]->outbuf.size(), sent);
      if (sent > 0) conns[i]->outbuf.erase(0, sent);
      if (st != net::IoStatus::Ok) drop[i] = true;
      if (conns[i]->closing && conns[i]->outbuf.empty()) drop[i] = true;
    }

    for (size_t i = conns.size(); i-- > 0;)
      if (drop[i]) conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
  }
}

std::map<std::string, CacheDaemon::KindCounters> CacheDaemon::counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

std::string CacheDaemon::metrics_json() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::ostringstream out;
  out << "{\"connections_accepted\":" << connections_accepted_
      << ",\"handshake_rejects\":" << handshake_rejects_
      << ",\"protocol_errors\":" << protocol_errors_
      << ",\"invalid_kinds\":" << invalid_kinds_
      << ",\"batch_gets\":" << batch_gets_
      << ",\"batch_keys\":" << batch_keys_ << ",\"kinds\":{";
  bool first = true;
  for (const auto& [kind, k] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(kind) << "\":{\"get_hits\":" << k.get_hits
        << ",\"get_misses\":" << k.get_misses << ",\"puts\":" << k.puts
        << ",\"bytes_in\":" << k.bytes_in << ",\"bytes_out\":" << k.bytes_out
        << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace fortd::remote
