// RemoteStore — the networked StorageBackend under ContentStore.
//
// One persistent TCP connection to a fortd-cached daemon, opened lazily
// on the first request and re-opened after failures. Every request runs
// under a deadline (CacheOptions.remote_timeout_ms) and a bounded retry
// budget with exponential backoff plus deterministic jitter; failures
// beyond the budget feed a circuit breaker that, once open, stays open
// for the life of the store — the compiler silently degrades to its
// local tiers and keeps compiling. A remote-cache problem is *never* a
// CompileError: the worst case is the performance of a purely local
// build, reported as one diagnostic line (degraded_reason()).
//
// Thread safety: ContentStore calls get_blob/put_blob from codegen
// workers concurrently, and since protocol v2 the connection is
// *pipelined* rather than serialized. Each request carries a fresh
// request id; sends are interleaved under the mutex, and whichever
// waiter finds no reader active becomes the reader, draining reply
// frames and depositing each into its request's slot by id (a
// shared-reader multiplexer). A reply that outlives its request's
// deadline is discarded by id, so a timeout abandons one request
// without desynchronizing — and without dropping — the connection;
// only stream corruption, EOF, or a failed send forces a reconnect.
// Backoff sleeps run with the mutex *released* (and re-check the
// breaker afterwards), so once the daemon is known-unhealthy other
// workers fail fast instead of queueing behind a stalled request's
// naps.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "driver/compilation_db.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "remote/protocol.hpp"

namespace fortd::remote {

struct RemoteOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int timeout_ms = 250;      // per-attempt deadline (connect and round-trip)
  int max_retries = 2;       // extra attempts after the first failure
  int backoff_ms = 10;       // base of the exponential backoff
  int breaker_threshold = 3; // consecutive failed *requests* that open it
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Backoff sleep, injectable so tests run without wall-clock waits.
  /// Null = real std::this_thread::sleep_for.
  std::function<void(int /*ms*/)> sleep_fn;
  /// Nonzero: sent in HELLO instead of remote_wire_format_hash() (tests
  /// provoke the version-skew rejection path with this).
  uint64_t format_hash_override = 0;
};

class RemoteStore : public StorageBackend {
 public:
  explicit RemoteStore(RemoteOptions options);
  ~RemoteStore() override = default;

  std::optional<std::vector<uint8_t>> get_blob(const std::string& kind,
                                               uint64_t format_hash,
                                               uint64_t digest) override;
  bool put_blob(const std::string& kind, uint64_t digest,
                const std::vector<uint8_t>& blob) override;

  /// One BATCH_GET round trip: per-key (found, enveloped blob) results
  /// parallel to `keys`, or nullopt when the request failed/degraded.
  std::optional<std::vector<std::pair<bool, std::vector<uint8_t>>>> batch_get(
      uint64_t format_hash,
      const std::vector<std::pair<std::string, uint64_t>>& keys);

  /// StorageBackend bulk fetch: batch_get with failure degraded to
  /// all-miss (prefetching is best-effort by design).
  std::vector<std::pair<bool, std::vector<uint8_t>>> batch_get_blobs(
      uint64_t format_hash,
      const std::vector<std::pair<std::string, uint64_t>>& keys) override;

  /// One STATS round trip: the daemon's metrics JSON, or nullopt.
  std::optional<std::string> fetch_stats();

  struct Counters {
    uint64_t gets = 0;       // GET requests answered (hit or miss)
    uint64_t hits = 0;       // GET_OK replies
    uint64_t puts = 0;       // PUT_OK replies
    uint64_t errors = 0;     // failed attempts (timeout/disconnect/garbage)
    uint64_t retries = 0;    // attempts beyond the first, per request
    uint64_t reconnects = 0; // connections (re)established
    uint64_t oversize = 0;   // requests beyond kMaxFramePayload, never sent
    // Replication (ShardedRemoteStore only; always 0 for a single store):
    uint64_t failovers = 0;     // GETs retried on the replica after the
                                // primary shard's request failed
    uint64_t replica_hits = 0;  // of those, served by the replica
  };
  Counters counters() const;

  /// True once the circuit breaker opened; every later request returns
  /// a miss/false immediately without touching the network.
  bool degraded() const;
  /// The first failure that contributed to degradation (empty until one
  /// occurred) — surfaced once as a driver diagnostic.
  std::string degraded_reason() const;

  /// Test access to retry/backoff/fault knobs. Mutate only before the
  /// store is shared with a ContentStore.
  RemoteOptions& options_for_test() { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One in-flight request, keyed by id in pending_. The owning waiter
  /// erases its own entry; the reader only deposits into it.
  struct PendingReply {
    bool done = false;    // reply landed or the stream failed
    bool failed = false;  // done via stream failure, not a reply
    std::string why;      // failure reason when failed
    std::optional<WireMessage> reply;
  };

  /// Connection + HELLO handshake; false (with reason) on failure. A
  /// HELLO_REJECT opens the breaker immediately — skew is permanent.
  /// Never called while a reader holds the connection.
  bool ensure_connected_locked(std::string* why);
  /// Serial send + single-reply receive, used only for the handshake
  /// (a fresh connection has no other traffic to multiplex with).
  std::optional<WireMessage> roundtrip_once_locked(const WireMessage& req,
                                                   std::string* why);
  /// Full request: retries, backoff, breaker accounting. Enters and
  /// leaves with `lock` held; releases it only across backoff sleeps
  /// and recv slices while acting as the reader.
  std::optional<WireMessage> request(std::unique_lock<std::mutex>& lock,
                                     const WireMessage& req);
  /// One attempt: register id, send, await the reply (possibly serving
  /// as the shared reader). Nullopt with `why` set on failure.
  std::optional<WireMessage> attempt_once(std::unique_lock<std::mutex>& lock,
                                          WireMessage req, std::string* why);
  /// Drain reply frames into pending slots until our own reply lands,
  /// our deadline passes, or the stream dies. Runs as the sole reader;
  /// releases `lock` only across bounded recv slices.
  void read_replies(std::unique_lock<std::mutex>& lock, uint64_t my_id,
                    Clock::time_point my_deadline);
  /// The stream is unrecoverable: drop the connection and fail every
  /// pending request so its waiter stops waiting.
  void fail_stream_locked(const std::string& why);
  void drop_connection_locked();
  void note_request_failed_locked(const std::string& why);
  /// The backoff duration for retry `attempt` (advances the jitter PRNG).
  int backoff_ms_locked(int attempt);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  RemoteOptions options_;
  net::Socket sock_;
  net::FrameDecoder decoder_;
  bool hello_done_ = false;
  bool reader_active_ = false;  // exactly one waiter drains the socket
  bool conn_bad_ = false;       // send failed under an active reader
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, PendingReply> pending_;
  int consecutive_failures_ = 0;
  bool breaker_open_ = false;
  std::string degraded_reason_;
  uint64_t jitter_state_;
  Counters counters_;
};

}  // namespace fortd::remote
