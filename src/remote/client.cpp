#include "remote/client.hpp"

#include <chrono>
#include <thread>

namespace fortd::remote {

namespace {

using Clock = std::chrono::steady_clock;

int ms_left(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

/// Conservative upper bound on the encoded size of `m` (every varint
/// costs at most 10 bytes, length-prefixed fields their raw bytes plus
/// one varint). If this fits in a frame, the real encoding does too.
uint64_t wire_size_bound(const WireMessage& m) {
  uint64_t n = 1 + 3 * 10;  // type byte + format_hash/digest varints
  n += m.kind.size() + 10;
  n += m.blob.size() + 10;
  n += m.text.size() + 10;
  for (const auto& [kind, digest] : m.keys) n += kind.size() + 20;
  for (const auto& [found, blob] : m.blobs) n += blob.size() + 11;
  return n;
}

}  // namespace

RemoteStore::RemoteStore(RemoteOptions options)
    : options_(std::move(options)),
      jitter_state_(options_.jitter_seed ? options_.jitter_seed : 1) {}

bool RemoteStore::ensure_connected_locked(std::string* why) {
  if (sock_.valid() && hello_done_) return true;
  drop_connection_locked();

  std::string err;
  auto sock = net::connect_to(options_.host, options_.port, options_.timeout_ms,
                              &err);
  if (!sock) {
    *why = "connect to " + options_.host + ":" +
           std::to_string(options_.port) + " failed: " + err;
    return false;
  }
  sock_ = std::move(*sock);
  ++counters_.reconnects;

  WireMessage hello;
  hello.type = MsgType::Hello;
  hello.format_hash = options_.format_hash_override
                          ? options_.format_hash_override
                          : remote_wire_format_hash();
  auto reply = roundtrip_once_locked(hello, why);
  if (!reply) {
    drop_connection_locked();
    return false;
  }
  if (reply->type == MsgType::HelloReject) {
    // Version skew is permanent for this process; retrying cannot help.
    drop_connection_locked();
    breaker_open_ = true;
    if (degraded_reason_.empty())
      degraded_reason_ = "daemon rejected handshake: " + reply->text;
    *why = degraded_reason_;
    return false;
  }
  if (reply->type != MsgType::HelloOk) {
    drop_connection_locked();
    *why = "unexpected handshake reply";
    return false;
  }
  hello_done_ = true;
  return true;
}

std::optional<WireMessage> RemoteStore::roundtrip_once_locked(
    const WireMessage& req, std::string* why) {
  std::vector<uint8_t> wire;
  if (!net::encode_frame(wire, encode_message(req))) {
    // Unreachable after request()'s size pre-check; refuse rather than
    // garble the stream.
    *why = "request exceeds frame size limit";
    return std::nullopt;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.timeout_ms);
  auto st = sock_.send_all(wire.data(), wire.size(), options_.timeout_ms);
  if (st != net::IoStatus::Ok) {
    *why = st == net::IoStatus::Timeout ? "send timed out"
                                        : "connection lost during send";
    return std::nullopt;
  }
  while (true) {
    if (auto frame = decoder_.next()) {
      auto msg = decode_message(*frame);
      if (!msg) {
        *why = "undecodable reply";
        return std::nullopt;
      }
      return msg;
    }
    if (decoder_.failed()) {
      *why = "garbled reply stream";
      return std::nullopt;
    }
    uint8_t chunk[65536];
    size_t got = 0;
    st = sock_.recv_some(chunk, sizeof(chunk), got, ms_left(deadline));
    if (st == net::IoStatus::Ok) {
      decoder_.feed(chunk, got);
      continue;
    }
    *why = st == net::IoStatus::Timeout  ? "reply timed out"
           : st == net::IoStatus::Closed ? "daemon closed the connection"
                                         : "socket error awaiting reply";
    return std::nullopt;
  }
}

std::optional<WireMessage> RemoteStore::request(
    std::unique_lock<std::mutex>& lock, const WireMessage& req) {
  if (breaker_open_) return std::nullopt;
  // A request that cannot be framed must never reach the wire: the
  // receiver's decoder would sticky-fail, the retries would all die the
  // same way, and the breaker would open with a misleading "garbled
  // reply" reason. An oversize artifact simply isn't cached remotely —
  // counted, not an error, and the breaker stays untouched.
  if (wire_size_bound(req) > net::kMaxFramePayload) {
    ++counters_.oversize;
    return std::nullopt;
  }
  std::string why;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++counters_.retries;
      const int ms = backoff_ms_locked(attempt);
      if (ms > 0) {
        // Nap with mu_ released: a worker backing off must not serialize
        // every other codegen worker behind its sleep.
        lock.unlock();
        if (options_.sleep_fn)
          options_.sleep_fn(ms);
        else
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        lock.lock();
      }
      // Another worker may have opened the breaker while we slept.
      if (breaker_open_) return std::nullopt;
    }
    if (!ensure_connected_locked(&why)) {
      ++counters_.errors;
      if (breaker_open_) return std::nullopt;  // handshake reject
      continue;
    }
    auto reply = roundtrip_once_locked(req, &why);
    if (reply) {
      consecutive_failures_ = 0;
      return reply;
    }
    ++counters_.errors;
    drop_connection_locked();  // the stream is unsynchronized; start over
  }
  note_request_failed_locked(why);
  return std::nullopt;
}

void RemoteStore::drop_connection_locked() {
  sock_.close();
  decoder_ = net::FrameDecoder{};
  hello_done_ = false;
}

void RemoteStore::note_request_failed_locked(const std::string& why) {
  if (degraded_reason_.empty()) degraded_reason_ = why;
  if (++consecutive_failures_ >= options_.breaker_threshold)
    breaker_open_ = true;
}

int RemoteStore::backoff_ms_locked(int attempt) {
  // Exponential base with deterministic xorshift jitter; the injectable
  // sleep (applied by the caller, outside the mutex) keeps tests
  // wall-clock-free.
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  const int base = options_.backoff_ms << (attempt - 1);
  const int jitter =
      options_.backoff_ms > 0
          ? static_cast<int>(jitter_state_ %
                             static_cast<uint64_t>(options_.backoff_ms))
          : 0;
  return base + jitter;
}

std::optional<std::vector<uint8_t>> RemoteStore::get_blob(
    const std::string& kind, uint64_t format_hash, uint64_t digest) {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::Get;
  req.kind = kind;
  req.format_hash = format_hash;
  req.digest = digest;
  auto reply = request(lock, req);
  if (!reply) return std::nullopt;
  ++counters_.gets;
  if (reply->type == MsgType::GetOk) {
    ++counters_.hits;
    return std::move(reply->blob);
  }
  return std::nullopt;  // GetMiss or a protocol-level Error
}

bool RemoteStore::put_blob(const std::string& kind, uint64_t digest,
                           const std::vector<uint8_t>& blob) {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::Put;
  req.kind = kind;
  req.digest = digest;
  req.blob = blob;
  auto reply = request(lock, req);
  if (!reply) return false;
  if (reply->type != MsgType::PutOk) return false;  // denied: daemon healthy
  ++counters_.puts;
  return true;
}

std::optional<std::vector<std::pair<bool, std::vector<uint8_t>>>>
RemoteStore::batch_get(
    uint64_t format_hash,
    const std::vector<std::pair<std::string, uint64_t>>& keys) {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::BatchGet;
  req.format_hash = format_hash;
  req.keys = keys;
  auto reply = request(lock, req);
  if (!reply || reply->type != MsgType::BatchGetOk ||
      reply->blobs.size() != keys.size())
    return std::nullopt;
  counters_.gets += keys.size();
  for (const auto& [found, blob] : reply->blobs)
    if (found) ++counters_.hits;
  return std::move(reply->blobs);
}

std::optional<std::string> RemoteStore::fetch_stats() {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::Stats;
  auto reply = request(lock, req);
  if (!reply || reply->type != MsgType::StatsOk) return std::nullopt;
  return std::move(reply->text);
}

RemoteStore::Counters RemoteStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

bool RemoteStore::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_open_;
}

std::string RemoteStore::degraded_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_reason_;
}

}  // namespace fortd::remote
