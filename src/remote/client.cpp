#include "remote/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace fortd::remote {

namespace {

using Clock = std::chrono::steady_clock;

int ms_left(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

/// Conservative upper bound on the encoded size of `m` (every varint
/// costs at most 10 bytes, length-prefixed fields their raw bytes plus
/// one varint). If this fits in a frame, the real encoding does too.
uint64_t wire_size_bound(const WireMessage& m) {
  uint64_t n = 1 + 3 * 10;  // type byte + format_hash/digest varints
  n += m.kind.size() + 10;
  n += m.blob.size() + 10;
  n += m.text.size() + 10;
  for (const auto& [kind, digest] : m.keys) n += kind.size() + 20;
  for (const auto& [found, blob] : m.blobs) n += blob.size() + 11;
  return n;
}

}  // namespace

RemoteStore::RemoteStore(RemoteOptions options)
    : options_(std::move(options)),
      jitter_state_(options_.jitter_seed ? options_.jitter_seed : 1) {}

bool RemoteStore::ensure_connected_locked(std::string* why) {
  if (conn_bad_) {
    // A send failed while a reader was draining the old socket. Only
    // the reader may drop it (it still recv's with the mutex released);
    // until it exits, this attempt fails fast and retries after backoff.
    if (reader_active_) {
      *why = "connection lost during send";
      return false;
    }
    drop_connection_locked();
  }
  if (sock_.valid() && hello_done_) return true;
  drop_connection_locked();

  std::string err;
  auto sock = net::connect_to(options_.host, options_.port, options_.timeout_ms,
                              &err);
  if (!sock) {
    *why = "connect to " + options_.host + ":" +
           std::to_string(options_.port) + " failed: " + err;
    return false;
  }
  sock_ = std::move(*sock);
  ++counters_.reconnects;

  WireMessage hello;
  hello.type = MsgType::Hello;
  hello.format_hash = options_.format_hash_override
                          ? options_.format_hash_override
                          : remote_wire_format_hash();
  auto reply = roundtrip_once_locked(hello, why);
  if (!reply) {
    drop_connection_locked();
    return false;
  }
  if (reply->type == MsgType::HelloReject) {
    // Version skew is permanent for this process; retrying cannot help.
    drop_connection_locked();
    breaker_open_ = true;
    if (degraded_reason_.empty())
      degraded_reason_ = "daemon rejected handshake: " + reply->text;
    *why = degraded_reason_;
    return false;
  }
  if (reply->type != MsgType::HelloOk) {
    drop_connection_locked();
    *why = "unexpected handshake reply";
    return false;
  }
  hello_done_ = true;
  return true;
}

std::optional<WireMessage> RemoteStore::roundtrip_once_locked(
    const WireMessage& req, std::string* why) {
  std::vector<uint8_t> wire;
  if (!net::encode_frame(wire, encode_message(req))) {
    // Unreachable after request()'s size pre-check; refuse rather than
    // garble the stream.
    *why = "request exceeds frame size limit";
    return std::nullopt;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.timeout_ms);
  auto st = sock_.send_all(wire.data(), wire.size(), options_.timeout_ms);
  if (st != net::IoStatus::Ok) {
    *why = st == net::IoStatus::Timeout ? "send timed out"
                                        : "connection lost during send";
    return std::nullopt;
  }
  while (true) {
    if (auto frame = decoder_.next()) {
      auto msg = decode_message(*frame);
      if (!msg) {
        *why = "undecodable reply";
        return std::nullopt;
      }
      return msg;
    }
    if (decoder_.failed()) {
      *why = "garbled reply stream";
      return std::nullopt;
    }
    uint8_t chunk[65536];
    size_t got = 0;
    st = sock_.recv_some(chunk, sizeof(chunk), got, ms_left(deadline));
    if (st == net::IoStatus::Ok) {
      decoder_.feed(chunk, got);
      continue;
    }
    *why = st == net::IoStatus::Timeout  ? "reply timed out"
           : st == net::IoStatus::Closed ? "daemon closed the connection"
                                         : "socket error awaiting reply";
    return std::nullopt;
  }
}

std::optional<WireMessage> RemoteStore::request(
    std::unique_lock<std::mutex>& lock, const WireMessage& req) {
  if (breaker_open_) return std::nullopt;
  // A request that cannot be framed must never reach the wire: the
  // receiver's decoder would sticky-fail, the retries would all die the
  // same way, and the breaker would open with a misleading "garbled
  // reply" reason. An oversize artifact simply isn't cached remotely —
  // counted, not an error, and the breaker stays untouched.
  if (wire_size_bound(req) > net::kMaxFramePayload) {
    ++counters_.oversize;
    return std::nullopt;
  }
  std::string why;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++counters_.retries;
      const int ms = backoff_ms_locked(attempt);
      if (ms > 0) {
        // Nap with mu_ released: a worker backing off must not serialize
        // every other codegen worker behind its sleep.
        lock.unlock();
        if (options_.sleep_fn)
          options_.sleep_fn(ms);
        else
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        lock.lock();
      }
      // Another worker may have opened the breaker while we slept.
      if (breaker_open_) return std::nullopt;
    }
    if (!ensure_connected_locked(&why)) {
      ++counters_.errors;
      if (breaker_open_) return std::nullopt;  // handshake reject
      continue;
    }
    auto reply = attempt_once(lock, req, &why);
    if (reply) {
      consecutive_failures_ = 0;
      return reply;
    }
    ++counters_.errors;
    // Unlike the serial protocol, a failed attempt does not tear the
    // connection down: request ids keep the stream synchronized, so a
    // timed-out request is simply abandoned (its late reply, if any, is
    // discarded by id) and the retry reuses the live connection. Stream
    // corruption and send failures drop it inside attempt_once instead.
  }
  note_request_failed_locked(why);
  return std::nullopt;
}

std::optional<WireMessage> RemoteStore::attempt_once(
    std::unique_lock<std::mutex>& lock, WireMessage req, std::string* why) {
  const uint64_t id = next_request_id_++;
  req.request_id = id;
  std::vector<uint8_t> wire;
  if (!net::encode_frame(wire, encode_message(req))) {
    // Unreachable after request()'s size pre-check; refuse rather than
    // garble the stream.
    *why = "request exceeds frame size limit";
    return std::nullopt;
  }

  // Send under the mutex so concurrent requests' frames never interleave.
  auto st = sock_.send_all(wire.data(), wire.size(), options_.timeout_ms);
  if (st != net::IoStatus::Ok) {
    *why = st == net::IoStatus::Timeout ? "send timed out"
                                        : "connection lost during send";
    if (reader_active_)
      conn_bad_ = true;  // the reader owns the socket; it cleans up
    else
      fail_stream_locked(*why);
    return std::nullopt;
  }

  pending_.emplace(id, PendingReply{});
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.timeout_ms);
  while (true) {
    auto it = pending_.find(id);
    if (it->second.done) {
      if (it->second.failed) {
        *why = it->second.why;
        pending_.erase(it);
        return std::nullopt;
      }
      auto reply = std::move(it->second.reply);
      pending_.erase(it);
      return reply;
    }
    if (Clock::now() >= deadline) {
      // Abandon the id; the connection stays up and whoever is reading
      // discards the late reply when (if) it arrives.
      pending_.erase(it);
      *why = "reply timed out";
      return std::nullopt;
    }
    if (!reader_active_) {
      reader_active_ = true;
      read_replies(lock, id, deadline);
      reader_active_ = false;
      // Hand the reader role (and any deposited replies) to the others.
      cv_.notify_all();
      continue;
    }
    cv_.wait_until(lock, std::min(deadline, Clock::now() +
                                                std::chrono::milliseconds(50)));
  }
}

void RemoteStore::read_replies(std::unique_lock<std::mutex>& lock,
                               uint64_t my_id, Clock::time_point my_deadline) {
  while (true) {
    while (auto frame = decoder_.next()) {
      auto msg = decode_message(*frame);
      if (!msg) {
        fail_stream_locked("undecodable reply");
        return;
      }
      auto it = pending_.find(msg->request_id);
      if (it != pending_.end() && !it->second.done) {
        it->second.done = true;
        it->second.reply = std::move(*msg);
        cv_.notify_all();
      }
      // Unknown id: the reply outlived a timed-out request — discard.
    }
    if (decoder_.failed()) {
      fail_stream_locked("garbled reply stream");
      return;
    }
    auto own = pending_.find(my_id);
    if (own == pending_.end() || own->second.done) return;
    const int left = ms_left(my_deadline);
    if (left <= 0) return;  // our caller times the request out
    uint8_t chunk[65536];
    size_t got = 0;
    // Bounded recv slice with the mutex released so senders (and the
    // conn_bad_ signal) make progress while we block on the socket.
    const int slice = std::min(left, 25);
    lock.unlock();
    auto st = sock_.recv_some(chunk, sizeof(chunk), got, slice);
    lock.lock();
    if (conn_bad_) {
      // A sender hit a send failure while we were out: the connection
      // is broken even if this recv happened to succeed.
      fail_stream_locked("connection lost during send");
      return;
    }
    if (st == net::IoStatus::Ok) {
      decoder_.feed(chunk, got);
      continue;
    }
    if (st == net::IoStatus::Timeout) continue;  // re-check deadline above
    fail_stream_locked(st == net::IoStatus::Closed
                           ? "daemon closed the connection"
                           : "socket error awaiting reply");
    return;
  }
}

void RemoteStore::fail_stream_locked(const std::string& why) {
  drop_connection_locked();
  conn_bad_ = false;
  for (auto& [id, slot] : pending_) {
    if (slot.done) continue;
    slot.done = true;
    slot.failed = true;
    slot.why = why;
  }
  cv_.notify_all();
}

void RemoteStore::drop_connection_locked() {
  sock_.close();
  decoder_ = net::FrameDecoder{};
  hello_done_ = false;
}

void RemoteStore::note_request_failed_locked(const std::string& why) {
  if (degraded_reason_.empty()) degraded_reason_ = why;
  if (++consecutive_failures_ >= options_.breaker_threshold)
    breaker_open_ = true;
}

int RemoteStore::backoff_ms_locked(int attempt) {
  // Exponential base with deterministic xorshift jitter; the injectable
  // sleep (applied by the caller, outside the mutex) keeps tests
  // wall-clock-free.
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  const int base = options_.backoff_ms << (attempt - 1);
  const int jitter =
      options_.backoff_ms > 0
          ? static_cast<int>(jitter_state_ %
                             static_cast<uint64_t>(options_.backoff_ms))
          : 0;
  return base + jitter;
}

std::optional<std::vector<uint8_t>> RemoteStore::get_blob(
    const std::string& kind, uint64_t format_hash, uint64_t digest) {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::Get;
  req.kind = kind;
  req.format_hash = format_hash;
  req.digest = digest;
  auto reply = request(lock, req);
  if (!reply) return std::nullopt;
  ++counters_.gets;
  if (reply->type == MsgType::GetOk) {
    ++counters_.hits;
    return std::move(reply->blob);
  }
  return std::nullopt;  // GetMiss or a protocol-level Error
}

bool RemoteStore::put_blob(const std::string& kind, uint64_t digest,
                           const std::vector<uint8_t>& blob) {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::Put;
  req.kind = kind;
  req.digest = digest;
  req.blob = blob;
  auto reply = request(lock, req);
  if (!reply) return false;
  if (reply->type != MsgType::PutOk) return false;  // denied: daemon healthy
  ++counters_.puts;
  return true;
}

std::optional<std::vector<std::pair<bool, std::vector<uint8_t>>>>
RemoteStore::batch_get(
    uint64_t format_hash,
    const std::vector<std::pair<std::string, uint64_t>>& keys) {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::BatchGet;
  req.format_hash = format_hash;
  req.keys = keys;
  auto reply = request(lock, req);
  if (!reply || reply->type != MsgType::BatchGetOk ||
      reply->blobs.size() != keys.size())
    return std::nullopt;
  counters_.gets += keys.size();
  for (const auto& [found, blob] : reply->blobs)
    if (found) ++counters_.hits;
  return std::move(reply->blobs);
}

std::vector<std::pair<bool, std::vector<uint8_t>>> RemoteStore::batch_get_blobs(
    uint64_t format_hash,
    const std::vector<std::pair<std::string, uint64_t>>& keys) {
  if (auto results = batch_get(format_hash, keys)) return std::move(*results);
  return std::vector<std::pair<bool, std::vector<uint8_t>>>(keys.size());
}

std::optional<std::string> RemoteStore::fetch_stats() {
  std::unique_lock<std::mutex> lock(mu_);
  WireMessage req;
  req.type = MsgType::Stats;
  auto reply = request(lock, req);
  if (!reply || reply->type != MsgType::StatsOk) return std::nullopt;
  return std::move(reply->text);
}

RemoteStore::Counters RemoteStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

bool RemoteStore::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_open_;
}

std::string RemoteStore::degraded_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_reason_;
}

}  // namespace fortd::remote
