#include "analysis/cfg.hpp"

#include <algorithm>

namespace fortd {

int Cfg::new_block() {
  int id = static_cast<int>(blocks_.size());
  blocks_.push_back(BasicBlock{});
  blocks_.back().id = id;
  return id;
}

void Cfg::add_edge(int from, int to) {
  blocks_[static_cast<size_t>(from)].succs.push_back(to);
  blocks_[static_cast<size_t>(to)].preds.push_back(from);
}

int Cfg::lower(const std::vector<StmtPtr>& stmts, int cur) {
  for (const auto& s : stmts) {
    switch (s->kind) {
      case StmtKind::If: {
        // The condition evaluation belongs to the current block.
        blocks_[static_cast<size_t>(cur)].stmts.push_back(s.get());
        int then_entry = new_block();
        add_edge(cur, then_entry);
        int then_end = lower(s->then_body, then_entry);
        int join = new_block();
        if (then_end >= 0) add_edge(then_end, join);
        if (s->else_body.empty()) {
          add_edge(cur, join);
        } else {
          int else_entry = new_block();
          add_edge(cur, else_entry);
          int else_end = lower(s->else_body, else_entry);
          if (else_end >= 0) add_edge(else_end, join);
        }
        cur = join;
        break;
      }
      case StmtKind::Do: {
        blocks_[static_cast<size_t>(cur)].stmts.push_back(s.get());
        int header = new_block();
        add_edge(cur, header);
        int body_entry = new_block();
        add_edge(header, body_entry);
        int body_end = lower(s->body, body_entry);
        if (body_end >= 0) add_edge(body_end, header);  // back edge
        int after = new_block();
        add_edge(header, after);  // zero-trip / loop exit
        cur = after;
        break;
      }
      case StmtKind::Return: {
        blocks_[static_cast<size_t>(cur)].stmts.push_back(s.get());
        add_edge(cur, exit_);
        return -1;  // no fall-through
      }
      default:
        blocks_[static_cast<size_t>(cur)].stmts.push_back(s.get());
        break;
    }
  }
  return cur;
}

Cfg Cfg::build(const Procedure& proc) {
  Cfg cfg;
  cfg.entry_ = cfg.new_block();
  cfg.exit_ = cfg.new_block();
  int first = cfg.new_block();
  cfg.add_edge(cfg.entry_, first);
  int last = cfg.lower(proc.body, first);
  if (last >= 0) cfg.add_edge(last, cfg.exit_);
  return cfg;
}

std::vector<int> Cfg::reverse_postorder() const {
  std::vector<int> order;
  std::vector<char> seen(blocks_.size(), 0);
  // Iterative postorder DFS.
  std::vector<std::pair<int, size_t>> stack;
  stack.emplace_back(entry_, 0);
  seen[static_cast<size_t>(entry_)] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& succs = blocks_[static_cast<size_t>(b)].succs;
    if (next < succs.size()) {
      int succ = succs[next++];
      if (!seen[static_cast<size_t>(succ)]) {
        seen[static_cast<size_t>(succ)] = 1;
        stack.emplace_back(succ, 0);
      }
    } else {
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

// ---------------------------------------------------------------------------
// LoopTree
// ---------------------------------------------------------------------------

void LoopTree::visit(const std::vector<StmtPtr>& stmts, int enclosing) {
  for (const auto& s : stmts) {
    loop_of_stmt_[s.get()] = enclosing;
    if (s->kind == StmtKind::Do) {
      int id = static_cast<int>(loops_.size());
      LoopInfo info;
      info.id = id;
      info.stmt = s.get();
      info.parent = enclosing;
      info.depth = enclosing < 0 ? 1 : loops_[static_cast<size_t>(enclosing)].depth + 1;
      loops_.push_back(info);
      if (enclosing >= 0)
        loops_[static_cast<size_t>(enclosing)].children.push_back(id);
      visit(s->body, id);
    } else {
      visit(s->then_body, enclosing);
      visit(s->else_body, enclosing);
    }
  }
}

LoopTree LoopTree::build(const Procedure& proc) {
  LoopTree tree;
  tree.visit(proc.body, -1);
  return tree;
}

int LoopTree::innermost_loop_of(const Stmt* stmt) const {
  auto it = loop_of_stmt_.find(stmt);
  return it == loop_of_stmt_.end() ? -1 : it->second;
}

std::vector<const Stmt*> LoopTree::nest_of(const Stmt* stmt) const {
  std::vector<const Stmt*> nest;
  for (int l = innermost_loop_of(stmt); l >= 0; l = loops_[static_cast<size_t>(l)].parent)
    nest.push_back(loops_[static_cast<size_t>(l)].stmt);
  std::reverse(nest.begin(), nest.end());
  return nest;
}

std::vector<std::string> LoopTree::nest_vars_of(const Stmt* stmt) const {
  std::vector<std::string> vars;
  for (const Stmt* loop : nest_of(stmt)) vars.push_back(loop->loop_var);
  return vars;
}

}  // namespace fortd
