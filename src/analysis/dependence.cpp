#include "analysis/dependence.hpp"

#include <algorithm>

namespace fortd {

std::vector<RefInfo> collect_refs(const Procedure& proc, const LoopTree& loops) {
  std::vector<RefInfo> refs;
  walk_stmts(proc.body, [&](const Stmt& s) {
    if (s.kind != StmtKind::Assign) return;
    std::vector<const Stmt*> nest = loops.nest_of(&s);
    if (s.lhs->kind == ExprKind::ArrayRef)
      refs.push_back({&s, s.lhs.get(), /*is_write=*/true, nest});
    walk_expr(*s.rhs, [&](const Expr& e) {
      if (e.kind == ExprKind::ArrayRef)
        refs.push_back({&s, &e, /*is_write=*/false, nest});
    });
    // Subscripts of the lhs are reads too.
    for (const auto& sub : s.lhs->args)
      walk_expr(*sub, [&](const Expr& e) {
        if (e.kind == ExprKind::ArrayRef)
          refs.push_back({&s, &e, /*is_write=*/false, nest});
      });
  });
  return refs;
}

namespace {

/// Per-level dependence constraint.
struct LevelEntry {
  enum Kind { Star, Dist } kind = Star;
  int64_t dist = 0;
};

/// Result of subscript testing over the common nest.
struct PairResult {
  bool possible = true;
  std::vector<LevelEntry> levels;  // one per common loop level
};

}  // namespace

DependenceAnalysis::DependenceAnalysis(const Procedure& proc,
                                       const SymbolicEnv& env)
    : proc_(proc), env_(env), loops_(LoopTree::build(proc)) {
  refs_ = collect_refs(proc_, loops_);
  for (const auto& w : refs_) {
    if (!w.is_write) continue;
    for (const auto& r : refs_) {
      if (&w == &r) continue;
      // Write/write pairs produce output dependences; write/read pairs
      // produce true or anti dependences. We test write-vs-everything.
      test_pair(w, r);
    }
  }
}

void DependenceAnalysis::test_pair(const RefInfo& w, const RefInfo& r) {
  if (w.ref->name != r.ref->name) return;
  if (w.ref->args.size() != r.ref->args.size()) return;  // reshaping: handled
                                                         // interprocedurally
  // Common nest: shared prefix of enclosing DO statements.
  size_t common = 0;
  while (common < w.nest.size() && common < r.nest.size() &&
         w.nest[common] == r.nest[common])
    ++common;
  std::vector<std::string> common_vars;
  for (size_t l = 0; l < common; ++l) common_vars.push_back(w.nest[l]->loop_var);

  PairResult res;
  res.levels.assign(common, LevelEntry{});

  for (size_t d = 0; d < w.ref->args.size(); ++d) {
    auto wf = extract_affine(*w.ref->args[d], env_.consts);
    auto rf = extract_affine(*r.ref->args[d], env_.consts);
    if (!wf || !rf) continue;  // non-affine: no constraint (conservative)

    // Does the pair involve symbols other than the common loop vars?
    auto only_common = [&](const AffineForm& f) {
      for (const auto& v : f.vars())
        if (std::find(common_vars.begin(), common_vars.end(), v) ==
            common_vars.end())
          return false;
      return true;
    };
    if (!only_common(*wf) || !only_common(*rf)) {
      // Unknown symbols (e.g. a formal index from the caller, or a deeper
      // non-common loop variable): if the two forms are structurally equal
      // we can still treat the dimension as imposing zero distance on its
      // loop vars, otherwise no constraint.
      AffineForm diff = *wf - *rf;
      if (diff.is_constant() && diff.konst != 0) {
        res.possible = false;  // provably different locations
        break;
      }
      continue;
    }

    // Count involved common variables.
    std::vector<std::string> involved;
    for (const auto& v : common_vars)
      if (wf->coeff(v) != 0 || rf->coeff(v) != 0) involved.push_back(v);

    if (involved.empty()) {
      // ZIV test.
      if (wf->konst != rf->konst) {
        res.possible = false;
        break;
      }
      continue;
    }
    if (involved.size() == 1) {
      const std::string& v = involved[0];
      int64_t aw = wf->coeff(v), ar = rf->coeff(v);
      if (aw == ar && aw != 0) {
        // Strong SIV: a*iw + cw = a*ir + cr  =>  ir - iw = (cw - cr)/a.
        int64_t num = wf->konst - rf->konst;
        if (num % aw != 0) {
          res.possible = false;
          break;
        }
        int64_t dist = num / aw;
        // Level of v within the common nest.
        size_t lvl = static_cast<size_t>(
            std::find(common_vars.begin(), common_vars.end(), v) -
            common_vars.begin());
        LevelEntry& e = res.levels[lvl];
        if (e.kind == LevelEntry::Dist && e.dist != dist) {
          res.possible = false;
          break;
        }
        e.kind = LevelEntry::Dist;
        e.dist = dist;
        continue;
      }
      // Weak SIV or coupled coefficients: leave unconstrained (Star).
      continue;
    }
    // MIV: unconstrained (conservative).
  }

  if (!res.possible) return;

  // A dependence from w to r (in that execution order) has distance vector
  // (d_1..d_common) with d_l = ir_l - iw_l, lexicographically positive, or
  // all-zero with w lexically before r. Kind depends on which runs first:
  //   w (write) -> r (read): true dependence; r -> w: anti; both writes:
  //   output.
  auto record = [&](bool w_first, int level, std::optional<int64_t> dist) {
    DepKind kind;
    if (r.is_write)
      kind = DepKind::Output;
    else
      kind = w_first ? DepKind::True : DepKind::Anti;
    const Stmt* src = w_first ? w.stmt : r.stmt;
    const Stmt* sink = w_first ? r.stmt : w.stmt;
    deps_.push_back({kind, w.ref->name, src, sink, level, dist});
    if (kind == DepKind::True && level > 0) {
      int& best = true_dep_level_[r.ref];
      best = std::max(best, level);
    }
  };

  // Carried dependences: find each level that can be the first non-zero.
  for (size_t l = 0; l < res.levels.size(); ++l) {
    // Levels before l must admit zero distance.
    bool prefix_zero = true;
    for (size_t k = 0; k < l; ++k)
      if (res.levels[k].kind == LevelEntry::Dist && res.levels[k].dist != 0)
        prefix_zero = false;
    if (!prefix_zero) {
      // A fixed non-zero distance at an outer level k makes k the only
      // carrying level; deeper levels cannot be "first non-zero".
      break;
    }
    const LevelEntry& e = res.levels[l];
    int lvl = static_cast<int>(l) + 1;
    if (e.kind == LevelEntry::Star) {
      // Distance can be positive (w before r) or negative (r before w).
      record(/*w_first=*/true, lvl, std::nullopt);
      if (!r.is_write) record(/*w_first=*/false, lvl, std::nullopt);
    } else if (e.dist > 0) {
      record(/*w_first=*/true, lvl, e.dist);
    } else if (e.dist < 0) {
      record(/*w_first=*/false, lvl, -e.dist);
    }
    // If the distance at this level is exactly 0, no dependence is carried
    // here; continue to deeper levels.
  }

  // Loop-independent dependence: all levels admit zero.
  bool all_zero = std::all_of(res.levels.begin(), res.levels.end(),
                              [](const LevelEntry& e) {
                                return e.kind == LevelEntry::Star || e.dist == 0;
                              });
  if (all_zero && w.stmt != r.stmt) {
    bool w_first = w.stmt->id < r.stmt->id;  // source order for structured code
    record(w_first, 0, 0);
  } else if (all_zero && w.stmt == r.stmt && !r.is_write) {
    // Within one statement the rhs read executes before the lhs write:
    // loop-independent anti dependence only.
    record(/*w_first=*/false, 0, 0);
  }
}

int DependenceAnalysis::deepest_true_dep_level_into(const Expr* read_ref) const {
  auto it = true_dep_level_.find(read_ref);
  return it == true_dep_level_.end() ? 0 : it->second;
}

}  // namespace fortd
