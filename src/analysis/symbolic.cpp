#include "analysis/symbolic.hpp"

namespace fortd {

int64_t AffineForm::coeff(const std::string& var) const {
  auto it = coeffs.find(var);
  return it == coeffs.end() ? 0 : it->second;
}

std::vector<std::string> AffineForm::vars() const {
  std::vector<std::string> out;
  for (const auto& [v, c] : coeffs)
    if (c != 0) out.push_back(v);
  return out;
}

std::string AffineForm::str() const {
  std::string s = std::to_string(konst);
  for (const auto& [v, c] : coeffs) {
    if (c == 0) continue;
    s += (c >= 0 ? "+" : "-");
    if (std::abs(c) != 1) s += std::to_string(std::abs(c)) + "*";
    s += v;
  }
  return s;
}

AffineForm AffineForm::operator+(const AffineForm& o) const {
  AffineForm r = *this;
  r.konst += o.konst;
  for (const auto& [v, c] : o.coeffs) {
    r.coeffs[v] += c;
    if (r.coeffs[v] == 0) r.coeffs.erase(v);
  }
  return r;
}

AffineForm AffineForm::operator-(const AffineForm& o) const {
  return *this + o.scaled(-1);
}

AffineForm AffineForm::scaled(int64_t k) const {
  AffineForm r;
  r.konst = konst * k;
  if (k != 0)
    for (const auto& [v, c] : coeffs) r.coeffs[v] = c * k;
  return r;
}

std::optional<AffineForm> extract_affine(
    const Expr& e, const std::unordered_map<std::string, int64_t>& consts) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      AffineForm f;
      f.konst = e.int_val;
      return f;
    }
    case ExprKind::VarRef: {
      AffineForm f;
      auto it = consts.find(e.name);
      if (it != consts.end())
        f.konst = it->second;
      else
        f.coeffs[e.name] = 1;
      return f;
    }
    case ExprKind::Unary: {
      if (e.un_op != UnOp::Neg) return std::nullopt;
      auto f = extract_affine(*e.args[0], consts);
      if (!f) return std::nullopt;
      return f->scaled(-1);
    }
    case ExprKind::Binary: {
      auto l = extract_affine(*e.args[0], consts);
      auto r = extract_affine(*e.args[1], consts);
      if (!l || !r) return std::nullopt;
      switch (e.bin_op) {
        case BinOp::Add: return *l + *r;
        case BinOp::Sub: return *l - *r;
        case BinOp::Mul:
          if (l->is_constant()) return r->scaled(l->konst);
          if (r->is_constant()) return l->scaled(r->konst);
          return std::nullopt;
        case BinOp::Div:
          if (r->is_constant() && r->konst != 0 && l->is_constant() &&
              l->konst % r->konst == 0) {
            AffineForm f;
            f.konst = l->konst / r->konst;
            return f;
          }
          return std::nullopt;
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

SymbolicEnv SymbolicEnv::from_params(const Procedure& proc, const SymbolTable& st) {
  SymbolicEnv env;
  (void)proc;
  for (const auto& [name, sym] : st.all())
    if (sym.kind == SymbolKind::Param) env.consts[name] = sym.param_value;
  return env;
}

std::optional<int64_t> eval_int(const Expr& e, const SymbolicEnv& env) {
  return try_eval_int(e, env.consts);
}

std::optional<Triplet> eval_range(const AffineForm& form, const SymbolicEnv& env) {
  // Fold any variables that are constants in the environment.
  AffineForm f;
  f.konst = form.konst;
  for (const auto& [v, c] : form.coeffs) {
    if (c == 0) continue;
    auto it = env.consts.find(v);
    if (it != env.consts.end())
      f.konst += c * it->second;
    else
      f.coeffs[v] = c;
  }
  auto vars = f.vars();
  if (vars.empty()) return Triplet::single(f.konst);
  if (vars.size() > 1) return std::nullopt;
  const std::string& v = vars[0];
  auto it = env.ranges.find(v);
  if (it == env.ranges.end()) return std::nullopt;
  const Triplet& r = it->second;
  if (r.empty()) return Triplet::empty_range();
  int64_t c = f.coeff(v);
  int64_t a = c * r.lb + f.konst;
  int64_t b = c * r.ub + f.konst;
  int64_t step = std::abs(c) * r.step;
  return Triplet(std::min(a, b), std::max(a, b), step);
}

std::optional<Triplet> eval_range(const Expr& e, const SymbolicEnv& env) {
  auto form = extract_affine(e, env.consts);
  if (!form) return std::nullopt;
  return eval_range(*form, env);
}

}  // namespace fortd
