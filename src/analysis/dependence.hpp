// Data dependence analysis over affine subscripts (ZIV and strong-SIV
// tests, conservative fallback), providing exactly what Fortran D code
// generation needs:
//
//   * "communication is generated only for nonlocal references that cause
//     true dependences carried by loops within the procedure" — §5.4
//   * "message vectorization uses the level of the deepest loop-carried
//     true dependence to combine messages at outer loop levels" — §3/§5.4
//
// Levels are 1-based from the outermost loop of the sink's nest; level 0
// means no enclosing loop carries the dependence (the message can be
// vectorized out of the whole nest / passed to callers).
#pragma once

#include <optional>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/symbolic.hpp"

namespace fortd {

/// One array reference with its context.
struct RefInfo {
  const Stmt* stmt = nullptr;
  const Expr* ref = nullptr;  // ArrayRef expression
  bool is_write = false;
  std::vector<const Stmt*> nest;  // enclosing DO statements, outermost first
};

/// All array references in a procedure (assignments only; CALL arguments
/// are summarized interprocedurally, not here).
std::vector<RefInfo> collect_refs(const Procedure& proc, const LoopTree& loops);

enum class DepKind { True, Anti, Output };

struct Dependence {
  DepKind kind;
  std::string array;
  const Stmt* src;
  const Stmt* sink;
  /// 1-based level of the carrying loop in the *common* nest; 0 for
  /// loop-independent dependences.
  int level;
  /// Carried distance at `level` when known (SIV), nullopt for '*'.
  std::optional<int64_t> distance;
};

class DependenceAnalysis {
public:
  DependenceAnalysis(const Procedure& proc, const SymbolicEnv& env);

  /// All pairwise dependences among assignment references.
  const std::vector<Dependence>& all() const { return deps_; }

  /// Deepest loop level (1-based, within `read`'s nest) carrying a true
  /// dependence whose sink is the given rhs reference; 0 when no enclosing
  /// loop carries one. This is the paper's "commlevel".
  int deepest_true_dep_level_into(const Expr* read_ref) const;

  /// True if some true dependence carried by a loop of this procedure has
  /// the given rhs reference as its sink.
  bool has_carried_true_dep_into(const Expr* read_ref) const {
    return deepest_true_dep_level_into(read_ref) > 0;
  }

  const std::vector<RefInfo>& refs() const { return refs_; }

private:
  void test_pair(const RefInfo& w, const RefInfo& r);

  const Procedure& proc_;
  const SymbolicEnv& env_;
  LoopTree loops_;
  std::vector<RefInfo> refs_;
  std::vector<Dependence> deps_;
  // Sink ref -> deepest carried true-dep level.
  std::map<const Expr*, int> true_dep_level_;
};

}  // namespace fortd
