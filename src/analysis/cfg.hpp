// Control-flow graph and loop-nest structure for one procedure.
//
// The dialect is fully structured (DO/IF, no GOTO), so the CFG is built
// compositionally. Basic blocks carry pointers into the procedure's AST;
// the CFG does not own statements.
#pragma once

#include <map>
#include <vector>

#include "frontend/ast.hpp"

namespace fortd {

struct BasicBlock {
  int id = -1;
  std::vector<const Stmt*> stmts;
  std::vector<int> succs;
  std::vector<int> preds;
};

class Cfg {
public:
  static Cfg build(const Procedure& proc);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(int id) const { return blocks_[static_cast<size_t>(id)]; }
  int entry() const { return entry_; }
  int exit() const { return exit_; }
  int size() const { return static_cast<int>(blocks_.size()); }

  /// Blocks in reverse postorder from the entry (good iteration order for
  /// forward problems; reverse it for backward problems).
  std::vector<int> reverse_postorder() const;

private:
  int new_block();
  void add_edge(int from, int to);
  /// Lower a statement list starting in block `cur`; returns the block the
  /// fall-through continues in.
  int lower(const std::vector<StmtPtr>& stmts, int cur);

  std::vector<BasicBlock> blocks_;
  int entry_ = -1;
  int exit_ = -1;
};

/// One natural loop (a DO statement) in the procedure.
struct LoopInfo {
  int id = -1;
  const Stmt* stmt = nullptr;  // the DO statement
  int parent = -1;             // enclosing loop, -1 at top level
  int depth = 1;               // 1 = outermost
  std::vector<int> children;
};

/// Loop-nesting structure. Loop *levels* follow the dependence-analysis
/// convention: level 1 is the outermost loop of a nest.
class LoopTree {
public:
  static LoopTree build(const Procedure& proc);

  const std::vector<LoopInfo>& loops() const { return loops_; }
  const LoopInfo& loop(int id) const { return loops_[static_cast<size_t>(id)]; }
  int size() const { return static_cast<int>(loops_.size()); }

  /// Innermost loop containing `stmt`, or -1 when the statement is not
  /// inside any loop. (The DO statement itself maps to its *enclosing*
  /// loop.)
  int innermost_loop_of(const Stmt* stmt) const;

  /// The enclosing DO statements of `stmt`, outermost first.
  std::vector<const Stmt*> nest_of(const Stmt* stmt) const;

  /// Loop variables of the nest enclosing `stmt`, outermost first.
  std::vector<std::string> nest_vars_of(const Stmt* stmt) const;

private:
  void visit(const std::vector<StmtPtr>& stmts, int enclosing);

  std::vector<LoopInfo> loops_;
  std::map<const Stmt*, int> loop_of_stmt_;
};

}  // namespace fortd
