#include "analysis/dataflow.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace fortd {

BitSet& BitSet::operator|=(const BitSet& o) {
  assert(n_ == o.n_);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= o.bits_[i];
  return *this;
}

BitSet& BitSet::operator&=(const BitSet& o) {
  assert(n_ == o.n_);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] &= o.bits_[i];
  return *this;
}

BitSet& BitSet::subtract(const BitSet& o) {
  assert(n_ == o.n_);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] &= ~o.bits_[i];
  return *this;
}

bool BitSet::any() const {
  return std::any_of(bits_.begin(), bits_.end(), [](uint64_t w) { return w != 0; });
}

int BitSet::count() const {
  int c = 0;
  for (uint64_t w : bits_) c += std::popcount(w);
  return c;
}

std::vector<int> BitSet::members() const {
  std::vector<int> out;
  for (int i = 0; i < n_; ++i)
    if (get(i)) out.push_back(i);
  return out;
}

std::string BitSet::str() const {
  std::string s = "{";
  bool first = true;
  for (int m : members()) {
    if (!first) s += ",";
    s += std::to_string(m);
    first = false;
  }
  return s + "}";
}

DataflowResult solve_dataflow(const Cfg& cfg, const DataflowProblem& problem) {
  const int n = cfg.size();
  assert(static_cast<int>(problem.gen.size()) == n);
  assert(static_cast<int>(problem.kill.size()) == n);

  DataflowResult res;
  res.in.assign(static_cast<size_t>(n), BitSet(problem.num_facts));
  res.out.assign(static_cast<size_t>(n), BitSet(problem.num_facts));

  // For a must (intersection) problem, initialize interior sets to TOP
  // (all facts); the boundary node keeps its boundary value.
  BitSet top(problem.num_facts);
  if (!problem.may)
    for (int i = 0; i < problem.num_facts; ++i) top.set(i);

  const int boundary_block = problem.forward ? cfg.entry() : cfg.exit();
  if (!problem.may)
    for (auto& s : res.out) s = top;
  res.out[static_cast<size_t>(boundary_block)] = problem.boundary;

  std::vector<int> order = cfg.reverse_postorder();
  if (!problem.forward) std::reverse(order.begin(), order.end());

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : order) {
      if (b == boundary_block) continue;
      const BasicBlock& blk = cfg.block(b);
      const auto& inputs = problem.forward ? blk.preds : blk.succs;

      BitSet meet(problem.num_facts);
      if (!problem.may && !inputs.empty()) meet = top;
      for (int p : inputs) {
        if (problem.may)
          meet |= res.out[static_cast<size_t>(p)];
        else
          meet &= res.out[static_cast<size_t>(p)];
      }
      res.in[static_cast<size_t>(b)] = meet;

      BitSet next = meet;
      next.subtract(problem.kill[static_cast<size_t>(b)]);
      next |= problem.gen[static_cast<size_t>(b)];
      if (!(next == res.out[static_cast<size_t>(b)])) {
        res.out[static_cast<size_t>(b)] = std::move(next);
        changed = true;
      }
    }
  }
  return res;
}

}  // namespace fortd
