// Symbolic analysis: affine forms over loop variables and symbolic
// constants, constant evaluation, and value-range evaluation of
// expressions. This is the small slice of ParaScope's symbolic analysis
// the Fortran D compiler needs: enough to turn subscripts plus iteration
// sets into index-set RSDs.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "frontend/ast.hpp"
#include "ir/rsd.hpp"
#include "ir/symbol_table.hpp"

namespace fortd {

/// An affine integer form: konst + sum_i coeffs[var_i] * var_i.
struct AffineForm {
  std::map<std::string, int64_t> coeffs;
  int64_t konst = 0;

  bool is_constant() const { return coeffs.empty(); }
  /// Coefficient of `var` (0 when absent).
  int64_t coeff(const std::string& var) const;
  /// Variables with non-zero coefficients.
  std::vector<std::string> vars() const;
  std::string str() const;

  AffineForm operator+(const AffineForm& o) const;
  AffineForm operator-(const AffineForm& o) const;
  AffineForm scaled(int64_t k) const;
};

/// Extract an affine form from an expression; nullopt for non-affine
/// expressions (products of variables, function calls, reals, ...).
/// Known constants in `consts` fold away.
std::optional<AffineForm> extract_affine(
    const Expr& e, const std::unordered_map<std::string, int64_t>& consts = {});

/// Evaluation context: known integer constants plus value ranges of loop
/// variables (as triplets).
struct SymbolicEnv {
  std::unordered_map<std::string, int64_t> consts;
  std::unordered_map<std::string, Triplet> ranges;

  static SymbolicEnv from_params(const Procedure& proc, const SymbolTable& st);
};

/// Constant-evaluate under the environment's constants.
std::optional<int64_t> eval_int(const Expr& e, const SymbolicEnv& env);

/// Evaluate the value range of an affine expression where each variable is
/// either a constant or ranges over a triplet: e.g. i+5 with i in [1:25]
/// gives [6:30]. Multiple range variables combine only when at most one has
/// a non-zero coefficient (the common compilable case); otherwise nullopt.
std::optional<Triplet> eval_range(const Expr& e, const SymbolicEnv& env);
std::optional<Triplet> eval_range(const AffineForm& form, const SymbolicEnv& env);

}  // namespace fortd
