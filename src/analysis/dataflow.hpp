// Generic iterative data-flow framework over a Cfg, used for local
// reaching decompositions (forward, may) and live decompositions
// (backward, may). Facts are small-integer indices into a problem-defined
// universe; sets are dynamic bitsets.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"

namespace fortd {

/// Minimal dynamic bitset with the operations the solver needs.
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(int n) : bits_((static_cast<size_t>(n) + 63) / 64, 0), n_(n) {}

  int size() const { return n_; }
  bool get(int i) const {
    return (bits_[static_cast<size_t>(i) / 64] >> (static_cast<size_t>(i) % 64)) & 1;
  }
  void set(int i) { bits_[static_cast<size_t>(i) / 64] |= uint64_t{1} << (static_cast<size_t>(i) % 64); }
  void reset(int i) { bits_[static_cast<size_t>(i) / 64] &= ~(uint64_t{1} << (static_cast<size_t>(i) % 64)); }
  void clear() { std::fill(bits_.begin(), bits_.end(), 0); }

  BitSet& operator|=(const BitSet& o);
  BitSet& operator&=(const BitSet& o);
  /// this = this \ o
  BitSet& subtract(const BitSet& o);
  bool operator==(const BitSet& o) const { return bits_ == o.bits_; }
  bool any() const;
  int count() const;
  std::vector<int> members() const;
  std::string str() const;

private:
  std::vector<uint64_t> bits_;
  int n_ = 0;
};

/// A gen/kill data-flow problem:  out = gen ∪ (in \ kill)  with in the
/// union (may) or intersection (must) over predecessor outs. For backward
/// problems the roles of preds/succs and in/out are swapped by the solver.
struct DataflowProblem {
  int num_facts = 0;
  bool forward = true;
  bool may = true;  // union confluence; false = intersection
  std::vector<BitSet> gen;   // one per basic block
  std::vector<BitSet> kill;  // one per basic block
  BitSet boundary;           // facts at entry (forward) or exit (backward)
};

struct DataflowResult {
  std::vector<BitSet> in;   // facts at block entry (execution order)
  std::vector<BitSet> out;  // facts at block exit
};

/// Iterate to a fixed point. Terminates because transfer functions are
/// monotone over a finite lattice.
DataflowResult solve_dataflow(const Cfg& cfg, const DataflowProblem& problem);

}  // namespace fortd
