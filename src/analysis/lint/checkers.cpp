// The built-in lint checkers. Each one is a pure consumer of the
// interprocedural products (reaching decompositions, side effects, overlap
// estimates) — see analysis/lint/lint.hpp for the registry contract.
#include <algorithm>
#include <set>
#include <vector>

#include "analysis/lint/lint.hpp"
#include "ir/symbol_table.hpp"

namespace fortd {

namespace {

std::string specs_str(const std::set<DecompSpec>& specs) {
  std::string out;
  for (const auto& spec : specs) {
    if (!out.empty()) out += ", ";
    out += spec.str();
  }
  return out;
}

// ---------------------------------------------------------------------------
// fortd-call-mismatch — conflicting decompositions across a call boundary
// ---------------------------------------------------------------------------
//
// After the cloning fixed point every procedure body should see a unique
// decomposition per variable (§5.2). A conflict that survives means either
// (a) a single call site is reached by several decompositions (control-flow
// merge in the caller — cloning partitions *sites*, so it cannot help), or
// (b) the procedure hit the growth threshold and fell back to run-time
// resolution. Both silently change the generated communication; this
// checker names them at the call site that injects the conflict.
class CallMismatchChecker final : public Checker {
public:
  const char* id() const override { return "fortd-call-mismatch"; }
  const char* description() const override {
    return "conflicting decompositions reach a procedure across call sites";
  }

  void check(const LintContext& ctx, const std::string& proc,
             LintSink& sink) const override {
    const ReachingDecomps& rd = ctx.ipa.reaching;
    for (const CallSiteInfo* site : ctx.ipa.acg.calls_from(proc)) {
      const Procedure* callee = ctx.program.find(site->callee);
      if (!callee) continue;
      auto rit = rd.reaching.find(site->callee);
      if (rit == rd.reaching.end()) continue;
      for (const auto& [var, specs] : rit->second) {
        std::set<DecompSpec> concrete;
        for (const auto& s : specs)
          if (!s.is_top) concrete.insert(s);
        if (concrete.size() < 2) continue;

        // Conflict in the callee: find what this site contributes.
        int formal = callee->formal_index(var);
        std::string caller_var = var;  // globals keep their name
        if (formal >= 0) {
          if (formal >= static_cast<int>(site->actuals.size())) continue;
          const Expr* actual = site->actuals[static_cast<size_t>(formal)];
          if (actual->kind != ExprKind::VarRef) continue;
          caller_var = actual->name;
        }
        std::set<DecompSpec> at_site;
        for (const auto& s :
             rd.specs_at(proc, site->stmt, caller_var))
          if (!s.is_top) at_site.insert(s);
        if (at_site.empty()) continue;

        SourceLoc loc = site->stmt ? site->stmt->loc : SourceLoc{};
        std::string binding =
            formal >= 0 ? "array '" + caller_var + "' bound to formal '" +
                              var + "' of '" + site->callee + "'"
                        : "common array '" + var + "' in '" + site->callee + "'";
        sink.warning(loc, "call to '" + site->callee + "' in '" + proc +
                              "': " + binding + " reaches with " +
                              specs_str(at_site) + " but '" + site->callee +
                              "' is entered under conflicting decompositions {" +
                              specs_str(concrete) + "}");
        if (at_site.size() > 1) {
          sink.note(loc,
                    "the conflict merges inside this call site (control-flow "
                    "paths disagree on the decomposition of '" + caller_var +
                    "'); cloning cannot separate one site — add an explicit "
                    "DISTRIBUTE before the call");
        } else if (ctx.ipa.runtime_fallback.count(site->callee)) {
          sink.note(loc, "'" + site->callee +
                             "' hit the cloning growth threshold and fell "
                             "back to run-time resolution; raising "
                             "IpaOptions.max_procedures would let the clone '" +
                             site->callee + "$2' bind this site to " +
                             specs_str(at_site));
        } else {
          sink.note(loc, "a clone of '" + site->callee + "' (e.g. '" +
                             site->callee + "$2') specialized to " +
                             specs_str(at_site) +
                             " would resolve the mismatch for this site");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// fortd-overlap-bounds — overlap demand vs. declared array bounds
// ---------------------------------------------------------------------------
//
// Fig. 13 merges constant subscript offsets bottom-up so every procedure
// declares the same overlap extents. When the merged demand exceeds the
// local BLOCK extent, overlap storage cannot hold the nonlocal data: the
// generated nearest-neighbor shift is wrong (or silently degrades to
// buffers), so surface it statically.
class OverlapBoundsChecker final : public Checker {
public:
  const char* id() const override { return "fortd-overlap-bounds"; }
  const char* description() const override {
    return "interprocedural overlap demand exceeds the local block extent";
  }

  void check(const LintContext& ctx, const std::string& proc,
             LintSink& sink) const override {
    auto pit = ctx.overlaps.estimates.find(proc);
    if (pit == ctx.overlaps.estimates.end()) return;
    const SymbolTable& st = ctx.program.symtab(proc);
    const Procedure* p = ctx.program.find(proc);
    for (const auto& [array, off] : pit->second) {
      const Symbol* sym = st.lookup(array);
      if (!sym || !sym->is_array() || !sym->dims_const) continue;
      auto spec = ctx.ipa.reaching.unique_spec(proc, array);
      if (!spec || spec->is_top) continue;
      for (int d = 0; d < sym->rank(); ++d) {
        if (d >= static_cast<int>(spec->dists.size())) break;
        if (spec->dists[static_cast<size_t>(d)].kind != DistKind::Block)
          continue;
        int64_t pos = d < static_cast<int>(off.pos.size())
                          ? off.pos[static_cast<size_t>(d)] : 0;
        int64_t neg = d < static_cast<int>(off.neg.size())
                          ? off.neg[static_cast<size_t>(d)] : 0;
        int64_t demand = std::max(pos, neg);
        if (demand <= 0) continue;
        int64_t extent = sym->extent(d);
        int64_t block =
            (extent + ctx.options.n_procs - 1) / ctx.options.n_procs;
        if (demand <= block) continue;
        SourceLoc loc = p && !p->body.empty() ? p->body.front()->loc
                                              : SourceLoc{};
        if (const VarDecl* decl = p ? p->find_decl(array) : nullptr)
          loc = decl->loc;
        sink.warning(
            loc, "overlap demand +" + std::to_string(pos) + "/-" +
                     std::to_string(neg) + " on dimension " +
                     std::to_string(d + 1) + " of '" + array + "' in '" +
                     proc + "' exceeds the local BLOCK extent (" +
                     std::to_string(block) + " of " + std::to_string(extent) +
                     " elements at P=" + std::to_string(ctx.options.n_procs) +
                     "): nearest-neighbor overlap storage cannot hold it");
        sink.note(loc, "the shift reaches past the adjacent processor's "
                       "block; reduce the stencil offset, enlarge '" + array +
                       "', or distribute over fewer processors");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// fortd-loop-sequential — owner-computes mapping degenerates to one owner
// ---------------------------------------------------------------------------
//
// A partitioned loop only runs in parallel when its owner-computes
// constraint varies with some enclosing loop variable (§5.3). When the
// distributed-dimension subscript of every written distributed array is
// loop-invariant, each execution of the loop writes elements owned by a
// single processor — the "parallel" loop is serial plus guards.
class LoopSequentialChecker final : public Checker {
public:
  const char* id() const override { return "fortd-loop-sequential"; }
  const char* description() const override {
    return "partitioned loop executes on a single processor";
  }

  void check(const LintContext& ctx, const std::string& proc,
             LintSink& sink) const override {
    const Procedure* p = ctx.program.find(proc);
    if (!p) return;
    const SymbolTable& st = ctx.program.symtab(proc);

    struct Finding {
      const Stmt* loop;
      const Stmt* assign;
      std::string array;
      DecompSpec spec;
      int dim;
    };
    std::vector<Finding> findings;
    std::set<const Stmt*> reported_loops;
    std::vector<const Stmt*> loops;

    auto scan = [&](auto&& self, const std::vector<StmtPtr>& stmts) -> void {
      for (const StmtPtr& s : stmts) {
        switch (s->kind) {
          case StmtKind::Do:
            loops.push_back(s.get());
            self(self, s->body);
            loops.pop_back();
            break;
          case StmtKind::If:
            self(self, s->then_body);
            self(self, s->else_body);
            break;
          case StmtKind::Assign: {
            if (loops.empty()) break;
            const Expr& lhs = *s->lhs;
            if (lhs.kind != ExprKind::ArrayRef) break;
            const Symbol* sym = st.lookup(lhs.name);
            if (!sym || !sym->is_array()) break;
            auto specs = ctx.ipa.reaching.specs_at(proc, s.get(), lhs.name);
            if (specs.size() != 1 || specs.begin()->is_top) break;
            const DecompSpec spec = *specs.begin();
            int dd = spec.single_distributed_dim();
            if (dd < 0 || dd >= static_cast<int>(lhs.args.size())) break;
            // Does the distributed-dimension subscript vary with any
            // enclosing loop?
            bool varies = false;
            walk_expr(*lhs.args[static_cast<size_t>(dd)],
                      [&](const Expr& e) {
                        if (e.kind != ExprKind::VarRef) return;
                        for (const Stmt* l : loops)
                          if (l->loop_var == e.name) varies = true;
                      });
            if (varies) break;
            // Pipelined, not sequential: a formal subscript that some
            // caller binds to an enclosing loop index (Fig. 5's range
            // annotation) places successive invocations on successive
            // owners — dgefa's column operations are the canonical case.
            bool pipelined = false;
            walk_expr(*lhs.args[static_cast<size_t>(dd)],
                      [&](const Expr& e) {
                        if (e.kind != ExprKind::VarRef) return;
                        int fi = p->formal_index(e.name);
                        if (fi < 0) return;
                        for (const CallSiteInfo* cs :
                             ctx.ipa.acg.calls_to(proc)) {
                          if (fi >= static_cast<int>(cs->actuals.size()))
                            continue;
                          const Expr* a = cs->actuals[static_cast<size_t>(fi)];
                          if (a->kind != ExprKind::VarRef) continue;
                          for (const AcgLoop& l : cs->enclosing_loops)
                            if (l.var == a->name) pipelined = true;
                        }
                      });
            if (pipelined) break;
            const Stmt* innermost = loops.back();
            if (reported_loops.insert(innermost).second)
              findings.push_back({innermost, s.get(), lhs.name, spec, dd});
            break;
          }
          default:
            break;
        }
      }
    };
    scan(scan, p->body);

    for (const Finding& f : findings) {
      sink.warning(
          f.loop->loc,
          "loop over '" + f.loop->loop_var + "' in '" + proc +
              "' writes '" + f.array + "' (distributed " + f.spec.str() +
              ") with a loop-invariant subscript in distributed dimension " +
              std::to_string(f.dim + 1) +
              ": every iteration is owned by one processor, so the loop "
              "sequentializes under owner-computes");
      sink.note(f.assign->loc,
                "make the subscript of dimension " + std::to_string(f.dim + 1) +
                    " vary with the loop, or distribute a dimension the loop "
                    "actually sweeps");
    }
  }
};

// ---------------------------------------------------------------------------
// fortd-dead-decomp — DISTRIBUTE/ALIGN killed or unused before any use
// ---------------------------------------------------------------------------
//
// The live-decomposition idea of Fig. 16 re-applied as a lint: a
// DISTRIBUTE whose decomposition is overwritten (or falls off the end of
// the procedure) before any affected array is referenced never influences
// code generation — it is dead source text, usually a sign the programmer
// distributed the wrong target.
class DeadDecompChecker final : public Checker {
public:
  const char* id() const override { return "fortd-dead-decomp"; }
  const char* description() const override {
    return "DISTRIBUTE/ALIGN statement is dead before any use";
  }

  void check(const LintContext& ctx, const std::string& proc,
             LintSink& sink) const override {
    const Procedure* p = ctx.program.find(proc);
    if (!p) return;
    const SymbolTable& st = ctx.program.symtab(proc);
    auto sit = ctx.ipa.summaries.find(proc);
    if (sit == ctx.ipa.summaries.end()) return;
    const auto& align = sit->second.align;

    // Frames of the walk: (statement list, index of the enclosing stmt in
    // it) from outermost to the list holding the DISTRIBUTE.
    struct Frame {
      const std::vector<StmtPtr>* list;
      size_t index;
      bool is_loop_body;  // list is the body of a Do
      const Stmt* loop;   // the Do statement when is_loop_body
    };

    auto uses = [&](const Stmt& s, const std::set<std::string>& arrays,
                    auto&& self) -> bool {
      bool used = false;
      for_each_expr(s, [&](const Expr& e) {
        if ((e.kind == ExprKind::VarRef || e.kind == ExprKind::ArrayRef) &&
            arrays.count(e.name))
          used = true;
      });
      if (used) return true;
      // A call may touch COMMON arrays without naming them.
      if (s.kind == StmtKind::Call) {
        for (const std::string& a : arrays) {
          const Symbol* sym = st.lookup(a);
          if (sym && sym->is_global()) return true;
        }
      }
      for (const auto* body : {&s.then_body, &s.else_body, &s.body})
        for (const StmtPtr& inner : *body)
          if (self(*inner, arrays, self)) return true;
      return false;
    };

    // Scan list[from..] for a use or a same-level kill of `arrays`.
    enum class Scan { Use, Kill, Fallthrough };
    const Stmt* kill_stmt = nullptr;
    auto scan_list = [&](const std::vector<StmtPtr>& list, size_t from,
                         const std::set<std::string>& arrays) -> Scan {
      for (size_t i = from; i < list.size(); ++i) {
        const Stmt& s = *list[i];
        if (s.kind == StmtKind::Distribute) {
          auto killed = affected_arrays(s, *p, st, align);
          bool covers_all = !arrays.empty();
          for (const std::string& a : arrays)
            if (!std::count(killed.begin(), killed.end(), a))
              covers_all = false;
          if (covers_all) {
            kill_stmt = &s;
            return Scan::Kill;
          }
        }
        if (uses(s, arrays, uses)) return Scan::Use;
      }
      return Scan::Fallthrough;
    };

    auto report = [&](const Stmt& d, const std::set<std::string>& arrays) {
      std::string names;
      for (const std::string& a : arrays) {
        if (!names.empty()) names += ", ";
        names += "'" + a + "'";
      }
      if (kill_stmt) {
        sink.warning(d.loc, "DISTRIBUTE '" + d.dist_target + "' in '" + proc +
                                "' is killed by the DISTRIBUTE at line " +
                                std::to_string(kill_stmt->loc.line) +
                                " before any use of " + names);
      } else {
        sink.warning(d.loc, "DISTRIBUTE '" + d.dist_target + "' in '" + proc +
                                "' is never used: no reference to " + names +
                                " follows it");
      }
      sink.note(d.loc, "delete the statement or move it ahead of the uses "
                       "it was meant to cover");
    };

    std::vector<Frame> frames;
    auto walk = [&](auto&& self, const std::vector<StmtPtr>& list,
                    bool is_loop_body, const Stmt* loop) -> void {
      for (size_t i = 0; i < list.size(); ++i) {
        const Stmt& s = *list[i];
        frames.push_back({&list, i, is_loop_body, loop});
        if (s.kind == StmtKind::Distribute) {
          auto arrays_vec = affected_arrays(s, *p, st, align);
          if (arrays_vec.empty()) {
            sink.warning(s.loc, "DISTRIBUTE '" + s.dist_target + "' in '" +
                                    proc + "' has no effect: no array is "
                                    "aligned with decomposition '" +
                                    s.dist_target + "'");
            sink.note(s.loc, "add an ALIGN statement or distribute the "
                             "array directly");
          } else {
            std::set<std::string> arrays(arrays_vec.begin(), arrays_vec.end());
            kill_stmt = nullptr;
            Scan r = Scan::Fallthrough;
            // Forward through the current list, then outward through the
            // enclosing frames.
            for (auto f = frames.rbegin(); f != frames.rend(); ++f) {
              r = scan_list(*f->list, f->index + 1, arrays);
              if (r != Scan::Fallthrough) break;
              // Wrap-around: a DISTRIBUTE inside a loop body reaches the
              // next iteration's leading statements.
              if (f->is_loop_body && f->loop &&
                  uses(*f->loop, arrays, uses)) {
                r = Scan::Use;
                break;
              }
            }
            if (r != Scan::Use) report(s, arrays);
          }
        }
        if (s.kind == StmtKind::Do) self(self, s.body, true, &s);
        if (s.kind == StmtKind::If) {
          self(self, s.then_body, false, nullptr);
          self(self, s.else_body, false, nullptr);
        }
        frames.pop_back();
      }
    };
    walk(walk, p->body, false, nullptr);
  }
};

// ---------------------------------------------------------------------------
// fortd-alias-hazard — write through one name of a may-alias pair
// ---------------------------------------------------------------------------
//
// The interprocedural alias pass (§6.4, ipa/alias.hpp) records pairs of
// names a call chain can bind to overlapping storage. Decomposition
// propagation, overlap analysis, and owner-computes code generation all
// treat distinct names as distinct arrays, so a procedure that *writes*
// one member of a pair silently updates storage its analysis attributed
// to the other. This checker surfaces the first such write per pair, with
// the inducing call site as provenance.
class AliasHazardChecker final : public Checker {
public:
  const char* id() const override { return "fortd-alias-hazard"; }
  const char* description() const override {
    return "write through one name of an interprocedural may-alias pair";
  }

  void check(const LintContext& ctx, const std::string& proc,
             LintSink& sink) const override {
    const std::set<AliasPair>* pairs = ctx.ipa.alias.of(proc);
    if (!pairs) return;
    const Procedure* p = ctx.program.find(proc);
    if (!p) return;
    for (const AliasPair& pr : *pairs) {
      // First lexical write to either member of the pair.
      const Stmt* write = nullptr;
      std::string written;
      walk_stmts(p->body, [&](const Stmt& s) {
        if (write || s.kind != StmtKind::Assign || !s.lhs) return;
        if (s.lhs->kind != ExprKind::VarRef &&
            s.lhs->kind != ExprKind::ArrayRef)
          return;
        if (s.lhs->name == pr.a || s.lhs->name == pr.b) {
          write = &s;
          written = s.lhs->name;
        }
      });
      if (!write) continue;
      const std::string& other = written == pr.a ? pr.b : pr.a;
      sink.warning(write->loc,
                   "'" + written + "' may alias '" + other + "' in '" + proc +
                       "': this write is visible through '" + other +
                       "', but analysis and code generation treat the names "
                       "as distinct storage");
      sink.note(pr.loc, "the aliasing is introduced by the call in '" +
                            pr.via + "' that binds overlapping storage to '" +
                            pr.a + "' and '" + pr.b + "'");
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Checker>> make_default_checkers() {
  std::vector<std::unique_ptr<Checker>> out;
  out.push_back(std::make_unique<CallMismatchChecker>());
  out.push_back(std::make_unique<OverlapBoundsChecker>());
  out.push_back(std::make_unique<LoopSequentialChecker>());
  out.push_back(std::make_unique<DeadDecompChecker>());
  out.push_back(std::make_unique<AliasHazardChecker>());
  return out;
}

}  // namespace fortd
