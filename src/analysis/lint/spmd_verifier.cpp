#include "analysis/lint/spmd_verifier.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>

#include "codegen/spmd_printer.hpp"
#include "ir/symbol_table.hpp"
#include "support/thread_pool.hpp"

namespace fortd {

namespace {

using Env = std::unordered_map<std::string, int64_t>;

/// True when the expression references the processor identity (directly
/// via my$p or indirectly via an owner$ ownership intrinsic).
bool mentions_processor(const Expr& e) {
  bool found = false;
  walk_expr(e, [&](const Expr& x) {
    if (x.kind == ExprKind::VarRef && x.name == "my$p") found = true;
    if (x.kind == ExprKind::FuncCall && x.name.rfind("owner$", 0) == 0)
      found = true;
  });
  return found;
}

bool mentions_myp(const Expr& e) {
  bool found = false;
  walk_expr(e, [&](const Expr& x) {
    if (x.kind == ExprKind::VarRef && x.name == "my$p") found = true;
  });
  return found;
}

/// Boolean evaluation of generated guard expressions over `env`.
/// Short-circuits .and./.or. so edge-processor guards close even when the
/// other operand is run-time data.
std::optional<bool> eval_bool(const Expr& e, const Env& env) {
  if (e.kind == ExprKind::Unary && e.un_op == UnOp::Not) {
    auto v = eval_bool(*e.args[0], env);
    if (!v) return std::nullopt;
    return !*v;
  }
  if (e.kind != ExprKind::Binary) return std::nullopt;
  switch (e.bin_op) {
    case BinOp::And: {
      auto l = eval_bool(*e.args[0], env);
      auto r = eval_bool(*e.args[1], env);
      if (l && !*l) return false;
      if (r && !*r) return false;
      if (l && r) return true;
      return std::nullopt;
    }
    case BinOp::Or: {
      auto l = eval_bool(*e.args[0], env);
      auto r = eval_bool(*e.args[1], env);
      if (l && *l) return true;
      if (r && *r) return true;
      if (l && r) return false;
      return std::nullopt;
    }
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      auto l = try_eval_int(*e.args[0], env);
      auto r = try_eval_int(*e.args[1], env);
      if (!l || !r) return std::nullopt;
      switch (e.bin_op) {
        case BinOp::Eq: return *l == *r;
        case BinOp::Ne: return *l != *r;
        case BinOp::Lt: return *l < *r;
        case BinOp::Le: return *l <= *r;
        case BinOp::Gt: return *l > *r;
        default: return *l >= *r;
      }
    }
    default:
      return std::nullopt;
  }
}

/// Elements a message section covers under `env`; nullopt when a bound
/// involves run-time values. A known-empty dimension empties the whole
/// section regardless of the unknown ones (the machine skips it).
std::optional<int64_t> section_size(const std::vector<SectionExpr>& sec,
                                    const Env& env) {
  int64_t total = 1;
  bool unknown = false;
  for (const SectionExpr& t : sec) {
    auto lb = try_eval_int(*t.lb, env);
    auto ub = try_eval_int(*t.ub, env);
    int64_t step = 1;
    if (t.step) {
      auto s = try_eval_int(*t.step, env);
      if (!s || *s <= 0) return std::nullopt;
      step = *s;
    }
    if (!lb || !ub) {
      unknown = true;
      continue;
    }
    int64_t n = *ub < *lb ? 0 : (*ub - *lb) / step + 1;
    if (n == 0) return 0;
    total *= n;
  }
  if (unknown) return std::nullopt;
  return total;
}

std::string section_str(const std::vector<SectionExpr>& sec) {
  std::string s = "(";
  for (size_t i = 0; i < sec.size(); ++i) {
    if (i) s += ",";
    s += print_expr(*sec[i].lb) + ":" + print_expr(*sec[i].ub);
    if (sec[i].step) s += ":" + print_expr(*sec[i].step);
  }
  return s + ")";
}

struct GuardTerm {
  const Expr* cond;
  bool negated;
};

/// One concrete per-processor message instance. `size` is -1 when the
/// section extent is not compile-time constant.
struct Inst {
  int self;
  int peer;
  int64_t size;
  bool matched = false;
};

/// One send/recv statement together with the scope-local guards over it.
struct MsgOp {
  const Stmt* stmt = nullptr;
  std::vector<GuardTerm> guards;
  /// Guards/peer do not close over my$p + constants; matched structurally.
  bool symbolic = false;
  std::vector<Inst> insts;  // concrete ops only (empty sections dropped)
  bool sym_matched = false; // symbolic ops only
  int seq = 0;              // program-order position within the scope
};

/// A synchronizing collective (broadcast/allreduce/remap) in scope program
/// order, kept for the deadlock simulation. MarkDist is excluded: it does
/// not synchronize at run time, so treating it as a barrier would invent
/// orderings real executions do not have.
struct CollOp {
  const Stmt* stmt = nullptr;
  std::vector<GuardTerm> guards;
  int seq = 0;
};

struct Counters {
  int sends = 0, recvs = 0, collectives = 0, matched = 0, unmatched = 0;
  int deadlocks = 0;
  int diags = 0;  // diag() calls; gates the simulation, not reported
};

class Verifier {
public:
  Verifier(const SpmdProgram& spmd, DiagnosticEngine& diags)
      : spmd_(spmd), diags_(diags),
        P_(spmd.options.n_procs < 1 ? 1 : spmd.options.n_procs) {
    for (const auto& p : spmd_.ast.procedures) procs_[p->name] = p.get();
    // Resolve the transitive has-communication bit serially, before the
    // per-procedure walks fan out: comm_ is read-only afterwards.
    for (const auto& p : spmd_.ast.procedures) comm_of(p->name);
  }

  Counters verify_procedure(const Procedure& proc, int order_key) const {
    Counters counters;
    Env base;
    for (const ParamConst& pc : proc.params)
      if (auto v = try_eval_int(*pc.value, base)) base[pc.name] = *v;
    Ctx ctx{proc.name, order_key, &counters, base};
    verify_scope(proc.body, ctx, false);
    return counters;
  }

private:
  struct Ctx {
    std::string proc;
    int order_key;
    Counters* counters;
    Env base_env;  // PARAMETER constants of the procedure
  };

  /// Transitive "contains message statements" over the SPMD call graph.
  bool comm_of(const std::string& name) {
    auto it = comm_.find(name);
    if (it != comm_.end()) return it->second;
    comm_[name] = false;  // cycle guard (source programs are acyclic)
    auto pit = procs_.find(name);
    bool has = false;
    if (pit != procs_.end()) {
      walk_stmts(pit->second->body, [&](const Stmt& s) {
        switch (s.kind) {
          case StmtKind::Send:
          case StmtKind::Recv:
          case StmtKind::Broadcast:
          case StmtKind::AllReduce:
          case StmtKind::Remap:
          case StmtKind::MarkDist:
            has = true;
            break;
          case StmtKind::Call:
            if (comm_of(s.callee)) has = true;
            break;
          default:
            break;
        }
      });
    }
    comm_[name] = has;
    return has;
  }

  static bool guards_mention_processor(const std::vector<GuardTerm>& guards) {
    for (const GuardTerm& g : guards)
      if (mentions_processor(*g.cond)) return true;
    return false;
  }

  void diag(const Ctx& ctx, SourceLoc loc, const std::string& msg,
            const std::string& id) const {
    ++ctx.counters->diags;
    diags_.report(DiagLevel::Warning, loc, "in '" + ctx.proc + "': " + msg,
                  id, ctx.order_key);
  }

  /// Collect the message operations of one scope (a procedure or loop
  /// body), looking through If nesting; loop bodies recurse as scopes of
  /// their own. Collectives and calls are checked inline.
  void collect(const std::vector<StmtPtr>& stmts, Ctx& ctx, bool pdep,
               std::vector<GuardTerm>& guards, std::vector<MsgOp>& sends,
               std::vector<MsgOp>& recvs, std::vector<CollOp>& colls,
               int& seq) const {
    for (const StmtPtr& sp : stmts) {
      const Stmt& s = *sp;
      switch (s.kind) {
        case StmtKind::Send:
          ++ctx.counters->sends;
          sends.push_back({&s, guards});
          sends.back().seq = seq++;
          break;
        case StmtKind::Recv:
          ++ctx.counters->recvs;
          recvs.push_back({&s, guards});
          recvs.back().seq = seq++;
          break;
        case StmtKind::Broadcast:
        case StmtKind::AllReduce:
        case StmtKind::Remap:
        case StmtKind::MarkDist: {
          ++ctx.counters->collectives;
          if (s.kind != StmtKind::MarkDist) colls.push_back({&s, guards, seq++});
          if (pdep || guards_mention_processor(guards))
            diag(ctx, s.loc,
                 "collective reached under a processor-dependent guard: "
                 "processors disagree on executing it (deadlock)",
                 "fortd-spmd-guarded-collective");
          if (s.kind == StmtKind::Broadcast && s.peer) {
            if (mentions_myp(*s.peer)) {
              diag(ctx, s.loc,
                   "broadcast root '" + print_expr(*s.peer) +
                       "' differs per processor",
                   "fortd-spmd-peer-range");
            } else if (auto root = try_eval_int(*s.peer, ctx.base_env)) {
              if (*root < 0 || *root >= P_)
                diag(ctx, s.loc,
                     "broadcast root " + std::to_string(*root) +
                         " is outside 0.." + std::to_string(P_ - 1),
                     "fortd-spmd-peer-range");
            }
          }
          break;
        }
        case StmtKind::Call:
          if ((pdep || guards_mention_processor(guards)) &&
              comm_.count(s.callee) && comm_.at(s.callee))
            diag(ctx, s.loc,
                 "'" + s.callee +
                     "' contains communication but is called under a "
                     "processor-dependent guard: processors that skip the "
                     "call deadlock their peers",
                 "fortd-spmd-guarded-call");
          break;
        case StmtKind::If: {
          guards.push_back({s.cond.get(), false});
          collect(s.then_body, ctx, pdep, guards, sends, recvs, colls, seq);
          guards.back().negated = true;
          collect(s.else_body, ctx, pdep, guards, sends, recvs, colls, seq);
          guards.pop_back();
          break;
        }
        case StmtKind::Do:
          verify_scope(s.body, ctx,
                       pdep || guards_mention_processor(guards));
          break;
        default:
          break;
      }
    }
  }

  /// Evaluate an op's concrete per-processor instances. Returns false
  /// (symbolic) when some processor's guard or peer does not close over
  /// my$p and the procedure's constants.
  bool concretize(MsgOp& op, const Ctx& ctx) const {
    std::vector<Inst> insts;
    for (int p = 0; p < P_; ++p) {
      Env env = ctx.base_env;
      env["my$p"] = p;
      bool active = true;
      for (const GuardTerm& g : op.guards) {
        auto v = eval_bool(*g.cond, env);
        if (!v) return false;
        if (*v == g.negated) {
          active = false;
          break;
        }
      }
      if (!active) continue;
      auto peer = try_eval_int(*op.stmt->peer, env);
      if (!peer) return false;
      auto size = section_size(op.stmt->msg_section, env);
      if (size && *size == 0) continue;  // machine skips empty sections
      insts.push_back({p, static_cast<int>(*peer), size ? *size : -1});
    }
    op.insts = std::move(insts);
    return true;
  }

  void verify_scope(const std::vector<StmtPtr>& stmts, Ctx& ctx,
                    bool pdep) const {
    std::vector<MsgOp> sends, recvs;
    std::vector<CollOp> colls;
    std::vector<GuardTerm> guards;
    int seq = 0;
    const int diags_before = ctx.counters->diags;
    collect(stmts, ctx, pdep, guards, sends, recvs, colls, seq);
    if (sends.empty() && recvs.empty()) return;

    for (MsgOp& op : sends) op.symbolic = !concretize(op, ctx);
    for (MsgOp& op : recvs) op.symbolic = !concretize(op, ctx);

    // --- concrete matching: multiset over (src, dst, array) -------------
    std::map<std::tuple<int, int, std::string>, std::deque<Inst*>> pending;
    for (MsgOp& op : recvs)
      for (Inst& inst : op.insts)
        pending[{inst.peer, inst.self, op.stmt->msg_array}].push_back(&inst);
    for (MsgOp& op : sends) {
      for (Inst& inst : op.insts) {
        if (inst.peer < 0 || inst.peer >= P_) {
          diag(ctx, op.stmt->loc,
               "send of '" + op.stmt->msg_array + "' from processor " +
                   std::to_string(inst.self) + " targets processor " +
                   std::to_string(inst.peer) + ", outside 0.." +
                   std::to_string(P_ - 1),
               "fortd-spmd-peer-range");
          inst.matched = true;  // already reported; not an unmatched count
          continue;
        }
        auto it = pending.find({inst.self, inst.peer, op.stmt->msg_array});
        if (it == pending.end() || it->second.empty()) continue;
        Inst* rinst = it->second.front();
        it->second.pop_front();
        inst.matched = true;
        rinst->matched = true;
        ++ctx.counters->matched;
        if (inst.size >= 0 && rinst->size >= 0 && inst.size != rinst->size)
          diag(ctx, op.stmt->loc,
               "send of '" + op.stmt->msg_array + "' (" +
                   std::to_string(inst.size) + " elements, " +
                   std::to_string(inst.self) + "->" +
                   std::to_string(inst.peer) +
                   ") does not match the recv section (" +
                   std::to_string(rinst->size) + " elements)",
               "fortd-spmd-size-mismatch");
      }
    }

    // --- symbolic matching: array + printed section, then array only ----
    auto pair_symbolic = [&](bool with_section) {
      for (MsgOp& s : sends) {
        if (!s.symbolic || s.sym_matched) continue;
        for (MsgOp& r : recvs) {
          if (!r.symbolic || r.sym_matched) continue;
          if (s.stmt->msg_array != r.stmt->msg_array) continue;
          if (with_section && section_str(s.stmt->msg_section) !=
                                  section_str(r.stmt->msg_section))
            continue;
          s.sym_matched = true;
          r.sym_matched = true;
          ++ctx.counters->matched;
          break;
        }
      }
    };
    pair_symbolic(true);
    pair_symbolic(false);

    // --- cross-kind reconciliation --------------------------------------
    // A concrete leftover may face a symbolic partner (e.g. a
    // data-dependent guard closed on one side only): absorb leftover
    // concrete instances into an unmatched symbolic op of the opposite
    // kind on the same array, and vice versa, rather than reporting both
    // halves of one event as unmatched.
    auto absorb = [&](std::vector<MsgOp>& concrete_side,
                      std::vector<MsgOp>& symbolic_side) {
      for (MsgOp& c : concrete_side) {
        if (c.symbolic) continue;
        bool leftover = std::any_of(c.insts.begin(), c.insts.end(),
                                    [](const Inst& i) { return !i.matched; });
        if (!leftover) continue;
        for (MsgOp& s : symbolic_side) {
          if (!s.symbolic || s.sym_matched) continue;
          if (c.stmt->msg_array != s.stmt->msg_array) continue;
          for (Inst& inst : c.insts) inst.matched = true;
          s.sym_matched = true;
          ++ctx.counters->matched;
          break;
        }
      }
    };
    absorb(sends, recvs);
    absorb(recvs, sends);

    // --- report ----------------------------------------------------------
    auto report = [&](std::vector<MsgOp>& ops, bool is_send) {
      for (MsgOp& op : ops) {
        std::string pairs;
        int n = 0;
        if (op.symbolic) {
          if (op.sym_matched) continue;
          n = 1;
        } else {
          for (const Inst& inst : op.insts) {
            if (inst.matched) continue;
            ++n;
            if (!pairs.empty()) pairs += ", ";
            pairs += is_send ? std::to_string(inst.self) + "->" +
                                   std::to_string(inst.peer)
                             : std::to_string(inst.peer) + "->" +
                                   std::to_string(inst.self);
          }
          if (n == 0) continue;
        }
        ctx.counters->unmatched += n;
        diag(ctx, op.stmt->loc,
             std::string(is_send ? "send" : "recv") + " of '" +
                 op.stmt->msg_array + "' " +
                 section_str(op.stmt->msg_section) + " has no matching " +
                 (is_send ? "recv" : "send") + " in its scope" +
                 (pairs.empty() ? "" : " (processor pairs " + pairs + ")"),
             is_send ? "fortd-spmd-unmatched-send"
                     : "fortd-spmd-unmatched-recv");
      }
    };
    report(sends, true);
    report(recvs, false);

    // --- order-sensitive deadlock detection ------------------------------
    // Multiset matching accepts any pairing; the simulation additionally
    // checks that *some* execution order drains the scope under rendezvous
    // semantics. Run only on scopes that matched cleanly (any diagnostic
    // above already explains the hazard) and whose per-processor activity
    // is trustworthy (not processor-dependent via an enclosing loop guard).
    if (!pdep && ctx.counters->diags == diags_before)
      simulate_scope(sends, recvs, colls, ctx);
  }

  /// One per-processor program-counter entry in the deadlock simulation.
  struct SimOp {
    enum class K { Send, Recv, Coll };
    int seq = 0;
    K k = K::Send;
    int peer = -1;                       // Send/Recv
    const std::string* array = nullptr;  // Send/Recv
    const Stmt* stmt = nullptr;
    int coll = -1;  // index into the participation table (Coll)
  };

  /// Simulate per-processor program counters over the scope's concrete
  /// channels under synchronous (rendezvous) semantics: a send blocks
  /// until its receiver's counter fronts the matching recv; a collective
  /// blocks until every participant fronts it. Symbolic messages become
  /// wildcard tokens a blocked front may absorb; a bounded DFS over the
  /// absorption choices reports fortd-spmd-deadlock only when no choice
  /// drains the scope (exceeding the budget falls back to silence).
  void simulate_scope(const std::vector<MsgOp>& sends,
                      const std::vector<MsgOp>& recvs,
                      const std::vector<CollOp>& colls, Ctx& ctx) const {
    using K = SimOp::K;
    std::vector<std::vector<SimOp>> seqs(P_);
    auto add_msg = [&](const MsgOp& op, K kind) {
      for (const Inst& inst : op.insts)
        seqs[inst.self].push_back(
            {op.seq, kind, inst.peer, &op.stmt->msg_array, op.stmt, -1});
    };
    for (const MsgOp& op : sends)
      if (!op.symbolic) add_msg(op, K::Send);
    for (const MsgOp& op : recvs)
      if (!op.symbolic) add_msg(op, K::Recv);

    // Collectives join the simulation only when every processor's
    // participation closes; leaving one out can only hide orderings, never
    // invent them, so the fallback stays conservative toward silence.
    std::vector<std::vector<char>> parts;
    for (const CollOp& c : colls) {
      std::vector<char> active(P_, 0);
      bool closes = true, any = false;
      for (int p = 0; p < P_ && closes; ++p) {
        Env env = ctx.base_env;
        env["my$p"] = p;
        bool act = true;
        for (const GuardTerm& g : c.guards) {
          auto v = eval_bool(*g.cond, env);
          if (!v) {
            closes = false;
            break;
          }
          if (*v == g.negated) {
            act = false;
            break;
          }
        }
        if (closes && act) {
          active[p] = 1;
          any = true;
        }
      }
      if (!closes || !any) continue;
      const int id = static_cast<int>(parts.size());
      for (int p = 0; p < P_; ++p)
        if (active[p])
          seqs[p].push_back({c.seq, K::Coll, -1, nullptr, c.stmt, id});
      parts.push_back(std::move(active));
    }
    for (auto& s : seqs)
      std::sort(s.begin(), s.end(),
                [](const SimOp& a, const SimOp& b) { return a.seq < b.seq; });

    // Wildcard tokens from symbolic ops: each statement executes at most
    // once per processor, so it can complete at most P_ blocked partners.
    std::map<std::pair<bool, std::string>, int> tokens;  // (is_send, array)
    for (const MsgOp& op : sends)
      if (op.symbolic) tokens[{true, op.stmt->msg_array}] += P_;
    for (const MsgOp& op : recvs)
      if (op.symbolic) tokens[{false, op.stmt->msg_array}] += P_;

    auto at_end = [&](const std::vector<int>& f, int p) {
      return f[p] >= static_cast<int>(seqs[p].size());
    };
    // Advance every forced transition to a fixpoint. Concrete rendezvous
    // pairs and all-arrived collectives are confluent (the enabled front
    // edges are disjoint per processor), so greedy draining loses no
    // executions.
    auto forced = [&](std::vector<int>& f) {
      bool progress = true;
      while (progress) {
        progress = false;
        for (int p = 0; p < P_; ++p) {
          if (at_end(f, p)) continue;
          const SimOp& op = seqs[p][f[p]];
          if (op.k == K::Send) {
            const int q = op.peer;
            if (q < 0 || q >= P_ || q == p || at_end(f, q)) continue;
            const SimOp& ro = seqs[q][f[q]];
            if (ro.k == K::Recv && ro.peer == p && *ro.array == *op.array) {
              ++f[p];
              ++f[q];
              progress = true;
            }
          } else if (op.k == K::Coll) {
            bool all = true;
            for (int q = 0; q < P_ && all; ++q)
              if (parts[op.coll][q] &&
                  (at_end(f, q) || seqs[q][f[q]].k != K::Coll ||
                   seqs[q][f[q]].coll != op.coll))
                all = false;
            if (all) {
              for (int q = 0; q < P_; ++q)
                if (parts[op.coll][q]) ++f[q];
              progress = true;
            }
          }
        }
      }
    };
    auto drained = [&](const std::vector<int>& f) {
      for (int p = 0; p < P_; ++p)
        if (!at_end(f, p)) return false;
      return true;
    };

    constexpr size_t kMaxStates = 256;
    std::set<std::string> visited;
    bool budget_hit = false;
    std::function<bool(std::vector<int>,
                       std::map<std::pair<bool, std::string>, int>)>
        search = [&](std::vector<int> f,
                     std::map<std::pair<bool, std::string>, int> toks) -> bool {
      forced(f);
      if (drained(f)) return true;
      std::string key;
      for (int v : f) key += std::to_string(v) + ",";
      for (const auto& [tk, n] : toks) {
        key += tk.first ? 's' : 'r';
        key += tk.second + "=" + std::to_string(n) + ";";
      }
      if (!visited.insert(key).second) return false;
      if (visited.size() > kMaxStates) {
        budget_hit = true;
        return true;
      }
      for (int p = 0; p < P_; ++p) {
        if (at_end(f, p)) continue;
        const SimOp& op = seqs[p][f[p]];
        if (op.k == K::Coll) continue;
        // A blocked send absorbs a symbolic recv token and vice versa.
        auto it = toks.find({op.k == K::Recv, *op.array});
        if (it == toks.end() || it->second <= 0) continue;
        auto f2 = f;
        auto t2 = toks;
        ++f2[p];
        --t2[it->first];
        if (search(std::move(f2), std::move(t2))) return true;
        if (budget_hit) return true;
      }
      return false;
    };
    if (search(std::vector<int>(P_, 0), tokens)) return;

    // No execution drains: describe the forced-only stuck configuration.
    std::vector<int> f(P_, 0);
    forced(f);
    struct Stuck {
      int p;
      const SimOp* op;
    };
    std::vector<Stuck> stuck;
    for (int p = 0; p < P_; ++p)
      if (!at_end(f, p)) stuck.push_back({p, &seqs[p][f[p]]});
    if (stuck.empty()) return;  // defensive; search would have succeeded
    const Stuck* best = &stuck[0];
    for (const Stuck& s : stuck)
      if (s.op->seq < best->op->seq ||
          (s.op->seq == best->op->seq && s.p < best->p))
        best = &s;
    std::string desc;
    const size_t shown = std::min<size_t>(stuck.size(), 3);
    for (size_t i = 0; i < shown; ++i) {
      const Stuck& s = stuck[i];
      if (i) desc += ", ";
      desc += "processor " + std::to_string(s.p);
      switch (s.op->k) {
        case K::Send:
          desc += " blocks sending '" + *s.op->array + "' to " +
                  std::to_string(s.op->peer);
          break;
        case K::Recv:
          desc += " blocks receiving '" + *s.op->array + "' from " +
                  std::to_string(s.op->peer);
          break;
        case K::Coll:
          desc += " waits at a collective";
          break;
      }
      if (s.op->stmt->loc.valid())
        desc += " (line " + std::to_string(s.op->stmt->loc.line) + ")";
    }
    if (stuck.size() > shown)
      desc += ", and " + std::to_string(stuck.size() - shown) + " more";
    ++ctx.counters->deadlocks;
    diag(ctx, best->op->stmt->loc,
         "send/recv multisets match but no execution order drains the "
         "scope at P=" +
             std::to_string(P_) + " under synchronous sends: " + desc,
         "fortd-spmd-deadlock");
  }

  const SpmdProgram& spmd_;
  DiagnosticEngine& diags_;
  int P_;
  std::map<std::string, const Procedure*> procs_;
  std::map<std::string, bool> comm_;
};

}  // namespace

std::string SpmdVerifyReport::text() const {
  std::string out;
  for (const Diagnostic& d : diags) out += d.str() + "\n";
  return out;
}

std::string SpmdVerifyReport::summary() const {
  return std::to_string(sends) + " send(s), " + std::to_string(recvs) +
         " recv(s), " + std::to_string(collectives) + " collective(s), " +
         std::to_string(matched) + " matched, " + std::to_string(unmatched) +
         " unmatched";
}

SpmdVerifyReport verify_spmd(const SpmdProgram& spmd, ThreadPool* pool) {
  DiagnosticEngine diags;
  Verifier verifier(spmd, diags);
  const size_t n = spmd.ast.procedures.size();
  std::vector<Counters> counters(n);
  auto run_one = [&](size_t i) {
    counters[i] = verifier.verify_procedure(*spmd.ast.procedures[i],
                                            static_cast<int>(i));
  };
  if (pool && pool->size() > 0) {
    pool->parallel_for(n, run_one);
  } else {
    for (size_t i = 0; i < n; ++i) run_one(i);
  }

  SpmdVerifyReport report;
  report.diags = diags.ordered();
  for (const Counters& c : counters) {
    report.sends += c.sends;
    report.recvs += c.recvs;
    report.collectives += c.collectives;
    report.matched += c.matched;
    report.unmatched += c.unmatched;
    report.deadlocks += c.deadlocks;
  }
  return report;
}

}  // namespace fortd
