// Static SPMD communication verification: after code generation, match
// every emitted send against a receive across all procedures, and check
// that collectives (broadcast / allreduce / remap) and calls to
// communicating procedures are reached by every processor.
//
// The verifier evaluates the generated my$p arithmetic concretely for each
// of the P processor identities (guards, peer expressions, and message
// section extents are closed over my$p and PARAMETER constants), so the
// usual guarded shift pattern
//
//   if (my$p .gt. 0)  send u(...) to my$p - 1
//   if (my$p .lt. 3)  recv u(...) from my$p + 1
//
// is checked pairwise per processor, including section-size agreement and
// the empty-section skip the machine applies on both sides. Messages whose
// guards or peers depend on run-time values (owner$ intrinsics, loop
// variables) are matched structurally within their scope. Matching scopes
// are statement lists (procedure bodies and loop bodies): code generation
// always instantiates both sides of a communication event in the same
// scope, so an unmatched message is a codegen (or hand-editing) bug — the
// class of error wavefront-parallel generation could introduce silently.
//
// Matching alone is order-insensitive: two processors whose multisets
// agree can still block forever when each fronts a synchronous send to
// the other. On scopes that match cleanly, the verifier therefore also
// *simulates* per-processor program counters over the concrete channels
// (rendezvous semantics: a send completes only when its receiver's
// counter reaches the matching recv; collectives complete when every
// participant arrives). Symbolic messages become wildcard tokens explored
// with a bounded DFS — a deadlock is reported (fortd-spmd-deadlock) only
// when *no* absorption choice drains the scope, so run-time-resolved code
// never produces false positives; exceeding the exploration budget falls
// back to silence.
#pragma once

#include <string>
#include <vector>

#include "codegen/spmd.hpp"
#include "support/diagnostics.hpp"

namespace fortd {

class ThreadPool;

struct SpmdVerifyReport {
  /// Deterministically ordered findings (ids: fortd-spmd-unmatched-send,
  /// fortd-spmd-unmatched-recv, fortd-spmd-size-mismatch,
  /// fortd-spmd-peer-range, fortd-spmd-guarded-collective,
  /// fortd-spmd-guarded-call, fortd-spmd-deadlock).
  std::vector<Diagnostic> diags;
  int sends = 0;        // send statements examined
  int recvs = 0;        // recv statements examined
  int collectives = 0;  // broadcast/allreduce/remap statements examined
  int matched = 0;      // concrete per-processor (src,dst) pairs matched
  int unmatched = 0;    // messages with no partner
  int deadlocks = 0;    // scopes where no execution order drains

  bool clean() const { return unmatched == 0 && diags.empty(); }
  std::string text() const;
  std::string summary() const;
};

/// Verify `spmd` (P = spmd.options.n_procs). With a pool, procedures are
/// verified concurrently; the report is byte-identical to the serial walk.
SpmdVerifyReport verify_spmd(const SpmdProgram& spmd,
                             ThreadPool* pool = nullptr);

}  // namespace fortd
