// Interprocedural Fortran D lint: a registry of Checker passes run by the
// LintDriver between interprocedural analysis and code generation.
//
// Checkers consume the products every compile already builds — the bound
// program, the IpaContext (ACG, summaries, side effects, reaching
// decompositions, clone map), and the interprocedural overlap estimates —
// so linting adds no new analysis passes, only new consumers. Each checker
// examines one procedure at a time, which makes the whole pass
// embarrassingly parallel; diagnostics carry an order_key so the report is
// byte-identical for any worker count (the same discipline as parallel
// code generation).
//
// Built-in checkers (stable ids, asserted by tests/lint fixtures):
//   fortd-call-mismatch   conflicting decompositions reach a callee
//   fortd-overlap-bounds  overlap demand exceeds the local block extent
//   fortd-loop-sequential partitioned loop degenerates to one processor
//   fortd-dead-decomp     DISTRIBUTE/ALIGN killed or unused before any use
//   fortd-alias-hazard    write through one name of a may-alias pair
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "codegen/options.hpp"
#include "ipa/cloning.hpp"
#include "ipa/overlap_prop.hpp"
#include "support/diagnostics.hpp"

namespace fortd {

class ThreadPool;

struct LintOptions {
  /// Run the checker registry between IPA and code generation.
  bool analyze = false;
  /// Run the SpmdVerifier over the generated program after code
  /// generation (see analysis/lint/spmd_verifier.hpp).
  bool verify_spmd = false;
  /// Checker ids to skip.
  std::set<std::string> disabled;
};

/// Everything a checker may read. All references outlive the lint run and
/// are only read, never mutated — checkers must stay thread-safe across
/// procedures.
struct LintContext {
  const BoundProgram& program;
  const IpaContext& ipa;
  const OverlapEstimates& overlaps;
  const CodegenOptions& options;
};

/// Reporting facade handed to a checker for one (checker, procedure)
/// cell: stamps every diagnostic with the checker id and the cell's
/// deterministic order key.
class LintSink {
public:
  LintSink(DiagnosticEngine& diags, std::string id, int order_key)
      : diags_(diags), id_(std::move(id)), order_key_(order_key) {}

  void warning(SourceLoc loc, const std::string& msg) {
    diags_.report(DiagLevel::Warning, loc, msg, id_, order_key_);
  }
  void note(SourceLoc loc, const std::string& msg) {
    diags_.report(DiagLevel::Note, loc, msg, id_, order_key_);
  }

private:
  DiagnosticEngine& diags_;
  std::string id_;
  int order_key_;
};

/// One lint pass. Implementations live in analysis/lint/checkers.cpp;
/// out-of-tree checkers register through LintDriver::register_checker.
class Checker {
public:
  virtual ~Checker() = default;
  virtual const char* id() const = 0;
  virtual const char* description() const = 0;
  /// Examine one procedure. Called once per procedure of the post-cloning
  /// program, possibly concurrently with other procedures — report only
  /// through `sink`, never touch shared state.
  virtual void check(const LintContext& ctx, const std::string& proc,
                     LintSink& sink) const = 0;
};

struct LintReport {
  /// Diagnostics in deterministic order (checker registration order, then
  /// procedure order, then report order within one cell).
  std::vector<Diagnostic> diags;
  int warnings = 0;
  int notes = 0;

  bool empty() const { return diags.empty(); }
  /// Fold diagnostics from another source (e.g. the SPMD verifier) into
  /// this report, recounting warnings/notes, so one report serializes all
  /// findings uniformly (text() and json() carry every Diagnostic.id).
  void append(const std::vector<Diagnostic>& more);
  /// One diagnostic per line, `Diagnostic::str()` format.
  std::string text() const;
  /// JSON array of {id, level, line, col, message} objects.
  std::string json() const;
  /// Number of diagnostics carrying `id`.
  int count(const std::string& id) const;
};

class LintDriver {
public:
  /// Constructs the driver with the built-in checker registry (minus
  /// options.disabled).
  explicit LintDriver(LintOptions options = {});

  void register_checker(std::unique_ptr<Checker> checker);
  const std::vector<std::unique_ptr<Checker>>& checkers() const {
    return checkers_;
  }

  /// Run every registered checker over every procedure. With a pool the
  /// (checker, procedure) cells run concurrently; the report is
  /// byte-identical to the serial walk.
  LintReport run(const LintContext& ctx, ThreadPool* pool = nullptr) const;

private:
  LintOptions options_;
  std::vector<std::unique_ptr<Checker>> checkers_;
};

/// The built-in registry, in deterministic registration order.
std::vector<std::unique_ptr<Checker>> make_default_checkers();

}  // namespace fortd
