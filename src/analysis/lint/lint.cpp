#include "analysis/lint/lint.hpp"

#include "support/thread_pool.hpp"

namespace fortd {

namespace {

const char* level_str(DiagLevel level) {
  switch (level) {
    case DiagLevel::Error: return "error";
    case DiagLevel::Warning: return "warning";
    case DiagLevel::Note: return "note";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void LintReport::append(const std::vector<Diagnostic>& more) {
  for (const Diagnostic& d : more) {
    diags.push_back(d);
    if (d.level == DiagLevel::Warning) ++warnings;
    if (d.level == DiagLevel::Note) ++notes;
  }
}

std::string LintReport::text() const {
  std::string out;
  for (const Diagnostic& d : diags) out += d.str() + "\n";
  return out;
}

std::string LintReport::json() const {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i) out += ",";
    out += "\n  {\"id\": \"" + json_escape(d.id) + "\", \"level\": \"" +
           level_str(d.level) + "\", \"line\": " + std::to_string(d.loc.line) +
           ", \"col\": " + std::to_string(d.loc.col) + ", \"message\": \"" +
           json_escape(d.message) + "\"}";
  }
  out += diags.empty() ? "]\n" : "\n]\n";
  return out;
}

int LintReport::count(const std::string& id) const {
  int n = 0;
  for (const Diagnostic& d : diags)
    if (d.id == id) ++n;
  return n;
}

LintDriver::LintDriver(LintOptions options) : options_(std::move(options)) {
  for (auto& checker : make_default_checkers()) {
    if (options_.disabled.count(checker->id())) continue;
    checkers_.push_back(std::move(checker));
  }
}

void LintDriver::register_checker(std::unique_ptr<Checker> checker) {
  if (options_.disabled.count(checker->id())) return;
  checkers_.push_back(std::move(checker));
}

LintReport LintDriver::run(const LintContext& ctx, ThreadPool* pool) const {
  // One cell per (checker, procedure); procedures in AST order (the
  // post-cloning program lists clones after their origins, so the order is
  // stable across worker counts). Each cell gets a unique order key, so
  // ordered() restores the serial report regardless of schedule.
  DiagnosticEngine diags;
  const size_t n_procs = ctx.program.ast.procedures.size();
  const size_t n_cells = checkers_.size() * n_procs;
  auto run_cell = [&](size_t cell) {
    const size_t c = cell / n_procs;
    const size_t p = cell % n_procs;
    const std::string& proc = ctx.program.ast.procedures[p]->name;
    LintSink sink(diags, checkers_[c]->id(), static_cast<int>(cell));
    checkers_[c]->check(ctx, proc, sink);
  };
  if (pool && pool->size() > 0) {
    pool->parallel_for(n_cells, run_cell);
  } else {
    for (size_t cell = 0; cell < n_cells; ++cell) run_cell(cell);
  }

  LintReport report;
  report.diags = diags.ordered();
  for (const Diagnostic& d : report.diags) {
    if (d.level == DiagLevel::Warning) ++report.warnings;
    if (d.level == DiagLevel::Note) ++report.notes;
  }
  return report;
}

}  // namespace fortd
