// Reusable single-threaded poll()-loop server skeleton — the
// accept/FrameDecoder/output-buffer connection plumbing shared by the
// remote-cache daemon (fortd-cached) and the compile service (fortdd).
//
// One service thread polls the listening socket, every live connection,
// and a self-wake pipe. Readable sockets drain into per-connection
// FrameDecoders; the complete frames gathered in one cycle are handed to
// the cycle handler (on the loop thread). Replies are queued per
// connection — from the handler itself or, via the thread-safe send(),
// from any other thread (a compile executor finishing a request) — and
// drained under POLLOUT. Connections are independent: a client that
// stalls mid-frame or sends garbage affects only itself.
//
// A peer that disappears while a reply is still queued (EPIPE, reset,
// poll error) is *reaped and counted* (disconnects_mid_reply), never
// escalated: sockets write with MSG_NOSIGNAL so no SIGPIPE is raised,
// and the loop keeps serving every other connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace fortd::net {

class ServerLoop {
 public:
  /// Stable handle for one client connection (never reused).
  using ConnId = uint64_t;

  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;     // 0 = ephemeral (tests)
    int poll_ms = 50; // poll() timeout; bounds shutdown latency
  };

  /// One complete frame payload received from a connection.
  struct InFrame {
    ConnId conn = 0;
    std::vector<uint8_t> payload;
  };

  /// Invoked on the loop thread once per poll cycle that yielded frames.
  /// The handler may call send()/close_after_flush()/drop() synchronously;
  /// effects apply before this cycle's output drain, so an inline reply
  /// still goes out the same cycle it was computed.
  using CycleHandler = std::function<void(std::vector<InFrame>&)>;
  /// Invoked on the loop thread when a connection is reaped, after its
  /// socket closed — the owner's chance to discard per-connection state.
  using ClosedHandler = std::function<void(ConnId)>;

  ServerLoop() = default;
  ~ServerLoop();

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  void set_cycle_handler(CycleHandler handler) { on_cycle_ = std::move(handler); }
  void set_closed_handler(ClosedHandler handler) { on_closed_ = std::move(handler); }

  /// Bind and spawn the service thread. False (with reason) on failure.
  bool start(const Options& options, std::string* err = nullptr);
  /// Idempotent; joins the service thread and closes every connection.
  void stop();

  bool running() const { return running_.load(); }
  /// The bound port (after start(); meaningful with port 0 in options).
  int port() const { return listener_.port(); }

  /// Queue `payload` as one frame on `conn`'s output buffer. Thread-safe
  /// (wakes the loop when called off-thread). False when the payload
  /// exceeds the frame ceiling or the connection is already gone — the
  /// latter counted as a dropped reply.
  bool send(ConnId conn, std::vector<uint8_t> payload);
  /// Close `conn` once its output buffer drains (thread-safe).
  void close_after_flush(ConnId conn);
  /// Drop `conn` at the next cycle, discarding queued output (thread-safe).
  void drop(ConnId conn);

  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t frame_errors = 0;           // decoder sticky-fail drops
    uint64_t disconnects_mid_reply = 0;  // peer gone with a reply queued
    uint64_t replies_dropped = 0;        // send() to an already-gone conn
  };
  Counters counters() const;

 private:
  struct Conn {
    Socket sock;
    FrameDecoder decoder;
    bool closing = false;  // close once outbuf drains
    bool doomed = false;   // drop this cycle, output discarded
    std::string outbuf;    // encoded frames awaiting POLLOUT
  };

  void serve_loop();
  /// Move cross-thread sends/closes into connection state. Loop thread.
  void apply_pending_locked();
  /// Drain one readable connection; false = drop it.
  bool read_conn(Conn& conn, ConnId id, std::vector<InFrame>& frames);

  Options options_;
  CycleHandler on_cycle_;
  ClosedHandler on_closed_;
  Listener listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int wake_rd_ = -1, wake_wr_ = -1;  // self-pipe: off-thread send() wakeup

  // Touched only by the loop thread; cross-thread requests arrive
  // through pending_ below.
  std::map<ConnId, std::unique_ptr<Conn>> conns_;
  ConnId next_id_ = 1;

  struct PendingOp {
    ConnId conn = 0;
    std::vector<uint8_t> framed;  // empty = close/drop request
    bool drop = false;            // with empty framed: drop vs close_after_flush
  };
  mutable std::mutex mu_;  // guards pending_, live_, counters_
  std::vector<PendingOp> pending_;
  std::vector<ConnId> live_;  // snapshot send() checks before queueing
  Counters counters_;
};

}  // namespace fortd::net
