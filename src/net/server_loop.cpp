#include "net/server_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>

namespace fortd::net {

ServerLoop::~ServerLoop() { stop(); }

bool ServerLoop::start(const Options& options, std::string* err) {
  if (running_.load()) return true;
  options_ = options;
  if (!listener_.listen_on(options_.host, options_.port, err)) return false;
  int pipefd[2] = {-1, -1};
  if (::pipe(pipefd) != 0) {
    if (err) *err = "cannot create wake pipe";
    listener_.close();
    return false;
  }
  ::fcntl(pipefd[0], F_SETFL, O_NONBLOCK);
  ::fcntl(pipefd[1], F_SETFL, O_NONBLOCK);
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  stopping_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ServerLoop::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (wake_wr_ >= 0) {
    const char b = 0;
    [[maybe_unused]] ssize_t rc = ::write(wake_wr_, &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  listener_.close();
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  running_.store(false);
}

bool ServerLoop::send(ConnId conn, std::vector<uint8_t> payload) {
  std::vector<uint8_t> framed;
  if (!encode_frame(framed, payload)) return false;
  bool on_loop_thread =
      thread_.joinable() && std::this_thread::get_id() == thread_.get_id();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::find(live_.begin(), live_.end(), conn) == live_.end()) {
      ++counters_.replies_dropped;
      return false;
    }
    PendingOp op;
    op.conn = conn;
    op.framed = std::move(framed);
    pending_.push_back(std::move(op));
  }
  // An executor thread finishing a request must not wait a full poll
  // timeout for its reply to move; the loop thread applies pending ops
  // within the running cycle anyway.
  if (!on_loop_thread && wake_wr_ >= 0) {
    const char b = 0;
    [[maybe_unused]] ssize_t rc = ::write(wake_wr_, &b, 1);
  }
  return true;
}

void ServerLoop::close_after_flush(ConnId conn) {
  std::lock_guard<std::mutex> lock(mu_);
  PendingOp op;
  op.conn = conn;
  pending_.push_back(std::move(op));
}

void ServerLoop::drop(ConnId conn) {
  std::lock_guard<std::mutex> lock(mu_);
  PendingOp op;
  op.conn = conn;
  op.drop = true;
  pending_.push_back(std::move(op));
}

ServerLoop::Counters ServerLoop::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void ServerLoop::apply_pending_locked() {
  for (auto& op : pending_) {
    auto it = conns_.find(op.conn);
    if (it == conns_.end()) {
      // The peer vanished between the reply's computation and this
      // cycle: the work is discarded, the loop unharmed.
      if (!op.framed.empty()) ++counters_.replies_dropped;
      continue;
    }
    if (op.framed.empty()) {
      if (op.drop)
        it->second->doomed = true;
      else
        it->second->closing = true;
    } else {
      it->second->outbuf.append(reinterpret_cast<const char*>(op.framed.data()),
                                op.framed.size());
    }
  }
  pending_.clear();
}

bool ServerLoop::read_conn(Conn& conn, ConnId id,
                           std::vector<InFrame>& frames) {
  std::string data;
  const auto st = conn.sock.recv_available(data);
  conn.decoder.feed(data);
  size_t got = 0;
  while (auto frame = conn.decoder.next()) {
    frames.push_back(InFrame{id, std::move(*frame)});
    ++got;
  }
  if (conn.decoder.failed()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.frame_errors;
    return false;
  }
  if (st == IoStatus::Error) return false;
  // EOF with frames still buffered: serve them this cycle, the next
  // poll drops the connection.
  if (st == IoStatus::Closed && got == 0) return false;
  return true;
}

void ServerLoop::serve_loop() {
  while (!stopping_.load()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      apply_pending_locked();
    }

    // fds: [0] listener, [1] wake pipe, then one per connection (ids
    // mirrors those entries).
    std::vector<struct pollfd> fds;
    std::vector<ConnId> ids;
    fds.push_back({listener_.fd(), POLLIN, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    for (const auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
      ids.push_back(id);
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), options_.poll_ms);

    if (fds[1].revents & POLLIN) {
      char buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }

    if (fds[0].revents & POLLIN) {
      while (auto sock = listener_.accept_conn()) {
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(*sock);
        const ConnId id = next_id_++;
        conns_.emplace(id, std::move(conn));
        std::lock_guard<std::mutex> lock(mu_);
        live_.push_back(id);
        ++counters_.connections_accepted;
      }
    }

    // Gather complete frames from every readable connection.
    std::vector<ConnId> dropped;
    std::vector<InFrame> frames;
    for (size_t i = 0; i < ids.size(); ++i) {
      const short revents = fds[i + 2].revents;
      auto& conn = *conns_[ids[i]];
      if (conn.doomed) continue;
      if (revents & (POLLERR | POLLNVAL)) {
        conn.doomed = true;
        if (!conn.outbuf.empty()) {
          std::lock_guard<std::mutex> lock(mu_);
          ++counters_.disconnects_mid_reply;
        }
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        if (!read_conn(conn, ids[i], frames)) conn.doomed = true;
      }
    }

    if (!frames.empty() && on_cycle_) on_cycle_(frames);

    // Handler and executor sends land before this cycle's output drain.
    {
      std::lock_guard<std::mutex> lock(mu_);
      apply_pending_locked();
    }

    // Drain output buffers. A peer that disconnected with output still
    // queued (EPIPE/reset — MSG_NOSIGNAL, so no SIGPIPE) is reaped and
    // counted; the loop itself never tears down.
    for (auto& [id, conn] : conns_) {
      if (conn->doomed || conn->outbuf.empty()) {
        if (!conn->doomed && conn->closing && conn->outbuf.empty())
          conn->doomed = true;
        continue;
      }
      size_t sent = 0;
      auto st = conn->sock.send_nonblocking(
          reinterpret_cast<const uint8_t*>(conn->outbuf.data()),
          conn->outbuf.size(), sent);
      if (sent > 0) conn->outbuf.erase(0, sent);
      if (st != IoStatus::Ok) {
        conn->doomed = true;
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.disconnects_mid_reply;
      }
      if (conn->closing && conn->outbuf.empty()) conn->doomed = true;
    }

    // Reap.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->doomed) {
        const ConnId id = it->first;
        it = conns_.erase(it);
        {
          std::lock_guard<std::mutex> lock(mu_);
          live_.erase(std::remove(live_.begin(), live_.end(), id),
                      live_.end());
        }
        if (on_closed_) on_closed_(id);
      } else {
        ++it;
      }
    }
  }
  // Shutdown: flush what is already queued (bounded — a graceful drain's
  // final replies must reach their clients), then close everything.
  {
    std::lock_guard<std::mutex> lock(mu_);
    apply_pending_locked();
  }
  for (int spins = 0; spins < 20; ++spins) {
    bool outstanding = false;
    for (auto& [id, conn] : conns_) {
      if (conn->doomed || conn->outbuf.empty()) continue;
      size_t sent = 0;
      auto st = conn->sock.send_nonblocking(
          reinterpret_cast<const uint8_t*>(conn->outbuf.data()),
          conn->outbuf.size(), sent);
      if (sent > 0) conn->outbuf.erase(0, sent);
      if (st != IoStatus::Ok) {
        conn->doomed = true;
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.disconnects_mid_reply;
        continue;
      }
      if (!conn->outbuf.empty()) outstanding = true;
    }
    if (!outstanding) break;
    ::poll(nullptr, 0, 25);  // let the peers' receive windows reopen
  }
  // Close every connection (handlers see the closures).
  for (auto& [id, conn] : conns_) {
    (void)conn;
    if (on_closed_) on_closed_(id);
  }
  conns_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  live_.clear();
}

}  // namespace fortd::net
