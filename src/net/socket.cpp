#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace fortd::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline` (>= 0), for poll().
int ms_left(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking() {
  if (fd_ < 0) return;
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

IoStatus Socket::send_all(const uint8_t* data, size_t n, int deadline_ms) {
  if (fd_ < 0) return IoStatus::Error;
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) return IoStatus::Closed;
    if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return IoStatus::Error;
    struct pollfd pfd = {fd_, POLLOUT, 0};
    int left = ms_left(deadline);
    if (left == 0) return IoStatus::Timeout;
    int rc = ::poll(&pfd, 1, left);
    if (rc == 0) return IoStatus::Timeout;
    if (rc < 0 && errno != EINTR) return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Socket::recv_some(uint8_t* buf, size_t n, size_t& got,
                           int deadline_ms) {
  got = 0;
  if (fd_ < 0) return IoStatus::Error;
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (true) {
    ssize_t r = ::recv(fd_, buf, n, 0);
    if (r > 0) {
      got = static_cast<size_t>(r);
      return IoStatus::Ok;
    }
    if (r == 0) return IoStatus::Closed;
    if (errno == ECONNRESET) return IoStatus::Closed;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return IoStatus::Error;
    struct pollfd pfd = {fd_, POLLIN, 0};
    int left = ms_left(deadline);
    if (left == 0) return IoStatus::Timeout;
    int rc = ::poll(&pfd, 1, left);
    if (rc == 0) return IoStatus::Timeout;
    if (rc < 0 && errno != EINTR) return IoStatus::Error;
  }
}

IoStatus Socket::send_nonblocking(const uint8_t* data, size_t n,
                                  size_t& sent) {
  sent = 0;
  if (fd_ < 0) return IoStatus::Error;
  while (sent < n) {
    ssize_t w = ::send(fd_, data + sent, n - sent,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return IoStatus::Ok;
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET))
      return IoStatus::Closed;
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Socket::recv_available(std::string& out) {
  if (fd_ < 0) return IoStatus::Error;
  char chunk[65536];
  while (true) {
    ssize_t r = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (r > 0) {
      out.append(chunk, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) return IoStatus::Closed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::Ok;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return IoStatus::Closed;
    return IoStatus::Error;
  }
}

std::optional<Socket> connect_to(const std::string& host, int port,
                                 int timeout_ms, std::string* err) {
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0 || !res) {
    if (err) *err = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    if (res) ::freeaddrinfo(res);
    return std::nullopt;
  }

  Socket sock(::socket(res->ai_family, res->ai_socktype, res->ai_protocol));
  if (!sock.valid()) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    ::freeaddrinfo(res);
    return std::nullopt;
  }
  sock.set_nonblocking();
  rc = ::connect(sock.fd(), res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    if (err) *err = std::string("connect: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (rc != 0) {
    struct pollfd pfd = {sock.fd(), POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      if (err) *err = rc == 0 ? "connect timed out"
                              : std::string("poll: ") + std::strerror(errno);
      return std::nullopt;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      if (err) *err = std::string("connect: ") + std::strerror(so_error);
      return std::nullopt;
    }
  }
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

bool Listener::listen_on(const std::string& host, int port, std::string* err) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (host == "localhost") {
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    } else {
      if (err) *err = "cannot parse bind address '" + host + "'";
      return false;
    }
  }
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (err) *err = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(sock.fd(), 64) != 0) {
    if (err) *err = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0)
    port_ = ntohs(addr.sin_port);
  else
    port_ = port;
  sock.set_nonblocking();
  sock_ = std::move(sock);
  return true;
}

std::optional<Socket> Listener::accept_conn() {
  if (!sock_.valid()) return std::nullopt;
  int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  Socket conn(fd);
  conn.set_nonblocking();
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

}  // namespace fortd::net
