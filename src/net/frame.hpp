// Length-prefixed frame codec for the remote cache protocol.
//
// A frame is a LEB128 varint byte length followed by that many payload
// bytes; the payload itself is a BinaryWriter-encoded protocol message
// (remote/protocol.hpp). FrameDecoder is incremental — feed() it
// arbitrary chunks straight off a socket and next() yields complete
// frames — and defensive in the BinaryReader mold: an implausible or
// oversized length sets a sticky fail bit (the connection is garbage and
// must be dropped) instead of throwing or over-allocating.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fortd::net {

/// Hard ceiling on one frame's payload: far above any artifact blob the
/// compiler produces, far below an allocation that could hurt. A length
/// beyond this is corruption (or a hostile peer) by construction.
constexpr uint64_t kMaxFramePayload = 64ull << 20;  // 64 MiB

/// Append one frame (varint length + payload bytes) to `out`. A payload
/// above kMaxFramePayload is refused (false, `out` untouched): sending it
/// would only trip the receiver's decoder and kill the connection, so the
/// caller must degrade (skip the PUT, answer a GET with a miss) instead.
bool encode_frame(std::vector<uint8_t>& out, const std::vector<uint8_t>& payload);

class FrameDecoder {
 public:
  /// Buffer `n` more wire bytes. No-op once failed.
  void feed(const uint8_t* data, size_t n);
  void feed(const std::string& bytes) {
    feed(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }

  /// The next complete frame payload, or nullopt when more bytes are
  /// needed (or the decoder has failed).
  std::optional<std::vector<uint8_t>> next();

  /// Sticky: set by an overlong varint or a length above kMaxFramePayload.
  bool failed() const { return failed_; }

  /// Bytes buffered but not yet consumed (diagnostic).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix, compacted opportunistically
  bool failed_ = false;
};

}  // namespace fortd::net
