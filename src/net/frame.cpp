#include "net/frame.hpp"

namespace fortd::net {

bool encode_frame(std::vector<uint8_t>& out,
                  const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) return false;
  uint64_t v = payload.size();
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
  out.insert(out.end(), payload.begin(), payload.end());
  return true;
}

void FrameDecoder::feed(const uint8_t* data, size_t n) {
  if (failed_) return;
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<std::vector<uint8_t>> FrameDecoder::next() {
  if (failed_) return std::nullopt;

  // Parse the varint length by hand so a partial prefix is "wait for
  // more", while an overlong encoding is a hard failure.
  uint64_t len = 0;
  int shift = 0;
  size_t cursor = pos_;
  while (true) {
    if (cursor >= buf_.size()) return std::nullopt;  // partial length
    if (shift >= 64) {
      failed_ = true;
      return std::nullopt;
    }
    const uint8_t byte = buf_[cursor++];
    len |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  if (len > kMaxFramePayload) {
    failed_ = true;
    return std::nullopt;
  }
  if (buf_.size() - cursor < len) return std::nullopt;  // partial payload

  std::vector<uint8_t> payload(buf_.begin() + static_cast<ptrdiff_t>(cursor),
                               buf_.begin() +
                                   static_cast<ptrdiff_t>(cursor + len));
  pos_ = cursor + static_cast<size_t>(len);
  // Compact once the consumed prefix dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return payload;
}

}  // namespace fortd::net
