// Minimal POSIX TCP wrapper for the remote compilation-cache tier
// (remote/client.hpp, remote/server.hpp).
//
// Everything is deadline-driven: send_all/recv_some take a millisecond
// budget and poll() inside it, so a stalled peer surfaces as
// IoStatus::Timeout instead of a hung compiler. No call ever raises
// SIGPIPE (MSG_NOSIGNAL) or throws; errors come back as status codes and
// the caller decides whether to retry, degrade, or drop the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace fortd::net {

enum class IoStatus {
  Ok,       // the full request completed within the deadline
  Timeout,  // deadline expired first
  Closed,   // orderly peer shutdown (EOF on read, EPIPE on write)
  Error,    // any other socket error
};

/// RAII file-descriptor wrapper (move-only, closed on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Write all `n` bytes within `deadline_ms` (total budget, not
  /// per-chunk). The socket may be blocking or not; progress is gated on
  /// poll(POLLOUT).
  IoStatus send_all(const uint8_t* data, size_t n, int deadline_ms);

  /// Read *up to* `n` bytes into `buf`, blocking at most `deadline_ms`
  /// for the first byte; `got` receives the byte count (0 with Closed on
  /// EOF).
  IoStatus recv_some(uint8_t* buf, size_t n, size_t& got, int deadline_ms);

  /// Drain whatever is immediately readable without blocking; appends to
  /// `out`. Ok = would-block (nothing more right now), Closed = EOF.
  IoStatus recv_available(std::string& out);

  /// Push as much of data[0..n) as the kernel accepts right now without
  /// blocking; `sent` receives the byte count (the daemon's poll loop
  /// needs byte-accurate partial writes to keep its streams in sync).
  IoStatus send_nonblocking(const uint8_t* data, size_t n, size_t& sent);

  void set_nonblocking();

 private:
  int fd_ = -1;
};

/// Blocking-with-deadline TCP connect. `host` is a dotted quad or a name
/// resolvable by getaddrinfo (AF_INET). nullopt on refusal, timeout, or
/// resolution failure; `err`, when non-null, receives a reason.
std::optional<Socket> connect_to(const std::string& host, int port,
                                 int timeout_ms, std::string* err = nullptr);

/// A listening TCP socket (the daemon's accept side).
class Listener {
 public:
  /// Bind + listen on host:port (port 0 picks an ephemeral port,
  /// readable afterwards via port()). False on failure.
  bool listen_on(const std::string& host, int port, std::string* err = nullptr);

  /// Accept one pending connection, already set nonblocking; nullopt when
  /// none is pending.
  std::optional<Socket> accept_conn();

  bool valid() const { return sock_.valid(); }
  int fd() const { return sock_.fd(); }
  int port() const { return port_; }
  void close() { sock_.close(); }

 private:
  Socket sock_;
  int port_ = 0;
};

}  // namespace fortd::net
