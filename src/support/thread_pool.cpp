#include "support/thread_pool.hpp"

#include <cassert>

namespace fortd {

ThreadPool::ThreadPool(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::ensure_workers(int threads) {
  {
    // Growing workers_ races the lockless reads in parallel_for/size();
    // catching a mid-batch call here turns a heisenbug into an abort.
    std::lock_guard<std::mutex> lock(mu_);
    assert(!batch_active_ && "ensure_workers must not race parallel_for");
  }
  while (static_cast<int>(workers_.size()) < threads)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (fn_ != nullptr && generation_ != seen && next_ < total_);
      });
      if (stop_) return;
      seen = generation_;
    }
    drain_batch();
  }
}

void ThreadPool::drain_batch() {
  for (;;) {
    size_t i;
    const std::function<void(size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fn_ == nullptr || next_ >= total_) return;
      i = next_++;
      fn = fn_;
    }
    std::exception_ptr err;
    try {
      (*fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err) errors_[i] = err;
      if (++completed_ == total_) {
        done_cv_.notify_all();
        return;
      }
    }
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;  // guaranteed no-op: batch state untouched
  if (workers_.empty() || n == 1) {
    // Inline: still capture-and-rethrow so behaviour matches the pool.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_active_ = true;
    fn_ = &fn;
    next_ = 0;
    total_ = n;
    completed_ = 0;
    ++generation_;
    errors_.assign(n, nullptr);
  }
  work_cv_.notify_all();
  drain_batch();  // the caller works too
  std::vector<std::exception_ptr> errors;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return completed_ == total_; });
    fn_ = nullptr;
    batch_active_ = false;
    errors = std::move(errors_);
    errors_.clear();
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace fortd
