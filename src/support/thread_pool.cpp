#include "support/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace fortd {

ThreadPool::ThreadPool(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::ensure_workers(int threads) {
  {
    // Growing workers_ races the lockless reads in parallel_for/size();
    // catching a mid-batch call here turns a heisenbug into an abort.
    std::lock_guard<std::mutex> lock(mu_);
    assert(active_batches_ == 0 &&
           "ensure_workers must not race parallel_for");
  }
  while (static_cast<int>(workers_.size()) < threads)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
    }
    drain(nullptr);
  }
}

void ThreadPool::drain(Batch* own) {
  for (;;) {
    size_t i;
    Batch* batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (own) {
        if (own->next >= own->total) return;
        batch = own;
      } else {
        // Oldest batch with unclaimed work: FIFO across callers, so an
        // early request's indices are never starved by a later one.
        if (queue_.empty()) return;
        batch = queue_.front();
      }
      i = batch->next++;
      // Claiming the last index retires the batch from the queue — it
      // must leave before the owning parallel_for can return and free
      // the stack storage the pointer refers to.
      if (batch->next >= batch->total)
        queue_.erase(std::find(queue_.begin(), queue_.end(), batch));
    }
    std::exception_ptr err;
    try {
      (*batch->fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err) batch->errors[i] = err;
      if (++batch->completed == batch->total) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;  // guaranteed no-op: batch state untouched
  if (workers_.empty() || n == 1) {
    // Inline: still capture-and-rethrow so behaviour matches the pool.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.total = n;
  batch.errors.assign(n, nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_batches_;
    queue_.push_back(&batch);
  }
  work_cv_.notify_all();
  drain(&batch);  // the caller works too — and can finish the batch alone
  std::vector<std::exception_ptr> errors;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch.completed == batch.total; });
    --active_batches_;
    errors = std::move(batch.errors);
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace fortd
