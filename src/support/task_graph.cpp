#include "support/task_graph.hpp"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "support/thread_pool.hpp"

namespace fortd {

namespace {

constexpr uint32_t kNoNode = ~uint32_t{0};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

TaskGraphStats& TaskGraphStats::operator+=(const TaskGraphStats& o) {
  executed += o.executed;
  stolen += o.stolen;
  cancelled += o.cancelled;
  aux_executed += o.aux_executed;
  aux_dropped += o.aux_dropped;
  if (o.ready_peak > ready_peak) ready_peak = o.ready_peak;
  if (o.critical_path > critical_path) critical_path = o.critical_path;
  idle_ms += o.idle_ms;
  wall_ms += o.wall_ms;
  return *this;
}

/// All mutable scheduling state of one parallel run(). One mutex guards
/// everything: tasks are whole-procedure compilations, so the scheduler
/// is cold next to its payloads and finer-grained locking would only
/// buy complexity.
class TaskGraph::Impl {
public:
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::deque<uint32_t>> deques;  // per-slot runnable nodes
  std::deque<std::function<void()>> aux;     // idle-slot side tasks
  size_t ready_count = 0;  // nodes currently sitting in deques
  size_t done = 0;         // nodes finished or cancelled
  // (order key, exception) per failure; node index for node bodies and
  // ready-hook calls, SIZE_MAX for auxiliary tasks.
  std::vector<std::pair<size_t, std::exception_ptr>> errors;
};

TaskGraph::TaskGraph(size_t n) : nodes_(n) {}

void TaskGraph::add_dependency(size_t node, size_t dep) {
  assert(!ran_ && "add_dependency after run()");
  assert(node < nodes_.size() && dep < nodes_.size());
  assert(dep < node && "node indices must be a topological order");
  nodes_[node].pending++;
  nodes_[dep].dependents.push_back(static_cast<uint32_t>(node));
}

void TaskGraph::set_ready_hook(
    std::function<void(const std::vector<size_t>&)> hook) {
  ready_hook_ = std::move(hook);
}

void TaskGraph::spawn_aux(std::function<void()> fn) {
  if (impl_) {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->aux.push_back(std::move(fn));
    }
    impl_->cv.notify_one();
    return;
  }
  if (ran_) {
    // Inline schedule: run at the spawn point, so the serial order
    // issues each fetch before the compiles it covers — the same
    // fetch-then-generate order the serial wavefront used.
    fn();
    ++stats_.aux_executed;
    return;
  }
  pending_aux_.push_back(std::move(fn));
}

void TaskGraph::run(ThreadPool* pool, const std::function<void(size_t)>& fn) {
  if (ran_) throw std::logic_error("TaskGraph::run called twice");
  ran_ = true;
  const auto t0 = std::chrono::steady_clock::now();

  // Critical path: longest chain of dependent nodes, the lower bound on
  // any schedule's span. Indices are a topological order, so one
  // ascending relaxation over forward edges suffices.
  if (!nodes_.empty()) {
    std::vector<uint32_t> depth(nodes_.size(), 1);
    for (size_t i = 0; i < nodes_.size(); ++i)
      for (uint32_t d : nodes_[i].dependents)
        if (depth[i] + 1 > depth[d]) depth[d] = depth[i] + 1;
    for (uint32_t d : depth)
      if (d > stats_.critical_path) stats_.critical_path = d;
  }

  std::vector<size_t> initial;
  for (size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].pending == 0) initial.push_back(i);

  if (!pool || pool->size() == 0) {
    // Inline: index order *is* a valid schedule (deps precede their
    // dependents), and it is exactly the serial emission order.
    for (auto& fn_aux : pending_aux_) {
      fn_aux();
      ++stats_.aux_executed;
    }
    pending_aux_.clear();
    if (ready_hook_ && !initial.empty()) ready_hook_(initial);
    run_inline(fn);
    stats_.wall_ms += ms_since(t0);
    return;
  }

  Impl impl;
  const size_t nslots = static_cast<size_t>(pool->size()) + 1;
  const size_t n = nodes_.size();
  impl.deques.resize(nslots);
  for (auto& fn_aux : pending_aux_) impl.aux.push_back(std::move(fn_aux));
  pending_aux_.clear();
  impl_ = &impl;
  if (ready_hook_ && !initial.empty()) {
    try {
      ready_hook_(initial);
    } catch (...) {
      impl_ = nullptr;  // no worker started; nothing ran
      throw;
    }
  }
  // Scatter the initial frontier round-robin so every slot starts with
  // local work instead of stealing from slot 0.
  for (size_t j = 0; j < initial.size(); ++j)
    impl.deques[j % nslots].push_back(static_cast<uint32_t>(initial[j]));
  impl.ready_count = initial.size();
  if (impl.ready_count > stats_.ready_peak)
    stats_.ready_peak = impl.ready_count;

  // Mark `seeds` (whose `done` was already counted) finished, poisoned
  // ones as cancellation sources, and cascade: a dependent of a failed
  // or cancelled node is cancelled the moment its counter hits zero —
  // it never enqueues, so the deques hold only runnable nodes. Returns
  // the newly runnable dependents. Caller holds impl.mu.
  auto cascade_done = [&](std::vector<uint32_t> cascade,
                          std::vector<bool> poison) {
    std::vector<size_t> ready;
    for (size_t c = 0; c < cascade.size(); ++c) {
      const bool bad = poison[c];
      for (uint32_t d : nodes_[cascade[c]].dependents) {
        if (bad) nodes_[d].cancelled = true;
        if (--nodes_[d].pending == 0) {
          if (nodes_[d].cancelled) {
            ++impl.done;
            ++stats_.cancelled;
            cascade.push_back(d);
            poison.push_back(true);
          } else {
            ready.push_back(d);
          }
        }
      }
    }
    return ready;
  };

  pool->parallel_for(nslots, [&](size_t slot) {
    for (;;) {
      uint32_t node = kNoNode;
      bool stole = false;
      std::function<void()> aux_fn;
      {
        std::unique_lock<std::mutex> lock(impl.mu);
        for (;;) {
          if (!impl.deques[slot].empty()) {
            node = impl.deques[slot].back();  // LIFO: freshest, warmest
            impl.deques[slot].pop_back();
            break;
          }
          for (size_t v = 1; v < nslots && node == kNoNode; ++v) {
            auto& victim = impl.deques[(slot + v) % nslots];
            if (!victim.empty()) {
              node = victim.front();  // FIFO end: the victim's coldest
              victim.pop_front();
              stole = true;
            }
          }
          if (node != kNoNode) break;
          // Every node done: exit, dropping queued aux tasks — there is
          // nothing left for a prefetch to overlap with.
          if (impl.done == n) return;
          if (!impl.aux.empty()) {
            aux_fn = std::move(impl.aux.front());
            impl.aux.pop_front();
            break;
          }
          const auto w0 = std::chrono::steady_clock::now();
          impl.cv.wait(lock, [&] {
            return impl.ready_count > 0 || !impl.aux.empty() ||
                   impl.done == n;
          });
          stats_.idle_ms += ms_since(w0);
        }
        if (node != kNoNode) {
          --impl.ready_count;
          if (stole) ++stats_.stolen;
        }
      }

      if (aux_fn) {
        std::exception_ptr err;
        try {
          aux_fn();
        } catch (...) {
          err = std::current_exception();  // aux must not throw; keep it
        }
        std::lock_guard<std::mutex> lock(impl.mu);
        ++stats_.aux_executed;
        if (err) impl.errors.emplace_back(SIZE_MAX, err);
        continue;
      }

      std::exception_ptr err;
      try {
        fn(node);
      } catch (...) {
        err = std::current_exception();
      }

      std::vector<size_t> ready;
      bool all_done = false;
      {
        std::lock_guard<std::mutex> lock(impl.mu);
        ++stats_.executed;
        if (err) impl.errors.emplace_back(node, err);
        ++impl.done;
        ready = cascade_done({node}, {err != nullptr});
        all_done = impl.done == n;
      }
      if (all_done) impl.cv.notify_all();
      if (ready.empty()) continue;

      // The ready hook runs before the nodes are published: everything
      // it writes for them is ordered before any worker picks them up.
      // A throwing hook would strand its batch and deadlock the run, so
      // its failure cancels the batch like a failed ancestor.
      if (ready_hook_) {
        try {
          ready_hook_(ready);
        } catch (...) {
          std::lock_guard<std::mutex> lock(impl.mu);
          impl.errors.emplace_back(ready.front(), std::current_exception());
          std::vector<uint32_t> seeds;
          for (size_t r : ready) {
            nodes_[r].cancelled = true;
            ++impl.done;
            ++stats_.cancelled;
            seeds.push_back(static_cast<uint32_t>(r));
          }
          cascade_done(std::move(seeds),
                       std::vector<bool>(ready.size(), true));
          if (impl.done == n) impl.cv.notify_all();
          continue;
        }
      }
      {
        std::lock_guard<std::mutex> lock(impl.mu);
        for (size_t r : ready)
          impl.deques[slot].push_back(static_cast<uint32_t>(r));
        impl.ready_count += ready.size();
        if (impl.ready_count > stats_.ready_peak)
          stats_.ready_peak = impl.ready_count;
      }
      if (ready.size() > 1)
        impl.cv.notify_all();
      else
        impl.cv.notify_one();
    }
  });

  impl_ = nullptr;
  stats_.aux_dropped += impl.aux.size();
  stats_.wall_ms += ms_since(t0);

  if (!impl.errors.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < impl.errors.size(); ++i)
      if (impl.errors[i].first < impl.errors[best].first) best = i;
    std::rethrow_exception(impl.errors[best].second);
  }
}

void TaskGraph::run_inline(const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    assert(nodes_[i].pending == 0 &&
           "dependency edge violates topological node order");
    fn(i);  // a throw propagates immediately: serial first-failure
    ++stats_.executed;
    std::vector<size_t> ready;
    for (uint32_t d : nodes_[i].dependents)
      if (--nodes_[d].pending == 0) ready.push_back(d);
    if (ready_hook_ && !ready.empty()) ready_hook_(ready);
  }
}

}  // namespace fortd
