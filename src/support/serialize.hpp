// Versioned binary serialization primitives for on-disk compiler
// artifacts (see driver/compilation_db.hpp).
//
// BinaryWriter appends varint-coded integers (zigzag for signed),
// length-prefixed strings, bit-cast doubles, and counted containers to a
// byte buffer. BinaryReader is the mirror image with *stream semantics*:
// a read past the end (or an implausible element count) sets a sticky
// fail bit instead of throwing, and every subsequent read returns a zero
// value. Deserializers therefore read unconditionally and check `ok() &&
// at_end()` once at the end — malformed payloads yield nullopt at the
// artifact boundary, never an exception or an over-allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fortd {

/// Bump when any artifact payload layout changes; stamped (mixed with the
/// artifact kind) into every blob header so stale caches read as misses.
/// v2: FDCA envelope payloads are LZ-compressed (support/compress.hpp).
/// v3: CommEvent carries its originating SourceLoc (line, col) so cached
///     SPMD bodies keep source-mapped diagnostics.
constexpr uint32_t kSerializeFormatVersion = 3;

/// FNV-1a over a byte range — the checksum used by artifact envelopes.
uint64_t fnv1a(const uint8_t* data, size_t size, uint64_t seed = 1469598103934665603ull);

class BinaryWriter {
public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u64(uint64_t v);            // LEB128 varint
  void i64(int64_t v);             // zigzag + varint
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v);              // 8 bytes, little-endian bit pattern
  void str(const std::string& s);
  void blob(const std::vector<uint8_t>& v);  // length-prefixed raw bytes

  /// Length prefix for a container; elements follow via the other writers.
  void count(size_t n) { u64(static_cast<uint64_t>(n)); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

private:
  std::vector<uint8_t> buf_;
};

class BinaryReader {
public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  uint8_t u8();
  uint64_t u64();
  int64_t i64();
  bool boolean() { return u8() != 0; }
  double f64();
  std::string str();
  std::vector<uint8_t> blob();

  /// Container length prefix. Fails (returning 0) when the count exceeds
  /// the remaining bytes — every element costs at least one byte, so a
  /// larger count can only come from corruption and would otherwise cause
  /// a pathological reserve() loop downstream.
  size_t count();

  bool ok() const { return ok_; }
  /// Sticky failure, also settable by deserializers on semantic errors
  /// (e.g. an out-of-range enum value).
  void fail() { ok_ = false; }
  bool at_end() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

private:
  bool take(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fortd
