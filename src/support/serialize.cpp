#include "support/serialize.hpp"

namespace fortd {

uint64_t fnv1a(const uint8_t* data, size_t size, uint64_t seed) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

void BinaryWriter::u64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BinaryWriter::i64(int64_t v) {
  // Zigzag: sign bit to the bottom so small magnitudes stay short.
  u64((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void BinaryWriter::f64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(bits >> (i * 8)));
}

void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::blob(const std::vector<uint8_t>& v) {
  u64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

bool BinaryReader::take(void* out, size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

uint8_t BinaryReader::u8() {
  uint8_t v = 0;
  take(&v, 1);
  return ok_ ? v : 0;
}

uint64_t BinaryReader::u64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t byte = 0;
    if (!take(&byte, 1)) return 0;
    if (shift >= 64) {  // overlong encoding: corrupt
      ok_ = false;
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
}

int64_t BinaryReader::i64() {
  uint64_t z = u64();
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double BinaryReader::f64() {
  uint8_t raw[8];
  if (!take(raw, 8)) return 0.0;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<uint64_t>(raw[i]) << (i * 8);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::str() {
  uint64_t n = u64();
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<uint8_t> BinaryReader::blob() {
  uint64_t n = u64();
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::vector<uint8_t> v(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return v;
}

size_t BinaryReader::count() {
  uint64_t n = u64();
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return 0;
  }
  return static_cast<size_t>(n);
}

}  // namespace fortd
