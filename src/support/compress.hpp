// In-repo LZ-style blob compression for the persistent compilation
// database and the remote cache wire (see driver/compilation_db.hpp and
// remote/protocol.hpp).
//
// Artifact payloads are varint-packed but their bodies repeat names
// heavily (procedure/array/decomposition identifiers recur in every
// section), so a small LZSS-style codec with a 64 KiB window recovers
// most of that redundancy without any external dependency.
//
// Stream format (all integers are LEB128 varints):
//
//   [u8 mode] mode 0 = stored, 1 = LZ
//   [varint raw_size]
//   stored: raw_size raw bytes
//   LZ:     tokens until raw_size bytes have been produced —
//     token byte t < 0x80: literal run of t+1 bytes (1..128) follows
//     token byte t >= 0x80: match of length (t & 0x7f) + kMinMatch
//                           (4..131), followed by a varint distance
//                           (1..65535) back into the output
//
// compress_bytes never fails (incompressible input falls back to stored
// mode, costing 2-6 bytes of framing). decompress_bytes is totally
// defensive: any malformed stream — bad mode, implausible size, distance
// past the start, output overrun, trailing garbage — returns nullopt,
// never throws, never over-allocates, and always terminates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace fortd {

/// Bump when the compressed-stream layout changes; mixed into artifact
/// format hashes (next to kSerializeFormatVersion) so blobs written by a
/// different codec version quarantine instead of misdecoding.
constexpr uint32_t kCompressFormatVersion = 1;

/// Compress `raw` (stored mode when LZ does not help). Deterministic:
/// identical input yields identical output, so blob byte-identity
/// comparisons across compilers remain valid.
std::vector<uint8_t> compress_bytes(const std::vector<uint8_t>& raw);

/// Inverse of compress_bytes; nullopt on any malformed stream.
std::optional<std::vector<uint8_t>> decompress_bytes(const uint8_t* data,
                                                     size_t size);
inline std::optional<std::vector<uint8_t>> decompress_bytes(
    const std::vector<uint8_t>& bytes) {
  return decompress_bytes(bytes.data(), bytes.size());
}

}  // namespace fortd
