#include "support/diagnostics.hpp"

namespace fortd {

std::string SourceLoc::str() const {
  if (!valid()) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(col);
}

std::string Diagnostic::str() const {
  const char* lvl = level == DiagLevel::Error     ? "error"
                    : level == DiagLevel::Warning ? "warning"
                                                  : "note";
  return loc.str() + ": " + lvl + ": " + message;
}

CompileError::CompileError(SourceLoc loc, const std::string& msg)
    : std::runtime_error(loc.str() + ": error: " + msg), loc_(loc) {}

void DiagnosticEngine::error(SourceLoc loc, const std::string& msg) {
  diags_.push_back({DiagLevel::Error, loc, msg});
  throw CompileError(loc, msg);
}

void DiagnosticEngine::warning(SourceLoc loc, const std::string& msg) {
  diags_.push_back({DiagLevel::Warning, loc, msg});
  ++warnings_;
}

void DiagnosticEngine::note(SourceLoc loc, const std::string& msg) {
  diags_.push_back({DiagLevel::Note, loc, msg});
}

void DiagnosticEngine::clear() {
  diags_.clear();
  warnings_ = 0;
}

}  // namespace fortd
