#include "support/diagnostics.hpp"

#include <algorithm>

namespace fortd {

std::string SourceLoc::str() const {
  if (!valid()) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(col);
}

std::string Diagnostic::str() const {
  const char* lvl = level == DiagLevel::Error     ? "error"
                    : level == DiagLevel::Warning ? "warning"
                                                  : "note";
  std::string s = loc.str() + ": " + lvl + ": " + message;
  if (!id.empty()) s += " [" + id + "]";
  return s;
}

CompileError::CompileError(SourceLoc loc, const std::string& msg)
    : std::runtime_error(loc.str() + ": error: " + msg), loc_(loc) {}

void DiagnosticEngine::record(DiagLevel level, SourceLoc loc,
                              const std::string& msg, int order_key,
                              const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  diags_.push_back({level, loc, msg, order_key, id});
  if (level == DiagLevel::Warning) ++warnings_;
}

void DiagnosticEngine::report(DiagLevel level, SourceLoc loc,
                              const std::string& msg, const std::string& id,
                              int order_key) {
  record(level, loc, msg, order_key, id);
}

void DiagnosticEngine::error(SourceLoc loc, const std::string& msg,
                             int order_key) {
  record(DiagLevel::Error, loc, msg, order_key);
  throw CompileError(loc, msg);
}

void DiagnosticEngine::warning(SourceLoc loc, const std::string& msg,
                               int order_key) {
  record(DiagLevel::Warning, loc, msg, order_key);
}

void DiagnosticEngine::note(SourceLoc loc, const std::string& msg,
                            int order_key) {
  record(DiagLevel::Note, loc, msg, order_key);
}

std::vector<Diagnostic> DiagnosticEngine::ordered() const {
  std::vector<Diagnostic> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = diags_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.order_key < b.order_key;
                   });
  return out;
}

int DiagnosticEngine::warning_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warnings_;
}

void DiagnosticEngine::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  diags_.clear();
  warnings_ = 0;
}

}  // namespace fortd
