// A small fixed-size worker pool for the compilation scheduler.
// parallel_for(n, fn) executes fn(0..n-1) across the workers and blocks
// until every index completed. Exceptions thrown by fn are captured per
// index and the lowest-index one is rethrown after the batch drains, so
// failures surface in the same order a serial loop would report them.
//
// Batches from *different* threads may overlap: each parallel_for call
// enqueues an independent batch, workers claim indices from the oldest
// batch that still has unclaimed work (FIFO — early batches never
// starve behind late ones), and every caller participates in its own
// batch, claiming all of its indices itself if no worker is free. A
// caller therefore always completes without any worker's help, which is
// what lets the compile service run many compilations over one shared
// pool: concurrent requests split the workers fairly instead of each
// owning a private pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fortd {

class ThreadPool {
public:
  /// Spawns `threads` workers (0 = run every batch inline on the caller).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Grow the pool to at least `threads` workers (never shrinks). The
  /// machine simulator needs this: processor bodies block on each other
  /// (barriers, receives), so they deadlock unless the batch concurrency
  /// (workers + caller) covers every processor.
  ///
  /// Invariant: must not run while any batch is in flight — workers_ is
  /// read locklessly by parallel_for/size(), and a mid-batch append
  /// would race them. Debug builds assert this; callers must sequence
  /// ensure_workers strictly between batches (the simulator grows the
  /// pool before machine start-up, never from a processor body).
  /// Blocking batches (simulator, threaded runtime) additionally require
  /// a single-owner pool: only non-blocking batches may overlap.
  void ensure_workers(int threads);

  /// Run fn(i) for every i in [0, n). The caller participates in the
  /// batch — and claims every index itself if the workers are busy with
  /// other batches — so completion never depends on pool availability.
  /// Blocks until all indices finished; rethrows the lowest-index
  /// captured exception. n == 0 is guaranteed to be a no-op that never
  /// touches batch state (no lock, no worker wake-up). Thread-safe:
  /// concurrent calls interleave as independent FIFO batches.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

private:
  /// One parallel_for invocation. Lives on the caller's stack; the
  /// queue_ holds it only while indices remain unclaimed, but claimers
  /// keep a raw pointer until they report completion — the caller's
  /// final wait (completed == total) is what keeps the storage alive.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t next = 0;       // first unclaimed index
    size_t total = 0;
    size_t completed = 0;  // indices whose fn returned (or threw)
    std::vector<std::exception_ptr> errors;
  };

  void worker_loop();
  /// Claim and run indices of `batch` until it is exhausted; with
  /// batch == nullptr, keep claiming from the oldest unexhausted batch
  /// (worker behaviour).
  void drain(Batch* batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for unclaimed work
  std::condition_variable done_cv_;   // parallel_for waits for completion
  bool stop_ = false;

  // Batches with unclaimed indices, oldest first (guarded by mu_). A
  // batch is popped when its last index is claimed; completion is
  // tracked in the Batch itself.
  std::deque<Batch*> queue_;
  size_t active_batches_ = 0;  // parallel_for spans in flight
};

}  // namespace fortd
