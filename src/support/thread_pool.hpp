// A small fixed-size worker pool for the compilation scheduler. One batch
// runs at a time: parallel_for(n, fn) executes fn(0..n-1) across the
// workers and blocks until every index completed. Exceptions thrown by fn
// are captured per index and the lowest-index one is rethrown after the
// batch drains, so failures surface in the same order a serial loop would
// report them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fortd {

class ThreadPool {
public:
  /// Spawns `threads` workers (0 = run every batch inline on the caller).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Grow the pool to at least `threads` workers (never shrinks). The
  /// machine simulator needs this: processor bodies block on each other
  /// (barriers, receives), so they deadlock unless the batch concurrency
  /// (workers + caller) covers every processor.
  ///
  /// Invariant: must not run while a batch is in flight — workers_ is
  /// read locklessly by parallel_for/size(), and a mid-batch append
  /// would race them. Debug builds assert this; callers must sequence
  /// ensure_workers strictly between batches (the simulator grows the
  /// pool before machine start-up, never from a processor body).
  void ensure_workers(int threads);

  /// Run fn(i) for every i in [0, n). The caller participates in the
  /// batch, so a pool of k workers applies k+1 threads. Blocks until all
  /// indices finished; rethrows the lowest-index captured exception.
  /// n == 0 is guaranteed to be a no-op that never touches batch state
  /// (no lock, no generation bump, no worker wake-up).
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

private:
  void worker_loop();
  /// Claim and run indices of the current batch until it is exhausted.
  void drain_batch();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // parallel_for waits for completion
  bool stop_ = false;

  // Current batch (guarded by mu_).
  bool batch_active_ = false;  // set for the whole parallel_for span
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t next_ = 0;
  size_t total_ = 0;
  size_t completed_ = 0;
  uint64_t generation_ = 0;  // bumped per batch so workers don't rejoin
  std::vector<std::exception_ptr> errors_;
};

}  // namespace fortd
