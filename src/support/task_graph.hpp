// Barrier-free dependency-graph executor for the compilation scheduler.
//
// The wavefront schedules (PR 1/2) partition the augmented call graph
// into depth levels with a full barrier between them, so every level
// pays the stall of its slowest procedure: dgefa's wide daxpy level
// waits behind the serial idamax chain even though the daxpys' own
// callees finished long ago. TaskGraph removes the barrier: each node
// carries a remaining-dependency counter, finishing a node decrements
// its dependents, and a dependent that hits zero is enqueued at that
// moment — a ready caller starts when its *own* callees finish, not
// when the whole level does.
//
// Execution is work-stealing over the shared ThreadPool: one
// parallel_for batch whose indices are scheduler worker slots. Each
// slot owns a deque; finished nodes push their newly-ready dependents
// onto the finishing slot's deque (LIFO pop for locality), and an idle
// slot steals from the front of another slot's deque. All scheduler
// state is guarded by one mutex — tasks are whole-procedure compiles
// (micro- to milliseconds), so lock-free deques would buy nothing.
//
// Determinism contract: node results must not depend on execution
// order (each consumer publishes per-node slots and commits them in a
// fixed order after run() returns), and node indices must be a valid
// topological order (every dependency's index is lower than its
// dependent's — the reverse-topological/topological ACG orders the
// consumers schedule satisfy this by construction). Under that
// contract the inline schedule (no pool) runs nodes in index order,
// which is exactly the serial emission order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace fortd {

class ThreadPool;

/// Which schedule runs the ACG passes. WorkStealing is the default;
/// Wavefront (depth levels with barriers) is kept as the measurable
/// baseline and for parity tests. Output is byte-identical either way,
/// and the choice is excluded from cache digests (like `jobs`).
enum class Scheduler {
  WorkStealing,
  Wavefront,
};

/// Observability counters of one run() (or the sum of several — see
/// operator+=). Idle time is the stall the barrier-free schedule is
/// meant to eliminate; critical_path bounds the achievable wall time.
struct TaskGraphStats {
  uint64_t executed = 0;     // nodes whose body ran
  uint64_t stolen = 0;       // nodes popped from another slot's deque
  uint64_t cancelled = 0;    // nodes skipped because an ancestor threw
  uint64_t aux_executed = 0; // auxiliary tasks run (prefetch batches)
  uint64_t aux_dropped = 0;  // auxiliary tasks still queued at the end
  size_t ready_peak = 0;     // high-water mark of enqueued-ready nodes
  size_t critical_path = 0;  // longest dependency chain (node count)
  double idle_ms = 0.0;      // summed worker wait time inside run()
  double wall_ms = 0.0;      // run() wall clock

  TaskGraphStats& operator+=(const TaskGraphStats& o);
};

class TaskGraph {
public:
  /// A graph of `n` nodes, initially edge-free. Node index doubles as
  /// the order key: exceptions rethrow for the lowest-index failed
  /// node, and the inline schedule runs in index order.
  explicit TaskGraph(size_t n);

  size_t size() const { return nodes_.size(); }

  /// Declare that `dep` must finish before `node` starts. Requires
  /// dep < node (indices are a topological order); duplicate edges are
  /// allowed (a caller with two call sites to one callee) and counted
  /// symmetrically.
  void add_dependency(size_t node, size_t dep);

  /// Hook invoked with each batch of nodes that just became ready,
  /// *before* they are enqueued — anything the hook writes for those
  /// nodes happens-before their bodies run on any worker. This is
  /// where codegen finalizes digests (a node is ready exactly when its
  /// last callee resolved) and spawns prefetch batches. Ready batches
  /// for different nodes may fire concurrently from different workers;
  /// nodes cancelled by a failed ancestor never reach the hook.
  void set_ready_hook(std::function<void(const std::vector<size_t>&)> hook);

  /// Enqueue an auxiliary task (a remote-cache BATCH_GET) on the same
  /// workers. Auxiliary tasks run only on otherwise-idle slots (graph
  /// nodes and steals take priority), never block completion, and are
  /// dropped if still queued when the last node finishes — they must
  /// be pure optimizations. With no pool, spawn_aux runs `fn` inline
  /// immediately (the serial schedule issues fetches before compiles).
  /// Callable from the ready hook and from node bodies.
  void spawn_aux(std::function<void()> fn);

  /// Run fn(i) for every node, respecting dependencies. Uses `pool`'s
  /// workers plus the caller when given (one parallel_for batch for
  /// the whole graph); runs inline in index order when `pool` is null
  /// or empty. If node bodies throw, their dependents are cancelled
  /// transitively, every other node still runs, and the exception of
  /// the lowest-index failed node is rethrown — the same failure a
  /// serial index-order walk reports first. The graph and pool remain
  /// reusable after a throw (run() may not be called twice on the same
  /// graph, but a fresh graph may reuse the pool).
  void run(ThreadPool* pool, const std::function<void(size_t)>& fn);

  const TaskGraphStats& stats() const { return stats_; }

private:
  struct Node {
    uint32_t pending = 0;  // unfinished dependencies
    bool cancelled = false;
    std::vector<uint32_t> dependents;
  };

  class Impl;  // parallel-run state (deques, cv); lives only in run()

  void run_inline(const std::function<void(size_t)>& fn);

  std::vector<Node> nodes_;
  std::function<void(const std::vector<size_t>&)> ready_hook_;
  std::vector<std::function<void()>> pending_aux_;  // spawned before run()
  TaskGraphStats stats_;
  Impl* impl_ = nullptr;  // non-null only while run() executes on a pool
  bool ran_ = false;
};

}  // namespace fortd
