#include "support/compress.hpp"

#include <cstring>

namespace fortd {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = kMinMatch + 0x7f;  // 131
constexpr size_t kMaxLiteralRun = 128;
constexpr size_t kMaxDistance = 65535;
constexpr size_t kHashBits = 15;
constexpr uint64_t kMaxPlausibleRaw = 1ull << 30;  // decoder allocation cap

void put_varint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

/// Varint read with explicit cursor; false on truncation/overlong.
bool get_varint(const uint8_t* data, size_t size, size_t& pos, uint64_t& v) {
  v = 0;
  int shift = 0;
  while (true) {
    if (pos >= size || shift >= 64) return false;
    uint8_t byte = data[pos++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return true;
    shift += 7;
  }
}

uint32_t hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void flush_literals(std::vector<uint8_t>& out, const uint8_t* raw,
                    size_t lit_start, size_t lit_end) {
  while (lit_start < lit_end) {
    size_t run = lit_end - lit_start;
    if (run > kMaxLiteralRun) run = kMaxLiteralRun;
    out.push_back(static_cast<uint8_t>(run - 1));
    out.insert(out.end(), raw + lit_start, raw + lit_start + run);
    lit_start += run;
  }
}

}  // namespace

std::vector<uint8_t> compress_bytes(const std::vector<uint8_t>& raw) {
  std::vector<uint8_t> out;
  out.reserve(raw.size() / 2 + 16);
  out.push_back(1);  // LZ mode; rewritten to 0 below if it did not help
  put_varint(out, raw.size());
  const size_t header = out.size();

  if (raw.size() >= kMinMatch) {
    // Greedy LZ with a most-recent-position hash table over 4-byte keys.
    std::vector<uint32_t> head(size_t{1} << kHashBits, UINT32_MAX);
    const uint8_t* p = raw.data();
    const size_t n = raw.size();
    size_t pos = 0, lit_start = 0;
    while (pos + kMinMatch <= n) {
      uint32_t h = hash4(p + pos);
      size_t cand = head[h];
      head[h] = static_cast<uint32_t>(pos);
      size_t len = 0;
      if (cand != UINT32_MAX && pos - cand <= kMaxDistance &&
          std::memcmp(p + cand, p + pos, kMinMatch) == 0) {
        len = kMinMatch;
        size_t limit = n - pos < kMaxMatch ? n - pos : kMaxMatch;
        while (len < limit && p[cand + len] == p[pos + len]) ++len;
      }
      if (len >= kMinMatch) {
        flush_literals(out, p, lit_start, pos);
        out.push_back(static_cast<uint8_t>(0x80 | (len - kMinMatch)));
        put_varint(out, pos - cand);
        // Seed the table across the match so later references can land
        // inside it (skip the tail to stay O(n) on pathological input).
        size_t seed_end = pos + len < n - kMinMatch ? pos + len : 0;
        for (size_t q = pos + 1; q + kMinMatch <= seed_end && q < pos + 16; ++q)
          head[hash4(p + q)] = static_cast<uint32_t>(q);
        pos += len;
        lit_start = pos;
      } else {
        ++pos;
      }
    }
    flush_literals(out, p, lit_start, n);
  } else {
    flush_literals(out, raw.data(), 0, raw.size());
  }

  if (out.size() - header >= raw.size()) {
    // Incompressible: stored mode keeps the cost to the framing bytes.
    out.clear();
    out.push_back(0);
    put_varint(out, raw.size());
    out.insert(out.end(), raw.begin(), raw.end());
  }
  return out;
}

std::optional<std::vector<uint8_t>> decompress_bytes(const uint8_t* data,
                                                     size_t size) {
  size_t pos = 0;
  if (size == 0) return std::nullopt;
  const uint8_t mode = data[pos++];
  uint64_t raw_size = 0;
  if (mode > 1 || !get_varint(data, size, pos, raw_size)) return std::nullopt;
  if (raw_size > kMaxPlausibleRaw) return std::nullopt;

  if (mode == 0) {
    if (size - pos != raw_size) return std::nullopt;
    return std::vector<uint8_t>(data + pos, data + size);
  }

  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>(raw_size));
  while (out.size() < raw_size) {
    if (pos >= size) return std::nullopt;
    const uint8_t t = data[pos++];
    if (t < 0x80) {
      const size_t run = static_cast<size_t>(t) + 1;
      if (size - pos < run || out.size() + run > raw_size) return std::nullopt;
      out.insert(out.end(), data + pos, data + pos + run);
      pos += run;
    } else {
      const size_t len = static_cast<size_t>(t & 0x7f) + kMinMatch;
      uint64_t dist = 0;
      if (!get_varint(data, size, pos, dist)) return std::nullopt;
      if (dist == 0 || dist > out.size() || dist > kMaxDistance ||
          out.size() + len > raw_size)
        return std::nullopt;
      // Byte-by-byte: overlapping matches (dist < len) replicate.
      size_t from = out.size() - static_cast<size_t>(dist);
      for (size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
    }
  }
  if (pos != size) return std::nullopt;  // trailing garbage
  return out;
}

}  // namespace fortd
