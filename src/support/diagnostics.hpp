// Diagnostics: source locations, error collection, and the exception type
// thrown on unrecoverable front-end or compiler errors.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace fortd {

/// A position in a Fortran D source buffer (1-based, 0 = unknown).
struct SourceLoc {
  int line = 0;
  int col = 0;

  bool valid() const { return line > 0; }
  std::string str() const;
};

enum class DiagLevel { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagLevel level;
  SourceLoc loc;
  std::string message;
  /// Ordering key for reports from concurrent compilation workers: the
  /// procedure index of the reporting worker, or -1 for serial phases.
  /// `ordered()` sorts by this key (stably), so parallel code generation
  /// yields the same diagnostic order as a serial walk.
  int order_key = -1;
  /// Stable diagnostic id (e.g. "fortd-call-mismatch") for lint/verifier
  /// reports; empty for plain front-end diagnostics. Rendered clang-tidy
  /// style as a trailing "[id]" and used by tests to assert on findings.
  std::string id;

  std::string str() const;
};

/// Thrown when compilation cannot proceed (parse error, unsupported
/// construct, inconsistent decomposition, ...).
class CompileError : public std::runtime_error {
public:
  CompileError(SourceLoc loc, const std::string& msg);
  SourceLoc loc() const { return loc_; }

private:
  SourceLoc loc_;
};

/// Collects diagnostics for a compilation unit. Errors are recorded and
/// also thrown as CompileError by `error`; warnings/notes accumulate.
/// Reporting is thread-safe: code-generation workers may report
/// concurrently, tagging each diagnostic with their procedure index so
/// `ordered()` restores the deterministic serial order.
class DiagnosticEngine {
public:
  [[noreturn]] void error(SourceLoc loc, const std::string& msg,
                          int order_key = -1);
  void warning(SourceLoc loc, const std::string& msg, int order_key = -1);
  void note(SourceLoc loc, const std::string& msg, int order_key = -1);

  /// Non-throwing report with an explicit severity and diagnostic id —
  /// the entry point used by lint checkers and the SPMD verifier.
  void report(DiagLevel level, SourceLoc loc, const std::string& msg,
              const std::string& id, int order_key = -1);

  /// Raw diagnostics in arrival order. Only meaningful once no worker is
  /// reporting concurrently (arrival order is nondeterministic under
  /// parallel code generation — prefer `ordered()`).
  const std::vector<Diagnostic>& all() const { return diags_; }
  /// Diagnostics stably sorted by order_key: front-end reports (-1) first,
  /// then per-procedure reports by procedure index.
  std::vector<Diagnostic> ordered() const;
  int warning_count() const;
  void clear();

private:
  void record(DiagLevel level, SourceLoc loc, const std::string& msg,
              int order_key, const std::string& id = {});

  mutable std::mutex mu_;
  std::vector<Diagnostic> diags_;
  int warnings_ = 0;
};

}  // namespace fortd
