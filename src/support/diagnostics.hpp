// Diagnostics: source locations, error collection, and the exception type
// thrown on unrecoverable front-end or compiler errors.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fortd {

/// A position in a Fortran D source buffer (1-based, 0 = unknown).
struct SourceLoc {
  int line = 0;
  int col = 0;

  bool valid() const { return line > 0; }
  std::string str() const;
};

enum class DiagLevel { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagLevel level;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Thrown when compilation cannot proceed (parse error, unsupported
/// construct, inconsistent decomposition, ...).
class CompileError : public std::runtime_error {
public:
  CompileError(SourceLoc loc, const std::string& msg);
  SourceLoc loc() const { return loc_; }

private:
  SourceLoc loc_;
};

/// Collects diagnostics for a compilation unit. Errors are recorded and
/// also thrown as CompileError by `error`; warnings/notes accumulate.
class DiagnosticEngine {
public:
  [[noreturn]] void error(SourceLoc loc, const std::string& msg);
  void warning(SourceLoc loc, const std::string& msg);
  void note(SourceLoc loc, const std::string& msg);

  const std::vector<Diagnostic>& all() const { return diags_; }
  int warning_count() const { return warnings_; }
  void clear();

private:
  std::vector<Diagnostic> diags_;
  int warnings_ = 0;
};

}  // namespace fortd
