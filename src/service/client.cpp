#include "service/client.hpp"

#include <chrono>
#include <cstdlib>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace fortd::service {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

bool send_message(net::Socket& sock, const remote::WireMessage& msg,
                  Clock::time_point deadline, std::string* reason) {
  std::vector<uint8_t> framed;
  if (!net::encode_frame(framed, remote::encode_message(msg))) {
    if (reason) *reason = "request exceeds frame ceiling";
    return false;
  }
  const auto st =
      sock.send_all(framed.data(), framed.size(), remaining_ms(deadline));
  if (st != net::IoStatus::Ok) {
    if (reason)
      *reason = st == net::IoStatus::Timeout ? "send timed out"
                                             : "connection lost during send";
    return false;
  }
  return true;
}

std::optional<remote::WireMessage> recv_message(net::Socket& sock,
                                                net::FrameDecoder& decoder,
                                                Clock::time_point deadline,
                                                std::string* reason) {
  for (;;) {
    if (auto frame = decoder.next()) {
      auto msg = remote::decode_message(*frame);
      if (!msg && reason) *reason = "malformed reply";
      return msg;
    }
    if (decoder.failed()) {
      if (reason) *reason = "corrupt reply stream";
      return std::nullopt;
    }
    const int left = remaining_ms(deadline);
    if (left <= 0) {
      if (reason) *reason = "reply timed out";
      return std::nullopt;
    }
    uint8_t buf[4096];
    size_t got = 0;
    const auto st = sock.recv_some(buf, sizeof(buf), got, left);
    if (st == net::IoStatus::Closed && got == 0) {
      if (reason) *reason = "daemon closed the connection";
      return std::nullopt;
    }
    if (st == net::IoStatus::Error) {
      if (reason) *reason = "connection error";
      return std::nullopt;
    }
    if (st == net::IoStatus::Timeout) {
      if (reason) *reason = "reply timed out";
      return std::nullopt;
    }
    decoder.feed(std::string(reinterpret_cast<const char*>(buf), got));
  }
}

}  // namespace

std::optional<ClientOptions> parse_server_endpoint(const std::string& spec) {
  if (spec.empty()) return std::nullopt;
  ClientOptions opts;
  const auto colon = spec.rfind(':');
  std::string port_part;
  if (colon == std::string::npos) {
    port_part = spec;
  } else {
    if (colon > 0) opts.host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty()) return std::nullopt;
  const int port = std::atoi(port_part.c_str());
  if (port <= 0 || port > 65535) return std::nullopt;
  opts.port = port;
  return opts;
}

std::optional<remote::WireMessage> CompileClient::roundtrip(
    const remote::WireMessage& req, std::string* reason) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.timeout_ms);
  std::string err;
  auto sock = net::connect_to(options_.host, options_.port,
                              remaining_ms(deadline), &err);
  if (!sock) {
    if (reason) *reason = err.empty() ? "daemon unreachable" : err;
    return std::nullopt;
  }

  remote::WireMessage hello;
  hello.type = remote::MsgType::Hello;
  hello.format_hash = options_.format_hash_override
                          ? options_.format_hash_override
                          : remote::remote_wire_format_hash();
  if (!send_message(*sock, hello, deadline, reason)) return std::nullopt;
  net::FrameDecoder decoder;
  auto hello_reply = recv_message(*sock, decoder, deadline, reason);
  if (!hello_reply) return std::nullopt;
  if (hello_reply->type != remote::MsgType::HelloOk) {
    if (reason)
      *reason = hello_reply->type == remote::MsgType::HelloReject
                    ? "wire format mismatch (" + hello_reply->text + ")"
                    : "unexpected handshake reply";
    return std::nullopt;
  }

  if (!send_message(*sock, req, deadline, reason)) return std::nullopt;
  return recv_message(*sock, decoder, deadline, reason);
}

std::optional<remote::CompileReplyWire> CompileClient::compile(
    const std::string& source, const remote::CompileOptionsWire& copts,
    std::string* reason) {
  remote::WireMessage req;
  req.type = remote::MsgType::Compile;
  req.request_id = 1;
  req.text = source;
  req.copts = copts;
  // The daemon-side deadline defaults to the transport budget, so a
  // request this client already abandoned is not compiled on its behalf.
  if (req.copts.deadline_ms == 0)
    req.copts.deadline_ms = static_cast<uint32_t>(options_.timeout_ms);
  auto reply = roundtrip(req, reason);
  if (!reply) return std::nullopt;
  if (reply->type != remote::MsgType::CompileReply) {
    if (reason) *reason = "unexpected reply type";
    return std::nullopt;
  }
  switch (static_cast<remote::CompileStatus>(reply->creply.status)) {
    case remote::CompileStatus::Ok:
    case remote::CompileStatus::CompileFail:
      return std::move(reply->creply);
    case remote::CompileStatus::Rejected:
      if (reason) *reason = "daemon at capacity";
      return std::nullopt;
    case remote::CompileStatus::DeadlineExpired:
      if (reason) *reason = "request deadline expired in the daemon queue";
      return std::nullopt;
    case remote::CompileStatus::Draining:
      if (reason) *reason = "daemon is draining";
      return std::nullopt;
  }
  if (reason) *reason = "unknown reply status";
  return std::nullopt;
}

std::optional<std::string> CompileClient::fetch_metrics(std::string* reason) {
  remote::WireMessage req;
  req.type = remote::MsgType::Metrics;
  req.request_id = 1;
  auto reply = roundtrip(req, reason);
  if (!reply) return std::nullopt;
  if (reply->type != remote::MsgType::MetricsOk) {
    if (reason) *reason = "unexpected reply type";
    return std::nullopt;
  }
  return std::move(reply->text);
}

bool CompileClient::drain(std::string* reason) {
  remote::WireMessage req;
  req.type = remote::MsgType::Drain;
  req.request_id = 1;
  auto reply = roundtrip(req, reason);
  if (!reply) return false;
  if (reply->type != remote::MsgType::DrainOk) {
    if (reason) *reason = "unexpected reply type";
    return false;
  }
  return true;
}

}  // namespace fortd::service
