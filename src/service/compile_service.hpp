// CompileService — the resident compile daemon behind fortdd.
//
// One net::ServerLoop thread accepts connections and decodes COMPILE /
// DRAIN / METRICS requests (HELLO-fingerprinted exactly like the remote
// cache protocol: a client with a different wire or artifact format
// never gets past the handshake). Admission control happens on the loop
// thread: a bounded FIFO queue takes the request (Rejected when full,
// Draining during shutdown), and a fixed set of executor threads
// dequeues in arrival order — fair FIFO, no client can starve another —
// checks the request's deadline (a request that spent its whole budget
// queued is answered DeadlineExpired, not compiled), and compiles.
//
// The compile itself runs inside a per-option-set Session whose Compiler
// persists across requests: its CompilationCache, IpaSummaryCache, alias
// maps, and clone sets stay hot, so an unchanged program re-submitted to
// a warm daemon parses 0 procedures (AstCache) and computes 0 summaries.
// All sessions share one ThreadPool (concurrent requests split the
// machine's workers; see ThreadPool's concurrent-batch contract) and one
// on-disk ContentStore directory, which keeps a restarted daemon warm
// from disk.
//
// Graceful drain: drain() (or a DRAIN request) stops admission, lets the
// queue and in-flight requests finish, then answers DrainOk to every
// drain requester — the fortdd SIGTERM path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server_loop.hpp"
#include "remote/protocol.hpp"
#include "service/session.hpp"
#include "support/thread_pool.hpp"

namespace fortd::service {

struct ServiceOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (tests); fortdd defaults to 4816
  /// Code-generation parallelism per compile, drawn from one shared pool.
  int jobs = 1;
  /// Concurrent compiles (executor threads). Bounds in-flight work.
  int executors = 2;
  /// Queued-but-not-started requests beyond which COMPILEs are Rejected.
  size_t max_queue = 64;
  /// Distinct option-set Compilers kept resident (LRU beyond this).
  size_t max_sessions = 8;
  /// Serialized-AST cache budget.
  uint64_t ast_cache_bytes = 64ull << 20;
  /// Persistent ContentStore directory shared by every session ("" = the
  /// sessions are memory-only and a restart starts cold).
  std::string cache_dir;
  uint64_t cache_max_bytes = 256ull << 20;
  /// Applied to requests that carry deadline_ms == 0 (0 = no deadline).
  uint32_t default_deadline_ms = 0;
  /// Nonzero: handshake fingerprint override (tests provoke skew).
  uint64_t format_hash_override = 0;
  /// Test hook, run by an executor right before it starts compiling.
  std::function<void()> before_compile;
};

class CompileService {
 public:
  explicit CompileService(ServiceOptions options);
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Bind, spawn the loop thread and the executors. False + reason on
  /// failure.
  bool start(std::string* err = nullptr);
  /// Refuse new COMPILEs and block until the queue and every in-flight
  /// request finished (the SIGTERM path). Idempotent.
  void drain();
  /// Join everything and close every connection. Does not wait for
  /// queued work — call drain() first for a graceful exit.
  void stop();

  bool running() const { return loop_.running(); }
  int port() const { return loop_.port(); }

  /// Aggregate service metrics as stable JSON (also the METRICS reply):
  /// request counts by status, queue-wait and per-phase totals, in-flight
  /// and queue peaks, session/AST-cache counters, connection counters.
  std::string metrics_json() const;

 private:
  using ConnId = net::ServerLoop::ConnId;
  using Clock = std::chrono::steady_clock;

  struct Job {
    ConnId conn = 0;
    uint64_t request_id = 0;
    std::string source;
    remote::CompileOptionsWire copts;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // meaningful when has_deadline
    bool has_deadline = false;
  };

  void on_cycle(std::vector<net::ServerLoop::InFrame>& frames);
  void executor_loop();
  /// Compile one dequeued job and send its reply.
  void run_job(Job& job, double queue_ms);
  void send_reply(const Job& job, remote::CompileReplyWire creply,
                  remote::CompileStatus status);
  /// DrainOk everyone waiting, if the service is idle. Caller holds mu_.
  void flush_drain_waiters_locked();

  ServiceOptions options_;
  net::ServerLoop loop_;
  ThreadPool pool_;
  AstCache ast_cache_;
  SessionCache sessions_;

  std::map<ConnId, bool> hello_done_;  // loop thread only

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // executors wait for jobs
  std::condition_variable drain_cv_;  // drain() waits for idle
  std::deque<Job> queue_;
  std::vector<std::pair<ConnId, uint64_t>> drain_waiters_;
  bool draining_ = false;
  bool stop_ = false;
  int in_flight_ = 0;
  std::vector<std::thread> executors_;

  struct Metrics {
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t compile_fail = 0;
    uint64_t rejected = 0;
    uint64_t deadline_expired = 0;
    uint64_t draining = 0;
    uint64_t handshake_rejects = 0;
    uint64_t protocol_errors = 0;
    int in_flight_peak = 0;
    size_t queue_peak = 0;
    double queue_ms_total = 0.0;
    double queue_ms_max = 0.0;
    double parse_ms_total = 0.0;
    double compile_ms_total = 0.0;
    double reply_ms_total = 0.0;
    uint64_t reply_bytes_total = 0;
  };
  Metrics metrics_;  // guarded by mu_
};

}  // namespace fortd::service
