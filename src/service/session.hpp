// Session state of the resident compile daemon (fortdd): what makes a
// warm daemon warm.
//
// AstCache holds serialized ASTs keyed by source digest, so a repeat
// COMPILE of unchanged source deserializes instead of parsing (the
// "parses 0 procedures" half of the warm-request contract). SessionCache
// holds one long-lived Compiler per distinct option set; a retained
// Compiler keeps its CompilationCache, IpaSummaryCache, alias maps, and
// clone sets hot across requests (the "computes 0 summaries" half).
// Every session layers over the same on-disk ContentStore directory, so
// a restarted daemon is still warm from disk — the session tier only
// removes the deserialize/rehash work the disk tier cannot.
//
// Both caches are LRU-bounded: AstCache by serialized bytes, SessionCache
// by session count. Eviction hands out shared_ptrs, so a session can be
// evicted while a request still compiles inside it — the storage lives
// until the request finishes, only the cache slot is reused.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "driver/compiler.hpp"
#include "remote/protocol.hpp"

namespace fortd::service {

/// Serialized-AST cache keyed by source digest. Thread-safe.
class AstCache {
 public:
  /// `max_bytes` bounds the sum of serialized entry sizes (LRU).
  explicit AstCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// The AST for `source`: deserialized from the cache when the digest is
  /// known (— then *parsed_procedures = 0), otherwise parsed, counted,
  /// and inserted. Throws CompileError on a parse failure (never cached).
  SourceProgram get(const std::string& source, int* parsed_procedures);

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;    // current
    uint64_t entries = 0;  // current
  };
  Counters counters() const;

 private:
  struct Entry {
    std::vector<uint8_t> bytes;  // count + write_procedure per procedure
    int procedures = 0;
    std::list<uint64_t>::iterator lru;
  };

  void evict_locked();

  uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t bytes_ = 0;
  Counters counters_;
};

/// One resident Compiler and the lock that serializes compiles through
/// it (a Compiler's caches are mutated by compile(), so one request at a
/// time per session; different sessions compile concurrently).
struct Session {
  std::mutex mu;
  Compiler compiler;
  explicit Session(const CodegenOptions& o, const IpaOptions& i,
                   const LintOptions& l, CacheOptions c)
      : compiler(o, i, l, std::move(c)) {}
};

/// Keyed, LRU-bounded pool of Sessions. Thread-safe.
class SessionCache {
 public:
  /// Every created Compiler compiles with `jobs` workers drawn from the
  /// shared `pool` (not owned) and layers over `cache_dir` when set.
  SessionCache(size_t max_sessions, int jobs, ThreadPool* pool,
               std::string cache_dir, uint64_t cache_max_bytes);

  /// The session for this option set, created on first use. The returned
  /// shared_ptr keeps the session alive across LRU eviction.
  std::shared_ptr<Session> acquire(const remote::CompileOptionsWire& copts);

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t sessions = 0;  // current
  };
  Counters counters() const;

 private:
  /// All output-relevant wire options packed into one key.
  static uint64_t key_of(const remote::CompileOptionsWire& copts);

  size_t max_sessions_;
  int jobs_;
  ThreadPool* pool_;
  std::string cache_dir_;
  uint64_t cache_max_bytes_;

  mutable std::mutex mu_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::map<uint64_t, std::pair<std::shared_ptr<Session>,
                               std::list<uint64_t>::iterator>>
      sessions_;
  Counters counters_;
};

}  // namespace fortd::service
